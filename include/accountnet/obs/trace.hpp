// Structured trace events in a fixed-capacity ring buffer.
//
// Events are stamped with *simulated* time by the producer (obs never reads
// a clock for traces, preserving determinism). When the ring is full the
// oldest event is overwritten and `dropped()` counts the loss — tracing is
// best-effort observability, never backpressure. A capacity of 0 turns the
// ring into a no-op, which is the default wiring everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace accountnet::obs {

struct TraceEvent {
  std::int64_t t_us = 0;     ///< simulated time (sim::TimePoint)
  std::uint32_t code = 0;    ///< producer-defined discriminator (e.g. MsgType)
  std::uint64_t a = 0;       ///< first operand (e.g. payload bytes)
  std::uint64_t b = 0;       ///< second operand (e.g. channel/sequence id)
  std::string label;         ///< short human tag ("shuffle_offer", ...)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class TraceRing {
 public:
  /// capacity == 0 makes every push a no-op.
  explicit TraceRing(std::size_t capacity) : capacity_(capacity) {
    events_.reserve(capacity);
  }

  void push(TraceEvent e);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return events_.size(); }
  bool enabled() const { return capacity_ > 0; }
  /// Events lost to overwrite since construction/clear.
  std::uint64_t dropped() const { return dropped_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> snapshot() const;

  void clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;  ///< next write position once the ring is full
  std::uint64_t dropped_ = 0;
};

}  // namespace accountnet::obs
