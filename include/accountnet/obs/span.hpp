// Span-based causal tracing (the "who did what, when, because of what"
// counterpart to the flat counters in obs/metrics.hpp).
//
// A Span is one timed step of a protocol operation on one participant; spans
// link to a parent span and share a trace id, so the hops of a shuffle, a
// witness-group formation, or an accuse → quarantine → evict pipeline
// reconstruct as one tree even though they execute on different nodes. The
// TraceContext (trace id + parent span id) rides in the message envelope
// (sim::NetMessage / wire::Envelope) to carry causality across the fabric.
//
// Determinism rules (same as the rest of obs):
//   * ids come from a seeded splitmix64 counter stream, never from entropy;
//   * timestamps are *simulated* time supplied by the producer — the tracer
//     never reads a clock;
//   * producers hold a `Tracer*` that is nullptr by default, so disabled
//     tracing costs one branch (the ScopedTimer convention), and an attached
//     tracer must not perturb any seeded protocol outcome (it draws from no
//     protocol Rng stream).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace accountnet::obs {

/// Causality carried in a message envelope: which trace the message belongs
/// to and which span caused it. trace_id == 0 means "no context" (the wire
/// default, and what untraced runs carry).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;

  bool valid() const { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// One typed key/value annotation on a span. Values are stored as strings;
/// Tracer::attr_u64 formats integers so consumers can parse them back.
struct SpanAttr {
  std::string key;
  std::string value;
  friend bool operator==(const SpanAttr&, const SpanAttr&) = default;
};

/// One timed step of an operation on one participant.
struct Span {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;  ///< 0 = root of its trace
  std::string name;               ///< operation step ("shuffle", "relay.forward")
  std::string node;               ///< participant address ("n7", "net", ...)
  std::int64_t start_us = 0;      ///< simulated time
  std::int64_t end_us = -1;       ///< simulated time; < start_us while open
  std::vector<SpanAttr> attrs;

  bool open() const { return end_us < start_us; }
  const std::string* find_attr(std::string_view key) const;
  friend bool operator==(const Span&, const Span&) = default;
};

/// Collects spans for one simulation. One Tracer is shared by every node of
/// a run (ids are process-wide unique per seed), attached via
/// Node::set_tracer / NetworkSim-style setters; the default everywhere is
/// "not attached".
class Tracer {
 public:
  /// Same seed → identical id streams → byte-identical dumps across runs.
  explicit Tracer(std::uint64_t seed = 1) : seed_(seed) {}

  /// Opens a span at simulated time `t_us`. With a valid parent context the
  /// span joins that trace; otherwise it roots a new trace whose id is the
  /// span's own id. Returns the span id (never 0).
  std::uint64_t begin_span(std::string name, std::string node, std::int64_t t_us,
                           TraceContext parent = {});

  /// Closes an open span at simulated time `t_us`; unknown ids are ignored
  /// (the producer may have dropped the handle on an aborted path).
  void end_span(std::uint64_t span_id, std::int64_t t_us);

  void attr(std::uint64_t span_id, std::string key, std::string value);
  void attr_u64(std::uint64_t span_id, std::string key, std::uint64_t value);

  /// The context a child (local or across the wire) should inherit from
  /// `span_id`; the zero context if the id is unknown.
  TraceContext context(std::uint64_t span_id) const;

  const std::vector<Span>& spans() const { return spans_; }
  std::size_t size() const { return spans_.size(); }
  void clear();

 private:
  std::uint64_t next_id();

  std::uint64_t seed_;
  std::uint64_t counter_ = 0;
  std::vector<Span> spans_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  ///< span id → slot
};

// ---------------------------------------------------------------------------
// Span dumps: one JSON object per line (ids as fixed-width hex strings so no
// JSON reader mangles them into doubles). This is the format
// tools/accountnet_trace loads.
//   {"trace":"...16 hex...","span":"...","parent":"...","name":"...",
//    "node":"...","start_us":N,"end_us":N,"attrs":{"k":"v",...}}

std::string span_to_json_line(const Span& s);
void write_spans_jsonl(const std::vector<Span>& spans, const std::string& path);
/// Parses one dump line; false (and `out` unspecified) on malformed input.
bool parse_span_json_line(const std::string& line, Span& out);
/// Loads a dump produced by write_spans_jsonl, skipping malformed lines.
std::vector<Span> load_spans_jsonl(const std::string& path);

// ---------------------------------------------------------------------------
// Perfetto export: Chrome trace-event JSON (open in https://ui.perfetto.dev
// or chrome://tracing). Each participant becomes a process track; spans
// become complete ("ph":"X") events carrying trace/span/parent ids and every
// attribute in "args".

/// Serializes spans as a complete Chrome trace-event JSON document.
std::string perfetto_json(const std::vector<Span>& spans);

/// Buffers spans and writes the JSON document on flush() (and destruction).
class PerfettoSink {
 public:
  explicit PerfettoSink(std::string path) : path_(std::move(path)) {}
  ~PerfettoSink() { flush(); }

  PerfettoSink(const PerfettoSink&) = delete;
  PerfettoSink& operator=(const PerfettoSink&) = delete;

  void add(const Span& span) { spans_.push_back(span); }
  void add_all(const std::vector<Span>& spans);

  /// Writes the complete document (overwrites; a Perfetto file is a single
  /// JSON object, not an appendable line stream). Idempotent.
  void flush();

 private:
  std::string path_;
  std::vector<Span> spans_;
};

// ---------------------------------------------------------------------------
// Trace forests + critical paths (the analysis behind accountnet_trace).

/// All spans of one trace, with the root resolved.
struct TraceTree {
  std::uint64_t trace_id = 0;
  const Span* root = nullptr;            ///< parent == 0 (or orphaned earliest)
  std::vector<const Span*> spans;        ///< every span, dump order
  /// Trace duration: latest end (or start, for open spans) minus root start.
  std::int64_t duration_us() const;
};

/// Groups spans into per-trace trees. Pointers alias `spans`, which must
/// outlive the result.
std::vector<TraceTree> build_traces(const std::vector<Span>& spans);

/// The chain root → … → the span that finishes last; i.e. the sequence of
/// causally linked steps that determined the operation's latency.
std::vector<const Span*> critical_path(const TraceTree& tree);

}  // namespace accountnet::obs
