// Unified metrics registry: named counters, gauges and histogram-backed
// timers behind string-interned ids.
//
// Design constraints, in order:
//   * Zero overhead when idle. Counter updates are one relaxed atomic add;
//     timers read the wall clock only while `timing_enabled()` is true
//     (default false), so instrumented call sites cost a branch when off.
//   * Lock-free-friendly. Counters and gauges are relaxed atomics in
//     deque-backed cells (stable addresses, no rehash invalidation), so
//     concurrent writers never block. Timer distributions and the intern
//     table are written from the owning (simulation) thread only.
//   * Deterministic simulations stay deterministic: metrics are write-only
//     from protocol code — nothing reads them back into control flow — and
//     wall-clock reads happen only in opt-in timers.
//
// Scraping: snapshot() materializes every metric as a MetricSample;
// scrape_to() forwards them to a Sink (see obs/sink.hpp) stamped with the
// caller-provided simulated time.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "accountnet/util/stats.hpp"

namespace accountnet::obs {

class Sink;

/// Interned handle; indexes into the registry's per-kind storage.
using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t {
  kCounter = 0,  ///< monotonically increasing u64
  kGauge = 1,    ///< last-written double
  kTimer = 2,    ///< duration distribution (ns), histogram-backed
};

/// One scraped metric. Timers report their distribution in nanoseconds;
/// `p50`/`p95`/`p99` are histogram estimates (log-spaced buckets).
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter value / timer observation count
  double value = 0.0;       ///< counter value / gauge value / timer mean (ns)
  double sum = 0.0;         ///< timers: total ns
  double min = 0.0;         ///< timers: fastest observation (ns)
  double max = 0.0;         ///< timers: slowest observation (ns)
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Intern `name` as a metric of the given kind; returns the existing id on
  /// repeat calls. Re-registering a name under a different kind throws.
  MetricId counter(std::string_view name);
  MetricId gauge(std::string_view name);
  MetricId timer(std::string_view name);

  /// Lookup without creating; nullopt if the name was never registered.
  std::optional<MetricId> find(std::string_view name) const;

  // --- Hot-path updates ----------------------------------------------------

  void add(MetricId id, std::uint64_t delta = 1) {
    counters_[id].fetch_add(delta, std::memory_order_relaxed);
  }
  void set(MetricId id, double value) {
    gauges_[id].store(value, std::memory_order_relaxed);
  }
  /// Records one timer observation (owning thread only).
  void observe_ns(MetricId id, std::uint64_t ns);

  /// Master switch for wall-clock timer sections (ScopedTimer). Off by
  /// default so instrumented code paths stay branch-only.
  bool timing_enabled() const { return timing_enabled_; }
  void set_timing_enabled(bool on) { timing_enabled_ = on; }

  // --- Reads / scraping ----------------------------------------------------

  std::uint64_t counter_value(MetricId id) const {
    return counters_[id].load(std::memory_order_relaxed);
  }
  double gauge_value(MetricId id) const {
    return gauges_[id].load(std::memory_order_relaxed);
  }
  std::uint64_t timer_count(MetricId id) const;
  /// Histogram-estimated percentile of a timer, in ns (p in [0,100]).
  double timer_percentile_ns(MetricId id, double p) const;

  std::size_t size() const { return names_.size(); }

  // --- Id-based introspection (scrapers) ------------------------------------

  const std::string& metric_name(MetricId id) const { return names_[id].name; }
  MetricKind metric_kind(MetricId id) const { return names_[id].kind; }
  /// The log10(ns) bucket histogram behind a timer. Valid until the registry
  /// is destroyed; the TimeSeriesScraper diffs its bucket counts between
  /// scrapes to get windowed percentiles.
  const Histogram& timer_histogram(MetricId id) const;

  /// Materializes every registered metric, sorted by name. Sorted (not
  /// registration) order keeps scrapes stable across runs whose lazy
  /// interning happens in different orders (e.g. wall-clock-driven
  /// transport counters), so identically-seeded dumps are byte-identical.
  std::vector<MetricSample> snapshot() const;

  /// Writes every metric to `sink`, stamped with `sim_time_us`.
  void scrape_to(Sink& sink, std::int64_t sim_time_us) const;

  /// Zeroes all values; registrations (names/ids) survive.
  void reset();

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::uint32_t slot;  ///< index into the kind-specific storage
  };
  struct TimerCell {
    RunningStats stats;
    // log10(ns) over [0, 11) — sub-ns to ~100 s — 8 buckets per decade.
    Histogram hist{0.0, 11.0, 88};
  };

  MetricId intern(std::string_view name, MetricKind kind);

  std::vector<Entry> names_;
  std::unordered_map<std::string, MetricId> by_name_;
  std::deque<std::atomic<std::uint64_t>> counters_;
  std::deque<std::atomic<double>> gauges_;
  std::deque<TimerCell> timers_;
  bool timing_enabled_ = false;
};

/// RAII wall-clock section feeding a timer metric. Reads the clock only when
/// the registry exists and has timing enabled; otherwise both constructor
/// and destructor are a null check.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, MetricId id);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricsRegistry* registry_;
  MetricId id_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace accountnet::obs
