// Live telemetry trajectories: periodic delta snapshots of one or more
// MetricsRegistries into a bounded ring.
//
// MetricsRegistry values are cumulative — a scrape answers "how much ever",
// not "how fast now". TimeSeriesScraper turns the cumulative view into an
// operator's view: each sample() diffs the registries against the previous
// sample and records
//
//   * counters — the cumulative total plus a windowed rate (delta / window),
//   * gauges   — the last-written value,
//   * timers   — windowed p50/p95/p99 ns estimated from the *delta* of the
//                log-bucket histogram counts (so a latency spike shows in
//                the window it happened, not diluted into the lifetime
//                distribution), plus the window's observation count.
//
// The caller drives the clock: simulations and the harness call
// sample(sim_now), real hosts arm an EventLoop timer and call
// sample(loop.now_us()). The scraper itself never reads a clock, so it obeys
// the repo's simulated-time rule and stays deterministic.
//
// Multiple sources aggregate like bench::CounterAggregator: counters and
// gauges sum per name; timer histograms sum bucket-wise (all registry timers
// share one bucket geometry). The ring holds the most recent
// config.capacity points; older points drop off (counted by dropped()).
//
// JSONL: one object per point, parse round-trips through util::json_parse.
//   {"kind":"timeseries","t_us":N,"window_us":N,"series":{
//     "name":{"k":"counter","total":N,"rate":X},
//     "name":{"k":"gauge","value":X},
//     "name":{"k":"timer","n":N,"p50_ns":X,"p95_ns":X,"p99_ns":X}}}
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "accountnet/obs/metrics.hpp"

namespace accountnet::obs {

class JsonLinesSink;

struct TimeSeriesConfig {
  /// Ring bound: points retained before the oldest is discarded.
  std::size_t capacity = 512;
  /// Advisory cadence for the driving timer (the scraper itself is
  /// clock-free); accountnetd's --scrape-interval-ms lands here.
  std::int64_t interval_us = 1'000'000;
};

/// One metric's windowed reading at one sample instant.
struct TimeSeriesCell {
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       ///< counter cumulative total / gauge last value
  double rate_per_s = 0.0;  ///< counters: delta over the window, per second
  std::uint64_t count = 0;  ///< timers: observations inside the window
  double p50_ns = 0.0;      ///< timers: windowed percentile estimates
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

struct TimeSeriesPoint {
  std::int64_t t_us = 0;
  /// Microseconds since the previous sample; 0 for the first point (whose
  /// "window" is everything since the registries were born).
  std::int64_t window_us = 0;
  /// Name-sorted, one entry per metric known at sample time.
  std::vector<std::pair<std::string, TimeSeriesCell>> cells;

  const TimeSeriesCell* find(const std::string& name) const;
};

class TimeSeriesScraper {
 public:
  explicit TimeSeriesScraper(TimeSeriesConfig config = {});

  /// Registers a registry to scrape. Must outlive the scraper. Sources may
  /// be added between samples; metrics appearing later simply join the
  /// series at their first sample.
  void add_source(const MetricsRegistry* registry);

  /// Takes one delta snapshot stamped `t_us`. Monotonically non-decreasing
  /// stamps are the caller's contract (simulated or loop time both satisfy
  /// it).
  void sample(std::int64_t t_us);

  const std::deque<TimeSeriesPoint>& points() const { return points_; }
  /// Points discarded by the ring bound since construction.
  std::uint64_t dropped() const { return dropped_; }
  const TimeSeriesConfig& config() const { return config_; }

  /// Drops all points and windows; sources stay registered.
  void clear();

  /// Appends every retained point to `sink` as raw JSONL rows.
  /// `context_fields` is spliced verbatim into each object after "kind"
  /// (e.g. ",\"bench\":\"chaos_soak\",\"scenario\":\"loss 10%\"").
  void dump_jsonl(JsonLinesSink& sink, const std::string& context_fields = "") const;

  /// The retained ring as one JSON array (the daemon /timeseries body).
  std::string to_json_array() const;

 private:
  struct PrevTimer {
    std::uint64_t count = 0;
    std::vector<std::uint64_t> buckets;
  };

  TimeSeriesConfig config_;
  std::vector<const MetricsRegistry*> sources_;
  std::deque<TimeSeriesPoint> points_;
  std::map<std::string, double> prev_counters_;
  std::map<std::string, PrevTimer> prev_timers_;
  std::int64_t last_t_us_ = 0;
  bool have_prev_ = false;
  std::uint64_t dropped_ = 0;
};

/// Serializes one point as a single JSON-lines row (no trailing newline).
std::string to_json_line(const TimeSeriesPoint& pt, const std::string& context_fields = "");

/// Parses one dumped row back; false on malformed input or a non-timeseries
/// row (so loaders can skip interleaved bench-context rows).
bool parse_timeseries_json_line(const std::string& line, TimeSeriesPoint& out);

/// Loads every timeseries row of a JSONL file (other rows are skipped).
std::vector<TimeSeriesPoint> load_timeseries_jsonl(const std::string& path);

}  // namespace accountnet::obs
