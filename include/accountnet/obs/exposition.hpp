// Prometheus text exposition (format version 0.0.4) for MetricsRegistry
// scrapes, plus a strict parser/validator used by accountnet-top and the
// daemon demo to check that what a node serves is actually well-formed.
//
// Mapping:
//   * metric names sanitize '.' and any other non-[a-zA-Z0-9_] byte to '_'
//     and gain the "accountnet_" namespace prefix;
//   * counters  -> `# TYPE <name>_total counter` + one sample;
//   * gauges    -> `# TYPE <name> gauge` + one sample;
//   * timers    -> `# TYPE <name>_ns summary`: quantile samples (0.5/0.95/
//                  0.99 from the log-bucket histogram estimates), `_sum` and
//                  `_count`. Units stay nanoseconds, hence the `_ns` suffix.
//
// Families render in the sample vector's order; snapshot() is name-sorted,
// so exposition bodies are deterministic for a given registry state.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "accountnet/obs/metrics.hpp"

namespace accountnet::obs {

/// "net.conn.bytes_in" -> "accountnet_net_conn_bytes_in".
std::string prometheus_name(std::string_view metric);

/// Renders samples (e.g. MetricsRegistry::snapshot()) as an exposition body.
std::string prometheus_text(const std::vector<MetricSample>& samples);

/// Convenience: snapshot + render.
std::string prometheus_text(const MetricsRegistry& registry);

/// Result of strict-parsing an exposition body.
struct PromValidation {
  bool ok = false;
  std::string error;         ///< first offence, with a line number
  std::size_t families = 0;  ///< `# TYPE` lines seen
  std::size_t samples = 0;   ///< value-bearing lines seen
};

/// Line-by-line strict parse: every line must be empty, a `# HELP`/`# TYPE`
/// comment, or `name[{labels}] value [timestamp]` with a valid metric name,
/// balanced quoted labels and a parseable value. A body with zero samples is
/// invalid. Never throws; hostile input just fails.
PromValidation validate_prometheus_text(std::string_view body);

}  // namespace accountnet::obs
