// Bench-regression comparator: diffs two BENCH_*.json artifacts (JSON-lines,
// the JsonLinesSink convention) under per-metric tolerance bands.
//
// Rows pair up by a *stable key*, not line position, so reordering or
// interleaving never causes false regressions:
//   * scrape rows ({"metric":...})  ->  "metric:<name>"
//   * context rows (bench/scenario/...) -> every top-level string field,
//     name-sorted, joined as "k=v,k=v"
// plus a "#<n>" occurrence suffix when the same key repeats (periodic
// scrapes of one metric stay aligned by position-within-key).
//
// Numeric leaves (including nested ones, dotted paths) compare under the
// first matching tolerance rule; a row present in the baseline but missing
// from the candidate is a regression, a brand-new candidate row is only a
// note (features grow; gates should not punish new telemetry).
//
// Tolerance file (JSON, see baselines/tolerances.json):
//   {"default": {"rel": 0.05, "abs": 1e-9},
//    "rules": [{"row": "metric:net.*", "field": "value", "rel": 0.5},
//              {"row": "*", "field": "*_us", "skip": true}]}
// Rules apply first-match-wins; "skip" exempts wall-clock-shaped fields.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "accountnet/util/json.hpp"

namespace accountnet::obs {

/// One tolerance band. Globs support '*' (any run) and '?' (any byte).
struct ToleranceRule {
  std::string row_glob = "*";
  std::string field_glob = "*";
  double rel = 0.0;   ///< allowed |cand-base| / max(|base|,|cand|)
  double abs = 0.0;   ///< allowed |cand-base|
  bool skip = false;  ///< exempt the field entirely
};

struct BenchDiffOptions {
  /// Checked in order; the first rule whose globs match both the row key and
  /// the field path wins. A built-in catch-all (default_rel/default_abs)
  /// backstops everything else.
  std::vector<ToleranceRule> rules;
  double default_rel = 0.0;
  double default_abs = 1e-9;
};

struct BenchDiffIssue {
  std::string row_key;
  std::string field;  ///< dotted path; empty for a missing row
  double baseline = 0.0;
  double candidate = 0.0;
  double allowed = 0.0;  ///< tolerance that was exceeded (abs terms)
  std::string what;      ///< human-readable one-liner
};

struct BenchDiffReport {
  bool ok = false;
  std::vector<BenchDiffIssue> regressions;
  std::vector<std::string> notes;  ///< non-fatal: new rows, skipped fields
  std::size_t rows_compared = 0;
  std::size_t fields_compared = 0;
};

/// '*'/'?' glob match over the whole of `text`.
bool glob_match(std::string_view pattern, std::string_view text);

/// The stable pairing key of one parsed JSONL row (no occurrence suffix).
std::string benchdiff_row_key(const util::JsonValue& row);

/// Parses every JSON object line of a BENCH_*.json file; unparseable lines
/// are skipped (count reported via `bad_lines` when non-null).
std::vector<util::JsonValue> load_bench_jsonl(const std::string& path,
                                              std::size_t* bad_lines = nullptr);

/// Parses a tolerance file body into options; false on malformed input.
bool parse_tolerances(const std::string& body, BenchDiffOptions& out);

/// Compares candidate against baseline under the tolerance bands.
BenchDiffReport benchdiff(const std::vector<util::JsonValue>& baseline,
                          const std::vector<util::JsonValue>& candidate,
                          const BenchDiffOptions& options);

}  // namespace accountnet::obs
