// Pluggable metric sinks.
//
// A Sink consumes MetricSamples produced by MetricsRegistry::scrape_to (and
// optionally TraceEvents). Three implementations cover the repo's needs:
//
//   * NullSink      — the default: scraping into it is free and allocation
//                     free, so instrumentation can stay wired permanently.
//   * MemorySink    — buffers rows for tests and in-process consumers.
//   * JsonLinesSink — one JSON object per line, the `BENCH_*.json` dump
//                     convention the benches emit (see docs/OBSERVABILITY.md).
//
// JSON-line schema (stable field order, used by the golden test):
//   counters: {"t_us":N,"metric":"name","kind":"counter","value":N}
//   gauges:   {"t_us":N,"metric":"name","kind":"gauge","value":X}
//   timers:   {"t_us":N,"metric":"name","kind":"timer","count":N,
//              "mean_ns":X,"sum_ns":X,"min_ns":X,"max_ns":X,
//              "p50_ns":X,"p95_ns":X,"p99_ns":X}
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "accountnet/obs/metrics.hpp"
#include "accountnet/obs/trace.hpp"

namespace accountnet::obs {

class Sink {
 public:
  virtual ~Sink() = default;

  virtual void write(const MetricSample& sample, std::int64_t t_us) = 0;
  /// Optional trace-event channel; ignored by default.
  virtual void event(const TraceEvent& e) { (void)e; }
  virtual void flush() {}
};

/// Discards everything.
class NullSink final : public Sink {
 public:
  void write(const MetricSample&, std::int64_t) override {}
};

/// Buffers scraped rows in memory (tests, in-process dashboards).
class MemorySink final : public Sink {
 public:
  struct Row {
    std::int64_t t_us = 0;
    MetricSample sample;
  };

  void write(const MetricSample& sample, std::int64_t t_us) override {
    rows_.push_back(Row{t_us, sample});
  }
  void event(const TraceEvent& e) override { events_.push_back(e); }

  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  /// Last scraped row for `name`, or nullptr.
  const Row* last(std::string_view name) const;
  void clear() {
    rows_.clear();
    events_.clear();
  }

 private:
  std::vector<Row> rows_;
  std::vector<TraceEvent> events_;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(std::string_view s);

/// Serializes one sample as a single JSON-lines row (no trailing newline).
std::string to_json_line(const MetricSample& sample, std::int64_t t_us);

/// Serializes one trace event as a single JSON-lines row (no trailing
/// newline); the label is escaped, so hostile labels cannot break the stream:
///   {"t_us":N,"kind":"trace","code":N,"a":N,"b":N,"label":"..."}
std::string to_json_line(const TraceEvent& e);

/// Appends one JSON object per sample to a file (the `BENCH_*.json`
/// convention). Opens in append mode so successive scrapes of a run — or
/// successive bench configurations — form one time series.
class JsonLinesSink final : public Sink {
 public:
  /// Owns the stream; throws EnsureError if the file cannot be opened.
  explicit JsonLinesSink(const std::string& path);
  /// Borrows an open stream (e.g. stdout); never closes it.
  explicit JsonLinesSink(std::FILE* stream);
  ~JsonLinesSink() override;

  JsonLinesSink(const JsonLinesSink&) = delete;
  JsonLinesSink& operator=(const JsonLinesSink&) = delete;

  void write(const MetricSample& sample, std::int64_t t_us) override;
  /// Drained TraceEvents become "kind":"trace" rows with escaped labels.
  void event(const TraceEvent& e) override;
  /// Emits a caller-composed JSON object line (bench context rows).
  void raw_line(const std::string& json_object);
  void flush() override;

 private:
  std::FILE* stream_;
  bool owned_;
};

}  // namespace accountnet::obs
