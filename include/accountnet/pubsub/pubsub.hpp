// Broker-less publish/subscribe over AccountNet witnessed channels
// (Sec. VI-B). Publishers open a witnessed data channel to each subscriber
// of a topic and send topic-tagged envelopes through the witness relays; no
// broker ever sees or routes the data.
//
// Subscriber discovery is out of band in the paper ("the addresses of data
// sources are publicly known", Sec. II-D); TopicDirectory stands in for that
// out-of-band mechanism — it only maps topic names to addresses and carries
// no payload.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "accountnet/core/node.hpp"

namespace accountnet::pubsub {

/// Out-of-band topic registry (no data flows through it).
class TopicDirectory {
 public:
  void announce(const std::string& topic, const std::string& subscriber_addr);
  void retract(const std::string& topic, const std::string& subscriber_addr);
  std::vector<std::string> subscribers(const std::string& topic) const;

 private:
  std::map<std::string, std::vector<std::string>> topics_;
};

/// Topic-tagged payload envelope.
struct Envelope {
  std::string topic;
  Bytes data;

  Bytes encode() const;
  static Envelope decode(BytesView bytes);
};

class PubSubNode {
 public:
  using MessageHandler = std::function<void(const std::string& topic, const Bytes& data,
                                            const core::PeerId& publisher)>;

  /// Borrows the protocol node and the shared directory. Installs itself as
  /// the node's delivery callback.
  PubSubNode(core::Node& node, TopicDirectory& directory);

  /// Subscribes to a topic: announces in the directory and dispatches
  /// incoming envelopes for that topic to `handler`.
  void subscribe(const std::string& topic, MessageHandler handler);

  /// Publishes to every current subscriber of the topic, opening (and
  /// caching) a witnessed channel per subscriber. Payloads published before
  /// a channel is ready are queued and flushed on readiness.
  void publish(const std::string& topic, Bytes data);

  const core::Node& node() const { return node_; }

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;
    std::uint64_t queued = 0;
    std::uint64_t channel_failures = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Link {
    std::uint64_t channel_id = 0;
    bool ready = false;
    bool failed = false;
    std::vector<Bytes> backlog;
  };

  void ensure_link(const std::string& subscriber_addr);
  void on_delivery(std::uint64_t channel, std::uint64_t seq, const Bytes& payload,
                   const core::PeerId& producer);

  core::Node& node_;
  TopicDirectory& directory_;
  std::map<std::string, MessageHandler> handlers_;
  std::map<std::string, Link> links_;  // subscriber addr -> channel
  Stats stats_;
};

}  // namespace accountnet::pubsub
