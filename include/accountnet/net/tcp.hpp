// Minimal real-network transport: length-prefixed message framing over
// blocking TCP sockets (IPv4 loopback-tested).
//
// The simulation fabric (sim::SimNetwork) carries all experiments; this
// module exists so the same protocol engines demonstrably run over real
// sockets too (examples/tcp_shuffle.cpp performs a fully verified shuffle
// between two threads through the loopback interface). Frames are
// [u32 payload length][u32 type][payload], little-endian, capped at
// kMaxFrameSize to bound allocation from untrusted peers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "accountnet/util/bytes.hpp"

namespace accountnet::net {

class MessageSocket {
 public:
  static constexpr std::size_t kMaxFrameSize = 16 * 1024 * 1024;

  /// Takes ownership of a connected socket descriptor.
  explicit MessageSocket(int fd) : fd_(fd) {}
  ~MessageSocket();

  MessageSocket(MessageSocket&& other) noexcept;
  MessageSocket& operator=(MessageSocket&& other) noexcept;
  MessageSocket(const MessageSocket&) = delete;
  MessageSocket& operator=(const MessageSocket&) = delete;

  bool valid() const { return fd_ >= 0; }

  /// Sends one frame; false on any socket error (the socket is then dead).
  bool send(std::uint32_t type, BytesView payload);

  struct Frame {
    std::uint32_t type = 0;
    Bytes payload;
  };

  /// Blocks for one frame; nullopt on EOF, error, or an oversized frame.
  std::optional<Frame> receive();

  void close();

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1; port 0 picks an ephemeral port.
class Acceptor {
 public:
  explicit Acceptor(std::uint16_t port = 0);
  ~Acceptor();

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  bool valid() const { return fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Blocks for one inbound connection.
  std::optional<MessageSocket> accept_one();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
std::optional<MessageSocket> connect_to(const std::string& host, std::uint16_t port);

}  // namespace accountnet::net
