// In-process TCP fault shim for transport robustness tests and soaks.
//
// ChaosProxy accepts on its own port, dials the real upstream for every
// accepted connection, and forwards bytes both ways — until a seeded
// per-session byte budget runs out, at which point it hard-closes both sides
// mid-stream (the moral equivalent of yanking a cable mid-frame). Pointing a
// ConnectionManager at the proxy instead of the peer exercises truncated
// frames, peer-crash-mid-RPC, and reconnect-with-backoff on demand, with a
// deterministic seed.
//
// A budget of 0 disables killing (plain pass-through proxy).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "accountnet/net/event_loop.hpp"
#include "accountnet/util/bytes.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::net {

struct ChaosProxyConfig {
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;  ///< 0 = ephemeral
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;

  /// Per-session kill budget: uniform in [min_bytes, max_bytes] forwarded
  /// (summed over both directions) before the session is severed. 0/0 = never.
  std::uint64_t min_kill_bytes = 0;
  std::uint64_t max_kill_bytes = 0;
};

class ChaosProxy {
 public:
  ChaosProxy(EventLoop& loop, ChaosProxyConfig config, std::uint64_t rng_seed);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  bool ok() const { return listen_fd_ >= 0; }
  std::uint16_t listen_port() const { return listen_port_; }

  std::uint64_t sessions_opened() const { return sessions_opened_; }
  std::uint64_t sessions_killed() const { return sessions_killed_; }
  std::uint64_t bytes_forwarded() const { return bytes_forwarded_; }

  void close_all();

 private:
  // One proxied connection pair. Bytes flow client<->upstream through small
  // relay buffers; when a side stalls (EAGAIN) the other side's reads pause
  // via interest masks, which gives natural end-to-end backpressure.
  struct Session {
    int client_fd = -1;
    int upstream_fd = -1;
    bool upstream_connecting = true;
    Bytes to_upstream;   ///< bytes read from client, not yet written upstream
    Bytes to_client;
    std::uint64_t budget = 0;  ///< remaining bytes before the kill; 0 = off
    std::uint64_t forwarded = 0;
  };

  void on_acceptable();
  void on_side_event(int fd, std::uint32_t events);
  /// Pumps one direction: read from `from_fd` into `buf`, write to `to_fd`.
  /// Returns false if the session died.
  bool relay(Session& s, int from_fd, int to_fd, Bytes& buf);
  void update_interest(Session& s);
  void kill_session(Session& s);
  Session* find(int fd);

  EventLoop& loop_;
  ChaosProxyConfig config_;
  Rng rng_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::unordered_map<int, std::shared_ptr<Session>> by_fd_;  // both fds map to the session
  std::uint64_t sessions_opened_ = 0;
  std::uint64_t sessions_killed_ = 0;
  std::uint64_t bytes_forwarded_ = 0;
};

}  // namespace accountnet::net
