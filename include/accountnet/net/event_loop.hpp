// Single-threaded epoll event loop with a monotonic timer wheel.
//
// The real-transport counterpart of sim::Simulator: file descriptors raise
// edge callbacks, timers fire in deadline order, and time is real
// microseconds since loop construction (so a net::RealNetHost can equate
// "virtual microseconds" of its embedded Simulator with loop time 1:1).
//
// Everything runs on the caller's thread; callbacks may add/remove fds and
// timers freely, including their own. Multiple hosts (several daemons in
// one test process) can share one loop — there is no per-loop global state.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace accountnet::net {

class EventLoop {
 public:
  /// Bitmask of readiness causes handed to an FdCallback.
  enum : std::uint32_t {
    kReadable = 1u << 0,
    kWritable = 1u << 1,
    kError = 1u << 2,  ///< EPOLLERR / EPOLLHUP — the fd is dead or half-dead
  };
  using FdCallback = std::function<void(std::uint32_t events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  bool valid() const { return epoll_fd_ >= 0; }

  /// Microseconds of real time since construction (monotonic clock).
  std::int64_t now_us() const;

  /// Registers `fd` for the given interest mask (kReadable/kWritable).
  /// The callback stays attached until del_fd.
  void add_fd(int fd, std::uint32_t interest, FdCallback cb);
  /// Changes the interest mask of a registered fd.
  void mod_fd(int fd, std::uint32_t interest);
  /// Unregisters; safe on an fd that was never added. Does not close it.
  void del_fd(int fd);

  /// Schedules `fn` at an absolute loop time (past deadlines fire on the
  /// next poll). Returns a token for cancel().
  std::uint64_t schedule_at(std::int64_t when_us, std::function<void()> fn);
  std::uint64_t schedule_after(std::int64_t delay_us, std::function<void()> fn) {
    return schedule_at(now_us() + delay_us, fn);
  }
  /// Cancels a pending timer; a fired or unknown token is a no-op.
  void cancel(std::uint64_t token);

  /// One iteration: waits for fd readiness or the next timer (bounded by
  /// `max_wait_us`), then dispatches everything due. Returns the number of
  /// callbacks dispatched.
  std::size_t poll(std::int64_t max_wait_us);

  /// Polls repeatedly until `duration_us` of real time has elapsed.
  void run_for(std::int64_t duration_us);

  /// Polls until stop() is called (from a callback or timer).
  void run();
  void stop() { stopped_ = true; }

  std::size_t tracked_fds() const { return fds_.size(); }

 private:
  void dispatch_due_timers();

  struct Timer {
    std::int64_t when;
    std::uint64_t token;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Timer& a, const Timer& b) const {
      return a.when != b.when ? a.when > b.when : a.token > b.token;
    }
  };

  int epoll_fd_ = -1;
  std::int64_t epoch_ns_ = 0;
  bool stopped_ = false;
  std::uint64_t next_token_ = 1;
  std::unordered_map<int, FdCallback> fds_;
  std::priority_queue<Timer, std::vector<Timer>, Later> timers_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace accountnet::net
