// Supervised, non-blocking connection management for the framed-TCP
// transport.
//
// A ConnectionManager owns one listening socket plus every live connection
// of a node process, and moves wire::Envelopes between canonical peer
// addresses ("host:port" of the peer's *listening* socket). Peers are dialed
// on demand; inbound connections are adopted as the reply path once their
// first envelope reveals the sender's canonical address.
//
// Supervision policy (every limit observable via "net.conn.*" counters, so
// the fault-matrix tests can assert each path without scraping logs):
//   * connect deadline      — a dial that neither completes nor fails within
//                             connect_timeout is torn down (connect_timeout).
//   * read deadline         — a partially received frame that stops making
//                             progress for partial_frame_timeout means a
//                             half-open or hostile peer (read_timeout). An
//                             accepted connection that never sends a full
//                             frame is bounded by the same clock.
//   * write deadline        — queued bytes the kernel accepts none of for
//                             write_stall_timeout mean the peer stopped
//                             draining (classic half-open: no FIN, dead TCP
//                             window) — torn down (write_timeout).
//   * bounded send queues   — per-peer queues cap at max_send_queue frames;
//                             overflow drops the *oldest* frame (the node's
//                             RPC layer retries; newest traffic is the most
//                             likely to still matter) and counts it
//                             (backpressure.dropped_frames/_bytes). Queues
//                             never grow without bound.
//   * reconnect w/ backoff  — a failed link with traffic still queued redials
//                             on the node's seeded backoff shape
//                             (base·backoff^k, capped, ±jitter); after
//                             max_dial_attempts the queue is surfaced as loss
//                             (undeliverable_frames), never as a hang.
//   * fail-closed framing   — an oversized length header, an undecodable
//                             envelope, a frame/envelope type mismatch, or a
//                             misaddressed envelope closes the connection
//                             (protocol_error); no partial state leaks.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "accountnet/net/event_loop.hpp"
#include "accountnet/net/frame.hpp"
#include "accountnet/obs/metrics.hpp"
#include "accountnet/util/rng.hpp"
#include "accountnet/wire/envelope.hpp"

namespace accountnet::net {

struct TransportConfig {
  std::string host = "127.0.0.1";  ///< listen address (numeric IPv4)
  std::uint16_t port = 0;          ///< listen port; 0 picks an ephemeral port
  /// Advertised port override: when non-zero, self_addr() reports this port
  /// instead of the bound one. For hosts reachable through a forwarder (NAT,
  /// or the ChaosProxy in bench/net_soak) whose public port differs from the
  /// socket's.
  std::uint16_t advertise_port = 0;

  std::int64_t connect_timeout_us = 3 * 1000 * 1000;
  std::int64_t write_stall_timeout_us = 5 * 1000 * 1000;
  std::int64_t partial_frame_timeout_us = 5 * 1000 * 1000;

  std::size_t max_send_queue = 1024;  ///< frames per peer, drop-oldest past this
  std::size_t max_frame_size = kMaxFrameSize;
  std::size_t max_unidentified = 64;  ///< accepted conns awaiting first envelope

  // Reconnect backoff, the Node retry shape: base·backoff^(attempt-1),
  // capped at max, jittered ±jitter_frac from the manager's seeded Rng.
  std::int64_t reconnect_base_us = 200 * 1000;
  double reconnect_backoff = 2.0;
  std::int64_t reconnect_max_us = 5 * 1000 * 1000;
  double reconnect_jitter_frac = 0.1;
  int max_dial_attempts = 5;  ///< per queue-draining episode; 0 = unlimited
};

class ConnectionManager {
 public:
  /// Inbound envelopes, already framed-decoded and address-checked.
  using DeliverFn = std::function<void(wire::Envelope env)>;

  /// `self_addr` is this process's canonical address ("host:port"); inbound
  /// envelopes addressed elsewhere are rejected. `metrics` must outlive the
  /// manager; all counters intern lazily on first use so an idle manager
  /// registers nothing.
  ConnectionManager(EventLoop& loop, TransportConfig config,
                    obs::MetricsRegistry& metrics, std::uint64_t rng_seed);
  ~ConnectionManager();

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// Binds + listens on config.host:config.port. Returns false on bind
  /// failure. Updates self_addr() with the resolved port.
  bool listen();
  std::uint16_t listen_port() const { return listen_port_; }
  const std::string& self_addr() const { return self_addr_; }

  void set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

  /// Queues one envelope toward env.to (canonical "host:port"), dialing if
  /// no usable connection exists. Never blocks; overflow and undeliverable
  /// peers surface as counted losses.
  void send(const wire::Envelope& env);

  /// Tears down every connection and the listener.
  void close_all();

  std::size_t open_connections() const { return by_fd_.size(); }
  std::size_t queued_frames() const;

  /// Counter value by short name ("reconnects", "backpressure.dropped_frames",
  /// ...) — convenience for tests; 0 if never bumped.
  std::uint64_t counter(const std::string& short_name) const;

 private:
  struct Conn {
    int fd = -1;
    bool connecting = false;
    bool dialed = false;
    std::string peer;  ///< canonical addr; "" for an unidentified inbound
    FrameReader reader;
    std::uint64_t read_timer = 0;  ///< partial-frame / first-frame deadline
  };

  /// The send path toward one canonical peer address. Survives individual
  /// socket deaths while traffic is queued (reconnect episodes).
  struct PeerLink {
    std::string addr;
    std::deque<Bytes> queue;  ///< encoded frames, oldest first
    std::size_t queue_bytes = 0;
    std::size_t send_offset = 0;  ///< into queue.front()
    int fd = -1;                  ///< current socket; -1 while down
    int attempts = 0;             ///< dials this episode
    std::uint64_t connect_timer = 0;
    std::uint64_t stall_timer = 0;
    std::uint64_t reconnect_timer = 0;
    bool want_write = false;  ///< EPOLLOUT interest currently armed
  };

  void on_acceptable();
  void on_fd_event(int fd, std::uint32_t events);
  void on_readable(Conn& conn);
  void on_writable_link(PeerLink& link);
  void dial(PeerLink& link);
  void flush(PeerLink& link);
  void enqueue(PeerLink& link, Bytes frame);
  /// Socket-level failure of a link's connection: close, then either
  /// schedule a reconnect (queued traffic, attempts left) or surface the
  /// queue as loss and forget the peer.
  void fail_link(PeerLink& link, const char* why);
  void drop_peer_queue(PeerLink& link);
  void close_conn(int fd);
  void protocol_error(Conn& conn, const char* what);
  void deliver_frame(Conn& conn, Frame frame);
  void arm_read_deadline(Conn& conn);
  void set_link_interest(PeerLink& link, bool want_write);
  std::int64_t backoff_delay(int attempt);
  void bump(const char* short_name, std::uint64_t delta = 1);
  void set_open_gauge();

  EventLoop& loop_;
  TransportConfig config_;
  obs::MetricsRegistry& metrics_;
  Rng rng_;
  DeliverFn deliver_;
  std::string self_addr_;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  std::unordered_map<int, std::unique_ptr<Conn>> by_fd_;
  std::unordered_map<std::string, PeerLink> peers_;
  std::size_t unidentified_ = 0;
  mutable std::unordered_map<std::string, obs::MetricId> counter_ids_;
};

/// Parses "host:port"; returns false on malformed input.
bool parse_addr(const std::string& addr, std::string& host, std::uint16_t& port);

}  // namespace accountnet::net
