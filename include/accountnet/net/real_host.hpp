// Real-network host for an unmodified core::Node.
//
// core::Node speaks only to sim::SimNetwork, and all of its timers live on a
// sim::Simulator. RealNetHost makes that pair real: it embeds a private
// Simulator plus a zero-latency SimNetwork for exactly one node, equates the
// simulator's virtual microseconds with EventLoop::now_us() 1:1, and bridges
// traffic both ways:
//
//   outbound  Node → SimNetwork::send → gateway (off-fabric destination)
//             → wire::Envelope → ConnectionManager::send → real TCP frame
//   inbound   TCP frame → Envelope → fabric_.send → zero-latency delivery
//             into the node's handler at the current virtual time
//
// pump() advances the simulator to "now" and re-arms a loop timer for the
// next virtual deadline, so node timers (shuffle period, RPC retries, sync)
// fire at the right real times without busy-polling. The Node object itself
// is byte-identical to the one the pure simulation runs — that is the whole
// point: the sim↔real interop test replays captured real traffic through the
// simulator and demands identical verdicts.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "accountnet/core/node.hpp"
#include "accountnet/net/connection.hpp"
#include "accountnet/net/event_loop.hpp"
#include "accountnet/sim/network.hpp"
#include "accountnet/sim/simulator.hpp"

namespace accountnet::net {

class RealNetHost {
 public:
  /// Observes every envelope crossing the real-network boundary, both
  /// directions (`inbound` true for frames received off the wire). Drives
  /// message captures for the interop replay test and daemon journals.
  using CaptureFn = std::function<void(const wire::Envelope& env, bool inbound)>;

  /// Binds a listener per `transport` (port 0 = ephemeral). The node's
  /// canonical address is self_addr() — construct the Node *after* listen
  /// succeeds, via make_node(), so the address exists first.
  RealNetHost(EventLoop& loop, TransportConfig transport,
              obs::MetricsRegistry& metrics, std::uint64_t rng_seed);
  ~RealNetHost();

  RealNetHost(const RealNetHost&) = delete;
  RealNetHost& operator=(const RealNetHost&) = delete;

  bool ok() const { return ok_; }
  const std::string& self_addr() const { return conns_.self_addr(); }
  std::uint16_t listen_port() const { return conns_.listen_port(); }

  /// Constructs the hosted node on the embedded fabric at this host's
  /// canonical address. Call exactly once; the host owns the node.
  core::Node& make_node(const crypto::CryptoProvider& provider, BytesView seed32,
                        core::Node::Config config, std::uint64_t node_rng_seed);
  core::Node& node() { return *node_; }
  bool has_node() const { return node_ != nullptr; }

  /// Drains virtual time up to the loop's current instant and schedules the
  /// wakeup for the next node deadline. Called automatically after every
  /// inbound delivery; call it once after start_*() to arm the first timers.
  void pump();

  void set_capture(CaptureFn capture) { capture_ = std::move(capture); }

  sim::Simulator& simulator() { return sim_; }
  sim::SimNetwork& fabric() { return fabric_; }
  ConnectionManager& connections() { return conns_; }

  /// Stops the node (if any) and closes every connection. Safe to repeat.
  void shutdown();

 private:
  void on_wire_envelope(wire::Envelope env);
  void arm_wakeup();

  EventLoop& loop_;
  sim::Simulator sim_;
  sim::SimNetwork fabric_;
  ConnectionManager conns_;
  std::unique_ptr<core::Node> node_;
  CaptureFn capture_;
  std::uint64_t wakeup_timer_ = 0;
  bool ok_ = false;
  bool pumping_ = false;
};

}  // namespace accountnet::net
