// Incremental [u32 length][u32 type][payload] framing for non-blocking
// sockets.
//
// net::MessageSocket reads one frame with blocking read() calls; an event
// loop cannot. FrameReader accumulates whatever bytes the socket produced
// and extracts zero or more complete frames per drain, rolling back to the
// frame boundary when only part of a frame has arrived (the btdht
// rollback-on-partial-read buffer style): a partial header or partial body
// stays buffered untouched until more bytes land.
//
// Fail-closed on hostile input: a length header above `max_frame` poisons
// the reader permanently (the stream offset can never be trusted again) —
// the owning connection must be torn down.
#pragma once

#include <cstdint>
#include <optional>

#include "accountnet/util/bytes.hpp"

namespace accountnet::net {

/// Wire frame cap shared by every framed-TCP path (MessageSocket and the
/// event-loop transport): bounds allocation from untrusted peers.
inline constexpr std::size_t kMaxFrameSize = 16 * 1024 * 1024;
inline constexpr std::size_t kFrameHeaderSize = 8;

struct Frame {
  std::uint32_t type = 0;
  Bytes payload;
};

/// Serializes one frame (header + payload) for the wire.
Bytes encode_frame(std::uint32_t type, BytesView payload);

void put_u32le(std::uint8_t* out, std::uint32_t v);
std::uint32_t get_u32le(const std::uint8_t* in);

class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kMaxFrameSize) : max_frame_(max_frame) {}

  /// Appends raw socket bytes. No parsing happens here; cheap to call from
  /// the read loop. Appending to a poisoned reader is a no-op.
  void append(const std::uint8_t* data, std::size_t len);

  /// Extracts the next complete frame, or nullopt when the buffered bytes
  /// end mid-frame (call again after the next append) or the reader is
  /// poisoned (check poisoned()).
  std::optional<Frame> next();

  /// A length header exceeded max_frame: the stream is unrecoverable.
  bool poisoned() const { return poisoned_; }

  /// Bytes buffered beyond the last extracted frame (a partially received
  /// frame, or zero at a clean boundary). Drives the half-open/slowloris
  /// deadline: a nonzero partial that never completes is a dead or hostile
  /// peer.
  std::size_t partial_bytes() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_;
  Bytes buf_;
  std::size_t pos_ = 0;  ///< start of the first unconsumed byte
  bool poisoned_ = false;
};

}  // namespace accountnet::net
