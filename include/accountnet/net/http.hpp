// Minimal HTTP/1.0 exposition server on the epoll EventLoop, plus a
// blocking client helper for tools and tests.
//
// This is a telemetry sidecar, not a web server: accountnetd serves
// /metrics, /healthz, /timeseries and /status from it. The parsing
// discipline is the FrameReader one — fail closed:
//
//   * only GET is answered; a garbage method gets 400 and the socket closes;
//   * the request head is capped (max_request_bytes) — exceeding it closes
//     the connection immediately (431), so an attacker cannot buffer-bloat;
//   * a head that does not complete within request_timeout_us is dropped
//     (slowloris guard);
//   * at most max_connections sockets are serviced; excess accepts are
//     closed on arrival;
//   * every response carries Connection: close and the server half-closes
//     after the last byte drains — one request per connection, no keep-alive
//     state machine to get wrong.
//
// The server never reads a body: a HEAD/POST/PUT (or any body bytes after
// the blank line) is answered/rejected from the head alone.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "accountnet/net/event_loop.hpp"

namespace accountnet::net {

struct HttpRequest {
  std::string method;
  std::string target;  ///< request target as sent, e.g. "/metrics"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Returns the response for one parsed GET request.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerConfig {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port (tests)
  std::size_t max_request_bytes = 4096;
  std::int64_t request_timeout_us = 5'000'000;
  std::size_t max_connections = 32;
};

class HttpServer {
 public:
  /// Binds 127.0.0.1:<port> and registers with the loop; listening() is
  /// false if the bind failed (port taken). The loop must outlive the
  /// server.
  HttpServer(EventLoop& loop, HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  bool listening() const { return listen_fd_ >= 0; }
  std::uint16_t port() const { return port_; }

  /// Routes every well-formed GET; unset routes 404. Replaces any previous
  /// handler.
  void set_handler(HttpHandler handler) { handler_ = std::move(handler); }

  /// Closes the listener and every open connection (idempotent; the
  /// destructor calls it).
  void close();

  // --- Introspection (tests / metrics) -------------------------------------
  std::size_t open_connections() const { return conns_.size(); }
  std::uint64_t requests_served() const { return served_; }
  /// Connections dropped for cause: oversized head, parse failure, slowloris
  /// timeout, or the connection cap.
  std::uint64_t rejected() const { return rejected_; }

 private:
  struct Conn {
    std::string in;
    std::string out;
    std::size_t out_off = 0;
    std::uint64_t deadline_token = 0;
    bool responding = false;
  };

  void on_accept();
  void on_event(int fd, std::uint32_t events);
  void on_readable(int fd, Conn& c);
  void on_writable(int fd, Conn& c);
  /// Parses the buffered head; true when a response was queued or the
  /// connection was dropped.
  bool try_respond(int fd, Conn& c);
  void respond(int fd, Conn& c, const HttpResponse& r);
  void drop(int fd, bool counted_rejection);

  EventLoop& loop_;
  HttpServerConfig config_;
  HttpHandler handler_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::map<int, Conn> conns_;
  std::uint64_t served_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Blocking one-shot GET (numeric IPv4 host). Used by accountnet-top and
/// the tests; the timeout bounds connect, send and the full read.
struct HttpGetResult {
  bool ok = false;        ///< transport + parse succeeded (any status code)
  int status = 0;
  std::string body;
  std::string error;      ///< transport-level failure description
};
HttpGetResult http_get(const std::string& host, std::uint16_t port,
                       const std::string& target, std::int64_t timeout_ms = 2000);

}  // namespace accountnet::net
