// The paper's combinatorial analysis (Sec. V): expected neighborhood size
// (Algorithm 4), expected common nodes between two neighborhoods (Lemma 1),
// the collusion-tolerance bounds (Lemma 2, Theorem 1), and the
// parameter-selection recipe of Sec. V-B / VI-B.
#pragma once

#include <cstddef>
#include <vector>

namespace accountnet::analysis {

/// |N^d|* = (f^{d+1} - f) / (f - 1): the perfect f-ary-tree upper bound.
double max_neighborhood_size(std::size_t f, std::size_t d);

/// Algorithm 4: expected |N^d| for a uniform-random overlay of |V| nodes
/// with peerset size f and depth limit d. Uses the paper's fractional-n
/// hypergeometric expansion (Example 2 reproduces exactly).
double expected_neighborhood_size(std::size_t network_size, std::size_t f,
                                  std::size_t d);

/// Lemma 1: E[|N_i^d ∩ N_j^d|] = λ_i λ_j / (|V| - 1).
double expected_common_nodes(std::size_t network_size, double lambda_i, double lambda_j);

/// Lemma 2 (Eq. 4): the p_m threshold below which a witness group drawn
/// between neighborhoods of sizes λ_i, λ_j sharing y nodes has a benign
/// majority in expectation (worst case: all common nodes benign).
double pm_bound_pair(double lambda_i, double lambda_j, double common_y);

/// Theorem 1 (Eq. 5): the average-network threshold
/// p_m < (|V| - 1 - E[|N^d|]) / (2 (|V| - 1)).
double pm_bound_average(std::size_t network_size, double expected_nbh);

/// Example 3's inversion: the largest average neighborhood admissible for a
/// given p_m: E[|N^d|] < (|V| - 1)(1 - 2 p_m).
double max_neighborhood_for_pm(std::size_t network_size, double pm);

/// One (f, d) candidate with its analysis numbers and feasibility verdicts.
struct ParameterChoice {
  std::size_t f = 0;
  std::size_t d = 0;
  double expected_nbh = 0.0;
  double expected_common = 0.0;
  double pm_threshold = 0.0;      ///< Theorem 1 threshold for this (f, d).
  bool tolerates_following = false;   ///< case (i): colluders follow protocol
  bool tolerates_separate = false;    ///< case (ii): colluders form own overlay
};

/// Sec. V-B / VI-B recipe: evaluates candidate (f, d) pairs against both
/// adversary strategies for the given |V| and p_m.
/// * case (i) needs p_m < Theorem-1 threshold (neighborhoods not too big);
/// * case (ii) needs E[|N^d|] > p_m |V| with `churn_margin` slack
///   (neighborhoods big enough to outnumber the separated coalition).
std::vector<ParameterChoice> evaluate_parameters(
    std::size_t network_size, double pm, const std::vector<std::size_t>& fs,
    const std::vector<std::size_t>& ds, double churn_margin = 0.05);

}  // namespace accountnet::analysis
