// Overlay graph metrics used by the Appendix-A evaluation (Fig. 22) and by
// the harness snapshots: diameter and average clustering coefficient over the
// directed peer graph, plus degree summaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace accountnet::analysis {

/// Directed overlay snapshot: adjacency[i] = sorted out-neighbors of node i.
using Adjacency = std::vector<std::vector<std::size_t>>;

struct GraphMetrics {
  double diameter = 0.0;              ///< max finite BFS eccentricity (see below)
  double avg_clustering = 0.0;        ///< Watts-Strogatz average, directed form
  double avg_out_degree = 0.0;
  std::size_t unreachable_pairs = 0;  ///< pairs with no directed path (sampled)
};

/// Computes metrics. Diameter uses BFS from every node when
/// |V| <= exact_threshold, else from `sample_sources` random sources (an
/// under-estimate, standard practice for large graphs); clustering uses the
/// directed definition  C_i = |{(u,v) ∈ E : u,v ∈ N(i), u != v}| / (k(k-1)).
GraphMetrics compute_graph_metrics(const Adjacency& adjacency,
                                   std::size_t exact_threshold = 2000,
                                   std::size_t sample_sources = 64,
                                   std::uint64_t seed = 42);

/// BFS distances from `source`; SIZE_MAX marks unreachable nodes.
std::vector<std::size_t> bfs_distances(const Adjacency& adjacency, std::size_t source);

}  // namespace accountnet::analysis
