// Worker-pool decorator for CryptoProvider::verify_batch.
//
// Wraps any backend and fans each verify_batch call across a shared
// util::WorkerPool in contiguous chunks. Jobs are independent and every
// worker writes only its own verdict slots, so the result is bit-identical
// to the wrapped backend for any pool size (the provider determinism
// contract in provider.hpp). Unlike RealCryptoProvider's built-in batch
// path, which spawns fresh std::threads per call, the pool is persistent —
// one condition-variable wake per batch instead of thread creation, which is
// what makes global per-epoch batches (see VerificationEngine::preload)
// worth accumulating.
//
// verify()/vrf_verify()/make_signer() pass straight through, so a
// PooledProvider can be handed anywhere a CryptoProvider is expected
// (e.g. core::Node construction) without behavioural change.
#pragma once

#include <memory>

#include "accountnet/crypto/provider.hpp"

namespace accountnet::util {
class WorkerPool;
}

namespace accountnet::crypto {

class PooledProvider final : public CryptoProvider {
 public:
  /// Borrows both the inner provider and the pool; the caller keeps them
  /// alive for the decorator's lifetime. pool == nullptr (or a pool of 1)
  /// degrades to the inner provider's own verify_batch.
  PooledProvider(const CryptoProvider& inner, util::WorkerPool* pool)
      : inner_(inner), pool_(pool) {}

  std::unique_ptr<Signer> make_signer(BytesView seed32) const override {
    return inner_.make_signer(seed32);
  }

  bool verify(const PublicKeyBytes& pk, BytesView msg, BytesView sig) const override {
    return inner_.verify(pk, msg, sig);
  }

  std::optional<std::array<std::uint8_t, 64>> vrf_verify(
      const PublicKeyBytes& pk, BytesView alpha, BytesView proof) const override {
    return inner_.vrf_verify(pk, alpha, proof);
  }

  void verify_batch(std::span<const VerifyJob> jobs,
                    std::span<VerifyVerdict> verdicts) const override;

  const char* name() const override { return inner_.name(); }

 private:
  const CryptoProvider& inner_;
  util::WorkerPool* pool_;
};

}  // namespace accountnet::crypto
