// Timing decorator for CryptoProvider.
//
// Wraps any backend so every primitive feeds a timer metric:
//
//   crypto.keygen      make_signer (seed -> key derivation)
//   crypto.sign        Signer::sign
//   crypto.vrf_prove   Signer::vrf_prove
//   crypto.vrf_output  Signer::vrf_output
//   crypto.verify      CryptoProvider::verify
//   crypto.vrf_verify  CryptoProvider::vrf_verify
//
// The timers are inert until `registry.set_timing_enabled(true)` — wall-clock
// reads are opt-in per the library-wide simulated-time rule — but observation
// *counts* still tick while timing is off, so call-mix accounting is free.
#pragma once

#include <memory>

#include "accountnet/crypto/provider.hpp"
#include "accountnet/obs/metrics.hpp"

namespace accountnet::crypto {

/// Decorates `inner` with the six crypto timers registered on `registry`.
/// The registry must outlive the returned provider and every signer it makes.
std::unique_ptr<CryptoProvider> make_timed_crypto(std::unique_ptr<CryptoProvider> inner,
                                                  obs::MetricsRegistry& registry);

}  // namespace accountnet::crypto
