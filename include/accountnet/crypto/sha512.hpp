// FIPS 180-4 SHA-512. Streaming and one-shot interfaces.
//
// This is the hash RFC 8032 (Ed25519) and RFC 9381 (ECVRF) specify.
#pragma once

#include <array>
#include <cstdint>

#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha512();

  void update(BytesView data);
  Digest finish();  ///< Finalizes; the object must not be reused afterwards.

  static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, 128> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace accountnet::crypto
