// Ed25519 signatures per RFC 8032, built on fe25519/ge25519/sc25519.
//
// Keys are 32-byte seeds; public keys the usual 32-byte compressed points;
// signatures the 64-byte R||S form. Validated against the RFC 8032 test
// vectors in tests/crypto.
#pragma once

#include <array>
#include <cstdint>

#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

struct Ed25519KeyPair {
  std::array<std::uint8_t, 32> seed;        ///< Private seed (keep secret).
  std::array<std::uint8_t, 32> public_key;  ///< Compressed point A = s*B.
};

/// Derives the public key from a 32-byte seed.
Ed25519KeyPair ed25519_keypair_from_seed(BytesView seed32);

/// Produces the 64-byte signature R||S.
std::array<std::uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp, BytesView msg);

/// Verifies a signature; strict about canonical S (< L).
bool ed25519_verify(BytesView public_key32, BytesView msg, BytesView signature64);

}  // namespace accountnet::crypto
