// FIPS 180-4 SHA-256. Streaming and one-shot interfaces.
//
// Used by the FastCrypto simulation backend (keyed hashing) and by tests; the
// Ed25519/VRF path uses SHA-512 per RFC 8032 / RFC 9381.
#pragma once

#include <array>
#include <cstdint>

#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(BytesView data);
  Digest finish();  ///< Finalizes; the object must not be reused afterwards.

  static Digest hash(BytesView data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

}  // namespace accountnet::crypto
