// Verifiable random function: ECVRF-EDWARDS25519-SHA512-TAI per RFC 9381.
//
// The paper instantiates vrf_i(·) with Algorand's libsodium ECVRF; we build
// the RFC's try-and-increment ciphersuite (suite 0x03) from scratch on the
// same curve. Properties relied on by AccountNet:
//   * determinism + uniqueness: one valid (beta, pi) per (sk, alpha);
//   * verifiability: anyone holding pk checks pi and recomputes beta;
//   * pseudorandomness: beta is indistinguishable from random without sk.
//
// Proof pi is the 80-byte Gamma(32) || c(16) || s(32) encoding; output beta
// is 64 bytes.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "accountnet/crypto/ed25519.hpp"
#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

constexpr std::size_t kVrfProofSize = 80;
constexpr std::size_t kVrfOutputSize = 64;

using VrfProof = std::array<std::uint8_t, kVrfProofSize>;
using VrfOutput = std::array<std::uint8_t, kVrfOutputSize>;

/// Computes the proof pi for input alpha under the Ed25519 keypair.
VrfProof vrf_prove(const Ed25519KeyPair& kp, BytesView alpha);

/// Derives the VRF output beta from a proof (does not verify it).
VrfOutput vrf_proof_to_hash(const VrfProof& proof);

/// Verifies pi against (pk, alpha); returns beta on success.
std::optional<VrfOutput> vrf_verify(BytesView public_key32, BytesView alpha,
                                    BytesView proof80);

}  // namespace accountnet::crypto
