// Scalar arithmetic modulo the edwards25519 group order
// L = 2^252 + 27742317777372353535851937790883648493.
//
// Scalars are canonical 32-byte little-endian integers < L. Reduction uses a
// small fixed-width big-integer with shift-subtract long division: trivially
// auditable, and its cost is negligible next to scalar multiplication.
#pragma once

#include <array>
#include <cstdint>

#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

class Scalar {
 public:
  /// Zero scalar.
  Scalar() : bytes_{} {}

  /// Reduces a little-endian integer of up to 64 bytes mod L.
  static Scalar reduce(BytesView le_bytes);

  /// Loads 32 canonical bytes; returns zero-initialized + false if >= L.
  static bool from_canonical(BytesView b32, Scalar& out);

  static Scalar from_u64(std::uint64_t v);

  const std::array<std::uint8_t, 32>& bytes() const { return bytes_; }

  Scalar add(const Scalar& rhs) const;
  Scalar mul(const Scalar& rhs) const;
  /// (a * b + c) mod L — the Ed25519 signing combination.
  static Scalar muladd(const Scalar& a, const Scalar& b, const Scalar& c);

  bool is_zero() const;
  bool operator==(const Scalar& rhs) const { return bytes_ == rhs.bytes_; }

 private:
  std::array<std::uint8_t, 32> bytes_;  // little-endian, < L
};

}  // namespace accountnet::crypto
