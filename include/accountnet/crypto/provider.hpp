// Pluggable crypto backend for AccountNet.
//
// The protocol code is written against this interface so the same logic runs
// with two instantiations:
//
//   * RealCryptoProvider — Ed25519 signatures + RFC 9381 ECVRF. Used by
//     protocol-correctness tests, the latency case study (Fig. 20), and any
//     deployment-shaped example.
//   * FastCryptoProvider — keyed-SHA-256 stand-ins with the same interface
//     shape and deterministic, uniformly-distributed VRF outputs. It offers
//     ZERO security (anyone can forge), but the large-scale simulation
//     benches only measure graph statistics that depend on the *randomness
//     structure* of shuffling, not on unforgeability; malicious behaviour is
//     modelled explicitly in the harness instead of through forgery attempts.
//
// Both backends are deterministic functions of the node seed, which keeps
// every experiment reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

using PublicKeyBytes = std::array<std::uint8_t, 32>;

/// One deferred public-key check for CryptoProvider::verify_batch(). The
/// views alias caller-owned buffers and must stay valid for the call.
struct VerifyJob {
  enum class Kind : std::uint8_t {
    kSignature = 0,  ///< msg = signed message, sig = signature
    kVrf = 1,        ///< msg = VRF input alpha, sig = VRF proof
  };
  Kind kind = Kind::kSignature;
  PublicKeyBytes pk{};
  BytesView msg;
  BytesView sig;
};

/// Result slot for one VerifyJob. For kVrf jobs that verify, `vrf_output`
/// holds beta; otherwise it stays zeroed.
struct VerifyVerdict {
  bool ok = false;
  std::array<std::uint8_t, 64> vrf_output{};
};

/// Per-node secret-key operations.
class Signer {
 public:
  virtual ~Signer() = default;

  virtual const PublicKeyBytes& public_key() const = 0;

  /// Signature over msg (opaque bytes; size depends on the backend).
  virtual Bytes sign(BytesView msg) const = 0;

  /// VRF proof for input alpha.
  virtual Bytes vrf_prove(BytesView alpha) const = 0;

  /// VRF output (beta) for alpha; equals the hash verified from the proof.
  virtual std::array<std::uint8_t, 64> vrf_output(BytesView alpha) const = 0;
};

/// Public-key operations plus signer construction.
class CryptoProvider {
 public:
  virtual ~CryptoProvider() = default;

  /// Deterministically derives a signer from a 32-byte seed.
  virtual std::unique_ptr<Signer> make_signer(BytesView seed32) const = 0;

  virtual bool verify(const PublicKeyBytes& pk, BytesView msg, BytesView sig) const = 0;

  /// Verifies a VRF proof; returns beta on success.
  virtual std::optional<std::array<std::uint8_t, 64>> vrf_verify(
      const PublicKeyBytes& pk, BytesView alpha, BytesView proof) const = 0;

  /// Resolves every job into the matching verdict slot
  /// (`verdicts.size() == jobs.size()`, enforced).
  ///
  /// Determinism contract: verdicts are bit-identical to calling
  /// verify()/vrf_verify() per job, for every batch size and job order.
  /// Implementations may fan jobs across wall-clock worker threads, but jobs
  /// are independent and each worker writes only its own verdict slots, so
  /// scheduling can never change a result — and no implementation may touch
  /// simulated time or any seeded RNG. The base implementation is a
  /// sequential loop.
  virtual void verify_batch(std::span<const VerifyJob> jobs,
                            std::span<VerifyVerdict> verdicts) const;

  virtual const char* name() const = 0;
};

/// Ed25519 + ECVRF backend.
std::unique_ptr<CryptoProvider> make_real_crypto();

/// Keyed-hash simulation backend (no security; see file comment).
std::unique_ptr<CryptoProvider> make_fast_crypto();

}  // namespace accountnet::crypto
