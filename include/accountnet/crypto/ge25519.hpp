// Group operations on edwards25519 (twisted Edwards curve, a = -1,
// d = -121665/121666), extended coordinates (X : Y : Z : T), T = XY/Z.
//
// Provides compression/decompression per RFC 8032 §5.1.3 and variable-base
// scalar multiplication; enough for Ed25519 and ECVRF.
#pragma once

#include <array>
#include <optional>

#include "accountnet/crypto/fe25519.hpp"
#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

class Ge25519 {
 public:
  /// Neutral element (0, 1).
  static Ge25519 identity();

  /// The standard base point B (y = 4/5, x positive... RFC 8032 sign rules).
  static const Ge25519& base_point();

  /// Decompresses a 32-byte encoding; nullopt if not a curve point.
  static std::optional<Ge25519> from_bytes(BytesView b32);

  /// Canonical 32-byte compressed encoding.
  std::array<std::uint8_t, 32> to_bytes() const;

  Ge25519 add(const Ge25519& rhs) const;
  Ge25519 dbl() const;
  Ge25519 negate() const;
  Ge25519 sub(const Ge25519& rhs) const { return add(rhs.negate()); }

  /// scalar * P; `scalar_le` is a 32-byte little-endian integer (interpreted
  /// mod the group structure implicitly; callers pass reduced scalars).
  Ge25519 scalar_mul(const std::array<std::uint8_t, 32>& scalar_le) const;

  /// 8 * P (clears the cofactor).
  Ge25519 mul_by_cofactor() const;

  bool is_identity() const;
  bool operator==(const Ge25519& rhs) const;

 private:
  Ge25519(Fe25519 x, Fe25519 y, Fe25519 z, Fe25519 t) : x_(x), y_(y), z_(z), t_(t) {}

  Fe25519 x_;
  Fe25519 y_;
  Fe25519 z_;
  Fe25519 t_;
};

/// scalar * B for the standard base point.
Ge25519 ge_scalar_mul_base(const std::array<std::uint8_t, 32>& scalar_le);

}  // namespace accountnet::crypto
