// Arithmetic in GF(2^255 - 19), the base field of edwards25519.
//
// Representation: five 51-bit limbs (radix 2^51), operated on through
// unsigned __int128 accumulation. Limbs of a reduced element are < 2^52;
// to_bytes() produces the canonical (fully reduced) little-endian encoding.
//
// This is a from-scratch implementation (the paper used libsodium); it is
// validated by algebraic property tests and by the RFC 8032 Ed25519 vectors
// that exercise it end-to-end.
#pragma once

#include <array>
#include <cstdint>

#include "accountnet/util/bytes.hpp"

namespace accountnet::crypto {

class Fe25519 {
 public:
  /// Zero element.
  constexpr Fe25519() : limbs_{0, 0, 0, 0, 0} {}

  static Fe25519 zero() { return Fe25519(); }
  static Fe25519 one();
  static Fe25519 from_u64(std::uint64_t v);

  /// Loads a 32-byte little-endian encoding; the top bit is ignored
  /// (RFC 7748 convention). The value is reduced mod p.
  static Fe25519 from_bytes(BytesView b32);

  /// Canonical 32-byte little-endian encoding (fully reduced, < p).
  std::array<std::uint8_t, 32> to_bytes() const;

  Fe25519 operator+(const Fe25519& rhs) const;
  Fe25519 operator-(const Fe25519& rhs) const;
  Fe25519 operator*(const Fe25519& rhs) const;
  Fe25519 square() const;
  Fe25519 negate() const;

  /// Multiplicative inverse (x^(p-2)); inverse of zero is zero.
  Fe25519 invert() const;

  /// x^((p-5)/8), the exponentiation used in square-root extraction.
  Fe25519 pow22523() const;

  bool is_zero() const;
  /// "Negative" per RFC 8032: least significant bit of the canonical encoding.
  bool is_negative() const;
  bool operator==(const Fe25519& rhs) const;

 private:
  explicit constexpr Fe25519(std::array<std::uint64_t, 5> limbs) : limbs_(limbs) {}

  /// One carry-propagation pass; keeps limbs < 2^52.
  void carry();

  Fe25519 pow(const std::uint8_t exponent_le[32]) const;

  std::array<std::uint64_t, 5> limbs_;
};

/// sqrt(-1) mod p; needed for point decompression.
const Fe25519& fe_sqrt_m1();

/// Edwards curve constant d = -121665/121666 mod p.
const Fe25519& fe_edwards_d();

/// 2d, used in extended-coordinate point addition.
const Fe25519& fe_edwards_2d();

}  // namespace accountnet::crypto
