// Precondition/invariant checking.
//
// AN_ENSURE throws (it guards against caller misuse and protocol-state
// corruption that tests must be able to observe); it is never compiled out.
#pragma once

#include <stdexcept>
#include <string>

namespace accountnet {

class EnsureError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void ensure_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  throw EnsureError(std::string("AN_ENSURE failed: ") + expr + " at " + file + ":" +
                    std::to_string(line) + (msg.empty() ? "" : (": " + msg)));
}

}  // namespace accountnet

#define AN_ENSURE(cond)                                                  \
  do {                                                                   \
    if (!(cond)) ::accountnet::ensure_fail(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define AN_ENSURE_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) ::accountnet::ensure_fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
