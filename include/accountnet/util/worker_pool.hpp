// Persistent worker-thread pool for the parallel simulation paths.
//
// One pool is created per parallel run (sharded scheduler epochs, harness
// wave execution, pooled crypto batches) and reused across every barrier, so
// the per-epoch cost is a condition-variable wake instead of thread spawns
// (crypto::RealCryptoProvider::verify_batch historically spawned fresh
// threads per call; see crypto/pooled.hpp for the pool-backed decorator).
//
// Determinism contract: run(n, fn) invokes fn(i) exactly once for every
// i < n and returns only after all calls finished (acquire/release on the
// internal counters orders all worker writes before the caller continues).
// Items are claimed from a shared atomic cursor, so WHICH thread runs an
// item — and in what wall-clock order — is scheduling-dependent; callers
// must keep fn(i)'s observable effects confined to item i's own slots
// (plus relaxed-atomic counters) for results to be thread-count invariant.
//
// threads <= 1 degrades to an inline sequential loop on the caller's thread
// (no threads are created), so a pool of one is byte-identical to no pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace accountnet::util {

class WorkerPool {
 public:
  /// Creates `threads` persistent workers (0 and 1 both mean "inline").
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Thread count the pool was built with (>= 1; 0 is normalized to 1).
  std::size_t threads() const { return threads_; }

  /// Runs fn(0..n-1) across the workers and the calling thread; blocks until
  /// every item completed. Not reentrant: fn must never call back into run()
  /// on the same pool (workers would deadlock waiting for themselves).
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::uint64_t job_id_ = 0;  ///< bumps per run(); wakes workers exactly once
  std::size_t arrivals_ = 0;  ///< workers parked after draining this job
  std::atomic<std::size_t> cursor_{0};
  std::atomic<std::size_t> completed_{0};
  bool stop_ = false;
};

}  // namespace accountnet::util
