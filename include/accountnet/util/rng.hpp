// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in this repository is seeded explicitly so runs are
// reproducible bit-for-bit; std::random_device is never used inside the
// library. The generator is xoshiro256++ seeded through SplitMix64, which is
// the conventional pairing recommended by the xoshiro authors.
#pragma once

#include <cstdint>
#include <vector>

namespace accountnet {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ deterministic RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit draw.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using rejection sampling. bound > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Normal draw via Box-Muller.
  double normal(double mean, double stddev);

  /// Exponential draw with the given mean.
  double exponential(double mean);

  /// True with probability p.
  bool chance(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Draws `k` distinct indices from [0, n). k <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Splits off an independently-seeded child generator.
  Rng fork();

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace accountnet
