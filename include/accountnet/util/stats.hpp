// Lightweight statistics accumulators used by the experiment harness and
// benches to summarize measured distributions the way the paper's plots do
// (mean, variance, percentiles, histograms).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace accountnet {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples for exact percentile queries; fine for bench-scale data.
class Samples {
 public:
  void add(double x) { data_.push_back(x); }
  void reserve(std::size_t n) { data_.reserve(n); }
  std::size_t count() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// p in [0,100]; linear interpolation between order statistics.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& data() const { return data_; }

 private:
  mutable std::vector<double> data_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t bucket(std::size_t i) const { return counts_[i]; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Multi-line ASCII rendering (one row per bucket, bar + count).
  std::string render(std::size_t bar_width = 40) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace accountnet
