// Minimal recursive-descent JSON parser for the repo's own artifacts.
//
// Consumers: tools/benchdiff (BENCH_*.json rows), tools/accountnet-top
// (daemon /status and /timeseries responses), and obs::TimeSeriesScraper
// (reloading dumped trajectories). The grammar is full JSON; the
// implementation is deliberately small and fail-closed:
//
//   * parse() returns nullopt on ANY malformed input — no partial values,
//     no exceptions on hostile bytes (daemon responses cross a real socket).
//   * Depth is bounded (kMaxDepth) so a hostile "[[[[..." cannot blow the
//     stack.
//   * Numbers are doubles (the artifacts never need 64-bit-exact integers
//     above 2^53; timestamps in µs fit until year ~2255).
//
// This is a parsing utility, not a serializer: writers in this repo compose
// JSON by hand (obs/sink.hpp) so field order stays a stable, diffable part
// of the format.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace accountnet::util {

class JsonValue;
using JsonObject = std::map<std::string, JsonValue>;  // sorted, deterministic
using JsonArray = std::vector<JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const { return *array_; }
  const JsonObject& as_object() const { return *object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const;
  /// Typed conveniences over get(); fall back to `def` on absence/mismatch.
  double get_number(std::string_view key, double def = 0.0) const;
  std::string get_string(std::string_view key, const std::string& def = "") const;

  static JsonValue make_null() { return JsonValue(); }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double d);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(JsonArray a);
  static JsonValue make_object(JsonObject o);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses one complete JSON document (leading/trailing whitespace allowed);
/// nullopt on any syntax error, trailing garbage, or depth > kMaxDepth.
std::optional<JsonValue> json_parse(std::string_view text);

inline constexpr std::size_t kJsonMaxDepth = 64;

}  // namespace accountnet::util
