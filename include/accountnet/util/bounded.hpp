// Size-capped hash containers with insertion-order (FIFO) eviction.
//
// Node-local bookkeeping keyed by peer address or query id (duplicate-query
// suppression, per-partner failure counts, recorded leavers) would otherwise
// grow without bound over a long-lived network: every address ever seen stays
// resident forever. These wrappers cap the live size; once full, inserting a
// new key evicts the oldest surviving key. Eviction can re-admit a forgotten
// key later (e.g. a re-served neighborhood query), which the protocol already
// tolerates — the caps trade a rare duplicate for bounded memory.
//
// The insertion-order log tolerates erase() by lazily skipping stale keys and
// compacting once the log exceeds twice the capacity, so the log itself stays
// O(capacity) even under heavy insert/erase churn.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "accountnet/util/ensure.hpp"

namespace accountnet {

/// Set with FIFO eviction once `capacity` distinct keys are resident.
template <typename K>
class BoundedSet {
 public:
  explicit BoundedSet(std::size_t capacity) : capacity_(capacity) {
    AN_ENSURE_MSG(capacity > 0, "BoundedSet capacity must be positive");
  }

  /// Returns true if the key was newly inserted (matching std::set semantics).
  bool insert(const K& key) {
    if (set_.contains(key)) return false;
    evict_if_full();
    set_.insert(key);
    order_.push_back(key);
    return true;
  }

  bool contains(const K& key) const { return set_.contains(key); }

  bool erase(const K& key) {
    const bool removed = set_.erase(key) > 0;
    if (removed) maybe_compact();
    return removed;
  }

  std::size_t size() const { return set_.size(); }
  std::size_t capacity() const { return capacity_; }
  /// Total keys dropped to make room (monotonic; for leak diagnostics).
  std::uint64_t evictions() const { return evictions_; }

 private:
  void evict_if_full() {
    while (set_.size() >= capacity_) {
      // Pop log entries until one still resident: erased keys leave stale
      // log entries behind.
      AN_ENSURE(!order_.empty());
      const K victim = order_.front();
      order_.pop_front();
      if (set_.erase(victim) > 0) ++evictions_;
    }
  }

  void maybe_compact() {
    if (order_.size() <= 2 * capacity_) return;
    std::deque<K> kept;
    for (const auto& k : order_) {
      if (set_.contains(k)) kept.push_back(k);
    }
    order_ = std::move(kept);
  }

  std::size_t capacity_;
  std::unordered_set<K> set_;
  std::deque<K> order_;  ///< insertion log; may hold stale (erased) keys
  std::uint64_t evictions_ = 0;
};

/// Map with FIFO eviction once `capacity` distinct keys are resident.
template <typename K, typename V>
class BoundedMap {
 public:
  explicit BoundedMap(std::size_t capacity) : capacity_(capacity) {
    AN_ENSURE_MSG(capacity > 0, "BoundedMap capacity must be positive");
  }

  /// operator[]-style access: default-constructs (and possibly evicts) when
  /// the key is absent.
  V& at_or_insert(const K& key) {
    const auto it = map_.find(key);
    if (it != map_.end()) return it->second;
    evict_if_full();
    order_.push_back(key);
    return map_[key];
  }

  void put(const K& key, V value) { at_or_insert(key) = std::move(value); }

  /// nullptr when absent.
  const V* find(const K& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  bool contains(const K& key) const { return map_.contains(key); }

  bool erase(const K& key) {
    const bool removed = map_.erase(key) > 0;
    if (removed) maybe_compact();
    return removed;
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  void evict_if_full() {
    while (map_.size() >= capacity_) {
      AN_ENSURE(!order_.empty());
      const K victim = order_.front();
      order_.pop_front();
      if (map_.erase(victim) > 0) ++evictions_;
    }
  }

  void maybe_compact() {
    if (order_.size() <= 2 * capacity_) return;
    std::deque<K> kept;
    for (const auto& k : order_) {
      if (map_.contains(k)) kept.push_back(k);
    }
    order_ = std::move(kept);
  }

  std::size_t capacity_;
  std::unordered_map<K, V> map_;
  std::deque<K> order_;
  std::uint64_t evictions_ = 0;
};

}  // namespace accountnet
