// Fixed-width console table printer used by the bench harness to emit the
// same rows the paper's tables and figure series report.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace accountnet {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; cells beyond the header count are dropped, missing cells
  /// render empty.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string num(std::size_t v);

  void print(std::ostream& os) const;
  std::string to_string() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace accountnet
