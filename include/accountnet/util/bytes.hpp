// Byte-buffer primitives shared by every AccountNet module.
//
// All protocol material (keys, signatures, VRF proofs, wire messages) is
// carried as `Bytes`. Helpers here are deliberately small: hex codecs for
// logging/tests and constant-free concatenation for building signing inputs.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace accountnet {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Renders `data` as lowercase hex.
std::string to_hex(BytesView data);

/// Parses lowercase/uppercase hex; throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Copies a string's bytes (no terminator) into a fresh buffer.
Bytes bytes_of(std::string_view s);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Appends a 64-bit value little-endian.
void append_u64le(Bytes& dst, std::uint64_t v);

/// Concatenates any number of byte views.
template <typename... Views>
Bytes concat(const Views&... views) {
  Bytes out;
  std::size_t total = 0;
  ((total += std::size(views)), ...);
  out.reserve(total);
  (out.insert(out.end(), std::begin(views), std::end(views)), ...);
  return out;
}

/// Constant-time equality for secret-dependent comparisons.
bool ct_equal(BytesView a, BytesView b);

}  // namespace accountnet
