// The peerset N_i: a bounded, ordered set of peers.
//
// Kept sorted (by PeerId ordering) so that Algorithm 2's index-based random
// selection is well-defined and identical on the prover and verifier sides.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "accountnet/core/types.hpp"

namespace accountnet::core {

class Peerset {
 public:
  Peerset() = default;
  /// Builds from arbitrary-order peers; deduplicates.
  explicit Peerset(std::vector<PeerId> peers);

  /// Inserts; returns false if already present.
  bool insert(const PeerId& peer);
  /// Removes; returns false if absent.
  bool erase(const PeerId& peer);
  bool contains(const PeerId& peer) const;

  std::size_t size() const { return peers_.size(); }
  bool empty() const { return peers_.empty(); }
  const PeerId& at(std::size_t index) const;

  const std::vector<PeerId>& sorted() const { return peers_; }

  /// Set difference: *this minus `other`'s elements.
  Peerset minus(const std::vector<PeerId>& other) const;
  /// In-place union (bounded only by the caller).
  void insert_all(const std::vector<PeerId>& peers);

  friend bool operator==(const Peerset&, const Peerset&) = default;

 private:
  std::vector<PeerId> peers_;  // sorted, unique
};

}  // namespace accountnet::core
