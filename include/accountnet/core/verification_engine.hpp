// VerificationEngine: the shared fast path for every proof check.
//
// The paper re-verifies a counterpart's entire retained history suffix on
// every exchange — reconstruction plus one signature/VRF check per entry —
// which `bench/abl_verification_cost` shows dominates protocol cost. The
// engine keeps the *verdicts* of the pure verification functions
// (core/history, core/select, core/shuffle, core/witness) while removing
// repeated crypto work through three layers:
//
//   1. Incremental reconstruction — a bounded per-counterpart memo of the
//      last verified suffix (entry count, rolling SHA-256 chain digest, last
//      round, reconstructed peerset). A returning partner whose new suffix
//      extends the previously verified one byte-for-byte only proves the new
//      entries; an unchanged suffix with an unchanged claim passes outright.
//      Memos are dropped on invalidate() (quarantine/eviction/leave).
//   2. Verdict memoization — bounded caches keyed by a digest of
//      (generation, signer key, message, signature) for signatures and
//      (generation, key, alpha, proof) for VRF proofs, shared across
//      shuffle, witness and accusation re-verification. Both positive and
//      negative verdicts are cached: the underlying providers are
//      deterministic, so a verdict can never change for fixed inputs.
//      invalidate() bumps the signer's generation, orphaning its entries.
//   3. Batching — cache misses are resolved through
//      crypto::CryptoProvider::verify_batch(), which the real backend fans
//      across a worker pool (see crypto/provider.hpp for the determinism
//      contract).
//
// The engine subclasses crypto::CryptoProvider, so it drops into any
// existing verification call site as a memoizing decorator (accusation
// re-verification, body-signature checks). It is deliberately *stateful* —
// one engine per verifying node (core::Node, harness HarnessNode) — while
// the verification logic it replays stays in the pure functions; both the
// provider-backed and engine-backed paths resolve the same
// plan_history_checks()/verify_sample_with() plans, which is what makes the
// verdicts bit-identical with caches on or off and any batch size.
//
// Not thread-safe: one engine belongs to one simulation thread (worker
// threads inside verify_batch never re-enter the engine).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "accountnet/core/checkpoint.hpp"
#include "accountnet/core/history.hpp"
#include "accountnet/core/peerset.hpp"
#include "accountnet/core/types.hpp"
#include "accountnet/core/verify.hpp"
#include "accountnet/crypto/provider.hpp"
#include "accountnet/obs/metrics.hpp"
#include "accountnet/util/bounded.hpp"

namespace accountnet::core {

class SamplerBackend;

/// Deferred crypto jobs gathered from one message for a cross-node epoch
/// batch (VerificationEngine::gather_* / preload). The sink owns every
/// payload buffer the jobs view into — derived alphas, history-check
/// payloads, nonce payloads — via stable-address deques; signature and proof
/// views alias the gathered message itself, which must outlive the sink.
struct GatherSink {
  std::vector<crypto::VerifyJob> jobs;
  std::deque<Bytes> owned;             ///< payload buffers the job views alias
  std::deque<HistoryCheckPlan> plans;  ///< keeps per-entry payloads alive

  /// Appends a signature job whose message the sink must own.
  void add_sig(const crypto::PublicKeyBytes& pk, Bytes msg, BytesView sig);
  /// Appends a VRF job whose alpha the sink must own.
  void add_vrf(const crypto::PublicKeyBytes& pk, Bytes alpha, BytesView proof);
};

class VerificationEngine final : public crypto::CryptoProvider {
 public:
  struct Config {
    bool enable_cache = true;  ///< verdict memoization + history memos
    bool enable_batch = true;  ///< resolve cache misses via verify_batch()
    std::size_t sig_cache_capacity = 4096;
    std::size_t vrf_cache_capacity = 4096;
    std::size_t history_memo_capacity = 256;
    /// Fewer misses than this are resolved with direct per-primitive calls
    /// (a batch of one just adds dispatch overhead).
    std::size_t batch_min = 2;
  };

  /// Monotonic engine-lifetime counters (also mirrored to obs metrics when a
  /// registry is attached).
  struct Stats {
    std::uint64_t sig_hits = 0;
    std::uint64_t sig_misses = 0;
    std::uint64_t vrf_hits = 0;
    std::uint64_t vrf_misses = 0;
    std::uint64_t history_exact = 0;     ///< memo hit: unchanged suffix+claim
    std::uint64_t history_extended = 0;  ///< memo hit: only new entries checked
    std::uint64_t history_full = 0;      ///< no usable memo: full replay
    std::uint64_t invalidations = 0;
    std::uint64_t batch_calls = 0;  ///< inner verify_batch() invocations
    std::uint64_t batch_jobs = 0;   ///< jobs resolved through those calls
    std::uint64_t evictions = 0;    ///< FIFO drops across all three caches
  };

  /// `inner` must outlive the engine. `registry` is optional; when given,
  /// verify.cache.{hit,miss,evict} counters, verify.cache.*.occupancy
  /// gauges and the verify.batch.* series are kept current.
  explicit VerificationEngine(const crypto::CryptoProvider& inner);
  VerificationEngine(const crypto::CryptoProvider& inner, Config config,
                     obs::MetricsRegistry* registry = nullptr);

  // --- crypto::CryptoProvider (memoizing decorator) ------------------------

  std::unique_ptr<crypto::Signer> make_signer(BytesView seed32) const override;
  bool verify(const crypto::PublicKeyBytes& pk, BytesView msg,
              BytesView sig) const override;
  std::optional<std::array<std::uint8_t, 64>> vrf_verify(
      const crypto::PublicKeyBytes& pk, BytesView alpha,
      BytesView proof) const override;
  /// Cache-aware: hits fill their verdict slots directly; misses are
  /// resolved through the inner provider (batched when enable_batch and at
  /// least batch_min of them) and then cached.
  void verify_batch(std::span<const crypto::VerifyJob> jobs,
                    std::span<crypto::VerifyVerdict> verdicts) const override;
  const char* name() const override;

  // --- High-level verification ---------------------------------------------

  /// verify_history_suffix() through the partner memo + verdict caches.
  VerifyResult verify_history(const std::vector<HistoryEntry>& suffix,
                              const PeerId& owner, const Peerset& claimed);

  /// verify_history_suffix_anchored() through the verdict caches: the
  /// checkpoint signature and the per-entry counterpart signatures resolve
  /// through the cache/batch path, and only the post-checkpoint suffix is
  /// replayed (base = the sealed peerset). Anchored suffixes are bounded by
  /// the owner's checkpoint interval, so no partner memo is kept for them.
  VerifyResult verify_history_anchored(const Checkpoint& ck,
                                       const std::vector<HistoryEntry>& suffix,
                                       const PeerId& owner, const Peerset& claimed);

  /// verify_sample() with all VRF proofs prefetched through the cache/batch
  /// path, then replayed by verify_sample_with().
  VerifyResult verify_sample(const crypto::PublicKeyBytes& prover_key,
                             const Peerset& candidates, std::size_t want,
                             std::string_view domain, BytesView nonce,
                             const std::vector<Bytes>& proofs,
                             const std::vector<PeerId>& claimed);

  /// verify_one() through the same path.
  VerifyResult verify_one(const crypto::PublicKeyBytes& prover_key,
                          const Peerset& candidates, std::string_view domain,
                          BytesView nonce, const std::vector<Bytes>& proofs,
                          const PeerId& claimed);

  /// Backend-dispatching overloads (core/sampler.hpp). The default VRF
  /// backend takes the prefetch/batch path above (bit-identical to the
  /// pre-interface engine); any other backend replays through its own
  /// verify() with this engine standing in as the CryptoProvider, so
  /// primitive VRF checks still resolve through the verdict caches. A
  /// backend without per-signer verdict semantics bypasses the caches
  /// entirely (resolved against the inner provider) — invalidate() only
  /// knows how to orphan per-signer state.
  VerifyResult verify_sample(const SamplerBackend& backend,
                             const crypto::PublicKeyBytes& prover_key,
                             const Peerset& candidates, std::size_t want,
                             std::string_view domain, BytesView nonce,
                             const std::vector<Bytes>& proofs,
                             const std::vector<PeerId>& claimed);

  /// Single-pick variant of the backend-dispatching overload.
  VerifyResult verify_one(const SamplerBackend& backend,
                          const crypto::PublicKeyBytes& prover_key,
                          const Peerset& candidates, std::string_view domain,
                          BytesView nonce, const std::vector<Bytes>& proofs,
                          const PeerId& claimed);

  // --- Epoch-global batching (docs/PARALLELISM.md) --------------------------
  //
  // Gather/preload split the cache-miss crypto of a future verify_* call out
  // of the call itself, so misses from MANY nodes' checks can be resolved in
  // one global CryptoProvider::verify_batch and handed back before the
  // verifies replay (which then run entirely cache-hot). All gathers are
  // best-effort probes: they never mutate caches, stats or metrics, and a
  // message that would fail a structural check merely wastes its prefetched
  // verdicts. With enable_cache off they gather nothing (preload would have
  // nowhere to put the verdicts).

  /// Gathers the signature job for (pk, msg, sig) unless already cached.
  void gather_sig(GatherSink& sink, const crypto::PublicKeyBytes& pk, Bytes msg,
                  BytesView sig) const;
  /// Gathers the VRF job for (pk, alpha, proof) unless already cached.
  void gather_vrf(GatherSink& sink, const crypto::PublicKeyBytes& pk, Bytes alpha,
                  BytesView proof) const;
  /// Memo-aware: mirrors verify_history's exact/extension/full decision and
  /// gathers only the per-entry signature checks that decision would run.
  void gather_history(GatherSink& sink, const std::vector<HistoryEntry>& suffix,
                      const PeerId& owner, const Peerset& claimed) const;
  /// Checkpoint signature + full post-checkpoint plan (mirrors
  /// verify_history_anchored).
  void gather_history_anchored(GatherSink& sink, const Checkpoint& ck,
                               const std::vector<HistoryEntry>& suffix,
                               const PeerId& owner) const;
  /// Gathers the VRF prefetch jobs verify_sample would batch (same guards:
  /// non-empty draw, no proof flood).
  void gather_sample(GatherSink& sink, const crypto::PublicKeyBytes& prover_key,
                     const Peerset& candidates, std::size_t want,
                     std::string_view domain, BytesView nonce,
                     const std::vector<Bytes>& proofs) const;

  /// Installs externally resolved verdicts put-if-absent, so the subsequent
  /// verify_* replay hits the caches instead of the inner provider; returns
  /// how many verdicts were actually installed (duplicates within `jobs`
  /// collapse). Verdicts must come from a provider honouring the determinism
  /// contract (crypto/provider.hpp), which is what keeps a preloaded cache
  /// verdict-equivalent to an organically filled one.
  std::size_t preload(std::span<const crypto::VerifyJob> jobs,
                      std::span<const crypto::VerifyVerdict> verdicts) const;

  // --- Invalidation ---------------------------------------------------------

  /// Drops ALL cached state derived from `node`: its history memo and (via a
  /// generation bump) every cached signature/VRF verdict under its key.
  /// Must be called when a peer is quarantined, evicted or reported as left —
  /// a stale memo must never vouch for a partner whose standing changed.
  void invalidate(const PeerId& node);

  /// Drops everything (tests / reconfiguration).
  void clear();

  const Stats& stats() const { return stats_; }
  const Config& config() const { return config_; }
  const crypto::CryptoProvider& inner() const { return inner_; }
  std::size_t sig_cache_size() const { return sig_cache_.size(); }
  std::size_t vrf_cache_size() const { return vrf_cache_.size(); }
  std::size_t history_memo_size() const { return memos_.size(); }

 private:
  /// Last verified state for one counterpart. `chain` is the rolling digest
  /// c_k = SHA256(c_{k-1} ‖ SHA256(encode_entry(e_k))) over the verified
  /// suffix; `peerset` is the claim that verification reconstructed (the
  /// replay base for extension).
  struct PartnerMemo {
    std::size_t entry_count = 0;
    std::array<std::uint8_t, 32> chain{};
    Round last_round = 0;
    Peerset peerset;
  };
  struct VrfVerdict {
    bool ok = false;
    std::array<std::uint8_t, 64> beta{};
  };

  std::uint64_t generation(const crypto::PublicKeyBytes& pk) const;
  std::string sig_key(const crypto::PublicKeyBytes& pk, BytesView msg,
                      BytesView sig) const;
  std::string vrf_key(const crypto::PublicKeyBytes& pk, BytesView alpha,
                      BytesView proof) const;
  /// Resolves `jobs[miss[i]]` through the inner provider (batched or not)
  /// into `verdicts`; counts + times the batch.
  void resolve_misses(std::span<const crypto::VerifyJob> jobs,
                      const std::vector<std::size_t>& miss,
                      std::span<crypto::VerifyVerdict> verdicts) const;
  /// Plan-based suffix check over suffix[begin..), replaying deltas onto
  /// `base`; shared by the full and extension paths.
  VerifyResult verify_entries(const std::vector<HistoryEntry>& suffix,
                              std::size_t begin, std::optional<Round> prev_round,
                              const PeerId& owner, const Peerset& base,
                              const Peerset& claimed);
  void sync_evictions() const;
  void update_gauges() const;

  const crypto::CryptoProvider& inner_;
  Config config_;
  obs::MetricsRegistry* registry_;

  // mutable: the CryptoProvider interface is const, and memo upkeep is
  // observable only through stats/metrics, never through verdicts.
  mutable BoundedMap<std::string, bool> sig_cache_;
  mutable BoundedMap<std::string, VrfVerdict> vrf_cache_;
  BoundedMap<std::string, PartnerMemo> memos_;
  /// Invalidation generations per signer key; absent = 0. Bounded like the
  /// caches — losing a generation can only re-expose verdicts for
  /// immutable (key, message, signature) facts, never a partner memo.
  mutable BoundedMap<std::string, std::uint64_t> generations_;
  mutable std::uint64_t reported_evictions_ = 0;
  mutable Stats stats_;

  struct MetricIds {
    obs::MetricId hit = 0, miss = 0, evict = 0, invalidations = 0;
    obs::MetricId history_exact = 0, history_extended = 0, history_full = 0;
    obs::MetricId batch_calls = 0, batch_jobs = 0, batch_resolve = 0;
    obs::MetricId occ_sig = 0, occ_vrf = 0, occ_memo = 0;
  };
  MetricIds ids_{};
};

}  // namespace accountnet::core
