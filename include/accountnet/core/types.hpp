// Core identity types for AccountNet.
//
// A network participant is identified by its address (the paper's addr_i —
// think IP:port) bound to an identity public key. Sec. II-D assumes a Sybil
// mitigation exists; here the binding addr <-> key is taken as given and
// every signature/VRF check uses the key carried in the PeerId.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "accountnet/crypto/provider.hpp"
#include "accountnet/util/bytes.hpp"

namespace accountnet::core {

/// Protocol round counter (per node).
using Round = std::uint64_t;

struct PeerId {
  std::string addr;               ///< Unique network address.
  crypto::PublicKeyBytes key{};   ///< Identity public key.

  /// Ordering is by address: this defines the "sorted list of peers" that
  /// Algorithm 2 (Select) indexes into, so all nodes agree on it.
  friend std::strong_ordering operator<=>(const PeerId& a, const PeerId& b) {
    if (const auto c = a.addr <=> b.addr; c != 0) return c;
    return a.key <=> b.key;
  }
  friend bool operator==(const PeerId&, const PeerId&) = default;
};

struct PeerIdHash {
  std::size_t operator()(const PeerId& p) const {
    std::size_t h = std::hash<std::string>{}(p.addr);
    // Fold in the first key bytes; addr is already unique, this hardens the
    // hash against adversarial addr collisions in containers.
    std::size_t k = 0;
    for (int i = 0; i < 8; ++i) k = (k << 8) | p.key[static_cast<std::size_t>(i)];
    return h ^ (k + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};

}  // namespace accountnet::core
