// Evidence capture and dispute resolution (Sec. III / Sec. V).
//
// Witnesses relay data 1-hop between producer and consumer and log a signed
// digest of each relayed message. A third-party resolver later collects the
// witness testimonies for a (channel, sequence) pair and decides by simple
// majority whose claim — producer's or consumer's — matches what the network
// actually carried. This is exactly the capability Sec. II-C shows bare
// digital signatures cannot provide.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "accountnet/core/types.hpp"
#include "accountnet/crypto/sha256.hpp"

namespace accountnet::core {

using DataDigest = crypto::Sha256::Digest;

/// Content digest used throughout the evidence layer.
DataDigest digest_of(BytesView payload);

/// Signing payload for a witness testimony.
Bytes evidence_payload(std::uint64_t channel_id, std::uint64_t sequence,
                       const DataDigest& digest);

/// One witness's signed record of one relayed message.
struct Testimony {
  PeerId witness;
  std::uint64_t channel_id = 0;
  std::uint64_t sequence = 0;
  DataDigest digest{};
  Bytes signature;  ///< witness signature over evidence_payload(...)
};

/// Verifies a testimony's signature.
bool verify_testimony(const Testimony& t, const crypto::CryptoProvider& provider);

/// Per-witness evidence store.
class EvidenceLog {
 public:
  explicit EvidenceLog(PeerId owner) : owner_(std::move(owner)) {}

  /// Records a relayed payload and returns the signed testimony.
  Testimony record(const crypto::Signer& signer, std::uint64_t channel_id,
                   std::uint64_t sequence, BytesView payload);

  std::optional<Testimony> lookup(std::uint64_t channel_id, std::uint64_t sequence) const;
  std::size_t size() const { return records_.size(); }

 private:
  PeerId owner_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Testimony> records_;
};

/// A party's claim about what was sent/received.
struct Claim {
  PeerId party;
  std::optional<DataDigest> digest;  ///< nullopt = "no such transfer happened"
};

enum class Verdict {
  kClaimsAgree,          ///< No dispute: both parties match the evidence.
  kProducerDishonest,    ///< Majority evidence matches the consumer.
  kConsumerDishonest,    ///< Majority evidence matches the producer.
  kBothDishonest,        ///< Majority evidence matches neither claim.
  kInconclusive,         ///< No digest reaches a strict majority.
};

/// Stable machine-readable tag (metric labels, span attributes).
inline const char* verdict_tag(Verdict v) {
  switch (v) {
    case Verdict::kClaimsAgree: return "claims_agree";
    case Verdict::kProducerDishonest: return "producer_dishonest";
    case Verdict::kConsumerDishonest: return "consumer_dishonest";
    case Verdict::kBothDishonest: return "both_dishonest";
    case Verdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

struct Resolution {
  Verdict verdict = Verdict::kInconclusive;
  std::optional<DataDigest> majority_digest;
  std::size_t majority_count = 0;
  std::size_t valid_testimonies = 0;
  std::size_t invalid_testimonies = 0;  ///< bad signatures / wrong channel-seq
  /// Witnesses that signed *conflicting* testimonies for this (channel, seq).
  /// Their testimonies are excluded from the tally, and each conflicting
  /// pair is automatic accusation material (core/accusation.hpp,
  /// AccusationKind::kTestimonyEquivocation).
  std::vector<PeerId> equivocators;
};

/// Third-party resolution: majority vote over verified testimonies.
/// Testimonies with bad signatures or mismatched (channel, seq) are ignored
/// (counted as invalid). A strict majority of the *witness group size*
/// (`group_size`) is required so silent witnesses cannot be hidden.
Resolution resolve_dispute(std::uint64_t channel_id, std::uint64_t sequence,
                           const Claim& producer_claim, const Claim& consumer_claim,
                           const std::vector<Testimony>& testimonies,
                           std::size_t group_size,
                           const crypto::CryptoProvider& provider);

}  // namespace accountnet::core
