// Verifiable random selection (Algorithms 1/2 machinery).
//
// select_index implements Algorithm 2: with Q = ceil(log2 |X|), the low Q
// bits of the VRF output index the sorted list; an index >= |X| means Null
// and the caller retries with the next attempt counter. Because the VRF is
// deterministic and proof-carrying, a counterpart can replay the entire
// attempt sequence from the proofs and detect any biased draw.
//
// draw_sample/verify_sample implement the repeated-draw loop used both for
// shuffle samples (alpha seeded by the counterpart's round number, so the
// prover cannot pre-select) and for witness sampling (alpha seeded by the
// channel nonce agreed by both endpoints).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "accountnet/core/history.hpp"
#include "accountnet/core/peerset.hpp"
#include "accountnet/crypto/provider.hpp"

namespace accountnet::core {

/// Algorithm 2: maps a VRF output to an index into a list of `list_size`
/// sorted elements; nullopt = Null (retry).
std::optional<std::size_t> select_index(std::size_t list_size, BytesView vrf_output);

/// Attempt-sequence inputs. `domain` separates partner selection, shuffle
/// sampling and witness sampling; `nonce` binds the draw to the
/// counterpart-chosen value; `attempt` is the retry counter.
Bytes draw_alpha(std::string_view domain, BytesView nonce, std::uint64_t attempt);

/// Hard cap on VRF attempts per draw loop, identical on prover and verifier.
/// (Null probability is < 1/2 per attempt, so the cap is never reached in
/// practice; it bounds the work a malicious prover can demand.)
constexpr std::uint64_t kMaxDrawAttempts = 512;

struct Draw {
  std::vector<PeerId> sample;  ///< Distinct peers, in draw order.
  std::vector<Bytes> proofs;   ///< One VRF proof per attempt (incl. misses).
};

/// Draws up to `want` distinct peers from `candidates` (sorted) using the
/// prover's VRF stream. Returns fewer than `want` only if the candidate list
/// is smaller or the attempt cap is hit.
Draw draw_sample(const crypto::Signer& signer, const Peerset& candidates,
                 std::size_t want, std::string_view domain, BytesView nonce);

/// Verifier-side mirror of draw_sample: replays the proof stream and checks
/// that `claimed` is exactly the sample the VRF dictates.
VerifyResult verify_sample(const crypto::CryptoProvider& provider,
                           const crypto::PublicKeyBytes& prover_key,
                           const Peerset& candidates, std::size_t want,
                           std::string_view domain, BytesView nonce,
                           const std::vector<Bytes>& proofs,
                           const std::vector<PeerId>& claimed);

/// Pluggable VRF resolution for verify_sample_with: called with the attempt
/// index (0-based into `proofs`) and the alpha for that attempt, it must
/// return exactly what provider.vrf_verify(prover_key, alpha, proofs[index])
/// would — possibly from a memo or a precomputed batch
/// (core::VerificationEngine). Any other behaviour forfeits the
/// bit-identical-verdicts guarantee.
using VrfResolveFn = std::function<std::optional<std::array<std::uint8_t, 64>>(
    std::size_t index, BytesView alpha)>;

/// verify_sample with the VRF check abstracted out; the replay logic (Null
/// retries, duplicate suppression, completeness) is shared verbatim with the
/// provider-backed overload above.
VerifyResult verify_sample_with(const VrfResolveFn& resolve, const Peerset& candidates,
                                std::size_t want, std::string_view domain,
                                BytesView nonce, const std::vector<Bytes>& proofs,
                                const std::vector<PeerId>& claimed);

/// Draws a single peer (retrying Nulls); used for shuffle-partner selection.
std::optional<Draw> draw_one(const crypto::Signer& signer, const Peerset& candidates,
                             std::string_view domain, BytesView nonce);

/// Verifier-side mirror of draw_one.
VerifyResult verify_one(const crypto::CryptoProvider& provider,
                        const crypto::PublicKeyBytes& prover_key,
                        const Peerset& candidates, std::string_view domain,
                        BytesView nonce, const std::vector<Bytes>& proofs,
                        const PeerId& claimed);

/// Nonce encoders used across the protocol.
Bytes round_nonce(Round r);

}  // namespace accountnet::core
