// Active-adversary policy for the event-driven node and the harness.
//
// An AdversaryPolicy turns a node Byzantine: every flag enables one concrete
// attack against the protocol. The flags are deliberately orthogonal so a
// soak can sweep attack types one at a time (bench/byz_soak) and tests can
// assert the exact detection path each attack trips:
//
//   bias_sample        substitute non-VRF members into the offered sample
//                      (detected inline: kOfferSampleMismatch).
//   forge_history      tamper a suffix entry so its counterpart signature no
//                      longer verifies (detected inline:
//                      kInvalidShuffleSignature).
//   truncate_history   drop the tail of the proof suffix so reconstruction
//                      no longer matches the claim (detected inline:
//                      kReconstructionMismatch).
//   equivocate         present *internally consistent but different*
//                      histories to different counterparts (passes inline
//                      verification; detected by cross-comparing signed
//                      exchanges: kHistoryEquivocation accusations).
//   withhold_testimony as witness, never answer testimony queries (convicted
//                      via the omission challenge timeout).
//   lie_in_testimony   as witness, log a fabricated digest while forwarding
//                      the real payload (detected by the consumer's
//                      testimony audit: kTestimonyMismatch).
//   tamper_relays      as witness, forward an altered payload but still sign
//                      the forward (detected from the signature pair alone:
//                      kRelayTamper).
//   drop_relays        as witness, log the relay but never forward it
//                      (consumer's omission challenge, with
//                      withhold_testimony this is the "silent witness").
//
// attack_rate makes relay/shuffle attacks selective; colluders lets
// bias_sample prefer fellow adversaries, reproducing the paper's
// neighborhood-pollution attack (Fig. 14/18).
#pragma once

#include <algorithm>
#include <string>
#include <vector>

namespace accountnet::core {

struct AdversaryPolicy {
  bool bias_sample = false;
  bool forge_history = false;
  bool truncate_history = false;
  bool equivocate = false;
  bool withhold_testimony = false;
  bool lie_in_testimony = false;
  bool tamper_relays = false;
  bool drop_relays = false;

  /// Probability an eligible attack is actually applied (selective attacks).
  double attack_rate = 1.0;

  /// Addresses bias_sample prefers to inject (fellow adversaries).
  std::vector<std::string> colluders;

  bool any() const {
    return bias_sample || forge_history || truncate_history || equivocate ||
           withhold_testimony || lie_in_testimony || tamper_relays || drop_relays;
  }

  bool colludes_with(const std::string& addr) const {
    return std::find(colluders.begin(), colluders.end(), addr) != colluders.end();
  }
};

}  // namespace accountnet::core
