// Protocol-visible state of one AccountNet participant: peerset, round
// counter, update history and signing identity. The shuffle/witness engines
// operate on this state; transport concerns live elsewhere (core/node.hpp for
// the event-driven actor, harness/ for the synchronous simulation driver).
#pragma once

#include <memory>
#include <optional>

#include "accountnet/core/checkpoint.hpp"
#include "accountnet/core/history.hpp"
#include "accountnet/core/peerset.hpp"
#include "accountnet/core/sampler.hpp"
#include "accountnet/core/types.hpp"

namespace accountnet::core {

/// Network-wide default for retained history entries. The event-driven node
/// and the simulation harness share this value — they previously diverged
/// (512 vs 96), silently giving the two drivers different proof-degradation
/// behavior. bench/abl_history_limit measures the safe floor per (f, L); 96
/// clears it for every paper configuration, and checkpoint anchoring
/// (checkpoint.hpp) removes the floor entirely.
inline constexpr std::size_t kDefaultHistoryLimit = 96;

struct NodeConfig {
  std::size_t max_peerset = 10;    ///< f — maximum peerset size.
  std::size_t shuffle_length = 5;  ///< L — peers exchanged per shuffle.
  /// Retained history entries (0 = unlimited). With checkpointing on, unsealed
  /// entries are always retained regardless of this bound.
  std::size_t history_limit = kDefaultHistoryLimit;
  /// Seal a signed checkpoint every this many appended entries (0 = never,
  /// the default: checkpointing is opt-in and changes no wire bytes when off).
  std::uint64_t checkpoint_interval = 0;
  /// Verifiable-sampling backend for every draw (core/sampler.hpp). Must be
  /// identical network-wide; proofs from one backend never verify under
  /// another (domain separation). kVrf is the paper's algorithm.
  SamplerKind sampler = SamplerKind::kVrf;
};

class NodeState {
 public:
  NodeState(PeerId self, std::unique_ptr<crypto::Signer> signer, NodeConfig config);

  const PeerId& self() const { return self_; }
  Round round() const { return round_; }
  const Peerset& peerset() const { return peerset_; }
  const UpdateHistory& history() const { return history_; }
  const NodeConfig& config() const { return config_; }
  const crypto::Signer& signer() const { return *signer_; }

  /// Signature over the node's current round (σ_i(r_i)), handed to shuffle
  /// counterparts as the forgery-preventing nonce acknowledgement.
  Bytes sign_current_round() const;

  /// Seeds the very first node(s) of a network: empty peerset, round 0,
  /// no join entry (there is no bootstrap to stamp them).
  void init_as_seed();

  /// Applies a bootstrap join (Sec. IV-A "Network join"): the sampled
  /// initial peerset plus the bootstrap's entry stamp become ω_{i,0}.
  void apply_join(const PeerId& bootstrap, Bytes entry_stamp,
                  std::vector<PeerId> initial_peers);

  /// Records a peer-leave report (ours or relayed) and drops the peer.
  /// `reporter`/`reporter_round`/`signature` identify who vouches for the
  /// leave; the entry is added regardless of current membership (Sec. IV-A).
  void apply_leave_report(const PeerId& reporter, Round reporter_round,
                          Bytes signature, const PeerId& leaver);

  /// Creates this node's own leave report for `leaver` (reporter = self).
  /// Returns the (reporter_round, signature) pair peers need to record it.
  std::pair<Round, Bytes> make_leave_report(const PeerId& leaver) const;

  /// Pre-start reconfiguration only: Node::update_config() rejects sampler
  /// swaps once the node is running, but must keep its own config copy and
  /// this one coherent when a swap is still legal.
  void set_sampler(SamplerKind kind) { config_.sampler = kind; }

  /// Low-level mutators used by the shuffle engine.
  void commit_shuffle(HistoryEntry entry, Peerset next_peerset);
  /// Burns a round without a peerset change (failed/aborted shuffle).
  void skip_round();

  /// Latest sealed checkpoint (nullopt until checkpoint_interval entries
  /// accumulate, or always when checkpointing is off).
  const std::optional<Checkpoint>& checkpoint() const { return checkpoint_; }

  /// Attaches a durability journal (non-owning; may be null). Every commit
  /// path notifies it *before* mutating in-memory state (write-ahead), so a
  /// crash between the two leaves the journal ahead, never behind.
  void set_journal(HistoryJournal* journal) { journal_ = journal; }
  HistoryJournal* journal() const { return journal_; }

  /// Rebuilds a freshly constructed state from recovered durable state:
  /// replays the retained entry window (peerset from the sealed checkpoint
  /// base when one exists, from ∅ otherwise) and resumes past the recorded
  /// round high-water mark. The journal is NOT notified during restore.
  void restore(const RecoveredNode& rec);

 private:
  void journal_entry(const HistoryEntry& e);
  void journal_round();
  void maybe_seal();
  void trim_history();

  PeerId self_;
  std::unique_ptr<crypto::Signer> signer_;
  NodeConfig config_;
  Round round_ = 0;
  Peerset peerset_;
  UpdateHistory history_;
  std::optional<Checkpoint> checkpoint_;
  HistoryJournal* journal_ = nullptr;
};

}  // namespace accountnet::core
