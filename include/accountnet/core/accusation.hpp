// Self-contained, third-party-verifiable misbehavior evidence (the
// detection→consequence half of the paper's accountability claim, Sec. IV/V).
//
// When an inline verification, a cross-entry audit, or a relay-digest check
// fails against a *body-signed* message, the detector packages the offending
// signed material into an Accusation and gossips it. The design invariant is
// that every accusation is checkable by any third party from its own bytes
// (plus the shared protocol config) via verify_accusation():
//
//   - the evidence must be attributable to the accused (its own signatures
//     over the offending messages — kAccusationEvidenceInvalid otherwise);
//   - the attributed evidence must actually demonstrate a protocol violation
//     an honest node can never commit (kAccusationNotProven otherwise).
//
// Because honest nodes only ever sign protocol-conforming messages, a forged
// accusation against an honest node must fail one of the two steps; tests
// drive every forgery construction against the real crypto backend.
//
// kRelayOmission is the one kind whose evidence shows duty + data but not
// the violation itself (silence is unprovable offline); recipients convict
// only through a live challenge of the accused (core/node.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accountnet/core/evidence.hpp"
#include "accountnet/core/node_state.hpp"
#include "accountnet/core/shuffle.hpp"

namespace accountnet::core {

enum class AccusationKind : std::uint8_t {
  kInvalidOffer = 1,          ///< body-signed offer fails verify_offer_static()
  kInvalidResponse = 2,       ///< body-signed response fails verify_response_static()
  kHistoryEquivocation = 3,   ///< two signed exchanges, conflicting entries at `round`
  kTestimonyEquivocation = 4, ///< two testimonies, same (channel, seq), digests differ
  kRelayTamper = 5,           ///< forward signed for a payload the producer never sent
  kTestimonyMismatch = 6,     ///< witness's forward and testimony digests conflict
  kRelayOmission = 7,         ///< duty + relayed data shown; convicted via challenge
  kSegmentMismatch = 8,       ///< signed catch-up segment contradicts the same
                              ///< node's signed checkpoint digest
};

/// Metric suffix for a kind ("invalid_offer", ...).
const char* accusation_kind_tag(AccusationKind kind);

/// One body-signed exchange attributable to the accused. shape 1 carries an
/// offer the accused initiated (addressed to `counterpart`); shape 2 carries
/// a response the accused gave to `offer` (the response signature binds the
/// offer bytes, so the pair verifies as a unit); shape 3 carries a signed
/// checkpoint (`offer` slot) plus a signed catch-up segment (`response`
/// slot), both from the accused (kSegmentMismatch).
struct ExchangeItem {
  std::uint8_t shape = 0;  ///< 1 = offer, 2 = offer + response, 3 = ckpt + segment
  Bytes offer;             ///< offer wire bytes (shape 3: checkpoint wire bytes)
  Bytes response;          ///< response wire bytes (shape 3: segment wire bytes)
  PeerId counterpart;      ///< shape 1: the responder the offer addressed
};

struct Accusation {
  AccusationKind kind{};
  PeerId accused;
  PeerId accuser;
  std::uint64_t channel_id = 0;  ///< witness kinds
  std::uint64_t sequence = 0;    ///< witness kinds
  Round round = 0;               ///< kHistoryEquivocation: the conflicting round
  std::vector<ExchangeItem> items;  ///< shuffle kinds (1 item; equivocation: 2)
  PeerId producer;               ///< witness kinds: channel producer
  std::string consumer_addr;     ///< witness kinds: duty binding
  Bytes duty_sig;                ///< witness kinds: σ_w over wduty_payload(...)
  Bytes header_sig;              ///< producer's relay-header signature
  Bytes digest_a;                ///< payload digest (forward / first testimony)
  Bytes digest_b;                ///< payload digest (testimony / second testimony)
  Bytes sig_a;                   ///< forward sig / first testimony sig
  Bytes sig_b;                   ///< testimony sig / second testimony sig
  Bytes accuser_sig;             ///< σ_accuser over signing_payload()

  Bytes encode() const;        ///< full wire form (includes accuser_sig)
  Bytes encode_core() const;   ///< without accuser_sig (the signed portion)
  static Accusation decode(BytesView data);  ///< throws wire::DecodeError

  /// What the accuser signs: "an.accuse" + SHA-256(encode_core()).
  Bytes signing_payload() const;

  /// Content digest of the full wire form (gossip dedup key).
  DataDigest digest() const;
};

// Witness-channel signing payloads (accountability mode). Declared here so
// node.cpp (signing/verifying live traffic) and verify_accusation() (checking
// packaged evidence) agree on the exact bytes.

/// Witness duty acknowledgement: binds (channel, producer identity, consumer
/// address, witness address). Anchors relay evidence to a concrete producer.
Bytes wduty_payload(std::uint64_t channel_id, const PeerId& producer,
                    const std::string& consumer_addr, const std::string& witness_addr);

/// Producer's per-message relay header: binds (channel, seq, payload digest).
Bytes relay_header_payload(std::uint64_t channel_id, std::uint64_t sequence,
                           const DataDigest& digest);

/// Witness's forward endorsement: binds the payload digest *as forwarded* to
/// the producer header it claims to relay (via SHA-256 of the header sig).
Bytes forward_payload(std::uint64_t channel_id, std::uint64_t sequence,
                      const DataDigest& digest, BytesView header_sig);

/// Third-party verification of an accusation: checks the accuser signature,
/// attributes the evidence to the accused, and re-derives the violation.
/// `protocol` supplies the shared parameters (shuffle length L) the static
/// shuffle checks need. For kRelayOmission a pass means "duty and data are
/// genuine" — conviction still requires the live challenge.
VerifyResult verify_accusation(const Accusation& acc,
                               const crypto::CryptoProvider& provider,
                               const NodeConfig& protocol);

}  // namespace accountnet::core
