// Peerset Update History (Sec. IV-A).
//
// Every change to a node's peerset is recorded as an entry
//   ω_{i,r} = (v_j, σ_j(nonce), nonce, out, in, fill)
// and the ordered list Ω_i is handed to counterparts, who *reconstruct* the
// claimed peerset by replaying the deltas:
//   N̂[r] = (N̂[r-1] − out) ∪ in ∪ fill,  N̂[a-1] = ∅.
//
// The out/in/fill fields record the deltas actually applied, so replaying a
// suffix that covers the last insertion of every current peer reconstructs
// the peerset exactly; minimal_suffix_length() computes how much history a
// node must ship (the quantity Fig. 16 measures).
//
// Signatures are domain-separated by entry kind:
//   join    — bootstrap signs   "an.join"    ‖ joiner address   (entry stamp)
//   shuffle — counterpart signs "an.shuffle" ‖ its round number
//   leave   — reporter signs    "an.leave"   ‖ its round ‖ leaver address
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "accountnet/core/peerset.hpp"
#include "accountnet/core/types.hpp"
#include "accountnet/core/verify.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

enum class EntryKind : std::uint8_t {
  kJoin = 1,
  kShuffle = 2,
  kLeave = 3,
};

struct HistoryEntry {
  EntryKind kind = EntryKind::kShuffle;
  Round self_round = 0;       ///< The owner's round when the entry was made.
  PeerId counterpart;         ///< Shuffle partner / bootstrap / leave reporter.
  Round nonce = 0;            ///< Counterpart round (shuffle/leave); 0 for join.
  Bytes signature;            ///< Counterpart's signature over the nonce payload.
  bool initiated = false;     ///< True if the owner initiated the shuffle.
  std::vector<PeerId> out;    ///< Peers removed at this round.
  std::vector<PeerId> in;     ///< Peers added (learned from the counterpart).
  std::vector<PeerId> fill;   ///< Refills drawn back from the outgoing set.

  friend bool operator==(const HistoryEntry&, const HistoryEntry&) = default;
};

/// Signing payload builders (domain-separated; see file comment).
Bytes join_stamp_payload(const std::string& joiner_addr);
Bytes shuffle_nonce_payload(Round counterpart_round);
Bytes leave_payload(Round reporter_round, const std::string& leaver_addr);

/// Wire encoding.
void encode_peer(wire::Writer& w, const PeerId& p);
PeerId decode_peer(wire::Reader& r);
void encode_entry(wire::Writer& w, const HistoryEntry& e);
HistoryEntry decode_entry(wire::Reader& r);

/// Rolling chain digest over an entry sequence, shared by the verification
/// engine's partner memos (verification_engine.cpp) and signed checkpoints
/// (checkpoint.hpp): c_k = SHA256(c_{k-1} ‖ SHA256(encode_entry(e_k))),
/// c_0 = 0^32. A chain value commits to the exact wire bytes of every entry
/// it folded, so equal chains over equal counts mean byte-identical prefixes.
using ChainDigest = std::array<std::uint8_t, 32>;
ChainDigest entry_digest(const HistoryEntry& e);
ChainDigest chain_step(const ChainDigest& prev, const ChainDigest& entry);

class UpdateHistory {
 public:
  void append(HistoryEntry entry);

  const std::vector<HistoryEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const HistoryEntry& back() const;

  /// Rolling chain over *every* entry ever appended (trim-independent).
  const ChainDigest& chain() const { return chain_; }

  /// Chain over the trimmed-away prefix: chain_at(first_index()).
  const ChainDigest& base_chain() const { return base_chain_; }

  /// Global index of the oldest retained entry == number of entries trimmed
  /// away so far. entries()[i] has global index first_index() + i.
  std::uint64_t first_index() const { return trim_count_; }

  /// Chain over the first `index` entries ever appended. `index` must lie in
  /// [first_index(), total_appended()] — older prefixes were folded into
  /// base_chain() and cannot be re-derived.
  ChainDigest chain_at(std::uint64_t index) const;

  /// Up to `count` retained entries starting at global index `index`
  /// (oldest first); empty if `index` precedes the retained window.
  std::vector<HistoryEntry> entries_from(std::uint64_t index, std::size_t count) const;

  /// Replays entries (oldest first) from an empty set.
  static Peerset reconstruct(const std::vector<HistoryEntry>& suffix);

  /// Smallest k such that replaying the last k entries reconstructs
  /// `current` exactly; returns size()+1 if even the full history falls
  /// short (possible after trim()).
  std::size_t minimal_suffix_length(const Peerset& current) const;

  /// The last `k` entries, oldest first.
  std::vector<HistoryEntry> suffix(std::size_t k) const;

  /// The suffix a node ships when asked to prove `current` (minimal, or the
  /// whole retained history if the minimal suffix was trimmed away).
  std::vector<HistoryEntry> proof_suffix(const Peerset& current) const;

  /// Bounds retained length; drops oldest entries beyond `max_entries`.
  void trim(std::size_t max_entries);

  /// Total entries ever appended (survives trimming).
  std::uint64_t total_appended() const { return total_appended_; }

  /// Rebuilds a trimmed history from recovered durable state: `first_index`
  /// entries were compacted away leaving `base` as their chain; `entries`
  /// are the retained window, oldest first. chain() is re-derived by folding
  /// the window onto `base`.
  static UpdateHistory restore(const ChainDigest& base, std::uint64_t first_index,
                               std::vector<HistoryEntry> entries);

 private:
  std::vector<HistoryEntry> entries_;
  std::uint64_t total_appended_ = 0;
  std::uint64_t trim_count_ = 0;
  ChainDigest chain_{};       ///< Over all total_appended_ entries.
  ChainDigest base_chain_{};  ///< Over the trim_count_ trimmed entries.
};

/// One deferred counterpart-signature check produced by plan_history_checks():
/// `payload` must verify under `pk` against `*signature` (which aliases the
/// planned suffix entry — the suffix must outlive the plan). `seq` is the
/// check's position in the sequential order verify_history_suffix() would
/// run it; resolving checks by ascending `seq` and reporting the first
/// failure reproduces the sequential verdict exactly.
struct HistorySigCheck {
  std::size_t seq = 0;
  std::size_t entry_index = 0;
  crypto::PublicKeyBytes pk{};
  Bytes payload;
  const Bytes* signature = nullptr;
  VerifyError on_fail = VerifyError::kNone;
};

/// Phase 1 of suffix verification: runs every structural check and collects
/// every signature check without touching the crypto provider, so callers
/// can resolve signatures through a cache or CryptoProvider::verify_batch().
struct HistoryCheckPlan {
  std::vector<HistorySigCheck> sig_checks;
  /// First structural failure in sequential (seq) order, if any. The scan
  /// stops there, mirroring verify_history_suffix's early return — a
  /// signature check at a smaller seq still takes precedence.
  std::optional<std::pair<std::size_t, VerifyError>> structural_failure;
};

/// Plans the per-entry checks of verify_history_suffix over
/// `suffix[begin..)`. `prev_round` is the round of the entry preceding
/// `begin` (nullopt when planning from the start: the first planned entry
/// then skips the ascending-rounds check). Reconstruction is NOT part of the
/// plan — callers replay the deltas themselves.
HistoryCheckPlan plan_history_checks(const std::vector<HistoryEntry>& suffix,
                                     std::size_t begin, std::optional<Round> prev_round,
                                     const PeerId& owner);

/// Structural + cryptographic checks on a history suffix claimed by `owner`:
/// rounds strictly ascending, join entries only at the owner's round 0,
/// counterpart signatures valid for each entry kind, and the reconstruction
/// equal to `claimed`. This is the Verify(Ω_j, N_j, ...) step of Algorithm 1.
/// Implemented as plan_history_checks() + sequential resolution, which is
/// what core::VerificationEngine replays through its caches — the two paths
/// share one plan and return bit-identical verdicts.
VerifyResult verify_history_suffix(const std::vector<HistoryEntry>& suffix,
                                   const PeerId& owner, const Peerset& claimed,
                                   const crypto::CryptoProvider& provider);

}  // namespace accountnet::core
