// Peerset Update History (Sec. IV-A).
//
// Every change to a node's peerset is recorded as an entry
//   ω_{i,r} = (v_j, σ_j(nonce), nonce, out, in, fill)
// and the ordered list Ω_i is handed to counterparts, who *reconstruct* the
// claimed peerset by replaying the deltas:
//   N̂[r] = (N̂[r-1] − out) ∪ in ∪ fill,  N̂[a-1] = ∅.
//
// The out/in/fill fields record the deltas actually applied, so replaying a
// suffix that covers the last insertion of every current peer reconstructs
// the peerset exactly; minimal_suffix_length() computes how much history a
// node must ship (the quantity Fig. 16 measures).
//
// Signatures are domain-separated by entry kind:
//   join    — bootstrap signs   "an.join"    ‖ joiner address   (entry stamp)
//   shuffle — counterpart signs "an.shuffle" ‖ its round number
//   leave   — reporter signs    "an.leave"   ‖ its round ‖ leaver address
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accountnet/core/peerset.hpp"
#include "accountnet/core/types.hpp"
#include "accountnet/core/verify.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

enum class EntryKind : std::uint8_t {
  kJoin = 1,
  kShuffle = 2,
  kLeave = 3,
};

struct HistoryEntry {
  EntryKind kind = EntryKind::kShuffle;
  Round self_round = 0;       ///< The owner's round when the entry was made.
  PeerId counterpart;         ///< Shuffle partner / bootstrap / leave reporter.
  Round nonce = 0;            ///< Counterpart round (shuffle/leave); 0 for join.
  Bytes signature;            ///< Counterpart's signature over the nonce payload.
  bool initiated = false;     ///< True if the owner initiated the shuffle.
  std::vector<PeerId> out;    ///< Peers removed at this round.
  std::vector<PeerId> in;     ///< Peers added (learned from the counterpart).
  std::vector<PeerId> fill;   ///< Refills drawn back from the outgoing set.

  friend bool operator==(const HistoryEntry&, const HistoryEntry&) = default;
};

/// Signing payload builders (domain-separated; see file comment).
Bytes join_stamp_payload(const std::string& joiner_addr);
Bytes shuffle_nonce_payload(Round counterpart_round);
Bytes leave_payload(Round reporter_round, const std::string& leaver_addr);

/// Wire encoding.
void encode_peer(wire::Writer& w, const PeerId& p);
PeerId decode_peer(wire::Reader& r);
void encode_entry(wire::Writer& w, const HistoryEntry& e);
HistoryEntry decode_entry(wire::Reader& r);

class UpdateHistory {
 public:
  void append(HistoryEntry entry);

  const std::vector<HistoryEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const HistoryEntry& back() const;

  /// Replays entries (oldest first) from an empty set.
  static Peerset reconstruct(const std::vector<HistoryEntry>& suffix);

  /// Smallest k such that replaying the last k entries reconstructs
  /// `current` exactly; returns size()+1 if even the full history falls
  /// short (possible after trim()).
  std::size_t minimal_suffix_length(const Peerset& current) const;

  /// The last `k` entries, oldest first.
  std::vector<HistoryEntry> suffix(std::size_t k) const;

  /// The suffix a node ships when asked to prove `current` (minimal, or the
  /// whole retained history if the minimal suffix was trimmed away).
  std::vector<HistoryEntry> proof_suffix(const Peerset& current) const;

  /// Bounds retained length; drops oldest entries beyond `max_entries`.
  void trim(std::size_t max_entries);

  /// Total entries ever appended (survives trimming).
  std::uint64_t total_appended() const { return total_appended_; }

 private:
  std::vector<HistoryEntry> entries_;
  std::uint64_t total_appended_ = 0;
};

/// Structural + cryptographic checks on a history suffix claimed by `owner`:
/// rounds strictly ascending, join entries only at the owner's round 0,
/// counterpart signatures valid for each entry kind, and the reconstruction
/// equal to `claimed`. This is the Verify(Ω_j, N_j, ...) step of Algorithm 1.
VerifyResult verify_history_suffix(const std::vector<HistoryEntry>& suffix,
                                   const PeerId& owner, const Peerset& claimed,
                                   const crypto::CryptoProvider& provider);

}  // namespace accountnet::core
