// Verifiable peer shuffling (Sec. IV-A, Algorithms 1-3).
//
// The exchange is split into pure functions over NodeState so the same code
// drives both the event-driven node (core/node.hpp) and the synchronous
// simulation harness:
//
//   initiator                                 responder
//   ---------                                 ---------
//   begin_shuffle()      --round query-->
//                        <--round reply--     round + σ_j(r_j)
//   make_offer()         --ShuffleOffer-->    verify_offer()
//                                             make_response()  (commits)
//   verify_response()    <--ShuffleResponse--
//   apply_offer_outcome() (commits)
//
// Partner selection, the initiator sample A, and the responder sample B are
// all verifiable draws (sampler.hpp; the configured SamplerBackend) whose
// proofs travel with the messages; each side re-derives the other's draws
// from the proofs and reconstructs the other's claimed peerset from its
// history suffix (history.hpp) before committing anything.
#pragma once

#include <optional>

#include "accountnet/core/node_state.hpp"
#include "accountnet/core/select.hpp"

namespace accountnet::core {

class VerificationEngine;
struct GatherSink;

/// Draw domains (bound into every VRF alpha).
inline constexpr std::string_view kPartnerDomain = "an.partner";
inline constexpr std::string_view kSampleDomain = "an.sample";

struct ShuffleOffer {
  PeerId initiator;
  Round initiator_round = 0;         ///< r_i
  Bytes initiator_round_sig;         ///< σ_i(r_i)
  Round responder_round = 0;         ///< r_j — the nonce the responder handed out
  std::vector<PeerId> sample;        ///< A (L-1 peers; v_i travels implicitly)
  std::vector<Bytes> partner_proofs; ///< VRF attempts selecting the responder
  std::vector<Bytes> sample_proofs;  ///< VRF attempts drawing A
  std::vector<PeerId> claimed_peerset;     ///< N_i[r_i]
  std::vector<HistoryEntry> history_suffix;  ///< proves claimed_peerset
  /// Checkpoint anchor (checkpoint.hpp): when set, history_suffix holds only
  /// post-checkpoint entries and the verifier replays them from the sealed
  /// peerset — used when trimming left the retained history too short for a
  /// from-∅ proof. Part of encode_core(), so the body signature covers it.
  std::optional<Checkpoint> anchor;
  Bytes body_sig;  ///< accountability mode: σ_i over offer_body_payload(...)

  Bytes encode() const;        ///< core fields + body_sig iff non-empty
  Bytes encode_core() const;   ///< core fields only (the signed portion)
  static ShuffleOffer decode(BytesView data);
};

struct ShuffleResponse {
  PeerId responder;
  Round responder_round = 0;  ///< r_j
  Bytes responder_round_sig;  ///< σ_j(r_j)
  std::vector<PeerId> sample; ///< B (L peers)
  std::vector<Bytes> sample_proofs;
  std::vector<PeerId> claimed_peerset;       ///< N_j[r_j]
  std::vector<HistoryEntry> history_suffix;  ///< proves claimed_peerset
  std::optional<Checkpoint> anchor;  ///< See ShuffleOffer::anchor.
  Bytes body_sig;  ///< accountability mode: σ_j over response_body_payload(...)

  Bytes encode() const;        ///< core fields + body_sig iff non-empty
  Bytes encode_core() const;   ///< core fields only (the signed portion)
  static ShuffleResponse decode(BytesView data);
};

/// Step 1 (initiator): VRF-select the shuffle partner from the current
/// peerset. nullopt if the peerset is empty (nothing to shuffle).
struct PartnerChoice {
  PeerId partner;
  std::vector<Bytes> proofs;
};
std::optional<PartnerChoice> choose_partner(const NodeState& state);

/// Step 2 (initiator): build the offer after learning (r_j, σ_j(r_j)).
ShuffleOffer make_offer(const NodeState& state, const PartnerChoice& partner,
                        Round responder_round);

/// Step 3 (responder): full verification of an incoming offer.
/// `expected_round` is the round number this node handed to the initiator.
VerifyResult verify_offer(const ShuffleOffer& offer, const NodeState& state,
                          Round expected_round, const crypto::CryptoProvider& provider);

/// Engine-backed overload: same checks, same verdicts, resolved through the
/// engine's history memos and verdict caches (core/verification_engine.hpp).
/// Both overloads share one implementation — only signature/VRF/history
/// resolution is swapped out.
VerifyResult verify_offer(const ShuffleOffer& offer, const NodeState& state,
                          Round expected_round, VerificationEngine& engine);

/// Gathers every signature/VRF check that
/// `verify_offer(offer, state, expected_round, engine)` would resolve through
/// `engine`'s caches, into `sink`, for a cross-node epoch batch
/// (VerificationEngine::preload; docs/PARALLELISM.md). Probe-only and
/// best-effort: caches and stats are untouched, and an offer that would fail
/// a structural check just wastes its prefetched verdicts. Only the default
/// kVrf sampler backend's draws are statically plannable; under other
/// backends the sample checks are skipped (they resolve one-by-one through
/// the engine at verify time, as today). `offer` must outlive the sink.
void gather_offer_checks(const ShuffleOffer& offer, const NodeState& state,
                         const VerificationEngine& engine, GatherSink& sink);

/// Step 4 (responder): draw B, COMMIT the responder-side update (Algorithm 3)
/// and return the response to send back.
ShuffleResponse make_response_and_commit(NodeState& state, const ShuffleOffer& offer);

/// Step 5 (initiator): verify the response against the offer we sent.
VerifyResult verify_response(const ShuffleResponse& response, const NodeState& state,
                             const ShuffleOffer& sent_offer,
                             const crypto::CryptoProvider& provider);

/// Engine-backed overload (see verify_offer above).
VerifyResult verify_response(const ShuffleResponse& response, const NodeState& state,
                             const ShuffleOffer& sent_offer, VerificationEngine& engine);

/// Step 6 (initiator): commit the initiator-side update (Algorithm 3).
void apply_offer_outcome(NodeState& state, const ShuffleOffer& sent_offer,
                         const ShuffleResponse& response);

// Accountability-mode message binding. In accountability mode each side also
// signs the full message body, bound to the counterpart it addressed: the
// message then doubles as transferable evidence — any third party can check
// "node X sent exactly these bytes to node Y" without trusting the reporter.

/// Signed by the initiator over its offer: binds the addressed responder's
/// full identity (address AND key), so an offer cannot be re-targeted or
/// replayed against a forged keypair at the same address.
Bytes offer_body_payload(BytesView offer_core, const PeerId& responder);

/// Signed by the responder over its response: binds the exact offer wire
/// bytes it is answering, so the (offer, response) pair verifies as a unit.
Bytes response_body_payload(BytesView offer_wire, BytesView response_core);

// Stateless halves of offer/response verification: every check that depends
// only on message contents plus the verifier's identity and the protocol
// parameters (L and the sampler backend). Separated from the stateful
// wrappers so verify_accusation() can re-run them — an honest node's
// messages always pass, so a *body-signed* message failing a static check is
// transferable proof of cheating.

/// All verify_offer() checks except the stale-round-nonce comparison.
/// `responder` is the node the offer addressed; `protocol` supplies L and
/// the SamplerBackend the draws must replay under.
VerifyResult verify_offer_static(const ShuffleOffer& offer, const PeerId& responder,
                                 const NodeConfig& protocol,
                                 const crypto::CryptoProvider& provider);

/// Engine-backed overload (see verify_offer above).
VerifyResult verify_offer_static(const ShuffleOffer& offer, const PeerId& responder,
                                 const NodeConfig& protocol, VerificationEngine& engine);

/// All verify_response() checks; `initiator` is the node that sent the offer.
VerifyResult verify_response_static(const ShuffleResponse& response,
                                    const ShuffleOffer& sent_offer,
                                    const PeerId& initiator, const NodeConfig& protocol,
                                    const crypto::CryptoProvider& provider);

/// Engine-backed overload (see verify_offer above).
VerifyResult verify_response_static(const ShuffleResponse& response,
                                    const ShuffleOffer& sent_offer,
                                    const PeerId& initiator, const NodeConfig& protocol,
                                    VerificationEngine& engine);

/// Checks `body_sig` (offer addressed to `responder`). kNone on success.
VerifyError check_offer_body_sig(const ShuffleOffer& offer, const PeerId& responder,
                                 const crypto::CryptoProvider& provider);

/// Checks `body_sig` (response answering exactly `offer_wire`).
VerifyError check_response_body_sig(const ShuffleResponse& response,
                                    BytesView offer_wire,
                                    const crypto::CryptoProvider& provider);

/// Algorithm 3 core, shared by both sides: removes `removed`, adds `received`
/// (capacity- and self-aware), refills from `removed` if space remains, and
/// returns the committed history entry. Exposed for tests.
HistoryEntry apply_update(NodeState& state, const PeerId& counterpart,
                          Round counterpart_round, Bytes counterpart_sig,
                          bool initiated, const std::vector<PeerId>& removed,
                          const std::vector<PeerId>& received);

}  // namespace accountnet::core
