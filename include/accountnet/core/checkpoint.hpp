// Signed history checkpoints and catch-up segments (durability layer).
//
// A node periodically seals its peerset-update history prefix into a
// self-certifying Checkpoint: (owner, epoch, sealed entry count, last sealed
// round, rolling chain digest over the sealed prefix, peerset at seal time),
// signed by the owner. The chain digest reuses the verification engine's
// incremental form — c_k = SHA256(c_{k-1} ‖ SHA256(encode_entry(e_k))) from
// c_0 = 0^32 — so a checkpoint commits to the exact wire bytes of every
// sealed entry.
//
// Checkpoints serve two roles:
//
//  1. Verification anchor. verify_history_suffix_anchored() accepts a
//     checkpoint plus only the post-checkpoint entries: the verifier checks
//     the owner's checkpoint signature and replays the suffix from the
//     sealed peerset instead of from ∅, so history trimming no longer
//     degrades proofs (the pre-PR behavior measured by bench/abl_history_limit).
//
//  2. Catch-up sync. A checkpoint announce tells counterparts how much
//     sealed history the owner holds; lagging or freshly recovered peers
//     fetch the missing entry range in bounded SegmentData chunks and verify
//     each tail chunk against the announced chain digest, fail-closed. A
//     server whose signed segment contradicts its own signed checkpoint is
//     convicted through the standard accusation pipeline
//     (AccusationKind::kSegmentMismatch).
//
// HistoryJournal is the write-side interface the durable store implements
// (storage/node_store.hpp); RecoveredNode is the read-side result a restarted
// node rebuilds its NodeState from.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "accountnet/core/history.hpp"

namespace accountnet::core {

struct Checkpoint {
  PeerId owner;
  std::uint64_t epoch = 0;         ///< Seal sequence number, starts at 1.
  std::uint64_t sealed_count = 0;  ///< Entries covered (a total_appended() value).
  Round last_round = 0;            ///< self_round of the last sealed entry.
  ChainDigest chain{};             ///< Rolling chain over the sealed prefix.
  std::vector<PeerId> peerset;     ///< Owner's peerset at seal time (sorted).
  Bytes owner_sig;                 ///< σ_owner over signing_payload().

  Bytes encode() const;       ///< full wire form (includes owner_sig)
  Bytes encode_core() const;  ///< without owner_sig (the signed portion)
  static Checkpoint decode(BytesView data);  ///< throws wire::DecodeError

  /// What the owner signs: "an.ckpt" + SHA-256(encode_core()).
  Bytes signing_payload() const;

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// Embeddable forms for composite messages (anchored offers, announces).
void encode_checkpoint(wire::Writer& w, const Checkpoint& ck);
Checkpoint decode_checkpoint(wire::Reader& r);

/// Folds `entries` (oldest first) onto a chain value.
ChainDigest fold_chain(ChainDigest base, const std::vector<HistoryEntry>& entries);

/// Structural + cryptographic checks on a checkpoint claimed by
/// `expected_owner`: owner identity matches (address AND key —
/// kCheckpointOwnerMismatch), epoch and sealed count positive, peerset
/// strictly sorted and owner-free (kCheckpointMalformed), owner signature
/// valid (kCheckpointBadSignature).
VerifyResult verify_checkpoint(const Checkpoint& ck, const PeerId& expected_owner,
                               const crypto::CryptoProvider& provider);

/// Checkpoint-anchored variant of verify_history_suffix(): checks the
/// checkpoint itself, then only the post-checkpoint `suffix` (rounds must
/// ascend from ck.last_round; counterpart signatures per entry kind), and
/// finally that replaying the suffix deltas onto the sealed peerset yields
/// `claimed`. Trimmed-away sealed entries are never needed.
VerifyResult verify_history_suffix_anchored(const Checkpoint& ck,
                                            const std::vector<HistoryEntry>& suffix,
                                            const PeerId& owner, const Peerset& claimed,
                                            const crypto::CryptoProvider& provider);

// ---------------------------------------------------------------------------
// Catch-up sync wire messages (node.cpp: kCheckpointAnnounce, kSegmentRequest,
// kSegmentData).

struct CheckpointAnnounce {
  Checkpoint checkpoint;
  bool want_reply = false;  ///< Set by a freshly recovered node: "announce back".

  Bytes encode() const;
  static CheckpointAnnounce decode(BytesView data);
};

/// Asks for the owner's history entries with global index in [start, end).
struct SegmentRequest {
  std::uint64_t request_id = 0;
  std::uint64_t start = 0;
  std::uint64_t end = 0;  ///< exclusive

  Bytes encode() const;
  static SegmentRequest decode(BytesView data);
};

/// A server-signed slice of the server's own history: `entries` are the
/// global-index range [start, start+entries.size()), and `base_chain` is the
/// server's claimed chain digest over [0, start). The signature makes the
/// slice transferable evidence: a slice inconsistent with the same server's
/// signed checkpoint convicts it (segment_contradicts_checkpoint()).
struct SegmentData {
  std::uint64_t request_id = 0;
  PeerId server;
  std::uint64_t start = 0;
  ChainDigest base_chain{};
  std::vector<HistoryEntry> entries;
  Bytes server_sig;  ///< σ_server over signing_payload().

  Bytes encode() const;       ///< full wire form (includes server_sig)
  Bytes encode_core() const;  ///< without server_sig (the signed portion)
  static SegmentData decode(BytesView data);

  /// What the server signs: "an.segment" + SHA-256(encode_core()).
  Bytes signing_payload() const;
};

/// Offline-decidable contradiction between a segment and a checkpoint signed
/// by the same node (both signatures assumed already checked). True iff the
/// segment reaches the sealed boundary with a fold that misses ck.chain, or
/// claims a different full-prefix chain at the boundary. Mid-prefix slices
/// are not decidable offline (the checkpoint only commits the total fold).
bool segment_contradicts_checkpoint(const SegmentData& seg, const Checkpoint& ck);

// ---------------------------------------------------------------------------
// Durable-store interfaces.

/// Write-side journal a NodeState (and its owning Node) streams state changes
/// into. Implementations must be durable against process death after each
/// call returns (storage/node_store.hpp) or deterministic in-memory fakes
/// (tests, harness). Default no-ops let callers implement only what they use.
class HistoryJournal {
 public:
  virtual ~HistoryJournal() = default;
  /// A history entry was committed at global index `index`.
  virtual void on_entry(std::uint64_t index, const HistoryEntry& entry) = 0;
  /// A checkpoint was sealed (sealed entries may now be compacted).
  virtual void on_checkpoint(const Checkpoint& ck) = 0;
  /// The node's round advanced to `next_round` without a history entry.
  virtual void on_round(Round next_round) = 0;
  /// Peer standing changed: quarantined, or evicted after enough accusers.
  virtual void on_standing(const std::string& /*addr*/, bool /*evicted*/,
                           const std::string& /*accuser*/) {}
  /// Read-back for catch-up serving: journaled entries with global index in
  /// [start, start+count), oldest first, stopping early at the journal's
  /// end. The default (no read support) serves nothing.
  virtual std::vector<HistoryEntry> read_entries(std::uint64_t /*start*/,
                                                 std::size_t /*count*/) const {
    return {};
  }
};

/// Everything a restarted node needs to resume with its pre-crash identity
/// of record: the retained entry window, the latest sealed checkpoint, the
/// round high-water mark, and peer standing (quarantines / evictions).
struct RecoveredNode {
  /// Retained entries, oldest first; entries[i] has global index
  /// first_index + i. Pre-first_index entries were compacted after sealing.
  std::vector<HistoryEntry> entries;
  std::uint64_t first_index = 0;
  /// Chain digest over the compacted [0, first_index) prefix.
  ChainDigest base_chain{};
  std::optional<Checkpoint> checkpoint;
  Round next_round = 0;  ///< Journal-recorded round high-water mark.

  struct Standing {
    std::string addr;
    bool evicted = false;
    std::vector<std::string> accusers;
  };
  std::vector<Standing> standing;
};

}  // namespace accountnet::core
