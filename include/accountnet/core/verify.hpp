// Machine-readable verification outcomes.
//
// Every expected protocol failure is tagged with a VerifyError code so
// audits, tests and metrics can classify rejections without string-matching;
// reason_string() supplies the canonical human text and VerifyResult::reason
// keeps the bool+reason shape documented in docs/API.md (the code's text,
// plus an optional site-specific detail suffix).
#pragma once

#include <cstdint>
#include <string>

namespace accountnet::core {

enum class VerifyError : std::uint8_t {
  kNone = 0,

  // Verifiable random selection (core/select.cpp).
  kSampleFromEmptyCandidates,
  kTooManyDrawProofs,
  kExtraDrawProofs,
  kInvalidVrfProof,
  kSampleIncomplete,
  kSampleMismatch,

  // History suffix verification (core/history.cpp).
  kRoundsNotAscending,
  kJoinAfterRoundZero,
  kInvalidJoinStamp,
  kJoinRemovesPeers,
  kInvalidShuffleSignature,
  kSelfShuffleEntry,
  kMalformedLeaveEntry,
  kInvalidLeaveSignature,
  kOwnerInsertedIntoOwnPeerset,
  kOwnerFilledIntoOwnPeerset,
  kReconstructionMismatch,

  // Shuffle exchange verification (core/shuffle.cpp).
  kStaleRoundNonce,
  kSelfShuffle,
  kInvalidInitiatorRoundSignature,
  kInvalidResponderRoundSignature,
  kDuplicatePeersetClaim,
  kPeersetTooLarge,
  kHistoryBeyondOfferedRound,
  kHistoryBeyondResponderRound,
  kResponderNotInPeerset,
  kPartnerSelectionMismatch,
  kOfferSampleMismatch,
  kResponderRoundChanged,
  kResponseSampleMismatch,

  // Offline audits (core/audit.cpp).
  kAuditNotShuffleEntries,
  kAuditEntriesUnlinked,
  kAuditNonceMismatch,
  kAuditInitiatorFlagMismatch,
  kAuditInPeerNeverOffered,
  kAuditCounterpartInPeerNeverOffered,
  kAuditRefillNotFromOut,
  kAuditCounterpartRefillNotFromOut,
  kAuditInitiatedWithNonPeer,
  kAuditRemovedNonMember,
  kNeighborhoodGhostNode,
  kNeighborhoodHiddenNode,
  kNeighborhoodUnderReported,

  // Accountability-mode message binding (core/shuffle.cpp, core/node.cpp).
  kMissingBodySignature,
  kInvalidBodySignature,

  // Accusation verification (core/accusation.cpp).
  kAccusationMalformed,
  kAccusationBadSignature,
  kAccusationSelfAccusation,
  kAccusationEvidenceInvalid,
  kAccusationNotProven,

  // Checkpoint-anchored verification and catch-up sync (core/checkpoint.cpp).
  kCheckpointMalformed,
  kCheckpointOwnerMismatch,
  kCheckpointBadSignature,
  kSegmentBadSignature,
  kSegmentChainMismatch,
};

/// Last enumerator; keeps enumeration loops (tests, metric tagging) in sync
/// with the enum without a sentinel that would break exhaustive switches.
inline constexpr VerifyError kLastVerifyError = VerifyError::kSegmentChainMismatch;

/// Canonical human-readable text for a code (exhaustive switch — adding an
/// enumerator without text is a compile error under -Wall).
const char* reason_string(VerifyError code);

/// Short machine tag for a code ("sample_mismatch", ...), usable as a metric
/// name suffix. Exhaustive like reason_string().
const char* error_tag(VerifyError code);

/// Outcome of a verification step. `code` names the first failed check;
/// `reason` is reason_string(code), plus a site-specific detail suffix when
/// one was supplied (e.g. the offending peer address).
struct VerifyResult {
  bool ok = true;
  VerifyError code = VerifyError::kNone;
  std::string reason;

  static VerifyResult pass() { return {}; }
  static VerifyResult fail(VerifyError code, const std::string& detail = {}) {
    VerifyResult r;
    r.ok = false;
    r.code = code;
    r.reason = detail.empty() ? std::string(reason_string(code))
                              : std::string(reason_string(code)) + ": " + detail;
    return r;
  }
  explicit operator bool() const { return ok; }
};

}  // namespace accountnet::core
