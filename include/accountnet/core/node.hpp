// Event-driven AccountNet participant.
//
// Wires the protocol engines (shuffle, witness, evidence) to the simulated
// message fabric: periodic verifiable shuffling, bootstrap join, ungraceful
// leave detection with signed leave reports, radius-limited neighborhood
// flooding, witness-group channel establishment, and 1-hop witnessed data
// relay with the majority-delivery optimization of Sec. VI-B.
//
// Malicious behaviour is modelled through the Behavior knobs rather than by
// forging cryptography (which verification would reject anyway — that is the
// point of the protocol); the knobs realize the two rational strategies the
// analysis identifies: follow-the-protocol-but-lie-as-witness, or
// refuse-and-separate. An AdversaryPolicy (core/adversary.hpp) goes further:
// it mounts *active* attacks (biased samples, forged/truncated/equivocating
// histories, relay tamper/drop, testimony lies), and the accountability mode
// (Config::accountability) is the machinery that catches them — body-signed
// messages, signed relay headers/forwards, and a gossiped accuse → quarantine
// → evict pipeline whose Accusations any third party can re-verify
// (core/accusation.hpp).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "accountnet/core/accusation.hpp"
#include "accountnet/core/adversary.hpp"
#include "accountnet/core/evidence.hpp"
#include "accountnet/core/neighborhood.hpp"
#include "accountnet/core/shuffle.hpp"
#include "accountnet/core/verification_engine.hpp"
#include "accountnet/core/witness.hpp"
#include "accountnet/obs/metrics.hpp"
#include "accountnet/obs/span.hpp"
#include "accountnet/sim/network.hpp"
#include "accountnet/util/bounded.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::core {

/// Message type tags on the wire.
enum class MsgType : std::uint32_t {
  kJoinRequest = 1,
  kJoinReply = 2,
  kRoundQuery = 3,
  kRoundReply = 4,
  kShuffleOffer = 5,
  kShuffleResponse = 6,
  kShuffleReject = 7,
  kPing = 8,
  kPong = 9,
  kLeaveNotice = 10,
  kNeighborhoodQuery = 11,
  kNeighborhoodReply = 12,
  kChannelRequest = 13,
  kChannelAccept = 14,
  kChannelFinalize = 15,
  kWitnessInvite = 16,
  kWitnessAck = 17,
  kDataRelay = 18,
  kDataForward = 19,
  kTestimonyQuery = 20,
  kTestimonyReply = 21,
  kEntryQuery = 22,
  kEntryReply = 23,
  kWitnessUpdate = 24,
  kWitnessUpdateAck = 25,
  kAccusation = 26,
  kAccusationAck = 27,
  kCheckpointAnnounce = 28,
  kSegmentRequest = 29,
  kSegmentData = 30,
};

/// Stable snake_case name for a message type ("shuffle_offer", ...); used as
/// the per-type metric-name fragment by SimNetwork::set_metrics. Exhaustive
/// switch — a new MsgType without a name is a compile warning under -Wall.
const char* msg_type_name(MsgType type);

/// Bounded-retry policy for one class of RPC (see docs/RESILIENCE.md for the
/// per-RPC table). `attempts` counts total transmissions, so 1 means a
/// single shot with no retry. The wait before retry k is
/// `base_delay * backoff^(k-1)`, jittered by +-`jitter_frac`. Retries only
/// ever fire after `base_delay` of silence, so on a clean network (replies
/// within ~2 RTT) a policy with attempts > 1 behaves exactly like one shot.
struct RetryPolicy {
  int attempts = 1;
  sim::Duration base_delay = sim::milliseconds(600);
  double backoff = 2.0;
  double jitter_frac = 0.1;
};

class Node {
 public:
  struct Config {
    NodeConfig protocol;                     ///< f, L, history limit.
    sim::Duration shuffle_period = sim::seconds(10);
    double shuffle_jitter_frac = 0.2;        ///< +- fraction of the period.
    std::size_t depth = 2;                   ///< d — neighborhood radius.
    std::size_t witness_count = 4;           ///< |W|.
    bool majority_opt = false;               ///< deliver at |W|/2+1 identical.
    sim::Duration rpc_timeout = sim::seconds(2);
    sim::Duration neighborhood_wait = sim::milliseconds(400);
    int failures_before_leave_check = 2;

    // Caps on per-peer bookkeeping (duplicate-query suppression, failure
    // counts, replay floors, recorded leavers). FIFO eviction past the cap;
    // see util/bounded.hpp for the forgetting semantics.
    std::size_t max_seen_queries = 4096;
    std::size_t max_tracked_partners = 1024;
    std::size_t max_reported_leavers = 4096;

    // Retry policies (docs/RESILIENCE.md). Acked request/reply RPCs retry
    // until the reply lands or attempts run out; "blind" sends (no ack on
    // the wire: finalize, witness update, data relay/forward) transmit
    // `attempts` copies spaced by the backoff schedule and rely on the
    // receiver's duplicate suppression.
    //
    // Defaults reproduce the pre-retry wire behavior bit-for-bit: a single
    // transmission everywhere (a silent peer — e.g. one that has not joined
    // yet — must not attract retransmissions in a clean run), and the one
    // historical join retransmission at 8 s. Chaos/soak configs raise the
    // attempt counts; see bench/chaos_soak.
    RetryPolicy join_retry{2, sim::seconds(8), 1.0, 0.0};       ///< bootstrap join
    RetryPolicy query_retry{1, sim::milliseconds(600), 2.0, 0.1};   ///< round/shuffle/testimony/entry
    RetryPolicy channel_retry{1, sim::milliseconds(600), 2.0, 0.1}; ///< request + invites
    RetryPolicy blind_retry{1, sim::milliseconds(400), 2.0, 0.1};   ///< unacked sends

    /// Producer-side witness health checks: every period, ping-probe the
    /// witnesses of ready channels; a silent witness is reported as left and
    /// repaired (replaced via a fresh verifiable draw). 0 disables.
    sim::Duration witness_ping_period = 0;

    /// Accountability mode (disabled by default — defaults reproduce the
    /// pre-accountability wire format bit-for-bit). When enabled, shuffle
    /// offers/responses carry body signatures, relays carry producer header
    /// signatures and witness forward signatures, and every detected
    /// violation is packaged as a gossiped, third-party-verifiable
    /// Accusation driving local quarantine and threshold eviction.
    struct Accountability {
      bool enabled = false;
      /// Distinct accusers required before a quarantined peer counts as
      /// evicted (one valid accusation already quarantines locally; the
      /// threshold guards the stronger, permanent verdict).
      std::size_t evict_threshold = 2;
      /// Every `audit_period`-th sequence the consumer also spot-checks the
      /// forwarding witnesses' testimonies against their forwards.
      std::uint64_t audit_period = 4;
      /// Consumer audit runs this long after delivery, so straggling
      /// forwards are not mistaken for omissions.
      sim::Duration audit_delay = sim::seconds(2);
      std::size_t max_seen_entries = 4096;  ///< equivocation cross-check cache
      std::size_t max_accusations = 4096;   ///< gossip dedup cache
    };
    Accountability accountability;

    /// Durability and catch-up sync (disabled by default — defaults reproduce
    /// the pre-durability wire format bit-for-bit). When enabled, the node
    /// announces each sealed checkpoint (protocol.checkpoint_interval governs
    /// sealing), mirrors counterpart sealed histories by fetching missing
    /// entry ranges in bounded chunks, verifies every fetched chunk
    /// fail-closed against the announced chain digest, and convicts a server
    /// whose signed segment contradicts its own signed checkpoint
    /// (AccusationKind::kSegmentMismatch).
    struct Durability {
      bool enabled = false;
      /// Non-owning write-ahead journal (storage/node_store.hpp). Entries,
      /// seals, round marks and standing changes stream into it; catch-up
      /// SegmentRequests are also served from it once the in-memory window
      /// has been trimmed. May be null (announce/sync only, no persistence).
      HistoryJournal* journal = nullptr;
      /// Broadcast kCheckpointAnnounce to the current peerset on each seal
      /// (and, with want_reply, on recovery).
      bool announce_checkpoints = true;
      std::size_t max_segment_entries = 64;  ///< per-SegmentData chunk cap
      std::size_t max_synced_peers = 256;    ///< mirror-state FIFO bound
    };
    Durability durability;

    /// Verification-engine knobs (caches on by default; defaults preserve
    /// verdicts bit-for-bit — see core/verification_engine.hpp).
    VerificationEngine::Config verification;

    /// Active-adversary policy for this node (all-off by default).
    AdversaryPolicy adversary;
  };

  /// Partial runtime reconfiguration: only fields holding a value change.
  /// Applies to *future* activity — established channels keep their witness
  /// group, an in-flight shuffle keeps its timeout.
  struct ConfigDelta {
    std::optional<std::size_t> witness_count;     ///< must be >= 1
    std::optional<bool> majority_opt;
    std::optional<sim::Duration> shuffle_period;  ///< must be > 0
    std::optional<double> shuffle_jitter_frac;    ///< must be in [0, 1]
    std::optional<std::size_t> depth;             ///< must be >= 1
    std::optional<sim::Duration> rpc_timeout;     ///< must be > 0
    /// Sampler backend (core/sampler.hpp). Only legal before the node has
    /// started and committed any round: a mid-epoch swap would orphan every
    /// proof already in histories and in flight, so update_config throws
    /// once running() or round() > 0.
    std::optional<SamplerKind> sampler;
  };

  /// Behaviour knobs for modelling malicious/misbehaving nodes.
  struct Behavior {
    bool refuse_shuffles = false;   ///< never respond to shuffle traffic
    bool drop_relays = false;       ///< witness: silently drop relayed data
    bool corrupt_relays = false;    ///< witness: alter payloads when relaying
    bool lie_in_testimony = false;  ///< witness: log/report a fake digest
  };

  /// Point-in-time snapshot of the node's protocol counters. Backed by the
  /// metrics registry (the "node.*" counters); stats() materializes it so
  /// existing `node.stats().field` call sites keep working unchanged.
  struct Stats {
    std::uint64_t shuffles_initiated = 0;
    std::uint64_t shuffles_completed = 0;    ///< as initiator
    std::uint64_t shuffles_responded = 0;
    std::uint64_t shuffles_rejected = 0;     ///< offers we rejected
    std::uint64_t shuffle_failures = 0;      ///< aborted initiations
    std::uint64_t verification_failures = 0;
    std::uint64_t history_suffix_bytes = 0;  ///< cumulative proof sizes sent
    std::uint64_t leaves_reported = 0;
    std::uint64_t relays_forwarded = 0;
    std::uint64_t rpc_retries = 0;           ///< retransmissions by the RPC table
    std::uint64_t rpc_exhausted = 0;         ///< RPCs abandoned after max attempts
    std::uint64_t witness_repairs = 0;       ///< witnesses replaced on live channels
  };

  using DeliveryCallback = std::function<void(
      std::uint64_t channel_id, std::uint64_t sequence, const Bytes& payload,
      const PeerId& producer)>;
  using ChannelReadyCallback = std::function<void(std::uint64_t channel_id, bool ok)>;

  Node(sim::SimNetwork& net, const std::string& addr,
       const crypto::CryptoProvider& provider, BytesView seed32, Config config,
       std::uint64_t rng_seed);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Starts as a network seed (no bootstrap) and begins the shuffle timer.
  void start_as_seed();

  /// Joins through `bootstrap_addr` (Sec. IV-A) and begins the shuffle timer.
  void start_join(const std::string& bootstrap_addr);

  /// Crash-restart recovery: resumes from journal-replayed state (history
  /// window + checkpoint + round high-water mark + peer standing) with the
  /// pre-crash identity, re-attaches to the fabric, and — when durability
  /// announcements are on — announces its latest checkpoint with want_reply
  /// so both sides of every peering catch up on what they missed. The node
  /// is immediately joined(); no bootstrap round-trip is needed.
  void start_recovered(const RecoveredNode& rec);

  /// Ungraceful leave: detaches from the fabric; peers discover via timeouts.
  void stop();

  /// Graceful leave (Sec. IV-A): self-reports the departure to all current
  /// peers (signed leave notice) and then detaches. Peers still ping-confirm
  /// before recording, so a forged "X left" notice cannot evict a live node.
  void stop_gracefully();

  bool running() const { return running_; }
  bool joined() const { return joined_; }
  /// Terminal join failure: the bootstrap never answered within
  /// `join_retry.attempts` transmissions. The node stays attached (it can
  /// be contacted) but never starts shuffling; also counted as
  /// "node.join_failed" in metrics().
  bool join_failed() const { return join_failed_; }
  const PeerId& id() const { return state_.self(); }
  const NodeState& state() const { return state_; }
  /// The configured verifiable-sampling backend (config.protocol.sampler);
  /// every draw and proof replay this node performs goes through it.
  const SamplerBackend& sampler() const {
    return sampler_backend(config_.protocol.sampler);
  }
  Stats stats() const;
  const EvidenceLog& evidence() const { return evidence_; }
  Behavior& behavior() { return behavior_; }
  AdversaryPolicy& adversary() { return adversary_; }

  /// The simulator driving this node's timers (resolver deadlines etc.).
  sim::Simulator& simulator() { return net_.simulator(); }

  /// True once this node has accepted at least one valid accusation against
  /// `addr` (the peer is excluded from partner/witness selection and its
  /// traffic is dropped).
  bool is_quarantined(const std::string& addr) const {
    return quarantined_.contains(addr);
  }
  /// True once `evict_threshold` distinct accusers have been counted.
  bool is_evicted(const std::string& addr) const {
    const auto it = accused_.find(addr);
    return it != accused_.end() && it->second.evicted;
  }
  std::size_t quarantined_count() const { return quarantined_.size(); }
  /// Sorted snapshots of the accountability verdicts — stable across runs,
  /// so daemon status dumps and the sim↔real interop test can compare them
  /// directly.
  std::vector<std::string> quarantined_addrs() const;
  std::vector<std::string> evicted_addrs() const;

  /// Per-node metrics: the "node.*" counters behind stats(), rejection
  /// counters keyed by VerifyError tag ("node.reject.<tag>"), and the
  /// protocol timers ("node.verify_offer", "node.make_response", ...).
  /// Timers are inert until set_timing_enabled(true) on this registry.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// This node's verification engine (history memos + verdict caches). All
  /// shuffle/witness/accusation verification routes through it; exposed for
  /// cache-statistics scrapes and tests.
  VerificationEngine& verification_engine() { return engine_; }
  const VerificationEngine& verification_engine() const { return engine_; }

  /// Attaches the simulation-wide span tracer (obs/span.hpp); nullptr — the
  /// default — keeps every trace call a null-check, and an attached tracer
  /// never perturbs a seeded run (ids come from the tracer's own stream,
  /// never from a protocol Rng). Attach the same tracer to the SimNetwork
  /// for fabric hop spans. The tracer must outlive the node.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// The causal context currently stamped on outgoing messages. Exposed so
  /// DisputeResolver can parent its testimony queries under a dispute span;
  /// protocol code manages it internally via RAII scopes.
  obs::TraceContext trace_context() const { return trace_ctx_; }
  void set_trace_context(obs::TraceContext ctx) { trace_ctx_ = ctx; }

  /// Opens a witnessed data channel to `consumer_addr`; `on_ready` fires when
  /// the witness group is agreed and invited (or on failure).
  void open_channel(const std::string& consumer_addr, ChannelReadyCallback on_ready);

  /// Sends a payload over an established channel (producer side).
  void send_data(std::uint64_t channel_id, Bytes payload);

  /// Consumer-side delivery hook.
  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  /// Applies a validated partial reconfiguration (see ConfigDelta for the
  /// per-field constraints); out-of-range values throw EnsureError and
  /// leave the config untouched. Used by the latency benches to sweep |W|
  /// and the majority-delivery optimization on a live network.
  void update_config(const ConfigDelta& delta);

  /// The witness group of an established channel (either side).
  const std::vector<PeerId>* channel_witnesses(std::uint64_t channel_id) const;

  /// Ids of the channels this node produces on, in creation order.
  std::vector<std::uint64_t> producer_channel_ids() const;

  /// Asks a witness for its signed testimony about (channel, seq); the
  /// callback receives nullopt if the witness has no record (or on timeout).
  using TestimonyCallback = std::function<void(std::optional<Testimony>)>;
  void request_testimony(const std::string& witness_addr, std::uint64_t channel_id,
                         std::uint64_t sequence, TestimonyCallback cb);

  /// Old-entry lookup service (Sec. IV-A): asks a node for its history entry
  /// at `round`; used for tracing the origin of a peer and for the
  /// cross-entry audit.
  using EntryCallback = std::function<void(std::optional<HistoryEntry>)>;
  void request_history_entry(const std::string& peer_addr, Round round,
                             EntryCallback cb);

 private:
  struct PendingShuffle {
    PeerId partner;
    PartnerChoice choice;
    Round round_at_start = 0;  ///< the round the partner draw was made at
    ShuffleOffer offer;
    bool offer_sent = false;
    std::uint64_t epoch = 0;
    std::uint64_t timeout_token = 0;  ///< identifies the live abort timer
    std::uint64_t query_rpc = 0;      ///< outstanding kRoundQuery (0 = none)
    std::uint64_t offer_rpc = 0;      ///< outstanding kShuffleOffer (0 = none)
    std::uint64_t span = 0;           ///< root "shuffle" span (0 = untraced)

    /// Adversary equivocation: when set, the offer is assembled over this
    /// internally consistent but doctored history instead of the node's real
    /// state (core/adversary.hpp). The doctored suffix reuses the real
    /// counterpart signatures (entry signatures cover only the nonce), so it
    /// passes inline verification and is only caught by cross-comparing
    /// signed exchanges.
    struct Doctored {
      std::vector<HistoryEntry> suffix;
      std::vector<PeerId> claimed;  ///< reconstruct(suffix), sorted
    };
    std::optional<Doctored> doctored;
  };

  struct ProducerChannel {
    std::uint64_t id = 0;
    PeerId consumer;
    std::vector<PeerId> my_neighborhood;
    Round my_round = 0;
    Round consumer_round = 0;
    std::vector<PeerId> witnesses;
    std::set<std::string> acked;     ///< witnesses that acked their invite
    bool accepted = false;           ///< kChannelAccept processed (dedup)
    bool ready = false;
    std::uint64_t next_seq = 1;
    std::uint64_t repair_epoch = 0;  ///< completed witness repairs
    /// Repair announcements the consumer has not acked yet, in epoch order.
    /// Re-sent on every witness-health tick, so a repair performed while the
    /// consumer was unreachable (partition, crash window) is replayed
    /// in-order after the network heals instead of desyncing the two
    /// witness views forever.
    std::vector<std::pair<std::uint64_t, Bytes>> unacked_updates;
    Bytes finalize_payload;          ///< cached for duplicate-accept resend
    std::uint64_t span = 0;          ///< root "channel" span (0 = untraced)
    std::uint64_t request_rpc = 0;   ///< outstanding kChannelRequest
    std::map<std::string, std::uint64_t> invite_rpcs;  ///< per-witness invites
    ChannelReadyCallback on_ready;
  };

  struct ConsumerChannel {
    std::uint64_t id = 0;
    PeerId producer;
    Round producer_round = 0;
    std::vector<PeerId> producer_neighborhood;
    std::vector<PeerId> my_neighborhood;
    Round my_round = 0;
    std::vector<PeerId> witnesses;
    bool ready = false;
    std::uint64_t repair_epoch = 0;  ///< applied witness repairs
    Bytes accept_payload;            ///< cached for duplicate-request resend
    /// Witness duty signatures (accountability mode): witness addr → σ_w over
    /// wduty_payload(...), copied to us alongside the producer's invite ack.
    /// Verified lazily when packaged into an accusation.
    std::map<std::string, Bytes> duty_sigs;
    // Per-sequence digest tallies for delivery decisions.
    struct Tally {
      std::map<Bytes, std::pair<std::size_t, Bytes>> digests;  // digest -> (count, payload)
      std::set<std::string> seen;  ///< witnesses already tallied (dedup)
      std::size_t total = 0;
      bool delivered = false;
      /// Accountability mode: the signed material each forward carried, kept
      /// for tamper/testimony-mismatch accusations and omission challenges.
      struct ForwardRec {
        Bytes digest;       ///< digest of the payload as forwarded
        Bytes forward_sig;  ///< σ_w over forward_payload(...)
        Bytes header_sig;   ///< producer header sig the forward was bound to
        bool header_ok = false;  ///< header verified for `digest`
      };
      std::map<std::string, ForwardRec> forwards;  ///< by witness addr
      bool audited = false;  ///< post-delivery audit already scheduled
    };
    std::map<std::uint64_t, Tally> pending;
  };

  struct RelayDuty {
    PeerId producer;
    PeerId consumer;
  };

  struct NeighborhoodProbe {
    std::uint64_t query_id = 0;
    std::set<PeerId> found;
    std::function<void(std::vector<PeerId>)> done;
  };

  void handle(const sim::NetMessage& msg);
  void send(const std::string& to, MsgType type, Bytes payload);

  // --- Causal tracing (every call a null-check when tracer_ is unset). ---
  /// Opens a span at the current simulated time; 0 when untraced. With the
  /// zero parent the span roots a new trace.
  std::uint64_t trace_begin(std::string name, obs::TraceContext parent);
  void trace_attr(std::uint64_t span, const char* key, std::string value);
  void trace_end(std::uint64_t span);
  void trace_end_outcome(std::uint64_t span, const char* outcome);
  /// RAII: routes sends through `ctx` for the scope (operation-span legs).
  class CtxScope {
   public:
    CtxScope(Node& node, obs::TraceContext ctx) : node_(node), saved_(node.trace_ctx_) {
      node.trace_ctx_ = ctx;
    }
    CtxScope(Node& node, std::uint64_t span);
    ~CtxScope() { node_.trace_ctx_ = saved_; }
    CtxScope(const CtxScope&) = delete;
    CtxScope& operator=(const CtxScope&) = delete;

   private:
    Node& node_;
    obs::TraceContext saved_;
  };
  /// RAII: opens a span as a child of `parent`, routes sends through it for
  /// the scope, and ends it on exit (handler-leg spans).
  class SpanScope {
   public:
    SpanScope(Node& node, const char* name, obs::TraceContext parent);
    ~SpanScope();
    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    std::uint64_t id() const { return span_; }
    void attr(const char* key, std::string value) {
      node_.trace_attr(span_, key, std::move(value));
    }

   private:
    Node& node_;
    std::uint64_t span_ = 0;
    obs::TraceContext saved_;
  };

  // Outstanding-RPC table: every retried transmission lives here until its
  // reply is observed (finish_rpc), its context dies, or its attempts are
  // exhausted (then `give_up` fires). Retry delays are jittered from a
  // dedicated Rng so the protocol rng stream is untouched.
  std::uint64_t send_rpc(const std::string& to, MsgType type, Bytes payload,
                         const RetryPolicy& policy,
                         std::function<void()> give_up = {});
  void finish_rpc(std::uint64_t rpc_id);
  void schedule_rpc_retry(std::uint64_t rpc_id, sim::Duration delay);
  sim::Duration jittered(sim::Duration base, double jitter_frac);
  /// Fire-and-forget redundancy for sends with no ack on the wire: transmits
  /// `policy.attempts` copies on the backoff schedule, unconditionally (the
  /// receiver dedups). One copy when attempts <= 1, i.e. a plain send.
  void send_blind(const std::string& to, MsgType type, Bytes payload,
                  const RetryPolicy& policy);

  // Shuffling.
  void schedule_next_shuffle();
  void schedule_shuffle_timeout();
  void begin_shuffle();
  void abort_shuffle(bool partner_suspect);
  void on_round_query(const sim::NetMessage& msg);
  void on_round_reply(const sim::NetMessage& msg);
  void on_shuffle_offer(const sim::NetMessage& msg);
  void on_shuffle_response(const sim::NetMessage& msg);
  void on_shuffle_reject(const sim::NetMessage& msg);

  // Join.
  void on_join_request(const sim::NetMessage& msg);
  void on_join_reply(const sim::NetMessage& msg);

  // Leave detection.
  void purge_reported_leavers();
  void suspect_peer(const PeerId& peer);
  void on_leave_notice(const sim::NetMessage& msg);
  void on_ping(const sim::NetMessage& msg);
  void on_pong(const sim::NetMessage& msg);

  // Neighborhood flooding.
  void discover_neighborhood(std::function<void(std::vector<PeerId>)> done);
  void on_neighborhood_query(const sim::NetMessage& msg);
  void on_neighborhood_reply(const sim::NetMessage& msg);

  // Channels.
  void on_channel_request(const sim::NetMessage& msg);
  void on_channel_accept(const sim::NetMessage& msg);
  void on_channel_finalize(const sim::NetMessage& msg);
  void on_witness_invite(const sim::NetMessage& msg);
  void on_witness_ack(const sim::NetMessage& msg);
  void on_data_relay(const sim::NetMessage& msg);
  void on_data_forward(const sim::NetMessage& msg);
  void maybe_deliver(ConsumerChannel& ch, std::uint64_t seq);
  void finish_channel_rpcs(ProducerChannel& ch);

  // Witness repair (docs/RESILIENCE.md): when a channel witness is recorded
  // as left, the producer replaces it via a fresh verifiable draw over the
  // surviving candidates and notifies the consumer (kWitnessUpdate); both
  // sides degrade their delivery threshold while the group is short.
  void trigger_witness_repair(const std::string& dead_addr);
  void on_witness_update(const sim::NetMessage& msg);
  void on_witness_update_ack(const sim::NetMessage& msg);
  void schedule_witness_health();

  // Durability / catch-up sync (docs/RESILIENCE.md). The node mirrors each
  // counterpart's sealed history as (entry count, accumulated chain digest);
  // an announce with a newer seal triggers bounded segment fetches that are
  // verified fail-closed chunk by chunk.
  bool durable() const { return config_.durability.enabled; }
  /// Detects a fresh seal (epoch advanced) and broadcasts the announce.
  void maybe_announce_checkpoint();
  void send_checkpoint_announce(const std::string& to, bool want_reply);
  void on_checkpoint_announce(const sim::NetMessage& msg);
  void on_segment_request(const sim::NetMessage& msg);
  void on_segment_data(const sim::NetMessage& msg);

  // Evidence / history query service.
  void on_testimony_query(const sim::NetMessage& msg);
  void on_testimony_reply(const sim::NetMessage& msg);
  void on_entry_query(const sim::NetMessage& msg);
  void on_entry_reply(const sim::NetMessage& msg);

  /// Internal testimony query that distinguishes "witness answered with no
  /// record" (replied, nullopt) from full silence (not replied, nullopt) —
  /// the omission challenge convicts only on silence.
  using TestimonyReplyCallback =
      std::function<void(bool replied, std::optional<Testimony>)>;
  void request_testimony_internal(const std::string& witness_addr,
                                  std::uint64_t channel_id, std::uint64_t sequence,
                                  TestimonyReplyCallback cb);

  // Accountability pipeline (accuse → quarantine → evict).
  bool acct() const { return config_.accountability.enabled; }
  /// Cross-checks the suffix a body-signed exchange carried against entries
  /// previously seen from `peer`; a conflicting entry at the same round
  /// raises a kHistoryEquivocation accusation built from the two exchanges.
  void note_exchange_entries(const PeerId& peer,
                             const std::vector<HistoryEntry>& suffix,
                             ExchangeItem item);
  /// Finalizes (signs), self-verifies, applies locally and gossips an
  /// accusation this node constructed.
  void raise_accusation(Accusation acc);
  /// Applies a verified accusation: records the accuser, quarantines the
  /// accused, and flips to evicted at the accuser threshold.
  void accept_accusation(const Accusation& acc);
  void gossip_accusation(const Accusation& acc, const std::string& skip_addr);
  /// Quarantine = local leave-record (no notice fanout; peers convict via
  /// the gossiped accusation themselves) + witness repair + traffic drop.
  void quarantine_peer(const PeerId& peer, const char* kind_tag);
  /// Live omission challenge: query the accused witness for its testimony of
  /// (channel, seq); convict `acc` only if it stays silent.
  void start_omission_challenge(Accusation acc);
  /// Post-delivery consumer audit: challenge witnesses that never forwarded,
  /// and on audit-period sequences spot-check forwarders' testimonies.
  void schedule_consumer_audit(std::uint64_t channel_id, std::uint64_t seq);
  void run_consumer_audit(std::uint64_t channel_id, std::uint64_t seq);
  void on_accusation(const sim::NetMessage& msg);
  void on_accusation_ack(const sim::NetMessage& msg);

  /// Registration-order ids of the per-node metrics (interned once).
  struct MetricIds {
    explicit MetricIds(obs::MetricsRegistry& r);
    obs::MetricId shuffles_initiated, shuffles_completed, shuffles_responded,
        shuffles_rejected, shuffle_failures, verification_failures,
        history_suffix_bytes, leaves_reported, relays_forwarded;
    // Robustness counters (retry engine, bounded join, witness repair).
    obs::MetricId rpc_retries, rpc_exhausted, join_failed, witness_repairs;
    obs::MetricId blind_copies;
    // Protocol-step timers (shuffle verification/construction hot spots).
    obs::MetricId t_make_offer, t_verify_offer, t_make_response, t_verify_response;
  };

  sim::SimNetwork& net_;
  const crypto::CryptoProvider& provider_;
  NodeState state_;
  Config config_;
  Behavior behavior_;
  Rng rng_;
  obs::MetricsRegistry metrics_;
  MetricIds ids_{metrics_};
  /// Caching verification front-end over provider_ (declared after metrics_
  /// so its counters register into this node's registry).
  VerificationEngine engine_{provider_, config_.verification, &metrics_};
  EvidenceLog evidence_;

  // Causal tracing (null/zero = off, the default).
  obs::Tracer* tracer_ = nullptr;
  obs::TraceContext trace_ctx_{};
  std::uint64_t join_span_ = 0;  ///< root "join" span while joining

  bool running_ = false;
  bool joined_ = false;
  bool join_failed_ = false;

  // Outstanding-RPC table.
  struct OutstandingRpc {
    std::string to;
    MsgType type = MsgType::kPing;
    Bytes payload;
    int sends_done = 1;
    RetryPolicy policy;
    std::function<void()> give_up;
  };
  std::uint64_t next_rpc_ = 1;
  std::unordered_map<std::uint64_t, OutstandingRpc> rpc_table_;
  /// Jitters retry delays only; protocol draws stay on rng_, so attaching
  /// retries never perturbs a fault-free run.
  Rng retry_rng_;
  std::uint64_t join_rpc_ = 0;

  // Shuffle state.
  std::optional<PendingShuffle> pending_;
  std::uint64_t shuffle_epoch_ = 0;  ///< invalidates stale timeout events
  std::uint64_t timeout_seq_ = 0;    ///< feeds PendingShuffle::timeout_token
  BoundedMap<std::string, int> partner_failures_{config_.max_tracked_partners};
  BoundedMap<std::string, Round> last_seen_initiator_round_{config_.max_tracked_partners};
  /// Last committed response per initiator, for duplicate-offer retransmit
  /// (an at-least-once initiator may never have seen our first response).
  BoundedMap<std::string, std::pair<Round, Bytes>> response_cache_{
      config_.max_tracked_partners};
  BoundedSet<std::string> reported_leavers_{config_.max_reported_leavers};
  /// (channel:seq) relays already logged + forwarded (witness-side dedup).
  BoundedSet<std::string> relayed_keys_{config_.max_seen_queries};

  /// In-flight liveness probe: ours (suspect) or triggered by a LeaveNotice,
  /// in which case the received report is applied on timeout.
  struct PingProbe {
    PeerId target;
    bool from_notice = false;
    PeerId reporter;
    Round reporter_round = 0;
    Bytes report_sig;
  };
  std::unordered_map<std::string, PingProbe> ping_probes_;

  // Neighborhood state.
  std::uint64_t next_query_id_ = 1;
  BoundedSet<std::uint64_t> seen_queries_{config_.max_seen_queries};
  std::optional<NeighborhoodProbe> probe_;
  /// Discovery requests arriving while a probe is in flight wait here.
  std::vector<std::function<void(std::vector<PeerId>)>> probe_queue_;

  // Channel state.
  bool health_timer_armed_ = false;  ///< one witness-health loop at a time
  sim::TimePoint last_rx_ = -1;      ///< last receive from anyone (-1: never);
                                     ///< gates the repair self-quarantine
  std::uint64_t next_channel_id_ = 1;
  std::map<std::uint64_t, ProducerChannel> producer_channels_;
  std::map<std::uint64_t, ConsumerChannel> consumer_channels_;
  std::map<std::uint64_t, RelayDuty> relay_duties_;
  DeliveryCallback on_delivery_;

  // Outstanding evidence / history queries keyed by a request id; each also
  // remembers its RPC-table entry so the reply cancels pending retries.
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, std::pair<TestimonyReplyCallback, std::uint64_t>>
      testimony_waiters_;
  std::map<std::uint64_t, std::pair<EntryCallback, std::uint64_t>> entry_waiters_;

  // Durability / catch-up sync state: our mirror of each peer's sealed
  // history. `synced`/`chain` advance only over verified chunks; `target`
  // holds the checkpoint currently being synced toward (sync in flight).
  struct PeerSyncState {
    std::uint64_t synced = 0;   ///< entries verified so far
    ChainDigest chain{};        ///< accumulated chain digest at `synced`
    std::uint64_t epoch = 0;    ///< latest fully mirrored checkpoint epoch
    std::uint64_t rpc = 0;      ///< outstanding kSegmentRequest (0 = none)
    std::uint64_t request_id = 0;
    std::optional<Checkpoint> target;
  };
  BoundedMap<std::string, PeerSyncState> peer_sync_{config_.durability.max_synced_peers};
  void request_next_segment(const std::string& addr, PeerSyncState& sync);
  std::uint64_t announced_epoch_ = 0;  ///< last self-seal broadcast

  // Accountability state.
  AdversaryPolicy adversary_ = config_.adversary;
  /// Adversary attack-rate rolls only; protocol draws stay on rng_, so an
  /// all-off policy never perturbs an honest run.
  Rng adv_rng_;
  std::uint64_t adv_initiations_ = 0;  ///< equivocators alternate per initiation
  std::unordered_set<std::string> quarantined_;
  struct AccusedRecord {
    std::set<std::string> accusers;  ///< distinct accuser addresses counted
    bool evicted = false;
  };
  std::unordered_map<std::string, AccusedRecord> accused_;
  /// Accusation digests already processed (gossip dedup / replay floor).
  BoundedSet<std::string> accusations_seen_{config_.accountability.max_accusations};
  /// "addr#round" → the entry bytes (+ originating signed exchange) first
  /// seen from that peer at that round; conflicts are equivocation proof.
  struct SeenEntry {
    Bytes entry_bytes;
    std::shared_ptr<const ExchangeItem> item;
  };
  BoundedMap<std::string, SeenEntry> seen_entries_{
      config_.accountability.max_seen_entries};
  /// Outstanding accusation-gossip RPCs, keyed "digesthex#peer" so the ack
  /// (which echoes the digest) can cancel the matching retry.
  std::map<std::string, std::uint64_t> accusation_rpcs_;
  /// Omission challenges in flight, keyed "addr#channel#seq" (dedup).
  std::set<std::string> active_challenges_;

  /// Guards timer callbacks against a destroyed node (events may outlive us).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace accountnet::core
