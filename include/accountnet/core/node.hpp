// Event-driven AccountNet participant.
//
// Wires the protocol engines (shuffle, witness, evidence) to the simulated
// message fabric: periodic verifiable shuffling, bootstrap join, ungraceful
// leave detection with signed leave reports, radius-limited neighborhood
// flooding, witness-group channel establishment, and 1-hop witnessed data
// relay with the majority-delivery optimization of Sec. VI-B.
//
// Malicious behaviour is modelled through the Behavior knobs rather than by
// forging cryptography (which verification would reject anyway — that is the
// point of the protocol); the knobs realize the two rational strategies the
// analysis identifies: follow-the-protocol-but-lie-as-witness, or
// refuse-and-separate.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "accountnet/core/evidence.hpp"
#include "accountnet/core/neighborhood.hpp"
#include "accountnet/core/shuffle.hpp"
#include "accountnet/core/witness.hpp"
#include "accountnet/obs/metrics.hpp"
#include "accountnet/sim/network.hpp"
#include "accountnet/util/bounded.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::core {

/// Message type tags on the wire.
enum class MsgType : std::uint32_t {
  kJoinRequest = 1,
  kJoinReply = 2,
  kRoundQuery = 3,
  kRoundReply = 4,
  kShuffleOffer = 5,
  kShuffleResponse = 6,
  kShuffleReject = 7,
  kPing = 8,
  kPong = 9,
  kLeaveNotice = 10,
  kNeighborhoodQuery = 11,
  kNeighborhoodReply = 12,
  kChannelRequest = 13,
  kChannelAccept = 14,
  kChannelFinalize = 15,
  kWitnessInvite = 16,
  kWitnessAck = 17,
  kDataRelay = 18,
  kDataForward = 19,
  kTestimonyQuery = 20,
  kTestimonyReply = 21,
  kEntryQuery = 22,
  kEntryReply = 23,
};

/// Stable snake_case name for a message type ("shuffle_offer", ...); used as
/// the per-type metric-name fragment by SimNetwork::set_metrics. Exhaustive
/// switch — a new MsgType without a name is a compile warning under -Wall.
const char* msg_type_name(MsgType type);

class Node {
 public:
  struct Config {
    NodeConfig protocol;                     ///< f, L, history limit.
    sim::Duration shuffle_period = sim::seconds(10);
    double shuffle_jitter_frac = 0.2;        ///< +- fraction of the period.
    std::size_t depth = 2;                   ///< d — neighborhood radius.
    std::size_t witness_count = 4;           ///< |W|.
    bool majority_opt = false;               ///< deliver at |W|/2+1 identical.
    sim::Duration rpc_timeout = sim::seconds(2);
    sim::Duration neighborhood_wait = sim::milliseconds(400);
    int failures_before_leave_check = 2;

    // Caps on per-peer bookkeeping (duplicate-query suppression, failure
    // counts, replay floors, recorded leavers). FIFO eviction past the cap;
    // see util/bounded.hpp for the forgetting semantics.
    std::size_t max_seen_queries = 4096;
    std::size_t max_tracked_partners = 1024;
    std::size_t max_reported_leavers = 4096;
  };

  /// Partial runtime reconfiguration: only fields holding a value change.
  /// Applies to *future* activity — established channels keep their witness
  /// group, an in-flight shuffle keeps its timeout.
  struct ConfigDelta {
    std::optional<std::size_t> witness_count;     ///< must be >= 1
    std::optional<bool> majority_opt;
    std::optional<sim::Duration> shuffle_period;  ///< must be > 0
    std::optional<double> shuffle_jitter_frac;    ///< must be in [0, 1]
    std::optional<std::size_t> depth;             ///< must be >= 1
    std::optional<sim::Duration> rpc_timeout;     ///< must be > 0
  };

  /// Behaviour knobs for modelling malicious/misbehaving nodes.
  struct Behavior {
    bool refuse_shuffles = false;   ///< never respond to shuffle traffic
    bool drop_relays = false;       ///< witness: silently drop relayed data
    bool corrupt_relays = false;    ///< witness: alter payloads when relaying
    bool lie_in_testimony = false;  ///< witness: log/report a fake digest
  };

  /// Point-in-time snapshot of the node's protocol counters. Backed by the
  /// metrics registry (the "node.*" counters); stats() materializes it so
  /// existing `node.stats().field` call sites keep working unchanged.
  struct Stats {
    std::uint64_t shuffles_initiated = 0;
    std::uint64_t shuffles_completed = 0;    ///< as initiator
    std::uint64_t shuffles_responded = 0;
    std::uint64_t shuffles_rejected = 0;     ///< offers we rejected
    std::uint64_t shuffle_failures = 0;      ///< aborted initiations
    std::uint64_t verification_failures = 0;
    std::uint64_t history_suffix_bytes = 0;  ///< cumulative proof sizes sent
    std::uint64_t leaves_reported = 0;
    std::uint64_t relays_forwarded = 0;
  };

  using DeliveryCallback = std::function<void(
      std::uint64_t channel_id, std::uint64_t sequence, const Bytes& payload,
      const PeerId& producer)>;
  using ChannelReadyCallback = std::function<void(std::uint64_t channel_id, bool ok)>;

  Node(sim::SimNetwork& net, const std::string& addr,
       const crypto::CryptoProvider& provider, BytesView seed32, Config config,
       std::uint64_t rng_seed);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Starts as a network seed (no bootstrap) and begins the shuffle timer.
  void start_as_seed();

  /// Joins through `bootstrap_addr` (Sec. IV-A) and begins the shuffle timer.
  void start_join(const std::string& bootstrap_addr);

  /// Ungraceful leave: detaches from the fabric; peers discover via timeouts.
  void stop();

  /// Graceful leave (Sec. IV-A): self-reports the departure to all current
  /// peers (signed leave notice) and then detaches. Peers still ping-confirm
  /// before recording, so a forged "X left" notice cannot evict a live node.
  void stop_gracefully();

  bool running() const { return running_; }
  bool joined() const { return joined_; }
  const PeerId& id() const { return state_.self(); }
  const NodeState& state() const { return state_; }
  Stats stats() const;
  const EvidenceLog& evidence() const { return evidence_; }
  Behavior& behavior() { return behavior_; }

  /// Per-node metrics: the "node.*" counters behind stats(), rejection
  /// counters keyed by VerifyError tag ("node.reject.<tag>"), and the
  /// protocol timers ("node.verify_offer", "node.make_response", ...).
  /// Timers are inert until set_timing_enabled(true) on this registry.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Opens a witnessed data channel to `consumer_addr`; `on_ready` fires when
  /// the witness group is agreed and invited (or on failure).
  void open_channel(const std::string& consumer_addr, ChannelReadyCallback on_ready);

  /// Sends a payload over an established channel (producer side).
  void send_data(std::uint64_t channel_id, Bytes payload);

  /// Consumer-side delivery hook.
  void set_delivery_callback(DeliveryCallback cb) { on_delivery_ = std::move(cb); }

  /// Applies a validated partial reconfiguration (see ConfigDelta for the
  /// per-field constraints); out-of-range values throw EnsureError and
  /// leave the config untouched. Used by the latency benches to sweep |W|
  /// and the majority-delivery optimization on a live network.
  void update_config(const ConfigDelta& delta);

  [[deprecated("use update_config(ConfigDelta) instead")]]
  void set_witness_policy(std::size_t witness_count, bool majority_opt) {
    ConfigDelta delta;
    delta.witness_count = witness_count;
    delta.majority_opt = majority_opt;
    update_config(delta);
  }

  /// The witness group of an established channel (either side).
  const std::vector<PeerId>* channel_witnesses(std::uint64_t channel_id) const;

  /// Ids of the channels this node produces on, in creation order.
  std::vector<std::uint64_t> producer_channel_ids() const;

  /// Asks a witness for its signed testimony about (channel, seq); the
  /// callback receives nullopt if the witness has no record (or on timeout).
  using TestimonyCallback = std::function<void(std::optional<Testimony>)>;
  void request_testimony(const std::string& witness_addr, std::uint64_t channel_id,
                         std::uint64_t sequence, TestimonyCallback cb);

  /// Old-entry lookup service (Sec. IV-A): asks a node for its history entry
  /// at `round`; used for tracing the origin of a peer and for the
  /// cross-entry audit.
  using EntryCallback = std::function<void(std::optional<HistoryEntry>)>;
  void request_history_entry(const std::string& peer_addr, Round round,
                             EntryCallback cb);

 private:
  struct PendingShuffle {
    PeerId partner;
    PartnerChoice choice;
    Round round_at_start = 0;  ///< the round the partner draw was made at
    ShuffleOffer offer;
    bool offer_sent = false;
    std::uint64_t epoch = 0;
  };

  struct ProducerChannel {
    std::uint64_t id = 0;
    PeerId consumer;
    std::vector<PeerId> my_neighborhood;
    Round my_round = 0;
    std::vector<PeerId> witnesses;
    std::size_t acks = 0;
    bool ready = false;
    std::uint64_t next_seq = 1;
    ChannelReadyCallback on_ready;
  };

  struct ConsumerChannel {
    std::uint64_t id = 0;
    PeerId producer;
    Round producer_round = 0;
    std::vector<PeerId> producer_neighborhood;
    std::vector<PeerId> my_neighborhood;
    Round my_round = 0;
    std::vector<PeerId> witnesses;
    bool ready = false;
    // Per-sequence digest tallies for delivery decisions.
    struct Tally {
      std::map<Bytes, std::pair<std::size_t, Bytes>> digests;  // digest -> (count, payload)
      std::size_t total = 0;
      bool delivered = false;
    };
    std::map<std::uint64_t, Tally> pending;
  };

  struct RelayDuty {
    PeerId producer;
    PeerId consumer;
  };

  struct NeighborhoodProbe {
    std::uint64_t query_id = 0;
    std::set<PeerId> found;
    std::function<void(std::vector<PeerId>)> done;
  };

  void handle(const sim::NetMessage& msg);
  void send(const std::string& to, MsgType type, Bytes payload);

  // Shuffling.
  void schedule_next_shuffle();
  void begin_shuffle();
  void abort_shuffle(bool partner_suspect);
  void on_round_query(const sim::NetMessage& msg);
  void on_round_reply(const sim::NetMessage& msg);
  void on_shuffle_offer(const sim::NetMessage& msg);
  void on_shuffle_response(const sim::NetMessage& msg);
  void on_shuffle_reject(const sim::NetMessage& msg);

  // Join.
  void on_join_request(const sim::NetMessage& msg);
  void on_join_reply(const sim::NetMessage& msg);

  // Leave detection.
  void purge_reported_leavers();
  void suspect_peer(const PeerId& peer);
  void on_leave_notice(const sim::NetMessage& msg);
  void on_ping(const sim::NetMessage& msg);
  void on_pong(const sim::NetMessage& msg);

  // Neighborhood flooding.
  void discover_neighborhood(std::function<void(std::vector<PeerId>)> done);
  void on_neighborhood_query(const sim::NetMessage& msg);
  void on_neighborhood_reply(const sim::NetMessage& msg);

  // Channels.
  void on_channel_request(const sim::NetMessage& msg);
  void on_channel_accept(const sim::NetMessage& msg);
  void on_channel_finalize(const sim::NetMessage& msg);
  void on_witness_invite(const sim::NetMessage& msg);
  void on_witness_ack(const sim::NetMessage& msg);
  void on_data_relay(const sim::NetMessage& msg);
  void on_data_forward(const sim::NetMessage& msg);
  void maybe_deliver(ConsumerChannel& ch, std::uint64_t seq);

  // Evidence / history query service.
  void on_testimony_query(const sim::NetMessage& msg);
  void on_testimony_reply(const sim::NetMessage& msg);
  void on_entry_query(const sim::NetMessage& msg);
  void on_entry_reply(const sim::NetMessage& msg);

  /// Registration-order ids of the per-node metrics (interned once).
  struct MetricIds {
    explicit MetricIds(obs::MetricsRegistry& r);
    obs::MetricId shuffles_initiated, shuffles_completed, shuffles_responded,
        shuffles_rejected, shuffle_failures, verification_failures,
        history_suffix_bytes, leaves_reported, relays_forwarded;
    // Protocol-step timers (shuffle verification/construction hot spots).
    obs::MetricId t_make_offer, t_verify_offer, t_make_response, t_verify_response;
  };

  sim::SimNetwork& net_;
  const crypto::CryptoProvider& provider_;
  NodeState state_;
  Config config_;
  Behavior behavior_;
  Rng rng_;
  obs::MetricsRegistry metrics_;
  MetricIds ids_{metrics_};
  EvidenceLog evidence_;

  bool running_ = false;
  bool joined_ = false;

  // Shuffle state.
  std::optional<PendingShuffle> pending_;
  std::uint64_t shuffle_epoch_ = 0;  ///< invalidates stale timeout events
  BoundedMap<std::string, int> partner_failures_{config_.max_tracked_partners};
  BoundedMap<std::string, Round> last_seen_initiator_round_{config_.max_tracked_partners};
  BoundedSet<std::string> reported_leavers_{config_.max_reported_leavers};

  /// In-flight liveness probe: ours (suspect) or triggered by a LeaveNotice,
  /// in which case the received report is applied on timeout.
  struct PingProbe {
    PeerId target;
    bool from_notice = false;
    PeerId reporter;
    Round reporter_round = 0;
    Bytes report_sig;
  };
  std::unordered_map<std::string, PingProbe> ping_probes_;

  // Neighborhood state.
  std::uint64_t next_query_id_ = 1;
  BoundedSet<std::uint64_t> seen_queries_{config_.max_seen_queries};
  std::optional<NeighborhoodProbe> probe_;
  /// Discovery requests arriving while a probe is in flight wait here.
  std::vector<std::function<void(std::vector<PeerId>)>> probe_queue_;

  // Channel state.
  std::uint64_t next_channel_id_ = 1;
  std::map<std::uint64_t, ProducerChannel> producer_channels_;
  std::map<std::uint64_t, ConsumerChannel> consumer_channels_;
  std::map<std::uint64_t, RelayDuty> relay_duties_;
  DeliveryCallback on_delivery_;

  // Outstanding evidence / history queries keyed by a request id.
  std::uint64_t next_request_id_ = 1;
  std::map<std::uint64_t, TestimonyCallback> testimony_waiters_;
  std::map<std::uint64_t, EntryCallback> entry_waiters_;

  /// Guards timer callbacks against a destroyed node (events may outlive us).
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace accountnet::core
