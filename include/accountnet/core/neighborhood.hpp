// Depth-bounded neighborhood discovery (Sec. V).
//
// N_i^d = all nodes within directed distance d of v_i in the overlay graph.
// Discovery is a breadth-first expansion over peersets; the PeersetOracle
// abstracts where peersets come from (direct state access in simulations,
// radius-limited query flooding in the event-driven node).
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "accountnet/core/peerset.hpp"
#include "accountnet/core/types.hpp"

namespace accountnet::core {

/// Supplies the peerset of a node, or nullopt if unreachable/unknown.
class PeersetOracle {
 public:
  virtual ~PeersetOracle() = default;
  virtual std::optional<Peerset> peerset_of(const PeerId& node) const = 0;
};

/// Adapter over a lambda (handy for tests and the harness).
class FnPeersetOracle final : public PeersetOracle {
 public:
  using Fn = std::function<std::optional<Peerset>(const PeerId&)>;
  explicit FnPeersetOracle(Fn fn) : fn_(std::move(fn)) {}
  std::optional<Peerset> peerset_of(const PeerId& node) const override { return fn_(node); }

 private:
  Fn fn_;
};

/// BFS to depth `d` from `root`; the result excludes the root itself and is
/// sorted. Unreachable nodes' peersets are treated as empty (their own entry
/// still appears if someone points at them).
std::vector<PeerId> neighborhood(const PeersetOracle& oracle, const PeerId& root,
                                 std::size_t depth);

/// Sorted intersection/difference helpers used by witness planning.
std::vector<PeerId> sorted_intersection(const std::vector<PeerId>& a,
                                        const std::vector<PeerId>& b);
std::vector<PeerId> sorted_difference(const std::vector<PeerId>& a,
                                      const std::vector<PeerId>& b);

}  // namespace accountnet::core
