// Third-party dispute resolution over the network.
//
// The resolver is any network participant (it needs no privileged position):
// given the two parties' claims and the witness group of the disputed
// channel, it queries every witness for its signed testimony and applies the
// simple-majority rule of Sec. V. Witnesses that left or stonewall simply
// fail to contribute — and because the majority threshold is over the GROUP
// size, silence can never manufacture a verdict.
#pragma once

#include "accountnet/core/node.hpp"

namespace accountnet::core {

class DisputeResolver {
 public:
  struct Request {
    std::uint64_t channel_id = 0;
    std::uint64_t sequence = 0;
    std::vector<PeerId> witnesses;  ///< the channel's agreed witness group
    Claim producer_claim;
    Claim consumer_claim;
    /// Forensics: context of the operation being disputed (e.g. taken from
    /// the accusation's originating trace). The "dispute.resolve" span and
    /// every testimony query then join that trace, so the dispute's complete
    /// timeline is one trace-id query. Zero roots a standalone trace.
    obs::TraceContext trace;
  };

  struct Outcome {
    Resolution resolution;
    std::size_t responded = 0;  ///< witnesses that answered at all
    std::vector<Testimony> testimonies;
  };

  using DoneCallback = std::function<void(Outcome)>;

  /// `node` provides the resolver's network identity and query plumbing.
  /// `deadline` hard-bounds each resolution: whatever testimonies have
  /// arrived by then are resolved as-is, so a stonewalling witness set (or a
  /// retry policy slower than the per-query timeout) can never pin Pending
  /// entries in flight indefinitely. 0 disables the deadline.
  explicit DisputeResolver(Node& node, const crypto::CryptoProvider& provider,
                           sim::Duration deadline = sim::seconds(30))
      : node_(node), provider_(provider), deadline_(deadline) {}

  /// Collects testimonies from all witnesses, then resolves. The callback
  /// fires once every witness has answered or timed out, or at the deadline,
  /// whichever comes first. Answers arriving after the deadline are dropped.
  void resolve(Request request, DoneCallback done);

  /// Resolutions currently awaiting witnesses (leak check / introspection).
  std::size_t in_flight() const { return in_flight_.size(); }

 private:
  struct Pending {
    Request request;
    DoneCallback done;
    std::size_t outstanding = 0;
    std::vector<Testimony> testimonies;
    std::size_t responded = 0;
    bool finished = false;  ///< set by completion OR deadline; later one no-ops
    std::uint64_t span = 0;  ///< "dispute.resolve" span (0 = untraced)
  };

  Node& node_;
  const crypto::CryptoProvider& provider_;
  sim::Duration deadline_;
  std::vector<std::shared_ptr<Pending>> in_flight_;
};

}  // namespace accountnet::core
