// Pluggable verifiable-sampling backends.
//
// AccountNet's accountability argument needs exactly two properties from a
// draw: (1) the prover cannot choose the outcome (it is a deterministic
// function of its VRF key, the domain and a counterpart-supplied nonce), and
// (2) any verifier holding the proofs can replay the draw and compare it to
// the claim. Everything else about Algorithms 1/2 — rejection sampling, the
// retry counter, the Q-bit index — is incidental to the VRF realization.
// SamplerBackend is that boundary made explicit: core::Node,
// harness::NetworkSim and the accusation/verification paths speak only this
// interface, and three implementations plug in behind it:
//
//   kVrf       the paper's repeated-draw loop (core/select.hpp), verbatim —
//              the default, byte-identical to the pre-interface code;
//   kPeerSwap  a PeerSwap-style swap-based sampler: one VRF output per pick
//              drives a Fisher-Yates swap over the sorted candidate list, so
//              exactly `want` proofs and no Null retries;
//   kHoneybee  a Honeybee-style verifiable random walk: each VRF output is
//              one step over an implicit bounded-degree graph on the sorted
//              candidate list; after a fixed mixing length every step may
//              pick the node under the cursor.
//
// All three are deterministic over both crypto providers (they use only the
// Signer/CryptoProvider VRF surface), all three express every AdversaryPolicy
// attack the same way (bias_sample mutates the claimed sample while keeping
// the proofs — replay catches it regardless of backend), and all three bound
// the work a malicious prover can demand from a verifier via
// capabilities().max_proofs (checked before any crypto is done).
#pragma once

#include <optional>
#include <string_view>

#include "accountnet/core/select.hpp"

namespace accountnet::core {

enum class SamplerKind : std::uint8_t {
  kVrf = 0,       ///< Algorithm 1/2 repeated draws (default).
  kPeerSwap = 1,  ///< swap-based sampling.
  kHoneybee = 2,  ///< verifiable random walk.
};

/// Stable lowercase names ("vrf", "peerswap", "honeybee") for configs,
/// benches and JSON output.
const char* sampler_kind_name(SamplerKind kind);
std::optional<SamplerKind> sampler_kind_from(std::string_view name);

/// What a backend costs and how its verdicts may be cached. Descriptive —
/// protocol correctness never depends on these numbers, but benches, the
/// VerificationEngine and docs/SAMPLERS.md do.
struct SamplerCapabilities {
  SamplerKind kind;
  const char* name;
  /// Hard cap on proofs per draw, identical on prover and verifier; a
  /// message carrying more fails closed (kTooManyDrawProofs) before any
  /// crypto is attempted. The kMaxDrawAttempts equivalent for this backend.
  std::size_t max_proofs;
  /// Expected proofs consumed per picked peer (1.0 = no rejections).
  double expected_proofs_per_pick;
  std::size_t proof_bytes_real;  ///< per-proof wire bytes, Ed25519+ECVRF backend
  std::size_t proof_bytes_fast;  ///< per-proof wire bytes, keyed-SHA-2 backend
  /// Extra message round-trips a draw needs beyond piggybacking proofs on
  /// the existing offer/response/witness messages (0 for all current
  /// backends — they are non-interactive given the counterpart nonce).
  std::size_t interaction_rounds;
  /// True if the backend uses rejection sampling (Null retries), i.e. the
  /// proof count for a draw is variable up to max_proofs.
  bool rejection_sampling;
  /// VerificationEngine invalidation semantics: every current backend
  /// derives verdicts purely from per-signer VRF facts, so the engine's
  /// per-signer generation bump on invalidate(peer) covers it. A future
  /// backend with cross-signer state (e.g. interactive transcripts) must
  /// set this false, which makes the engine bypass its verdict caches.
  bool per_signer_verdicts;
};

/// A verifiable sampling strategy. Implementations are stateless and
/// shareable (sampler_backend() returns process-wide singletons); all
/// determinism lives in the Signer's VRF stream.
class SamplerBackend {
 public:
  virtual ~SamplerBackend() = default;

  virtual const SamplerCapabilities& capabilities() const = 0;

  /// Draws up to `want` distinct peers from `candidates` using the prover's
  /// VRF stream, binding `domain` and the counterpart-chosen `nonce` into
  /// every proof. Returns fewer than `want` only if the candidate list is
  /// smaller or the backend's work cap is hit.
  virtual Draw draw(const crypto::Signer& signer, const Peerset& candidates,
                    std::size_t want, std::string_view domain,
                    BytesView nonce) const = 0;

  /// Verifier-side mirror of draw(): replays the proof stream and checks
  /// that `claimed` is exactly the sample the proofs dictate. Fails closed
  /// on oversized proof lists (capabilities().max_proofs) before any crypto.
  /// `provider` may be a VerificationEngine (it is a CryptoProvider), in
  /// which case primitive checks resolve through its caches.
  virtual VerifyResult verify(const crypto::CryptoProvider& provider,
                              const crypto::PublicKeyBytes& prover_key,
                              const Peerset& candidates, std::size_t want,
                              std::string_view domain, BytesView nonce,
                              const std::vector<Bytes>& proofs,
                              const std::vector<PeerId>& claimed) const = 0;

  /// Single-peer draw (shuffle-partner selection); nullopt if `candidates`
  /// is empty or the cap is hit before a pick.
  std::optional<Draw> draw_one(const crypto::Signer& signer, const Peerset& candidates,
                               std::string_view domain, BytesView nonce) const;

  /// Verifier-side mirror of draw_one().
  VerifyResult verify_one(const crypto::CryptoProvider& provider,
                          const crypto::PublicKeyBytes& prover_key,
                          const Peerset& candidates, std::string_view domain,
                          BytesView nonce, const std::vector<Bytes>& proofs,
                          const PeerId& claimed) const;
};

/// Process-wide singleton for each kind. References stay valid for the
/// program lifetime; backends are stateless so sharing is safe.
const SamplerBackend& sampler_backend(SamplerKind kind);

}  // namespace accountnet::core
