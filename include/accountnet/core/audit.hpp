// Offline audit machinery (Sec. IV-A "Peerset verification", Sec. V
// neighborhood verification).
//
// Beyond the inline checks every shuffle performs, AccountNet lets any node
// audit others after the fact:
//
//   * cross-entry audit: for an entry ω_{j,r} claiming a shuffle with v_k at
//     v_k's round r', fetch ω_{k,r'} and check the mirror-image relations
//     (what j removed toward k appears on k's in-side and vice versa, up to
//     refills and capacity drops);
//   * history-window invariants: counterpart ∈ N̂_j[r] for initiated
//     shuffles and out ⊆ N̂_j[r] — the two invariants listed in the paper;
//   * neighborhood audit: verify a claimed N_j^d by walking the overlay from
//     v_j and checking each hop's peerset against its history (full
//     traversal, or a cheaper random-walk spot check).
#pragma once

#include "accountnet/core/history.hpp"
#include "accountnet/core/neighborhood.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::core {

/// Checks the mirror relation between two shuffle entries that claim to
/// describe the same exchange: `mine` from the audited node, `theirs` from
/// its counterpart. Capacity drops and refills make the relation a pair of
/// subset constraints rather than equalities.
VerifyResult audit_entry_pair(const HistoryEntry& mine, const PeerId& me,
                              const HistoryEntry& theirs, const PeerId& them);

/// Per-entry invariants over a history window reconstructed from `suffix`
/// (the paper's two bullets): for each shuffle entry, the counterpart lay in
/// the reconstructed peerset when the owner initiated, and out ⊆ N̂[r].
VerifyResult audit_history_invariants(const std::vector<HistoryEntry>& suffix,
                                      const PeerId& owner);

/// Supplies another node's history entry by round (e.g. backed by the
/// old-entry lookup RPC, or direct state access in simulations).
class EntryOracle {
 public:
  virtual ~EntryOracle() = default;
  virtual std::optional<HistoryEntry> entry_of(const PeerId& node, Round round) const = 0;
};

class FnEntryOracle final : public EntryOracle {
 public:
  using Fn = std::function<std::optional<HistoryEntry>(const PeerId&, Round)>;
  explicit FnEntryOracle(Fn fn) : fn_(std::move(fn)) {}
  std::optional<HistoryEntry> entry_of(const PeerId& node, Round round) const override {
    return fn_(node, round);
  }

 private:
  Fn fn_;
};

/// Full cross-entry audit of a history suffix: every shuffle entry is
/// checked against the counterpart's mirrored entry fetched from the oracle.
/// Counterparts that cannot be reached are skipped (they may have left);
/// `checked` reports how many pairs were actually audited.
struct CrossAuditResult {
  VerifyResult verdict = VerifyResult::pass();
  std::size_t checked = 0;
  std::size_t unreachable = 0;
};
CrossAuditResult cross_audit_history(const std::vector<HistoryEntry>& suffix,
                                     const PeerId& owner, const EntryOracle& oracle);

/// Verifies a claimed depth-d neighborhood by re-walking the overlay from
/// `root` through the peerset oracle. `claimed` must equal the BFS result.
VerifyResult audit_neighborhood_full(const PeersetOracle& oracle, const PeerId& root,
                                     std::size_t depth,
                                     const std::vector<PeerId>& claimed);

/// Cheaper spot check (the paper's "random walking"): take `walks` random
/// walks of length <= depth from the root; every node touched must be in the
/// claimed set. Catches under-claiming; over-claimed ghost nodes are caught
/// probabilistically by membership walks from claimed nodes backwards.
VerifyResult audit_neighborhood_spot(const PeersetOracle& oracle, const PeerId& root,
                                     std::size_t depth,
                                     const std::vector<PeerId>& claimed,
                                     std::size_t walks, Rng& rng);

}  // namespace accountnet::core
