// Witness group formation (Sec. V).
//
// Given the producer/consumer neighborhoods N_i^d and N_j^d:
//   * the common nodes N_i^d ∩ N_j^d are excluded on BOTH sides (a node
//     reachable from both would otherwise have double the selection odds —
//     an avenue for pollution attacks);
//   * the endpoints themselves are excluded;
//   * each side draws a quota proportional to its neighborhood size,
//     α_x = |N_x^d| / (|N_i^d| + |N_j^d|), with the same verifiable VRF
//     sampling as peer shuffling, seeded by a channel nonce that binds both
//     endpoints and their current rounds (so neither side can grind it).
#pragma once

#include "accountnet/core/sampler.hpp"
#include "accountnet/core/select.hpp"

namespace accountnet::core {

class VerificationEngine;

inline constexpr std::string_view kWitnessDomain = "an.witness";

/// Channel nonce: binds both endpoints and their rounds.
Bytes channel_nonce(const PeerId& producer, Round producer_round,
                    const PeerId& consumer, Round consumer_round);

struct WitnessPlan {
  std::vector<PeerId> candidates_producer;  ///< N_i^d minus common minus endpoints.
  std::vector<PeerId> candidates_consumer;  ///< N_j^d minus common minus endpoints.
  std::vector<PeerId> common;               ///< Excluded common nodes.
  std::size_t quota_producer = 0;
  std::size_t quota_consumer = 0;
  double alpha_producer = 0.0;
  double alpha_consumer = 0.0;
};

/// Computes exclusions and the α-proportional split of `total` witnesses.
/// Quotas are capped by candidate availability (spare capacity moves to the
/// other side when possible).
WitnessPlan plan_witness_group(const std::vector<PeerId>& neighborhood_producer,
                               const std::vector<PeerId>& neighborhood_consumer,
                               const PeerId& producer, const PeerId& consumer,
                               std::size_t total);

/// One side's verifiable witness draw, through the configured sampler.
Draw draw_witnesses(const SamplerBackend& sampler, const crypto::Signer& signer,
                    const std::vector<PeerId>& candidates, std::size_t quota,
                    BytesView nonce);

/// Counterpart verification of a witness draw.
VerifyResult verify_witnesses(const SamplerBackend& sampler,
                              const crypto::CryptoProvider& provider,
                              const crypto::PublicKeyBytes& drawer_key,
                              const std::vector<PeerId>& candidates, std::size_t quota,
                              BytesView nonce, const std::vector<Bytes>& proofs,
                              const std::vector<PeerId>& claimed);

/// Engine-backed overload: same verdicts, proofs resolved through the
/// engine's cache/batch path (core/verification_engine.hpp).
VerifyResult verify_witnesses(const SamplerBackend& sampler, VerificationEngine& engine,
                              const crypto::PublicKeyBytes& drawer_key,
                              const std::vector<PeerId>& candidates, std::size_t quota,
                              BytesView nonce, const std::vector<Bytes>& proofs,
                              const std::vector<PeerId>& claimed);

/// Final group: the two draws merged and sorted (they are disjoint by
/// construction since the candidate sets are).
std::vector<PeerId> merge_witnesses(const std::vector<PeerId>& from_producer,
                                    const std::vector<PeerId>& from_consumer);

}  // namespace accountnet::core
