// Deterministic fault injection for the simulated message fabric.
//
// A FaultPlan is a declarative, seeded schedule of the unclean things a real
// network does that the clean NetEM model of sim/network.hpp does not:
// probabilistic loss, duplication and reordering (delay spikes) per link and
// per message type, bidirectional partitions with scheduled heal times, and
// node crash/restart windows. The plan is interpreted by a FaultInjector that
// owns its own Rng, so attaching a plan never perturbs the latency stream of
// the underlying network — a run with an all-zero plan is byte-identical to a
// run with no plan at all as far as the rest of the simulation can observe.
//
// Crash semantics at this layer are *silence*, not state loss: a crashed
// address neither receives nor emits messages for the window. That is exactly
// how a crashed process appears to its peers; restoring state after restart
// is the node owner's concern (core::Node keeps its state, matching a process
// that persisted its history).
#pragma once

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "accountnet/sim/simulator.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::sim {

/// Injected fault taxonomy; `fault_kind_name` gives the stable metric-name
/// fragment used for the "net.fault.<kind>.<type>" counters.
enum class FaultKind : std::uint8_t {
  kLoss = 0,       ///< message silently dropped
  kDup = 1,        ///< message delivered twice
  kReorder = 2,    ///< message held back by an extra delay spike
  kPartition = 3,  ///< dropped by an active partition
  kCrash = 4,      ///< dropped because an endpoint is in a crash window
};
const char* fault_kind_name(FaultKind kind);

/// One probabilistic per-link rule. Empty `from`/`to` are wildcards; a
/// nullopt `type` matches every message type. Multiple matching rules
/// compose: loss is tried per rule (first hit wins), duplication and
/// reordering accumulate the strongest matching probability.
struct LinkFault {
  std::string from;                       ///< exact sender address or "" (any)
  std::string to;                         ///< exact receiver address or "" (any)
  std::optional<std::uint32_t> type;      ///< wire type tag or nullopt (any)
  double loss = 0.0;                      ///< P(drop)
  double duplicate = 0.0;                 ///< P(deliver a second copy)
  double reorder = 0.0;                   ///< P(extra delay spike)
  Duration reorder_min = milliseconds(50);   ///< spike bounds (uniform)
  Duration reorder_max = milliseconds(500);
};

/// Bidirectional partition between two address sets, active on [start, heal).
/// An empty side means "every address not listed on the other side", so a
/// single-sided plan isolates a group from the rest of the world.
struct Partition {
  std::vector<std::string> side_a;
  std::vector<std::string> side_b;
  TimePoint start = 0;
  TimePoint heal = std::numeric_limits<TimePoint>::max();
};

/// Crash window: `addr` is silenced on [crash, restart) — traffic to and
/// from it is dropped at the fabric.
struct CrashWindow {
  std::string addr;
  TimePoint crash = 0;
  TimePoint restart = std::numeric_limits<TimePoint>::max();
};

/// Declarative, seeded fault schedule. Default-constructed plans are empty
/// (inject nothing); the same plan + seed always injects the same faults for
/// the same message sequence.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<LinkFault> links;
  std::vector<Partition> partitions;
  std::vector<CrashWindow> crashes;

  bool empty() const {
    return links.empty() && partitions.empty() && crashes.empty();
  }

  /// Convenience: uniform symmetric loss on every link and type.
  static FaultPlan uniform_loss(double p, std::uint64_t seed);
};

/// Verdict for one message offered to the injector.
struct FaultDecision {
  bool drop = false;
  FaultKind drop_kind = FaultKind::kLoss;  ///< valid when drop
  bool duplicate = false;                  ///< deliver a second copy
  Duration extra_delay = 0;                ///< reorder spike on the original
  Duration dup_extra_delay = 0;            ///< reorder spike on the duplicate
};

/// Interprets a FaultPlan deterministically. The injector owns its Rng
/// (seeded from the plan), so it can be bolted onto an existing seeded
/// simulation without disturbing any other random stream.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Rolls the dice for one message sent now. Consumes randomness only for
  /// probabilistic rules that match the (from, to, type) triple.
  FaultDecision decide(const std::string& from, const std::string& to,
                       std::uint32_t type, TimePoint now);

  /// True while a partition separates the two addresses.
  bool partitioned(const std::string& from, const std::string& to,
                   TimePoint now) const;

  /// True while `addr` is inside a crash window.
  bool crashed(const std::string& addr, TimePoint now) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
};

}  // namespace accountnet::sim
