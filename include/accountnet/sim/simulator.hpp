// Deterministic discrete-event simulator, two scheduling modes.
//
// This substitutes for the paper's EC2 testbed: virtual time advances only
// through scheduled events, so a 10 000-node AccountNet network running for
// hundreds of virtual seconds executes reproducibly in one process.
//
// Sequential mode (the default API: schedule/step/run_until) fires events at
// equal timestamps in schedule order (a monotonic sequence number breaks
// ties), which makes runs bit-for-bit repeatable for a fixed seed.
//
// Sharded parallel mode (enable_sharding + schedule_shard + run_epochs)
// partitions events across N shards, each with its own (when, seq) queue,
// and drains all shards concurrently in epochs of simulated time with a
// barrier between epochs. Shard-local events must only touch shard-local
// state; cross-shard communication goes through post_cross() mailboxes that
// are flushed at the barrier in deterministic (source shard, seq) order and
// land no earlier than the next epoch. Under those rules the result is
// invariant to the worker thread count — see docs/PARALLELISM.md for the
// full determinism argument and the rules an event callback must obey.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "accountnet/obs/metrics.hpp"

namespace accountnet::util {
class WorkerPool;
}

namespace accountnet::sim {

/// Virtual time in microseconds since simulation start.
using TimePoint = std::int64_t;
/// Virtual duration in microseconds.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t v) { return v; }
constexpr Duration milliseconds(std::int64_t v) { return v * 1000; }
constexpr Duration seconds(std::int64_t v) { return v * 1000000; }
constexpr double to_seconds(TimePoint t) { return static_cast<double>(t) / 1e6; }
constexpr double to_milliseconds(TimePoint t) { return static_cast<double>(t) / 1e3; }

class Simulator {
 public:
  TimePoint now() const { return now_; }

  /// Schedules fn to run `delay` after the current time (delay >= 0).
  void schedule(Duration delay, std::function<void()> fn);

  /// Schedules fn at an absolute time (>= now).
  void schedule_at(TimePoint when, std::function<void()> fn);

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs events with timestamp <= deadline; time ends at the deadline.
  void run_until(TimePoint deadline);

  /// Runs until the event queue drains.
  void run();

  std::size_t pending() const;
  std::uint64_t events_processed() const {
    std::uint64_t n = events_processed_;
    for (const auto& s : shards_) n += s.events_processed;
    return n;
  }

  /// Timestamp of the earliest pending event, or nullopt when the queue is
  /// empty. Lets a real-time host (net::RealNetHost) sleep exactly until the
  /// next virtual deadline instead of polling.
  std::optional<TimePoint> next_event_time() const;
  bool has_next() const { return next_event_time().has_value(); }

  // --- Sharded parallel mode ------------------------------------------------
  //
  // Opt-in second scheduling mode. The sequential API above keeps working
  // (its events run on shard 0); a simulator that never calls
  // enable_sharding() behaves byte-identically to the pre-sharding class.

  /// Partitions the event space into `shards` independent queues. Must be
  /// called before any schedule_shard/post_cross; shards >= 1.
  void enable_sharding(std::size_t shards);
  std::size_t shard_count() const { return shards_.empty() ? 1 : shards_.size(); }

  /// Schedules a shard-local event. The callback runs on an arbitrary worker
  /// thread during the epoch containing `now + delay` and MUST NOT touch any
  /// other shard's state (use post_cross for that).
  void schedule_shard(std::size_t shard, Duration delay, std::function<void()> fn);

  /// Current virtual time of one shard (== the sequential clock for shard 0
  /// outside run_epochs; shards advance independently within an epoch).
  TimePoint shard_now(std::size_t shard) const;

  /// Cross-shard send, callable from inside a shard event running on any
  /// worker thread. The message is buffered in the (from, to) mailbox and
  /// delivered as an event on shard `to` at max(next epoch start, when);
  /// mailboxes are flushed at the barrier in (from, seq) order, so delivery
  /// order never depends on worker scheduling.
  void post_cross(std::size_t from, std::size_t to, Duration delay,
                  std::function<void()> fn);

  /// Drains every shard up to `deadline` in epochs of width `epoch_us`. Each
  /// epoch runs all shards' due events concurrently on `pool` (nullptr =>
  /// inline, still epoch-ordered), then a barrier flushes the cross-shard
  /// mailboxes. Results are bit-identical for every pool size, including
  /// none, provided events obey the shard-confinement rules above.
  void run_epochs(TimePoint deadline, Duration epoch_us, util::WorkerPool* pool);

  /// Sharded-mode progress counters (0 when sharding is unused).
  std::uint64_t epochs_run() const { return epochs_run_; }
  std::uint64_t cross_posts() const { return cross_posts_; }

  /// Mirrors sharded-mode progress into `sim.shard.{epochs,events,
  /// cross_posts}` counters on `registry` at every epoch barrier (the
  /// single-threaded section, so the owning-thread interning rule holds).
  /// Lazily interned: never attaching a registry — every sequential-mode
  /// user — leaves scrapes byte-identical to the pre-sharding simulator.
  void attach_metrics(obs::MetricsRegistry* registry);

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };
  using Queue = std::priority_queue<Event, std::vector<Event>, Later>;

  struct Shard {
    Queue queue;
    TimePoint now = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t events_processed = 0;
    /// Outbound mailboxes, one per destination shard, drained at the barrier.
    struct CrossMsg {
      std::size_t to;
      TimePoint when;
      std::uint64_t seq;  ///< source-shard sequence — the deterministic order
      std::function<void()> fn;
    };
    std::vector<CrossMsg> outbox;
  };

  /// Runs shard `s` up to `limit` (events with when <= limit); worker-thread
  /// body of run_epochs.
  void drain_shard_until(Shard& s, TimePoint limit);

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  Queue queue_;

  std::vector<Shard> shards_;  ///< empty until enable_sharding()
  std::uint64_t epochs_run_ = 0;
  std::uint64_t cross_posts_ = 0;

  obs::MetricsRegistry* registry_ = nullptr;
  obs::MetricId id_epochs_ = 0, id_events_ = 0, id_cross_ = 0;
};

}  // namespace accountnet::sim
