// Deterministic discrete-event simulator.
//
// This substitutes for the paper's EC2 testbed: virtual time advances only
// through scheduled events, so a 10 000-node AccountNet network running for
// hundreds of virtual seconds executes reproducibly in one process. Events
// at equal timestamps fire in schedule order (a monotonic sequence number
// breaks ties), which makes runs bit-for-bit repeatable for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace accountnet::sim {

/// Virtual time in microseconds since simulation start.
using TimePoint = std::int64_t;
/// Virtual duration in microseconds.
using Duration = std::int64_t;

constexpr Duration microseconds(std::int64_t v) { return v; }
constexpr Duration milliseconds(std::int64_t v) { return v * 1000; }
constexpr Duration seconds(std::int64_t v) { return v * 1000000; }
constexpr double to_seconds(TimePoint t) { return static_cast<double>(t) / 1e6; }
constexpr double to_milliseconds(TimePoint t) { return static_cast<double>(t) / 1e3; }

class Simulator {
 public:
  TimePoint now() const { return now_; }

  /// Schedules fn to run `delay` after the current time (delay >= 0).
  void schedule(Duration delay, std::function<void()> fn);

  /// Schedules fn at an absolute time (>= now).
  void schedule_at(TimePoint when, std::function<void()> fn);

  /// Runs the next event; returns false when the queue is empty.
  bool step();

  /// Runs events with timestamp <= deadline; time ends at the deadline.
  void run_until(TimePoint deadline);

  /// Runs until the event queue drains.
  void run();

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t events_processed() const { return events_processed_; }

  /// Timestamp of the earliest pending event, or -1 when the queue is empty.
  /// Lets a real-time host (net::RealNetHost) sleep exactly until the next
  /// virtual deadline instead of polling.
  TimePoint next_event_time() const { return queue_.empty() ? -1 : queue_.top().when; }

 private:
  struct Event {
    TimePoint when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace accountnet::sim
