// Simulated message fabric between named endpoints.
//
// Models the paper's NetEM setup: each transmitted message experiences a
// sampled one-way delay (default 20 ms plus jitter, matching the paper's
// "at least about 40 ms round trip"). Delivery is reliable and ordered per
// the TCP assumption in Sec. II-D; messages to departed endpoints are
// silently dropped, which is how ungraceful leave manifests to peers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "accountnet/obs/metrics.hpp"
#include "accountnet/obs/span.hpp"
#include "accountnet/obs/trace.hpp"
#include "accountnet/sim/fault.hpp"
#include "accountnet/sim/simulator.hpp"
#include "accountnet/util/bytes.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::sim {

/// One-way latency distribution for a hop.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual Duration sample(Rng& rng) = 0;
};

/// Constant delay.
std::unique_ptr<LatencyModel> fixed_latency(Duration d);
/// Uniform in [lo, hi].
std::unique_ptr<LatencyModel> uniform_latency(Duration lo, Duration hi);
/// Normal(mean, stddev) clamped to >= min (default 0).
std::unique_ptr<LatencyModel> normal_latency(Duration mean, Duration stddev,
                                             Duration min = 0);
/// The paper's NetEM substitute: 20 ms base + small uniform jitter.
std::unique_ptr<LatencyModel> netem_latency();

struct NetMessage {
  std::string from;
  std::string to;
  std::uint32_t type = 0;
  Bytes payload;
  /// Causal trace context of the sending span (zero = untraced, the default;
  /// see obs/span.hpp). Serialized captures carry it via wire::Envelope v2.
  obs::TraceContext trace;
};

struct NetworkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;    ///< destination not registered
  std::uint64_t bytes_sent = 0;
  // Injected-fault tallies (all zero unless a FaultPlan is attached).
  std::uint64_t faults_dropped = 0;      ///< loss + partition + crash drops
  std::uint64_t faults_duplicated = 0;   ///< extra copies delivered
  std::uint64_t faults_delayed = 0;      ///< reorder delay spikes applied
};

/// Endpoint registry + latency-delayed delivery.
class SimNetwork {
 public:
  using Handler = std::function<void(const NetMessage&)>;

  /// The network borrows the simulator and owns the latency model.
  SimNetwork(Simulator& simulator, std::unique_ptr<LatencyModel> latency,
             std::uint64_t rng_seed);

  /// Registers a message handler for `address`; replaces any previous one.
  void attach(const std::string& address, Handler handler);

  /// Removes the endpoint; in-flight messages to it are dropped on arrival.
  void detach(const std::string& address);

  bool is_attached(const std::string& address) const;

  /// Schedules delivery after a sampled delay. Unknown destinations count as
  /// drops at delivery time (the sender cannot tell — like a silent peer).
  void send(NetMessage msg);

  /// Gateway for destinations not attached to this fabric: when set, a send
  /// to an unknown address is handed to the gateway *synchronously* (no
  /// latency sample, no scheduling) instead of becoming an in-fabric drop.
  /// This is the host-adapter seam net::RealNetHost uses to route a node's
  /// outbound traffic onto real sockets while local delivery (and every
  /// simulation run, where no gateway is ever set) is untouched. Pass
  /// nullptr to detach.
  void set_gateway(Handler gateway) { gateway_ = std::move(gateway); }
  bool has_gateway() const { return gateway_ != nullptr; }

  /// Samples the one-way delay without sending (for latency accounting).
  Duration sample_delay();

  const NetworkStats& stats() const { return stats_; }
  Simulator& simulator() { return sim_; }

  /// Maps a wire type tag to a stable metric-name fragment; tags the namer
  /// does not recognize should map to a stable fallback (e.g. "type_17").
  using TypeNamer = std::function<std::string(std::uint32_t)>;

  /// Attaches a metrics registry: every subsequent send/delivery/drop bumps
  /// per-type counters ("net.sent.<type>", "net.recv.<type>",
  /// "net.drop.<type>", "net.bytes.<type>"). Pass nullptr to detach. The
  /// registry must outlive the network (or the next set_metrics call).
  void set_metrics(obs::MetricsRegistry* registry, TypeNamer namer = {});

  /// Attaches a trace ring: each send records a TraceEvent{t, type,
  /// payload_size, "from->to"} stamped with the simulated send time. Pass
  /// nullptr to detach. When a metrics registry is also attached, ring
  /// occupancy and overflow surface as the "obs.trace.size" /
  /// "obs.trace.dropped" gauges on every send.
  void set_trace(obs::TraceRing* ring) { trace_ = ring; }

  /// Attaches a span tracer: every traced message (valid NetMessage::trace)
  /// gets a "net.<type>" hop span — child of the sending span, closed at
  /// delivery or drop — so cross-node span trees include fabric latency.
  /// Pass nullptr to detach. The tracer draws from no protocol Rng stream,
  /// so attaching it never perturbs a seeded run.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a fault schedule (see sim/fault.hpp). The injector owns its
  /// own Rng, so the latency stream is unchanged — a run with no plan and a
  /// run with an all-zero plan are indistinguishable. Every injected fault
  /// bumps a "net.fault.<kind>.<type>" counter when metrics are attached.
  void set_fault_plan(FaultPlan plan);
  void clear_fault_plan() { faults_.reset(); }
  /// The active injector, or nullptr (e.g. for crash-window queries).
  const FaultInjector* faults() const { return faults_ ? &*faults_ : nullptr; }

 private:
  struct TypeMetrics {
    obs::MetricId sent;
    obs::MetricId received;
    obs::MetricId dropped;
    obs::MetricId bytes;
  };
  const TypeMetrics& type_metrics(std::uint32_t type);
  void count_fault(FaultKind kind, std::uint32_t type);
  void deliver_after(Duration delay, NetMessage msg, std::uint64_t hop_span);
  std::uint64_t begin_hop_span(const NetMessage& msg);
  void end_hop_span(std::uint64_t hop_span, const char* outcome);

  Simulator& sim_;
  std::unique_ptr<LatencyModel> latency_;
  Rng rng_;
  std::unordered_map<std::string, Handler> endpoints_;
  Handler gateway_;
  NetworkStats stats_;
  obs::MetricsRegistry* metrics_ = nullptr;
  TypeNamer namer_;
  obs::TraceRing* trace_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  bool ring_gauges_ready_ = false;
  obs::MetricId ring_size_id_ = 0;
  obs::MetricId ring_dropped_id_ = 0;
  std::unordered_map<std::uint32_t, TypeMetrics> per_type_;
  std::optional<FaultInjector> faults_;
  std::unordered_map<std::uint64_t, obs::MetricId> fault_metrics_;
};

}  // namespace accountnet::sim
