// Scalable experiment harness.
//
// Drives thousands of NodeState instances through the verified shuffle
// engine with virtual-time scheduling but *synchronous* message exchange —
// an initiator's offer, the responder's verification and response, and the
// final commit all happen at the shuffle event. This reproduces the paper's
// EC2 deployment dynamics (staggered launches, ~10 s shuffle periods with
// jitter, analysis snapshots every 10 s, ungraceful churn) at |V| = 10 000
// on one machine. The event-driven core::Node is used where real message
// latency matters (the Fig. 20 case study); this harness is used where the
// measured quantities are graph statistics.
//
// Verification economy: every exchanged shuffle can be fully verified, but
// at 10k nodes that dominates runtime, so `verify_fraction` verifies a
// random subset (tests use 1.0). A verification failure among honest nodes
// is a bug and is surfaced in the stats.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "accountnet/analysis/graph_metrics.hpp"
#include "accountnet/core/adversary.hpp"
#include "accountnet/core/shuffle.hpp"
#include "accountnet/core/verification_engine.hpp"
#include "accountnet/obs/metrics.hpp"
#include "accountnet/obs/sink.hpp"
#include "accountnet/obs/span.hpp"
#include "accountnet/sim/fault.hpp"
#include "accountnet/sim/simulator.hpp"
#include "accountnet/util/rng.hpp"
#include "accountnet/util/stats.hpp"

namespace accountnet::util {
class WorkerPool;
}
namespace accountnet::crypto {
class PooledProvider;
}

namespace accountnet::harness {

/// How flagged-malicious nodes behave (Sec. IV-B's two rational strategies).
enum class MaliciousMode {
  kFollowProtocol,  ///< shuffle honestly; lie only as witnesses (case i)
  kSeparateOverlay, ///< refuse benign contact; own overlay (case ii)
};

struct ExperimentConfig {
  std::size_t network_size = 1000;   ///< |V|
  std::size_t f = 5;                 ///< max peerset size
  std::size_t l = 3;                 ///< shuffle length L (paper: ceil(f/2))
  std::size_t d = 2;                 ///< neighborhood depth limit
  double pm = 0.0;                   ///< malicious probability
  MaliciousMode malicious_mode = MaliciousMode::kFollowProtocol;

  sim::Duration shuffle_period = sim::seconds(10);
  double shuffle_jitter_frac = 0.25;
  sim::Duration analysis_period = sim::seconds(10);

  /// Launch model: `lane_size` nodes per emulated VM, consecutive launches
  /// within a lane separated by uniform [0, launch_spacing_max].
  std::size_t lane_size = 125;
  sim::Duration launch_spacing_max = sim::seconds(10);

  /// Retained history entries per node. The single source of truth is
  /// core::kDefaultHistoryLimit so the harness and the event-driven
  /// core::Node can never silently diverge again (they once defaulted to
  /// 96 vs 512; see DESIGN.md).
  std::size_t history_limit = core::kDefaultHistoryLimit;
  /// Seal a signed checkpoint every N history entries (core/checkpoint.hpp);
  /// 0 (the default) disables sealing and keeps every seeded run
  /// byte-identical to the pre-checkpoint harness.
  std::uint64_t checkpoint_interval = 0;
  /// Attach a deterministic in-memory segment store + write-ahead journal
  /// (storage/node_store.hpp) to every node so schedule_crash_restart() can
  /// model process death and disk-backed recovery. Off by default:
  /// journaling never changes protocol behavior, but the extra "harness.
  /// recovery.*" / "harness.history.trimmed" metrics only materialize when
  /// it is on, so default scrapes stay byte-identical.
  bool durable_nodes = false;
  /// Verifiable-sampling backend for every node (core/sampler.hpp). The
  /// default kVrf keeps seeded runs byte-identical to the pre-interface
  /// harness; bench/sampler_compare sweeps the alternatives.
  core::SamplerKind sampler = core::SamplerKind::kVrf;
  double verify_fraction = 0.05;     ///< fraction of shuffles fully verified
  bool track_coverage = false;       ///< per-node distinct-peers-seen bitsets
  bool track_shuffle_pairs = false;  ///< Fig. 5 heatmap (small |V| only)
  bool use_real_crypto = false;      ///< Ed25519+ECVRF instead of FastCrypto
  std::uint64_t seed = 1;

  /// Optional fault schedule (sim/fault.hpp). The harness exchanges shuffle
  /// messages synchronously, so a drop on any of the four logical legs
  /// (round query/reply, offer, response) — or a crashed endpoint — fails
  /// the whole shuffle; there are no retries at this layer (core::Node has
  /// them). When unset, behavior is bit-identical to the pre-fault harness.
  std::optional<sim::FaultPlan> fault_plan;

  /// Active-adversary policy applied by flagged-malicious nodes (the same
  /// core::AdversaryPolicy that plugs into core::Node). At this layer only
  /// the shuffle-facing attacks are meaningful (bias_sample, forge_history,
  /// truncate_history, equivocate); relay/witness attacks need the
  /// event-driven stack. Detection happens through the responder's verify
  /// path, so experiments that study detection set verify_fraction = 1.0.
  /// Default-constructed (all attacks off) keeps the harness bit-identical.
  core::AdversaryPolicy adversary;

  /// Per-node verification-engine knobs (core/verification_engine.hpp).
  /// Caching never changes verdicts, so defaults keep every seeded run
  /// byte-identical; capacities are smaller than core::Node's because the
  /// harness multiplies them by |V| (10k nodes must stay cheap).
  core::VerificationEngine::Config verification{.enable_cache = true,
                                                .enable_batch = true,
                                                .sig_cache_capacity = 256,
                                                .vrf_cache_capacity = 256,
                                                .history_memo_capacity = 64};

  /// Wave-parallel drive (docs/PARALLELISM.md). 0 (the default) keeps the
  /// classic sequential event loop, byte-identical to every pre-parallel
  /// run. N >= 1 plans shuffle events sequentially in event order, batches
  /// conflict-free runs of them into waves executed on a WorkerPool of N
  /// threads, and resolves every engine cache miss of a wave through ONE
  /// global CryptoProvider::verify_batch — with results (digests, stats,
  /// per-node protocol state) bit-identical to threads = 0 at every N.
  /// threads = 1 runs the same wave machinery inline (no worker threads).
  /// Only engine cache hit/miss/eviction *counters* may differ from the
  /// sequential path (waves prefetch speculatively); verdicts never do.
  /// Incompatible with set_tracer() and metrics timing (sequential-only).
  std::size_t threads = 0;
};

struct HarnessStats {
  std::uint64_t shuffles_attempted = 0;
  std::uint64_t shuffles_completed = 0;
  std::uint64_t shuffles_verified = 0;
  std::uint64_t verification_failures = 0;  ///< MUST stay 0 with honest nodes
  std::uint64_t dead_partner_hits = 0;
  std::uint64_t refused_cross_group = 0;    ///< kSeparateOverlay refusals
  std::uint64_t leave_reports = 0;
  std::uint64_t fault_failures = 0;         ///< shuffles lost to injected faults
  std::uint64_t byz_attacks = 0;            ///< adversarial offer mutations sent
  std::uint64_t byz_detections = 0;         ///< mutations caught by verification
  std::uint64_t byz_quarantines = 0;        ///< (observer, accused) pairs added
  std::uint64_t byz_refused_quarantined = 0;///< rounds refused due to quarantine
};

class NetworkSim {
 public:
  explicit NetworkSim(ExperimentConfig config);
  ~NetworkSim();

  /// Advances the simulation by `rounds` analysis periods, invoking
  /// `on_analysis(absolute_round)` after each.
  ///
  /// Incremental-continuation contract (relied on by every bench that
  /// interleaves measurement; preserved verbatim by the wave-parallel
  /// drive):
  ///   1. The FIRST run() call fires `on_analysis(0)` at t = 0 before
  ///      advancing (run_started() flips true at that point).
  ///   2. Every subsequent call continues from exactly where the previous
  ///      one stopped — `run(a); run(b);` is indistinguishable from
  ///      `run(a + b);` — and the callback always receives the ABSOLUTE
  ///      round number (`rounds_completed()`), never a per-call index.
  ///   3. In parallel mode any in-flight wave is flushed before each
  ///      callback, so analysis always observes a settled network.
  /// There is deliberately no reset(): nodes accumulate history, standing
  /// and journals that cannot be rewound — construct a fresh NetworkSim for
  /// a fresh experiment.
  void run(std::size_t rounds, const std::function<void(std::size_t)>& on_analysis);

  std::size_t rounds_completed() const { return rounds_completed_; }
  /// True once the first run() call has fired its t = 0 analysis callback.
  bool run_started() const { return run_started_; }

  /// Churn: schedules `count` random alive nodes to leave (ungracefully)
  /// at uniformly random times within [start, start+window].
  void schedule_churn(std::size_t count, sim::TimePoint start, sim::Duration window);

  /// Crash/restart fault (requires durable_nodes). At `crash_at` the node's
  /// entire RAM state is destroyed — protocol state, verifier caches,
  /// quarantine sets, even the journal object; only its segment store (the
  /// simulated disk) survives. At `restart_at` the node is rebuilt from the
  /// store via storage::NodeStore::load() + core::NodeState::restore() and
  /// resumes shuffling under its pre-crash identity, standing intact.
  void schedule_crash_restart(std::size_t idx, sim::TimePoint crash_at,
                              sim::TimePoint restart_at);

  // --- Introspection (valid inside the analysis callback) -----------------

  std::size_t size() const { return nodes_.size(); }
  std::size_t alive_count() const { return alive_count_; }
  std::size_t joined_count() const { return joined_count_; }
  std::size_t malicious_alive_count() const;
  const HarnessStats& stats() const { return stats_; }
  sim::TimePoint now() const;

  // --- Observability -------------------------------------------------------

  /// Network-wide metrics registry. Holds the "harness.*" series (synced
  /// from HarnessStats at scrape time) plus anything the owning bench
  /// registers; callers may enable timing on it for wall-clock sections.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// Scrapes every metric into `sink`, stamped with the current simulated
  /// time. Syncs the harness counters/gauges first, so a scrape is always a
  /// complete picture without per-event instrumentation cost in the hot loop.
  void scrape_metrics(obs::Sink& sink);

  /// Appends a JSON-lines scrape to `path` (the BENCH_*.json convention).
  void write_metrics_json(const std::string& path);

  /// Attaches a span tracer (obs/span.hpp): each synchronous shuffle emits a
  /// root "shuffle" span on the initiator with a "shuffle.respond" child on
  /// the partner, and adversary detections emit "accuse.quarantine" spans on
  /// the observer — the same span vocabulary core::Node uses, so traces from
  /// either engine feed the same tooling. nullptr (default) = tracing off;
  /// attaching a tracer never perturbs a seeded run.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  bool is_alive(std::size_t idx) const;
  bool is_malicious(std::size_t idx) const;
  bool is_joined(std::size_t idx) const;
  /// Valid only while the node is not mid-crash (between crash_at and
  /// restart_at its RAM state does not exist).
  const core::NodeState& node_state(std::size_t idx) const;

  /// Directed adjacency over ALL node indices (dead nodes have no edges).
  analysis::Adjacency snapshot_adjacency() const;

  /// Depth-d neighborhood of node idx over the live overlay (indices).
  std::vector<std::size_t> neighborhood_indices(std::size_t idx, std::size_t depth) const;

  /// Sampled mean neighborhood size over alive+joined nodes.
  double sample_avg_neighborhood(std::size_t depth, std::size_t samples, Rng& rng) const;

  /// Sampled mean |N_i^d ∩ N_j^d| over random alive pairs.
  double sample_avg_common(std::size_t depth, std::size_t pair_samples, Rng& rng) const;

  /// P(neighbor malicious) for sampled nodes (Fig. 14): one value per node.
  Samples sample_neighbor_malicious_fraction(std::size_t depth, std::size_t samples,
                                             Rng& rng) const;

  /// P(witness candidate malicious) for sampled pairs (Fig. 15): the
  /// α-weighted malicious fraction among candidates after exclusion. When
  /// `exclude_common` is false, reports the no-exclusion ablation.
  Samples sample_candidate_malicious_fraction(std::size_t depth,
                                              std::size_t witness_count,
                                              std::size_t pair_samples, Rng& rng,
                                              bool exclude_common = true) const;

  /// Effective history suffix lengths accumulated since the last call.
  Samples take_history_length_samples();

  /// Shuffles completed since the last call (for rate plots).
  std::uint64_t take_shuffle_delta();

  /// Coverage counts (distinct peers ever seen) per alive node.
  Samples coverage_counts() const;

  /// Fig. 5: whether nodes i and j ever shuffled together.
  bool ever_shuffled(std::size_t i, std::size_t j) const;

  /// How many alive honest nodes have locally quarantined node `accused`
  /// (detection-coverage numerator for adversary experiments).
  std::size_t quarantined_by_count(std::size_t accused) const;

  /// Total (observer, accused) quarantine pairs across all alive nodes.
  std::size_t quarantine_edges() const;

  // --- Durability introspection (durable_nodes only) -----------------------

  /// Journaled entries of node `idx` with global index in [start,
  /// start+count), oldest first — the full prefix survives on "disk" even
  /// after the in-memory window was trimmed.
  std::vector<core::HistoryEntry> journal_entries(std::size_t idx, std::uint64_t start,
                                                  std::size_t count) const;
  std::uint64_t recovery_crashes() const { return recovery_crashes_; }
  std::uint64_t recovery_restarts() const { return recovery_restarts_; }
  std::uint64_t recovery_entries_replayed() const { return recovery_entries_replayed_; }

 private:
  struct HarnessNode;
  struct WaveEvent;

  void launch_node(std::size_t idx);
  void restart_node(std::size_t idx);
  void schedule_shuffle(std::size_t idx);
  void do_shuffle(std::size_t idx);
  bool apply_adversary(HarnessNode& hn, core::ShuffleOffer& offer,
                       const core::PeerId& partner);
  /// `stats` is where counter bumps land: `stats_` on every sequential path,
  /// a per-event scratch struct on the parallel exec path (merged in event
  /// order at the wave barrier — exec workers must never touch `stats_`).
  void quarantine(HarnessNode& observer, const core::PeerId& accused,
                  HarnessStats& stats, obs::TraceContext ctx = {});
  void drop_cached_verdicts(HarnessNode& node, const core::PeerId& peer);
  void handle_dead_partner(std::size_t idx, std::size_t partner_idx);
  void record_leave(HarnessNode& reporter_node, const core::PeerId& leaver,
                    HarnessStats& stats);
  void purge_zombies(HarnessNode& node);
  void update_coverage(HarnessNode& node);
  std::size_t index_of(const core::PeerId& peer) const;
  void sync_metrics();

  // --- Wave-parallel drive (threads >= 1; docs/PARALLELISM.md) -------------
  bool parallel() const { return config_.threads >= 1; }
  /// Parallel-mode replacement for the do_shuffle event body: runs the
  /// sequential prologue (partner choice, refusal/fault legs, RNG draws) in
  /// event order and defers the data-parallel remainder into wave_.
  void plan_shuffle(std::size_t idx);
  /// Executes the pending wave: build offers + gather engine cache misses
  /// (parallel) -> one global verify_batch -> preload verdicts -> exec
  /// verify/commit (parallel) -> merge stats/samples/re-arms (event order).
  void flush_wave();
  /// Parallel-mode replacement for sim_.run_until: steps events one by one
  /// so a wave can be flushed BEFORE simulated time passes the earliest
  /// possible re-arm of a planned event (the wave_deadline_ rule).
  void drive_until(sim::TimePoint deadline);
  /// Re-arm emitted at the merge barrier: same jitter draw and same absolute
  /// timestamp the sequential path would have produced at `event_when`.
  void rearm_shuffle_at(std::size_t idx, sim::TimePoint event_when);

  ExperimentConfig config_;
  core::NodeConfig node_config_;  ///< shared by initial launch and restart
  std::unique_ptr<crypto::CryptoProvider> provider_;
  sim::Simulator sim_;
  Rng rng_;
  std::optional<sim::FaultInjector> faults_;
  std::vector<std::unique_ptr<HarnessNode>> nodes_;
  std::unordered_map<std::string, std::size_t> addr_to_index_;
  std::size_t alive_count_ = 0;
  std::size_t joined_count_ = 0;
  std::size_t rounds_completed_ = 0;
  bool run_started_ = false;
  HarnessStats stats_;
  obs::MetricsRegistry metrics_;
  obs::Tracer* tracer_ = nullptr;
  Samples history_samples_;
  std::uint64_t shuffle_delta_ = 0;
  // Crash/recovery bookkeeping (durable_nodes only; synced lazily).
  std::uint64_t recovery_crashes_ = 0;
  std::uint64_t recovery_restarts_ = 0;
  std::uint64_t recovery_entries_replayed_ = 0;
  std::vector<std::vector<std::uint8_t>> shuffle_pairs_;  // optional heatmap

  // Wave-parallel drive state (empty/null in sequential mode).
  std::unique_ptr<util::WorkerPool> pool_;
  std::unique_ptr<crypto::PooledProvider> pooled_;
  std::vector<std::unique_ptr<WaveEvent>> wave_;
  std::vector<std::uint8_t> in_wave_;  ///< per-node: touched by a pending event
  sim::TimePoint wave_deadline_ = 0;   ///< latest safe event time before flush
  sim::Duration rearm_bound_ = 0;      ///< min re-arm delay minus one
  // verify.epoch_batch.* ids, interned lazily on the first flush so default
  // (threads = 0) runs keep byte-identical scrapes.
  obs::MetricId id_flushes_ = 0, id_jobs_ = 0, id_preloaded_ = 0;
  bool wave_ids_interned_ = false;
};

}  // namespace accountnet::harness
