// Binary wire codec: little-endian fixed-width integers, LEB128-style
// varints, and length-prefixed byte strings. All protocol messages and all
// signing inputs are encoded through this codec so both ends agree on the
// exact bytes being signed.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "accountnet/util/bytes.hpp"

namespace accountnet::wire {

/// Thrown by Reader on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void varint(std::uint64_t v);
  /// Length-prefixed (varint) byte string.
  void bytes(BytesView data);
  /// Length-prefixed UTF-8 string.
  void str(std::string_view s);
  /// Raw bytes, no length prefix (fixed-size fields).
  void raw(BytesView data);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::uint64_t varint();
  Bytes bytes();
  std::string str();
  /// Reads exactly n raw bytes.
  Bytes raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  /// Next byte without consuming it (for trailing-section disambiguation).
  std::uint8_t peek_u8() const;
  /// Throws DecodeError unless the input was fully consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace accountnet::wire
