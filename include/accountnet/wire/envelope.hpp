// Versioned serialization of a message envelope (addressing + type + causal
// trace context + payload) — the capture/transport form of sim::NetMessage.
//
// net::MessageSocket frames carry only [type][payload]; an Envelope is the
// richer form used when a message must be stored or replayed with its
// context intact (message captures, cross-process trace propagation).
//
// Versioning: byte 0 is the format version.
//   v1: from, to, type, payload                     (pre-tracing captures)
//   v2: from, to, type, trace_id, parent_span, payload
// decode_envelope() accepts both, so old captures still decode; v1 input
// yields the zero trace context. Unknown versions throw DecodeError.
#pragma once

#include <cstdint>
#include <string>

#include "accountnet/util/bytes.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::wire {

inline constexpr std::uint8_t kEnvelopeV1 = 1;
inline constexpr std::uint8_t kEnvelopeV2 = 2;
inline constexpr std::uint8_t kEnvelopeVersion = kEnvelopeV2;

struct Envelope {
  std::string from;
  std::string to;
  std::uint32_t type = 0;
  std::uint64_t trace_id = 0;     ///< v2+; 0 = untraced
  std::uint64_t parent_span = 0;  ///< v2+
  Bytes payload;

  friend bool operator==(const Envelope&, const Envelope&) = default;
};

/// Encodes at the current version (v2).
Bytes encode_envelope(const Envelope& e);
/// Encodes the pre-tracing v1 layout (compat captures; drops the context).
Bytes encode_envelope_v1(const Envelope& e);

/// Decodes any supported version; throws DecodeError on truncation, trailing
/// garbage, or an unknown version byte.
Envelope decode_envelope(BytesView data);

}  // namespace accountnet::wire
