// NodeStore: the AccountNet journal schema over a SegmentStore.
//
// Implements core::HistoryJournal by framing each state change as one tagged
// record in the underlying segment store:
//   tag 1 — history entry (global index + wire entry)
//   tag 2 — sealed checkpoint (wire checkpoint); also rotates the active
//           segment and atomically replaces the metadata blob with the
//           checkpoint, so recovery finds the latest seal without a scan
//   tag 3 — round high-water mark (rounds burned without an entry)
//   tag 4 — peer standing change (quarantine / eviction, with the accuser)
//
// load() replays the records into a core::RecoveredNode, which
// core::NodeState::restore() / core::Node::start_recovered() resume from.
// read_entries() serves catch-up SegmentRequests from disk even after the
// in-memory history window was trimmed.
#pragma once

#include <memory>

#include "accountnet/core/checkpoint.hpp"
#include "accountnet/storage/segment_store.hpp"

namespace accountnet::storage {

class NodeStore final : public core::HistoryJournal {
 public:
  /// The store is shared, not owned: it models the disk, which survives the
  /// death of the node (and of this journal object) in crash simulations.
  /// Scans existing records once to recount entries.
  explicit NodeStore(std::shared_ptr<SegmentStore> store);

  // --- core::HistoryJournal (write-ahead; each record synced) ---------------
  void on_entry(std::uint64_t index, const core::HistoryEntry& entry) override;
  void on_checkpoint(const core::Checkpoint& ck) override;
  void on_round(core::Round next_round) override;
  void on_standing(const std::string& addr, bool evicted,
                   const std::string& accuser) override;

  /// Replays the journal into recovery state. Throws StoreError on an entry
  /// index gap or an undecodable record (sealed-segment corruption).
  core::RecoveredNode load() const;

  /// Journaled entries with global index in [start, start+count), oldest
  /// first; stops early at the journal's end. O(journal) — catch-up serving
  /// is rare and segment sizes are bounded by the checkpoint interval.
  std::vector<core::HistoryEntry> read_entries(std::uint64_t start,
                                               std::size_t count) const override;

  /// Total entries journaled so far (== the owner's history total_appended).
  std::uint64_t entry_count() const { return entry_count_; }

  SegmentStore& store() { return *store_; }

 private:
  std::shared_ptr<SegmentStore> store_;
  std::uint64_t entry_count_ = 0;
};

}  // namespace accountnet::storage
