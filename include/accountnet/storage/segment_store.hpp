// Append-only segment storage with CRC-framed records.
//
// The durability layer's contract is deliberately tiny: a SegmentStore holds
// an ordered sequence of opaque records split across segments, plus one small
// atomically-replaced metadata blob. storage/node_store.hpp layers the
// AccountNet journal schema (history entries, checkpoints, standing) on top.
//
// Two implementations:
//   * MemorySegmentStore — deterministic in-memory store. The harness hands
//     one to each simulated node so a crash fault can destroy the node's RAM
//     state while the "disk" survives; also the fixture for tests.
//   * FileSegmentStore — real files, one `segment-NNNNNN.log` per segment,
//     each record framed as [u32 length][u32 crc32(payload)][payload].
//     Writes go through POSIX fds with explicit fsync; the metadata blob is
//     replaced via write-temp-then-rename. On open, a torn or corrupt tail
//     frame in the *last* segment is truncated away (a crash mid-append);
//     corruption in any earlier segment is unrecoverable and throws.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "accountnet/util/bytes.hpp"

namespace accountnet::storage {

/// Thrown on unrecoverable store corruption or I/O failure.
class StoreError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// IEEE 802.3 CRC-32 (reflected, polynomial 0xEDB88320), the frame checksum.
std::uint32_t crc32(BytesView data);

class SegmentStore {
 public:
  virtual ~SegmentStore() = default;

  /// Appends one record to the active segment.
  virtual void append(BytesView record) = 0;
  /// Makes every append so far durable (no-op for the in-memory store).
  virtual void sync() = 0;
  /// Seals the active segment and starts a new one (records keep their
  /// global order across segments).
  virtual void rotate() = 0;
  /// Every record across every segment, oldest first, tail-repaired.
  virtual std::vector<Bytes> load_all() const = 0;
  virtual std::size_t segment_count() const = 0;
  /// Atomically replaces the metadata blob.
  virtual void put_meta(BytesView blob) = 0;
  virtual std::optional<Bytes> get_meta() const = 0;
};

/// Deterministic in-memory store: the harness's stand-in for a disk that
/// survives a node crash.
class MemorySegmentStore final : public SegmentStore {
 public:
  void append(BytesView record) override;
  void sync() override {}
  void rotate() override;
  std::vector<Bytes> load_all() const override;
  std::size_t segment_count() const override { return segments_.size(); }
  void put_meta(BytesView blob) override;
  std::optional<Bytes> get_meta() const override { return meta_; }

 private:
  std::vector<std::vector<Bytes>> segments_{1};
  std::optional<Bytes> meta_;
};

/// File-backed store rooted at a directory (created if absent).
class FileSegmentStore final : public SegmentStore {
 public:
  explicit FileSegmentStore(std::string dir);
  ~FileSegmentStore() override;

  FileSegmentStore(const FileSegmentStore&) = delete;
  FileSegmentStore& operator=(const FileSegmentStore&) = delete;

  void append(BytesView record) override;
  void sync() override;
  void rotate() override;
  std::vector<Bytes> load_all() const override;
  std::size_t segment_count() const override { return segment_indices_.size(); }
  void put_meta(BytesView blob) override;
  std::optional<Bytes> get_meta() const override;

  const std::string& dir() const { return dir_; }

 private:
  std::string segment_path(std::uint64_t index) const;
  void open_active(std::uint64_t index);

  std::string dir_;
  std::vector<std::uint64_t> segment_indices_;  ///< sorted segment numbers
  int active_fd_ = -1;
};

}  // namespace accountnet::storage
