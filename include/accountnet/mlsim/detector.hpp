// Synthetic stand-in for the cloud object-detection service of Sec. VI-B
// (the paper used Amazon Rekognition on a fixed 2010x1125 scene image).
//
// What matters for the Fig. 20 reproduction is the latency distribution of
// the inference stage — about 809 ms mean with a 191 ms standard deviation —
// and a deterministic input -> result mapping so witnesses and resolvers can
// compare digests. Detection content is pseudo-random but a pure function of
// the image bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "accountnet/sim/simulator.hpp"
#include "accountnet/util/bytes.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::mlsim {

struct Detection {
  std::string label;
  double confidence = 0.0;  ///< [0, 1]
  double x = 0.0, y = 0.0, w = 0.0, h = 0.0;  ///< normalized box
};

struct DetectionResult {
  std::vector<Detection> objects;

  Bytes encode() const;
  static DetectionResult decode(BytesView bytes);
};

struct DetectorConfig {
  sim::Duration latency_mean = sim::milliseconds(809);
  sim::Duration latency_stddev = sim::milliseconds(191);
  sim::Duration latency_min = sim::milliseconds(100);
  std::size_t max_objects = 8;
};

class ObjectDetectionService {
 public:
  using Config = DetectorConfig;

  explicit ObjectDetectionService(Config config = {}, std::uint64_t seed = 7);

  /// Deterministic detections for the given image bytes.
  DetectionResult detect(BytesView image) const;

  /// One sampled inference latency (the paper's 809 +- 191 ms).
  sim::Duration sample_latency();

  const Config& config() const { return config_; }

 private:
  Config config_;
  Rng latency_rng_;
};

/// Deterministic synthetic camera frame of roughly the byte size a
/// JPEG-compressed `width` x `height` scene would have.
Bytes synthetic_scene_image(std::size_t width, std::size_t height, std::uint64_t seed);

}  // namespace accountnet::mlsim
