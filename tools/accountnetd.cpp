// accountnetd — one AccountNet node as a real network daemon.
//
// Hosts an unmodified core::Node on the epoll transport (net::RealNetHost):
// the exact protocol object every simulation runs, now speaking framed TCP
// on a real socket. Demonstrates, end to end on loopback:
//
//   * joining a running network (--join) or seeding one (--seed)
//   * durable write-ahead journaling (--data-dir) via storage::NodeStore
//   * crash-restart recovery (--recover): reload the journal, re-announce
//     the latest checkpoint, catch up over real TCP
//   * accountability: an adversarial daemon (--adversary) is convicted by
//     its honest peers (watch "evicted" in the status file)
//   * clean shutdown on SIGTERM/SIGINT (graceful leave + metrics dump)
//
// Status is published as an atomically-replaced JSON file (--status-file) so
// scripts can poll verdicts without a control socket; --metrics-dump scrapes
// every metric as JSON lines on exit.
//
// Example (see scripts/daemon_demo.sh for the full multi-process scenario):
//   accountnetd --listen 127.0.0.1:9101 --seed --node-seed 1 &
//   accountnetd --listen 127.0.0.1:9102 --join 127.0.0.1:9101 --node-seed 2 &

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <algorithm>

#include "accountnet/core/node.hpp"
#include "accountnet/crypto/provider.hpp"
#include "accountnet/net/http.hpp"
#include "accountnet/net/real_host.hpp"
#include "accountnet/obs/exposition.hpp"
#include "accountnet/obs/sink.hpp"
#include "accountnet/obs/timeseries.hpp"
#include "accountnet/storage/node_store.hpp"
#include "accountnet/storage/segment_store.hpp"

namespace {

volatile std::sig_atomic_t g_signal = 0;
void on_signal(int sig) { g_signal = sig; }

struct Options {
  std::string listen = "127.0.0.1:0";
  std::string join;        // bootstrap address; empty with --seed or --recover
  bool seed = false;
  bool recover = false;
  bool adversary = false;
  std::string data_dir;    // enables durability + journaling
  std::string status_file;
  std::string metrics_dump;
  std::uint64_t node_seed = 1;
  long shuffle_ms = 1000;
  long run_for_s = 0;      // 0 = until signal
  long http_port = -1;     // -1 = exposition off (the default); 0 = ephemeral
  long scrape_interval_ms = 1000;
  std::size_t f = 10, L = 5;
  std::uint64_t checkpoint_interval = 8;
  std::size_t evict_threshold = 2;
  std::size_t witness_count = 4;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen H:P (--seed | --join H:P | --recover)\n"
               "  [--data-dir DIR] [--status-file F] [--metrics-dump F]\n"
               "  [--node-seed N] [--shuffle-ms N] [--run-for SECONDS]\n"
               "  [--f N] [--L N] [--checkpoint-interval N]\n"
               "  [--evict-threshold N] [--witness-count N] [--adversary]\n"
               "  [--http-port P] [--scrape-interval-ms N]\n",
               argv0);
  return 2;
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--seed") {
      o.seed = true;
    } else if (a == "--recover") {
      o.recover = true;
    } else if (a == "--adversary") {
      o.adversary = true;
    } else if (const char* v = nullptr; true) {
      if (a == "--listen" && (v = value())) o.listen = v;
      else if (a == "--join" && (v = value())) o.join = v;
      else if (a == "--data-dir" && (v = value())) o.data_dir = v;
      else if (a == "--status-file" && (v = value())) o.status_file = v;
      else if (a == "--metrics-dump" && (v = value())) o.metrics_dump = v;
      else if (a == "--node-seed" && (v = value())) o.node_seed = std::strtoull(v, nullptr, 10);
      else if (a == "--shuffle-ms" && (v = value())) o.shuffle_ms = std::strtol(v, nullptr, 10);
      else if (a == "--run-for" && (v = value())) o.run_for_s = std::strtol(v, nullptr, 10);
      else if (a == "--f" && (v = value())) o.f = std::strtoul(v, nullptr, 10);
      else if (a == "--L" && (v = value())) o.L = std::strtoul(v, nullptr, 10);
      else if (a == "--checkpoint-interval" && (v = value()))
        o.checkpoint_interval = std::strtoull(v, nullptr, 10);
      else if (a == "--evict-threshold" && (v = value()))
        o.evict_threshold = std::strtoul(v, nullptr, 10);
      else if (a == "--witness-count" && (v = value()))
        o.witness_count = std::strtoul(v, nullptr, 10);
      else if (a == "--http-port" && (v = value()))
        o.http_port = std::strtol(v, nullptr, 10);
      else if (a == "--scrape-interval-ms" && (v = value()))
        o.scrape_interval_ms = std::strtol(v, nullptr, 10);
      else return false;
    }
  }
  const int modes = int(o.seed) + int(!o.join.empty()) + int(o.recover);
  return modes == 1;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string json_list(const std::vector<std::string>& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + json_escape(v[i]) + "\"";
  }
  return out + "]";
}

/// One status object, shared by the --status-file and the /status endpoint.
/// `seq` increments with every housekeeping tick: a poller that sees it go
/// backwards knows the daemon restarted; one that sees it stall knows the
/// daemon is wedged (uptime_us gives the same signal in wall time).
std::string status_json(const accountnet::core::Node& node, std::int64_t uptime_us,
                        std::uint64_t seq) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"addr\":\"%s\",\"pid\":%ld,\"joined\":%s,\"round\":%llu,"
                "\"peers\":%zu,\"uptime_us\":%lld,\"seq\":%llu,",
                json_escape(node.id().addr).c_str(), static_cast<long>(::getpid()),
                node.joined() ? "true" : "false",
                static_cast<unsigned long long>(node.state().round()),
                node.state().peerset().size(), static_cast<long long>(uptime_us),
                static_cast<unsigned long long>(seq));
  return std::string(head) +
         "\"quarantined\":" + json_list(node.quarantined_addrs()) +
         ",\"evicted\":" + json_list(node.evicted_addrs()) + "}";
}

/// Atomic replace: scripts polling the file never see a torn write.
void write_status(const Options& o, const accountnet::core::Node& node,
                  std::int64_t uptime_us, std::uint64_t seq) {
  if (o.status_file.empty()) return;
  const std::string tmp = o.status_file + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return;
  std::fprintf(f, "%s\n", status_json(node, uptime_us, seq).c_str());
  std::fclose(f);
  std::rename(tmp.c_str(), o.status_file.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace accountnet;

  Options opt;
  if (!parse(argc, argv, opt)) return usage(argv[0]);

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::signal(SIGPIPE, SIG_IGN);  // belt and braces; all sends use MSG_NOSIGNAL

  net::TransportConfig transport;
  if (!net::parse_addr(opt.listen, transport.host, transport.port)) {
    // parse_addr rejects port 0, but "--listen host:0" (ephemeral) is legal
    // for a daemon.
    const auto colon = opt.listen.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        opt.listen.substr(colon + 1) != "0") {
      return usage(argv[0]);
    }
    transport.host = opt.listen.substr(0, colon);
    transport.port = 0;
  }

  net::EventLoop loop;
  if (!loop.valid()) {
    std::fprintf(stderr, "accountnetd: epoll unavailable\n");
    return 1;
  }
  obs::MetricsRegistry transport_metrics;
  net::RealNetHost host(loop, transport, transport_metrics, opt.node_seed);
  if (!host.ok()) {
    std::fprintf(stderr, "accountnetd: cannot listen on %s\n", opt.listen.c_str());
    return 1;
  }
  std::fprintf(stderr, "accountnetd: listening on %s\n", host.self_addr().c_str());

  // Identity: 32 key-seed bytes derived from --node-seed. Real crypto — the
  // daemons sign, prove and verify exactly as the paper's testbed nodes do.
  const auto crypto_provider = crypto::make_real_crypto();
  std::uint64_t sm = opt.node_seed;
  Bytes seed32(32);
  for (std::size_t i = 0; i < 32; i += 8) {
    const std::uint64_t w = splitmix64(sm);
    std::memcpy(seed32.data() + i, &w, 8);
  }

  std::shared_ptr<storage::SegmentStore> segments;
  std::unique_ptr<storage::NodeStore> journal;
  if (!opt.data_dir.empty()) {
    segments = std::make_shared<storage::FileSegmentStore>(opt.data_dir);
    journal = std::make_unique<storage::NodeStore>(segments);
  }

  core::Node::Config config;
  config.protocol.max_peerset = opt.f;
  config.protocol.shuffle_length = opt.L;
  config.protocol.checkpoint_interval = journal ? opt.checkpoint_interval : 0;
  config.shuffle_period = sim::milliseconds(opt.shuffle_ms);
  config.witness_count = opt.witness_count;
  config.accountability.enabled = true;
  config.accountability.evict_threshold = opt.evict_threshold;
  if (journal) {
    config.durability.enabled = true;
    config.durability.journal = journal.get();
  }
  if (opt.adversary) config.adversary.bias_sample = true;

  core::Node& node =
      host.make_node(*crypto_provider, seed32, std::move(config), opt.node_seed);

  if (opt.recover) {
    if (!journal) {
      std::fprintf(stderr, "accountnetd: --recover requires --data-dir\n");
      return 2;
    }
    const core::RecoveredNode rec = journal->load();
    node.start_recovered(rec);
    std::fprintf(stderr, "accountnetd: recovered %zu journaled entries\n",
                 rec.entries.size());
  } else if (opt.seed) {
    node.start_as_seed();
  } else {
    node.start_join(opt.join);
  }
  host.pump();

  // Telemetry plane (opt-in): a time-series scraper over both registries and
  // an HTTP/1.0 exposition server on the same event loop.
  const std::int64_t started = loop.now_us();
  std::uint64_t status_seq = 0;
  obs::TimeSeriesScraper scraper;
  scraper.add_source(&node.metrics());
  scraper.add_source(&transport_metrics);
  // Function-scope like `tick` below: the recurring timer captures this
  // std::function by reference, so it must outlive loop.run().
  std::function<void()> scrape_tick;
  std::unique_ptr<net::HttpServer> http;
  if (opt.http_port >= 0) {
    net::HttpServerConfig http_config;
    http_config.port = static_cast<std::uint16_t>(opt.http_port);
    http = std::make_unique<net::HttpServer>(loop, http_config);
    if (!http->listening()) {
      std::fprintf(stderr, "accountnetd: cannot serve http on port %ld\n",
                   opt.http_port);
      return 1;
    }
    std::fprintf(stderr, "accountnetd: http on 127.0.0.1:%u\n", http->port());
    http->set_handler([&](const net::HttpRequest& req) {
      net::HttpResponse r;
      if (req.target == "/metrics") {
        auto samples = node.metrics().snapshot();
        auto transport_samples = transport_metrics.snapshot();
        samples.insert(samples.end(),
                       std::make_move_iterator(transport_samples.begin()),
                       std::make_move_iterator(transport_samples.end()));
        std::stable_sort(samples.begin(), samples.end(),
                         [](const obs::MetricSample& a, const obs::MetricSample& b) {
                           return a.name < b.name;
                         });
        r.content_type = "text/plain; version=0.0.4; charset=utf-8";
        r.body = obs::prometheus_text(samples);
      } else if (req.target == "/healthz") {
        if (node.joined()) {
          r.body = "ok\n";
        } else {
          r.status = 503;
          r.body = "not joined\n";
        }
      } else if (req.target == "/timeseries") {
        r.content_type = "application/json";
        r.body = scraper.to_json_array();
      } else if (req.target == "/status") {
        r.content_type = "application/json";
        r.body = status_json(node, loop.now_us() - started, status_seq) + "\n";
      } else {
        r.status = 404;
        r.body = "not found\n";
      }
      return r;
    });
    // The scrape cadence is the exposition server's, not the protocol's:
    // only armed when the telemetry plane is on.
    const std::int64_t interval_us =
        std::max<long>(opt.scrape_interval_ms, 10) * 1000;
    scrape_tick = [&scraper, &loop, interval_us, &scrape_tick] {
      scraper.sample(loop.now_us());
      loop.schedule_after(interval_us, scrape_tick);
    };
    loop.schedule_after(0, scrape_tick);
  }

  // Housekeeping tick: pump virtual time (cheap; pump() is also driven by
  // traffic and timer wakeups), publish status, honor signals and --run-for.
  bool shutting_down = false;
  std::function<void()> tick = [&] {
    host.pump();
    ++status_seq;
    write_status(opt, node, loop.now_us() - started, status_seq);
    const bool expired =
        opt.run_for_s > 0 && loop.now_us() - started >= opt.run_for_s * 1000000LL;
    if ((g_signal != 0 || expired) && !shutting_down) {
      shutting_down = true;
      std::fprintf(stderr, "accountnetd: %s, leaving gracefully\n",
                   g_signal != 0 ? "signal" : "run time over");
      node.stop_gracefully();
      host.pump();
      // Give the leave notices and any queued frames a moment to flush.
      loop.schedule_after(300000, [&] { loop.stop(); });
      return;
    }
    if (!shutting_down) loop.schedule_after(100000, tick);
  };
  loop.schedule_after(0, tick);
  loop.run();

  write_status(opt, node, loop.now_us() - started, ++status_seq);
  if (!opt.metrics_dump.empty()) {
    obs::JsonLinesSink sink(opt.metrics_dump);
    node.metrics().scrape_to(sink, host.simulator().now());
    transport_metrics.scrape_to(sink, loop.now_us());
    sink.flush();
  }
  host.shutdown();
  std::fprintf(stderr, "accountnetd: bye\n");
  return 0;
}
