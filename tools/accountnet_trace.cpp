// accountnet-trace — offline span-dump analysis.
//
// Loads a span JSONL dump (obs::write_spans_jsonl, e.g. from byz_soak
// --trace), groups spans into traces, and prints per-operation latency
// breakdowns with critical paths:
//
//   accountnet-trace spans.jsonl                 # per-operation summary
//   accountnet-trace spans.jsonl --top 3         # + slowest traces per op
//   accountnet-trace spans.jsonl --trace <16hex> # one trace's full timeline
//   accountnet-trace spans.jsonl --perfetto out.json   # Perfetto export
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "accountnet/obs/span.hpp"

using namespace accountnet;

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

std::int64_t finish_of(const obs::Span& s) {
  return s.open() ? s.start_us : s.end_us;
}

void print_critical_path(const obs::TraceTree& t) {
  const auto path = obs::critical_path(t);
  std::int64_t prev = t.root != nullptr ? t.root->start_us : 0;
  for (const auto* s : path) {
    const std::int64_t own = finish_of(*s) - s->start_us;
    std::printf("    +%8" PRId64 " us  %-22s %-10s (%" PRId64 " us%s)\n",
                s->start_us - prev, s->name.c_str(), s->node.c_str(), own,
                s->open() ? ", open" : "");
    prev = s->start_us;
  }
}

void print_tree(const obs::TraceTree& t) {
  // Children by parent id, in start order (build_traces already sorted).
  std::map<std::uint64_t, std::vector<const obs::Span*>> children;
  for (const auto* s : t.spans) {
    if (s != t.root) children[s->parent_span].push_back(s);
  }
  const auto recurse = [&](const auto& self, const obs::Span* s, int depth) -> void {
    std::string attrs;
    for (const auto& a : s->attrs) attrs += " " + a.key + "=" + a.value;
    std::printf("  %8" PRId64 " us %*s%s [%s] %" PRId64 " us%s%s\n", s->start_us,
                2 * depth, "", s->name.c_str(), s->node.c_str(),
                finish_of(*s) - s->start_us, s->open() ? " (open)" : "",
                attrs.c_str());
    const auto it = children.find(s->span_id);
    if (it == children.end()) return;
    for (const auto* c : it->second) self(self, c, depth + 1);
  };
  if (t.root != nullptr) recurse(recurse, t.root, 0);
  // Orphaned subtrees (parent span fell out of the dump window).
  for (const auto& [parent, kids] : children) {
    if (parent == 0 || t.root == nullptr || parent == t.root->span_id) continue;
    const bool known = std::any_of(t.spans.begin(), t.spans.end(),
                                   [&](const obs::Span* s) { return s->span_id == parent; });
    if (known) continue;
    for (const auto* c : kids) recurse(recurse, c, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string perfetto_out;
  std::string only_op;
  std::uint64_t only_trace = 0;
  std::size_t top = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--perfetto" && i + 1 < argc) {
      perfetto_out = argv[++i];
    } else if (a == "--op" && i + 1 < argc) {
      only_op = argv[++i];
    } else if (a == "--trace" && i + 1 < argc) {
      only_trace = std::strtoull(argv[++i], nullptr, 16);
    } else if (a == "--top" && i + 1 < argc) {
      top = std::strtoull(argv[++i], nullptr, 10);
    } else if (path.empty() && a[0] != '-') {
      path = a;
    } else {
      std::printf("usage: accountnet-trace <spans.jsonl> [--op NAME] "
                  "[--trace HEX16] [--top N] [--perfetto OUT.json]\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::printf("accountnet-trace: no input file\n");
    return 2;
  }

  const auto spans = obs::load_spans_jsonl(path);
  if (spans.empty()) {
    std::printf("accountnet-trace: no spans in %s\n", path.c_str());
    return 1;
  }
  const auto traces = obs::build_traces(spans);
  std::printf("%zu spans, %zu traces from %s\n\n", spans.size(), traces.size(),
              path.c_str());

  if (!perfetto_out.empty()) {
    obs::PerfettoSink sink(perfetto_out);
    sink.add_all(spans);
    sink.flush();
    std::printf("wrote Perfetto trace to %s (load via ui.perfetto.dev or "
                "chrome://tracing)\n\n", perfetto_out.c_str());
  }

  if (only_trace != 0) {
    for (const auto& t : traces) {
      if (t.trace_id != only_trace) continue;
      std::printf("trace %s: %zu spans, %" PRId64 " us\n", hex16(t.trace_id).c_str(),
                  t.spans.size(), t.duration_us());
      print_tree(t);
      std::printf("  critical path:\n");
      print_critical_path(t);
      return 0;
    }
    std::printf("trace %s not found\n", hex16(only_trace).c_str());
    return 1;
  }

  // Per-operation summary, keyed by the root span's name.
  struct OpStats {
    std::vector<const obs::TraceTree*> traces;
    std::int64_t total_us = 0;
    std::map<std::string, std::pair<std::uint64_t, std::int64_t>> leg_us;
  };
  std::map<std::string, OpStats> ops;
  for (const auto& t : traces) {
    if (t.root == nullptr) continue;
    if (!only_op.empty() && t.root->name != only_op) continue;
    auto& op = ops[t.root->name];
    op.traces.push_back(&t);
    op.total_us += t.duration_us();
    // Latency breakdown: attribute each segment of the critical path to the
    // span it starts in (its self time until the next critical span begins).
    const auto path = obs::critical_path(t);
    for (std::size_t i = 0; i < path.size(); ++i) {
      const std::int64_t until =
          i + 1 < path.size() ? path[i + 1]->start_us : finish_of(*path[i]);
      auto& leg = op.leg_us[path[i]->name];
      ++leg.first;
      leg.second += std::max<std::int64_t>(0, until - path[i]->start_us);
    }
  }

  for (const auto& [name, op] : ops) {
    std::int64_t worst = 0;
    const obs::TraceTree* worst_trace = nullptr;
    for (const auto* t : op.traces) {
      if (t->duration_us() >= worst) {
        worst = t->duration_us();
        worst_trace = t;
      }
    }
    std::printf("%-12s %6zu traces  mean %8" PRId64 " us  max %8" PRId64
                " us  (worst: %s)\n",
                name.c_str(), op.traces.size(),
                op.total_us / static_cast<std::int64_t>(op.traces.size()), worst,
                worst_trace != nullptr ? hex16(worst_trace->trace_id).c_str() : "-");
    std::printf("  latency breakdown (critical-path self time):\n");
    for (const auto& [leg, agg] : op.leg_us) {
      std::printf("    %-24s %6" PRIu64 "x  mean %8" PRId64 " us\n", leg.c_str(),
                  agg.first, agg.second / static_cast<std::int64_t>(agg.first));
    }
    if (worst_trace != nullptr) {
      std::printf("  critical path of worst %s:\n", name.c_str());
      print_critical_path(*worst_trace);
    }
    if (top > 0) {
      std::vector<const obs::TraceTree*> sorted = op.traces;
      std::sort(sorted.begin(), sorted.end(),
                [](const obs::TraceTree* a, const obs::TraceTree* b) {
                  return a->duration_us() > b->duration_us();
                });
      sorted.resize(std::min(top, sorted.size()));
      for (const auto* t : sorted) {
        std::printf("  %s  %8" PRId64 " us  %zu spans\n", hex16(t->trace_id).c_str(),
                    t->duration_us(), t->spans.size());
      }
    }
    std::printf("\n");
  }
  return 0;
}
