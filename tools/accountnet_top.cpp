// accountnet-top — cluster roll-up over accountnetd telemetry endpoints.
//
//   accountnet-top --node H:P [--node H:P ...] [--once] [--interval-s N]
//   accountnet-top --validate H:P       # GET /metrics, strict-validate it
//   accountnet-top --validate-stream    # validate exposition text on stdin
//   accountnet-top --health H:P         # exit 0 iff /healthz answers 200
//
// Each poll hits every daemon's /status and /timeseries (the HTTP plane
// enabled by accountnetd --http-port) and renders one row per node:
// standing, peers, round, windowed shuffle/reconnect rates, verify-cache
// hit ratio, how many peers the node has quarantined, and how many OTHER
// nodes have evicted it (the cluster's verdict on an adversary).
//
// The /status "seq" field orders polls: a seq that goes backwards means the
// daemon restarted; one that stands still means the poll is stale (a wedged
// or freshly killed daemon whose socket still answered). Unreachable nodes
// render as DOWN rather than vanishing.
//
// Exit codes: 0 ok; 1 validation/health failure or every node down; 2 usage.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "accountnet/net/http.hpp"
#include "accountnet/obs/exposition.hpp"
#include "accountnet/util/json.hpp"

namespace {

using accountnet::net::http_get;
using accountnet::net::HttpGetResult;
using accountnet::util::json_parse;
using accountnet::util::JsonValue;

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

bool parse_endpoint(const std::string& s, Endpoint& out) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out.host = s.substr(0, colon);
  const long p = std::strtol(s.c_str() + colon + 1, nullptr, 10);
  if (p <= 0 || p > 65535) return false;
  out.port = static_cast<std::uint16_t>(p);
  return true;
}

struct NodeView {
  std::string endpoint;
  bool reachable = false;
  std::string addr;      // protocol address from /status
  bool joined = false;
  double round = 0;
  double peers = 0;
  double seq = 0;
  double uptime_us = 0;
  std::vector<std::string> quarantined;
  std::vector<std::string> evicted;
  // Windowed rates from the last /timeseries point.
  double shuffle_rate = 0;
  double reconnect_rate = 0;
  double cache_hit = 0, cache_miss = 0;
  bool have_rates = false;
};

std::vector<std::string> string_list(const JsonValue* v) {
  std::vector<std::string> out;
  if (v == nullptr || !v->is_array()) return out;
  for (const JsonValue& e : v->as_array()) {
    if (e.is_string()) out.push_back(e.as_string());
  }
  return out;
}

NodeView poll_node(const Endpoint& ep) {
  NodeView view;
  view.endpoint = ep.host + ":" + std::to_string(ep.port);
  const HttpGetResult status = http_get(ep.host, ep.port, "/status");
  if (!status.ok || status.status != 200) return view;
  const auto doc = json_parse(status.body);
  if (!doc || !doc->is_object()) return view;
  view.reachable = true;
  view.addr = doc->get_string("addr");
  const JsonValue* joined = doc->get("joined");
  view.joined = joined != nullptr && joined->is_bool() && joined->as_bool();
  view.round = doc->get_number("round");
  view.peers = doc->get_number("peers");
  view.seq = doc->get_number("seq");
  view.uptime_us = doc->get_number("uptime_us");
  view.quarantined = string_list(doc->get("quarantined"));
  view.evicted = string_list(doc->get("evicted"));

  const HttpGetResult series = http_get(ep.host, ep.port, "/timeseries");
  if (!series.ok || series.status != 200) return view;
  const auto ts = json_parse(series.body);
  if (!ts || !ts->is_array() || ts->as_array().empty()) return view;
  const JsonValue& last = ts->as_array().back();
  const JsonValue* cells = last.get("series");
  if (cells == nullptr || !cells->is_object()) return view;
  const auto rate = [&](const char* name) {
    const JsonValue* c = cells->get(name);
    return c != nullptr ? c->get_number("rate") : 0.0;
  };
  const auto total = [&](const char* name) {
    const JsonValue* c = cells->get(name);
    return c != nullptr ? c->get_number("total") : 0.0;
  };
  view.shuffle_rate = rate("node.shuffles_completed");
  view.reconnect_rate = rate("net.conn.reconnects");
  view.cache_hit = total("verify.cache.hit");
  view.cache_miss = total("verify.cache.miss");
  view.have_rates = true;
  return view;
}

/// One rendered table; returns the number of reachable nodes.
std::size_t render(const std::vector<NodeView>& views,
                   std::map<std::string, double>& last_seq) {
  std::size_t reachable = 0;
  std::printf("%-22s %-12s %5s %7s %8s %8s %7s %5s %6s\n", "NODE", "STATE",
              "PEERS", "ROUND", "SHUF/S", "RECON/S", "VCACHE", "QUAR", "EVBY");
  for (const NodeView& v : views) {
    if (!v.reachable) {
      std::printf("%-22s %-12s %5s %7s %8s %8s %7s %5s %6s\n",
                  v.endpoint.c_str(), "DOWN", "-", "-", "-", "-", "-", "-", "-");
      continue;
    }
    ++reachable;
    // Standing: restarted/stale trump joined/joining (seq is the witness).
    std::string state = v.joined ? "joined" : "joining";
    const auto it = last_seq.find(v.endpoint);
    if (it != last_seq.end()) {
      if (v.seq < it->second) state = "restarted";
      else if (v.seq == it->second) state = "stale";
    }
    last_seq[v.endpoint] = v.seq;
    // The cluster's verdict on this node: how many peers evicted its addr.
    std::size_t evicted_by = 0;
    for (const NodeView& other : views) {
      if (&other == &v || !other.reachable) continue;
      for (const std::string& addr : other.evicted) {
        if (addr == v.addr) {
          ++evicted_by;
          break;
        }
      }
    }
    if (evicted_by > 0) state += "*";  // flagged by the rest of the cluster
    const double lookups = v.cache_hit + v.cache_miss;
    char vcache[16];
    if (v.have_rates && lookups > 0) {
      std::snprintf(vcache, sizeof(vcache), "%5.1f%%",
                    100.0 * v.cache_hit / lookups);
    } else {
      std::snprintf(vcache, sizeof(vcache), "%s", "-");
    }
    std::printf("%-22s %-12s %5.0f %7.0f %8.2f %8.2f %7s %5zu %6zu\n",
                v.endpoint.c_str(), state.c_str(), v.peers, v.round,
                v.shuffle_rate, v.reconnect_rate, vcache, v.quarantined.size(),
                evicted_by);
  }
  return reachable;
}

int validate_body(const std::string& body, const char* origin) {
  const auto v = accountnet::obs::validate_prometheus_text(body);
  if (!v.ok) {
    std::fprintf(stderr, "accountnet-top: INVALID exposition from %s: %s\n",
                 origin, v.error.c_str());
    return 1;
  }
  std::printf("accountnet-top: valid exposition from %s (%zu families, %zu samples)\n",
              origin, v.families, v.samples);
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: accountnet-top --node H:P [--node H:P ...] [--once]"
               " [--interval-s N]\n"
               "       accountnet-top --validate H:P | --validate-stream |"
               " --health H:P\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<Endpoint> nodes;
  bool once = false;
  long interval_s = 2;
  std::string validate_target, health_target;
  bool validate_stream = false;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--once") {
      once = true;
    } else if (a == "--validate-stream") {
      validate_stream = true;
    } else if (a == "--node") {
      const char* v = value();
      Endpoint ep;
      if (v == nullptr || !parse_endpoint(v, ep)) return usage();
      nodes.push_back(ep);
    } else if (a == "--interval-s") {
      const char* v = value();
      if (v == nullptr) return usage();
      interval_s = std::strtol(v, nullptr, 10);
      if (interval_s <= 0) interval_s = 1;
    } else if (a == "--validate") {
      const char* v = value();
      if (v == nullptr) return usage();
      validate_target = v;
    } else if (a == "--health") {
      const char* v = value();
      if (v == nullptr) return usage();
      health_target = v;
    } else {
      return usage();
    }
  }

  if (validate_stream) {
    std::string body;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), stdin)) > 0) body.append(buf, n);
    return validate_body(body, "stdin");
  }
  if (!validate_target.empty()) {
    Endpoint ep;
    if (!parse_endpoint(validate_target, ep)) return usage();
    const HttpGetResult r = http_get(ep.host, ep.port, "/metrics");
    if (!r.ok || r.status != 200) {
      std::fprintf(stderr, "accountnet-top: cannot fetch /metrics from %s: %s\n",
                   validate_target.c_str(),
                   r.ok ? ("status " + std::to_string(r.status)).c_str()
                        : r.error.c_str());
      return 1;
    }
    return validate_body(r.body, validate_target.c_str());
  }
  if (!health_target.empty()) {
    Endpoint ep;
    if (!parse_endpoint(health_target, ep)) return usage();
    const HttpGetResult r = http_get(ep.host, ep.port, "/healthz");
    if (!r.ok) {
      std::printf("%s unreachable (%s)\n", health_target.c_str(), r.error.c_str());
      return 1;
    }
    std::printf("%s %s\n", health_target.c_str(),
                r.status == 200 ? "healthy" : "unhealthy");
    return r.status == 200 ? 0 : 1;
  }

  if (nodes.empty()) return usage();
  std::map<std::string, double> last_seq;
  for (;;) {
    std::vector<NodeView> views;
    views.reserve(nodes.size());
    for (const Endpoint& ep : nodes) views.push_back(poll_node(ep));
    const std::size_t reachable = render(views, last_seq);
    if (once) return reachable > 0 ? 0 : 1;
    std::fflush(stdout);
    ::sleep(static_cast<unsigned>(interval_s));
    std::printf("\n");
  }
}
