// accountnet-sim — command-line experiment driver.
//
// Runs a configurable AccountNet simulation and prints periodic metrics,
// exposing the harness without writing C++. Examples:
//
//   accountnet-sim --nodes 1000 --f 5 --d 2 --rounds 150
//   accountnet-sim --nodes 2000 --f 10 --d 3 --pm 0.1 --rounds 200 --csv
//   accountnet-sim --nodes 500 --churn 50 --churn-round 80 --rounds 160
//   accountnet-sim --nodes 300 --pm 0.2 --separate --rounds 120
#include <cstdio>
#include <cstring>
#include <string>

#include "accountnet/analysis/bounds.hpp"
#include "accountnet/harness/network_sim.hpp"
#include "accountnet/util/table.hpp"

using namespace accountnet;

namespace {

struct Options {
  harness::ExperimentConfig config;
  std::size_t rounds = 150;
  std::size_t churn = 0;
  std::size_t churn_round = 0;
  std::size_t report_every = 10;
  bool csv = false;
  bool help = false;
};

void print_usage() {
  std::printf(
      "accountnet-sim: run an AccountNet overlay simulation\n\n"
      "  --nodes N        network size |V| (default 1000)\n"
      "  --f N            max peerset size (default 5)\n"
      "  --l N            shuffle length L (default ceil(f/2))\n"
      "  --d N            neighborhood depth limit (default 2)\n"
      "  --pm X           malicious probability, e.g. 0.1 (default 0)\n"
      "  --separate       malicious nodes form their own overlay\n"
      "  --rounds N       analysis rounds to run (default 150)\n"
      "  --churn N        N nodes leave ungracefully (default 0)\n"
      "  --churn-round R  churn start round (default: after launch)\n"
      "  --every N        report every N rounds (default 10)\n"
      "  --verify X       fraction of shuffles fully verified (default 0.05)\n"
      "  --real-crypto    Ed25519+ECVRF instead of the fast backend\n"
      "  --seed N         experiment seed (default 1)\n"
      "  --csv            machine-readable CSV instead of a table\n");
}

bool parse(int argc, char** argv, Options& opt) {
  bool l_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--nodes") {
      opt.config.network_size = std::strtoull(next(), nullptr, 10);
    } else if (a == "--f") {
      opt.config.f = std::strtoull(next(), nullptr, 10);
    } else if (a == "--l") {
      opt.config.l = std::strtoull(next(), nullptr, 10);
      l_given = true;
    } else if (a == "--d") {
      opt.config.d = std::strtoull(next(), nullptr, 10);
    } else if (a == "--pm") {
      opt.config.pm = std::strtod(next(), nullptr);
    } else if (a == "--separate") {
      opt.config.malicious_mode = harness::MaliciousMode::kSeparateOverlay;
    } else if (a == "--rounds") {
      opt.rounds = std::strtoull(next(), nullptr, 10);
    } else if (a == "--churn") {
      opt.churn = std::strtoull(next(), nullptr, 10);
    } else if (a == "--churn-round") {
      opt.churn_round = std::strtoull(next(), nullptr, 10);
    } else if (a == "--every") {
      opt.report_every = std::strtoull(next(), nullptr, 10);
    } else if (a == "--verify") {
      opt.config.verify_fraction = std::strtod(next(), nullptr);
    } else if (a == "--real-crypto") {
      opt.config.use_real_crypto = true;
    } else if (a == "--seed") {
      opt.config.seed = std::strtoull(next(), nullptr, 10);
    } else if (a == "--csv") {
      opt.csv = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a.c_str());
      return false;
    }
  }
  if (!l_given) opt.config.l = (opt.config.f + 1) / 2;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    print_usage();
    return 2;
  }
  if (opt.help) {
    print_usage();
    return 0;
  }

  const auto& c = opt.config;
  if (!opt.csv) {
    std::printf("AccountNet simulation: |V|=%zu f=%zu L=%zu d=%zu pm=%.2f seed=%llu\n",
                c.network_size, c.f, c.l, c.d, c.pm,
                static_cast<unsigned long long>(c.seed));
    std::printf("analysis: E[|N^d|]=%.2f  E[common]=%.2f  Theorem-1 p_m < %.3f\n\n",
                analysis::expected_neighborhood_size(c.network_size, c.f, c.d),
                analysis::expected_common_nodes(
                    c.network_size,
                    analysis::expected_neighborhood_size(c.network_size, c.f, c.d),
                    analysis::expected_neighborhood_size(c.network_size, c.f, c.d)),
                analysis::pm_bound_average(
                    c.network_size,
                    analysis::expected_neighborhood_size(c.network_size, c.f, c.d)));
  }

  harness::NetworkSim sim(opt.config);
  if (opt.churn > 0) {
    const std::size_t start_round = opt.churn_round > 0
                                        ? opt.churn_round
                                        : opt.rounds > 40 ? opt.rounds / 2 : 1;
    sim.schedule_churn(opt.churn,
                       static_cast<sim::TimePoint>(start_round) *
                           opt.config.analysis_period,
                       sim::seconds(100));
  }

  Table table({"round", "alive", "malicious", "shuffles/s", "avg |N^d|",
               "avg common", "P(neighbor bad)"});
  if (opt.csv) {
    std::printf("round,alive,malicious,shuffles_per_s,avg_nbh,avg_common,p_neighbor_bad\n");
  }
  Rng rng(opt.config.seed ^ 0xabcdef);
  sim.run(opt.rounds, [&](std::size_t round) {
    const auto delta = sim.take_shuffle_delta();
    if (round % opt.report_every != 0 && round != opt.rounds) return;
    const double rate = static_cast<double>(delta) /
                        sim::to_seconds(opt.config.analysis_period);
    double nbh = 0, common = 0, pbad = 0;
    if (sim.joined_count() > 1) {
      nbh = sim.sample_avg_neighborhood(c.d, 100, rng);
      common = sim.sample_avg_common(c.d, 60, rng);
      if (c.pm > 0) {
        const auto s = sim.sample_neighbor_malicious_fraction(c.d, 100, rng);
        pbad = s.mean();
      }
    }
    if (opt.csv) {
      std::printf("%zu,%zu,%zu,%.2f,%.2f,%.2f,%.4f\n", round, sim.alive_count(),
                  sim.malicious_alive_count(), rate, nbh, common, pbad);
    } else {
      table.add_row({std::to_string(round), std::to_string(sim.alive_count()),
                     std::to_string(sim.malicious_alive_count()), Table::num(rate),
                     Table::num(nbh), Table::num(common), Table::num(pbad, 4)});
    }
  });
  if (!opt.csv) {
    std::printf("%s\nfinal: %llu shuffles, %llu verified, %llu verification "
                "failures, %llu leave reports\n",
                table.to_string().c_str(),
                static_cast<unsigned long long>(sim.stats().shuffles_completed),
                static_cast<unsigned long long>(sim.stats().shuffles_verified),
                static_cast<unsigned long long>(sim.stats().verification_failures),
                static_cast<unsigned long long>(sim.stats().leave_reports));
  }
  return sim.stats().verification_failures == 0 ? 0 : 1;
}
