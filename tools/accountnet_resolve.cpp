// accountnet-resolve — end-to-end dispute walkthrough from the shell.
//
// Spins up a simulated network, pushes one payload through a witnessed
// channel, then lets you choose who lies and watches the resolver work:
//
//   accountnet-resolve                       # consumer lies (default)
//   accountnet-resolve --liar producer
//   accountnet-resolve --liar none
//   accountnet-resolve --bad-witnesses 2     # colluding witnesses too
#include <cstdio>
#include <cstring>
#include <string>

#include "accountnet/core/resolver.hpp"
#include "accountnet/util/rng.hpp"

using namespace accountnet;

int main(int argc, char** argv) {
  std::string liar = "consumer";
  std::size_t bad_witnesses = 0;
  std::uint64_t seed = 11;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--liar" && i + 1 < argc) {
      liar = argv[++i];
    } else if (a == "--bad-witnesses" && i + 1 < argc) {
      bad_witnesses = std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::printf("usage: accountnet-resolve [--liar producer|consumer|none] "
                  "[--bad-witnesses N] [--seed N]\n");
      return 2;
    }
  }

  // Build and settle a 40-node overlay.
  sim::Simulator simulator;
  sim::SimNetwork net(simulator, sim::netem_latency(), seed);
  const auto provider = crypto::make_fast_crypto();
  core::Node::Config config;
  config.protocol.max_peerset = 3;
  config.protocol.shuffle_length = 2;
  config.shuffle_period = sim::seconds(2);
  config.witness_count = 5;
  config.majority_opt = true;
  config.depth = 2;

  std::vector<std::unique_ptr<core::Node>> nodes;
  for (std::size_t i = 0; i < 40; ++i) {
    Bytes node_seed(32);
    Rng rng(seed * 100 + i);
    for (auto& b : node_seed) b = static_cast<std::uint8_t>(rng.next_u64());
    nodes.push_back(std::make_unique<core::Node>(net, "n" + std::to_string(100 + i),
                                                 *provider, node_seed, config,
                                                 rng.next_u64()));
  }
  nodes[0]->start_as_seed();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    simulator.schedule(sim::milliseconds(static_cast<std::int64_t>(40 * i)),
                       [&, i] { nodes[i]->start_join(nodes[i - 1]->id().addr); });
  }
  simulator.run_until(sim::seconds(60));
  std::printf("overlay settled: 40 nodes shuffling verifiably\n");

  core::Node& producer = *nodes[2];
  core::Node& consumer = *nodes[30];
  std::uint64_t channel = 0;
  producer.open_channel(consumer.id().addr,
                        [&](std::uint64_t id, bool ok) { channel = ok ? id : 0; });
  simulator.run_until(simulator.now() + sim::seconds(15));
  if (channel == 0) {
    std::printf("channel setup failed\n");
    return 1;
  }
  auto witnesses = *producer.channel_witnesses(channel);
  std::printf("witness group (%zu):", witnesses.size());
  for (const auto& w : witnesses) std::printf(" %s", w.addr.c_str());
  std::printf("\n");

  // Optionally corrupt some witnesses BEFORE the transfer.
  std::size_t corrupted = 0;
  for (auto& n : nodes) {
    if (corrupted >= bad_witnesses) break;
    for (const auto& w : witnesses) {
      if (n->id().addr == w.addr) {
        n->behavior().lie_in_testimony = true;
        std::printf("witness %s will fabricate testimony\n", w.addr.c_str());
        ++corrupted;
        break;
      }
    }
  }

  const Bytes truth = bytes_of("inference-result: pedestrian at 4.2m, 0.97");
  producer.send_data(channel, truth);
  simulator.run_until(simulator.now() + sim::seconds(5));
  std::printf("payload transferred through the witnesses\n\n");

  // Claims.
  const Bytes fabricated = bytes_of("we-never-said-that");
  core::Claim producer_claim{producer.id(), core::digest_of(truth)};
  core::Claim consumer_claim{consumer.id(), core::digest_of(truth)};
  if (liar == "producer") {
    producer_claim.digest = core::digest_of(fabricated);
    std::printf("the PRODUCER now claims it sent something else\n");
  } else if (liar == "consumer") {
    consumer_claim.digest = core::digest_of(fabricated);
    std::printf("the CONSUMER now claims it received something else\n");
  } else {
    std::printf("both parties tell the truth\n");
  }

  // Third-party resolution over the wire.
  core::DisputeResolver resolver(*nodes[35], *provider);
  core::DisputeResolver::Request req;
  req.channel_id = channel;
  req.sequence = 1;
  req.witnesses = witnesses;
  req.producer_claim = producer_claim;
  req.consumer_claim = consumer_claim;
  std::optional<core::DisputeResolver::Outcome> outcome;
  resolver.resolve(req, [&](core::DisputeResolver::Outcome o) { outcome = std::move(o); });
  simulator.run_until(simulator.now() + sim::seconds(10));
  if (!outcome) {
    std::printf("resolution never completed\n");
    return 1;
  }
  const char* verdicts[] = {"claims agree", "PRODUCER dishonest", "CONSUMER dishonest",
                            "both dishonest", "inconclusive"};
  std::printf("\n%zu/%zu witnesses testified; verdict: %s "
              "(majority %zu, invalid testimonies %zu)\n",
              outcome->responded, witnesses.size(),
              verdicts[static_cast<int>(outcome->resolution.verdict)],
              outcome->resolution.majority_count,
              outcome->resolution.invalid_testimonies);
  return 0;
}
