// benchdiff — the bench-regression gate.
//
//   benchdiff <baseline.json> <candidate.json> [--tolerances <file>] [--quiet]
//
// Both inputs are BENCH_*.json artifacts (JSON-lines). Rows pair by stable
// key, numeric fields compare under the tolerance bands (see
// obs/benchdiff.hpp and baselines/tolerances.json).
//
// Exit codes: 0 within bands, 1 regression detected, 2 usage or I/O error —
// so CI can distinguish "the numbers got worse" from "the gate is broken".
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "accountnet/obs/benchdiff.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: benchdiff <baseline.json> <candidate.json>"
               " [--tolerances <file>] [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace accountnet::obs;

  std::string baseline_path, candidate_path, tolerance_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerances") {
      if (++i >= argc) return usage();
      tolerance_path = argv[i];
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      return usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return usage();

  BenchDiffOptions options;
  if (!tolerance_path.empty()) {
    std::ifstream in(tolerance_path);
    if (!in) {
      std::fprintf(stderr, "benchdiff: cannot open tolerances %s\n",
                   tolerance_path.c_str());
      return 2;
    }
    std::ostringstream body;
    body << in.rdbuf();
    if (!parse_tolerances(body.str(), options)) {
      std::fprintf(stderr, "benchdiff: malformed tolerance file %s\n",
                   tolerance_path.c_str());
      return 2;
    }
  }

  std::size_t bad_base = 0, bad_cand = 0;
  const auto baseline = load_bench_jsonl(baseline_path, &bad_base);
  const auto candidate = load_bench_jsonl(candidate_path, &bad_cand);
  if (baseline.empty()) {
    std::fprintf(stderr, "benchdiff: no parseable rows in baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  if (candidate.empty()) {
    std::fprintf(stderr, "benchdiff: no parseable rows in candidate %s\n",
                 candidate_path.c_str());
    return 2;
  }
  if (bad_base + bad_cand > 0 && !quiet) {
    std::fprintf(stderr, "benchdiff: skipped %zu unparseable line(s)\n",
                 bad_base + bad_cand);
  }

  const BenchDiffReport report = benchdiff(baseline, candidate, options);

  if (!quiet) {
    std::printf("benchdiff: %zu row(s), %zu field(s) compared, %zu rule(s)\n",
                report.rows_compared, report.fields_compared, options.rules.size());
    for (const std::string& note : report.notes) {
      std::printf("  note: %s\n", note.c_str());
    }
  }
  if (!report.ok) {
    std::printf("benchdiff: %zu regression(s) vs %s\n", report.regressions.size(),
                baseline_path.c_str());
    for (const BenchDiffIssue& issue : report.regressions) {
      std::printf("  REGRESSION %s\n", issue.what.c_str());
    }
    return 1;
  }
  if (!quiet) std::printf("benchdiff: OK\n");
  return 0;
}
