#include "accountnet/util/worker_pool.hpp"

#include "accountnet/util/ensure.hpp"

namespace accountnet::util {

WorkerPool::WorkerPool(std::size_t threads) : threads_(threads == 0 ? 1 : threads) {
  // threads_ counts the calling thread too: a pool of N creates N-1 workers
  // and run() itself drains items, so no core sits idle at a barrier.
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    AN_ENSURE_MSG(job_ == nullptr, "WorkerPool::run is not reentrant");
    job_ = &fn;
    job_size_ = n;
    cursor_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    arrivals_ = 0;
    ++job_id_;
  }
  work_cv_.notify_all();
  // The caller is worker number N: drain items alongside the pool threads.
  while (true) {
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    fn(i);
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }
  // Wait until every item finished AND every worker parked for this job; the
  // arrival barrier is what makes a stale worker claiming into the *next*
  // job's cursor impossible (run() cannot return, so no next job can start,
  // until all workers left their claim loop).
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, n] {
    return arrivals_ == workers_.size() &&
           completed_.load(std::memory_order_acquire) == n;
  });
  job_ = nullptr;
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_job = 0;
  while (true) {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_job] { return stop_ || job_id_ != seen_job; });
      if (stop_) return;
      seen_job = job_id_;
      fn = job_;
      n = job_size_;
    }
    while (true) {
      const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      (*fn)(i);
      completed_.fetch_add(1, std::memory_order_acq_rel);
    }
    {
      // A worker's arrival orders all its completions before the caller's
      // wake-up, so the final arrival implies every item completed.
      std::lock_guard<std::mutex> lock(mu_);
      ++arrivals_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace accountnet::util
