#include "accountnet/util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_set>

namespace accountnet {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::uniform: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * (UINT64_MAX / bound);
  std::uint64_t draw;
  do {
    draw = next_u64();
  } while (draw >= limit);
  return draw % bound;
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_range: lo > hi");
  const auto width = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(width == 0 ? next_u64() : uniform(width));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_normal_ = mag * std::sin(2.0 * std::numbers::pi * u2);
  has_cached_normal_ = true;
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  if (k * 3 > n) {
    // Dense case: partial Fisher-Yates over the full index range.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j = i + static_cast<std::size_t>(uniform(n - i));
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }
  // Sparse case: rejection on a hash set.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    const auto idx = static_cast<std::size_t>(uniform(n));
    if (chosen.insert(idx).second) out.push_back(idx);
  }
  return out;
}

Rng Rng::fork() {
  return Rng(next_u64());
}

}  // namespace accountnet
