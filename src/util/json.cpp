#include "accountnet/util/json.hpp"

#include <cmath>
#include <cstdlib>

namespace accountnet::util {

const JsonValue* JsonValue::get(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  const auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

double JsonValue::get_number(std::string_view key, double def) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_number() ? v->as_number() : def;
}

std::string JsonValue::get_string(std::string_view key, const std::string& def) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->is_string() ? v->as_string() : def;
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_array(JsonArray a) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::make_shared<JsonArray>(std::move(a));
  return v;
}

JsonValue JsonValue::make_object(JsonObject o) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::make_shared<JsonObject>(std::move(o));
  return v;
}

namespace {

struct Parser {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) ++p;
  }

  bool eat(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }

  bool literal(const char* lit) {
    const char* q = p;
    while (*lit != '\0') {
      if (q >= end || *q != *lit) return false;
      ++q;
      ++lit;
    }
    p = q;
    return true;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (p >= end || *p != '"') return false;
    ++p;
    out.clear();
    while (p < end) {
      const unsigned char c = static_cast<unsigned char>(*p);
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= end) return false;
        switch (*p) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            // \uXXXX: decode to UTF-8; surrogate pairs are passed through as
            // two 3-byte sequences (artifacts never carry astral planes).
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              ++p;
              if (p >= end) return false;
              const char h = *p;
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return false;
        }
        ++p;
      } else if (c < 0x20) {
        return false;  // raw control characters are invalid in JSON strings
      } else {
        out.push_back(static_cast<char>(c));
        ++p;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    const char* start = p;
    if (p < end && *p == '-') ++p;
    if (p >= end) return false;
    if (*p == '0') {
      ++p;
    } else if (*p >= '1' && *p <= '9') {
      while (p < end && *p >= '0' && *p <= '9') ++p;
    } else {
      return false;
    }
    if (p < end && *p == '.') {
      ++p;
      if (p >= end || *p < '0' || *p > '9') return false;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    if (p < end && (*p == 'e' || *p == 'E')) {
      ++p;
      if (p < end && (*p == '+' || *p == '-')) ++p;
      if (p >= end || *p < '0' || *p > '9') return false;
      while (p < end && *p >= '0' && *p <= '9') ++p;
    }
    const std::string num(start, p);
    char* parsed_end = nullptr;
    out = std::strtod(num.c_str(), &parsed_end);
    return parsed_end == num.c_str() + num.size() && std::isfinite(out);
  }

  bool parse_value(JsonValue& out, std::size_t depth) {
    if (depth > kJsonMaxDepth) return false;
    skip_ws();
    if (p >= end) return false;
    switch (*p) {
      case '{': {
        ++p;
        JsonObject obj;
        skip_ws();
        if (eat('}')) {
          out = JsonValue::make_object(std::move(obj));
          return true;
        }
        do {
          std::string key;
          if (!parse_string(key)) return false;
          if (!eat(':')) return false;
          JsonValue v;
          if (!parse_value(v, depth + 1)) return false;
          obj.insert_or_assign(std::move(key), std::move(v));
        } while (eat(','));
        if (!eat('}')) return false;
        out = JsonValue::make_object(std::move(obj));
        return true;
      }
      case '[': {
        ++p;
        JsonArray arr;
        skip_ws();
        if (eat(']')) {
          out = JsonValue::make_array(std::move(arr));
          return true;
        }
        do {
          JsonValue v;
          if (!parse_value(v, depth + 1)) return false;
          arr.push_back(std::move(v));
        } while (eat(','));
        if (!eat(']')) return false;
        out = JsonValue::make_array(std::move(arr));
        return true;
      }
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue::make_null();
        return true;
      default: {
        double d = 0;
        if (!parse_number(d)) return false;
        out = JsonValue::make_number(d);
        return true;
      }
    }
  }
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  Parser parser{text.data(), text.data() + text.size()};
  JsonValue v;
  if (!parser.parse_value(v, 0)) return std::nullopt;
  parser.skip_ws();
  if (parser.p != parser.end) return std::nullopt;  // trailing garbage
  return v;
}

}  // namespace accountnet::util
