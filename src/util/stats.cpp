#include "accountnet/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace accountnet {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const {
  return std::sqrt(variance());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(data_.begin(), data_.end());
    sorted_ = true;
  }
}

double Samples::mean() const {
  if (data_.empty()) return 0.0;
  double s = 0.0;
  for (double x : data_) s += x;
  return s / static_cast<double>(data_.size());
}

double Samples::stddev() const {
  if (data_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : data_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(data_.size() - 1));
}

double Samples::min() const {
  ensure_sorted();
  return data_.empty() ? 0.0 : data_.front();
}

double Samples::max() const {
  ensure_sorted();
  return data_.empty() ? 0.0 : data_.back();
}

double Samples::percentile(double p) const {
  if (data_.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile out of range");
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(data_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, data_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return data_[lo] * (1.0 - frac) + data_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  if (buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: need hi > lo and buckets > 0");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // float edge case
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string Histogram::render(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bars = counts_[i] * bar_width / peak;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") ";
    for (std::size_t b = 0; b < bars; ++b) os << '#';
    os << ' ' << counts_[i] << '\n';
  }
  if (underflow_ > 0) os << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) os << "overflow: " << overflow_ << '\n';
  return os.str();
}

}  // namespace accountnet
