#include "accountnet/obs/sink.hpp"

#include <cmath>
#include <cstdio>

#include "accountnet/util/ensure.hpp"

namespace accountnet::obs {

namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kTimer: return "timer";
  }
  return "?";
}

/// JSON has no inf/nan; clamp to 0 (values are measurements, not math).
double finite(double v) { return std::isfinite(v) ? v : 0.0; }

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", finite(v));
  return buf;
}

}  // namespace

const MemorySink::Row* MemorySink::last(std::string_view name) const {
  for (auto it = rows_.rbegin(); it != rows_.rend(); ++it) {
    if (it->sample.name == name) return &*it;
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_json_line(const MetricSample& sample, std::int64_t t_us) {
  std::string out = "{\"t_us\":" + std::to_string(t_us) + ",\"metric\":\"" +
                    json_escape(sample.name) + "\",\"kind\":\"" +
                    kind_name(sample.kind) + "\"";
  switch (sample.kind) {
    case MetricKind::kCounter:
      out += ",\"value\":" + std::to_string(sample.count);
      break;
    case MetricKind::kGauge:
      out += ",\"value\":" + num(sample.value);
      break;
    case MetricKind::kTimer:
      out += ",\"count\":" + std::to_string(sample.count) +
             ",\"mean_ns\":" + num(sample.value) + ",\"sum_ns\":" + num(sample.sum) +
             ",\"min_ns\":" + num(sample.min) + ",\"max_ns\":" + num(sample.max) +
             ",\"p50_ns\":" + num(sample.p50) + ",\"p95_ns\":" + num(sample.p95) +
             ",\"p99_ns\":" + num(sample.p99);
      break;
  }
  out += "}";
  return out;
}

std::string to_json_line(const TraceEvent& e) {
  return "{\"t_us\":" + std::to_string(e.t_us) +
         ",\"kind\":\"trace\",\"code\":" + std::to_string(e.code) +
         ",\"a\":" + std::to_string(e.a) + ",\"b\":" + std::to_string(e.b) +
         ",\"label\":\"" + json_escape(e.label) + "\"}";
}

JsonLinesSink::JsonLinesSink(const std::string& path)
    : stream_(std::fopen(path.c_str(), "a")), owned_(true) {
  AN_ENSURE_MSG(stream_ != nullptr, "cannot open metrics sink file: " + path);
}

JsonLinesSink::JsonLinesSink(std::FILE* stream) : stream_(stream), owned_(false) {
  AN_ENSURE(stream_ != nullptr);
}

JsonLinesSink::~JsonLinesSink() {
  if (owned_) std::fclose(stream_);
}

void JsonLinesSink::write(const MetricSample& sample, std::int64_t t_us) {
  const std::string line = to_json_line(sample, t_us);
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fputc('\n', stream_);
}

void JsonLinesSink::event(const TraceEvent& e) {
  const std::string line = to_json_line(e);
  std::fwrite(line.data(), 1, line.size(), stream_);
  std::fputc('\n', stream_);
}

void JsonLinesSink::raw_line(const std::string& json_object) {
  std::fwrite(json_object.data(), 1, json_object.size(), stream_);
  std::fputc('\n', stream_);
}

void JsonLinesSink::flush() { std::fflush(stream_); }

}  // namespace accountnet::obs
