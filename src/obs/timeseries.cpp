#include "accountnet/obs/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "accountnet/obs/sink.hpp"
#include "accountnet/util/json.hpp"

namespace accountnet::obs {

namespace {

double finite(double v) { return std::isfinite(v) ? v : 0.0; }

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", finite(v));
  return buf;
}

std::string integer(double v) {
  return std::to_string(static_cast<long long>(std::llround(finite(v))));
}

/// Windowed aggregate of one metric name across every source registry.
struct Agg {
  MetricKind kind = MetricKind::kCounter;
  double counter = 0.0;
  double gauge = 0.0;
  std::uint64_t timer_count = 0;
  // [underflow, bucket 0..n-1, overflow]
  std::vector<std::uint64_t> buckets;
  const Histogram* geometry = nullptr;
};

/// Percentile over a *delta* bucket vector, mirroring
/// MetricsRegistry::timer_percentile_ns (bucket midpoints, log10 space).
double percentile_from_deltas(const std::vector<std::uint64_t>& deltas,
                              const Histogram& geom, double p) {
  std::uint64_t total = 0;
  for (const std::uint64_t d : deltas) total += d;
  if (total == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  std::uint64_t seen = deltas.front();  // underflow
  if (static_cast<double>(seen) >= rank && seen > 0) {
    return std::pow(10.0, geom.bucket_lo(0));
  }
  for (std::size_t i = 0; i < geom.bucket_count(); ++i) {
    seen += deltas[i + 1];
    if (static_cast<double>(seen) >= rank) {
      const double mid = (geom.bucket_lo(i) + geom.bucket_hi(i)) / 2.0;
      return std::pow(10.0, mid);
    }
  }
  return std::pow(10.0, geom.bucket_hi(geom.bucket_count() - 1));
}

}  // namespace

const TimeSeriesCell* TimeSeriesPoint::find(const std::string& name) const {
  const auto it = std::lower_bound(
      cells.begin(), cells.end(), name,
      [](const auto& cell, const std::string& n) { return cell.first < n; });
  return it != cells.end() && it->first == name ? &it->second : nullptr;
}

TimeSeriesScraper::TimeSeriesScraper(TimeSeriesConfig config) : config_(config) {}

void TimeSeriesScraper::add_source(const MetricsRegistry* registry) {
  if (registry != nullptr) sources_.push_back(registry);
}

void TimeSeriesScraper::sample(std::int64_t t_us) {
  // 1. Aggregate the current cumulative state across sources, name-keyed
  //    (std::map: the point's cell order is the sorted-scrape order).
  std::map<std::string, Agg> cur;
  for (const MetricsRegistry* reg : sources_) {
    for (MetricId id = 0; id < reg->size(); ++id) {
      const MetricKind kind = reg->metric_kind(id);
      auto [it, fresh] = cur.try_emplace(reg->metric_name(id));
      Agg& agg = it->second;
      if (fresh) agg.kind = kind;
      if (agg.kind != kind) continue;  // cross-source kind clash: first wins
      switch (kind) {
        case MetricKind::kCounter:
          agg.counter += static_cast<double>(reg->counter_value(id));
          break;
        case MetricKind::kGauge:
          agg.gauge += reg->gauge_value(id);
          break;
        case MetricKind::kTimer: {
          const Histogram& hist = reg->timer_histogram(id);
          if (agg.geometry == nullptr) {
            agg.geometry = &hist;
            agg.buckets.assign(hist.bucket_count() + 2, 0);
          }
          if (agg.buckets.size() == hist.bucket_count() + 2) {
            agg.buckets.front() += hist.underflow();
            for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
              agg.buckets[i + 1] += hist.bucket(i);
            }
            agg.buckets.back() += hist.overflow();
          }
          agg.timer_count += reg->timer_count(id);
          break;
        }
      }
    }
  }

  // 2. Diff against the previous sample into one point.
  TimeSeriesPoint pt;
  pt.t_us = t_us;
  pt.window_us = have_prev_ ? t_us - last_t_us_ : 0;
  const double window_s =
      pt.window_us > 0 ? static_cast<double>(pt.window_us) / 1e6 : 0.0;
  pt.cells.reserve(cur.size());

  std::map<std::string, double> next_counters;
  std::map<std::string, PrevTimer> next_timers;
  for (const auto& [name, agg] : cur) {
    TimeSeriesCell cell;
    cell.kind = agg.kind;
    switch (agg.kind) {
      case MetricKind::kCounter: {
        cell.value = agg.counter;
        const auto prev = prev_counters_.find(name);
        const double before = prev != prev_counters_.end() ? prev->second : 0.0;
        // A registry reset() shrinks totals; clamp so the rate stays sane.
        const double delta = std::max(0.0, agg.counter - before);
        cell.rate_per_s = window_s > 0 ? delta / window_s : 0.0;
        next_counters.emplace(name, agg.counter);
        break;
      }
      case MetricKind::kGauge:
        cell.value = agg.gauge;
        break;
      case MetricKind::kTimer: {
        PrevTimer next;
        next.count = agg.timer_count;
        next.buckets = agg.buckets;
        const auto prev = prev_timers_.find(name);
        std::vector<std::uint64_t> deltas = agg.buckets;
        std::uint64_t count_before = 0;
        if (prev != prev_timers_.end() &&
            prev->second.buckets.size() == deltas.size()) {
          count_before = prev->second.count;
          for (std::size_t i = 0; i < deltas.size(); ++i) {
            deltas[i] -= std::min(deltas[i], prev->second.buckets[i]);
          }
        }
        cell.count = agg.timer_count - std::min(agg.timer_count, count_before);
        if (agg.geometry != nullptr) {
          cell.p50_ns = percentile_from_deltas(deltas, *agg.geometry, 50.0);
          cell.p95_ns = percentile_from_deltas(deltas, *agg.geometry, 95.0);
          cell.p99_ns = percentile_from_deltas(deltas, *agg.geometry, 99.0);
        }
        next_timers.emplace(name, std::move(next));
        break;
      }
    }
    pt.cells.emplace_back(name, cell);
  }

  prev_counters_ = std::move(next_counters);
  prev_timers_ = std::move(next_timers);
  last_t_us_ = t_us;
  have_prev_ = true;

  points_.push_back(std::move(pt));
  while (points_.size() > config_.capacity) {
    points_.pop_front();
    ++dropped_;
  }
}

void TimeSeriesScraper::clear() {
  points_.clear();
  prev_counters_.clear();
  prev_timers_.clear();
  have_prev_ = false;
  last_t_us_ = 0;
  dropped_ = 0;
}

void TimeSeriesScraper::dump_jsonl(JsonLinesSink& sink,
                                   const std::string& context_fields) const {
  for (const TimeSeriesPoint& pt : points_) {
    sink.raw_line(to_json_line(pt, context_fields));
  }
}

std::string TimeSeriesScraper::to_json_array() const {
  std::string out = "[";
  bool first = true;
  for (const TimeSeriesPoint& pt : points_) {
    if (!first) out += ",";
    first = false;
    out += to_json_line(pt);
  }
  return out + "]";
}

std::string to_json_line(const TimeSeriesPoint& pt, const std::string& context_fields) {
  std::string out = "{\"kind\":\"timeseries\"" + context_fields +
                    ",\"t_us\":" + std::to_string(pt.t_us) +
                    ",\"window_us\":" + std::to_string(pt.window_us) + ",\"series\":{";
  bool first = true;
  for (const auto& [name, cell] : pt.cells) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":{";
    switch (cell.kind) {
      case MetricKind::kCounter:
        out += "\"k\":\"counter\",\"total\":" + integer(cell.value) +
               ",\"rate\":" + num(cell.rate_per_s);
        break;
      case MetricKind::kGauge:
        out += "\"k\":\"gauge\",\"value\":" + num(cell.value);
        break;
      case MetricKind::kTimer:
        out += "\"k\":\"timer\",\"n\":" + std::to_string(cell.count) +
               ",\"p50_ns\":" + num(cell.p50_ns) + ",\"p95_ns\":" + num(cell.p95_ns) +
               ",\"p99_ns\":" + num(cell.p99_ns);
        break;
    }
    out += "}";
  }
  return out + "}}";
}

bool parse_timeseries_json_line(const std::string& line, TimeSeriesPoint& out) {
  const auto doc = util::json_parse(line);
  if (!doc || !doc->is_object()) return false;
  if (doc->get_string("kind") != "timeseries") return false;
  const util::JsonValue* series = doc->get("series");
  if (series == nullptr || !series->is_object()) return false;

  out = TimeSeriesPoint{};
  out.t_us = static_cast<std::int64_t>(doc->get_number("t_us"));
  out.window_us = static_cast<std::int64_t>(doc->get_number("window_us"));
  for (const auto& [name, v] : series->as_object()) {
    if (!v.is_object()) return false;
    TimeSeriesCell cell;
    const std::string k = v.get_string("k");
    if (k == "counter") {
      cell.kind = MetricKind::kCounter;
      cell.value = v.get_number("total");
      cell.rate_per_s = v.get_number("rate");
    } else if (k == "gauge") {
      cell.kind = MetricKind::kGauge;
      cell.value = v.get_number("value");
    } else if (k == "timer") {
      cell.kind = MetricKind::kTimer;
      cell.count = static_cast<std::uint64_t>(v.get_number("n"));
      cell.p50_ns = v.get_number("p50_ns");
      cell.p95_ns = v.get_number("p95_ns");
      cell.p99_ns = v.get_number("p99_ns");
    } else {
      return false;
    }
    out.cells.emplace_back(name, cell);  // JsonObject iterates name-sorted
  }
  return true;
}

std::vector<TimeSeriesPoint> load_timeseries_jsonl(const std::string& path) {
  std::vector<TimeSeriesPoint> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TimeSeriesPoint pt;
    if (parse_timeseries_json_line(line, pt)) out.push_back(std::move(pt));
  }
  return out;
}

}  // namespace accountnet::obs
