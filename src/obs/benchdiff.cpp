#include "accountnet/obs/benchdiff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>

namespace accountnet::obs {

namespace {

std::string fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Flattens numeric/bool leaves into dotted paths ("rows.0.p99" -> value).
void flatten(const util::JsonValue& v, const std::string& path,
             std::vector<std::pair<std::string, double>>& out) {
  switch (v.type()) {
    case util::JsonValue::Type::kNumber:
      out.emplace_back(path, v.as_number());
      break;
    case util::JsonValue::Type::kBool:
      out.emplace_back(path, v.as_bool() ? 1.0 : 0.0);
      break;
    case util::JsonValue::Type::kObject:
      for (const auto& [k, child] : v.as_object()) {
        flatten(child, path.empty() ? k : path + "." + k, out);
      }
      break;
    case util::JsonValue::Type::kArray: {
      const auto& arr = v.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        flatten(arr[i], path + "." + std::to_string(i), out);
      }
      break;
    }
    default:
      break;  // strings participate in the key, null carries no value
  }
}

const ToleranceRule* match_rule(const BenchDiffOptions& opt,
                                const std::string& row_key,
                                const std::string& field) {
  for (const ToleranceRule& r : opt.rules) {
    if (glob_match(r.row_glob, row_key) && glob_match(r.field_glob, field)) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative '*' backtracking (classic two-pointer form).
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string benchdiff_row_key(const util::JsonValue& row) {
  if (!row.is_object()) return "<non-object>";
  const util::JsonValue* metric = row.get("metric");
  if (metric != nullptr && metric->is_string()) {
    return "metric:" + metric->as_string();
  }
  // Context rows: every top-level string field, in the (sorted) object order.
  std::string key;
  for (const auto& [k, v] : row.as_object()) {
    if (!v.is_string()) continue;
    if (!key.empty()) key += ",";
    key += k + "=" + v.as_string();
  }
  return key.empty() ? "<anonymous>" : key;
}

std::vector<util::JsonValue> load_bench_jsonl(const std::string& path,
                                              std::size_t* bad_lines) {
  std::vector<util::JsonValue> out;
  if (bad_lines != nullptr) *bad_lines = 0;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto v = util::json_parse(line);
    if (v && v->is_object()) {
      out.push_back(std::move(*v));
    } else if (bad_lines != nullptr) {
      ++*bad_lines;
    }
  }
  return out;
}

bool parse_tolerances(const std::string& body, BenchDiffOptions& out) {
  const auto doc = util::json_parse(body);
  if (!doc || !doc->is_object()) return false;
  out = BenchDiffOptions{};
  if (const util::JsonValue* def = doc->get("default"); def != nullptr) {
    if (!def->is_object()) return false;
    out.default_rel = def->get_number("rel", 0.0);
    out.default_abs = def->get_number("abs", 1e-9);
  }
  if (const util::JsonValue* rules = doc->get("rules"); rules != nullptr) {
    if (!rules->is_array()) return false;
    for (const util::JsonValue& r : rules->as_array()) {
      if (!r.is_object()) return false;
      ToleranceRule rule;
      rule.row_glob = r.get_string("row", "*");
      rule.field_glob = r.get_string("field", "*");
      rule.rel = r.get_number("rel", 0.0);
      rule.abs = r.get_number("abs", 0.0);
      if (const util::JsonValue* skip = r.get("skip");
          skip != nullptr && skip->is_bool()) {
        rule.skip = skip->as_bool();
      }
      out.rules.push_back(std::move(rule));
    }
  }
  return true;
}

BenchDiffReport benchdiff(const std::vector<util::JsonValue>& baseline,
                          const std::vector<util::JsonValue>& candidate,
                          const BenchDiffOptions& options) {
  BenchDiffReport rep;

  // Index rows by key, with an occurrence suffix for repeats so periodic
  // scrapes stay aligned by position-within-key.
  const auto index = [](const std::vector<util::JsonValue>& rows) {
    std::map<std::string, const util::JsonValue*> by_key;
    std::map<std::string, std::size_t> seen;
    for (const util::JsonValue& row : rows) {
      const std::string base = benchdiff_row_key(row);
      const std::size_t n = seen[base]++;
      by_key.emplace(base + "#" + std::to_string(n), &row);
    }
    return by_key;
  };
  const auto base_rows = index(baseline);
  const auto cand_rows = index(candidate);

  for (const auto& [key, base_row] : base_rows) {
    const auto it = cand_rows.find(key);
    if (it == cand_rows.end()) {
      BenchDiffIssue issue;
      issue.row_key = key;
      issue.what = "row missing from candidate: " + key;
      rep.regressions.push_back(std::move(issue));
      continue;
    }
    ++rep.rows_compared;

    std::vector<std::pair<std::string, double>> base_fields, cand_fields;
    flatten(*base_row, "", base_fields);
    flatten(*it->second, "", cand_fields);
    std::map<std::string, double> cand_by_name(cand_fields.begin(), cand_fields.end());

    for (const auto& [field, bval] : base_fields) {
      const ToleranceRule* rule = match_rule(options, key, field);
      if (rule != nullptr && rule->skip) continue;
      const auto cit = cand_by_name.find(field);
      if (cit == cand_by_name.end()) {
        BenchDiffIssue issue;
        issue.row_key = key;
        issue.field = field;
        issue.baseline = bval;
        issue.what = key + " " + field + ": field missing from candidate";
        rep.regressions.push_back(std::move(issue));
        continue;
      }
      ++rep.fields_compared;
      const double cval = cit->second;
      const double rel = rule != nullptr ? rule->rel : options.default_rel;
      const double abs = rule != nullptr ? rule->abs : options.default_abs;
      const double scale = std::max(std::fabs(bval), std::fabs(cval));
      const double allowed = std::max(abs, rel * scale);
      const double diff = std::fabs(cval - bval);
      if (diff > allowed) {
        BenchDiffIssue issue;
        issue.row_key = key;
        issue.field = field;
        issue.baseline = bval;
        issue.candidate = cval;
        issue.allowed = allowed;
        issue.what = key + " " + field + ": " + fmt(bval) + " -> " + fmt(cval) +
                     " (|delta| " + fmt(diff) + " > allowed " + fmt(allowed) + ")";
        rep.regressions.push_back(std::move(issue));
      }
    }
  }

  for (const auto& [key, row] : cand_rows) {
    (void)row;
    if (base_rows.find(key) == base_rows.end()) {
      rep.notes.push_back("new row (not in baseline): " + key);
    }
  }

  rep.ok = rep.regressions.empty();
  return rep;
}

}  // namespace accountnet::obs
