#include "accountnet/obs/trace.hpp"

namespace accountnet::obs {

void TraceRing::push(TraceEvent e) {
  if (capacity_ == 0) return;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(e));
    return;
  }
  events_[head_] = std::move(e);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

void TraceRing::clear() {
  events_.clear();
  head_ = 0;
  dropped_ = 0;
}

}  // namespace accountnet::obs
