#include "accountnet/obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "accountnet/obs/sink.hpp"
#include "accountnet/util/ensure.hpp"

namespace accountnet::obs {

namespace {

std::uint64_t wall_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

double log10_ns(std::uint64_t ns) {
  return ns == 0 ? 0.0 : std::log10(static_cast<double>(ns));
}

}  // namespace

MetricId MetricsRegistry::intern(std::string_view name, MetricKind kind) {
  AN_ENSURE_MSG(!name.empty(), "metric name must be non-empty");
  const auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    AN_ENSURE_MSG(names_[it->second].kind == kind,
                  "metric re-registered under a different kind: " + std::string(name));
    return it->second;
  }
  const auto id = static_cast<MetricId>(names_.size());
  Entry e;
  e.name = std::string(name);
  e.kind = kind;
  e.slot = 0;
  if (kind == MetricKind::kTimer) {
    e.slot = static_cast<std::uint32_t>(timers_.size());
    timers_.emplace_back();
  }
  names_.push_back(std::move(e));
  // Every id owns a counter and a gauge cell so hot-path updates index by id
  // without a per-kind translation.
  counters_.emplace_back(0);
  gauges_.emplace_back(0.0);
  by_name_.emplace(names_.back().name, id);
  return id;
}

MetricId MetricsRegistry::counter(std::string_view name) {
  return intern(name, MetricKind::kCounter);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
  return intern(name, MetricKind::kGauge);
}

MetricId MetricsRegistry::timer(std::string_view name) {
  return intern(name, MetricKind::kTimer);
}

std::optional<MetricId> MetricsRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

void MetricsRegistry::observe_ns(MetricId id, std::uint64_t ns) {
  AN_ENSURE_MSG(names_[id].kind == MetricKind::kTimer, "observe_ns on a non-timer");
  TimerCell& cell = timers_[names_[id].slot];
  cell.stats.add(static_cast<double>(ns));
  cell.hist.add(log10_ns(ns));
}

std::uint64_t MetricsRegistry::timer_count(MetricId id) const {
  AN_ENSURE_MSG(names_[id].kind == MetricKind::kTimer, "timer_count on a non-timer");
  return timers_[names_[id].slot].stats.count();
}

double MetricsRegistry::timer_percentile_ns(MetricId id, double p) const {
  AN_ENSURE_MSG(names_[id].kind == MetricKind::kTimer, "percentile on a non-timer");
  const TimerCell& cell = timers_[names_[id].slot];
  const std::size_t total = cell.hist.total();
  if (total == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  std::size_t seen = cell.hist.underflow();
  if (static_cast<double>(seen) >= rank && seen > 0) return cell.stats.min();
  for (std::size_t i = 0; i < cell.hist.bucket_count(); ++i) {
    seen += cell.hist.bucket(i);
    if (static_cast<double>(seen) >= rank) {
      const double mid = (cell.hist.bucket_lo(i) + cell.hist.bucket_hi(i)) / 2.0;
      return std::pow(10.0, mid);
    }
  }
  return cell.stats.max();
}

const Histogram& MetricsRegistry::timer_histogram(MetricId id) const {
  AN_ENSURE_MSG(names_[id].kind == MetricKind::kTimer, "histogram on a non-timer");
  return timers_[names_[id].slot].hist;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricId> order(names_.size());
  for (MetricId id = 0; id < names_.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [this](MetricId a, MetricId b) {
    return names_[a].name < names_[b].name;
  });
  std::vector<MetricSample> out;
  out.reserve(names_.size());
  for (const MetricId id : order) {
    const Entry& e = names_[id];
    MetricSample s;
    s.name = e.name;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        s.count = counter_value(id);
        s.value = static_cast<double>(s.count);
        break;
      case MetricKind::kGauge:
        s.value = gauge_value(id);
        break;
      case MetricKind::kTimer: {
        const TimerCell& cell = timers_[e.slot];
        s.count = cell.stats.count();
        s.value = cell.stats.mean();
        s.sum = cell.stats.sum();
        s.min = cell.stats.min();
        s.max = cell.stats.max();
        s.p50 = timer_percentile_ns(id, 50.0);
        s.p95 = timer_percentile_ns(id, 95.0);
        s.p99 = timer_percentile_ns(id, 99.0);
        break;
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::scrape_to(Sink& sink, std::int64_t sim_time_us) const {
  for (auto& sample : snapshot()) {
    sink.write(sample, sim_time_us);
  }
  sink.flush();
}

void MetricsRegistry::reset() {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
  for (auto& g : gauges_) g.store(0.0, std::memory_order_relaxed);
  for (auto& t : timers_) t = TimerCell{};
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry, MetricId id)
    : registry_(registry && registry->timing_enabled() ? registry : nullptr), id_(id) {
  if (registry_) start_ns_ = wall_ns();
}

ScopedTimer::~ScopedTimer() {
  if (registry_) registry_->observe_ns(id_, wall_ns() - start_ns_);
}

}  // namespace accountnet::obs
