#include "accountnet/obs/exposition.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace accountnet::obs {

namespace {

std::string fmt(double v) {
  if (!std::isfinite(v)) v = 0.0;
  // Integral values print without an exponent/decimal so counters stay exact
  // (Prometheus parses either form; exactness helps the demo's greps).
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

bool name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
bool name_char(char c) {
  return name_start(c) || std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

std::string prometheus_name(std::string_view metric) {
  std::string out = "accountnet_";
  out.reserve(out.size() + metric.size());
  for (const char c : metric) {
    out += name_char(c) && c != ':' ? c : '_';
  }
  return out;
}

std::string prometheus_text(const std::vector<MetricSample>& samples) {
  std::string out;
  for (const MetricSample& s : samples) {
    const std::string base = prometheus_name(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + base + "_total counter\n";
        out += base + "_total " + fmt(static_cast<double>(s.count)) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + base + " gauge\n";
        out += base + " " + fmt(s.value) + "\n";
        break;
      case MetricKind::kTimer: {
        const std::string fam = base + "_ns";
        out += "# TYPE " + fam + " summary\n";
        out += fam + "{quantile=\"0.5\"} " + fmt(s.p50) + "\n";
        out += fam + "{quantile=\"0.95\"} " + fmt(s.p95) + "\n";
        out += fam + "{quantile=\"0.99\"} " + fmt(s.p99) + "\n";
        out += fam + "_sum " + fmt(s.sum) + "\n";
        out += fam + "_count " + fmt(static_cast<double>(s.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string prometheus_text(const MetricsRegistry& registry) {
  return prometheus_text(registry.snapshot());
}

namespace {

struct LineCheck {
  bool ok = false;
  bool is_sample = false;
  bool is_type = false;
  std::string error;
};

bool valid_metric_name(std::string_view n) {
  if (n.empty() || !name_start(n[0])) return false;
  for (const char c : n) {
    if (!name_char(c)) return false;
  }
  return true;
}

bool valid_value(std::string_view v) {
  if (v.empty()) return false;
  if (v == "+Inf" || v == "-Inf" || v == "Inf" || v == "NaN") return true;
  const std::string s(v);
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

LineCheck check_line(std::string_view line) {
  LineCheck r;
  if (line.empty()) {
    r.ok = true;
    return r;
  }
  if (line[0] == '#') {
    // Only `# HELP <name> ...` and `# TYPE <name> <type>` comment forms.
    if (line.rfind("# HELP ", 0) == 0) {
      r.ok = true;
      return r;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::string_view rest = line.substr(7);
      const std::size_t sp = rest.find(' ');
      if (sp == std::string_view::npos) {
        r.error = "TYPE line missing a type";
        return r;
      }
      const std::string_view name = rest.substr(0, sp);
      const std::string_view type = rest.substr(sp + 1);
      if (!valid_metric_name(name)) {
        r.error = "TYPE line has an invalid metric name";
        return r;
      }
      if (type != "counter" && type != "gauge" && type != "summary" &&
          type != "histogram" && type != "untyped") {
        r.error = "unknown metric type '" + std::string(type) + "'";
        return r;
      }
      r.ok = true;
      r.is_type = true;
      return r;
    }
    r.error = "comment line is neither HELP nor TYPE";
    return r;
  }

  // Sample line: name[{labels}] value [timestamp]
  std::size_t i = 0;
  while (i < line.size() && name_char(line[i])) ++i;
  if (i == 0 || !name_start(line[0])) {
    r.error = "sample line does not start with a metric name";
    return r;
  }
  if (i < line.size() && line[i] == '{') {
    // Labels: name="value" pairs; value bytes may include anything escaped,
    // we only require balanced quotes and a closing brace.
    ++i;
    bool in_quote = false;
    bool closed = false;
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (in_quote) {
        if (c == '\\') {
          ++i;  // skip escaped byte
        } else if (c == '"') {
          in_quote = false;
        }
      } else if (c == '"') {
        in_quote = true;
      } else if (c == '}') {
        closed = true;
        ++i;
        break;
      }
    }
    if (!closed || in_quote) {
      r.error = "unbalanced label block";
      return r;
    }
  }
  if (i >= line.size() || line[i] != ' ') {
    r.error = "sample line missing a value";
    return r;
  }
  ++i;
  std::string_view rest = line.substr(i);
  const std::size_t sp = rest.find(' ');
  const std::string_view value = sp == std::string_view::npos ? rest : rest.substr(0, sp);
  if (!valid_value(value)) {
    r.error = "unparseable sample value '" + std::string(value) + "'";
    return r;
  }
  if (sp != std::string_view::npos) {
    const std::string_view ts = rest.substr(sp + 1);
    if (ts.empty() || ts.find(' ') != std::string_view::npos || !valid_value(ts)) {
      r.error = "malformed timestamp";
      return r;
    }
  }
  r.ok = true;
  r.is_sample = true;
  return r;
}

}  // namespace

PromValidation validate_prometheus_text(std::string_view body) {
  PromValidation v;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= body.size()) {
    const std::size_t nl = body.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? body.substr(pos)
                                : body.substr(pos, nl - pos);
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!(nl == std::string_view::npos && line.empty())) {
      const LineCheck c = check_line(line);
      if (!c.ok) {
        v.error = "line " + std::to_string(line_no) + ": " + c.error;
        return v;
      }
      if (c.is_sample) ++v.samples;
      if (c.is_type) ++v.families;
    }
    if (nl == std::string_view::npos) break;
    pos = nl + 1;
  }
  if (v.samples == 0) {
    v.error = "no samples";
    return v;
  }
  v.ok = true;
  return v;
}

}  // namespace accountnet::obs
