#include "accountnet/obs/span.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <unordered_set>

#include "accountnet/obs/sink.hpp"  // json_escape
#include "accountnet/util/ensure.hpp"

namespace accountnet::obs {

namespace {

/// Stateless mix (splitmix64): a bijection, so distinct counter values give
/// distinct ids for a fixed seed — no entropy, no protocol Rng stream.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

const std::string* Span::find_attr(std::string_view key) const {
  for (const SpanAttr& a : attrs) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

std::uint64_t Tracer::next_id() {
  std::uint64_t id = 0;
  while (id == 0) id = mix64(seed_ + ++counter_);
  return id;
}

std::uint64_t Tracer::begin_span(std::string name, std::string node,
                                 std::int64_t t_us, TraceContext parent) {
  Span s;
  s.span_id = next_id();
  s.trace_id = parent.valid() ? parent.trace_id : s.span_id;
  s.parent_span = parent.valid() ? parent.parent_span : 0;
  s.name = std::move(name);
  s.node = std::move(node);
  s.start_us = t_us;
  s.end_us = t_us - 1;  // open
  index_[s.span_id] = spans_.size();
  spans_.push_back(std::move(s));
  return spans_.back().span_id;
}

void Tracer::end_span(std::uint64_t span_id, std::int64_t t_us) {
  const auto it = index_.find(span_id);
  if (it == index_.end()) return;
  Span& s = spans_[it->second];
  s.end_us = std::max(t_us, s.start_us);
}

void Tracer::attr(std::uint64_t span_id, std::string key, std::string value) {
  const auto it = index_.find(span_id);
  if (it == index_.end()) return;
  spans_[it->second].attrs.push_back({std::move(key), std::move(value)});
}

void Tracer::attr_u64(std::uint64_t span_id, std::string key, std::uint64_t value) {
  attr(span_id, std::move(key), std::to_string(value));
}

TraceContext Tracer::context(std::uint64_t span_id) const {
  const auto it = index_.find(span_id);
  if (it == index_.end()) return {};
  const Span& s = spans_[it->second];
  return {s.trace_id, s.span_id};
}

void Tracer::clear() {
  spans_.clear();
  index_.clear();
}

// ---------------------------------------------------------------------------
// JSONL dump.

std::string span_to_json_line(const Span& s) {
  std::string out = "{\"trace\":\"" + hex16(s.trace_id) + "\",\"span\":\"" +
                    hex16(s.span_id) + "\",\"parent\":\"" + hex16(s.parent_span) +
                    "\",\"name\":\"" + json_escape(s.name) + "\",\"node\":\"" +
                    json_escape(s.node) +
                    "\",\"start_us\":" + std::to_string(s.start_us) +
                    ",\"end_us\":" + std::to_string(s.end_us) + ",\"attrs\":{";
  bool first = true;
  for (const SpanAttr& a : s.attrs) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(a.key) + "\":\"" + json_escape(a.value) + "\"";
  }
  out += "}}";
  return out;
}

void write_spans_jsonl(const std::vector<Span>& spans, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  AN_ENSURE_MSG(f != nullptr, "cannot open span dump file: " + path);
  for (const Span& s : spans) {
    const std::string line = span_to_json_line(s);
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
  }
  std::fclose(f);
}

namespace {

/// Minimal cursor parser for the exact object shape span_to_json_line
/// produces (plus unknown scalar fields, skipped for forward compatibility).
struct Cursor {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
  }
  bool expect(char c) {
    ws();
    if (p >= end || *p != c) return false;
    ++p;
    return true;
  }
  bool peek(char c) {
    ws();
    return p < end && *p == c;
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (p >= end) return false;
      const char esc = *p++;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (end - p < 4) return false;
          char hex[5] = {p[0], p[1], p[2], p[3], 0};
          p += 4;
          const unsigned long cp = std::strtoul(hex, nullptr, 16);
          // The writer only emits \u for control bytes; anything wider is
          // replaced rather than decoded into UTF-8.
          out += cp < 0x100 ? static_cast<char>(cp) : '?';
          break;
        }
        default: return false;
      }
    }
    return expect('"');
  }

  bool parse_int(std::int64_t& out) {
    ws();
    char* after = nullptr;
    out = std::strtoll(p, &after, 10);
    if (after == p) return false;
    p = after;
    return true;
  }

  bool skip_value() {
    ws();
    if (peek('"')) {
      std::string ignored;
      return parse_string(ignored);
    }
    if (peek('{')) {  // flat object of string values only
      if (!expect('{')) return false;
      if (expect('}')) return true;
      do {
        std::string k;
        if (!parse_string(k) || !expect(':') || !skip_value()) return false;
      } while (expect(','));
      return expect('}');
    }
    std::int64_t ignored = 0;
    return parse_int(ignored);
  }
};

bool parse_hex_id(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* after = nullptr;
  out = std::strtoull(s.c_str(), &after, 16);
  return after == s.c_str() + s.size();
}

}  // namespace

bool parse_span_json_line(const std::string& line, Span& out) {
  out = Span{};
  Cursor c{line.data(), line.data() + line.size()};
  if (!c.expect('{')) return false;
  if (c.expect('}')) return true;
  do {
    std::string key;
    if (!c.parse_string(key) || !c.expect(':')) return false;
    if (key == "trace" || key == "span" || key == "parent") {
      std::string hex;
      std::uint64_t id = 0;
      if (!c.parse_string(hex) || !parse_hex_id(hex, id)) return false;
      (key == "trace" ? out.trace_id : key == "span" ? out.span_id
                                                     : out.parent_span) = id;
    } else if (key == "name") {
      if (!c.parse_string(out.name)) return false;
    } else if (key == "node") {
      if (!c.parse_string(out.node)) return false;
    } else if (key == "start_us") {
      if (!c.parse_int(out.start_us)) return false;
    } else if (key == "end_us") {
      if (!c.parse_int(out.end_us)) return false;
    } else if (key == "attrs") {
      if (!c.expect('{')) return false;
      if (!c.expect('}')) {
        do {
          SpanAttr a;
          if (!c.parse_string(a.key) || !c.expect(':') || !c.parse_string(a.value))
            return false;
          out.attrs.push_back(std::move(a));
        } while (c.expect(','));
        if (!c.expect('}')) return false;
      }
    } else {
      if (!c.skip_value()) return false;  // unknown field: tolerate scalars
    }
  } while (c.expect(','));
  return c.expect('}') && out.span_id != 0;
}

std::vector<Span> load_spans_jsonl(const std::string& path) {
  std::vector<Span> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    Span s;
    if (parse_span_json_line(line, s)) out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Perfetto export.

std::string perfetto_json(const std::vector<Span>& spans) {
  // Stable pid per participant, in first-seen order.
  std::unordered_map<std::string, int> pids;
  std::vector<const std::string*> names;
  for (const Span& s : spans) {
    if (pids.emplace(s.node, static_cast<int>(pids.size()) + 1).second) {
      names.push_back(&s.node);
    }
  }

  std::vector<const Span*> ordered;
  ordered.reserve(spans.size());
  for (const Span& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Span* a, const Span* b) {
                     if (a->start_us != b->start_us) return a->start_us < b->start_us;
                     return a->span_id < b->span_id;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!first) out += ",";
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
           std::to_string(i + 1) + ",\"tid\":0,\"args\":{\"name\":\"" +
           json_escape(*names[i]) + "\"}}";
  }
  for (const Span* s : ordered) {
    const int pid = pids[s->node];
    const std::int64_t dur = s->open() ? 0 : s->end_us - s->start_us;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(s->name) +
           "\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":" + std::to_string(s->start_us) +
           ",\"dur\":" + std::to_string(dur) + ",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(pid) + ",\"args\":{\"trace\":\"" +
           hex16(s->trace_id) + "\",\"span\":\"" + hex16(s->span_id) +
           "\",\"parent\":\"" + hex16(s->parent_span) + "\"";
    for (const SpanAttr& a : s->attrs) {
      out += ",\"" + json_escape(a.key) + "\":\"" + json_escape(a.value) + "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void PerfettoSink::add_all(const std::vector<Span>& spans) {
  spans_.insert(spans_.end(), spans.begin(), spans.end());
}

void PerfettoSink::flush() {
  std::FILE* f = std::fopen(path_.c_str(), "w");
  AN_ENSURE_MSG(f != nullptr, "cannot open perfetto trace file: " + path_);
  const std::string doc = perfetto_json(spans_);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
}

// ---------------------------------------------------------------------------
// Trace forests + critical paths.

std::int64_t TraceTree::duration_us() const {
  if (root == nullptr) return 0;
  std::int64_t latest = root->start_us;
  for (const Span* s : spans) {
    latest = std::max(latest, s->open() ? s->start_us : s->end_us);
  }
  return latest - root->start_us;
}

std::vector<TraceTree> build_traces(const std::vector<Span>& spans) {
  std::vector<TraceTree> out;
  std::unordered_map<std::uint64_t, std::size_t> slot;
  for (const Span& s : spans) {
    const auto [it, inserted] = slot.emplace(s.trace_id, out.size());
    if (inserted) {
      out.push_back(TraceTree{s.trace_id, nullptr, {}});
    }
    out[it->second].spans.push_back(&s);
  }
  for (TraceTree& tree : out) {
    std::unordered_set<std::uint64_t> present;
    for (const Span* s : tree.spans) present.insert(s->span_id);
    // Prefer a true root (parent == 0); otherwise the earliest orphan — a
    // trimmed dump can lose the root but the tree should still analyse.
    for (const Span* s : tree.spans) {
      const bool rootish = s->parent_span == 0 || !present.contains(s->parent_span);
      if (!rootish) continue;
      if (tree.root == nullptr || s->start_us < tree.root->start_us ||
          (s->start_us == tree.root->start_us && s->parent_span == 0 &&
           tree.root->parent_span != 0)) {
        tree.root = s;
      }
    }
  }
  return out;
}

std::vector<const Span*> critical_path(const TraceTree& tree) {
  std::vector<const Span*> path;
  if (tree.spans.empty()) return path;
  std::unordered_map<std::uint64_t, const Span*> by_id;
  for (const Span* s : tree.spans) by_id.emplace(s->span_id, s);

  const Span* last = tree.spans.front();
  auto finish = [](const Span* s) { return s->open() ? s->start_us : s->end_us; };
  for (const Span* s : tree.spans) {
    if (finish(s) > finish(last)) last = s;
  }
  // Walk parent links back to the root; cycle-guarded for hostile dumps.
  std::unordered_set<std::uint64_t> visited;
  for (const Span* s = last; s != nullptr && visited.insert(s->span_id).second;) {
    path.push_back(s);
    const auto it = by_id.find(s->parent_span);
    s = it == by_id.end() ? nullptr : it->second;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace accountnet::obs
