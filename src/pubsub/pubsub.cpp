#include "accountnet/pubsub/pubsub.hpp"

#include <algorithm>

#include "accountnet/wire/codec.hpp"

namespace accountnet::pubsub {

void TopicDirectory::announce(const std::string& topic, const std::string& addr) {
  auto& subs = topics_[topic];
  if (std::find(subs.begin(), subs.end(), addr) == subs.end()) {
    subs.push_back(addr);
  }
}

void TopicDirectory::retract(const std::string& topic, const std::string& addr) {
  const auto it = topics_.find(topic);
  if (it == topics_.end()) return;
  std::erase(it->second, addr);
}

std::vector<std::string> TopicDirectory::subscribers(const std::string& topic) const {
  const auto it = topics_.find(topic);
  return it == topics_.end() ? std::vector<std::string>{} : it->second;
}

Bytes Envelope::encode() const {
  wire::Writer w;
  w.str(topic);
  w.bytes(data);
  return std::move(w).take();
}

Envelope Envelope::decode(BytesView bytes) {
  wire::Reader r(bytes);
  Envelope e;
  e.topic = r.str();
  e.data = r.bytes();
  r.expect_done();
  return e;
}

PubSubNode::PubSubNode(core::Node& node, TopicDirectory& directory)
    : node_(node), directory_(directory) {
  node_.set_delivery_callback(
      [this](std::uint64_t ch, std::uint64_t seq, const Bytes& payload,
             const core::PeerId& producer) { on_delivery(ch, seq, payload, producer); });
}

void PubSubNode::subscribe(const std::string& topic, MessageHandler handler) {
  handlers_[topic] = std::move(handler);
  directory_.announce(topic, node_.id().addr);
}

void PubSubNode::ensure_link(const std::string& subscriber_addr) {
  if (links_.contains(subscriber_addr)) return;
  links_[subscriber_addr] = Link{};
  node_.open_channel(subscriber_addr, [this, subscriber_addr](std::uint64_t id, bool ok) {
    auto& link = links_[subscriber_addr];
    link.channel_id = id;
    if (!ok) {
      link.failed = true;
      ++stats_.channel_failures;
      link.backlog.clear();
      return;
    }
    link.ready = true;
    for (auto& payload : link.backlog) {
      node_.send_data(id, std::move(payload));
    }
    link.backlog.clear();
  });
}

void PubSubNode::publish(const std::string& topic, Bytes data) {
  ++stats_.published;
  const Envelope envelope{topic, std::move(data)};
  const Bytes encoded = envelope.encode();
  for (const auto& sub : directory_.subscribers(topic)) {
    if (sub == node_.id().addr) continue;  // no self-delivery loop
    ensure_link(sub);
    auto& link = links_[sub];
    if (link.failed) continue;
    if (link.ready) {
      node_.send_data(link.channel_id, encoded);
    } else {
      ++stats_.queued;
      link.backlog.push_back(encoded);
    }
  }
}

void PubSubNode::on_delivery(std::uint64_t /*channel*/, std::uint64_t /*seq*/,
                             const Bytes& payload, const core::PeerId& producer) {
  Envelope envelope;
  try {
    envelope = Envelope::decode(payload);
  } catch (const wire::DecodeError&) {
    return;  // corrupted by a (minority of) malicious witnesses
  }
  const auto it = handlers_.find(envelope.topic);
  if (it == handlers_.end()) return;
  ++stats_.delivered;
  it->second(envelope.topic, envelope.data, producer);
}

}  // namespace accountnet::pubsub
