#include "accountnet/net/http.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace accountnet::net {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool token_char(char c) {
  // RFC 7230 tchar, the subset that matters for method validation.
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

}  // namespace

HttpServer::HttpServer(EventLoop& loop, HttpServerConfig config)
    : loop_(loop), config_(config) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  const int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  socklen_t len = sizeof(addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0 ||
      ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return;
  }
  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  loop_.add_fd(listen_fd_, EventLoop::kReadable, [this](std::uint32_t) { on_accept(); });
}

HttpServer::~HttpServer() { close(); }

void HttpServer::close() {
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  while (!conns_.empty()) drop(conns_.begin()->first, false);
}

void HttpServer::on_accept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for the next edge
    if (conns_.size() >= config_.max_connections) {
      ++rejected_;
      ::close(fd);
      continue;
    }
    Conn c;
    c.deadline_token = loop_.schedule_after(config_.request_timeout_us, [this, fd] {
      // Head never completed (slowloris or an idle probe): fail closed.
      const auto it = conns_.find(fd);
      if (it != conns_.end() && !it->second.responding) {
        it->second.deadline_token = 0;
        drop(fd, true);
      }
    });
    conns_.emplace(fd, std::move(c));
    loop_.add_fd(fd, EventLoop::kReadable,
                 [this, fd](std::uint32_t events) { on_event(fd, events); });
  }
}

void HttpServer::on_event(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (events & EventLoop::kError) {
    drop(fd, false);
    return;
  }
  if (events & EventLoop::kReadable) on_readable(fd, it->second);
  const auto again = conns_.find(fd);
  if (again != conns_.end() && (events & EventLoop::kWritable)) {
    on_writable(fd, again->second);
  }
}

void HttpServer::on_readable(int fd, Conn& c) {
  char buf[1024];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      if (c.responding) continue;  // drain & ignore bytes after the head
      c.in.append(buf, static_cast<std::size_t>(n));
      if (c.in.size() > config_.max_request_bytes) {
        ++rejected_;
        respond(fd, c, HttpResponse{431, "text/plain; charset=utf-8",
                                    "request head too large\n"});
        return;
      }
      if (try_respond(fd, c)) return;
      continue;
    }
    if (n == 0) {
      drop(fd, false);  // EOF before a full head
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    drop(fd, false);
    return;
  }
}

bool HttpServer::try_respond(int fd, Conn& c) {
  // A full head ends in CRLFCRLF (tolerate bare LFLF from hand-rolled
  // clients); until then keep buffering — but reject obvious garbage early:
  // the method token must terminate within the first bytes.
  const std::size_t head_end_crlf = c.in.find("\r\n\r\n");
  const std::size_t head_end_lf = c.in.find("\n\n");
  const bool complete =
      head_end_crlf != std::string::npos || head_end_lf != std::string::npos;

  // Early method check: as soon as the first space (or enough bytes) is in,
  // a non-token method is a 400 without waiting for the rest of the head.
  const std::size_t probe = std::min<std::size_t>(c.in.size(), 16);
  std::size_t method_len = std::string::npos;
  for (std::size_t i = 0; i < probe; ++i) {
    if (c.in[i] == ' ') {
      method_len = i;
      break;
    }
    if (!token_char(c.in[i])) {
      method_len = 0;  // garbage byte inside the method
      break;
    }
  }
  if (method_len == 0 || (method_len == std::string::npos && c.in.size() >= 16)) {
    ++rejected_;
    respond(fd, c, HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"});
    return true;
  }
  if (!complete) return false;

  // Request line: METHOD SP target SP HTTP/1.x
  const std::size_t line_end = c.in.find_first_of("\r\n");
  const std::string line = c.in.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.find(' ', sp2 + 1) != std::string::npos ||
      line.compare(sp2 + 1, 7, "HTTP/1.") != 0) {
    ++rejected_;
    respond(fd, c, HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"});
    return true;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.method != "GET") {
    ++rejected_;
    respond(fd, c, HttpResponse{405, "text/plain; charset=utf-8",
                                "only GET is served here\n"});
    return true;
  }
  if (req.target.empty() || req.target[0] != '/') {
    ++rejected_;
    respond(fd, c, HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"});
    return true;
  }
  ++served_;
  HttpResponse resp =
      handler_ ? handler_(req)
               : HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
  respond(fd, c, resp);
  return true;
}

void HttpServer::respond(int fd, Conn& c, const HttpResponse& r) {
  c.responding = true;
  c.in.clear();
  if (c.deadline_token != 0) {
    loop_.cancel(c.deadline_token);
    c.deadline_token = 0;
  }
  c.out = "HTTP/1.0 " + std::to_string(r.status) + " " + reason_phrase(r.status) +
          "\r\nContent-Type: " + r.content_type +
          "\r\nContent-Length: " + std::to_string(r.body.size()) +
          "\r\nConnection: close\r\n\r\n" + r.body;
  c.out_off = 0;
  loop_.mod_fd(fd, EventLoop::kReadable | EventLoop::kWritable);
  on_writable(fd, c);
}

void HttpServer::on_writable(int fd, Conn& c) {
  if (!c.responding) return;
  while (c.out_off < c.out.size()) {
    const ssize_t n =
        ::send(fd, c.out.data() + c.out_off, c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    drop(fd, false);
    return;
  }
  drop(fd, false);  // fully drained: one request per connection
}

void HttpServer::drop(int fd, bool counted_rejection) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (counted_rejection) ++rejected_;
  if (it->second.deadline_token != 0) loop_.cancel(it->second.deadline_token);
  loop_.del_fd(fd);
  ::close(fd);
  conns_.erase(it);
}

HttpGetResult http_get(const std::string& host, std::uint16_t port,
                       const std::string& target, std::int64_t timeout_ms) {
  HttpGetResult r;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    r.error = "socket failed";
    return r;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    r.error = "bad host";
    return r;
  }
  const auto wait_for = [&](short events) {
    pollfd p{fd, events, 0};
    const int rc = ::poll(&p, 1, static_cast<int>(timeout_ms));
    return rc > 0 && (p.revents & (events | POLLHUP | POLLERR)) != 0;
  };
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) {
      ::close(fd);
      r.error = "connect failed";
      return r;
    }
    if (!wait_for(POLLOUT)) {
      ::close(fd);
      r.error = "connect timeout";
      return r;
    }
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen);
    if (soerr != 0) {
      ::close(fd);
      r.error = std::string("connect failed: ") + std::strerror(soerr);
      return r;
    }
  }
  const std::string req = "GET " + target + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (wait_for(POLLOUT)) continue;
      ::close(fd);
      r.error = "send timeout";
      return r;
    }
    if (n < 0 && errno == EINTR) continue;
    ::close(fd);
    r.error = "send failed";
    return r;
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      raw.append(buf, static_cast<std::size_t>(n));
      if (raw.size() > 64 * 1024 * 1024) {
        ::close(fd);
        r.error = "response too large";
        return r;
      }
      continue;
    }
    if (n == 0) break;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (wait_for(POLLIN)) continue;
      ::close(fd);
      r.error = "read timeout";
      return r;
    }
    if (errno == EINTR) continue;
    ::close(fd);
    r.error = "read failed";
    return r;
  }
  ::close(fd);

  // Parse "HTTP/1.x NNN ..." + headers; body follows the blank line.
  if (raw.compare(0, 5, "HTTP/") != 0) {
    r.error = "not an HTTP response";
    return r;
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    r.error = "malformed status line";
    return r;
  }
  r.status = std::atoi(raw.c_str() + sp + 1);
  std::size_t body_at = raw.find("\r\n\r\n");
  std::size_t skip = 4;
  if (body_at == std::string::npos) {
    body_at = raw.find("\n\n");
    skip = 2;
  }
  if (body_at == std::string::npos) {
    r.error = "no header terminator";
    return r;
  }
  r.body = raw.substr(body_at + skip);
  r.ok = true;
  return r;
}

}  // namespace accountnet::net
