#include "accountnet/net/fault_shim.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace accountnet::net {

namespace {
constexpr std::size_t kRelayChunk = 16 * 1024;
constexpr std::size_t kRelayHighWater = 256 * 1024;
}  // namespace

ChaosProxy::ChaosProxy(EventLoop& loop, ChaosProxyConfig config, std::uint64_t rng_seed)
    : loop_(loop), config_(std::move(config)), rng_(rng_seed) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(config_.listen_port);
  if (::inet_pton(AF_INET, config_.listen_host.c_str(), &sa.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return;
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  listen_fd_ = fd;
  listen_port_ = ntohs(sa.sin_port);
  loop_.add_fd(fd, EventLoop::kReadable, [this](std::uint32_t) { on_acceptable(); });
}

ChaosProxy::~ChaosProxy() { close_all(); }

void ChaosProxy::on_acceptable() {
  for (;;) {
    const int cfd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) return;
    const int ufd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_port = htons(config_.upstream_port);
    if (ufd < 0 || ::inet_pton(AF_INET, config_.upstream_host.c_str(), &sa.sin_addr) != 1) {
      ::close(cfd);
      if (ufd >= 0) ::close(ufd);
      continue;
    }
    if (::connect(ufd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 &&
        errno != EINPROGRESS) {
      ::close(cfd);
      ::close(ufd);
      continue;
    }
    auto s = std::make_shared<Session>();
    s->client_fd = cfd;
    s->upstream_fd = ufd;
    if (config_.max_kill_bytes > 0) {
      s->budget = config_.min_kill_bytes +
                  rng_.uniform(config_.max_kill_bytes - config_.min_kill_bytes + 1);
    }
    by_fd_[cfd] = s;
    by_fd_[ufd] = s;
    ++sessions_opened_;
    loop_.add_fd(cfd, EventLoop::kReadable,
                 [this, cfd](std::uint32_t ev) { on_side_event(cfd, ev); });
    loop_.add_fd(ufd, EventLoop::kReadable | EventLoop::kWritable,
                 [this, ufd](std::uint32_t ev) { on_side_event(ufd, ev); });
  }
}

ChaosProxy::Session* ChaosProxy::find(int fd) {
  const auto it = by_fd_.find(fd);
  return it == by_fd_.end() ? nullptr : it->second.get();
}

void ChaosProxy::on_side_event(int fd, std::uint32_t events) {
  Session* s = find(fd);
  if (s == nullptr) return;
  if (s->upstream_connecting && fd == s->upstream_fd) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if ((events & EventLoop::kError) || err != 0) {
      kill_session(*s);
      return;
    }
    if (events & EventLoop::kWritable) s->upstream_connecting = false;
  }
  if (events & EventLoop::kError) {
    kill_session(*s);
    return;
  }
  // Pump both directions regardless of which side woke us; relay() handles
  // EAGAIN on either end.
  if (!relay(*s, s->client_fd, s->upstream_fd, s->to_upstream)) return;
  if (!relay(*s, s->upstream_fd, s->client_fd, s->to_client)) return;
  update_interest(*s);
}

bool ChaosProxy::relay(Session& s, int from_fd, int to_fd, Bytes& buf) {
  if (!s.upstream_connecting && buf.size() < kRelayHighWater) {
    std::uint8_t chunk[kRelayChunk];
    for (;;) {
      const ssize_t n = ::recv(from_fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        buf.insert(buf.end(), chunk, chunk + n);
        if (buf.size() >= kRelayHighWater) break;
        continue;
      }
      if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
        // FIN or error from one side: sever the whole session. (A fault shim
        // has no need for graceful half-close semantics.)
        kill_session(s);
        return false;
      }
      break;
    }
  }
  std::size_t written = 0;
  while (written < buf.size() && !s.upstream_connecting) {
    const ssize_t n = ::send(to_fd, buf.data() + written, buf.size() - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      kill_session(s);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (written > 0) {
    buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(written));
    s.forwarded += written;
    bytes_forwarded_ += written;
    if (s.budget > 0 && s.forwarded >= s.budget) {
      // Budget exhausted: yank the cable mid-stream.
      ++sessions_killed_;
      kill_session(s);
      return false;
    }
  }
  return true;
}

void ChaosProxy::update_interest(Session& s) {
  // Read a side only while the opposite relay buffer has room; write a side
  // only while bytes are pending toward it (or the connect is resolving).
  const std::uint32_t client =
      (s.to_upstream.size() < kRelayHighWater ? EventLoop::kReadable : 0u) |
      (!s.to_client.empty() ? EventLoop::kWritable : 0u);
  const std::uint32_t upstream =
      (s.to_client.size() < kRelayHighWater ? EventLoop::kReadable : 0u) |
      (!s.to_upstream.empty() || s.upstream_connecting ? EventLoop::kWritable : 0u);
  loop_.mod_fd(s.client_fd, client);
  loop_.mod_fd(s.upstream_fd, upstream);
}

void ChaosProxy::kill_session(Session& s) {
  // Hard close: SO_LINGER 0 sends RST, so the victim sees an abrupt death,
  // not a graceful FIN — the interesting failure mode.
  // The two by_fd_ entries are the only owners of the session, so erasing
  // both destroys `s`: grab the fds and clear the fields *before* erasing,
  // and never touch `s` afterwards.
  const int fds[2] = {s.client_fd, s.upstream_fd};
  s.client_fd = -1;
  s.upstream_fd = -1;
  linger lg{1, 0};
  for (const int fd : fds) {
    if (fd < 0) continue;
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    loop_.del_fd(fd);
    ::close(fd);
    by_fd_.erase(fd);
  }
}

void ChaosProxy::close_all() {
  while (!by_fd_.empty()) kill_session(*by_fd_.begin()->second);
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace accountnet::net
