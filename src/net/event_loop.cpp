#include "accountnet/net/event_loop.hpp"

#include <sys/epoll.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace accountnet::net {

namespace {

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

std::uint32_t to_epoll(std::uint32_t interest) {
  std::uint32_t ev = 0;
  if (interest & EventLoop::kReadable) ev |= EPOLLIN;
  if (interest & EventLoop::kWritable) ev |= EPOLLOUT;
  return ev;
}

}  // namespace

EventLoop::EventLoop() : epoch_ns_(monotonic_ns()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
}

EventLoop::~EventLoop() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::int64_t EventLoop::now_us() const {
  return (monotonic_ns() - epoch_ns_) / 1000;
}

void EventLoop::add_fd(int fd, std::uint32_t interest, FdCallback cb) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0) {
    fds_[fd] = std::move(cb);
  }
}

void EventLoop::mod_fd(int fd, std::uint32_t interest) {
  epoll_event ev{};
  ev.events = to_epoll(interest);
  ev.data.fd = fd;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EventLoop::del_fd(int fd) {
  if (fds_.erase(fd) > 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  }
}

std::uint64_t EventLoop::schedule_at(std::int64_t when_us, std::function<void()> fn) {
  const std::uint64_t token = next_token_++;
  timers_.push(Timer{when_us, token, std::move(fn)});
  return token;
}

void EventLoop::cancel(std::uint64_t token) {
  if (token != 0) cancelled_.insert(token);
}

void EventLoop::dispatch_due_timers() {
  // Pop everything due into a batch first: a firing timer may schedule new
  // timers (even at the current instant) without re-entering the queue scan.
  const std::int64_t now = now_us();
  std::vector<Timer> due;
  while (!timers_.empty() && timers_.top().when <= now) {
    Timer t = timers_.top();
    timers_.pop();
    if (const auto it = cancelled_.find(t.token); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    due.push_back(std::move(t));
  }
  for (Timer& t : due) {
    if (const auto it = cancelled_.find(t.token); it != cancelled_.end()) {
      cancelled_.erase(it);  // cancelled by an earlier timer in this batch
      continue;
    }
    t.fn();
  }
}

std::size_t EventLoop::poll(std::int64_t max_wait_us) {
  std::int64_t wait = std::max<std::int64_t>(0, max_wait_us);
  if (!timers_.empty()) {
    wait = std::clamp<std::int64_t>(timers_.top().when - now_us(), 0, wait);
  }
  epoll_event events[64];
  const int timeout_ms = static_cast<int>((wait + 999) / 1000);
  int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
  if (n < 0 && errno != EINTR) n = 0;
  std::size_t dispatched = 0;
  for (int i = 0; i < std::max(n, 0); ++i) {
    const int fd = events[i].data.fd;
    // A prior callback in this batch may have del_fd'd this one.
    const auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    std::uint32_t mask = 0;
    if (events[i].events & (EPOLLIN | EPOLLRDHUP)) mask |= kReadable;
    if (events[i].events & EPOLLOUT) mask |= kWritable;
    if (events[i].events & (EPOLLERR | EPOLLHUP)) mask |= kError;
    // Copy: the callback may del_fd itself, invalidating the map slot.
    FdCallback cb = it->second;
    cb(mask);
    ++dispatched;
  }
  dispatch_due_timers();
  return dispatched;
}

void EventLoop::run_for(std::int64_t duration_us) {
  const std::int64_t deadline = now_us() + duration_us;
  while (!stopped_ && now_us() < deadline) {
    poll(deadline - now_us());
  }
}

void EventLoop::run() {
  while (!stopped_) poll(100000);
}

}  // namespace accountnet::net
