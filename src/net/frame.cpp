#include "accountnet/net/frame.hpp"

#include <cstring>

namespace accountnet::net {

void put_u32le(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32le(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

Bytes encode_frame(std::uint32_t type, BytesView payload) {
  Bytes out(kFrameHeaderSize + payload.size());
  put_u32le(out.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32le(out.data() + 4, type);
  if (!payload.empty()) std::memcpy(out.data() + kFrameHeaderSize, payload.data(), payload.size());
  return out;
}

void FrameReader::append(const std::uint8_t* data, std::size_t len) {
  if (poisoned_ || len == 0) return;
  // Compact before growing: everything before pos_ is already consumed.
  if (pos_ > 0 && (pos_ == buf_.size() || pos_ >= 64 * 1024)) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

std::optional<Frame> FrameReader::next() {
  if (poisoned_) return std::nullopt;
  const std::size_t avail = buf_.size() - pos_;
  if (avail < kFrameHeaderSize) return std::nullopt;  // rollback: partial header
  const std::uint32_t len = get_u32le(buf_.data() + pos_);
  if (len > max_frame_) {
    poisoned_ = true;  // untrusted length: the stream can never resync
    return std::nullopt;
  }
  if (avail < kFrameHeaderSize + len) return std::nullopt;  // rollback: partial body
  Frame frame;
  frame.type = get_u32le(buf_.data() + pos_ + 4);
  frame.payload.assign(buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderSize),
                       buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kFrameHeaderSize + len));
  pos_ += kFrameHeaderSize + len;
  return frame;
}

}  // namespace accountnet::net
