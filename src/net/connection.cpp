#include "accountnet/net/connection.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "accountnet/wire/codec.hpp"

namespace accountnet::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void enable_keepalive(int fd) {
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &on, sizeof(on));
  // Aggressive probing: a silently dead peer is detected by the kernel in
  // ~idle+cnt*intvl seconds even if our own deadlines are generous.
  int idle = 30, intvl = 5, cnt = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &intvl, sizeof(intvl));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &cnt, sizeof(cnt));
}

}  // namespace

bool parse_addr(const std::string& addr, std::string& host, std::uint16_t& port) {
  const auto colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= addr.size()) return false;
  host = addr.substr(0, colon);
  long p = 0;
  for (std::size_t i = colon + 1; i < addr.size(); ++i) {
    const char c = addr[i];
    if (c < '0' || c > '9') return false;
    p = p * 10 + (c - '0');
    if (p > 65535) return false;
  }
  if (p == 0) return false;
  port = static_cast<std::uint16_t>(p);
  return true;
}

ConnectionManager::ConnectionManager(EventLoop& loop, TransportConfig config,
                                     obs::MetricsRegistry& metrics,
                                     std::uint64_t rng_seed)
    : loop_(loop), config_(std::move(config)), metrics_(metrics), rng_(rng_seed) {}

ConnectionManager::~ConnectionManager() { close_all(); }

void ConnectionManager::bump(const char* short_name, std::uint64_t delta) {
  auto it = counter_ids_.find(short_name);
  if (it == counter_ids_.end()) {
    const obs::MetricId id = metrics_.counter(std::string("net.conn.") + short_name);
    it = counter_ids_.emplace(short_name, id).first;
  }
  metrics_.add(it->second, delta);
}

std::uint64_t ConnectionManager::counter(const std::string& short_name) const {
  const auto id = metrics_.find("net.conn." + short_name);
  return id ? metrics_.counter_value(*id) : 0;
}

void ConnectionManager::set_open_gauge() {
  metrics_.set(metrics_.gauge("net.conn.open"), static_cast<double>(by_fd_.size()));
}

bool ConnectionManager::listen() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  int on = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof(on));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &sa.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(sa);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&sa), &len);
  listen_fd_ = fd;
  listen_port_ = ntohs(sa.sin_port);
  const std::uint16_t advertised =
      config_.advertise_port != 0 ? config_.advertise_port : listen_port_;
  self_addr_ = config_.host + ":" + std::to_string(advertised);
  loop_.add_fd(fd, EventLoop::kReadable, [this](std::uint32_t) { on_acceptable(); });
  return true;
}

void ConnectionManager::on_acceptable() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: back to the loop
    if (unidentified_ >= config_.max_unidentified) {
      // Accept-flood guard: refuse to hold more anonymous sockets.
      bump("accept_rejected");
      ::close(fd);
      continue;
    }
    enable_keepalive(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->reader = FrameReader(config_.max_frame_size);
    Conn* raw = conn.get();
    by_fd_[fd] = std::move(conn);
    ++unidentified_;
    bump("accepted");
    set_open_gauge();
    arm_read_deadline(*raw);  // first-frame deadline: anonymous conns are bounded
    loop_.add_fd(fd, EventLoop::kReadable,
                 [this, fd](std::uint32_t events) { on_fd_event(fd, events); });
  }
}

void ConnectionManager::arm_read_deadline(Conn& conn) {
  if (conn.read_timer != 0) loop_.cancel(conn.read_timer);
  const int fd = conn.fd;
  conn.read_timer = loop_.schedule_after(config_.partial_frame_timeout_us, [this, fd] {
    const auto it = by_fd_.find(fd);
    if (it == by_fd_.end()) return;
    Conn& c = *it->second;
    c.read_timer = 0;
    bump("read_timeout");
    auto pit = peers_.find(c.peer);
    if (!c.peer.empty() && pit != peers_.end() && pit->second.fd == fd) {
      // A stalled frame from an identified peer means slow, not hostile:
      // close the socket but keep its queue and reconnect with backoff.
      // Queue-forfeit (protocol_error) is reserved for wire-format
      // violations — oversized/garbage/misaddressed frames.
      fail_link(pit->second, "read deadline expired");
    } else {
      // Anonymous first-frame deadline or a redundant identified socket:
      // nothing queued rides on this conn, just close it.
      close_conn(fd);
    }
  });
}

void ConnectionManager::on_fd_event(int fd, std::uint32_t events) {
  const auto it = by_fd_.find(fd);
  if (it == by_fd_.end()) return;
  Conn& conn = *it->second;

  if (conn.connecting) {
    // Dial resolution: EPOLLOUT means the connect finished (check SO_ERROR),
    // EPOLLERR/EPOLLHUP means it failed.
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    auto pit = peers_.find(conn.peer);
    if ((events & EventLoop::kError) || err != 0) {
      bump("connect_failed");
      if (pit != peers_.end() && pit->second.fd == fd) {
        fail_link(pit->second, "connect refused");
      } else {
        close_conn(fd);
      }
      return;
    }
    if (events & EventLoop::kWritable) {
      conn.connecting = false;
      bump("connected");
      if (pit != peers_.end() && pit->second.fd == fd) {
        PeerLink& link = pit->second;
        loop_.cancel(link.connect_timer);
        link.connect_timer = 0;
        set_link_interest(link, true);
        flush(link);
        if (by_fd_.find(fd) == by_fd_.end()) return;  // flush may have failed the link
      }
    }
    if (!(events & EventLoop::kReadable)) return;
  }

  if (events & EventLoop::kError) {
    // Drain any final bytes the kernel buffered before the RST/HUP, then
    // tear down via the read path (which sees EOF).
    on_readable(conn);
    if (by_fd_.find(fd) == by_fd_.end()) return;
    auto pit = peers_.find(conn.peer);
    if (!conn.peer.empty() && pit != peers_.end() && pit->second.fd == fd) {
      fail_link(pit->second, "socket error");
    } else {
      bump("closed_remote");
      close_conn(fd);
    }
    return;
  }

  if (events & EventLoop::kReadable) {
    on_readable(conn);
    if (by_fd_.find(fd) == by_fd_.end()) return;
  }
  if (events & EventLoop::kWritable) {
    auto pit = peers_.find(conn.peer);
    if (pit != peers_.end() && pit->second.fd == fd) on_writable_link(pit->second);
  }
}

void ConnectionManager::on_readable(Conn& conn) {
  const int fd = conn.fd;
  bool eof = false;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.append(buf, static_cast<std::size_t>(n));
      bump("bytes_in", static_cast<std::uint64_t>(n));
      continue;
    }
    if (n == 0) {
      eof = true;  // orderly FIN
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // ECONNRESET and friends
    break;
  }

  while (auto frame = conn.reader.next()) {
    deliver_frame(conn, std::move(*frame));
    if (by_fd_.find(fd) == by_fd_.end()) return;  // delivery closed us
  }
  if (conn.reader.poisoned()) {
    bump("oversized_frame");
    protocol_error(conn, "oversized length header");
    return;
  }

  if (eof) {
    if (conn.reader.partial_bytes() > 0) bump("truncated_frame");
    auto pit = peers_.find(conn.peer);
    if (!conn.peer.empty() && pit != peers_.end() && pit->second.fd == fd) {
      // Peer closed (or died) while we may still hold queued traffic for it:
      // treat exactly like a socket failure so reconnect/loss policy applies.
      bump("closed_remote");
      fail_link(pit->second, "peer closed");
    } else {
      bump("closed_remote");
      close_conn(fd);
    }
    return;
  }

  // Progress (or a clean boundary) refreshes the partial-frame deadline.
  if (conn.reader.partial_bytes() > 0) {
    arm_read_deadline(conn);
  } else if (conn.read_timer != 0 && !conn.peer.empty()) {
    // Identified + no partial frame: idle is fine, no deadline.
    loop_.cancel(conn.read_timer);
    conn.read_timer = 0;
  } else if (conn.read_timer != 0) {
    arm_read_deadline(conn);  // still anonymous: keep the first-frame clock
  }
}

void ConnectionManager::deliver_frame(Conn& conn, Frame frame) {
  wire::Envelope env;
  try {
    env = wire::decode_envelope(frame.payload);
  } catch (const wire::DecodeError&) {
    bump("decode_error");
    protocol_error(conn, "undecodable envelope");
    return;
  }
  if (env.type != frame.type) {
    // The frame header's type tag must agree with the envelope; a mismatch
    // means a corrupted or hostile stream.
    bump("type_mismatch");
    protocol_error(conn, "frame/envelope type mismatch");
    return;
  }
  if (env.to != self_addr_) {
    bump("misaddressed");
    protocol_error(conn, "envelope addressed elsewhere");
    return;
  }
  if (conn.peer.empty()) {
    // First envelope on an accepted connection: adopt env.from as the
    // canonical peer address and, when no outbound link exists, reuse this
    // socket as the send path back.
    std::string h;
    std::uint16_t p = 0;
    if (!parse_addr(env.from, h, p)) {
      bump("decode_error");
      protocol_error(conn, "malformed sender address");
      return;
    }
    conn.peer = env.from;
    --unidentified_;
    bump("identified");
    auto [pit, inserted] = peers_.try_emplace(env.from);
    PeerLink& link = pit->second;
    if (inserted) link.addr = env.from;
    if (link.fd < 0 && link.reconnect_timer == 0) {
      const int fd = conn.fd;  // flush() may fail the link and destroy conn
      link.fd = fd;
      if (!link.queue.empty()) {
        set_link_interest(link, true);
        flush(link);
        if (by_fd_.find(fd) == by_fd_.end()) return;
      }
    }
  }
  bump("frames_in");
  if (deliver_) deliver_(std::move(env));
}

void ConnectionManager::send(const wire::Envelope& env) {
  auto [pit, inserted] = peers_.try_emplace(env.to);
  PeerLink& link = pit->second;
  if (inserted) link.addr = env.to;
  enqueue(link, encode_frame(env.type, wire::encode_envelope(env)));
  if (link.fd < 0 && link.reconnect_timer == 0) {
    link.attempts = 0;
    dial(link);
  } else if (link.fd >= 0) {
    const auto cit = by_fd_.find(link.fd);
    if (cit != by_fd_.end() && !cit->second->connecting) {
      set_link_interest(link, true);
      flush(link);
    }
  }
}

void ConnectionManager::enqueue(PeerLink& link, Bytes frame) {
  while (link.queue.size() >= config_.max_send_queue) {
    // Drop-oldest backpressure — but never the in-flight head: its prefix may
    // already be on the wire, and a replacement head restarting at byte 0
    // would desync the peer's FrameReader. Drop the oldest frame that has
    // not started transmitting instead.
    const std::size_t victim = link.send_offset > 0 ? 1 : 0;
    if (victim >= link.queue.size()) {
      // Only the in-flight head remains; reject the new frame to stay bounded.
      bump("backpressure.dropped_frames");
      bump("backpressure.dropped_bytes", frame.size());
      return;
    }
    link.queue_bytes -= link.queue[victim].size();
    bump("backpressure.dropped_frames");
    bump("backpressure.dropped_bytes", link.queue[victim].size());
    link.queue.erase(link.queue.begin() + static_cast<std::ptrdiff_t>(victim));
  }
  link.queue_bytes += frame.size();
  link.queue.push_back(std::move(frame));
}

void ConnectionManager::dial(PeerLink& link) {
  std::string host;
  std::uint16_t port = 0;
  if (!parse_addr(link.addr, host, port)) {
    bump("dial_failed");
    drop_peer_queue(link);
    peers_.erase(link.addr);
    return;
  }
  ++link.attempts;
  bump("dials");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(port);
  if (fd < 0 || ::inet_pton(AF_INET, host.c_str(), &sa.sin_addr) != 1) {
    if (fd >= 0) ::close(fd);
    fail_link(link, "dial setup failed");
    return;
  }
  enable_keepalive(fd);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    fail_link(link, "connect failed");
    return;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->dialed = true;
  conn->connecting = (rc != 0);
  conn->peer = link.addr;
  conn->reader = FrameReader(config_.max_frame_size);
  by_fd_[fd] = std::move(conn);
  set_open_gauge();
  link.fd = fd;
  link.want_write = true;
  loop_.add_fd(fd, EventLoop::kReadable | EventLoop::kWritable,
               [this, fd](std::uint32_t events) { on_fd_event(fd, events); });
  const std::string addr = link.addr;
  link.connect_timer = loop_.schedule_after(config_.connect_timeout_us, [this, addr, fd] {
    auto pit = peers_.find(addr);
    if (pit == peers_.end() || pit->second.fd != fd) return;
    pit->second.connect_timer = 0;
    bump("connect_timeout");
    fail_link(pit->second, "connect deadline expired");
  });
  if (rc == 0) {
    bump("connected");
    loop_.cancel(link.connect_timer);
    link.connect_timer = 0;
    flush(link);
  }
}

void ConnectionManager::set_link_interest(PeerLink& link, bool want_write) {
  if (link.fd < 0 || link.want_write == want_write) return;
  link.want_write = want_write;
  loop_.mod_fd(link.fd, EventLoop::kReadable | (want_write ? EventLoop::kWritable : 0u));
}

void ConnectionManager::on_writable_link(PeerLink& link) { flush(link); }

void ConnectionManager::flush(PeerLink& link) {
  // Write as much of the queue as the kernel accepts. Progress re-arms the
  // stall deadline; zero progress with a non-empty queue keeps it ticking.
  const int fd = link.fd;
  bool progressed = false;
  while (!link.queue.empty()) {
    const Bytes& head = link.queue.front();
    const std::size_t remaining = head.size() - link.send_offset;
    const ssize_t n =
        ::send(fd, head.data() + link.send_offset, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      bump("write_failed");
      fail_link(link, "write failed");
      return;
    }
    progressed = progressed || n > 0;
    bump("bytes_out", static_cast<std::uint64_t>(n));
    link.send_offset += static_cast<std::size_t>(n);
    if (link.send_offset == head.size()) {
      link.queue_bytes -= head.size();
      link.queue.pop_front();
      link.send_offset = 0;
      bump("frames_out");
      // A whole frame reached the kernel: real progress, so the backoff
      // episode resets. Connect success alone must NOT reset it — a peer
      // that accepts and immediately resets would reconnect forever.
      link.attempts = 0;
    }
  }
  if (link.queue.empty()) {
    set_link_interest(link, false);
    if (link.stall_timer != 0) {
      loop_.cancel(link.stall_timer);
      link.stall_timer = 0;
    }
    return;
  }
  set_link_interest(link, true);
  if (progressed || link.stall_timer == 0) {
    if (link.stall_timer != 0) loop_.cancel(link.stall_timer);
    const std::string addr = link.addr;
    link.stall_timer = loop_.schedule_after(config_.write_stall_timeout_us, [this, addr, fd] {
      auto pit = peers_.find(addr);
      if (pit == peers_.end() || pit->second.fd != fd) return;
      pit->second.stall_timer = 0;
      bump("write_timeout");
      fail_link(pit->second, "write stalled");
    });
  }
}

std::int64_t ConnectionManager::backoff_delay(int attempt) {
  double d = static_cast<double>(config_.reconnect_base_us) *
             std::pow(config_.reconnect_backoff, std::max(0, attempt - 1));
  d = std::min(d, static_cast<double>(config_.reconnect_max_us));
  const double j = config_.reconnect_jitter_frac;
  if (j > 0.0) d *= 1.0 + (rng_.uniform01() * 2.0 - 1.0) * j;
  return std::max<std::int64_t>(1000, static_cast<std::int64_t>(d));
}

void ConnectionManager::fail_link(PeerLink& link, const char* /*why*/) {
  if (link.connect_timer != 0) {
    loop_.cancel(link.connect_timer);
    link.connect_timer = 0;
  }
  if (link.stall_timer != 0) {
    loop_.cancel(link.stall_timer);
    link.stall_timer = 0;
  }
  if (link.fd >= 0) close_conn(link.fd);
  link.fd = -1;
  link.want_write = false;
  link.send_offset = 0;  // the in-flight frame restarts from byte 0 on the next conn

  if (link.queue.empty()) {
    // Nothing pending: forget the peer; the next send() re-dials fresh.
    peers_.erase(link.addr);
    return;
  }
  if (config_.max_dial_attempts > 0 && link.attempts >= config_.max_dial_attempts) {
    // Out of attempts: surface the queue as loss, never hang. The node's own
    // RPC retry/timeout layer owns recovery from here.
    bump("undeliverable_frames", link.queue.size());
    drop_peer_queue(link);
    peers_.erase(link.addr);
    return;
  }
  bump("reconnects");
  const std::int64_t delay = backoff_delay(link.attempts);
  const std::string addr = link.addr;
  link.reconnect_timer = loop_.schedule_after(delay, [this, addr] {
    auto pit = peers_.find(addr);
    if (pit == peers_.end()) return;
    pit->second.reconnect_timer = 0;
    if (pit->second.fd >= 0) return;  // an inbound conn got adopted meanwhile
    dial(pit->second);
  });
}

void ConnectionManager::drop_peer_queue(PeerLink& link) {
  link.queue.clear();
  link.queue_bytes = 0;
  link.send_offset = 0;
}

void ConnectionManager::protocol_error(Conn& conn, const char* /*what*/) {
  bump("protocol_errors");
  const int fd = conn.fd;
  auto pit = peers_.find(conn.peer);
  if (!conn.peer.empty() && pit != peers_.end() && pit->second.fd == fd) {
    // A hostile/corrupt stream forfeits its queue: do not auto-reconnect into
    // the same garbage. Drop pending traffic as loss.
    PeerLink& link = pit->second;
    if (!link.queue.empty()) bump("undeliverable_frames", link.queue.size());
    drop_peer_queue(link);
    if (link.connect_timer != 0) loop_.cancel(link.connect_timer);
    if (link.stall_timer != 0) loop_.cancel(link.stall_timer);
    if (link.reconnect_timer != 0) loop_.cancel(link.reconnect_timer);
    peers_.erase(pit);
  }
  close_conn(fd);
}

void ConnectionManager::close_conn(int fd) {
  const auto it = by_fd_.find(fd);
  if (it == by_fd_.end()) return;
  Conn& conn = *it->second;
  if (conn.read_timer != 0) loop_.cancel(conn.read_timer);
  if (conn.peer.empty()) --unidentified_;
  // If a peer link still points at this socket, detach it (fail_link callers
  // already did; this covers the anonymous/protocol-error paths).
  auto pit = peers_.find(conn.peer);
  if (pit != peers_.end() && pit->second.fd == fd) {
    pit->second.fd = -1;
    pit->second.want_write = false;
  }
  loop_.del_fd(fd);
  ::close(fd);
  by_fd_.erase(it);
  bump("closed");
  set_open_gauge();
}

void ConnectionManager::close_all() {
  while (!by_fd_.empty()) close_conn(by_fd_.begin()->first);
  for (auto& [addr, link] : peers_) {
    if (link.connect_timer != 0) loop_.cancel(link.connect_timer);
    if (link.stall_timer != 0) loop_.cancel(link.stall_timer);
    if (link.reconnect_timer != 0) loop_.cancel(link.reconnect_timer);
  }
  peers_.clear();
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

std::size_t ConnectionManager::queued_frames() const {
  std::size_t n = 0;
  for (const auto& [addr, link] : peers_) n += link.queue.size();
  return n;
}

}  // namespace accountnet::net
