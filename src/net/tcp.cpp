#include "accountnet/net/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace accountnet::net {

namespace {

bool write_all(int fd, const std::uint8_t* data, std::size_t len) {
  // MSG_NOSIGNAL: a peer that closed mid-send must surface as EPIPE, not
  // terminate the process with SIGPIPE. EAGAIN (fd switched to non-blocking)
  // waits for writability instead of spinning or failing a short write.
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ::send(fd, data + written, len - written, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) return false;
        continue;
      }
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_all(int fd, std::uint8_t* data, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

void put_u32le(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t get_u32le(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | in[i];
  return v;
}

}  // namespace

MessageSocket::~MessageSocket() {
  close();
}

MessageSocket::MessageSocket(MessageSocket&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

MessageSocket& MessageSocket::operator=(MessageSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void MessageSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool MessageSocket::send(std::uint32_t type, BytesView payload) {
  if (fd_ < 0 || payload.size() > kMaxFrameSize) return false;
  std::uint8_t header[8];
  put_u32le(header, static_cast<std::uint32_t>(payload.size()));
  put_u32le(header + 4, type);
  if (!write_all(fd_, header, sizeof(header))) return false;
  return payload.empty() || write_all(fd_, payload.data(), payload.size());
}

std::optional<MessageSocket::Frame> MessageSocket::receive() {
  if (fd_ < 0) return std::nullopt;
  std::uint8_t header[8];
  if (!read_all(fd_, header, sizeof(header))) return std::nullopt;
  const std::uint32_t len = get_u32le(header);
  if (len > kMaxFrameSize) {
    close();  // protocol violation from the peer
    return std::nullopt;
  }
  Frame frame;
  frame.type = get_u32le(header + 4);
  frame.payload.resize(len);
  if (len > 0 && !read_all(fd_, frame.payload.data(), len)) return std::nullopt;
  return frame;
}

Acceptor::Acceptor(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return;
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd_, 8) != 0) {
    ::close(fd_);
    fd_ = -1;
    return;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
}

Acceptor::~Acceptor() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<MessageSocket> Acceptor::accept_one() {
  if (fd_ < 0) return std::nullopt;
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return std::nullopt;
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return MessageSocket(client);
}

std::optional<MessageSocket> connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return std::nullopt;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return std::nullopt;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return MessageSocket(fd);
}

}  // namespace accountnet::net
