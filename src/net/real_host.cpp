#include "accountnet/net/real_host.hpp"

namespace accountnet::net {

RealNetHost::RealNetHost(EventLoop& loop, TransportConfig transport,
                         obs::MetricsRegistry& metrics, std::uint64_t rng_seed)
    : loop_(loop),
      fabric_(sim_, sim::fixed_latency(0), rng_seed),
      conns_(loop, std::move(transport), metrics, rng_seed ^ 0x9e3779b97f4a7c15ULL) {
  ok_ = conns_.listen();
  if (!ok_) return;
  // Outbound seam: the node's sends target off-fabric addresses (its real
  // peers), which the fabric hands here synchronously.
  fabric_.set_gateway([this](const sim::NetMessage& msg) {
    wire::Envelope env;
    env.from = msg.from;
    env.to = msg.to;
    env.type = msg.type;
    env.trace_id = msg.trace.trace_id;
    env.parent_span = msg.trace.parent_span;
    env.payload = msg.payload;
    if (capture_) capture_(env, false);
    conns_.send(env);
  });
  conns_.set_deliver([this](wire::Envelope env) { on_wire_envelope(std::move(env)); });
}

RealNetHost::~RealNetHost() { shutdown(); }

core::Node& RealNetHost::make_node(const crypto::CryptoProvider& provider,
                                   BytesView seed32, core::Node::Config config,
                                   std::uint64_t node_rng_seed) {
  node_ = std::make_unique<core::Node>(fabric_, self_addr(), provider, seed32,
                                       std::move(config), node_rng_seed);
  return *node_;
}

void RealNetHost::on_wire_envelope(wire::Envelope env) {
  if (capture_) capture_(env, true);
  // Catch virtual time up first so the zero-latency delivery lands at the
  // current instant, then run that delivery plus anything it triggers.
  sim_.run_until(loop_.now_us());
  sim::NetMessage msg;
  msg.from = std::move(env.from);
  msg.to = std::move(env.to);
  msg.type = env.type;
  msg.payload = std::move(env.payload);
  msg.trace = obs::TraceContext{env.trace_id, env.parent_span};
  fabric_.send(std::move(msg));
  pump();
}

void RealNetHost::pump() {
  if (pumping_) return;  // a node callback re-entered via the gateway path
  pumping_ = true;
  sim_.run_until(loop_.now_us());
  pumping_ = false;
  arm_wakeup();
}

void RealNetHost::arm_wakeup() {
  if (wakeup_timer_ != 0) {
    loop_.cancel(wakeup_timer_);
    wakeup_timer_ = 0;
  }
  const std::optional<sim::TimePoint> next = sim_.next_event_time();
  if (!next) return;
  wakeup_timer_ = loop_.schedule_at(*next, [this] {
    wakeup_timer_ = 0;
    pump();
  });
}

void RealNetHost::shutdown() {
  if (wakeup_timer_ != 0) {
    loop_.cancel(wakeup_timer_);
    wakeup_timer_ = 0;
  }
  if (node_) node_->stop();
  fabric_.set_gateway(nullptr);
  conns_.close_all();
}

}  // namespace accountnet::net
