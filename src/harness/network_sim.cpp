#include "accountnet/harness/network_sim.hpp"

#include <algorithm>
#include <queue>
#include <span>

#include "accountnet/core/history.hpp"
#include "accountnet/core/neighborhood.hpp"
#include "accountnet/core/node.hpp"
#include "accountnet/core/witness.hpp"
#include "accountnet/crypto/pooled.hpp"
#include "accountnet/crypto/sha256.hpp"
#include "accountnet/storage/node_store.hpp"
#include "accountnet/util/bytes.hpp"
#include "accountnet/util/ensure.hpp"
#include "accountnet/util/worker_pool.hpp"

namespace accountnet::harness {

namespace {

/// Wave-size backstop. A flush is forced once this many events are pending,
/// keeping per-flush memory bounded. The cap is a constant — NEVER derived
/// from the thread count — so flush points (and therefore verdict-cache
/// contents, metric deltas, everything) are identical at every thread count.
constexpr std::size_t kMaxWave = 4096;

std::string addr_of(std::size_t idx) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "n%06zu", idx);
  return buf;
}

// Same fabrication scheme as the event-driven adversary: an address that
// sorts past every real node and a key nobody holds the secret for.
core::PeerId fabricated_peer(const std::string& owner_addr) {
  core::PeerId p;
  p.addr = "zz-fab-" + owner_addr;
  const auto digest = crypto::Sha256::hash(bytes_of(p.addr));
  std::copy(digest.begin(), digest.end(), p.key.begin());
  return p;
}

}  // namespace

struct NetworkSim::HarnessNode {
  std::size_t index = 0;
  bool malicious = false;
  bool alive = false;
  bool joined = false;
  sim::TimePoint launch_at = 0;
  /// Identity and key material cached outside NodeState so they survive a
  /// simulated crash (the PeerId of record; the seed rebuilds the signer).
  core::PeerId self;
  Bytes seed;
  /// durable_nodes only. The store models the disk: it survives the crash
  /// that destroys everything else, and the journal is recreated over it at
  /// restart exactly as a restarted process would reopen its data dir.
  std::shared_ptr<storage::MemorySegmentStore> store;
  std::unique_ptr<storage::NodeStore> journal;
  std::unique_ptr<core::NodeState> state;
  /// Per-node verification front-end (memos are verifier-side state). All
  /// engines share the sim-wide registry, so cache counters aggregate
  /// network-wide; sync_metrics() re-derives the occupancy gauges.
  std::unique_ptr<core::VerificationEngine> engine;
  Rng rng{0};
  std::unordered_set<std::string> reported_leavers;
  std::unordered_set<std::string> quarantined;  ///< addrs this node refuses
  std::size_t adv_initiations = 0;  ///< equivocators alternate per initiation
  // Coverage bitset (distinct peers ever held), built lazily.
  std::vector<std::uint64_t> coverage_bits;
  std::size_t coverage_count = 0;
};

/// One shuffle event captured by the wave-parallel drive (docs/PARALLELISM.md).
/// The plan phase fills the sequential-prologue fields in event order; the
/// build/exec phases (worker threads) only touch this event's two nodes plus
/// the event's own slots; the merge phase folds scratch back in event order.
struct NetworkSim::WaveEvent {
  bool skip = false;       ///< prologue finished the event; only the re-arm remains
  std::size_t idx = 0;     ///< initiator
  std::size_t pidx = 0;    ///< responder (full events only)
  sim::TimePoint when = 0; ///< the event's original timestamp (re-arm base)
  core::PartnerChoice choice;
  core::Round rj = 0;
  bool verify = false;
  // Build outputs.
  core::ShuffleOffer offer;
  bool attacked = false;
  double history_sample = 0.0;
  core::GatherSink sink;   ///< views alias `offer` — stable because events are heap-allocated
  std::size_t job_off = 0, job_count = 0, preloaded = 0;
  // Exec outputs, merged into stats_ at the barrier in event order.
  HarnessStats scratch;
};

NetworkSim::NetworkSim(ExperimentConfig config)
    : config_(std::move(config)),
      provider_(config_.use_real_crypto ? crypto::make_real_crypto()
                                        : crypto::make_fast_crypto()),
      rng_(config_.seed) {
  AN_ENSURE(config_.network_size >= 2);
  AN_ENSURE(config_.f >= config_.l && config_.l >= 1);
  if (config_.fault_plan) faults_.emplace(*config_.fault_plan);
  if (parallel()) {
    pool_ = std::make_unique<util::WorkerPool>(config_.threads);
    pooled_ = std::make_unique<crypto::PooledProvider>(*provider_, pool_.get());
    in_wave_.assign(config_.network_size, 0);
    // Smallest delay schedule_shuffle can emit, minus one: a wave started at
    // T may batch events up to T + rearm_bound_ and still flush before any
    // deferred re-arm's absolute time, so schedule_at never lands in the
    // past and re-arm ordering matches the sequential drive exactly.
    rearm_bound_ = std::max<sim::Duration>(
        0, static_cast<sim::Duration>(static_cast<double>(config_.shuffle_period) *
                                      (1.0 - config_.shuffle_jitter_frac)) -
               1);
  }

  node_config_.max_peerset = config_.f;
  node_config_.shuffle_length = config_.l;
  node_config_.history_limit = config_.history_limit;
  node_config_.checkpoint_interval = config_.checkpoint_interval;
  node_config_.sampler = config_.sampler;

  nodes_.reserve(config_.network_size);
  const std::size_t lanes =
      (config_.network_size + config_.lane_size - 1) / config_.lane_size;
  std::vector<sim::TimePoint> lane_clock(lanes, 0);

  for (std::size_t i = 0; i < config_.network_size; ++i) {
    auto hn = std::make_unique<HarnessNode>();
    hn->index = i;
    hn->malicious = rng_.chance(config_.pm);
    hn->rng = rng_.fork();

    Bytes seed(32);
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng_.next_u64());
    auto signer = provider_->make_signer(seed);
    core::PeerId id{addr_of(i), signer->public_key()};
    hn->self = id;
    hn->seed = seed;
    hn->state = std::make_unique<core::NodeState>(id, provider_->make_signer(seed),
                                                  node_config_);
    if (config_.durable_nodes) {
      hn->store = std::make_shared<storage::MemorySegmentStore>();
      hn->journal = std::make_unique<storage::NodeStore>(hn->store);
      hn->state->set_journal(hn->journal.get());
    }
    hn->engine = std::make_unique<core::VerificationEngine>(
        *provider_, config_.verification, &metrics_);

    const std::size_t lane = i % lanes;
    lane_clock[lane] += hn->rng.uniform_range(0, config_.launch_spacing_max);
    hn->launch_at = lane_clock[lane];

    addr_to_index_[id.addr] = i;
    nodes_.push_back(std::move(hn));
  }
  if (config_.track_shuffle_pairs) {
    AN_ENSURE_MSG(config_.network_size <= 2048, "heatmap tracking is for small nets");
    shuffle_pairs_.assign(config_.network_size,
                          std::vector<std::uint8_t>(config_.network_size, 0));
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    sim_.schedule_at(nodes_[i]->launch_at, [this, i] { launch_node(i); });
  }
}

NetworkSim::~NetworkSim() = default;

sim::TimePoint NetworkSim::now() const { return sim_.now(); }

void NetworkSim::sync_metrics() {
  // Counters are monotonic adds; bring each up to the struct's value so the
  // hot shuffle loop keeps its plain-integer bookkeeping.
  const auto sync_counter = [this](const char* name, std::uint64_t value) {
    const obs::MetricId id = metrics_.counter(name);
    const std::uint64_t have = metrics_.counter_value(id);
    if (value > have) metrics_.add(id, value - have);
  };
  sync_counter("harness.shuffles_attempted", stats_.shuffles_attempted);
  sync_counter("harness.shuffles_completed", stats_.shuffles_completed);
  sync_counter("harness.shuffles_verified", stats_.shuffles_verified);
  sync_counter("harness.verification_failures", stats_.verification_failures);
  sync_counter("harness.dead_partner_hits", stats_.dead_partner_hits);
  sync_counter("harness.refused_cross_group", stats_.refused_cross_group);
  sync_counter("harness.leave_reports", stats_.leave_reports);
  sync_counter("harness.fault_failures", stats_.fault_failures);
  if (config_.adversary.any()) {
    // Only materialized under an active adversary, so scrapes from every
    // pre-existing bench stay byte-identical.
    sync_counter("harness.byz.attacks", stats_.byz_attacks);
    sync_counter("harness.byz.detections", stats_.byz_detections);
    sync_counter("harness.byz.quarantines", stats_.byz_quarantines);
    sync_counter("harness.byz.refused_quarantined", stats_.byz_refused_quarantined);
  }
  if (config_.durable_nodes) {
    // Durability series follow the byz.* rule: they only materialize when
    // the feature is on, so scrapes from every pre-existing bench stay
    // byte-identical.
    sync_counter("harness.recovery.crashes", recovery_crashes_);
    sync_counter("harness.recovery.restarts", recovery_restarts_);
    sync_counter("harness.recovery.entries_replayed", recovery_entries_replayed_);
    std::uint64_t trimmed = 0, journaled = 0;
    for (const auto& n : nodes_) {
      // first_index() counts entries trimmed from the in-memory window —
      // the silent proof degradation this counter makes visible.
      if (n->state) trimmed += n->state->history().first_index();
      if (n->journal) journaled += n->journal->entry_count();
    }
    sync_counter("harness.history.trimmed", trimmed);
    metrics_.set(metrics_.gauge("harness.journal.entries"),
                 static_cast<double>(journaled));
  }
  metrics_.set(metrics_.gauge("harness.network_size"),
               static_cast<double>(nodes_.size()));
  metrics_.set(metrics_.gauge("harness.alive"), static_cast<double>(alive_count_));
  metrics_.set(metrics_.gauge("harness.joined"), static_cast<double>(joined_count_));
  metrics_.set(metrics_.gauge("harness.rounds_completed"),
               static_cast<double>(rounds_completed_));
  // The per-node engines share this registry, so every engine's occupancy
  // write clobbers the previous one; restore network-wide totals here.
  // (Hit/miss/evict are counters, which aggregate correctly on their own.)
  std::uint64_t occ_sig = 0, occ_vrf = 0, occ_memo = 0;
  for (const auto& n : nodes_) {
    if (!n->engine) continue;
    occ_sig += n->engine->sig_cache_size();
    occ_vrf += n->engine->vrf_cache_size();
    occ_memo += n->engine->history_memo_size();
  }
  metrics_.set(metrics_.gauge("verify.cache.sig.occupancy"),
               static_cast<double>(occ_sig));
  metrics_.set(metrics_.gauge("verify.cache.vrf.occupancy"),
               static_cast<double>(occ_vrf));
  metrics_.set(metrics_.gauge("verify.cache.history.occupancy"),
               static_cast<double>(occ_memo));
}

void NetworkSim::scrape_metrics(obs::Sink& sink) {
  sync_metrics();
  metrics_.scrape_to(sink, sim_.now());
  sink.flush();
}

void NetworkSim::write_metrics_json(const std::string& path) {
  obs::JsonLinesSink sink(path);
  scrape_metrics(sink);
}

void NetworkSim::launch_node(std::size_t idx) {
  // Bootstrap reads arbitrary peersets and schedules: the network must be
  // settled first (sequential ordering — the pending events all predate us).
  if (parallel()) flush_wave();
  HarnessNode& hn = *nodes_[idx];
  hn.alive = true;
  ++alive_count_;

  // Bootstrap through a random already-joined node of the compatible group
  // (in separate-overlay mode the coalitions never mix, Sec. IV-B).
  std::vector<std::size_t> candidates;
  for (const auto& other : nodes_) {
    if (!other->alive || !other->joined || other->index == idx) continue;
    if (config_.malicious_mode == MaliciousMode::kSeparateOverlay &&
        other->malicious != hn.malicious) {
      continue;
    }
    candidates.push_back(other->index);
  }

  if (candidates.empty()) {
    hn.state->init_as_seed();
    hn.joined = true;
  } else {
    const std::size_t bn_idx = candidates[hn.rng.uniform(candidates.size())];
    HarnessNode& bn = *nodes_[bn_idx];
    // Bootstrap provides itself plus its depth-d neighborhood (Sec. IV-A).
    std::vector<core::PeerId> offer = {bn.state->self()};
    for (const std::size_t n : neighborhood_indices(bn_idx, config_.d)) {
      offer.push_back(nodes_[n]->state->self());
    }
    const Bytes stamp =
        bn.state->signer().sign(core::join_stamp_payload(hn.state->self().addr));
    const core::Draw draw =
        core::sampler_backend(config_.sampler)
            .draw(hn.state->signer(), core::Peerset(offer), config_.f,
                  "an.join.sample", stamp);
    hn.state->apply_join(bn.state->self(), stamp, draw.sample);
    hn.joined = true;
  }
  ++joined_count_;
  update_coverage(hn);
  schedule_shuffle(idx);
}

void NetworkSim::schedule_shuffle(std::size_t idx) {
  HarnessNode& hn = *nodes_[idx];
  const double jitter = (hn.rng.uniform01() * 2.0 - 1.0) * config_.shuffle_jitter_frac;
  const auto delay = static_cast<sim::Duration>(
      static_cast<double>(config_.shuffle_period) * (1.0 + jitter));
  if (parallel()) {
    // plan_shuffle defers the re-arm to the wave barrier (same jitter draw,
    // same absolute timestamp — see rearm_shuffle_at).
    sim_.schedule(std::max<sim::Duration>(delay, 1), [this, idx] {
      if (nodes_[idx]->alive) plan_shuffle(idx);
    });
    return;
  }
  sim_.schedule(std::max<sim::Duration>(delay, 1), [this, idx] {
    if (nodes_[idx]->alive) {
      do_shuffle(idx);
      schedule_shuffle(idx);
    }
  });
}

std::size_t NetworkSim::index_of(const core::PeerId& peer) const {
  const auto it = addr_to_index_.find(peer.addr);
  AN_ENSURE_MSG(it != addr_to_index_.end(), "unknown peer address");
  return it->second;
}

void NetworkSim::do_shuffle(std::size_t idx) {
  HarnessNode& hn = *nodes_[idx];
  if (!hn.joined || hn.state->peerset().empty()) return;
  ++stats_.shuffles_attempted;

  const auto choice = core::choose_partner(*hn.state);
  if (!choice) {
    hn.state->skip_round();
    return;
  }
  const std::size_t pidx = index_of(choice->partner);
  HarnessNode& partner = *nodes_[pidx];

  // Root span for the synchronous exchange; ended with an outcome tag on
  // every exit path below.
  std::uint64_t root = 0;
  if (tracer_ != nullptr) {
    root = tracer_->begin_span("shuffle", hn.state->self().addr, sim_.now(), {});
    tracer_->attr(root, "partner", choice->partner.addr);
    tracer_->attr(root, "round", std::to_string(hn.state->round()));
  }
  const auto end_root = [&](const char* outcome) {
    if (root != 0) {
      tracer_->attr(root, "outcome", outcome);
      tracer_->end_span(root, sim_.now());
    }
  };

  if (!partner.alive) {
    ++stats_.dead_partner_hits;
    end_root("dead_partner");
    handle_dead_partner(idx, pidx);
    return;
  }
  if (partner.quarantined.contains(hn.state->self().addr) ||
      hn.quarantined.contains(partner.state->self().addr)) {
    // A quarantined pair refuses contact in either direction (mirrors
    // core::Node's inbound drop); the initiator burns the round.
    ++stats_.byz_refused_quarantined;
    end_root("refused_quarantined");
    hn.state->skip_round();
    return;
  }
  if (config_.malicious_mode == MaliciousMode::kSeparateOverlay &&
      partner.malicious != hn.malicious) {
    // Cross-coalition contact is refused; the initiator burns the round.
    ++stats_.refused_cross_group;
    end_root("refused_cross_group");
    hn.state->skip_round();
    return;
  }
  if (faults_) {
    // Synchronous exchange: a drop on any of the four logical legs (or a
    // crashed endpoint) fails the whole shuffle and the initiator burns the
    // round. No retries here — core::Node models those.
    const std::string& a = hn.state->self().addr;
    const std::string& b = partner.state->self().addr;
    const sim::TimePoint t = sim_.now();
    const auto leg = [&](const std::string& from, const std::string& to,
                         core::MsgType type) {
      return faults_->decide(from, to, static_cast<std::uint32_t>(type), t).drop;
    };
    if (faults_->crashed(a, t) || faults_->crashed(b, t) ||
        leg(a, b, core::MsgType::kRoundQuery) ||
        leg(b, a, core::MsgType::kRoundReply) ||
        leg(a, b, core::MsgType::kShuffleOffer) ||
        leg(b, a, core::MsgType::kShuffleResponse)) {
      ++stats_.fault_failures;
      end_root("fault");
      hn.state->skip_round();
      return;
    }
  }

  const core::Round rj = partner.state->round();
  core::ShuffleOffer offer = core::make_offer(*hn.state, *choice, rj);
  const bool attacked = hn.malicious && config_.adversary.any() &&
                        apply_adversary(hn, offer, choice->partner);
  if (attacked) ++stats_.byz_attacks;
  history_samples_.add(static_cast<double>(offer.history_suffix.size()));

  // Partner leg: verify + commit happen on the responder, so they get their
  // own child span under the initiator's root.
  std::uint64_t respond = 0;
  obs::TraceContext root_ctx;
  if (root != 0) {
    root_ctx = tracer_->context(root);
    respond = tracer_->begin_span("shuffle.respond", partner.state->self().addr,
                                  sim_.now(), root_ctx);
  }
  const auto end_respond = [&](const char* outcome) {
    if (respond != 0) {
      tracer_->attr(respond, "outcome", outcome);
      tracer_->end_span(respond, sim_.now());
    }
  };

  const bool verify = rng_.chance(config_.verify_fraction);
  if (verify) {
    ++stats_.shuffles_verified;
    if (const auto v = core::verify_offer(offer, *partner.state, rj, *partner.engine);
        !v) {
      if (attacked) {
        // Detection: the responder caught the mutation and quarantines the
        // initiator. Honest failures stay in verification_failures so the
        // "MUST stay 0 with honest nodes" invariant keeps its teeth.
        ++stats_.byz_detections;
        quarantine(partner, hn.state->self(), stats_,
                   respond != 0 ? tracer_->context(respond) : root_ctx);
      } else {
        ++stats_.verification_failures;
      }
      end_respond("verify_failed");
      end_root("rejected");
      hn.state->skip_round();
      return;
    }
  }
  const auto response = core::make_response_and_commit(*partner.state, offer);
  end_respond("committed");
  if (verify) {
    if (const auto v = core::verify_response(response, *hn.state, offer, *hn.engine);
        !v) {
      ++stats_.verification_failures;
      end_root("response_rejected");
      hn.state->skip_round();
      return;
    }
  }
  core::apply_offer_outcome(*hn.state, offer, response);
  end_root("completed");
  ++stats_.shuffles_completed;
  ++shuffle_delta_;

  purge_zombies(hn);
  purge_zombies(partner);
  update_coverage(hn);
  update_coverage(partner);
  if (config_.track_shuffle_pairs) {
    shuffle_pairs_[idx][pidx] = 1;
    shuffle_pairs_[pidx][idx] = 1;
  }
}

bool NetworkSim::apply_adversary(HarnessNode& hn, core::ShuffleOffer& offer,
                                 const core::PeerId& partner) {
  // Mirrors the attack block in core::Node::on_round_reply, adapted to the
  // synchronous exchange: there is no cross-exchange gossip here, so the
  // equivocating claim is left inconsistent with the (honestly drawn) VRF
  // proofs and detection runs entirely through the responder's verify path.
  const core::AdversaryPolicy& adv = config_.adversary;
  bool mutated = false;
  if (adv.equivocate && (hn.adv_initiations++ % 2 == 1) &&
      !offer.history_suffix.empty() &&
      offer.history_suffix.back().kind != core::EntryKind::kLeave &&
      hn.rng.uniform01() < adv.attack_rate) {
    offer.history_suffix.back().in.push_back(fabricated_peer(hn.state->self().addr));
    offer.claimed_peerset =
        core::UpdateHistory::reconstruct(offer.history_suffix).sorted();
    mutated = true;
  }
  if (adv.bias_sample && hn.rng.uniform01() < adv.attack_rate) {
    // Swap a hand-picked member (a colluder if one is in reach) into the
    // sample while keeping the original proofs.
    std::optional<core::PeerId> sub;
    for (const auto& p : offer.claimed_peerset) {
      const bool in_sample =
          std::any_of(offer.sample.begin(), offer.sample.end(),
                      [&](const core::PeerId& s) { return s.addr == p.addr; });
      if (in_sample || p.addr == partner.addr || p.addr == hn.state->self().addr) {
        continue;
      }
      if (adv.colludes_with(p.addr)) {
        sub = p;
        break;
      }
      if (!sub) sub = p;
    }
    if (sub && !offer.sample.empty()) {
      offer.sample.front() = *sub;
      mutated = true;
    }
  }
  if (adv.forge_history && !offer.history_suffix.empty() &&
      !offer.history_suffix.back().signature.empty() &&
      hn.rng.uniform01() < adv.attack_rate) {
    offer.history_suffix.back().signature.front() ^= 0x01;
    mutated = true;
  }
  if (adv.truncate_history && !offer.history_suffix.empty() &&
      hn.rng.uniform01() < adv.attack_rate) {
    offer.history_suffix.erase(offer.history_suffix.begin());
    mutated = true;
  }
  return mutated;
}

void NetworkSim::quarantine(HarnessNode& observer, const core::PeerId& accused,
                            HarnessStats& stats, obs::TraceContext ctx) {
  if (!observer.quarantined.insert(accused.addr).second) return;
  ++stats.byz_quarantines;
  // Standing is part of the durable record: a quarantine must survive a
  // crash, or a restarted node would re-trust a peer it already caught.
  if (observer.journal) observer.journal->on_standing(accused.addr, false, "");
  if (tracer_ != nullptr) {
    const std::uint64_t s = tracer_->begin_span(
        "accuse.quarantine", observer.state->self().addr, sim_.now(), ctx);
    tracer_->attr(s, "peer", accused.addr);
    tracer_->end_span(s, sim_.now());
  }
  // Quarantine doubles as a local leave record so the accused drains from
  // the observer's peerset and the zombie purge keeps it out.
  record_leave(observer, accused, stats);
}

void NetworkSim::drop_cached_verdicts(HarnessNode& node, const core::PeerId& peer) {
  if (node.engine) node.engine->invalidate(peer);
}

void NetworkSim::handle_dead_partner(std::size_t idx, std::size_t partner_idx) {
  HarnessNode& hn = *nodes_[idx];
  // Use the cached identity: a crashed partner has no NodeState to ask.
  const core::PeerId& leaver = nodes_[partner_idx]->self;
  hn.state->skip_round();
  record_leave(hn, leaver, stats_);
  // Inform the reporter's peers; each confirms liveness (the dead node
  // cannot answer a ping) and records the report.
  const auto peers = hn.state->peerset().sorted();
  for (const auto& p : peers) {
    const std::size_t pi = index_of(p);
    HarnessNode& peer = *nodes_[pi];
    if (!peer.alive || peer.reported_leavers.contains(leaver.addr)) continue;
    const auto [round, sig] = hn.state->make_leave_report(leaver);
    peer.state->apply_leave_report(hn.state->self(), round, sig, leaver);
    peer.reported_leavers.insert(leaver.addr);
    drop_cached_verdicts(peer, leaver);
  }
}

void NetworkSim::record_leave(HarnessNode& reporter_node, const core::PeerId& leaver,
                              HarnessStats& stats) {
  if (reporter_node.reported_leavers.contains(leaver.addr)) {
    // Already recorded once; just drop it again if it crept back.
    if (reporter_node.state->peerset().contains(leaver)) {
      const auto [round, sig] = reporter_node.state->make_leave_report(leaver);
      reporter_node.state->apply_leave_report(reporter_node.state->self(), round, sig,
                                              leaver);
    }
    return;
  }
  ++stats.leave_reports;
  reporter_node.reported_leavers.insert(leaver.addr);
  const auto [round, sig] = reporter_node.state->make_leave_report(leaver);
  reporter_node.state->apply_leave_report(reporter_node.state->self(), round, sig, leaver);
  // A recorded leaver's memos must never vouch for it again (it may return
  // under the same key after a quarantine-style record).
  drop_cached_verdicts(reporter_node, leaver);
}

void NetworkSim::purge_zombies(HarnessNode& node) {
  if (node.reported_leavers.empty()) return;
  std::vector<core::PeerId> zombies;
  for (const auto& p : node.state->peerset().sorted()) {
    if (node.reported_leavers.contains(p.addr)) zombies.push_back(p);
  }
  for (const auto& z : zombies) {
    const auto [round, sig] = node.state->make_leave_report(z);
    node.state->apply_leave_report(node.state->self(), round, sig, z);
  }
}

void NetworkSim::update_coverage(HarnessNode& node) {
  if (!config_.track_coverage) return;
  if (node.coverage_bits.empty()) {
    node.coverage_bits.assign((nodes_.size() + 63) / 64, 0);
  }
  for (const auto& p : node.state->peerset().sorted()) {
    const std::size_t i = index_of(p);
    auto& word = node.coverage_bits[i / 64];
    const std::uint64_t bit = std::uint64_t{1} << (i % 64);
    if (!(word & bit)) {
      word |= bit;
      ++node.coverage_count;
    }
  }
}

// --- Wave-parallel drive (threads >= 1) --------------------------------------
//
// plan_shuffle runs at the event's own timestamp, in event order, and performs
// everything the sequential do_shuffle would have done up to (and including)
// the global-RNG draw: partner selection, the refusal/fault legs, plan-time
// stats. The expensive remainder — offer build + adversary mutation, offer
// verification, commit — is deferred into wave_ and executed in parallel at
// flush time over PROVABLY disjoint node pairs (any plan whose initiator or
// partner overlaps a pending event flushes first). Cache misses gathered from
// every planned verification resolve through ONE global verify_batch on the
// shared worker pool. See docs/PARALLELISM.md for the bit-identity argument.

void NetworkSim::plan_shuffle(std::size_t idx) {
  if (in_wave_[idx] != 0) flush_wave();
  HarnessNode& hn = *nodes_[idx];
  const sim::TimePoint when = sim_.now();
  const auto push = [&](std::unique_ptr<WaveEvent> ev) {
    wave_.push_back(std::move(ev));
    if (wave_.size() == 1) wave_deadline_ = when + rearm_bound_;
  };
  const auto push_skip = [&] {
    auto ev = std::make_unique<WaveEvent>();
    ev->skip = true;
    ev->idx = idx;
    ev->when = when;
    // No conflict registration: the prologue already applied every state
    // effect, so build/exec ignore the event and only the re-arm remains.
    push(std::move(ev));
  };

  if (!hn.joined || hn.state->peerset().empty()) {
    push_skip();
    return;
  }
  ++stats_.shuffles_attempted;

  const auto choice = core::choose_partner(*hn.state);
  if (!choice) {
    hn.state->skip_round();
    push_skip();
    return;
  }
  const std::size_t pidx = index_of(choice->partner);
  // `choice` stays valid across this flush: no pending event touches idx
  // (else we flushed above), so hn.state is exactly as choose_partner saw it.
  // Partner-side state is re-read below, AFTER the flush.
  if (in_wave_[pidx] != 0) flush_wave();
  HarnessNode& partner = *nodes_[pidx];

  if (!partner.alive) {
    // The leave fan-out touches the initiator's whole peerset; settle the
    // network first, then run the sequential path inline.
    flush_wave();
    ++stats_.dead_partner_hits;
    handle_dead_partner(idx, pidx);
    push_skip();
    return;
  }
  if (partner.quarantined.contains(hn.state->self().addr) ||
      hn.quarantined.contains(partner.state->self().addr)) {
    ++stats_.byz_refused_quarantined;
    hn.state->skip_round();
    push_skip();
    return;
  }
  if (config_.malicious_mode == MaliciousMode::kSeparateOverlay &&
      partner.malicious != hn.malicious) {
    ++stats_.refused_cross_group;
    hn.state->skip_round();
    push_skip();
    return;
  }
  if (faults_) {
    // Same legs, same FaultInjector RNG draws, same event order as the
    // sequential path (the injector owns its stream, so plan order IS its
    // sequential draw order).
    const std::string& a = hn.state->self().addr;
    const std::string& b = partner.state->self().addr;
    const sim::TimePoint t = sim_.now();
    const auto leg = [&](const std::string& from, const std::string& to,
                         core::MsgType type) {
      return faults_->decide(from, to, static_cast<std::uint32_t>(type), t).drop;
    };
    if (faults_->crashed(a, t) || faults_->crashed(b, t) ||
        leg(a, b, core::MsgType::kRoundQuery) ||
        leg(b, a, core::MsgType::kRoundReply) ||
        leg(a, b, core::MsgType::kShuffleOffer) ||
        leg(b, a, core::MsgType::kShuffleResponse)) {
      ++stats_.fault_failures;
      hn.state->skip_round();
      push_skip();
      return;
    }
  }

  // Full path. The verify draw moves ahead of the offer build relative to
  // do_shuffle, which is safe: nothing between them consumes rng_ (make_offer
  // and apply_adversary only touch the node's own signer and rng).
  auto ev = std::make_unique<WaveEvent>();
  ev->idx = idx;
  ev->pidx = pidx;
  ev->when = when;
  ev->choice = *choice;
  ev->rj = partner.state->round();
  ev->verify = rng_.chance(config_.verify_fraction);
  if (ev->verify) ++stats_.shuffles_verified;
  in_wave_[idx] = 1;
  in_wave_[pidx] = 1;
  push(std::move(ev));
  if (wave_.size() >= kMaxWave) flush_wave();
}

void NetworkSim::flush_wave() {
  if (wave_.empty()) return;

  // Phase 1 (parallel): build offers, apply adversary mutations, gather every
  // engine cache miss the planned verifications will need. Each item touches
  // only its own event's two nodes (disjoint by construction).
  const auto build = [this](std::size_t i) {
    WaveEvent& ev = *wave_[i];
    if (ev.skip) return;
    HarnessNode& hn = *nodes_[ev.idx];
    HarnessNode& partner = *nodes_[ev.pidx];
    ev.offer = core::make_offer(*hn.state, ev.choice, ev.rj);
    ev.attacked = hn.malicious && config_.adversary.any() &&
                  apply_adversary(hn, ev.offer, ev.choice.partner);
    if (ev.attacked) ++ev.scratch.byz_attacks;
    ev.history_sample = static_cast<double>(ev.offer.history_suffix.size());
    if (ev.verify) {
      core::gather_offer_checks(ev.offer, *partner.state, *partner.engine, ev.sink);
    }
  };
  pool_->run(wave_.size(), build);

  // Phase 2 (single global batch): every cache miss of the wave, resolved in
  // one verify_batch fanned across the persistent pool.
  std::vector<crypto::VerifyJob> jobs;
  for (auto& evp : wave_) {
    evp->job_off = jobs.size();
    evp->job_count = evp->sink.jobs.size();
    jobs.insert(jobs.end(), evp->sink.jobs.begin(), evp->sink.jobs.end());
  }
  std::vector<crypto::VerifyVerdict> verdicts(jobs.size());
  if (!jobs.empty()) pooled_->verify_batch(jobs, verdicts);

  // Phase 3 (parallel): preload each responder engine with its slice of the
  // verdicts, then replay the synchronous exchange cache-hot. Same node
  // disjointness as phase 1; counter bumps go to the per-event scratch.
  const auto exec = [this, &jobs, &verdicts](std::size_t i) {
    WaveEvent& ev = *wave_[i];
    if (ev.skip) return;
    HarnessNode& hn = *nodes_[ev.idx];
    HarnessNode& partner = *nodes_[ev.pidx];
    if (ev.job_count > 0) {
      ev.preloaded = partner.engine->preload(
          std::span<const crypto::VerifyJob>(jobs).subspan(ev.job_off, ev.job_count),
          std::span<const crypto::VerifyVerdict>(verdicts).subspan(ev.job_off,
                                                                   ev.job_count));
    }
    if (ev.verify) {
      if (const auto v =
              core::verify_offer(ev.offer, *partner.state, ev.rj, *partner.engine);
          !v) {
        if (ev.attacked) {
          ++ev.scratch.byz_detections;
          quarantine(partner, hn.state->self(), ev.scratch);
        } else {
          ++ev.scratch.verification_failures;
        }
        hn.state->skip_round();
        return;
      }
    }
    const auto response = core::make_response_and_commit(*partner.state, ev.offer);
    if (ev.verify) {
      if (const auto v =
              core::verify_response(response, *hn.state, ev.offer, *hn.engine);
          !v) {
        ++ev.scratch.verification_failures;
        hn.state->skip_round();
        return;
      }
    }
    core::apply_offer_outcome(*hn.state, ev.offer, response);
    ++ev.scratch.shuffles_completed;
    purge_zombies(hn);
    purge_zombies(partner);
    update_coverage(hn);
    update_coverage(partner);
    if (config_.track_shuffle_pairs) {
      // Rows idx and pidx belong to this event alone (node disjointness).
      shuffle_pairs_[ev.idx][ev.pidx] = 1;
      shuffle_pairs_[ev.pidx][ev.idx] = 1;
    }
  };
  pool_->run(wave_.size(), exec);

  // Phase 4 (sequential merge, event order): fold scratch stats and history
  // samples back, then emit every deferred re-arm. Event order makes the
  // float accumulation, the per-node jitter draws and the re-arm sequence
  // numbers identical to the sequential drive.
  std::uint64_t preloaded_total = 0;
  for (auto& evp : wave_) {
    WaveEvent& ev = *evp;
    in_wave_[ev.idx] = 0;
    in_wave_[ev.pidx] = 0;
    if (!ev.skip) {
      history_samples_.add(ev.history_sample);
      stats_.shuffles_completed += ev.scratch.shuffles_completed;
      shuffle_delta_ += ev.scratch.shuffles_completed;
      stats_.shuffles_verified += ev.scratch.shuffles_verified;
      stats_.verification_failures += ev.scratch.verification_failures;
      stats_.leave_reports += ev.scratch.leave_reports;
      stats_.byz_attacks += ev.scratch.byz_attacks;
      stats_.byz_detections += ev.scratch.byz_detections;
      stats_.byz_quarantines += ev.scratch.byz_quarantines;
      preloaded_total += ev.preloaded;
    }
    rearm_shuffle_at(ev.idx, ev.when);
  }
  const std::uint64_t jobs_total = jobs.size();
  wave_.clear();

  // Interned on the first flush only, so sequential-mode scrapes never see
  // the series (the byz.*/durability lazy-interning rule).
  if (!wave_ids_interned_) {
    wave_ids_interned_ = true;
    id_flushes_ = metrics_.counter("verify.epoch_batch.flushes");
    id_jobs_ = metrics_.counter("verify.epoch_batch.jobs");
    id_preloaded_ = metrics_.counter("verify.epoch_batch.preloaded");
  }
  metrics_.add(id_flushes_);
  metrics_.add(id_jobs_, jobs_total);
  metrics_.add(id_preloaded_, preloaded_total);
}

void NetworkSim::drive_until(sim::TimePoint deadline) {
  while (true) {
    const std::optional<sim::TimePoint> next = sim_.next_event_time();
    if (!next || *next > deadline) {
      if (!wave_.empty()) {
        // The flush may schedule re-arms inside the deadline; loop again.
        flush_wave();
        continue;
      }
      break;
    }
    if (!wave_.empty() && *next > wave_deadline_) {
      // Stepping past wave_deadline_ could overtake a deferred re-arm's
      // absolute time; flush while every re-arm is still in the future.
      flush_wave();
      continue;
    }
    sim_.step();
  }
  sim_.run_until(deadline);  // advances the clock; queue is already drained
}

void NetworkSim::rearm_shuffle_at(std::size_t idx, sim::TimePoint event_when) {
  // Identical jitter draw and identical absolute timestamp to the sequential
  // schedule_shuffle call that would have run at event_when; the
  // wave_deadline_ rule guarantees event_when + delay is still in the future.
  HarnessNode& hn = *nodes_[idx];
  const double jitter = (hn.rng.uniform01() * 2.0 - 1.0) * config_.shuffle_jitter_frac;
  const auto delay = static_cast<sim::Duration>(
      static_cast<double>(config_.shuffle_period) * (1.0 + jitter));
  sim_.schedule_at(event_when + std::max<sim::Duration>(delay, 1), [this, idx] {
    if (nodes_[idx]->alive) plan_shuffle(idx);
  });
}

void NetworkSim::run(std::size_t rounds,
                     const std::function<void(std::size_t)>& on_analysis) {
  if (parallel()) {
    // Tracing and metric timing are per-event instrumentation on the hot
    // path; waves run events on worker threads, where both would race.
    AN_ENSURE_MSG(tracer_ == nullptr,
                  "wave-parallel drive (threads >= 1) is incompatible with tracing");
    AN_ENSURE_MSG(!metrics_.timing_enabled(),
                  "wave-parallel drive (threads >= 1) is incompatible with timing");
  }
  if (!run_started_) {
    run_started_ = true;
    if (parallel()) {
      drive_until(0);
    } else {
      sim_.run_until(0);
    }
    if (on_analysis) on_analysis(0);
  }
  for (std::size_t i = 0; i < rounds; ++i) {
    ++rounds_completed_;
    const auto deadline = static_cast<sim::TimePoint>(rounds_completed_) *
                          config_.analysis_period;
    if (parallel()) {
      drive_until(deadline);
    } else {
      sim_.run_until(deadline);
    }
    if (on_analysis) on_analysis(rounds_completed_);
  }
}

void NetworkSim::schedule_churn(std::size_t count, sim::TimePoint start,
                                sim::Duration window) {
  // Choose victims among nodes that will have launched by `start`.
  std::vector<std::size_t> pool;
  for (const auto& n : nodes_) {
    if (n->launch_at < start) pool.push_back(n->index);
  }
  AN_ENSURE_MSG(pool.size() >= count, "not enough nodes for churn");
  rng_.shuffle(pool);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t victim = pool[k];
    const auto when = start + (window > 0 ? rng_.uniform_range(0, window) : 0);
    sim_.schedule_at(when, [this, victim] {
      // Pending wave events may involve the victim; settle them first (they
      // all predate this event, so this is the sequential order).
      if (parallel()) flush_wave();
      HarnessNode& hn = *nodes_[victim];
      if (!hn.alive) return;
      hn.alive = false;
      --alive_count_;
      if (hn.joined) --joined_count_;
    });
  }
}

void NetworkSim::schedule_crash_restart(std::size_t idx, sim::TimePoint crash_at,
                                        sim::TimePoint restart_at) {
  AN_ENSURE_MSG(config_.durable_nodes, "crash/restart recovery needs durable_nodes");
  AN_ENSURE_MSG(restart_at > crash_at, "restart must follow the crash");
  AN_ENSURE(idx < nodes_.size());
  sim_.schedule_at(crash_at, [this, idx] {
    if (parallel()) flush_wave();  // see schedule_churn
    HarnessNode& hn = *nodes_[idx];
    if (!hn.alive) return;
    hn.alive = false;  // also terminates the schedule_shuffle timer chain
    --alive_count_;
    if (hn.joined) --joined_count_;
    hn.joined = false;
    // Process death: every byte of RAM is gone — protocol state, verifier
    // caches, leaver/quarantine sets, even the journal object. Only
    // hn.store (the disk) survives to seed recovery.
    hn.state.reset();
    hn.engine.reset();
    hn.journal.reset();
    hn.reported_leavers.clear();
    hn.quarantined.clear();
    ++recovery_crashes_;
  });
  sim_.schedule_at(restart_at, [this, idx] { restart_node(idx); });
}

void NetworkSim::restart_node(std::size_t idx) {
  if (parallel()) flush_wave();  // see schedule_churn
  HarnessNode& hn = *nodes_[idx];
  if (hn.alive || hn.state != nullptr) return;  // the crash never fired
  // Reopen the data dir: a fresh journal over the surviving store, replayed
  // into recovery state exactly as a restarted process would.
  hn.journal = std::make_unique<storage::NodeStore>(hn.store);
  const core::RecoveredNode rec = hn.journal->load();
  hn.state = std::make_unique<core::NodeState>(
      hn.self, provider_->make_signer(hn.seed), node_config_);
  hn.state->set_journal(hn.journal.get());
  hn.state->restore(rec);
  for (const auto& s : rec.standing) {
    hn.quarantined.insert(s.addr);
    hn.reported_leavers.insert(s.addr);  // keeps the zombie purge armed
  }
  hn.engine = std::make_unique<core::VerificationEngine>(*provider_,
                                                         config_.verification,
                                                         &metrics_);
  hn.alive = true;
  hn.joined = true;
  ++alive_count_;
  ++joined_count_;
  ++recovery_restarts_;
  recovery_entries_replayed_ += rec.entries.size();
  update_coverage(hn);
  schedule_shuffle(idx);
}

std::size_t NetworkSim::malicious_alive_count() const {
  std::size_t c = 0;
  for (const auto& n : nodes_) {
    if (n->alive && n->malicious) ++c;
  }
  return c;
}

bool NetworkSim::is_alive(std::size_t idx) const { return nodes_[idx]->alive; }
bool NetworkSim::is_malicious(std::size_t idx) const { return nodes_[idx]->malicious; }
bool NetworkSim::is_joined(std::size_t idx) const { return nodes_[idx]->joined; }

const core::NodeState& NetworkSim::node_state(std::size_t idx) const {
  return *nodes_[idx]->state;
}

analysis::Adjacency NetworkSim::snapshot_adjacency() const {
  analysis::Adjacency adj(nodes_.size());
  for (const auto& n : nodes_) {
    if (!n->alive || !n->joined) continue;
    auto& row = adj[n->index];
    for (const auto& p : n->state->peerset().sorted()) {
      row.push_back(index_of(p));
    }
    std::sort(row.begin(), row.end());
  }
  return adj;
}

std::vector<std::size_t> NetworkSim::neighborhood_indices(std::size_t idx,
                                                          std::size_t depth) const {
  // BFS over live peersets; dead nodes still count as neighbors if referenced
  // (their peersets no longer expand), matching what a query flood would see.
  std::vector<std::size_t> result;
  std::unordered_set<std::size_t> visited = {idx};
  std::vector<std::size_t> frontier = {idx};
  for (std::size_t level = 0; level < depth && !frontier.empty(); ++level) {
    std::vector<std::size_t> next;
    for (const std::size_t u : frontier) {
      const HarnessNode& un = *nodes_[u];
      if (!un.alive || !un.joined) continue;
      for (const auto& p : un.state->peerset().sorted()) {
        const std::size_t v = index_of(p);
        if (!nodes_[v]->alive) continue;  // ping test fails during discovery
        if (visited.insert(v).second) {
          result.push_back(v);
          next.push_back(v);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

double NetworkSim::sample_avg_neighborhood(std::size_t depth, std::size_t samples,
                                           Rng& rng) const {
  std::vector<std::size_t> alive;
  for (const auto& n : nodes_) {
    if (n->alive && n->joined) alive.push_back(n->index);
  }
  if (alive.empty()) return 0.0;
  RunningStats stats;
  const std::size_t count = std::min(samples, alive.size());
  for (const std::size_t i : rng.sample_indices(alive.size(), count)) {
    stats.add(static_cast<double>(neighborhood_indices(alive[i], depth).size()));
  }
  return stats.mean();
}

double NetworkSim::sample_avg_common(std::size_t depth, std::size_t pair_samples,
                                     Rng& rng) const {
  std::vector<std::size_t> alive;
  for (const auto& n : nodes_) {
    if (n->alive && n->joined) alive.push_back(n->index);
  }
  if (alive.size() < 2) return 0.0;
  RunningStats stats;
  for (std::size_t s = 0; s < pair_samples; ++s) {
    const std::size_t a = alive[rng.uniform(alive.size())];
    std::size_t b = a;
    while (b == a) b = alive[rng.uniform(alive.size())];
    const auto na = neighborhood_indices(a, depth);
    const auto nb = neighborhood_indices(b, depth);
    std::vector<std::size_t> common;
    std::set_intersection(na.begin(), na.end(), nb.begin(), nb.end(),
                          std::back_inserter(common));
    stats.add(static_cast<double>(common.size()));
  }
  return stats.mean();
}

Samples NetworkSim::sample_neighbor_malicious_fraction(std::size_t depth,
                                                       std::size_t samples,
                                                       Rng& rng) const {
  std::vector<std::size_t> alive;
  for (const auto& n : nodes_) {
    if (n->alive && n->joined && !n->malicious) alive.push_back(n->index);
  }
  Samples out;
  if (alive.empty()) return out;
  const std::size_t count = std::min(samples, alive.size());
  for (const std::size_t i : rng.sample_indices(alive.size(), count)) {
    const auto nbh = neighborhood_indices(alive[i], depth);
    if (nbh.empty()) continue;
    std::size_t bad = 0;
    for (const std::size_t v : nbh) {
      if (nodes_[v]->malicious) ++bad;
    }
    out.add(static_cast<double>(bad) / static_cast<double>(nbh.size()));
  }
  return out;
}

Samples NetworkSim::sample_candidate_malicious_fraction(std::size_t depth,
                                                        std::size_t witness_count,
                                                        std::size_t pair_samples,
                                                        Rng& rng,
                                                        bool exclude_common) const {
  std::vector<std::size_t> alive;
  for (const auto& n : nodes_) {
    if (n->alive && n->joined) alive.push_back(n->index);
  }
  Samples out;
  if (alive.size() < 2) return out;
  for (std::size_t s = 0; s < pair_samples; ++s) {
    const std::size_t a = alive[rng.uniform(alive.size())];
    std::size_t b = a;
    while (b == a) b = alive[rng.uniform(alive.size())];

    auto to_peers = [&](const std::vector<std::size_t>& idxs) {
      std::vector<core::PeerId> peers;
      peers.reserve(idxs.size());
      for (const std::size_t i : idxs) peers.push_back(nodes_[i]->state->self());
      return peers;  // sorted because addresses sort with indices
    };
    std::vector<std::size_t> na = neighborhood_indices(a, depth);
    std::vector<std::size_t> nb = neighborhood_indices(b, depth);
    if (na.empty() && nb.empty()) continue;

    if (!exclude_common) {
      // Ablation: no common-node exclusion — candidates are the raw sets.
      std::size_t bad = 0, total = 0;
      for (const auto* set : {&na, &nb}) {
        for (const std::size_t v : *set) {
          ++total;
          if (nodes_[v]->malicious) ++bad;
        }
      }
      if (total > 0) out.add(static_cast<double>(bad) / static_cast<double>(total));
      continue;
    }

    const auto plan = core::plan_witness_group(to_peers(na), to_peers(nb),
                                               nodes_[a]->state->self(),
                                               nodes_[b]->state->self(), witness_count);
    auto frac_bad = [&](const std::vector<core::PeerId>& cands) {
      if (cands.empty()) return 0.0;
      std::size_t bad = 0;
      for (const auto& p : cands) {
        if (nodes_[index_of(p)]->malicious) ++bad;
      }
      return static_cast<double>(bad) / static_cast<double>(cands.size());
    };
    const double denom = static_cast<double>(plan.quota_producer + plan.quota_consumer);
    if (denom == 0) continue;
    const double p = (static_cast<double>(plan.quota_producer) * frac_bad(plan.candidates_producer) +
                      static_cast<double>(plan.quota_consumer) * frac_bad(plan.candidates_consumer)) /
                     denom;
    out.add(p);
  }
  return out;
}

Samples NetworkSim::take_history_length_samples() {
  Samples out = std::move(history_samples_);
  history_samples_ = Samples{};
  return out;
}

std::uint64_t NetworkSim::take_shuffle_delta() {
  const std::uint64_t d = shuffle_delta_;
  shuffle_delta_ = 0;
  return d;
}

Samples NetworkSim::coverage_counts() const {
  AN_ENSURE_MSG(config_.track_coverage, "coverage tracking disabled");
  Samples out;
  for (const auto& n : nodes_) {
    if (n->alive && n->joined) out.add(static_cast<double>(n->coverage_count));
  }
  return out;
}

bool NetworkSim::ever_shuffled(std::size_t i, std::size_t j) const {
  AN_ENSURE_MSG(config_.track_shuffle_pairs, "pair tracking disabled");
  return shuffle_pairs_[i][j] != 0;
}

std::size_t NetworkSim::quarantined_by_count(std::size_t accused) const {
  const std::string& addr = nodes_[accused]->self.addr;  // valid even mid-crash
  std::size_t c = 0;
  for (const auto& n : nodes_) {
    if (n->alive && !n->malicious && n->quarantined.contains(addr)) ++c;
  }
  return c;
}

std::vector<core::HistoryEntry> NetworkSim::journal_entries(std::size_t idx,
                                                            std::uint64_t start,
                                                            std::size_t count) const {
  AN_ENSURE_MSG(config_.durable_nodes, "journal introspection needs durable_nodes");
  const HarnessNode& hn = *nodes_[idx];
  AN_ENSURE_MSG(hn.journal != nullptr, "node is mid-crash; journal not open");
  return hn.journal->read_entries(start, count);
}

std::size_t NetworkSim::quarantine_edges() const {
  std::size_t c = 0;
  for (const auto& n : nodes_) {
    if (n->alive) c += n->quarantined.size();
  }
  return c;
}

}  // namespace accountnet::harness
