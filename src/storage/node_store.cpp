#include "accountnet/storage/node_store.hpp"

#include <algorithm>
#include <map>

#include "accountnet/wire/codec.hpp"

namespace accountnet::storage {

namespace {

enum : std::uint8_t {
  kTagEntry = 1,
  kTagCheckpoint = 2,
  kTagRound = 3,
  kTagStanding = 4,
};

}  // namespace

NodeStore::NodeStore(std::shared_ptr<SegmentStore> store) : store_(std::move(store)) {
  for (const auto& rec : store_->load_all()) {
    if (!rec.empty() && rec.front() == kTagEntry) ++entry_count_;
  }
}

void NodeStore::on_entry(std::uint64_t index, const core::HistoryEntry& entry) {
  wire::Writer w;
  w.u8(kTagEntry);
  w.u64(index);
  core::encode_entry(w, entry);
  store_->append(w.data());
  store_->sync();
  ++entry_count_;
}

void NodeStore::on_checkpoint(const core::Checkpoint& ck) {
  wire::Writer w;
  w.u8(kTagCheckpoint);
  core::encode_checkpoint(w, ck);
  store_->append(w.data());
  // Seal the segment at the checkpoint boundary and pin the latest seal in
  // the metadata blob (atomic replace) so recovery finds it without relying
  // on the record scan.
  store_->rotate();
  store_->put_meta(ck.encode());
}

void NodeStore::on_round(core::Round next_round) {
  wire::Writer w;
  w.u8(kTagRound);
  w.u64(next_round);
  store_->append(w.data());
  store_->sync();
}

void NodeStore::on_standing(const std::string& addr, bool evicted,
                            const std::string& accuser) {
  wire::Writer w;
  w.u8(kTagStanding);
  w.str(addr);
  w.u8(evicted ? 1 : 0);
  w.str(accuser);
  store_->append(w.data());
  store_->sync();
}

core::RecoveredNode NodeStore::load() const {
  core::RecoveredNode rec;
  std::map<std::string, core::RecoveredNode::Standing> standing;
  try {
    for (const auto& raw : store_->load_all()) {
      wire::Reader r(raw);
      switch (r.u8()) {
        case kTagEntry: {
          const std::uint64_t index = r.u64();
          if (index != rec.first_index + rec.entries.size()) {
            throw StoreError("journal entry index gap");
          }
          rec.entries.push_back(core::decode_entry(r));
          break;
        }
        case kTagCheckpoint:
          rec.checkpoint = core::decode_checkpoint(r);
          break;
        case kTagRound:
          rec.next_round = std::max(rec.next_round, r.u64());
          break;
        case kTagStanding: {
          const std::string addr = r.str();
          const bool evicted = r.u8() != 0;
          const std::string accuser = r.str();
          auto& s = standing[addr];
          s.addr = addr;
          s.evicted = s.evicted || evicted;
          if (!accuser.empty() &&
              std::find(s.accusers.begin(), s.accusers.end(), accuser) ==
                  s.accusers.end()) {
            s.accusers.push_back(accuser);
          }
          break;
        }
        default:
          throw StoreError("unknown journal record tag");
      }
      r.expect_done();
    }
  } catch (const wire::DecodeError& e) {
    throw StoreError(std::string("undecodable journal record: ") + e.what());
  }
  // The metadata blob may be ahead of the record scan only in pathological
  // partial-crash orders; prefer whichever seal covers more entries.
  if (const auto meta = store_->get_meta()) {
    try {
      core::Checkpoint ck = core::Checkpoint::decode(*meta);
      if (!rec.checkpoint || ck.sealed_count > rec.checkpoint->sealed_count) {
        rec.checkpoint = std::move(ck);
      }
    } catch (const wire::DecodeError& e) {
      throw StoreError(std::string("undecodable checkpoint meta: ") + e.what());
    }
  }
  for (auto& [addr, s] : standing) rec.standing.push_back(std::move(s));
  return rec;
}

std::vector<core::HistoryEntry> NodeStore::read_entries(std::uint64_t start,
                                                        std::size_t count) const {
  std::vector<core::HistoryEntry> out;
  if (count == 0) return out;
  std::uint64_t index = 0;
  for (const auto& raw : store_->load_all()) {
    if (raw.empty() || raw.front() != kTagEntry) continue;
    if (index >= start) {
      wire::Reader r(raw);
      r.u8();
      r.u64();
      out.push_back(core::decode_entry(r));
      if (out.size() >= count) break;
    }
    ++index;
  }
  return out;
}

}  // namespace accountnet::storage
