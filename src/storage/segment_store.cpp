#include "accountnet/storage/segment_store.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace accountnet::storage {

namespace {

constexpr std::size_t kFrameHeader = 8;  ///< u32 length + u32 crc
constexpr std::uint32_t kMaxRecordLen = 64u << 20;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw StoreError(what + ": " + std::strerror(errno));
}

void write_fully(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("segment write");
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

Bytes read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("open " + path);
  Bytes out;
  std::array<std::uint8_t, 65536> buf;
  for (;;) {
    const ssize_t r = ::read(fd, buf.data(), buf.size());
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("read " + path);
    }
    if (r == 0) break;
    out.insert(out.end(), buf.data(), buf.data() + r);
  }
  ::close(fd);
  return out;
}

/// Parses one segment's frames into `records`. Returns the byte offset of
/// the first torn/corrupt frame (== file size when the segment is clean).
std::size_t parse_segment(const Bytes& data, std::vector<Bytes>& records) {
  std::size_t pos = 0;
  while (data.size() - pos >= kFrameHeader) {
    const std::uint32_t len = get_u32le(data.data() + pos);
    const std::uint32_t crc = get_u32le(data.data() + pos + 4);
    if (len > kMaxRecordLen || data.size() - pos - kFrameHeader < len) break;
    const BytesView payload(data.data() + pos + kFrameHeader, len);
    if (crc32(payload) != crc) break;
    records.emplace_back(payload.begin(), payload.end());
    pos += kFrameHeader + len;
  }
  return pos;
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  static const auto table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --- MemorySegmentStore -----------------------------------------------------

void MemorySegmentStore::append(BytesView record) {
  segments_.back().emplace_back(record.begin(), record.end());
}

void MemorySegmentStore::rotate() { segments_.emplace_back(); }

std::vector<Bytes> MemorySegmentStore::load_all() const {
  std::vector<Bytes> out;
  for (const auto& seg : segments_) out.insert(out.end(), seg.begin(), seg.end());
  return out;
}

void MemorySegmentStore::put_meta(BytesView blob) {
  meta_ = Bytes(blob.begin(), blob.end());
}

// --- FileSegmentStore -------------------------------------------------------

FileSegmentStore::FileSegmentStore(std::string dir) : dir_(std::move(dir)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw StoreError("create_directories " + dir_ + ": " + ec.message());

  for (const auto& de : fs::directory_iterator(dir_)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("segment-", 0) == 0 && name.size() > 12 &&
        name.substr(name.size() - 4) == ".log") {
      segment_indices_.push_back(
          std::stoull(name.substr(8, name.size() - 12)));
    }
  }
  std::sort(segment_indices_.begin(), segment_indices_.end());
  if (segment_indices_.empty()) segment_indices_.push_back(0);

  // Crash repair: a process death mid-append can only tear the tail of the
  // LAST segment. Truncate it back to its last whole frame before reopening
  // for append; earlier segments were sealed by rotate() and must be clean
  // (load_all() verifies them and throws otherwise).
  const std::string last = segment_path(segment_indices_.back());
  if (fs::exists(last)) {
    const Bytes data = read_file(last);
    std::vector<Bytes> scratch;
    const std::size_t good = parse_segment(data, scratch);
    if (good < data.size()) {
      if (::truncate(last.c_str(), static_cast<off_t>(good)) != 0) {
        throw_errno("truncate torn tail of " + last);
      }
    }
  }
  open_active(segment_indices_.back());
}

FileSegmentStore::~FileSegmentStore() {
  if (active_fd_ >= 0) ::close(active_fd_);
}

std::string FileSegmentStore::segment_path(std::uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof name, "segment-%06llu.log",
                static_cast<unsigned long long>(index));
  return dir_ + "/" + name;
}

void FileSegmentStore::open_active(std::uint64_t index) {
  if (active_fd_ >= 0) ::close(active_fd_);
  active_fd_ = ::open(segment_path(index).c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (active_fd_ < 0) throw_errno("open " + segment_path(index));
}

void FileSegmentStore::append(BytesView record) {
  if (record.size() > kMaxRecordLen) throw StoreError("record too large");
  Bytes frame;
  frame.reserve(kFrameHeader + record.size());
  put_u32le(frame, static_cast<std::uint32_t>(record.size()));
  put_u32le(frame, crc32(record));
  frame.insert(frame.end(), record.begin(), record.end());
  write_fully(active_fd_, frame.data(), frame.size());
}

void FileSegmentStore::sync() {
  if (::fsync(active_fd_) != 0) throw_errno("fsync active segment");
}

void FileSegmentStore::rotate() {
  sync();
  const std::uint64_t next = segment_indices_.back() + 1;
  segment_indices_.push_back(next);
  open_active(next);
}

std::vector<Bytes> FileSegmentStore::load_all() const {
  std::vector<Bytes> out;
  for (std::size_t i = 0; i < segment_indices_.size(); ++i) {
    const std::string path = segment_path(segment_indices_[i]);
    if (!std::filesystem::exists(path)) continue;
    const Bytes data = read_file(path);
    const std::size_t good = parse_segment(data, out);
    if (good < data.size() && i + 1 != segment_indices_.size()) {
      throw StoreError("corrupt frame in sealed segment " + path);
    }
  }
  return out;
}

void FileSegmentStore::put_meta(BytesView blob) {
  const std::string tmp = dir_ + "/meta.tmp";
  const std::string final_path = dir_ + "/meta.bin";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open " + tmp);
  try {
    write_fully(fd, blob.data(), blob.size());
    if (::fsync(fd) != 0) throw_errno("fsync " + tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    throw_errno("rename " + tmp);
  }
}

std::optional<Bytes> FileSegmentStore::get_meta() const {
  const std::string path = dir_ + "/meta.bin";
  if (!std::filesystem::exists(path)) return std::nullopt;
  return read_file(path);
}

}  // namespace accountnet::storage
