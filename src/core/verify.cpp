#include "accountnet/core/verify.hpp"

namespace accountnet::core {

const char* reason_string(VerifyError code) {
  switch (code) {
    case VerifyError::kNone: return "ok";

    case VerifyError::kSampleFromEmptyCandidates:
      return "sample claimed from empty candidate set";
    case VerifyError::kTooManyDrawProofs: return "too many draw proofs";
    case VerifyError::kExtraDrawProofs: return "extra proofs after sample completion";
    case VerifyError::kInvalidVrfProof: return "invalid VRF proof in sample draw";
    case VerifyError::kSampleIncomplete: return "sample stopped before completion";
    case VerifyError::kSampleMismatch: return "claimed sample deviates from VRF";

    case VerifyError::kRoundsNotAscending:
      return "history rounds not strictly ascending";
    case VerifyError::kJoinAfterRoundZero: return "join entry after round 0";
    case VerifyError::kInvalidJoinStamp: return "invalid bootstrap entry stamp";
    case VerifyError::kJoinRemovesPeers: return "join entry must not remove peers";
    case VerifyError::kInvalidShuffleSignature:
      return "invalid shuffle counterpart signature";
    case VerifyError::kSelfShuffleEntry: return "self-shuffle entry";
    case VerifyError::kMalformedLeaveEntry: return "malformed leave entry";
    case VerifyError::kInvalidLeaveSignature: return "invalid leave-report signature";
    case VerifyError::kOwnerInsertedIntoOwnPeerset:
      return "history inserts owner into own peerset";
    case VerifyError::kOwnerFilledIntoOwnPeerset:
      return "history fills owner into own peerset";
    case VerifyError::kReconstructionMismatch:
      return "reconstructed peerset does not match claim";

    case VerifyError::kStaleRoundNonce: return "offer echoes a stale round nonce";
    case VerifyError::kSelfShuffle: return "node cannot shuffle with itself";
    case VerifyError::kInvalidInitiatorRoundSignature:
      return "invalid initiator round signature";
    case VerifyError::kInvalidResponderRoundSignature:
      return "invalid responder round signature";
    case VerifyError::kDuplicatePeersetClaim:
      return "claimed peerset contains duplicates";
    case VerifyError::kPeersetTooLarge: return "claimed peerset too large";
    case VerifyError::kHistoryBeyondOfferedRound:
      return "history suffix extends past the offered round";
    case VerifyError::kHistoryBeyondResponderRound:
      return "history suffix extends past the responder round";
    case VerifyError::kResponderNotInPeerset:
      return "responder not in initiator peerset";
    case VerifyError::kPartnerSelectionMismatch:
      return "partner selection not dictated by VRF";
    case VerifyError::kOfferSampleMismatch: return "offer sample not dictated by VRF";
    case VerifyError::kResponderRoundChanged:
      return "responder round changed mid-shuffle";
    case VerifyError::kResponseSampleMismatch:
      return "response sample not dictated by VRF";

    case VerifyError::kAuditNotShuffleEntries:
      return "cross audit applies to shuffle entries";
    case VerifyError::kAuditEntriesUnlinked: return "entries do not reference each other";
    case VerifyError::kAuditNonceMismatch: return "round nonces do not cross-match";
    case VerifyError::kAuditInitiatorFlagMismatch:
      return "initiator flag inconsistent across the pair";
    case VerifyError::kAuditInPeerNeverOffered: return "in-peer was never offered";
    case VerifyError::kAuditCounterpartInPeerNeverOffered:
      return "counterpart in-peer was never offered";
    case VerifyError::kAuditRefillNotFromOut:
      return "refill not drawn from the out-set";
    case VerifyError::kAuditCounterpartRefillNotFromOut:
      return "counterpart refill not drawn from the out-set";
    case VerifyError::kAuditInitiatedWithNonPeer:
      return "initiated shuffle with a non-peer";
    case VerifyError::kAuditRemovedNonMember: return "removed non-member peer";
    case VerifyError::kNeighborhoodGhostNode:
      return "claimed neighborhood contains unreachable node";
    case VerifyError::kNeighborhoodHiddenNode:
      return "claimed neighborhood hides reachable node";
    case VerifyError::kNeighborhoodUnderReported:
      return "random walk reached undeclared node (claimed neighborhood under-reports)";

    case VerifyError::kMissingBodySignature:
      return "accountability mode requires a message body signature";
    case VerifyError::kInvalidBodySignature: return "invalid message body signature";

    case VerifyError::kAccusationMalformed: return "malformed accusation";
    case VerifyError::kAccusationBadSignature: return "invalid accuser signature";
    case VerifyError::kAccusationSelfAccusation: return "self-accusation";
    case VerifyError::kAccusationEvidenceInvalid:
      return "accusation evidence not attributable to the accused";
    case VerifyError::kAccusationNotProven:
      return "accusation evidence does not demonstrate misbehavior";

    case VerifyError::kCheckpointMalformed: return "malformed checkpoint";
    case VerifyError::kCheckpointOwnerMismatch:
      return "checkpoint owner does not match the claimed prover";
    case VerifyError::kCheckpointBadSignature: return "invalid checkpoint signature";
    case VerifyError::kSegmentBadSignature: return "invalid segment server signature";
    case VerifyError::kSegmentChainMismatch:
      return "segment contradicts the announced checkpoint digest";
  }
  return "unknown verify error";
}

const char* error_tag(VerifyError code) {
  switch (code) {
    case VerifyError::kNone: return "ok";
    case VerifyError::kSampleFromEmptyCandidates: return "sample_empty_candidates";
    case VerifyError::kTooManyDrawProofs: return "too_many_draw_proofs";
    case VerifyError::kExtraDrawProofs: return "extra_draw_proofs";
    case VerifyError::kInvalidVrfProof: return "invalid_vrf_proof";
    case VerifyError::kSampleIncomplete: return "sample_incomplete";
    case VerifyError::kSampleMismatch: return "sample_mismatch";
    case VerifyError::kRoundsNotAscending: return "rounds_not_ascending";
    case VerifyError::kJoinAfterRoundZero: return "join_after_round_zero";
    case VerifyError::kInvalidJoinStamp: return "invalid_join_stamp";
    case VerifyError::kJoinRemovesPeers: return "join_removes_peers";
    case VerifyError::kInvalidShuffleSignature: return "invalid_shuffle_signature";
    case VerifyError::kSelfShuffleEntry: return "self_shuffle_entry";
    case VerifyError::kMalformedLeaveEntry: return "malformed_leave_entry";
    case VerifyError::kInvalidLeaveSignature: return "invalid_leave_signature";
    case VerifyError::kOwnerInsertedIntoOwnPeerset: return "owner_inserted";
    case VerifyError::kOwnerFilledIntoOwnPeerset: return "owner_filled";
    case VerifyError::kReconstructionMismatch: return "reconstruction_mismatch";
    case VerifyError::kStaleRoundNonce: return "stale_round_nonce";
    case VerifyError::kSelfShuffle: return "self_shuffle";
    case VerifyError::kInvalidInitiatorRoundSignature: return "invalid_initiator_sig";
    case VerifyError::kInvalidResponderRoundSignature: return "invalid_responder_sig";
    case VerifyError::kDuplicatePeersetClaim: return "duplicate_peerset_claim";
    case VerifyError::kPeersetTooLarge: return "peerset_too_large";
    case VerifyError::kHistoryBeyondOfferedRound: return "history_beyond_offered_round";
    case VerifyError::kHistoryBeyondResponderRound:
      return "history_beyond_responder_round";
    case VerifyError::kResponderNotInPeerset: return "responder_not_in_peerset";
    case VerifyError::kPartnerSelectionMismatch: return "partner_selection_mismatch";
    case VerifyError::kOfferSampleMismatch: return "offer_sample_mismatch";
    case VerifyError::kResponderRoundChanged: return "responder_round_changed";
    case VerifyError::kResponseSampleMismatch: return "response_sample_mismatch";
    case VerifyError::kAuditNotShuffleEntries: return "audit_not_shuffle_entries";
    case VerifyError::kAuditEntriesUnlinked: return "audit_entries_unlinked";
    case VerifyError::kAuditNonceMismatch: return "audit_nonce_mismatch";
    case VerifyError::kAuditInitiatorFlagMismatch: return "audit_initiator_flag";
    case VerifyError::kAuditInPeerNeverOffered: return "audit_in_peer_unoffered";
    case VerifyError::kAuditCounterpartInPeerNeverOffered:
      return "audit_counterpart_in_peer_unoffered";
    case VerifyError::kAuditRefillNotFromOut: return "audit_refill_not_from_out";
    case VerifyError::kAuditCounterpartRefillNotFromOut:
      return "audit_counterpart_refill_not_from_out";
    case VerifyError::kAuditInitiatedWithNonPeer: return "audit_initiated_with_non_peer";
    case VerifyError::kAuditRemovedNonMember: return "audit_removed_non_member";
    case VerifyError::kNeighborhoodGhostNode: return "neighborhood_ghost_node";
    case VerifyError::kNeighborhoodHiddenNode: return "neighborhood_hidden_node";
    case VerifyError::kNeighborhoodUnderReported: return "neighborhood_under_reported";
    case VerifyError::kMissingBodySignature: return "missing_body_sig";
    case VerifyError::kInvalidBodySignature: return "invalid_body_sig";
    case VerifyError::kAccusationMalformed: return "accusation_malformed";
    case VerifyError::kAccusationBadSignature: return "accusation_bad_sig";
    case VerifyError::kAccusationSelfAccusation: return "accusation_self";
    case VerifyError::kAccusationEvidenceInvalid: return "accusation_evidence_invalid";
    case VerifyError::kAccusationNotProven: return "accusation_not_proven";
    case VerifyError::kCheckpointMalformed: return "checkpoint_malformed";
    case VerifyError::kCheckpointOwnerMismatch: return "checkpoint_owner_mismatch";
    case VerifyError::kCheckpointBadSignature: return "checkpoint_bad_sig";
    case VerifyError::kSegmentBadSignature: return "segment_bad_sig";
    case VerifyError::kSegmentChainMismatch: return "segment_chain_mismatch";
  }
  return "unknown";
}

}  // namespace accountnet::core
