#include "accountnet/core/resolver.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"

namespace accountnet::core {

void DisputeResolver::resolve(Request request, DoneCallback done) {
  AN_ENSURE_MSG(done != nullptr, "resolver needs a completion callback");
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->done = std::move(done);
  pending->outstanding = pending->request.witnesses.size();
  in_flight_.push_back(pending);

  auto finish_if_done = [this, pending] {
    if (pending->outstanding != 0) return;
    Outcome outcome;
    outcome.responded = pending->responded;
    outcome.testimonies = pending->testimonies;
    outcome.resolution = resolve_dispute(
        pending->request.channel_id, pending->request.sequence,
        pending->request.producer_claim, pending->request.consumer_claim,
        pending->testimonies, pending->request.witnesses.size(), provider_);
    std::erase(in_flight_, pending);
    pending->done(std::move(outcome));
  };

  if (pending->outstanding == 0) {
    finish_if_done();
    return;
  }
  for (const auto& witness : pending->request.witnesses) {
    node_.request_testimony(
        witness.addr, pending->request.channel_id, pending->request.sequence,
        [pending, finish_if_done, witness](std::optional<Testimony> t) {
          --pending->outstanding;
          if (t) {
            ++pending->responded;
            // Bind the testimony to the witness we actually asked: a witness
            // cannot impersonate another (signature check happens later, but
            // the identity must be the queried one).
            if (t->witness == witness) pending->testimonies.push_back(*t);
          }
          finish_if_done();
        });
  }
}

}  // namespace accountnet::core
