#include "accountnet/core/resolver.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"

namespace accountnet::core {

void DisputeResolver::resolve(Request request, DoneCallback done) {
  AN_ENSURE_MSG(done != nullptr, "resolver needs a completion callback");
  auto pending = std::make_shared<Pending>();
  pending->request = std::move(request);
  pending->done = std::move(done);
  pending->outstanding = pending->request.witnesses.size();
  in_flight_.push_back(pending);

  if (obs::Tracer* tracer = node_.tracer(); tracer != nullptr) {
    pending->span = tracer->begin_span("dispute.resolve", node_.id().addr,
                                       node_.simulator().now(),
                                       pending->request.trace);
    tracer->attr(pending->span, "channel",
                 std::to_string(pending->request.channel_id));
    tracer->attr(pending->span, "seq",
                 std::to_string(pending->request.sequence));
    tracer->attr(pending->span, "witnesses",
                 std::to_string(pending->request.witnesses.size()));
  }

  auto finalize = [this, pending] {
    if (pending->finished) return;
    pending->finished = true;
    Outcome outcome;
    outcome.responded = pending->responded;
    outcome.testimonies = pending->testimonies;
    outcome.resolution = resolve_dispute(
        pending->request.channel_id, pending->request.sequence,
        pending->request.producer_claim, pending->request.consumer_claim,
        pending->testimonies, pending->request.witnesses.size(), provider_);
    if (obs::Tracer* tracer = node_.tracer();
        tracer != nullptr && pending->span != 0) {
      tracer->attr(pending->span, "verdict", verdict_tag(outcome.resolution.verdict));
      tracer->attr(pending->span, "responded", std::to_string(outcome.responded));
      tracer->end_span(pending->span, node_.simulator().now());
    }
    std::erase(in_flight_, pending);
    pending->done(std::move(outcome));
  };

  if (pending->outstanding == 0) {
    finalize();
    return;
  }
  // Resolver-side deadline: finalize with whatever arrived, even if some
  // queries are still outstanding (their late answers then no-op).
  if (deadline_ > 0) {
    node_.simulator().schedule(deadline_, finalize);
  }
  // Route the testimony queries through the dispute span so each witness's
  // testimony.serve leg lands on the dispute's trace.
  const obs::TraceContext saved = node_.trace_context();
  if (node_.tracer() != nullptr && pending->span != 0) {
    node_.set_trace_context(node_.tracer()->context(pending->span));
  }
  for (const auto& witness : pending->request.witnesses) {
    node_.request_testimony(
        witness.addr, pending->request.channel_id, pending->request.sequence,
        [pending, finalize, witness](std::optional<Testimony> t) {
          if (pending->finished) return;  // deadline already resolved this
          --pending->outstanding;
          if (t) {
            ++pending->responded;
            // Bind the testimony to the witness we actually asked: a witness
            // cannot impersonate another (signature check happens later, but
            // the identity must be the queried one).
            if (t->witness == witness) pending->testimonies.push_back(*t);
          }
          if (pending->outstanding == 0) finalize();
        });
  }
  node_.set_trace_context(saved);
}

}  // namespace accountnet::core
