#include "accountnet/core/node.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

namespace {

void encode_peer_list(wire::Writer& w, const std::vector<PeerId>& peers) {
  w.varint(peers.size());
  for (const auto& p : peers) encode_peer(w, p);
}

std::vector<PeerId> decode_peer_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("peer list implausibly long");
  std::vector<PeerId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_peer(r));
  return out;
}

void encode_bytes_list(wire::Writer& w, const std::vector<Bytes>& list) {
  w.varint(list.size());
  for (const auto& b : list) w.bytes(b);
}

std::vector<Bytes> decode_bytes_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("bytes list implausibly long");
  std::vector<Bytes> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.bytes());
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kJoinRequest: return "join_request";
    case MsgType::kJoinReply: return "join_reply";
    case MsgType::kRoundQuery: return "round_query";
    case MsgType::kRoundReply: return "round_reply";
    case MsgType::kShuffleOffer: return "shuffle_offer";
    case MsgType::kShuffleResponse: return "shuffle_response";
    case MsgType::kShuffleReject: return "shuffle_reject";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kLeaveNotice: return "leave_notice";
    case MsgType::kNeighborhoodQuery: return "neighborhood_query";
    case MsgType::kNeighborhoodReply: return "neighborhood_reply";
    case MsgType::kChannelRequest: return "channel_request";
    case MsgType::kChannelAccept: return "channel_accept";
    case MsgType::kChannelFinalize: return "channel_finalize";
    case MsgType::kWitnessInvite: return "witness_invite";
    case MsgType::kWitnessAck: return "witness_ack";
    case MsgType::kDataRelay: return "data_relay";
    case MsgType::kDataForward: return "data_forward";
    case MsgType::kTestimonyQuery: return "testimony_query";
    case MsgType::kTestimonyReply: return "testimony_reply";
    case MsgType::kEntryQuery: return "entry_query";
    case MsgType::kEntryReply: return "entry_reply";
  }
  return "unknown";
}

Node::MetricIds::MetricIds(obs::MetricsRegistry& r)
    : shuffles_initiated(r.counter("node.shuffles_initiated")),
      shuffles_completed(r.counter("node.shuffles_completed")),
      shuffles_responded(r.counter("node.shuffles_responded")),
      shuffles_rejected(r.counter("node.shuffles_rejected")),
      shuffle_failures(r.counter("node.shuffle_failures")),
      verification_failures(r.counter("node.verification_failures")),
      history_suffix_bytes(r.counter("node.history_suffix_bytes")),
      leaves_reported(r.counter("node.leaves_reported")),
      relays_forwarded(r.counter("node.relays_forwarded")),
      t_make_offer(r.timer("node.make_offer")),
      t_verify_offer(r.timer("node.verify_offer")),
      t_make_response(r.timer("node.make_response")),
      t_verify_response(r.timer("node.verify_response")) {}

Node::Stats Node::stats() const {
  Stats s;
  s.shuffles_initiated = metrics_.counter_value(ids_.shuffles_initiated);
  s.shuffles_completed = metrics_.counter_value(ids_.shuffles_completed);
  s.shuffles_responded = metrics_.counter_value(ids_.shuffles_responded);
  s.shuffles_rejected = metrics_.counter_value(ids_.shuffles_rejected);
  s.shuffle_failures = metrics_.counter_value(ids_.shuffle_failures);
  s.verification_failures = metrics_.counter_value(ids_.verification_failures);
  s.history_suffix_bytes = metrics_.counter_value(ids_.history_suffix_bytes);
  s.leaves_reported = metrics_.counter_value(ids_.leaves_reported);
  s.relays_forwarded = metrics_.counter_value(ids_.relays_forwarded);
  return s;
}

void Node::update_config(const ConfigDelta& delta) {
  // Validate the whole delta before touching anything, so a failed update
  // leaves the config exactly as it was.
  if (delta.witness_count) {
    AN_ENSURE_MSG(*delta.witness_count >= 1, "witness_count must be >= 1");
  }
  if (delta.shuffle_period) {
    AN_ENSURE_MSG(*delta.shuffle_period > 0, "shuffle_period must be positive");
  }
  if (delta.shuffle_jitter_frac) {
    AN_ENSURE_MSG(*delta.shuffle_jitter_frac >= 0.0 && *delta.shuffle_jitter_frac <= 1.0,
                  "shuffle_jitter_frac must be in [0, 1]");
  }
  if (delta.depth) {
    AN_ENSURE_MSG(*delta.depth >= 1, "depth must be >= 1");
  }
  if (delta.rpc_timeout) {
    AN_ENSURE_MSG(*delta.rpc_timeout > 0, "rpc_timeout must be positive");
  }
  if (delta.witness_count) config_.witness_count = *delta.witness_count;
  if (delta.majority_opt) config_.majority_opt = *delta.majority_opt;
  if (delta.shuffle_period) config_.shuffle_period = *delta.shuffle_period;
  if (delta.shuffle_jitter_frac) config_.shuffle_jitter_frac = *delta.shuffle_jitter_frac;
  if (delta.depth) config_.depth = *delta.depth;
  if (delta.rpc_timeout) config_.rpc_timeout = *delta.rpc_timeout;
}

Node::Node(sim::SimNetwork& net, const std::string& addr,
           const crypto::CryptoProvider& provider, BytesView seed32, Config config,
           std::uint64_t rng_seed)
    : net_(net),
      provider_(provider),
      state_(PeerId{addr, provider.make_signer(seed32)->public_key()},
             provider.make_signer(seed32), config.protocol),
      config_(config),
      rng_(rng_seed),
      evidence_(PeerId{addr, provider.make_signer(seed32)->public_key()}) {}

Node::~Node() {
  *alive_ = false;
}

void Node::send(const std::string& to, MsgType type, Bytes payload) {
  net_.send({state_.self().addr, to, static_cast<std::uint32_t>(type),
             std::move(payload)});
}

void Node::start_as_seed() {
  AN_ENSURE_MSG(!running_, "node already started");
  running_ = true;
  joined_ = true;
  state_.init_as_seed();
  net_.attach(state_.self().addr, [this](const sim::NetMessage& m) { handle(m); });
  schedule_next_shuffle();
}

void Node::start_join(const std::string& bootstrap_addr) {
  AN_ENSURE_MSG(!running_, "node already started");
  running_ = true;
  net_.attach(state_.self().addr, [this](const sim::NetMessage& m) { handle(m); });
  wire::Writer w;
  encode_peer(w, state_.self());
  send(bootstrap_addr, MsgType::kJoinRequest, std::move(w).take());
  // Retry join if the bootstrap never answers.
  auto alive = alive_;
  net_.simulator().schedule(config_.rpc_timeout * 4, [this, alive, bootstrap_addr] {
    if (!*alive || joined_ || !running_) return;
    wire::Writer retry;
    encode_peer(retry, state_.self());
    send(bootstrap_addr, MsgType::kJoinRequest, std::move(retry).take());
  });
}

void Node::stop() {
  if (!running_) return;
  running_ = false;
  net_.detach(state_.self().addr);
}

void Node::stop_gracefully() {
  if (!running_) return;
  // Announce our own departure; recipients ping-verify (we will be gone by
  // the time the ping lands) and then record the leave.
  const auto [round, sig] = state_.make_leave_report(state_.self());
  wire::Writer w;
  encode_peer(w, state_.self());   // leaver = self
  encode_peer(w, state_.self());   // reporter = self
  w.u64(round);
  w.bytes(sig);
  const Bytes payload = std::move(w).take();
  for (const auto& p : state_.peerset().sorted()) {
    send(p.addr, MsgType::kLeaveNotice, payload);
  }
  stop();
}

void Node::handle(const sim::NetMessage& msg) {
  if (!running_) return;
  try {
    switch (static_cast<MsgType>(msg.type)) {
      case MsgType::kJoinRequest: on_join_request(msg); break;
      case MsgType::kJoinReply: on_join_reply(msg); break;
      case MsgType::kRoundQuery: on_round_query(msg); break;
      case MsgType::kRoundReply: on_round_reply(msg); break;
      case MsgType::kShuffleOffer: on_shuffle_offer(msg); break;
      case MsgType::kShuffleResponse: on_shuffle_response(msg); break;
      case MsgType::kShuffleReject: on_shuffle_reject(msg); break;
      case MsgType::kPing: on_ping(msg); break;
      case MsgType::kPong: on_pong(msg); break;
      case MsgType::kLeaveNotice: on_leave_notice(msg); break;
      case MsgType::kNeighborhoodQuery: on_neighborhood_query(msg); break;
      case MsgType::kNeighborhoodReply: on_neighborhood_reply(msg); break;
      case MsgType::kChannelRequest: on_channel_request(msg); break;
      case MsgType::kChannelAccept: on_channel_accept(msg); break;
      case MsgType::kChannelFinalize: on_channel_finalize(msg); break;
      case MsgType::kWitnessInvite: on_witness_invite(msg); break;
      case MsgType::kWitnessAck: on_witness_ack(msg); break;
      case MsgType::kDataRelay: on_data_relay(msg); break;
      case MsgType::kDataForward: on_data_forward(msg); break;
      case MsgType::kTestimonyQuery: on_testimony_query(msg); break;
      case MsgType::kTestimonyReply: on_testimony_reply(msg); break;
      case MsgType::kEntryQuery: on_entry_query(msg); break;
      case MsgType::kEntryReply: on_entry_reply(msg); break;
    }
  } catch (const wire::DecodeError&) {
    // Malformed traffic from a buggy/malicious peer: drop it.
    metrics_.add(ids_.verification_failures);
  }
}

// ---------------------------------------------------------------------------
// Join.
// ---------------------------------------------------------------------------

void Node::on_join_request(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const PeerId joiner = decode_peer(r);
  r.expect_done();
  if (joiner.addr != msg.from) return;

  // Entry stamp σ_bn(addr_i) plus a neighbor list the joiner samples from.
  const Bytes stamp = state_.signer().sign(join_stamp_payload(joiner.addr));
  std::vector<PeerId> neighbors = state_.peerset().sorted();
  neighbors.push_back(state_.self());

  wire::Writer w;
  encode_peer(w, state_.self());
  w.bytes(stamp);
  encode_peer_list(w, neighbors);
  send(msg.from, MsgType::kJoinReply, std::move(w).take());
}

void Node::on_join_reply(const sim::NetMessage& msg) {
  if (joined_) return;
  wire::Reader r(msg.payload);
  const PeerId bootstrap = decode_peer(r);
  const Bytes stamp = r.bytes();
  const std::vector<PeerId> neighbors = decode_peer_list(r);
  r.expect_done();
  if (bootstrap.addr != msg.from) return;
  if (!provider_.verify(bootstrap.key, join_stamp_payload(state_.self().addr), stamp)) {
    metrics_.add(ids_.verification_failures);
    return;
  }

  // Verifiable initial sample: up to f nodes, VRF-seeded by the entry stamp
  // (the joiner cannot predict it before contacting the bootstrap).
  Peerset candidates(neighbors);
  candidates.erase(state_.self());
  const Draw draw = draw_sample(state_.signer(), candidates, config_.protocol.max_peerset,
                                "an.join.sample", stamp);
  state_.apply_join(bootstrap, stamp, draw.sample);
  joined_ = true;
  schedule_next_shuffle();
}

// ---------------------------------------------------------------------------
// Shuffling.
// ---------------------------------------------------------------------------

void Node::schedule_next_shuffle() {
  const auto period = static_cast<double>(config_.shuffle_period);
  const double jitter = (rng_.uniform01() * 2.0 - 1.0) * config_.shuffle_jitter_frac;
  const auto delay = static_cast<sim::Duration>(period * (1.0 + jitter));
  auto alive = alive_;
  net_.simulator().schedule(std::max<sim::Duration>(delay, 1), [this, alive] {
    if (!*alive || !running_) return;
    begin_shuffle();
    schedule_next_shuffle();
  });
}

void Node::begin_shuffle() {
  if (!joined_ || pending_.has_value() || behavior_.refuse_shuffles) return;
  const auto choice = choose_partner(state_);
  if (!choice) return;  // empty peerset
  metrics_.add(ids_.shuffles_initiated);
  PendingShuffle p;
  p.partner = choice->partner;
  p.choice = *choice;
  p.round_at_start = state_.round();
  p.epoch = ++shuffle_epoch_;
  pending_ = std::move(p);

  wire::Writer w;
  encode_peer(w, state_.self());
  send(choice->partner.addr, MsgType::kRoundQuery, std::move(w).take());

  const auto epoch = pending_->epoch;
  auto alive = alive_;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, epoch] {
    if (!*alive || !running_) return;
    if (pending_ && pending_->epoch == epoch) abort_shuffle(/*partner_suspect=*/true);
  });
}

void Node::abort_shuffle(bool partner_suspect) {
  if (!pending_) return;
  metrics_.add(ids_.shuffle_failures);
  const PeerId partner = pending_->partner;
  pending_.reset();
  ++shuffle_epoch_;
  // Burn the round so the next initiation draws a fresh partner.
  state_.skip_round();
  if (partner_suspect) {
    const int fails = ++partner_failures_.at_or_insert(partner.addr);
    if (fails >= config_.failures_before_leave_check) {
      partner_failures_.erase(partner.addr);
      suspect_peer(partner);
    }
  }
}

void Node::on_round_query(const sim::NetMessage& msg) {
  if (!joined_ || behavior_.refuse_shuffles) return;
  wire::Reader r(msg.payload);
  const PeerId initiator = decode_peer(r);
  r.expect_done();
  if (initiator.addr != msg.from) return;
  wire::Writer w;
  encode_peer(w, state_.self());
  w.u64(state_.round());
  send(msg.from, MsgType::kRoundReply, std::move(w).take());
}

void Node::on_round_reply(const sim::NetMessage& msg) {
  if (!pending_ || pending_->offer_sent || msg.from != pending_->partner.addr) return;
  wire::Reader r(msg.payload);
  const PeerId responder = decode_peer(r);
  const Round responder_round = r.u64();
  r.expect_done();
  if (!(responder == pending_->partner)) return;
  if (state_.round() != pending_->round_at_start) {
    // A leave report advanced our round since the partner draw; the proofs
    // no longer match the round we would offer. Quietly retry next period.
    pending_.reset();
    ++shuffle_epoch_;
    return;
  }

  {
    obs::ScopedTimer t(&metrics_, ids_.t_make_offer);
    pending_->offer = make_offer(state_, pending_->choice, responder_round);
  }
  pending_->offer_sent = true;
  const Bytes payload = pending_->offer.encode();
  metrics_.add(ids_.history_suffix_bytes, payload.size());
  send(msg.from, MsgType::kShuffleOffer, payload);
}

void Node::on_shuffle_offer(const sim::NetMessage& msg) {
  auto reject = [&](std::uint8_t code) {
    wire::Writer w;
    w.u8(code);  // 1 = busy, 2 = verification failed
    send(msg.from, MsgType::kShuffleReject, std::move(w).take());
  };
  if (!joined_ || behavior_.refuse_shuffles) return;
  if (pending_.has_value()) {
    reject(1);
    return;
  }
  const ShuffleOffer offer = ShuffleOffer::decode(msg.payload);
  if (offer.initiator.addr != msg.from) return;

  // Benign race: our round advanced after we handed out the nonce (we
  // shuffled or recorded a leave in between). Not a protocol violation.
  if (offer.responder_round != state_.round()) {
    reject(1);
    return;
  }

  // Replay defense: an initiator's offered round must move forward.
  const Round* floor = last_seen_initiator_round_.find(offer.initiator.addr);
  if (floor != nullptr && offer.initiator_round <= *floor) {
    metrics_.add(ids_.shuffles_rejected);
    reject(2);
    return;
  }

  VerifyResult v;
  {
    obs::ScopedTimer t(&metrics_, ids_.t_verify_offer);
    v = verify_offer(offer, state_, state_.round(), provider_);
  }
  if (!v) {
    metrics_.add(ids_.shuffles_rejected);
    metrics_.add(ids_.verification_failures);
    metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(v.code)));
    reject(2);
    return;
  }
  last_seen_initiator_round_.put(offer.initiator.addr, offer.initiator_round);
  partner_failures_.erase(offer.initiator.addr);

  ShuffleResponse resp;
  {
    obs::ScopedTimer t(&metrics_, ids_.t_make_response);
    resp = make_response_and_commit(state_, offer);
  }
  purge_reported_leavers();
  metrics_.add(ids_.shuffles_responded);
  const Bytes payload = resp.encode();
  metrics_.add(ids_.history_suffix_bytes, payload.size());
  send(msg.from, MsgType::kShuffleResponse, payload);
}

void Node::on_shuffle_response(const sim::NetMessage& msg) {
  if (!pending_ || !pending_->offer_sent || msg.from != pending_->partner.addr) return;
  const ShuffleResponse resp = ShuffleResponse::decode(msg.payload);
  VerifyResult v;
  {
    obs::ScopedTimer t(&metrics_, ids_.t_verify_response);
    v = verify_response(resp, state_, pending_->offer, provider_);
  }
  if (!v) {
    metrics_.add(ids_.verification_failures);
    metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(v.code)));
    abort_shuffle(/*partner_suspect=*/true);
    return;
  }
  apply_offer_outcome(state_, pending_->offer, resp);
  purge_reported_leavers();
  metrics_.add(ids_.shuffles_completed);
  partner_failures_.erase(msg.from);
  pending_.reset();
  ++shuffle_epoch_;
}

void Node::on_shuffle_reject(const sim::NetMessage& msg) {
  if (!pending_ || msg.from != pending_->partner.addr) return;
  wire::Reader r(msg.payload);
  const std::uint8_t code = r.u8();
  abort_shuffle(/*partner_suspect=*/code == 2);
}

// ---------------------------------------------------------------------------
// Leave detection.
// ---------------------------------------------------------------------------

void Node::purge_reported_leavers() {
  // Shuffling can re-introduce a peer we already know to be gone (other
  // nodes still circulate it until they notice). Re-record the leave so our
  // reconstruction stays exact and the zombie peer is dropped again.
  std::vector<PeerId> zombies;
  for (const auto& p : state_.peerset().sorted()) {
    if (reported_leavers_.contains(p.addr)) zombies.push_back(p);
  }
  for (const auto& z : zombies) {
    const auto [round, sig] = state_.make_leave_report(z);
    state_.apply_leave_report(state_.self(), round, sig, z);
  }
}

void Node::suspect_peer(const PeerId& peer) {
  if (reported_leavers_.contains(peer.addr) || ping_probes_.contains(peer.addr)) return;
  PingProbe probe;
  probe.target = peer;
  ping_probes_[peer.addr] = std::move(probe);
  send(peer.addr, MsgType::kPing, {});

  auto alive = alive_;
  const std::string addr = peer.addr;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, addr] {
    if (!*alive || !running_) return;
    const auto it = ping_probes_.find(addr);
    if (it == ping_probes_.end()) return;  // pong arrived
    const PingProbe probe = it->second;
    ping_probes_.erase(it);
    reported_leavers_.insert(addr);
    if (probe.from_notice) {
      // Confirmed someone else's report: record it as received.
      state_.apply_leave_report(probe.reporter, probe.reporter_round, probe.report_sig,
                                probe.target);
      return;
    }
    // We are the reporter: log, then inform our peers (Sec. IV-A, Leaving).
    metrics_.add(ids_.leaves_reported);
    const auto [round, sig] = state_.make_leave_report(probe.target);
    wire::Writer w;
    encode_peer(w, probe.target);
    encode_peer(w, state_.self());
    w.u64(round);
    w.bytes(sig);
    const Bytes payload = std::move(w).take();
    for (const auto& p : state_.peerset().sorted()) {
      if (!(p == probe.target)) send(p.addr, MsgType::kLeaveNotice, payload);
    }
    state_.apply_leave_report(state_.self(), round, sig, probe.target);
  });
}

void Node::on_leave_notice(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const PeerId leaver = decode_peer(r);
  const PeerId reporter = decode_peer(r);
  const Round reporter_round = r.u64();
  const Bytes sig = r.bytes();
  r.expect_done();
  if (leaver == state_.self()) return;
  if (reported_leavers_.contains(leaver.addr) || ping_probes_.contains(leaver.addr)) return;
  if (!provider_.verify(reporter.key, leave_payload(reporter_round, leaver.addr), sig)) {
    metrics_.add(ids_.verification_failures);
    return;
  }
  // Independent liveness check before trusting the report.
  PingProbe probe;
  probe.target = leaver;
  probe.from_notice = true;
  probe.reporter = reporter;
  probe.reporter_round = reporter_round;
  probe.report_sig = sig;
  ping_probes_[leaver.addr] = std::move(probe);
  send(leaver.addr, MsgType::kPing, {});

  auto alive = alive_;
  const std::string addr = leaver.addr;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, addr] {
    if (!*alive || !running_) return;
    const auto it = ping_probes_.find(addr);
    if (it == ping_probes_.end()) return;
    const PingProbe probe = it->second;
    ping_probes_.erase(it);
    reported_leavers_.insert(addr);
    state_.apply_leave_report(probe.reporter, probe.reporter_round, probe.report_sig,
                              probe.target);
  });
}

void Node::on_ping(const sim::NetMessage& msg) {
  send(msg.from, MsgType::kPong, {});
}

void Node::on_pong(const sim::NetMessage& msg) {
  ping_probes_.erase(msg.from);
  partner_failures_.erase(msg.from);
}

// ---------------------------------------------------------------------------
// Neighborhood flooding.
// ---------------------------------------------------------------------------

void Node::discover_neighborhood(std::function<void(std::vector<PeerId>)> done) {
  if (probe_.has_value()) {
    // One flood at a time; queue the request and reuse the machinery.
    probe_queue_.push_back(std::move(done));
    return;
  }
  NeighborhoodProbe probe;
  probe.query_id = (fnv1a(state_.self().addr) << 16) | next_query_id_++;
  probe.done = std::move(done);
  probe_ = std::move(probe);
  seen_queries_.insert(probe_->query_id);

  wire::Writer w;
  w.u64(probe_->query_id);
  encode_peer(w, state_.self());
  w.varint(config_.depth);
  const Bytes payload = std::move(w).take();
  for (const auto& p : state_.peerset().sorted()) {
    send(p.addr, MsgType::kNeighborhoodQuery, payload);
  }

  auto alive = alive_;
  const auto wait =
      config_.neighborhood_wait * static_cast<sim::Duration>(std::max<std::size_t>(config_.depth, 1));
  net_.simulator().schedule(wait, [this, alive] {
    if (!*alive || !running_ || !probe_) return;
    std::vector<PeerId> found(probe_->found.begin(), probe_->found.end());
    auto done = std::move(probe_->done);
    probe_.reset();
    done(std::move(found));
    if (!probe_queue_.empty()) {
      auto next = std::move(probe_queue_.front());
      probe_queue_.erase(probe_queue_.begin());
      discover_neighborhood(std::move(next));
    }
  });
}

void Node::on_neighborhood_query(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t query_id = r.u64();
  const PeerId origin = decode_peer(r);
  const std::uint64_t ttl = r.varint();
  r.expect_done();
  if (origin == state_.self()) return;
  if (!seen_queries_.insert(query_id)) return;  // already served

  wire::Writer reply;
  reply.u64(query_id);
  encode_peer(reply, state_.self());
  send(origin.addr, MsgType::kNeighborhoodReply, std::move(reply).take());

  if (ttl > 1) {
    wire::Writer fwd;
    fwd.u64(query_id);
    encode_peer(fwd, origin);
    fwd.varint(ttl - 1);
    const Bytes payload = std::move(fwd).take();
    for (const auto& p : state_.peerset().sorted()) {
      if (p.addr != msg.from && !(p == origin)) {
        send(p.addr, MsgType::kNeighborhoodQuery, payload);
      }
    }
  }
}

void Node::on_neighborhood_reply(const sim::NetMessage& msg) {
  if (!probe_) return;
  wire::Reader r(msg.payload);
  const std::uint64_t query_id = r.u64();
  const PeerId responder = decode_peer(r);
  r.expect_done();
  if (query_id != probe_->query_id) return;
  if (responder.addr != msg.from || responder == state_.self()) return;
  probe_->found.insert(responder);
}

// ---------------------------------------------------------------------------
// Channels (witness formation + witnessed relay).
// ---------------------------------------------------------------------------

void Node::open_channel(const std::string& consumer_addr, ChannelReadyCallback on_ready) {
  AN_ENSURE_MSG(joined_, "open_channel before join completes");
  const std::uint64_t id = (fnv1a(state_.self().addr) << 20) | next_channel_id_++;
  ProducerChannel ch;
  ch.id = id;
  ch.consumer.addr = consumer_addr;
  ch.on_ready = std::move(on_ready);
  producer_channels_[id] = std::move(ch);

  // Setup deadline: discovery + exchange + invites must complete within a
  // bounded window or the channel fails (e.g. a witness died mid-setup).
  auto alive = alive_;
  net_.simulator().schedule(
      config_.neighborhood_wait * 4 + config_.rpc_timeout * 4, [this, alive, id] {
        if (!*alive || !running_) return;
        const auto it = producer_channels_.find(id);
        if (it == producer_channels_.end() || it->second.ready) return;
        auto cb = std::move(it->second.on_ready);
        producer_channels_.erase(it);
        if (cb) cb(id, false);
      });

  discover_neighborhood([this, id, consumer_addr](std::vector<PeerId> found) {
    auto it = producer_channels_.find(id);
    if (it == producer_channels_.end()) return;
    it->second.my_neighborhood = std::move(found);
    it->second.my_round = state_.round();
    wire::Writer w;
    w.u64(id);
    encode_peer(w, state_.self());
    w.u64(it->second.my_round);
    encode_peer_list(w, it->second.my_neighborhood);
    send(consumer_addr, MsgType::kChannelRequest, std::move(w).take());
  });
}

void Node::on_channel_request(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const PeerId producer = decode_peer(r);
  const Round producer_round = r.u64();
  std::vector<PeerId> producer_nbh = decode_peer_list(r);
  r.expect_done();
  if (producer.addr != msg.from || !joined_) return;

  ConsumerChannel ch;
  ch.id = id;
  ch.producer = producer;
  ch.producer_round = producer_round;
  ch.producer_neighborhood = std::move(producer_nbh);
  consumer_channels_[id] = std::move(ch);

  discover_neighborhood([this, id, producer](std::vector<PeerId> mine) {
    auto it = consumer_channels_.find(id);
    if (it == consumer_channels_.end()) return;
    ConsumerChannel& ch = it->second;
    ch.my_neighborhood = std::move(mine);
    ch.my_round = state_.round();
    const auto plan = plan_witness_group(ch.producer_neighborhood, ch.my_neighborhood,
                                         producer, state_.self(), config_.witness_count);
    const Bytes nonce =
        channel_nonce(producer, ch.producer_round, state_.self(), ch.my_round);
    const Draw draw = draw_witnesses(state_.signer(), plan.candidates_consumer,
                                     plan.quota_consumer, nonce);
    ch.witnesses = draw.sample;  // producer half is merged at finalize
    wire::Writer w;
    w.u64(id);
    encode_peer(w, state_.self());
    w.u64(ch.my_round);
    encode_peer_list(w, ch.my_neighborhood);
    encode_peer_list(w, draw.sample);
    encode_bytes_list(w, draw.proofs);
    send(producer.addr, MsgType::kChannelAccept, std::move(w).take());
  });
}

void Node::on_channel_accept(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const PeerId consumer = decode_peer(r);
  const Round consumer_round = r.u64();
  const std::vector<PeerId> consumer_nbh = decode_peer_list(r);
  const std::vector<PeerId> consumer_draw = decode_peer_list(r);
  const std::vector<Bytes> consumer_proofs = decode_bytes_list(r);
  r.expect_done();

  const auto it = producer_channels_.find(id);
  if (it == producer_channels_.end() || consumer.addr != msg.from) return;
  ProducerChannel& ch = it->second;
  ch.consumer = consumer;

  const auto plan = plan_witness_group(ch.my_neighborhood, consumer_nbh, state_.self(),
                                       consumer, config_.witness_count);
  const Bytes nonce = channel_nonce(state_.self(), ch.my_round, consumer, consumer_round);
  if (const auto v = verify_witnesses(provider_, consumer.key, plan.candidates_consumer,
                                      plan.quota_consumer, nonce, consumer_proofs,
                                      consumer_draw);
      !v) {
    metrics_.add(ids_.verification_failures);
    if (ch.on_ready) ch.on_ready(id, false);
    producer_channels_.erase(it);
    return;
  }
  const Draw my_draw = draw_witnesses(state_.signer(), plan.candidates_producer,
                                      plan.quota_producer, nonce);
  ch.witnesses = merge_witnesses(my_draw.sample, consumer_draw);

  // Tell the consumer our half of the draw (it re-verifies symmetrically).
  wire::Writer w;
  w.u64(id);
  encode_peer_list(w, my_draw.sample);
  encode_bytes_list(w, my_draw.proofs);
  encode_peer_list(w, ch.my_neighborhood);
  w.u64(ch.my_round);
  send(consumer.addr, MsgType::kChannelFinalize, std::move(w).take());

  // Invite every witness.
  wire::Writer inv;
  inv.u64(id);
  encode_peer(inv, state_.self());
  encode_peer(inv, consumer);
  const Bytes invite = std::move(inv).take();
  for (const auto& w_id : ch.witnesses) {
    send(w_id.addr, MsgType::kWitnessInvite, invite);
  }
  if (ch.witnesses.empty() && ch.on_ready) {
    ch.on_ready(id, false);
    producer_channels_.erase(it);
  }
}

void Node::on_channel_finalize(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::vector<PeerId> producer_draw = decode_peer_list(r);
  const std::vector<Bytes> producer_proofs = decode_bytes_list(r);
  const std::vector<PeerId> producer_nbh = decode_peer_list(r);
  const Round producer_round = r.u64();
  r.expect_done();

  const auto it = consumer_channels_.find(id);
  if (it == consumer_channels_.end() || it->second.producer.addr != msg.from) return;
  ConsumerChannel& ch = it->second;

  // The producer's neighborhood must match what it sent at request time
  // (otherwise it could shop for a candidate set after seeing our draw).
  if (producer_nbh != ch.producer_neighborhood || producer_round != ch.producer_round) {
    metrics_.add(ids_.verification_failures);
    consumer_channels_.erase(it);
    return;
  }
  const auto plan = plan_witness_group(ch.producer_neighborhood, ch.my_neighborhood,
                                       ch.producer, state_.self(), config_.witness_count);
  const Bytes nonce =
      channel_nonce(ch.producer, ch.producer_round, state_.self(), ch.my_round);
  if (const auto v = verify_witnesses(provider_, ch.producer.key, plan.candidates_producer,
                                      plan.quota_producer, nonce, producer_proofs,
                                      producer_draw);
      !v) {
    metrics_.add(ids_.verification_failures);
    consumer_channels_.erase(it);
    return;
  }
  ch.witnesses = merge_witnesses(producer_draw, ch.witnesses);
  ch.ready = true;
}

void Node::on_witness_invite(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const PeerId producer = decode_peer(r);
  const PeerId consumer = decode_peer(r);
  r.expect_done();
  if (producer.addr != msg.from) return;
  relay_duties_[id] = RelayDuty{producer, consumer};
  wire::Writer w;
  w.u64(id);
  send(msg.from, MsgType::kWitnessAck, std::move(w).take());
}

void Node::on_witness_ack(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  r.expect_done();
  const auto it = producer_channels_.find(id);
  if (it == producer_channels_.end()) return;
  ProducerChannel& ch = it->second;
  if (ch.ready) return;
  ++ch.acks;
  if (ch.acks >= ch.witnesses.size()) {
    ch.ready = true;
    if (ch.on_ready) ch.on_ready(id, true);
  }
}

void Node::send_data(std::uint64_t channel_id, Bytes payload) {
  const auto it = producer_channels_.find(channel_id);
  AN_ENSURE_MSG(it != producer_channels_.end(), "unknown channel");
  AN_ENSURE_MSG(it->second.ready, "channel not ready");
  ProducerChannel& ch = it->second;
  const std::uint64_t seq = ch.next_seq++;
  wire::Writer w;
  w.u64(channel_id);
  w.u64(seq);
  w.bytes(payload);
  const Bytes msg = std::move(w).take();
  for (const auto& witness : ch.witnesses) {
    send(witness.addr, MsgType::kDataRelay, msg);
  }
}

void Node::on_data_relay(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::uint64_t seq = r.u64();
  Bytes payload = r.bytes();
  r.expect_done();
  const auto it = relay_duties_.find(id);
  if (it == relay_duties_.end() || it->second.producer.addr != msg.from) return;

  // Witness duty: log evidence, then relay 1 hop to the consumer.
  Bytes logged = payload;
  if (behavior_.lie_in_testimony) {
    logged = bytes_of("fabricated-evidence");
  }
  evidence_.record(state_.signer(), id, seq, logged);

  if (behavior_.drop_relays) return;
  if (behavior_.corrupt_relays) {
    payload = bytes_of("corrupted-payload");
  }
  metrics_.add(ids_.relays_forwarded);
  wire::Writer w;
  w.u64(id);
  w.u64(seq);
  w.bytes(payload);
  send(it->second.consumer.addr, MsgType::kDataForward, std::move(w).take());
}

void Node::on_data_forward(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::uint64_t seq = r.u64();
  const Bytes payload = r.bytes();
  r.expect_done();
  const auto it = consumer_channels_.find(id);
  if (it == consumer_channels_.end()) return;
  ConsumerChannel& ch = it->second;
  // Only accept forwards from the channel's witnesses.
  const bool from_witness =
      std::any_of(ch.witnesses.begin(), ch.witnesses.end(),
                  [&](const PeerId& w) { return w.addr == msg.from; });
  if (!from_witness) return;

  auto& tally = ch.pending[seq];
  if (tally.delivered) return;
  const auto digest = digest_of(payload);
  const Bytes key(digest.begin(), digest.end());
  auto& slot = tally.digests[key];
  if (slot.first == 0) slot.second = payload;
  ++slot.first;
  ++tally.total;
  maybe_deliver(ch, seq);
}

void Node::maybe_deliver(ConsumerChannel& ch, std::uint64_t seq) {
  auto& tally = ch.pending[seq];
  if (tally.delivered) return;
  const std::size_t group = ch.witnesses.size();
  const std::size_t majority = group / 2 + 1;

  const auto best = std::max_element(
      tally.digests.begin(), tally.digests.end(),
      [](const auto& a, const auto& b) { return a.second.first < b.second.first; });
  if (best == tally.digests.end()) return;

  const bool deliver_now = config_.majority_opt ? best->second.first >= majority
                                                : tally.total >= group;
  if (!deliver_now) return;
  tally.delivered = true;
  if (on_delivery_) {
    on_delivery_(ch.id, seq, best->second.second, ch.producer);
  }
}

std::vector<std::uint64_t> Node::producer_channel_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(producer_channels_.size());
  for (const auto& [id, ch] : producer_channels_) ids.push_back(id);
  return ids;
}

// ---------------------------------------------------------------------------
// Evidence & history query service (third-party resolver support and the
// Sec. IV-A old-entry lookup).
// ---------------------------------------------------------------------------

void Node::request_testimony(const std::string& witness_addr, std::uint64_t channel_id,
                             std::uint64_t sequence, TestimonyCallback cb) {
  const std::uint64_t request = next_request_id_++;
  testimony_waiters_[request] = std::move(cb);
  wire::Writer w;
  w.u64(request);
  w.u64(channel_id);
  w.u64(sequence);
  send(witness_addr, MsgType::kTestimonyQuery, std::move(w).take());
  auto alive = alive_;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, request] {
    if (!*alive) return;
    const auto it = testimony_waiters_.find(request);
    if (it == testimony_waiters_.end()) return;  // answered
    auto waiter = std::move(it->second);
    testimony_waiters_.erase(it);
    waiter(std::nullopt);
  });
}

void Node::on_testimony_query(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const std::uint64_t channel_id = r.u64();
  const std::uint64_t sequence = r.u64();
  r.expect_done();
  wire::Writer w;
  w.u64(request);
  const auto t = evidence_.lookup(channel_id, sequence);
  // A lying witness presents its (fabricated) log faithfully — the lie
  // happened at record time; the query service itself is honest bookkeeping.
  w.u8(t.has_value() ? 1 : 0);
  if (t) {
    encode_peer(w, t->witness);
    w.u64(t->channel_id);
    w.u64(t->sequence);
    w.raw(BytesView(t->digest.data(), t->digest.size()));
    w.bytes(t->signature);
  }
  send(msg.from, MsgType::kTestimonyReply, std::move(w).take());
}

void Node::on_testimony_reply(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const bool has = r.u8() != 0;
  std::optional<Testimony> t;
  if (has) {
    Testimony parsed;
    parsed.witness = decode_peer(r);
    parsed.channel_id = r.u64();
    parsed.sequence = r.u64();
    const Bytes digest = r.raw(parsed.digest.size());
    std::copy(digest.begin(), digest.end(), parsed.digest.begin());
    parsed.signature = r.bytes();
    t = std::move(parsed);
  }
  r.expect_done();
  const auto it = testimony_waiters_.find(request);
  if (it == testimony_waiters_.end()) return;  // timed out already
  auto waiter = std::move(it->second);
  testimony_waiters_.erase(it);
  waiter(std::move(t));
}

void Node::request_history_entry(const std::string& peer_addr, Round round,
                                 EntryCallback cb) {
  const std::uint64_t request = next_request_id_++;
  entry_waiters_[request] = std::move(cb);
  wire::Writer w;
  w.u64(request);
  w.u64(round);
  send(peer_addr, MsgType::kEntryQuery, std::move(w).take());
  auto alive = alive_;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, request] {
    if (!*alive) return;
    const auto it = entry_waiters_.find(request);
    if (it == entry_waiters_.end()) return;
    auto waiter = std::move(it->second);
    entry_waiters_.erase(it);
    waiter(std::nullopt);
  });
}

void Node::on_entry_query(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const Round round = r.u64();
  r.expect_done();
  wire::Writer w;
  w.u64(request);
  const HistoryEntry* found = nullptr;
  for (const auto& e : state_.history().entries()) {
    if (e.self_round == round) {
      found = &e;
      break;
    }
  }
  w.u8(found != nullptr ? 1 : 0);
  if (found != nullptr) encode_entry(w, *found);
  send(msg.from, MsgType::kEntryReply, std::move(w).take());
}

void Node::on_entry_reply(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const bool has = r.u8() != 0;
  std::optional<HistoryEntry> entry;
  if (has) entry = decode_entry(r);
  r.expect_done();
  const auto it = entry_waiters_.find(request);
  if (it == entry_waiters_.end()) return;
  auto waiter = std::move(it->second);
  entry_waiters_.erase(it);
  waiter(std::move(entry));
}

const std::vector<PeerId>* Node::channel_witnesses(std::uint64_t channel_id) const {
  if (const auto it = producer_channels_.find(channel_id); it != producer_channels_.end()) {
    return &it->second.witnesses;
  }
  if (const auto it = consumer_channels_.find(channel_id); it != consumer_channels_.end()) {
    return &it->second.witnesses;
  }
  return nullptr;
}

}  // namespace accountnet::core
