#include "accountnet/core/node.hpp"

#include <algorithm>
#include <cmath>

#include "accountnet/util/ensure.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

namespace {

void encode_peer_list(wire::Writer& w, const std::vector<PeerId>& peers) {
  w.varint(peers.size());
  for (const auto& p : peers) encode_peer(w, p);
}

std::vector<PeerId> decode_peer_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("peer list implausibly long");
  std::vector<PeerId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_peer(r));
  return out;
}

void encode_bytes_list(wire::Writer& w, const std::vector<Bytes>& list) {
  w.varint(list.size());
  for (const auto& b : list) w.bytes(b);
}

std::vector<Bytes> decode_bytes_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("bytes list implausibly long");
  std::vector<Bytes> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.bytes());
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string hex_of(const std::uint8_t* data, std::size_t n) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0x0f]);
  }
  return out;
}

std::string hex_of(const DataDigest& d) { return hex_of(d.data(), d.size()); }

/// A peer identity that exists only in the adversary's doctored history: the
/// address sorts last ("zz-" prefix keeps real draws mostly unaffected) and
/// the key is a hash nobody holds the secret for — it can never answer, sign,
/// or be framed.
PeerId fabricated_peer(const std::string& owner_addr) {
  PeerId p;
  p.addr = "zz-fab-" + owner_addr;
  const auto digest = crypto::Sha256::hash(bytes_of(p.addr));
  std::copy(digest.begin(), digest.end(), p.key.begin());
  return p;
}

}  // namespace

const char* msg_type_name(MsgType type) {
  switch (type) {
    case MsgType::kJoinRequest: return "join_request";
    case MsgType::kJoinReply: return "join_reply";
    case MsgType::kRoundQuery: return "round_query";
    case MsgType::kRoundReply: return "round_reply";
    case MsgType::kShuffleOffer: return "shuffle_offer";
    case MsgType::kShuffleResponse: return "shuffle_response";
    case MsgType::kShuffleReject: return "shuffle_reject";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kLeaveNotice: return "leave_notice";
    case MsgType::kNeighborhoodQuery: return "neighborhood_query";
    case MsgType::kNeighborhoodReply: return "neighborhood_reply";
    case MsgType::kChannelRequest: return "channel_request";
    case MsgType::kChannelAccept: return "channel_accept";
    case MsgType::kChannelFinalize: return "channel_finalize";
    case MsgType::kWitnessInvite: return "witness_invite";
    case MsgType::kWitnessAck: return "witness_ack";
    case MsgType::kDataRelay: return "data_relay";
    case MsgType::kDataForward: return "data_forward";
    case MsgType::kTestimonyQuery: return "testimony_query";
    case MsgType::kTestimonyReply: return "testimony_reply";
    case MsgType::kEntryQuery: return "entry_query";
    case MsgType::kEntryReply: return "entry_reply";
    case MsgType::kWitnessUpdate: return "witness_update";
    case MsgType::kWitnessUpdateAck: return "witness_update_ack";
    case MsgType::kAccusation: return "accusation";
    case MsgType::kAccusationAck: return "accusation_ack";
    case MsgType::kCheckpointAnnounce: return "checkpoint_announce";
    case MsgType::kSegmentRequest: return "segment_request";
    case MsgType::kSegmentData: return "segment_data";
  }
  return "unknown";
}

Node::MetricIds::MetricIds(obs::MetricsRegistry& r)
    : shuffles_initiated(r.counter("node.shuffles_initiated")),
      shuffles_completed(r.counter("node.shuffles_completed")),
      shuffles_responded(r.counter("node.shuffles_responded")),
      shuffles_rejected(r.counter("node.shuffles_rejected")),
      shuffle_failures(r.counter("node.shuffle_failures")),
      verification_failures(r.counter("node.verification_failures")),
      history_suffix_bytes(r.counter("node.history_suffix_bytes")),
      leaves_reported(r.counter("node.leaves_reported")),
      relays_forwarded(r.counter("node.relays_forwarded")),
      rpc_retries(r.counter("node.rpc_retries")),
      rpc_exhausted(r.counter("node.rpc_exhausted")),
      join_failed(r.counter("node.join_failed")),
      witness_repairs(r.counter("node.witness_repairs")),
      blind_copies(r.counter("node.blind_copies")),
      t_make_offer(r.timer("node.make_offer")),
      t_verify_offer(r.timer("node.verify_offer")),
      t_make_response(r.timer("node.make_response")),
      t_verify_response(r.timer("node.verify_response")) {}

Node::Stats Node::stats() const {
  Stats s;
  s.shuffles_initiated = metrics_.counter_value(ids_.shuffles_initiated);
  s.shuffles_completed = metrics_.counter_value(ids_.shuffles_completed);
  s.shuffles_responded = metrics_.counter_value(ids_.shuffles_responded);
  s.shuffles_rejected = metrics_.counter_value(ids_.shuffles_rejected);
  s.shuffle_failures = metrics_.counter_value(ids_.shuffle_failures);
  s.verification_failures = metrics_.counter_value(ids_.verification_failures);
  s.history_suffix_bytes = metrics_.counter_value(ids_.history_suffix_bytes);
  s.leaves_reported = metrics_.counter_value(ids_.leaves_reported);
  s.relays_forwarded = metrics_.counter_value(ids_.relays_forwarded);
  s.rpc_retries = metrics_.counter_value(ids_.rpc_retries);
  s.rpc_exhausted = metrics_.counter_value(ids_.rpc_exhausted);
  s.witness_repairs = metrics_.counter_value(ids_.witness_repairs);
  return s;
}

void Node::update_config(const ConfigDelta& delta) {
  // Validate the whole delta before touching anything, so a failed update
  // leaves the config exactly as it was.
  if (delta.witness_count) {
    AN_ENSURE_MSG(*delta.witness_count >= 1, "witness_count must be >= 1");
  }
  if (delta.shuffle_period) {
    AN_ENSURE_MSG(*delta.shuffle_period > 0, "shuffle_period must be positive");
  }
  if (delta.shuffle_jitter_frac) {
    AN_ENSURE_MSG(*delta.shuffle_jitter_frac >= 0.0 && *delta.shuffle_jitter_frac <= 1.0,
                  "shuffle_jitter_frac must be in [0, 1]");
  }
  if (delta.depth) {
    AN_ENSURE_MSG(*delta.depth >= 1, "depth must be >= 1");
  }
  if (delta.rpc_timeout) {
    AN_ENSURE_MSG(*delta.rpc_timeout > 0, "rpc_timeout must be positive");
  }
  if (delta.sampler && *delta.sampler != config_.protocol.sampler) {
    AN_ENSURE_MSG(!running_ && state_.round() == 0,
                  "sampler backend cannot change mid-epoch");
  }
  if (delta.sampler) {
    config_.protocol.sampler = *delta.sampler;
    state_.set_sampler(*delta.sampler);
  }
  if (delta.witness_count) config_.witness_count = *delta.witness_count;
  if (delta.majority_opt) config_.majority_opt = *delta.majority_opt;
  if (delta.shuffle_period) config_.shuffle_period = *delta.shuffle_period;
  if (delta.shuffle_jitter_frac) config_.shuffle_jitter_frac = *delta.shuffle_jitter_frac;
  if (delta.depth) config_.depth = *delta.depth;
  if (delta.rpc_timeout) config_.rpc_timeout = *delta.rpc_timeout;
}

Node::Node(sim::SimNetwork& net, const std::string& addr,
           const crypto::CryptoProvider& provider, BytesView seed32, Config config,
           std::uint64_t rng_seed)
    : net_(net),
      provider_(provider),
      state_(PeerId{addr, provider.make_signer(seed32)->public_key()},
             provider.make_signer(seed32), config.protocol),
      config_(config),
      rng_(rng_seed),
      evidence_(PeerId{addr, provider.make_signer(seed32)->public_key()}),
      retry_rng_(rng_seed ^ 0x5eedbacc0ffeeULL),
      adv_rng_(rng_seed ^ 0xbadf00dc0de5ULL) {
  if (config_.durability.journal != nullptr) {
    state_.set_journal(config_.durability.journal);
  }
}

Node::~Node() {
  *alive_ = false;
  // Detach from the fabric too: a destroyed node must never leave a handler
  // behind whose captured `this` now dangles. stop() is idempotent, so nodes
  // that were stopped explicitly (or never started) are unaffected.
  stop();
}

void Node::send(const std::string& to, MsgType type, Bytes payload) {
  net_.send({state_.self().addr, to, static_cast<std::uint32_t>(type),
             std::move(payload), trace_ctx_});
}

// ---------------------------------------------------------------------------
// Causal tracing (obs/span.hpp). All helpers collapse to a null-check when
// no tracer is attached; span ids come from the tracer's own id stream, so
// attaching one never touches a protocol Rng.
// ---------------------------------------------------------------------------

std::uint64_t Node::trace_begin(std::string name, obs::TraceContext parent) {
  if (tracer_ == nullptr) return 0;
  return tracer_->begin_span(std::move(name), state_.self().addr,
                             net_.simulator().now(), parent);
}

void Node::trace_attr(std::uint64_t span, const char* key, std::string value) {
  if (tracer_ != nullptr && span != 0) tracer_->attr(span, key, std::move(value));
}

void Node::trace_end(std::uint64_t span) {
  if (tracer_ != nullptr && span != 0) tracer_->end_span(span, net_.simulator().now());
}

void Node::trace_end_outcome(std::uint64_t span, const char* outcome) {
  if (tracer_ != nullptr && span != 0) {
    tracer_->attr(span, "outcome", outcome);
    tracer_->end_span(span, net_.simulator().now());
  }
}

Node::CtxScope::CtxScope(Node& node, std::uint64_t span)
    : node_(node), saved_(node.trace_ctx_) {
  if (node.tracer_ != nullptr && span != 0) {
    node.trace_ctx_ = node.tracer_->context(span);
  }
}

Node::SpanScope::SpanScope(Node& node, const char* name, obs::TraceContext parent)
    : node_(node), saved_(node.trace_ctx_) {
  span_ = node.trace_begin(name, parent);
  if (span_ != 0) node.trace_ctx_ = node.tracer_->context(span_);
}

Node::SpanScope::~SpanScope() {
  node_.trace_end(span_);
  node_.trace_ctx_ = saved_;
}

// ---------------------------------------------------------------------------
// Outstanding-RPC table (bounded retries, docs/RESILIENCE.md).
// ---------------------------------------------------------------------------

sim::Duration Node::jittered(sim::Duration base, double jitter_frac) {
  if (jitter_frac <= 0.0) return std::max<sim::Duration>(base, 1);
  const double j = (retry_rng_.uniform01() * 2.0 - 1.0) * jitter_frac;
  return std::max<sim::Duration>(
      static_cast<sim::Duration>(static_cast<double>(base) * (1.0 + j)), 1);
}

std::uint64_t Node::send_rpc(const std::string& to, MsgType type, Bytes payload,
                             const RetryPolicy& policy,
                             std::function<void()> give_up) {
  send(to, type, payload);
  // Single-shot with nothing to do on failure: no table entry needed. (A
  // single-shot *with* a give_up is still tracked so the failure fires.)
  if (policy.attempts <= 1 && !give_up) return 0;
  const std::uint64_t id = next_rpc_++;
  OutstandingRpc rpc;
  rpc.to = to;
  rpc.type = type;
  rpc.payload = std::move(payload);
  rpc.policy = policy;
  rpc.give_up = std::move(give_up);
  rpc_table_[id] = std::move(rpc);
  schedule_rpc_retry(id, jittered(policy.base_delay, policy.jitter_frac));
  return id;
}

void Node::finish_rpc(std::uint64_t rpc_id) {
  if (rpc_id != 0) rpc_table_.erase(rpc_id);
}

void Node::schedule_rpc_retry(std::uint64_t rpc_id, sim::Duration delay) {
  auto alive = alive_;
  net_.simulator().schedule(delay, [this, alive, rpc_id] {
    if (!*alive || !running_) return;
    const auto it = rpc_table_.find(rpc_id);
    if (it == rpc_table_.end()) return;  // reply arrived; nothing to do
    OutstandingRpc& rpc = it->second;
    if (rpc.sends_done >= rpc.policy.attempts) {
      auto give_up = std::move(rpc.give_up);
      rpc_table_.erase(it);
      metrics_.add(ids_.rpc_exhausted);
      if (give_up) give_up();
      return;
    }
    ++rpc.sends_done;
    metrics_.add(ids_.rpc_retries);
    metrics_.add(metrics_.counter(std::string("node.retry.") + msg_type_name(rpc.type)));
    send(rpc.to, rpc.type, rpc.payload);
    const double factor = std::pow(rpc.policy.backoff, rpc.sends_done - 1);
    const auto next = static_cast<sim::Duration>(
        static_cast<double>(rpc.policy.base_delay) * factor);
    schedule_rpc_retry(rpc_id, jittered(next, rpc.policy.jitter_frac));
  });
}

void Node::send_blind(const std::string& to, MsgType type, Bytes payload,
                      const RetryPolicy& policy) {
  if (policy.attempts <= 1) {
    send(to, type, std::move(payload));
    return;
  }
  send(to, type, payload);
  auto alive = alive_;
  sim::Duration when = 0;
  for (int k = 1; k < policy.attempts; ++k) {
    const double factor = std::pow(policy.backoff, k - 1);
    when += jittered(
        static_cast<sim::Duration>(static_cast<double>(policy.base_delay) * factor),
        policy.jitter_frac);
    net_.simulator().schedule(when, [this, alive, to, type, payload] {
      if (!*alive || !running_) return;
      metrics_.add(ids_.blind_copies);
      send(to, type, payload);
    });
  }
}

void Node::start_as_seed() {
  AN_ENSURE_MSG(!running_, "node already started");
  running_ = true;
  joined_ = true;
  state_.init_as_seed();
  net_.attach(state_.self().addr, [this](const sim::NetMessage& m) { handle(m); });
  schedule_next_shuffle();
}

void Node::start_join(const std::string& bootstrap_addr) {
  AN_ENSURE_MSG(!running_, "node already started");
  running_ = true;
  net_.attach(state_.self().addr, [this](const sim::NetMessage& m) { handle(m); });
  wire::Writer w;
  encode_peer(w, state_.self());
  join_span_ = trace_begin("join", {});
  trace_attr(join_span_, "bootstrap", bootstrap_addr);
  CtxScope trace(*this, join_span_);
  // Bounded bootstrap: join_retry.attempts transmissions, then give up for
  // good. The node stays attached (peers can still reach it) but never
  // starts shuffling — a half-joined zombie is worse than a visible failure.
  join_rpc_ = send_rpc(bootstrap_addr, MsgType::kJoinRequest, std::move(w).take(),
                       config_.join_retry, [this] {
                         if (joined_) return;
                         join_failed_ = true;
                         metrics_.add(ids_.join_failed);
                         trace_end_outcome(join_span_, "failed");
                         join_span_ = 0;
                       });
}

void Node::start_recovered(const RecoveredNode& rec) {
  AN_ENSURE_MSG(!running_, "node already started");
  state_.restore(rec);
  // Peer standing survives the crash: quarantines and eviction verdicts were
  // journaled, so a convicted cheater cannot launder itself by waiting for
  // us to reboot. (The leave entries that removed such peers from the
  // peerset are part of the restored history already.)
  for (const auto& s : rec.standing) {
    if (s.addr == state_.self().addr) continue;
    quarantined_.insert(s.addr);
    reported_leavers_.insert(s.addr);
    auto& record = accused_[s.addr];
    for (const auto& a : s.accusers) record.accusers.insert(a);
    record.evicted = record.evicted || s.evicted;
  }
  running_ = true;
  joined_ = true;
  metrics_.add(metrics_.counter("node.recovery.restarts"));
  metrics_.add(metrics_.counter("node.recovery.entries_replayed"),
               rec.entries.size());
  net_.attach(state_.self().addr, [this](const sim::NetMessage& m) { handle(m); });
  // Skip re-announcing the epoch peers already saw before the crash — but do
  // announce with want_reply so counterparts answer with *their* latest
  // seals and the catch-up fetches flow both ways.
  announced_epoch_ = state_.checkpoint() ? state_.checkpoint()->epoch : 0;
  if (durable() && config_.durability.announce_checkpoints && state_.checkpoint()) {
    for (const auto& p : state_.peerset().sorted()) {
      if (quarantined_.contains(p.addr)) continue;
      send_checkpoint_announce(p.addr, /*want_reply=*/true);
    }
  }
  schedule_next_shuffle();
}

void Node::stop() {
  if (!running_) return;
  running_ = false;
  net_.detach(state_.self().addr);
}

std::vector<std::string> Node::quarantined_addrs() const {
  std::vector<std::string> out(quarantined_.begin(), quarantined_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> Node::evicted_addrs() const {
  std::vector<std::string> out;
  for (const auto& [addr, record] : accused_) {
    if (record.evicted) out.push_back(addr);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Node::stop_gracefully() {
  if (!running_) return;
  // Announce our own departure; recipients ping-verify (we will be gone by
  // the time the ping lands) and then record the leave.
  const auto [round, sig] = state_.make_leave_report(state_.self());
  wire::Writer w;
  encode_peer(w, state_.self());   // leaver = self
  encode_peer(w, state_.self());   // reporter = self
  w.u64(round);
  w.bytes(sig);
  const Bytes payload = std::move(w).take();
  for (const auto& p : state_.peerset().sorted()) {
    send(p.addr, MsgType::kLeaveNotice, payload);
  }
  stop();
}

void Node::handle(const sim::NetMessage& msg) {
  if (!running_) return;
  // Quarantined peers are cut off entirely; whatever they have to say, a
  // convicted cheater saying it is not evidence. (Their traffic must not
  // refresh last_rx_ either — the self-quarantine gate measures contact with
  // the honest network.)
  if (acct() && quarantined_.contains(msg.from)) {
    metrics_.add(metrics_.counter("acc.drop.quarantined"));
    return;
  }
  last_rx_ = net_.simulator().now();
  try {
    switch (static_cast<MsgType>(msg.type)) {
      case MsgType::kJoinRequest: on_join_request(msg); break;
      case MsgType::kJoinReply: on_join_reply(msg); break;
      case MsgType::kRoundQuery: on_round_query(msg); break;
      case MsgType::kRoundReply: on_round_reply(msg); break;
      case MsgType::kShuffleOffer: on_shuffle_offer(msg); break;
      case MsgType::kShuffleResponse: on_shuffle_response(msg); break;
      case MsgType::kShuffleReject: on_shuffle_reject(msg); break;
      case MsgType::kPing: on_ping(msg); break;
      case MsgType::kPong: on_pong(msg); break;
      case MsgType::kLeaveNotice: on_leave_notice(msg); break;
      case MsgType::kNeighborhoodQuery: on_neighborhood_query(msg); break;
      case MsgType::kNeighborhoodReply: on_neighborhood_reply(msg); break;
      case MsgType::kChannelRequest: on_channel_request(msg); break;
      case MsgType::kChannelAccept: on_channel_accept(msg); break;
      case MsgType::kChannelFinalize: on_channel_finalize(msg); break;
      case MsgType::kWitnessInvite: on_witness_invite(msg); break;
      case MsgType::kWitnessAck: on_witness_ack(msg); break;
      case MsgType::kDataRelay: on_data_relay(msg); break;
      case MsgType::kDataForward: on_data_forward(msg); break;
      case MsgType::kTestimonyQuery: on_testimony_query(msg); break;
      case MsgType::kTestimonyReply: on_testimony_reply(msg); break;
      case MsgType::kEntryQuery: on_entry_query(msg); break;
      case MsgType::kEntryReply: on_entry_reply(msg); break;
      case MsgType::kWitnessUpdate: on_witness_update(msg); break;
      case MsgType::kWitnessUpdateAck: on_witness_update_ack(msg); break;
      case MsgType::kAccusation: on_accusation(msg); break;
      case MsgType::kAccusationAck: on_accusation_ack(msg); break;
      case MsgType::kCheckpointAnnounce: on_checkpoint_announce(msg); break;
      case MsgType::kSegmentRequest: on_segment_request(msg); break;
      case MsgType::kSegmentData: on_segment_data(msg); break;
    }
  } catch (const wire::DecodeError&) {
    // Malformed traffic from a buggy/malicious peer: drop it.
    metrics_.add(ids_.verification_failures);
  }
  // A handler above may have committed entries and crossed the seal
  // threshold; broadcast the fresh checkpoint while the peerset that should
  // hear about it is still current.
  if (durable()) maybe_announce_checkpoint();
}

// ---------------------------------------------------------------------------
// Join.
// ---------------------------------------------------------------------------

void Node::on_join_request(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const PeerId joiner = decode_peer(r);
  r.expect_done();
  if (joiner.addr != msg.from) return;
  SpanScope span(*this, "join.serve", msg.trace);

  // Entry stamp σ_bn(addr_i) plus a neighbor list the joiner samples from.
  const Bytes stamp = state_.signer().sign(join_stamp_payload(joiner.addr));
  std::vector<PeerId> neighbors = state_.peerset().sorted();
  neighbors.push_back(state_.self());

  wire::Writer w;
  encode_peer(w, state_.self());
  w.bytes(stamp);
  encode_peer_list(w, neighbors);
  send(msg.from, MsgType::kJoinReply, std::move(w).take());
}

void Node::on_join_reply(const sim::NetMessage& msg) {
  // join_failed_ is terminal: a reply that limps in after we gave up no
  // longer changes the node's fate (tests and operators already saw it).
  if (joined_ || join_failed_) return;
  wire::Reader r(msg.payload);
  const PeerId bootstrap = decode_peer(r);
  const Bytes stamp = r.bytes();
  const std::vector<PeerId> neighbors = decode_peer_list(r);
  r.expect_done();
  if (bootstrap.addr != msg.from) return;
  if (!engine_.verify(bootstrap.key, join_stamp_payload(state_.self().addr), stamp)) {
    metrics_.add(ids_.verification_failures);
    return;
  }

  // Verifiable initial sample: up to f nodes, VRF-seeded by the entry stamp
  // (the joiner cannot predict it before contacting the bootstrap).
  Peerset candidates(neighbors);
  candidates.erase(state_.self());
  const Draw draw =
      sampler().draw(state_.signer(), candidates, config_.protocol.max_peerset,
                     "an.join.sample", stamp);
  {
    SpanScope span(*this, "join.apply", msg.trace);
    span.attr("sampled", std::to_string(draw.sample.size()));
    state_.apply_join(bootstrap, stamp, draw.sample);
    joined_ = true;
    finish_rpc(join_rpc_);
    join_rpc_ = 0;
    schedule_next_shuffle();
  }
  trace_end_outcome(join_span_, "joined");
  join_span_ = 0;
}

// ---------------------------------------------------------------------------
// Shuffling.
// ---------------------------------------------------------------------------

void Node::schedule_next_shuffle() {
  const auto period = static_cast<double>(config_.shuffle_period);
  const double jitter = (rng_.uniform01() * 2.0 - 1.0) * config_.shuffle_jitter_frac;
  const auto delay = static_cast<sim::Duration>(period * (1.0 + jitter));
  auto alive = alive_;
  net_.simulator().schedule(std::max<sim::Duration>(delay, 1), [this, alive] {
    if (!*alive || !running_) return;
    begin_shuffle();
    schedule_next_shuffle();
  });
}

void Node::begin_shuffle() {
  if (!joined_ || pending_.has_value() || behavior_.refuse_shuffles) return;

  // Adversary equivocation: on alternating initiations, present a doctored
  // history — a copy of the real proof suffix whose last shuffle entry admits
  // a fabricated peer. Entry signatures cover only the nonce, so the doctored
  // suffix passes inline verification; it is caught when two body-signed
  // exchanges show conflicting entries for the same round.
  std::optional<PendingShuffle::Doctored> doctored;
  if (adversary_.equivocate && (adv_initiations_++ % 2 == 1) &&
      adv_rng_.uniform01() < adversary_.attack_rate) {
    PendingShuffle::Doctored d;
    d.suffix = state_.history().proof_suffix(state_.peerset());
    if (!d.suffix.empty() && d.suffix.back().kind != EntryKind::kLeave) {
      d.suffix.back().in.push_back(fabricated_peer(state_.self().addr));
      d.claimed = UpdateHistory::reconstruct(d.suffix).sorted();
      doctored = std::move(d);
    }
  }

  std::optional<PartnerChoice> choice;
  if (doctored) {
    // The partner draw must replay over the *claimed* set or the proofs give
    // the lie away immediately. If the VRF lands on the fabricated peer
    // (nobody answers there), fall back to an honest round.
    const auto draw = sampler().draw_one(state_.signer(), Peerset(doctored->claimed),
                                         kPartnerDomain, round_nonce(state_.round()));
    if (draw && !draw->sample.empty() &&
        state_.peerset().contains(draw->sample.front())) {
      choice = PartnerChoice{draw->sample.front(), draw->proofs};
    } else {
      doctored.reset();
    }
  }
  if (!choice) choice = choose_partner(state_);
  if (!choice) return;  // empty peerset
  if (acct() && quarantined_.contains(choice->partner.addr)) {
    // Belt-and-braces (quarantine already removed the peer from the
    // peerset): never court a convicted cheater. Burn the round for a fresh
    // draw next period.
    state_.skip_round();
    return;
  }
  metrics_.add(ids_.shuffles_initiated);
  PendingShuffle p;
  p.partner = choice->partner;
  p.choice = *choice;
  p.round_at_start = state_.round();
  p.epoch = ++shuffle_epoch_;
  p.doctored = std::move(doctored);
  p.span = trace_begin("shuffle", {});
  trace_attr(p.span, "partner", choice->partner.addr);
  trace_attr(p.span, "round", std::to_string(state_.round()));
  pending_ = std::move(p);

  wire::Writer w;
  encode_peer(w, state_.self());
  CtxScope trace(*this, pending_->span);
  pending_->query_rpc = send_rpc(choice->partner.addr, MsgType::kRoundQuery,
                                 std::move(w).take(), config_.query_retry);
  schedule_shuffle_timeout();
}

void Node::schedule_shuffle_timeout() {
  // (Re)arms the abort deadline for the current exchange leg. Each leg gets
  // a fresh token, so an earlier timer that fires after progress was made is
  // a no-op instead of a spurious abort.
  if (!pending_) return;
  pending_->timeout_token = ++timeout_seq_;
  const auto token = pending_->timeout_token;
  const auto epoch = pending_->epoch;
  auto alive = alive_;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, epoch, token] {
    if (!*alive || !running_) return;
    if (pending_ && pending_->epoch == epoch && pending_->timeout_token == token) {
      abort_shuffle(/*partner_suspect=*/true);
    }
  });
}

void Node::abort_shuffle(bool partner_suspect) {
  if (!pending_) return;
  finish_rpc(pending_->query_rpc);
  finish_rpc(pending_->offer_rpc);
  trace_end_outcome(pending_->span, "aborted");
  metrics_.add(ids_.shuffle_failures);
  const PeerId partner = pending_->partner;
  pending_.reset();
  ++shuffle_epoch_;
  // Burn the round so the next initiation draws a fresh partner.
  state_.skip_round();
  if (partner_suspect) {
    const int fails = ++partner_failures_.at_or_insert(partner.addr);
    if (fails >= config_.failures_before_leave_check) {
      partner_failures_.erase(partner.addr);
      suspect_peer(partner);
    }
  }
}

void Node::on_round_query(const sim::NetMessage& msg) {
  if (!joined_ || behavior_.refuse_shuffles) return;
  wire::Reader r(msg.payload);
  const PeerId initiator = decode_peer(r);
  r.expect_done();
  if (initiator.addr != msg.from) return;
  SpanScope span(*this, "shuffle.round_query", msg.trace);
  wire::Writer w;
  encode_peer(w, state_.self());
  w.u64(state_.round());
  send(msg.from, MsgType::kRoundReply, std::move(w).take());
}

void Node::on_round_reply(const sim::NetMessage& msg) {
  if (!pending_ || pending_->offer_sent || msg.from != pending_->partner.addr) return;
  wire::Reader r(msg.payload);
  const PeerId responder = decode_peer(r);
  const Round responder_round = r.u64();
  r.expect_done();
  if (!(responder == pending_->partner)) return;
  finish_rpc(pending_->query_rpc);
  pending_->query_rpc = 0;
  if (state_.round() != pending_->round_at_start) {
    // A leave report advanced our round since the partner draw; the proofs
    // no longer match the round we would offer. Quietly retry next period.
    trace_end_outcome(pending_->span, "stale_round");
    pending_.reset();
    ++shuffle_epoch_;
    return;
  }
  CtxScope trace(*this, pending_->span);

  {
    obs::ScopedTimer t(&metrics_, ids_.t_make_offer);
    pending_->offer = make_offer(state_, pending_->choice, responder_round);
  }
  if (pending_->doctored) {
    // Re-dress the offer with the doctored history: identity and round
    // signature stay real, but claim, suffix, and sample all derive from the
    // forged set (internally consistent, so it verifies inline).
    ShuffleOffer& o = pending_->offer;
    o.claimed_peerset = pending_->doctored->claimed;
    o.history_suffix = pending_->doctored->suffix;
    const Peerset claimed(pending_->doctored->claimed);
    const Draw draw = sampler().draw(state_.signer(), claimed.minus({pending_->partner}),
                                     config_.protocol.shuffle_length - 1, kSampleDomain,
                                     round_nonce(responder_round));
    o.sample = draw.sample;
    o.sample_proofs = draw.proofs;
    metrics_.add(metrics_.counter("adv.attack.equivocate"));
  }
  if (adversary_.bias_sample && adv_rng_.uniform01() < adversary_.attack_rate) {
    // Biased (non-VRF) sample: swap a hand-picked member (a colluder if one
    // is in reach) into the sample while keeping the original proofs. The
    // responder's proof replay sees a different draw than the one claimed.
    ShuffleOffer& o = pending_->offer;
    std::optional<PeerId> sub;
    for (const auto& p : o.claimed_peerset) {
      const bool in_sample =
          std::any_of(o.sample.begin(), o.sample.end(),
                      [&](const PeerId& s) { return s.addr == p.addr; });
      if (in_sample || p.addr == pending_->partner.addr ||
          p.addr == state_.self().addr) {
        continue;
      }
      if (adversary_.colludes_with(p.addr)) {
        sub = p;
        break;
      }
      if (!sub) sub = p;
    }
    if (sub && !o.sample.empty()) {
      o.sample.front() = *sub;
      metrics_.add(metrics_.counter("adv.attack.bias_sample"));
    }
  }
  if (adversary_.forge_history && !pending_->offer.history_suffix.empty() &&
      !pending_->offer.history_suffix.back().signature.empty() &&
      adv_rng_.uniform01() < adversary_.attack_rate) {
    // Forged entry: the counterpart signature no longer verifies.
    pending_->offer.history_suffix.back().signature.front() ^= 0x01;
    metrics_.add(metrics_.counter("adv.attack.forge_history"));
  }
  if (adversary_.truncate_history && !pending_->offer.history_suffix.empty() &&
      adv_rng_.uniform01() < adversary_.attack_rate) {
    // Truncated suffix: reconstruction no longer matches the claimed set.
    pending_->offer.history_suffix.erase(pending_->offer.history_suffix.begin());
    metrics_.add(metrics_.counter("adv.attack.truncate_history"));
  }
  if (acct()) {
    // Body signature comes last: the adversary signs what it actually sends,
    // which is exactly what turns its cheating into transferable evidence.
    pending_->offer.body_sig = state_.signer().sign(
        offer_body_payload(pending_->offer.encode_core(), pending_->partner));
  }
  pending_->offer_sent = true;
  const Bytes payload = pending_->offer.encode();
  metrics_.add(ids_.history_suffix_bytes, payload.size());
  pending_->offer_rpc =
      send_rpc(msg.from, MsgType::kShuffleOffer, payload, config_.query_retry);
  schedule_shuffle_timeout();
}

void Node::on_shuffle_offer(const sim::NetMessage& msg) {
  auto reject = [&](std::uint8_t code) {
    wire::Writer w;
    w.u8(code);  // 1 = busy, 2 = verification failed
    send(msg.from, MsgType::kShuffleReject, std::move(w).take());
  };
  if (!joined_ || behavior_.refuse_shuffles) return;
  const ShuffleOffer offer = ShuffleOffer::decode(msg.payload);
  if (offer.initiator.addr != msg.from) return;
  SpanScope span(*this, "shuffle.respond", msg.trace);

  // Replay defense: an initiator's offered round must move forward. The one
  // exception is a retransmission of the exact offer we already committed —
  // an at-least-once initiator may have missed our response, so we resend
  // the cached one instead of branding it a replay (which would make the
  // initiator abort and suspect us).
  const Round* floor = last_seen_initiator_round_.find(offer.initiator.addr);
  if (floor != nullptr && offer.initiator_round <= *floor) {
    if (offer.initiator_round == *floor) {
      if (const auto* cached = response_cache_.find(offer.initiator.addr);
          cached != nullptr && cached->first == offer.initiator_round) {
        span.attr("outcome", "resend_cached");
        send(msg.from, MsgType::kShuffleResponse, cached->second);
        return;
      }
    }
    metrics_.add(ids_.shuffles_rejected);
    span.attr("outcome", "rejected_replay");
    reject(2);
    return;
  }
  if (pending_.has_value()) {
    span.attr("outcome", "busy");
    reject(1);
    return;
  }

  // Benign race: our round advanced after we handed out the nonce (we
  // shuffled or recorded a leave in between). Not a protocol violation.
  if (offer.responder_round != state_.round()) {
    span.attr("outcome", "stale_round");
    reject(1);
    return;
  }

  if (acct()) {
    // Unsigned or mis-signed offers carry no accountability and are refused
    // outright — everything past this point is attributable to the sender.
    if (const VerifyError be = check_offer_body_sig(offer, state_.self(), engine_);
        be != VerifyError::kNone) {
      metrics_.add(ids_.shuffles_rejected);
      metrics_.add(ids_.verification_failures);
      metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(be)));
      span.attr("outcome", "bad_body_sig");
      reject(2);
      return;
    }
  }

  VerifyResult v;
  {
    obs::ScopedTimer t(&metrics_, ids_.t_verify_offer);
    v = verify_offer(offer, state_, state_.round(), engine_);
  }
  if (!v) {
    metrics_.add(ids_.shuffles_rejected);
    metrics_.add(ids_.verification_failures);
    metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(v.code)));
    span.attr("outcome", "verify_failed");
    span.attr("reject", error_tag(v.code));
    if (acct()) {
      // The offer is body-signed yet fails a check an honest node can never
      // fail (the only stateful check — the round-nonce echo — was handled
      // above as benign). Package it as transferable evidence.
      Accusation acc;
      acc.kind = AccusationKind::kInvalidOffer;
      acc.accused = offer.initiator;
      ExchangeItem item;
      item.shape = 1;
      item.offer = msg.payload;
      item.counterpart = state_.self();
      acc.items.push_back(std::move(item));
      raise_accusation(std::move(acc));
    }
    reject(2);
    return;
  }
  if (acct()) {
    ExchangeItem item;
    item.shape = 1;
    item.offer = msg.payload;
    item.counterpart = state_.self();
    note_exchange_entries(offer.initiator, offer.history_suffix, std::move(item));
    if (quarantined_.contains(msg.from)) {
      // The cross-check just convicted the initiator (history equivocation):
      // do not commit a shuffle against the forked history.
      span.attr("outcome", "equivocation");
      reject(2);
      return;
    }
  }
  last_seen_initiator_round_.put(offer.initiator.addr, offer.initiator_round);
  partner_failures_.erase(offer.initiator.addr);

  ShuffleResponse resp;
  {
    obs::ScopedTimer t(&metrics_, ids_.t_make_response);
    resp = make_response_and_commit(state_, offer);
  }
  if (acct()) {
    resp.body_sig = state_.signer().sign(
        response_body_payload(msg.payload, resp.encode_core()));
  }
  purge_reported_leavers();
  metrics_.add(ids_.shuffles_responded);
  const Bytes payload = resp.encode();
  metrics_.add(ids_.history_suffix_bytes, payload.size());
  response_cache_.put(offer.initiator.addr, {offer.initiator_round, payload});
  span.attr("outcome", "committed");
  send(msg.from, MsgType::kShuffleResponse, payload);
}

void Node::on_shuffle_response(const sim::NetMessage& msg) {
  if (!pending_ || !pending_->offer_sent || msg.from != pending_->partner.addr) return;
  finish_rpc(pending_->offer_rpc);
  pending_->offer_rpc = 0;
  CtxScope trace(*this, pending_->span);
  const ShuffleResponse resp = ShuffleResponse::decode(msg.payload);
  Bytes offer_wire;
  if (acct()) {
    // Exact bytes we sent (including our body signature) — the responder's
    // body signature binds them, making the pair verify as a unit.
    offer_wire = pending_->offer.encode();
    if (const VerifyError be = check_response_body_sig(resp, offer_wire, engine_);
        be != VerifyError::kNone) {
      metrics_.add(ids_.verification_failures);
      metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(be)));
      abort_shuffle(/*partner_suspect=*/true);
      return;
    }
  }
  VerifyResult v;
  {
    obs::ScopedTimer t(&metrics_, ids_.t_verify_response);
    v = verify_response(resp, state_, pending_->offer, engine_);
  }
  if (!v) {
    metrics_.add(ids_.verification_failures);
    metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(v.code)));
    if (acct()) {
      // Body-signed response failing a static check: transferable evidence
      // (the signature binds it to our exact offer, so replaying the checks
      // needs no trust in us).
      Accusation acc;
      acc.kind = AccusationKind::kInvalidResponse;
      acc.accused = resp.responder;
      ExchangeItem item;
      item.shape = 2;
      item.offer = offer_wire;
      item.response = msg.payload;
      acc.items.push_back(std::move(item));
      raise_accusation(std::move(acc));
    }
    abort_shuffle(/*partner_suspect=*/true);
    return;
  }
  if (acct()) {
    ExchangeItem item;
    item.shape = 2;
    item.offer = offer_wire;
    item.response = msg.payload;
    note_exchange_entries(resp.responder, resp.history_suffix, std::move(item));
    if (!pending_ || quarantined_.contains(msg.from)) {
      // The cross-check convicted the responder (and already aborted the
      // exchange): do not commit against the forked history.
      abort_shuffle(/*partner_suspect=*/false);
      return;
    }
  }
  apply_offer_outcome(state_, pending_->offer, resp);
  purge_reported_leavers();
  metrics_.add(ids_.shuffles_completed);
  partner_failures_.erase(msg.from);
  trace_end_outcome(pending_->span, "completed");
  pending_.reset();
  ++shuffle_epoch_;
}

void Node::on_shuffle_reject(const sim::NetMessage& msg) {
  if (!pending_ || msg.from != pending_->partner.addr) return;
  wire::Reader r(msg.payload);
  const std::uint8_t code = r.u8();
  // Code 1 is the benign busy/round-mismatch refusal; it is protocol
  // behavior, not a liveness failure, so liveness metrics can subtract it.
  if (code != 2) metrics_.add(metrics_.counter("node.shuffles_rejected_benign"));
  abort_shuffle(/*partner_suspect=*/code == 2);
}

// ---------------------------------------------------------------------------
// Leave detection.
// ---------------------------------------------------------------------------

void Node::purge_reported_leavers() {
  // Shuffling can re-introduce a peer we already know to be gone (other
  // nodes still circulate it until they notice). Re-record the leave so our
  // reconstruction stays exact and the zombie peer is dropped again.
  std::vector<PeerId> zombies;
  for (const auto& p : state_.peerset().sorted()) {
    if (reported_leavers_.contains(p.addr)) zombies.push_back(p);
  }
  for (const auto& z : zombies) {
    const auto [round, sig] = state_.make_leave_report(z);
    state_.apply_leave_report(state_.self(), round, sig, z);
  }
}

void Node::suspect_peer(const PeerId& peer) {
  if (reported_leavers_.contains(peer.addr) || ping_probes_.contains(peer.addr)) return;
  PingProbe probe;
  probe.target = peer;
  ping_probes_[peer.addr] = std::move(probe);
  // Blind redundancy: under loss a single lost ping (or pong) would evict a
  // live peer; extra copies make the probe see through the noise.
  send_blind(peer.addr, MsgType::kPing, {}, config_.blind_retry);

  auto alive = alive_;
  const std::string addr = peer.addr;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, addr] {
    if (!*alive || !running_) return;
    const auto it = ping_probes_.find(addr);
    if (it == ping_probes_.end()) return;  // pong arrived
    const PingProbe probe = it->second;
    ping_probes_.erase(it);
    reported_leavers_.insert(addr);
    if (probe.from_notice) {
      // Confirmed someone else's report: record it as received.
      state_.apply_leave_report(probe.reporter, probe.reporter_round, probe.report_sig,
                                probe.target);
      engine_.invalidate(probe.target);
      trigger_witness_repair(addr);
      return;
    }
    // We are the reporter: log, then inform our peers (Sec. IV-A, Leaving).
    metrics_.add(ids_.leaves_reported);
    const auto [round, sig] = state_.make_leave_report(probe.target);
    wire::Writer w;
    encode_peer(w, probe.target);
    encode_peer(w, state_.self());
    w.u64(round);
    w.bytes(sig);
    const Bytes payload = std::move(w).take();
    for (const auto& p : state_.peerset().sorted()) {
      if (!(p == probe.target)) send(p.addr, MsgType::kLeaveNotice, payload);
    }
    state_.apply_leave_report(state_.self(), round, sig, probe.target);
    engine_.invalidate(probe.target);
    trigger_witness_repair(addr);
  });
}

void Node::on_leave_notice(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const PeerId leaver = decode_peer(r);
  const PeerId reporter = decode_peer(r);
  const Round reporter_round = r.u64();
  const Bytes sig = r.bytes();
  r.expect_done();
  if (leaver == state_.self()) return;
  if (reported_leavers_.contains(leaver.addr) || ping_probes_.contains(leaver.addr)) return;
  if (!engine_.verify(reporter.key, leave_payload(reporter_round, leaver.addr), sig)) {
    metrics_.add(ids_.verification_failures);
    return;
  }
  // Independent liveness check before trusting the report.
  PingProbe probe;
  probe.target = leaver;
  probe.from_notice = true;
  probe.reporter = reporter;
  probe.reporter_round = reporter_round;
  probe.report_sig = sig;
  ping_probes_[leaver.addr] = std::move(probe);
  send_blind(leaver.addr, MsgType::kPing, {}, config_.blind_retry);

  auto alive = alive_;
  const std::string addr = leaver.addr;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, addr] {
    if (!*alive || !running_) return;
    const auto it = ping_probes_.find(addr);
    if (it == ping_probes_.end()) return;
    const PingProbe probe = it->second;
    ping_probes_.erase(it);
    reported_leavers_.insert(addr);
    state_.apply_leave_report(probe.reporter, probe.reporter_round, probe.report_sig,
                              probe.target);
    engine_.invalidate(probe.target);
    trigger_witness_repair(addr);
  });
}

void Node::on_ping(const sim::NetMessage& msg) {
  send(msg.from, MsgType::kPong, {});
}

void Node::on_pong(const sim::NetMessage& msg) {
  ping_probes_.erase(msg.from);
  partner_failures_.erase(msg.from);
}

// ---------------------------------------------------------------------------
// Neighborhood flooding.
// ---------------------------------------------------------------------------

void Node::discover_neighborhood(std::function<void(std::vector<PeerId>)> done) {
  if (probe_.has_value()) {
    // One flood at a time; queue the request and reuse the machinery.
    probe_queue_.push_back(std::move(done));
    return;
  }
  NeighborhoodProbe probe;
  probe.query_id = (fnv1a(state_.self().addr) << 16) | next_query_id_++;
  probe.done = std::move(done);
  probe_ = std::move(probe);
  seen_queries_.insert(probe_->query_id);

  wire::Writer w;
  w.u64(probe_->query_id);
  encode_peer(w, state_.self());
  w.varint(config_.depth);
  const Bytes payload = std::move(w).take();
  for (const auto& p : state_.peerset().sorted()) {
    send(p.addr, MsgType::kNeighborhoodQuery, payload);
  }

  auto alive = alive_;
  const auto wait =
      config_.neighborhood_wait * static_cast<sim::Duration>(std::max<std::size_t>(config_.depth, 1));
  net_.simulator().schedule(wait, [this, alive] {
    if (!*alive || !running_ || !probe_) return;
    std::vector<PeerId> found;
    found.reserve(probe_->found.size());
    for (const auto& p : probe_->found) {
      // Quarantined peers must not surface as witness candidates.
      if (!acct() || !quarantined_.contains(p.addr)) found.push_back(p);
    }
    auto done = std::move(probe_->done);
    probe_.reset();
    done(std::move(found));
    if (!probe_queue_.empty()) {
      auto next = std::move(probe_queue_.front());
      probe_queue_.erase(probe_queue_.begin());
      discover_neighborhood(std::move(next));
    }
  });
}

void Node::on_neighborhood_query(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t query_id = r.u64();
  const PeerId origin = decode_peer(r);
  const std::uint64_t ttl = r.varint();
  r.expect_done();
  if (origin == state_.self()) return;
  if (!seen_queries_.insert(query_id)) return;  // already served

  wire::Writer reply;
  reply.u64(query_id);
  encode_peer(reply, state_.self());
  send(origin.addr, MsgType::kNeighborhoodReply, std::move(reply).take());

  if (ttl > 1) {
    wire::Writer fwd;
    fwd.u64(query_id);
    encode_peer(fwd, origin);
    fwd.varint(ttl - 1);
    const Bytes payload = std::move(fwd).take();
    for (const auto& p : state_.peerset().sorted()) {
      if (p.addr != msg.from && !(p == origin)) {
        send(p.addr, MsgType::kNeighborhoodQuery, payload);
      }
    }
  }
}

void Node::on_neighborhood_reply(const sim::NetMessage& msg) {
  if (!probe_) return;
  wire::Reader r(msg.payload);
  const std::uint64_t query_id = r.u64();
  const PeerId responder = decode_peer(r);
  r.expect_done();
  if (query_id != probe_->query_id) return;
  if (responder.addr != msg.from || responder == state_.self()) return;
  probe_->found.insert(responder);
}

// ---------------------------------------------------------------------------
// Channels (witness formation + witnessed relay).
// ---------------------------------------------------------------------------

void Node::open_channel(const std::string& consumer_addr, ChannelReadyCallback on_ready) {
  AN_ENSURE_MSG(joined_, "open_channel before join completes");
  const std::uint64_t id = (fnv1a(state_.self().addr) << 20) | next_channel_id_++;
  ProducerChannel ch;
  ch.id = id;
  ch.consumer.addr = consumer_addr;
  ch.on_ready = std::move(on_ready);
  ch.span = trace_begin("channel", {});
  trace_attr(ch.span, "consumer", consumer_addr);
  trace_attr(ch.span, "channel", std::to_string(id));
  producer_channels_[id] = std::move(ch);

  // Setup deadline: discovery + exchange + invites must complete within a
  // bounded window or the channel fails (e.g. a witness died mid-setup).
  auto alive = alive_;
  net_.simulator().schedule(
      config_.neighborhood_wait * 4 + config_.rpc_timeout * 4, [this, alive, id] {
        if (!*alive || !running_) return;
        const auto it = producer_channels_.find(id);
        if (it == producer_channels_.end() || it->second.ready) return;
        finish_channel_rpcs(it->second);
        trace_end_outcome(it->second.span, "timed_out");
        auto cb = std::move(it->second.on_ready);
        producer_channels_.erase(it);
        if (cb) cb(id, false);
      });

  discover_neighborhood([this, id, consumer_addr](std::vector<PeerId> found) {
    auto it = producer_channels_.find(id);
    if (it == producer_channels_.end()) return;
    it->second.my_neighborhood = std::move(found);
    it->second.my_round = state_.round();
    wire::Writer w;
    w.u64(id);
    encode_peer(w, state_.self());
    w.u64(it->second.my_round);
    encode_peer_list(w, it->second.my_neighborhood);
    CtxScope trace(*this, it->second.span);
    it->second.request_rpc = send_rpc(consumer_addr, MsgType::kChannelRequest,
                                      std::move(w).take(), config_.channel_retry);
  });
}

void Node::finish_channel_rpcs(ProducerChannel& ch) {
  finish_rpc(ch.request_rpc);
  ch.request_rpc = 0;
  for (const auto& [addr, rpc] : ch.invite_rpcs) finish_rpc(rpc);
  ch.invite_rpcs.clear();
}

void Node::on_channel_request(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const PeerId producer = decode_peer(r);
  const Round producer_round = r.u64();
  std::vector<PeerId> producer_nbh = decode_peer_list(r);
  r.expect_done();
  if (producer.addr != msg.from || !joined_) return;

  if (const auto dup = consumer_channels_.find(id); dup != consumer_channels_.end()) {
    // Retransmitted request (the producer may have missed our accept): the
    // draw is already committed, so resend it verbatim rather than redraw.
    if (dup->second.producer.addr == msg.from && !dup->second.accept_payload.empty()) {
      send(msg.from, MsgType::kChannelAccept, dup->second.accept_payload);
    }
    return;
  }

  ConsumerChannel ch;
  ch.id = id;
  ch.producer = producer;
  ch.producer_round = producer_round;
  ch.producer_neighborhood = std::move(producer_nbh);
  consumer_channels_[id] = std::move(ch);

  // Discovery is asynchronous; carry the request's causal context into the
  // callback so the accept leg stays on the producer's channel trace.
  const obs::TraceContext req_ctx = msg.trace;
  discover_neighborhood([this, id, producer, req_ctx](std::vector<PeerId> mine) {
    auto it = consumer_channels_.find(id);
    if (it == consumer_channels_.end()) return;
    ConsumerChannel& ch = it->second;
    ch.my_neighborhood = std::move(mine);
    ch.my_round = state_.round();
    const auto plan = plan_witness_group(ch.producer_neighborhood, ch.my_neighborhood,
                                         producer, state_.self(), config_.witness_count);
    const Bytes nonce =
        channel_nonce(producer, ch.producer_round, state_.self(), ch.my_round);
    const Draw draw = draw_witnesses(sampler(), state_.signer(),
                                     plan.candidates_consumer, plan.quota_consumer,
                                     nonce);
    ch.witnesses = draw.sample;  // producer half is merged at finalize
    wire::Writer w;
    w.u64(id);
    encode_peer(w, state_.self());
    w.u64(ch.my_round);
    encode_peer_list(w, ch.my_neighborhood);
    encode_peer_list(w, draw.sample);
    encode_bytes_list(w, draw.proofs);
    ch.accept_payload = std::move(w).take();
    SpanScope span(*this, "channel.accept", req_ctx);
    span.attr("witness_draw", std::to_string(ch.witnesses.size()));
    send(producer.addr, MsgType::kChannelAccept, ch.accept_payload);
  });
}

void Node::on_channel_accept(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const PeerId consumer = decode_peer(r);
  const Round consumer_round = r.u64();
  const std::vector<PeerId> consumer_nbh = decode_peer_list(r);
  const std::vector<PeerId> consumer_draw = decode_peer_list(r);
  const std::vector<Bytes> consumer_proofs = decode_bytes_list(r);
  r.expect_done();

  const auto it = producer_channels_.find(id);
  if (it == producer_channels_.end() || consumer.addr != msg.from) return;
  ProducerChannel& ch = it->second;
  if (ch.accepted) {
    // Duplicate accept: our finalize may have been lost — resend it. The
    // draw must not be redone (the witnesses are already committed).
    if (!ch.finalize_payload.empty()) {
      send(msg.from, MsgType::kChannelFinalize, ch.finalize_payload);
    }
    return;
  }
  finish_rpc(ch.request_rpc);
  ch.request_rpc = 0;
  ch.consumer = consumer;
  ch.consumer_round = consumer_round;
  SpanScope span(*this, "channel.finalize", msg.trace);

  const auto plan = plan_witness_group(ch.my_neighborhood, consumer_nbh, state_.self(),
                                       consumer, config_.witness_count);
  const Bytes nonce = channel_nonce(state_.self(), ch.my_round, consumer, consumer_round);
  if (const auto v = verify_witnesses(sampler(), engine_, consumer.key,
                                      plan.candidates_consumer, plan.quota_consumer,
                                      nonce, consumer_proofs, consumer_draw);
      !v) {
    metrics_.add(ids_.verification_failures);
    span.attr("outcome", "verify_failed");
    trace_end_outcome(ch.span, "failed");
    if (ch.on_ready) ch.on_ready(id, false);
    producer_channels_.erase(it);
    return;
  }
  ch.accepted = true;
  const Draw my_draw = draw_witnesses(sampler(), state_.signer(),
                                      plan.candidates_producer, plan.quota_producer,
                                      nonce);
  ch.witnesses = merge_witnesses(my_draw.sample, consumer_draw);

  // Tell the consumer our half of the draw (it re-verifies symmetrically).
  wire::Writer w;
  w.u64(id);
  encode_peer_list(w, my_draw.sample);
  encode_bytes_list(w, my_draw.proofs);
  encode_peer_list(w, ch.my_neighborhood);
  w.u64(ch.my_round);
  ch.finalize_payload = std::move(w).take();
  send_blind(consumer.addr, MsgType::kChannelFinalize, ch.finalize_payload,
             config_.blind_retry);

  // Invite every witness.
  wire::Writer inv;
  inv.u64(id);
  encode_peer(inv, state_.self());
  encode_peer(inv, consumer);
  const Bytes invite = std::move(inv).take();
  for (const auto& w_id : ch.witnesses) {
    ch.invite_rpcs[w_id.addr] =
        send_rpc(w_id.addr, MsgType::kWitnessInvite, invite, config_.channel_retry);
  }
  if (ch.witnesses.empty() && ch.on_ready) {
    trace_end_outcome(ch.span, "no_witnesses");
    ch.on_ready(id, false);
    producer_channels_.erase(it);
  }
}

void Node::on_channel_finalize(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::vector<PeerId> producer_draw = decode_peer_list(r);
  const std::vector<Bytes> producer_proofs = decode_bytes_list(r);
  const std::vector<PeerId> producer_nbh = decode_peer_list(r);
  const Round producer_round = r.u64();
  r.expect_done();

  const auto it = consumer_channels_.find(id);
  if (it == consumer_channels_.end() || it->second.producer.addr != msg.from) return;
  ConsumerChannel& ch = it->second;
  if (ch.ready) return;  // duplicate finalize: the merge already happened
  SpanScope span(*this, "channel.apply", msg.trace);

  // The producer's neighborhood must match what it sent at request time
  // (otherwise it could shop for a candidate set after seeing our draw).
  if (producer_nbh != ch.producer_neighborhood || producer_round != ch.producer_round) {
    metrics_.add(ids_.verification_failures);
    consumer_channels_.erase(it);
    return;
  }
  const auto plan = plan_witness_group(ch.producer_neighborhood, ch.my_neighborhood,
                                       ch.producer, state_.self(), config_.witness_count);
  const Bytes nonce =
      channel_nonce(ch.producer, ch.producer_round, state_.self(), ch.my_round);
  if (const auto v = verify_witnesses(sampler(), engine_, ch.producer.key,
                                      plan.candidates_producer, plan.quota_producer,
                                      nonce, producer_proofs, producer_draw);
      !v) {
    metrics_.add(ids_.verification_failures);
    consumer_channels_.erase(it);
    return;
  }
  ch.witnesses = merge_witnesses(producer_draw, ch.witnesses);
  ch.ready = true;
  span.attr("witnesses", std::to_string(ch.witnesses.size()));
}

void Node::on_witness_invite(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const PeerId producer = decode_peer(r);
  const PeerId consumer = decode_peer(r);
  r.expect_done();
  if (producer.addr != msg.from) return;
  SpanScope span(*this, "channel.witness_ack", msg.trace);
  relay_duties_[id] = RelayDuty{producer, consumer};
  wire::Writer w;
  w.u64(id);
  if (acct()) {
    // Signed acceptance of the duty, binding channel, producer, consumer and
    // ourselves. The consumer gets a copy too: it is the party that packages
    // witness accusations, and the duty signature is their anchor.
    w.bytes(state_.signer().sign(
        wduty_payload(id, producer, consumer.addr, state_.self().addr)));
    const Bytes payload = std::move(w).take();
    send(msg.from, MsgType::kWitnessAck, payload);
    send(consumer.addr, MsgType::kWitnessAck, payload);
    return;
  }
  send(msg.from, MsgType::kWitnessAck, std::move(w).take());
}

void Node::on_witness_ack(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  Bytes duty_sig;
  if (!r.done()) duty_sig = r.bytes();
  r.expect_done();
  const auto it = producer_channels_.find(id);
  if (it == producer_channels_.end()) {
    // Consumer-side copy (accountability mode): file the duty signature for
    // later accusation packaging. Verified lazily — a bogus one just makes
    // the eventual accusation unprovable, which self-verification catches.
    if (acct() && !duty_sig.empty()) {
      if (const auto cit = consumer_channels_.find(id); cit != consumer_channels_.end()) {
        cit->second.duty_sigs.emplace(msg.from, std::move(duty_sig));
      }
    }
    return;
  }
  ProducerChannel& ch = it->second;
  if (const auto rit = ch.invite_rpcs.find(msg.from); rit != ch.invite_rpcs.end()) {
    finish_rpc(rit->second);
    ch.invite_rpcs.erase(rit);
  }
  if (ch.ready) return;
  // Count each witness at most once, and only actual witnesses — a
  // duplicated (or forged) ack must not push the channel to ready early.
  const bool is_witness =
      std::any_of(ch.witnesses.begin(), ch.witnesses.end(),
                  [&](const PeerId& w) { return w.addr == msg.from; });
  if (!is_witness) return;
  if (!ch.acked.insert(msg.from).second) return;
  if (ch.acked.size() >= ch.witnesses.size()) {
    ch.ready = true;
    trace_end_outcome(ch.span, "ready");
    schedule_witness_health();
    if (ch.on_ready) ch.on_ready(id, true);
  }
}

void Node::send_data(std::uint64_t channel_id, Bytes payload) {
  const auto it = producer_channels_.find(channel_id);
  AN_ENSURE_MSG(it != producer_channels_.end(), "unknown channel");
  AN_ENSURE_MSG(it->second.ready, "channel not ready");
  ProducerChannel& ch = it->second;
  const std::uint64_t seq = ch.next_seq++;
  const std::uint64_t relay_span = trace_begin("relay", {});
  trace_attr(relay_span, "channel", std::to_string(channel_id));
  trace_attr(relay_span, "seq", std::to_string(seq));
  CtxScope trace(*this, relay_span);
  wire::Writer w;
  w.u64(channel_id);
  w.u64(seq);
  w.bytes(payload);
  if (acct()) {
    // Relay header: binds (channel, seq, digest) under the producer's key,
    // so witnesses can only relay what we actually sent — and we can only
    // disown what we actually never sent.
    w.bytes(state_.signer().sign(
        relay_header_payload(channel_id, seq, digest_of(payload))));
  }
  const Bytes msg = std::move(w).take();
  for (const auto& witness : ch.witnesses) {
    send_blind(witness.addr, MsgType::kDataRelay, msg, config_.blind_retry);
  }
  // The produce leg ends here; witness/consumer legs extend the same trace.
  trace_end(relay_span);
}

void Node::on_data_relay(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::uint64_t seq = r.u64();
  Bytes payload = r.bytes();
  Bytes header_sig;
  if (!r.done()) header_sig = r.bytes();
  r.expect_done();
  const auto it = relay_duties_.find(id);
  if (it == relay_duties_.end() || it->second.producer.addr != msg.from) return;
  SpanScope span(*this, "relay.forward", msg.trace);
  span.attr("seq", std::to_string(seq));

  if (acct()) {
    // An unattributable relay (no valid producer header) never enters the
    // evidence log: it is exactly the hook a framing producer would use to
    // make an honest witness testify to bytes the producer later disowns.
    if (header_sig.empty() ||
        !engine_.verify(it->second.producer.key,
                        relay_header_payload(id, seq, digest_of(payload)),
                        header_sig)) {
      metrics_.add(metrics_.counter("acc.relay.bad_header"));
      span.attr("outcome", "bad_header");
      return;
    }
  }

  // A duplicated relay (network dup or producer redundancy) must not log a
  // second evidence record or double-forward: one relay per (channel, seq).
  const std::string dedup_key = std::to_string(id) + ":" + std::to_string(seq);
  if (!relayed_keys_.insert(dedup_key)) return;

  // In accountability mode the first record is final even if the bounded
  // dedup set has forgotten the sequence — re-recording would let a
  // double-sending producer manufacture a "self-contradicting" witness.
  if (acct() && evidence_.lookup(id, seq)) return;

  // Witness duty: log evidence, then relay 1 hop to the consumer.
  Bytes logged = payload;
  if (behavior_.lie_in_testimony || adversary_.lie_in_testimony) {
    logged = bytes_of("fabricated-evidence");
    if (adversary_.lie_in_testimony) {
      metrics_.add(metrics_.counter("adv.attack.lie_testimony"));
    }
  }
  evidence_.record(state_.signer(), id, seq, logged);

  if (behavior_.drop_relays) {
    span.attr("outcome", "dropped");
    return;
  }
  if (adversary_.drop_relays && adv_rng_.uniform01() < adversary_.attack_rate) {
    metrics_.add(metrics_.counter("adv.attack.drop_relay"));
    span.attr("outcome", "dropped");
    return;
  }
  if (behavior_.corrupt_relays) {
    payload = bytes_of("corrupted-payload");
  }
  if (adversary_.tamper_relays && adv_rng_.uniform01() < adversary_.attack_rate) {
    payload = bytes_of("tampered-payload");
    metrics_.add(metrics_.counter("adv.attack.tamper_relay"));
  }
  metrics_.add(ids_.relays_forwarded);
  wire::Writer w;
  w.u64(id);
  w.u64(seq);
  w.bytes(payload);
  if (acct()) {
    // Forward endorsement: "I relay exactly these bytes under exactly this
    // producer header". A tampering witness signs its own conviction here.
    w.bytes(header_sig);
    w.bytes(state_.signer().sign(
        forward_payload(id, seq, digest_of(payload), header_sig)));
  }
  send_blind(it->second.consumer.addr, MsgType::kDataForward, std::move(w).take(),
             config_.blind_retry);
}

void Node::on_data_forward(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::uint64_t seq = r.u64();
  const Bytes payload = r.bytes();
  Bytes header_sig;
  Bytes forward_sig;
  if (!r.done()) header_sig = r.bytes();
  if (!r.done()) forward_sig = r.bytes();
  r.expect_done();
  const auto it = consumer_channels_.find(id);
  if (it == consumer_channels_.end()) return;
  ConsumerChannel& ch = it->second;
  // Only accept forwards from the channel's witnesses.
  const auto wit = std::find_if(ch.witnesses.begin(), ch.witnesses.end(),
                                [&](const PeerId& w) { return w.addr == msg.from; });
  if (wit == ch.witnesses.end()) return;
  SpanScope span(*this, "relay.deliver", msg.trace);
  span.attr("seq", std::to_string(seq));
  span.attr("witness", msg.from);

  auto& tally = ch.pending[seq];
  if (tally.delivered) return;
  // Each witness gets exactly one vote per sequence number: a duplicated
  // kDataForward must not double-count its digest (it could otherwise fake
  // a majority all by itself).
  if (!tally.seen.insert(msg.from).second) return;
  const auto digest = digest_of(payload);

  if (acct()) {
    // The forward must carry the witness's endorsement of exactly this
    // payload under exactly this producer header — an unendorsed forward is
    // unattributable, so it cannot be tallied (or accused over).
    if (forward_sig.empty() ||
        !engine_.verify(wit->key, forward_payload(id, seq, digest, header_sig),
                        forward_sig)) {
      metrics_.add(metrics_.counter("acc.forward.bad_sig"));
      return;
    }
    auto& rec = tally.forwards[msg.from];
    rec.digest = Bytes(digest.begin(), digest.end());
    rec.forward_sig = forward_sig;
    rec.header_sig = header_sig;
    rec.header_ok = engine_.verify(
        ch.producer.key, relay_header_payload(id, seq, digest), header_sig);
    if (!rec.header_ok) {
      // Valid forward endorsement of a payload the producer never signed:
      // the witness tampered, and its own signature proves it. Needs the
      // duty signature to attribute the relay duty; without it (ack lost)
      // the vote is still discarded, just not prosecuted.
      if (const auto duty = ch.duty_sigs.find(msg.from); duty != ch.duty_sigs.end()) {
        Accusation acc;
        acc.kind = AccusationKind::kRelayTamper;
        acc.accused = *wit;
        acc.channel_id = id;
        acc.sequence = seq;
        acc.producer = ch.producer;
        acc.consumer_addr = state_.self().addr;
        acc.duty_sig = duty->second;
        acc.header_sig = header_sig;
        acc.digest_a = rec.digest;
        acc.sig_a = forward_sig;
        raise_accusation(std::move(acc));
      }
      span.attr("outcome", "tampered");
      return;  // a tampered payload never counts toward delivery
    }
  }

  const Bytes key(digest.begin(), digest.end());
  auto& slot = tally.digests[key];
  if (slot.first == 0) slot.second = payload;
  ++slot.first;
  ++tally.total;
  maybe_deliver(ch, seq);
}

void Node::maybe_deliver(ConsumerChannel& ch, std::uint64_t seq) {
  auto& tally = ch.pending[seq];
  if (tally.delivered) return;
  const std::size_t group = ch.witnesses.size();
  const std::size_t majority = group / 2 + 1;

  const auto best = std::max_element(
      tally.digests.begin(), tally.digests.end(),
      [](const auto& a, const auto& b) { return a.second.first < b.second.first; });
  if (best == tally.digests.end()) return;

  const bool deliver_now = config_.majority_opt ? best->second.first >= majority
                                                : tally.total >= group;
  if (!deliver_now) return;
  tally.delivered = true;
  if (tracer_ != nullptr) {
    // Instant marker on whichever forward tipped the tally over.
    const std::uint64_t s = trace_begin("relay.delivered", trace_ctx_);
    trace_attr(s, "votes", std::to_string(best->second.first));
    trace_end(s);
  }
  if (on_delivery_) {
    on_delivery_(ch.id, seq, best->second.second, ch.producer);
  }
  if (acct() && !tally.audited) {
    tally.audited = true;
    schedule_consumer_audit(ch.id, seq);
  }
}

// ---------------------------------------------------------------------------
// Witness repair (docs/RESILIENCE.md).
// ---------------------------------------------------------------------------

namespace {

/// Nonce binding a repair draw to the channel, the witness being replaced,
/// and the repair epoch — so each repair is a fresh, non-replayable draw.
Bytes repair_nonce(const PeerId& producer, Round producer_round, const PeerId& consumer,
                   Round consumer_round, const std::string& dead_addr,
                   std::uint64_t epoch) {
  wire::Writer w;
  w.bytes(channel_nonce(producer, producer_round, consumer, consumer_round));
  w.bytes(bytes_of(dead_addr));
  w.u64(epoch);
  return std::move(w).take();
}

}  // namespace

void Node::trigger_witness_repair(const std::string& dead_addr) {
  // Self-quarantine: if we have heard nothing from *anyone* for a full RPC
  // timeout, mass witness silence is indistinguishable from our own
  // isolation (partition, crash window). Repairing now would tear down a
  // group the consumer still trusts and the kWitnessUpdate announcing the
  // replacement could not get through anyway — a lost update desyncs the
  // two witness views permanently. Skip; if the peer is genuinely dead the
  // next health check re-suspects it once we are reachable again.
  const sim::TimePoint now = net_.simulator().now();
  if (last_rx_ >= 0 && now - last_rx_ >= config_.rpc_timeout) {
    metrics_.add(metrics_.counter("node.repair_quarantined"));
    return;
  }

  // Consumer side: drop the dead witness immediately so the delivery
  // threshold tracks the surviving group (graceful degradation); the
  // producer's replacement arrives later via kWitnessUpdate.
  for (auto& [id, ch] : consumer_channels_) {
    const auto w = std::find_if(ch.witnesses.begin(), ch.witnesses.end(),
                                [&](const PeerId& p) { return p.addr == dead_addr; });
    if (w == ch.witnesses.end()) continue;
    ch.witnesses.erase(w);
    // A shrunk group may already satisfy the (new) threshold for queued seqs.
    std::vector<std::uint64_t> seqs;
    for (const auto& [seq, tally] : ch.pending) {
      if (!tally.delivered) seqs.push_back(seq);
    }
    for (const auto seq : seqs) maybe_deliver(ch, seq);
  }

  // Producer side: replace the witness via a fresh verifiable draw over the
  // surviving candidates of the neighborhood committed at setup, and tell
  // the consumer (which re-verifies the draw before adopting it).
  for (auto& [id, ch] : producer_channels_) {
    if (!ch.ready) continue;
    const auto w = std::find_if(ch.witnesses.begin(), ch.witnesses.end(),
                                [&](const PeerId& p) { return p.addr == dead_addr; });
    if (w == ch.witnesses.end()) continue;
    ch.witnesses.erase(w);
    ch.acked.erase(dead_addr);
    if (const auto rit = ch.invite_rpcs.find(dead_addr); rit != ch.invite_rpcs.end()) {
      finish_rpc(rit->second);
      ch.invite_rpcs.erase(rit);
    }
    ++ch.repair_epoch;
    metrics_.add(ids_.witness_repairs);

    std::vector<PeerId> candidates;
    for (const auto& p : ch.my_neighborhood) {
      if (p.addr == dead_addr || p == ch.consumer || p == state_.self()) continue;
      if (reported_leavers_.contains(p.addr)) continue;
      const bool already =
          std::any_of(ch.witnesses.begin(), ch.witnesses.end(),
                      [&](const PeerId& q) { return q.addr == p.addr; });
      if (!already) candidates.push_back(p);
    }
    const std::size_t quota = candidates.empty() ? 0 : 1;
    const Bytes nonce = repair_nonce(state_.self(), ch.my_round, ch.consumer,
                                     ch.consumer_round, dead_addr, ch.repair_epoch);
    const Draw draw = draw_witnesses(sampler(), state_.signer(), candidates, quota,
                                     nonce);

    wire::Writer inv;
    inv.u64(ch.id);
    encode_peer(inv, state_.self());
    encode_peer(inv, ch.consumer);
    const Bytes invite = std::move(inv).take();
    for (const auto& repl : draw.sample) {
      ch.witnesses.push_back(repl);
      ch.invite_rpcs[repl.addr] =
          send_rpc(repl.addr, MsgType::kWitnessInvite, invite, config_.channel_retry);
    }

    // Even an empty draw is announced: the consumer must lower its
    // threshold to the shrunk group rather than wait forever.
    wire::Writer upd;
    upd.u64(ch.id);
    upd.u64(ch.repair_epoch);
    upd.bytes(bytes_of(dead_addr));
    encode_peer_list(upd, candidates);
    encode_peer_list(upd, draw.sample);
    encode_bytes_list(upd, draw.proofs);
    Bytes update = std::move(upd).take();
    ch.unacked_updates.emplace_back(ch.repair_epoch, update);
    send_blind(ch.consumer.addr, MsgType::kWitnessUpdate, std::move(update),
               config_.blind_retry);
  }
}

void Node::on_witness_update(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::uint64_t epoch = r.u64();
  const Bytes dead_bytes = r.bytes();
  const std::string dead_addr(dead_bytes.begin(), dead_bytes.end());
  const std::vector<PeerId> candidates = decode_peer_list(r);
  const std::vector<PeerId> sample = decode_peer_list(r);
  const std::vector<Bytes> proofs = decode_bytes_list(r);
  r.expect_done();

  const auto it = consumer_channels_.find(id);
  if (it == consumer_channels_.end() || it->second.producer.addr != msg.from) return;
  ConsumerChannel& ch = it->second;
  // Epochs apply strictly in order. <= current is a duplicate (blind
  // redundancy or a producer resend): re-ack so the producer stops
  // replaying it. A gap means we missed one — stay silent and wait for the
  // in-order replay from the producer's health tick.
  if (epoch <= ch.repair_epoch) {
    wire::Writer ack;
    ack.u64(id);
    ack.u64(ch.repair_epoch);
    send(msg.from, MsgType::kWitnessUpdateAck, std::move(ack).take());
    return;
  }
  if (epoch != ch.repair_epoch + 1) return;

  // The candidate pool must come from the neighborhood the producer
  // committed at setup — it cannot mint fresh candidates after seeing who
  // it would like to draw.
  for (const auto& c : candidates) {
    const bool in_nbh =
        std::any_of(ch.producer_neighborhood.begin(), ch.producer_neighborhood.end(),
                    [&](const PeerId& p) { return p.addr == c.addr; });
    if (!in_nbh || c == ch.producer || c == state_.self() || c.addr == dead_addr) {
      metrics_.add(ids_.verification_failures);
      return;
    }
  }
  const std::size_t quota = candidates.empty() ? 0 : 1;
  const Bytes nonce = repair_nonce(ch.producer, ch.producer_round, state_.self(),
                                   ch.my_round, dead_addr, epoch);
  if (const auto v = verify_witnesses(sampler(), engine_, ch.producer.key, candidates,
                                      quota, nonce, proofs, sample);
      !v) {
    metrics_.add(ids_.verification_failures);
    return;
  }

  ch.repair_epoch = epoch;
  ch.witnesses.erase(std::remove_if(ch.witnesses.begin(), ch.witnesses.end(),
                                    [&](const PeerId& p) { return p.addr == dead_addr; }),
                     ch.witnesses.end());
  for (const auto& repl : sample) {
    const bool already =
        std::any_of(ch.witnesses.begin(), ch.witnesses.end(),
                    [&](const PeerId& p) { return p.addr == repl.addr; });
    if (!already) ch.witnesses.push_back(repl);
  }
  metrics_.add(ids_.witness_repairs);

  std::vector<std::uint64_t> seqs;
  for (const auto& [seq, tally] : ch.pending) {
    if (!tally.delivered) seqs.push_back(seq);
  }
  for (const auto seq : seqs) maybe_deliver(ch, seq);

  wire::Writer ack;
  ack.u64(id);
  ack.u64(ch.repair_epoch);
  send(msg.from, MsgType::kWitnessUpdateAck, std::move(ack).take());
}

void Node::on_witness_update_ack(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t id = r.u64();
  const std::uint64_t epoch = r.u64();
  r.expect_done();
  const auto it = producer_channels_.find(id);
  if (it == producer_channels_.end() || it->second.consumer.addr != msg.from) return;
  auto& pending = it->second.unacked_updates;
  pending.erase(std::remove_if(pending.begin(), pending.end(),
                               [&](const auto& u) { return u.first <= epoch; }),
                pending.end());
}

void Node::schedule_witness_health() {
  if (config_.witness_ping_period <= 0 || health_timer_armed_) return;
  health_timer_armed_ = true;
  auto alive = alive_;
  net_.simulator().schedule(config_.witness_ping_period, [this, alive] {
    if (!*alive) return;
    health_timer_armed_ = false;
    if (!running_) return;
    bool any_ready = false;
    std::vector<PeerId> probe;
    std::vector<std::string> rerepair;
    for (const auto& [id, ch] : producer_channels_) {
      if (!ch.ready) continue;
      any_ready = true;
      for (const auto& w : ch.witnesses) {
        if (reported_leavers_.contains(w.addr)) {
          // Already known dead but still in the group: an earlier repair was
          // quarantined (we looked isolated at the time). Retry now.
          rerepair.push_back(w.addr);
        } else {
          probe.push_back(w);
        }
      }
      // Replay un-acked repair announcements in epoch order; the consumer
      // acks what it applies, so this converges once the path heals.
      for (const auto& [epoch, payload] : ch.unacked_updates) {
        send_blind(ch.consumer.addr, MsgType::kWitnessUpdate, payload,
                   config_.blind_retry);
      }
    }
    for (const auto& w : probe) suspect_peer(w);
    for (const auto& addr : rerepair) trigger_witness_repair(addr);
    if (any_ready) schedule_witness_health();
  });
}

std::vector<std::uint64_t> Node::producer_channel_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(producer_channels_.size());
  for (const auto& [id, ch] : producer_channels_) ids.push_back(id);
  return ids;
}

// ---------------------------------------------------------------------------
// Accountability pipeline: accuse → quarantine → evict (docs/RESILIENCE.md).
// ---------------------------------------------------------------------------

void Node::note_exchange_entries(const PeerId& peer,
                                 const std::vector<HistoryEntry>& suffix,
                                 ExchangeItem item) {
  const auto shared = std::make_shared<const ExchangeItem>(std::move(item));
  for (const auto& e : suffix) {
    const std::string key = peer.addr + "#" + std::to_string(e.self_round);
    wire::Writer w;
    encode_entry(w, e);
    Bytes bytes = std::move(w).take();
    const SeenEntry* prev = seen_entries_.find(key);
    if (prev == nullptr) {
      seen_entries_.put(key, SeenEntry{std::move(bytes), shared});
      continue;
    }
    if (prev->entry_bytes == bytes) continue;
    // Two body-signed exchanges show different entries for the same round of
    // the same node: a forked history. Both exchanges together are the
    // third-party-checkable proof. (History is append-only, so an honest
    // node re-serves every round byte-identically forever.)
    Accusation acc;
    acc.kind = AccusationKind::kHistoryEquivocation;
    acc.accused = peer;
    acc.round = e.self_round;
    acc.items.push_back(*prev->item);
    acc.items.push_back(*shared);
    raise_accusation(std::move(acc));
    return;
  }
}

void Node::raise_accusation(Accusation acc) {
  acc.accuser = state_.self();
  acc.accuser_sig = state_.signer().sign(acc.signing_payload());
  // Self-check before gossip: shipping an unprovable accusation would only
  // burn our own credibility at every recipient.
  if (const auto v = verify_accusation(acc, engine_, config_.protocol); !v) {
    metrics_.add(metrics_.counter("acc.accuse.unprovable"));
    return;
  }
  const std::string key = hex_of(acc.digest());
  if (!accusations_seen_.insert(key)) return;  // already raised
  metrics_.add(metrics_.counter(std::string("acc.accuse.created.") +
                                accusation_kind_tag(acc.kind)));
  // Forensics: the accusation span is a child of whatever operation exposed
  // the misbehaviour (the relay/shuffle trace), so the whole dispute — accuse,
  // gossip, every peer's quarantine and evict — shares that trace id.
  SpanScope span(*this, "accuse.raise", trace_ctx_);
  span.attr("kind", accusation_kind_tag(acc.kind));
  span.attr("accused", acc.accused.addr);
  accept_accusation(acc);
  gossip_accusation(acc, /*skip_addr=*/"");
}

void Node::accept_accusation(const Accusation& acc) {
  auto& rec = accused_[acc.accused.addr];
  rec.accusers.insert(acc.accuser.addr);
  quarantine_peer(acc.accused, accusation_kind_tag(acc.kind));
  if (HistoryJournal* j = config_.durability.journal) {
    j->on_standing(acc.accused.addr, rec.evicted, acc.accuser.addr);
  }
  if (!rec.evicted && rec.accusers.size() >= config_.accountability.evict_threshold) {
    rec.evicted = true;
    if (HistoryJournal* j = config_.durability.journal) {
      j->on_standing(acc.accused.addr, /*evicted=*/true, acc.accuser.addr);
    }
    metrics_.add(metrics_.counter("acc.evict.peers"));
    metrics_.add(metrics_.counter(std::string("acc.evict.") +
                                  accusation_kind_tag(acc.kind)));
    if (tracer_ != nullptr) {
      const std::uint64_t s = trace_begin("accuse.evict", trace_ctx_);
      trace_attr(s, "peer", acc.accused.addr);
      trace_attr(s, "accusers", std::to_string(rec.accusers.size()));
      trace_end(s);
    }
  }
}

void Node::gossip_accusation(const Accusation& acc, const std::string& skip_addr) {
  const Bytes payload = acc.encode();
  const std::string dig = hex_of(acc.digest());
  for (const auto& p : state_.peerset().sorted()) {
    if (p.addr == skip_addr || p.addr == acc.accused.addr) continue;
    if (quarantined_.contains(p.addr)) continue;
    const std::uint64_t rpc =
        send_rpc(p.addr, MsgType::kAccusation, payload, config_.query_retry);
    if (rpc != 0) accusation_rpcs_[dig + "#" + p.addr] = rpc;
    metrics_.add(metrics_.counter("acc.accuse.sent"));
  }
}

void Node::quarantine_peer(const PeerId& peer, const char* kind_tag) {
  if (peer == state_.self()) return;
  if (!quarantined_.insert(peer.addr).second) return;
  if (HistoryJournal* j = config_.durability.journal) {
    j->on_standing(peer.addr, /*evicted=*/false, /*accuser=*/"");
  }
  metrics_.add(metrics_.counter("acc.quarantine.peers"));
  metrics_.add(metrics_.counter(std::string("acc.quarantine.") + kind_tag));
  if (tracer_ != nullptr) {
    const std::uint64_t s = trace_begin("accuse.quarantine", trace_ctx_);
    trace_attr(s, "peer", peer.addr);
    trace_attr(s, "kind", kind_tag);
    trace_end(s);
  }
  if (pending_ && pending_->partner.addr == peer.addr) {
    abort_shuffle(/*partner_suspect=*/false);
  }
  // Local leave-record: removes the peer from the peerset (partner and
  // witness draws can never select it again) while keeping reconstruction
  // exact. Deliberately NO kLeaveNotice fanout — the peer is alive and would
  // ping-clear itself; peers convict independently from the gossiped
  // accusation instead.
  reported_leavers_.insert(peer.addr);
  if (state_.peerset().contains(peer)) {
    const auto [round, sig] = state_.make_leave_report(peer);
    state_.apply_leave_report(state_.self(), round, sig, peer);
  }
  // Drop every cached verification fact about the peer: its next exchange
  // (if any slips through) must re-prove from scratch, never ride a memo
  // established before the conviction.
  engine_.invalidate(peer);
  // If it serves as witness on one of our channels, repair around it.
  trigger_witness_repair(peer.addr);
}

void Node::start_omission_challenge(Accusation acc) {
  const std::string key = acc.accused.addr + "#" + std::to_string(acc.channel_id) +
                          "#" + std::to_string(acc.sequence);
  if (!active_challenges_.insert(key).second) return;
  metrics_.add(metrics_.counter("acc.challenge.started"));
  const auto shared = std::make_shared<Accusation>(std::move(acc));
  // The verdict lands asynchronously; keep it on the challenge's trace.
  const obs::TraceContext challenge_ctx = trace_ctx_;
  request_testimony_internal(
      shared->accused.addr, shared->channel_id, shared->sequence,
      [this, key, shared, challenge_ctx](bool replied, std::optional<Testimony>) {
        CtxScope trace(*this, challenge_ctx);
        active_challenges_.erase(key);
        if (replied) {
          // Any answer — even "no record" — clears the omission charge: the
          // witness is alive and accountable, and the missed relay may be
          // the network's fault, not malice. (A witness that answers with a
          // *lying* record is caught by the testimony spot-check instead.)
          metrics_.add(metrics_.counter("acc.challenge.cleared"));
          return;
        }
        metrics_.add(metrics_.counter("acc.challenge.convicted"));
        if (shared->accuser_sig.empty()) {
          raise_accusation(*shared);  // we built this accusation ourselves
        } else {
          // Gossiped accusation, independently re-verified by our own live
          // challenge: adopt and keep spreading it.
          accept_accusation(*shared);
          gossip_accusation(*shared, /*skip_addr=*/"");
        }
      });
}

void Node::schedule_consumer_audit(std::uint64_t channel_id, std::uint64_t seq) {
  auto alive = alive_;
  net_.simulator().schedule(config_.accountability.audit_delay,
                            [this, alive, channel_id, seq] {
                              if (!*alive || !running_) return;
                              run_consumer_audit(channel_id, seq);
                            });
}

void Node::run_consumer_audit(std::uint64_t channel_id, std::uint64_t seq) {
  const auto it = consumer_channels_.find(channel_id);
  if (it == consumer_channels_.end()) return;
  ConsumerChannel& ch = it->second;
  const auto tit = ch.pending.find(seq);
  if (tit == ch.pending.end()) return;
  auto& tally = tit->second;
  // Audits run from a timer, so they root a fresh trace; accusations raised
  // below (and their gossip fan-out) all hang off it.
  SpanScope span(*this, "audit", {});
  span.attr("channel", std::to_string(channel_id));
  span.attr("seq", std::to_string(seq));

  // The delivered majority fixes the authoritative digest for this sequence;
  // a header-verified forward that carried it anchors the omission proofs.
  Bytes majority;
  std::size_t best = 0;
  for (const auto& [digest, slot] : tally.digests) {
    if (slot.first > best) {
      best = slot.first;
      majority = digest;
    }
  }
  const ConsumerChannel::Tally::ForwardRec* anchor = nullptr;
  for (const auto& [addr, rec] : tally.forwards) {
    if (rec.header_ok && rec.digest == majority) {
      anchor = &rec;
      break;
    }
  }

  // (a) Omission: every witness that never forwarded gets a live challenge;
  // only full silence convicts. Needs the duty signature (attributes the
  // duty) and an anchor forward (proves the message existed on it).
  for (const auto& w : ch.witnesses) {
    if (tally.seen.contains(w.addr)) continue;
    if (quarantined_.contains(w.addr)) continue;
    const auto duty = ch.duty_sigs.find(w.addr);
    if (duty == ch.duty_sigs.end() || anchor == nullptr) continue;
    Accusation acc;
    acc.kind = AccusationKind::kRelayOmission;
    acc.accused = w;
    acc.channel_id = channel_id;
    acc.sequence = seq;
    acc.producer = ch.producer;
    acc.consumer_addr = state_.self().addr;
    acc.duty_sig = duty->second;
    acc.header_sig = anchor->header_sig;
    acc.digest_a = anchor->digest;
    start_omission_challenge(std::move(acc));
  }

  // (b) Every audit_period-th sequence: spot-check the forwarders' sworn
  // testimonies against what they actually forwarded us (catches the witness
  // that relays faithfully but logs a lie for later disputes).
  if (config_.accountability.audit_period == 0 ||
      seq % config_.accountability.audit_period != 0) {
    return;
  }
  for (const auto& w : ch.witnesses) {
    const auto fit = tally.forwards.find(w.addr);
    if (fit == tally.forwards.end() || !fit->second.header_ok) continue;
    if (quarantined_.contains(w.addr)) continue;
    const PeerId witness = w;
    const ConsumerChannel::Tally::ForwardRec rec = fit->second;
    const obs::TraceContext audit_ctx = trace_ctx_;
    request_testimony_internal(
        w.addr, channel_id, seq,
        [this, witness, channel_id, seq, rec, audit_ctx](bool replied,
                                                         std::optional<Testimony> t) {
          CtxScope trace(*this, audit_ctx);
          if (!replied || !t) return;  // silence is the omission path's job
          if (!(t->witness == witness) || !verify_testimony(*t, engine_)) return;
          const Bytes tdig(t->digest.begin(), t->digest.end());
          if (tdig == rec.digest) return;  // books match
          Accusation acc;
          acc.kind = AccusationKind::kTestimonyMismatch;
          acc.accused = witness;
          acc.channel_id = channel_id;
          acc.sequence = seq;
          acc.header_sig = rec.header_sig;
          acc.digest_a = rec.digest;
          acc.sig_a = rec.forward_sig;
          acc.digest_b = tdig;
          acc.sig_b = t->signature;
          raise_accusation(std::move(acc));
        });
  }
}

void Node::on_accusation(const sim::NetMessage& msg) {
  const Accusation acc = Accusation::decode(msg.payload);
  const DataDigest dig = acc.digest();
  {
    // Ack first (even duplicates) so the sender's gossip retry stops.
    wire::Writer w;
    w.bytes(Bytes(dig.begin(), dig.end()));
    send(msg.from, MsgType::kAccusationAck, std::move(w).take());
  }
  if (!acct()) return;
  if (!accusations_seen_.insert(hex_of(dig))) return;
  metrics_.add(metrics_.counter("acc.accuse.received"));
  SpanScope span(*this, "accuse.receive", msg.trace);
  span.attr("kind", accusation_kind_tag(acc.kind));
  span.attr("accused", acc.accused.addr);
  if (acc.accused == state_.self()) {
    // An indictment of ourselves: nothing to apply locally (honest nodes
    // never see one that verifies; the counter feeds the framing tests).
    metrics_.add(metrics_.counter("acc.accuse.self"));
    return;
  }
  // Independent re-verification — recipients NEVER take the accuser's word.
  if (const auto v = verify_accusation(acc, engine_, config_.protocol); !v) {
    metrics_.add(ids_.verification_failures);
    metrics_.add(metrics_.counter("acc.accuse.rejected"));
    metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(v.code)));
    return;
  }
  metrics_.add(metrics_.counter("acc.accuse.verified"));
  if (acc.kind == AccusationKind::kRelayOmission) {
    // Omission is never convicted on paper evidence alone — the proof only
    // shows the duty and the message. Challenge the accused ourselves and
    // convict on silence.
    start_omission_challenge(acc);
    return;
  }
  accept_accusation(acc);
  gossip_accusation(acc, /*skip_addr=*/msg.from);
}

void Node::on_accusation_ack(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const Bytes dig = r.bytes();
  r.expect_done();
  const std::string key = hex_of(dig.data(), dig.size()) + "#" + msg.from;
  const auto it = accusation_rpcs_.find(key);
  if (it == accusation_rpcs_.end()) return;
  finish_rpc(it->second);
  accusation_rpcs_.erase(it);
}

// ---------------------------------------------------------------------------
// Durability & catch-up sync (docs/RESILIENCE.md). Every peer mirrors every
// counterpart's *sealed* history as (entry count, accumulated chain digest):
// a checkpoint announce with a newer seal triggers bounded SegmentRequest
// fetches, each chunk verified fail-closed before the mirror advances. The
// mirror is what makes a later signed checkpoint or segment from the same
// node falsifiable — and the boundary chunk is offline-decidable, so a
// server contradicting its own seal feeds the accuse → quarantine → evict
// pipeline like any other provable violation.
// ---------------------------------------------------------------------------

void Node::maybe_announce_checkpoint() {
  // Surface silent proof-window loss: first_index() counts entries trimmed
  // from RAM. Lazily interned, so non-durable nodes never emit the series.
  const obs::MetricId trimmed = metrics_.counter("node.history.trimmed");
  const std::uint64_t have = metrics_.counter_value(trimmed);
  const std::uint64_t now = state_.history().first_index();
  if (now > have) metrics_.add(trimmed, now - have);

  const auto& ck = state_.checkpoint();
  if (!ck || ck->epoch <= announced_epoch_) return;
  announced_epoch_ = ck->epoch;
  metrics_.add(metrics_.counter("node.ckpt.sealed"));
  if (!config_.durability.announce_checkpoints) return;
  for (const auto& p : state_.peerset().sorted()) {
    if (acct() && quarantined_.contains(p.addr)) continue;
    send_checkpoint_announce(p.addr, /*want_reply=*/false);
  }
}

void Node::send_checkpoint_announce(const std::string& to, bool want_reply) {
  CheckpointAnnounce ann;
  ann.checkpoint = *state_.checkpoint();
  ann.want_reply = want_reply;
  metrics_.add(metrics_.counter("node.ckpt.announced"));
  send(to, MsgType::kCheckpointAnnounce, ann.encode());
}

void Node::request_next_segment(const std::string& addr, PeerSyncState& sync) {
  if (!sync.target || sync.rpc != 0) return;
  SegmentRequest req;
  req.request_id = next_request_id_++;
  req.start = sync.synced;
  req.end = std::min<std::uint64_t>(
      sync.target->sealed_count,
      sync.synced + config_.durability.max_segment_entries);
  sync.request_id = req.request_id;
  metrics_.add(metrics_.counter("node.sync.requests"));
  // Bounded retries via the RPC table; a peer that never serves the range
  // just leaves our mirror where it was (the next announce retriggers).
  sync.rpc = send_rpc(addr, MsgType::kSegmentRequest, req.encode(),
                      config_.query_retry, [this, addr] {
                        metrics_.add(metrics_.counter("node.sync.give_up"));
                        if (!peer_sync_.contains(addr)) return;
                        auto& s = peer_sync_.at_or_insert(addr);
                        s.rpc = 0;
                        s.request_id = 0;
                        s.target.reset();
                      });
}

void Node::on_checkpoint_announce(const sim::NetMessage& msg) {
  if (!durable() || !joined_) return;
  const CheckpointAnnounce ann = CheckpointAnnounce::decode(msg.payload);
  const Checkpoint& ck = ann.checkpoint;
  if (ck.owner.addr != msg.from) return;
  // Pin the key to the peerset identity when we hold one; a stranger's
  // checkpoint is self-certifying (the signature check below binds it to the
  // embedded key, which is the identity every later contradiction is
  // attributed to).
  for (const auto& p : state_.peerset().sorted()) {
    if (p.addr == msg.from && !(p.key == ck.owner.key)) return;
  }
  if (const auto v = verify_checkpoint(ck, ck.owner, engine_); !v) {
    metrics_.add(ids_.verification_failures);
    metrics_.add(metrics_.counter(std::string("node.reject.") + error_tag(v.code)));
    return;
  }
  SpanScope span(*this, "sync.announce", msg.trace);
  span.attr("owner", ck.owner.addr);
  span.attr("epoch", std::to_string(ck.epoch));
  if (ann.want_reply && state_.checkpoint()) {
    send_checkpoint_announce(msg.from, /*want_reply=*/false);
  }
  auto& sync = peer_sync_.at_or_insert(msg.from);
  if (ck.epoch <= sync.epoch) return;  // nothing newer than our mirror
  if (sync.target && sync.target->epoch >= ck.epoch) return;  // already fetching
  sync.target = ck;
  if (sync.synced >= ck.sealed_count) {
    // Seal grew in epoch but not past our mirror (cannot happen with an
    // honest server — epochs only advance with entries): fail closed.
    sync.target.reset();
    return;
  }
  request_next_segment(msg.from, sync);
}

void Node::on_segment_request(const sim::NetMessage& msg) {
  if (!durable() || !joined_) return;
  const SegmentRequest req = SegmentRequest::decode(msg.payload);
  if (req.end <= req.start) return;
  const std::uint64_t count = std::min<std::uint64_t>(
      req.end - req.start, config_.durability.max_segment_entries);
  const UpdateHistory& h = state_.history();
  SegmentData seg;
  seg.request_id = req.request_id;
  seg.server = state_.self();
  seg.start = req.start;
  if (req.start >= h.first_index() && req.start < h.total_appended()) {
    seg.base_chain = h.chain_at(req.start);
    seg.entries = h.entries_from(req.start, static_cast<std::size_t>(count));
  } else if (HistoryJournal* j = config_.durability.journal;
             j != nullptr && req.start < h.total_appended()) {
    // The in-memory window was trimmed past the request: serve from the
    // journal, refolding the base digest from genesis. O(journal), but
    // catch-up this deep only happens after long partitions.
    const auto prefix = j->read_entries(0, static_cast<std::size_t>(req.start));
    if (prefix.size() < req.start) return;  // journal shorter than the claim
    seg.base_chain = fold_chain(ChainDigest{}, prefix);
    seg.entries = j->read_entries(req.start, static_cast<std::size_t>(count));
  } else {
    return;  // nothing to serve; the requester's retry budget handles it
  }
  if (seg.entries.empty()) return;
  seg.server_sig = state_.signer().sign(seg.signing_payload());
  metrics_.add(metrics_.counter("node.sync.served"));
  send(msg.from, MsgType::kSegmentData, seg.encode());
}

void Node::on_segment_data(const sim::NetMessage& msg) {
  if (!durable() || !peer_sync_.contains(msg.from)) return;
  const SegmentData seg = SegmentData::decode(msg.payload);
  auto& sync = peer_sync_.at_or_insert(msg.from);
  if (!sync.target || seg.request_id != sync.request_id) return;
  finish_rpc(sync.rpc);
  sync.rpc = 0;
  sync.request_id = 0;
  const Checkpoint ck = *sync.target;
  const auto abandon = [&](const char* why) {
    metrics_.add(metrics_.counter(std::string("node.sync.abort.") + why));
    sync.target.reset();
  };
  SpanScope span(*this, "sync.segment", msg.trace);
  span.attr("server", msg.from);
  span.attr("start", std::to_string(seg.start));
  const std::uint64_t end = seg.start + seg.entries.size();
  if (!(seg.server == ck.owner) || seg.start != sync.synced ||
      seg.entries.empty() || end > ck.sealed_count ||
      seg.entries.size() > config_.durability.max_segment_entries) {
    abandon("malformed");
    return;
  }
  if (!engine_.verify(seg.server.key, seg.signing_payload(), seg.server_sig)) {
    metrics_.add(ids_.verification_failures);
    abandon("bad_sig");
    return;
  }
  // Offline-decidable contradiction first: a signed boundary slice whose
  // fold misses the same server's signed checkpoint convicts it no matter
  // what we mirrored before — the pair of signatures IS the proof.
  if (segment_contradicts_checkpoint(seg, ck)) {
    metrics_.add(metrics_.counter("node.sync.contradiction"));
    span.attr("outcome", "contradiction");
    sync.target.reset();
    if (acct()) {
      Accusation acc;
      acc.kind = AccusationKind::kSegmentMismatch;
      acc.accused = ck.owner;
      acc.round = ck.last_round;
      ExchangeItem item;
      item.shape = 3;
      item.offer = ck.encode();
      item.response = msg.payload;
      item.counterpart = state_.self();
      acc.items.push_back(std::move(item));
      raise_accusation(std::move(acc));
    } else {
      quarantine_peer(ck.owner, "segment_mismatch");
    }
    return;
  }
  // Fail closed on everything not provable: a mid-prefix chunk must extend
  // the mirror we already verified (the checkpoint only commits the total
  // fold, so a lie here is detectable but not third-party-attributable).
  if (seg.base_chain != sync.chain) {
    abandon("discontinuity");
    return;
  }
  sync.chain = fold_chain(sync.chain, seg.entries);
  sync.synced = end;
  metrics_.add(metrics_.counter("node.sync.segments"));
  metrics_.add(metrics_.counter("node.sync.entries"), seg.entries.size());
  if (sync.synced >= ck.sealed_count) {
    // The final fold matched ck.chain (else the contradiction branch fired):
    // the mirror now covers the whole sealed prefix.
    sync.epoch = ck.epoch;
    sync.target.reset();
    span.attr("outcome", "completed");
    metrics_.add(metrics_.counter("node.sync.completed"));
  } else {
    request_next_segment(msg.from, sync);
  }
}

// ---------------------------------------------------------------------------
// Evidence & history query service (third-party resolver support and the
// Sec. IV-A old-entry lookup).
// ---------------------------------------------------------------------------

void Node::request_testimony(const std::string& witness_addr, std::uint64_t channel_id,
                             std::uint64_t sequence, TestimonyCallback cb) {
  request_testimony_internal(witness_addr, channel_id, sequence,
                             [cb = std::move(cb)](bool, std::optional<Testimony> t) {
                               cb(std::move(t));
                             });
}

void Node::request_testimony_internal(const std::string& witness_addr,
                                      std::uint64_t channel_id, std::uint64_t sequence,
                                      TestimonyReplyCallback cb) {
  const std::uint64_t request = next_request_id_++;
  wire::Writer w;
  w.u64(request);
  w.u64(channel_id);
  w.u64(sequence);
  const std::uint64_t rpc = send_rpc(witness_addr, MsgType::kTestimonyQuery,
                                     std::move(w).take(), config_.query_retry);
  testimony_waiters_[request] = {std::move(cb), rpc};
  auto alive = alive_;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, request] {
    if (!*alive) return;
    const auto it = testimony_waiters_.find(request);
    if (it == testimony_waiters_.end()) return;  // answered
    finish_rpc(it->second.second);
    auto waiter = std::move(it->second.first);
    testimony_waiters_.erase(it);
    waiter(/*replied=*/false, std::nullopt);
  });
}

void Node::on_testimony_query(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const std::uint64_t channel_id = r.u64();
  const std::uint64_t sequence = r.u64();
  r.expect_done();
  if (adversary_.withhold_testimony) {
    // Stonewalling witness: never answers. Answering parties can always be
    // cross-checked; silence is what the live omission challenge convicts.
    metrics_.add(metrics_.counter("adv.attack.withhold_testimony"));
    return;
  }
  SpanScope span(*this, "testimony.serve", msg.trace);
  wire::Writer w;
  w.u64(request);
  const auto t = evidence_.lookup(channel_id, sequence);
  span.attr("has_record", t.has_value() ? "1" : "0");
  // A lying witness presents its (fabricated) log faithfully — the lie
  // happened at record time; the query service itself is honest bookkeeping.
  w.u8(t.has_value() ? 1 : 0);
  if (t) {
    encode_peer(w, t->witness);
    w.u64(t->channel_id);
    w.u64(t->sequence);
    w.raw(BytesView(t->digest.data(), t->digest.size()));
    w.bytes(t->signature);
  }
  send(msg.from, MsgType::kTestimonyReply, std::move(w).take());
}

void Node::on_testimony_reply(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const bool has = r.u8() != 0;
  std::optional<Testimony> t;
  if (has) {
    Testimony parsed;
    parsed.witness = decode_peer(r);
    parsed.channel_id = r.u64();
    parsed.sequence = r.u64();
    const Bytes digest = r.raw(parsed.digest.size());
    std::copy(digest.begin(), digest.end(), parsed.digest.begin());
    parsed.signature = r.bytes();
    t = std::move(parsed);
  }
  r.expect_done();
  const auto it = testimony_waiters_.find(request);
  if (it == testimony_waiters_.end()) return;  // timed out already
  finish_rpc(it->second.second);
  auto waiter = std::move(it->second.first);
  testimony_waiters_.erase(it);
  waiter(/*replied=*/true, std::move(t));
}

void Node::request_history_entry(const std::string& peer_addr, Round round,
                                 EntryCallback cb) {
  const std::uint64_t request = next_request_id_++;
  wire::Writer w;
  w.u64(request);
  w.u64(round);
  const std::uint64_t rpc = send_rpc(peer_addr, MsgType::kEntryQuery,
                                     std::move(w).take(), config_.query_retry);
  entry_waiters_[request] = {std::move(cb), rpc};
  auto alive = alive_;
  net_.simulator().schedule(config_.rpc_timeout, [this, alive, request] {
    if (!*alive) return;
    const auto it = entry_waiters_.find(request);
    if (it == entry_waiters_.end()) return;
    finish_rpc(it->second.second);
    auto waiter = std::move(it->second.first);
    entry_waiters_.erase(it);
    waiter(std::nullopt);
  });
}

void Node::on_entry_query(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const Round round = r.u64();
  r.expect_done();
  wire::Writer w;
  w.u64(request);
  const HistoryEntry* found = nullptr;
  for (const auto& e : state_.history().entries()) {
    if (e.self_round == round) {
      found = &e;
      break;
    }
  }
  w.u8(found != nullptr ? 1 : 0);
  if (found != nullptr) encode_entry(w, *found);
  send(msg.from, MsgType::kEntryReply, std::move(w).take());
}

void Node::on_entry_reply(const sim::NetMessage& msg) {
  wire::Reader r(msg.payload);
  const std::uint64_t request = r.u64();
  const bool has = r.u8() != 0;
  std::optional<HistoryEntry> entry;
  if (has) entry = decode_entry(r);
  r.expect_done();
  const auto it = entry_waiters_.find(request);
  if (it == entry_waiters_.end()) return;
  finish_rpc(it->second.second);
  auto waiter = std::move(it->second.first);
  entry_waiters_.erase(it);
  waiter(std::move(entry));
}

const std::vector<PeerId>* Node::channel_witnesses(std::uint64_t channel_id) const {
  if (const auto it = producer_channels_.find(channel_id); it != producer_channels_.end()) {
    return &it->second.witnesses;
  }
  if (const auto it = consumer_channels_.find(channel_id); it != consumer_channels_.end()) {
    return &it->second.witnesses;
  }
  return nullptr;
}

}  // namespace accountnet::core
