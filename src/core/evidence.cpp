#include "accountnet/core/evidence.hpp"

#include <algorithm>

#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

DataDigest digest_of(BytesView payload) {
  return crypto::Sha256::hash(payload);
}

Bytes evidence_payload(std::uint64_t channel_id, std::uint64_t sequence,
                       const DataDigest& digest) {
  wire::Writer w;
  w.str("an.evidence");
  w.u64(channel_id);
  w.u64(sequence);
  w.raw(BytesView(digest.data(), digest.size()));
  return std::move(w).take();
}

bool verify_testimony(const Testimony& t, const crypto::CryptoProvider& provider) {
  return provider.verify(t.witness.key,
                         evidence_payload(t.channel_id, t.sequence, t.digest),
                         t.signature);
}

Testimony EvidenceLog::record(const crypto::Signer& signer, std::uint64_t channel_id,
                              std::uint64_t sequence, BytesView payload) {
  Testimony t;
  t.witness = owner_;
  t.channel_id = channel_id;
  t.sequence = sequence;
  t.digest = digest_of(payload);
  t.signature = signer.sign(evidence_payload(channel_id, sequence, t.digest));
  records_[{channel_id, sequence}] = t;
  return t;
}

std::optional<Testimony> EvidenceLog::lookup(std::uint64_t channel_id,
                                             std::uint64_t sequence) const {
  const auto it = records_.find({channel_id, sequence});
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

Resolution resolve_dispute(std::uint64_t channel_id, std::uint64_t sequence,
                           const Claim& producer_claim, const Claim& consumer_claim,
                           const std::vector<Testimony>& testimonies,
                           std::size_t group_size,
                           const crypto::CryptoProvider& provider) {
  Resolution res;

  // A witness that validly signed two *different* digests for this
  // (channel, seq) has equivocated: exclude everything it said from the
  // tally (it is lying at least once) and expose it — the conflicting pair
  // is automatic accusation material.
  std::vector<std::pair<PeerId, DataDigest>> first_digest;
  for (const auto& t : testimonies) {
    if (t.channel_id != channel_id || t.sequence != sequence ||
        !verify_testimony(t, provider)) {
      continue;
    }
    const auto seen = std::find_if(first_digest.begin(), first_digest.end(),
                                   [&](const auto& e) { return e.first == t.witness; });
    if (seen == first_digest.end()) {
      first_digest.emplace_back(t.witness, t.digest);
    } else if (seen->second != t.digest &&
               std::find(res.equivocators.begin(), res.equivocators.end(), t.witness) ==
                   res.equivocators.end()) {
      res.equivocators.push_back(t.witness);
    }
  }

  const auto equivocated = [&](const PeerId& w) {
    return std::find(res.equivocators.begin(), res.equivocators.end(), w) !=
           res.equivocators.end();
  };

  // Tally verified testimonies for this (channel, seq).
  std::vector<std::pair<DataDigest, std::size_t>> tally;
  for (const auto& t : testimonies) {
    if (t.channel_id != channel_id || t.sequence != sequence ||
        !verify_testimony(t, provider) || equivocated(t.witness)) {
      ++res.invalid_testimonies;
      continue;
    }
    ++res.valid_testimonies;
    auto it = std::find_if(tally.begin(), tally.end(),
                           [&](const auto& e) { return e.first == t.digest; });
    if (it == tally.end()) {
      tally.emplace_back(t.digest, 1);
    } else {
      ++it->second;
    }
  }

  // Strict majority of the full witness group, so withheld testimonies count
  // against, not for, a colluding side.
  const std::size_t threshold = group_size / 2 + 1;
  for (const auto& [digest, count] : tally) {
    if (count >= threshold) {
      res.majority_digest = digest;
      res.majority_count = count;
      break;
    }
  }

  if (!res.majority_digest) {
    res.verdict = Verdict::kInconclusive;
    return res;
  }

  const bool producer_matches =
      producer_claim.digest.has_value() && *producer_claim.digest == *res.majority_digest;
  const bool consumer_matches =
      consumer_claim.digest.has_value() && *consumer_claim.digest == *res.majority_digest;

  if (producer_matches && consumer_matches) {
    res.verdict = Verdict::kClaimsAgree;
  } else if (producer_matches) {
    res.verdict = Verdict::kConsumerDishonest;
  } else if (consumer_matches) {
    res.verdict = Verdict::kProducerDishonest;
  } else {
    res.verdict = Verdict::kBothDishonest;
  }
  return res;
}

}  // namespace accountnet::core
