#include "accountnet/core/history.hpp"

#include <algorithm>

#include "accountnet/crypto/sha256.hpp"
#include "accountnet/util/ensure.hpp"

namespace accountnet::core {

Bytes join_stamp_payload(const std::string& joiner_addr) {
  wire::Writer w;
  w.str("an.join");
  w.str(joiner_addr);
  return std::move(w).take();
}

Bytes shuffle_nonce_payload(Round counterpart_round) {
  wire::Writer w;
  w.str("an.shuffle");
  w.u64(counterpart_round);
  return std::move(w).take();
}

Bytes leave_payload(Round reporter_round, const std::string& leaver_addr) {
  wire::Writer w;
  w.str("an.leave");
  w.u64(reporter_round);
  w.str(leaver_addr);
  return std::move(w).take();
}

void encode_peer(wire::Writer& w, const PeerId& p) {
  w.str(p.addr);
  w.raw(BytesView(p.key.data(), p.key.size()));
}

PeerId decode_peer(wire::Reader& r) {
  PeerId p;
  p.addr = r.str();
  const Bytes key = r.raw(32);
  std::copy(key.begin(), key.end(), p.key.begin());
  return p;
}

namespace {

void encode_peer_list(wire::Writer& w, const std::vector<PeerId>& peers) {
  w.varint(peers.size());
  for (const auto& p : peers) encode_peer(w, p);
}

std::vector<PeerId> decode_peer_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("peer list implausibly long");
  std::vector<PeerId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_peer(r));
  return out;
}

}  // namespace

void encode_entry(wire::Writer& w, const HistoryEntry& e) {
  w.u8(static_cast<std::uint8_t>(e.kind));
  w.u64(e.self_round);
  encode_peer(w, e.counterpart);
  w.u64(e.nonce);
  w.bytes(e.signature);
  w.u8(e.initiated ? 1 : 0);
  encode_peer_list(w, e.out);
  encode_peer_list(w, e.in);
  encode_peer_list(w, e.fill);
}

HistoryEntry decode_entry(wire::Reader& r) {
  HistoryEntry e;
  const auto kind = r.u8();
  if (kind < 1 || kind > 3) throw wire::DecodeError("bad entry kind");
  e.kind = static_cast<EntryKind>(kind);
  e.self_round = r.u64();
  e.counterpart = decode_peer(r);
  e.nonce = r.u64();
  e.signature = r.bytes();
  e.initiated = r.u8() != 0;
  e.out = decode_peer_list(r);
  e.in = decode_peer_list(r);
  e.fill = decode_peer_list(r);
  return e;
}

ChainDigest entry_digest(const HistoryEntry& e) {
  wire::Writer w;
  encode_entry(w, e);
  const Bytes encoded = std::move(w).take();
  return crypto::Sha256::hash(BytesView(encoded.data(), encoded.size()));
}

ChainDigest chain_step(const ChainDigest& prev, const ChainDigest& entry) {
  crypto::Sha256 h;
  h.update(BytesView(prev.data(), prev.size()));
  h.update(BytesView(entry.data(), entry.size()));
  return h.finish();
}

void UpdateHistory::append(HistoryEntry entry) {
  if (!entries_.empty()) {
    AN_ENSURE_MSG(entry.self_round > entries_.back().self_round,
                  "history rounds must be strictly ascending");
  }
  chain_ = chain_step(chain_, entry_digest(entry));
  entries_.push_back(std::move(entry));
  ++total_appended_;
}

const HistoryEntry& UpdateHistory::back() const {
  AN_ENSURE_MSG(!entries_.empty(), "history is empty");
  return entries_.back();
}

Peerset UpdateHistory::reconstruct(const std::vector<HistoryEntry>& suffix) {
  Peerset n;
  for (const auto& e : suffix) {
    for (const auto& p : e.out) n.erase(p);
    n.insert_all(e.in);
    n.insert_all(e.fill);
  }
  return n;
}

std::size_t UpdateHistory::minimal_suffix_length(const Peerset& current) const {
  // A suffix reconstructs `current` exactly iff it covers the most recent
  // (re)insertion of every current peer; scan backwards tracking coverage.
  if (current.empty()) return 0;
  std::size_t covered = 0;
  std::vector<bool> seen(current.size(), false);
  auto mark = [&](const PeerId& p) {
    const auto& sorted = current.sorted();
    const auto it = std::lower_bound(sorted.begin(), sorted.end(), p);
    if (it != sorted.end() && *it == p) {
      const auto idx = static_cast<std::size_t>(it - sorted.begin());
      if (!seen[idx]) {
        seen[idx] = true;
        ++covered;
      }
    }
  };
  for (std::size_t k = 0; k < entries_.size(); ++k) {
    const auto& e = entries_[entries_.size() - 1 - k];
    for (const auto& p : e.in) mark(p);
    for (const auto& p : e.fill) mark(p);
    if (covered == current.size()) {
      // Candidate length k+1; confirm by replay (removals could interleave).
      const auto candidate = suffix(k + 1);
      if (reconstruct(candidate) == current) return k + 1;
    }
  }
  if (reconstruct(entries_) == current) return entries_.size();
  return entries_.size() + 1;
}

std::vector<HistoryEntry> UpdateHistory::suffix(std::size_t k) const {
  k = std::min(k, entries_.size());
  return std::vector<HistoryEntry>(entries_.end() - static_cast<std::ptrdiff_t>(k),
                                   entries_.end());
}

std::vector<HistoryEntry> UpdateHistory::proof_suffix(const Peerset& current) const {
  const std::size_t k = minimal_suffix_length(current);
  return suffix(std::min(k, entries_.size()));
}

void UpdateHistory::trim(std::size_t max_entries) {
  if (entries_.size() > max_entries) {
    const std::size_t drop = entries_.size() - max_entries;
    for (std::size_t i = 0; i < drop; ++i) {
      base_chain_ = chain_step(base_chain_, entry_digest(entries_[i]));
    }
    entries_.erase(entries_.begin(), entries_.begin() + static_cast<std::ptrdiff_t>(drop));
    trim_count_ += drop;
  }
}

ChainDigest UpdateHistory::chain_at(std::uint64_t index) const {
  AN_ENSURE_MSG(index >= trim_count_ && index <= total_appended_,
                "chain_at index outside the retained window");
  ChainDigest c = base_chain_;
  for (std::uint64_t i = trim_count_; i < index; ++i) {
    c = chain_step(c, entry_digest(entries_[static_cast<std::size_t>(i - trim_count_)]));
  }
  return c;
}

UpdateHistory UpdateHistory::restore(const ChainDigest& base, std::uint64_t first_index,
                                     std::vector<HistoryEntry> entries) {
  UpdateHistory h;
  h.base_chain_ = base;
  h.chain_ = base;
  h.trim_count_ = first_index;
  h.total_appended_ = first_index;
  for (auto& e : entries) h.append(std::move(e));
  return h;
}

std::vector<HistoryEntry> UpdateHistory::entries_from(std::uint64_t index,
                                                      std::size_t count) const {
  if (index < trim_count_ || index >= total_appended_) return {};
  const auto offset = static_cast<std::size_t>(index - trim_count_);
  const std::size_t n = std::min(count, entries_.size() - offset);
  return std::vector<HistoryEntry>(
      entries_.begin() + static_cast<std::ptrdiff_t>(offset),
      entries_.begin() + static_cast<std::ptrdiff_t>(offset + n));
}

HistoryCheckPlan plan_history_checks(const std::vector<HistoryEntry>& suffix,
                                     std::size_t begin, std::optional<Round> prev_round,
                                     const PeerId& owner) {
  HistoryCheckPlan plan;
  std::size_t seq = 0;
  Round prev = prev_round.value_or(0);
  bool first = !prev_round.has_value();
  // Every check — structural or deferred signature — consumes one seq slot in
  // the exact order verify_history_suffix evaluates it; the scan stops at the
  // first structural failure just as the sequential code returns there.
  const auto structural = [&](bool ok, VerifyError code) {
    if (!ok) plan.structural_failure = std::pair{seq, code};
    ++seq;
    return ok;
  };
  const auto defer_sig = [&](std::size_t index, const crypto::PublicKeyBytes& pk,
                             Bytes payload, const Bytes& sig, VerifyError code) {
    plan.sig_checks.push_back(
        HistorySigCheck{seq, index, pk, std::move(payload), &sig, code});
    ++seq;
  };
  for (std::size_t i = begin; i < suffix.size(); ++i) {
    const auto& e = suffix[i];
    if (!first && !structural(e.self_round > prev, VerifyError::kRoundsNotAscending)) {
      break;
    }
    prev = e.self_round;
    first = false;

    bool entry_ok = true;
    switch (e.kind) {
      case EntryKind::kJoin: {
        if (!structural(e.self_round == 0, VerifyError::kJoinAfterRoundZero)) {
          entry_ok = false;
          break;
        }
        defer_sig(i, e.counterpart.key, join_stamp_payload(owner.addr), e.signature,
                  VerifyError::kInvalidJoinStamp);
        if (!structural(e.out.empty(), VerifyError::kJoinRemovesPeers)) entry_ok = false;
        break;
      }
      case EntryKind::kShuffle: {
        defer_sig(i, e.counterpart.key, shuffle_nonce_payload(e.nonce), e.signature,
                  VerifyError::kInvalidShuffleSignature);
        if (!structural(!(e.counterpart == owner), VerifyError::kSelfShuffleEntry)) {
          entry_ok = false;
        }
        break;
      }
      case EntryKind::kLeave: {
        if (!structural(e.out.size() == 1 && e.in.empty() && e.fill.empty(),
                        VerifyError::kMalformedLeaveEntry)) {
          entry_ok = false;
          break;
        }
        defer_sig(i, e.counterpart.key, leave_payload(e.nonce, e.out.front().addr),
                  e.signature, VerifyError::kInvalidLeaveSignature);
        break;
      }
    }
    if (!entry_ok) break;

    // A node never holds itself in its peerset.
    bool owner_in = false;
    for (const auto& p : e.in) {
      if (p == owner) owner_in = true;
    }
    if (!structural(!owner_in, VerifyError::kOwnerInsertedIntoOwnPeerset)) break;
    bool owner_fill = false;
    for (const auto& p : e.fill) {
      if (p == owner) owner_fill = true;
    }
    if (!structural(!owner_fill, VerifyError::kOwnerFilledIntoOwnPeerset)) break;
  }
  return plan;
}

VerifyResult verify_history_suffix(const std::vector<HistoryEntry>& suffix,
                                   const PeerId& owner, const Peerset& claimed,
                                   const crypto::CryptoProvider& provider) {
  const HistoryCheckPlan plan = plan_history_checks(suffix, 0, std::nullopt, owner);
  for (const auto& c : plan.sig_checks) {
    if (plan.structural_failure && plan.structural_failure->first < c.seq) break;
    if (!provider.verify(c.pk, c.payload, *c.signature)) {
      return VerifyResult::fail(c.on_fail);
    }
  }
  if (plan.structural_failure) {
    return VerifyResult::fail(plan.structural_failure->second);
  }
  if (!(UpdateHistory::reconstruct(suffix) == claimed)) {
    return VerifyResult::fail(VerifyError::kReconstructionMismatch);
  }
  return VerifyResult::pass();
}

}  // namespace accountnet::core
