#include "accountnet/core/audit.hpp"

#include <algorithm>
#include <set>

namespace accountnet::core {

namespace {

bool contains(const std::vector<PeerId>& v, const PeerId& p) {
  return std::find(v.begin(), v.end(), p) != v.end();
}

}  // namespace

VerifyResult audit_entry_pair(const HistoryEntry& mine, const PeerId& me,
                              const HistoryEntry& theirs, const PeerId& them) {
  if (mine.kind != EntryKind::kShuffle || theirs.kind != EntryKind::kShuffle) {
    return VerifyResult::fail(VerifyError::kAuditNotShuffleEntries);
  }
  if (!(mine.counterpart == them) || !(theirs.counterpart == me)) {
    return VerifyResult::fail(VerifyError::kAuditEntriesUnlinked);
  }
  // The nonces must cross-reference the rounds: my entry's nonce is their
  // round and vice versa.
  if (mine.nonce != theirs.self_round || theirs.nonce != mine.self_round) {
    return VerifyResult::fail(VerifyError::kAuditNonceMismatch);
  }
  // Exactly one side initiated.
  if (mine.initiated == theirs.initiated) {
    return VerifyResult::fail(VerifyError::kAuditInitiatorFlagMismatch);
  }
  // What I added must have been offered by them: their out-set, themselves
  // (the initiator inserts itself on the responder's side), or one of my own
  // refills (which by construction live in MY out-set, not in `in`).
  for (const auto& p : mine.in) {
    if (!contains(theirs.out, p) && !(p == them)) {
      return VerifyResult::fail(VerifyError::kAuditInPeerNeverOffered, p.addr);
    }
  }
  for (const auto& p : theirs.in) {
    if (!contains(mine.out, p) && !(p == me)) {
      return VerifyResult::fail(VerifyError::kAuditCounterpartInPeerNeverOffered, p.addr);
    }
  }
  // Refills come back from the node's own outgoing set.
  for (const auto& p : mine.fill) {
    if (!contains(mine.out, p)) {
      return VerifyResult::fail(VerifyError::kAuditRefillNotFromOut, p.addr);
    }
  }
  for (const auto& p : theirs.fill) {
    if (!contains(theirs.out, p)) {
      return VerifyResult::fail(VerifyError::kAuditCounterpartRefillNotFromOut, p.addr);
    }
  }
  return VerifyResult::pass();
}

VerifyResult audit_history_invariants(const std::vector<HistoryEntry>& suffix,
                                      const PeerId& owner) {
  // Absence-based invariants ("out ⊆ N̂[r]", "counterpart ∈ N̂[r]") are only
  // decidable when the window starts at the node's first entry: a partial
  // suffix legitimately removes peers introduced before the window. For
  // partial windows we still check the window-independent invariants.
  const bool complete = !suffix.empty() && suffix.front().self_round == 0;

  Peerset reconstructed;
  for (const auto& e : suffix) {
    if (e.kind == EntryKind::kShuffle) {
      if (e.counterpart == owner) return VerifyResult::fail(VerifyError::kSelfShuffleEntry);
      for (const auto& p : e.fill) {
        if (!contains(e.out, p)) {
          return VerifyResult::fail(VerifyError::kAuditRefillNotFromOut, p.addr);
        }
      }
      if (complete) {
        // Invariant: the counterpart was a known peer when the owner
        // initiated (responders meet unknown initiators legitimately).
        if (e.initiated && !reconstructed.contains(e.counterpart)) {
          return VerifyResult::fail(VerifyError::kAuditInitiatedWithNonPeer,
                                    "round " + std::to_string(e.self_round));
        }
        // Invariant: out ⊆ N̂[r].
        for (const auto& p : e.out) {
          if (!reconstructed.contains(p)) {
            return VerifyResult::fail(
                VerifyError::kAuditRemovedNonMember,
                p.addr + " at round " + std::to_string(e.self_round));
          }
        }
      }
    }
    for (const auto& p : e.out) reconstructed.erase(p);
    reconstructed.insert_all(e.in);
    reconstructed.insert_all(e.fill);
  }
  return VerifyResult::pass();
}

CrossAuditResult cross_audit_history(const std::vector<HistoryEntry>& suffix,
                                     const PeerId& owner, const EntryOracle& oracle) {
  CrossAuditResult out;
  for (const auto& e : suffix) {
    if (e.kind != EntryKind::kShuffle) continue;
    const auto mirror = oracle.entry_of(e.counterpart, e.nonce);
    if (!mirror) {
      ++out.unreachable;
      continue;
    }
    ++out.checked;
    if (const auto v = audit_entry_pair(e, owner, *mirror, e.counterpart); !v) {
      out.verdict = v;
      return out;
    }
  }
  return out;
}

VerifyResult audit_neighborhood_full(const PeersetOracle& oracle, const PeerId& root,
                                     std::size_t depth,
                                     const std::vector<PeerId>& claimed) {
  const auto actual = neighborhood(oracle, root, depth);
  if (actual == claimed) return VerifyResult::pass();
  // Diagnose the direction of the lie for a useful reason string.
  const auto ghosts = sorted_difference(claimed, actual);
  if (!ghosts.empty()) {
    return VerifyResult::fail(VerifyError::kNeighborhoodGhostNode, ghosts.front().addr);
  }
  const auto hidden = sorted_difference(actual, claimed);
  return VerifyResult::fail(VerifyError::kNeighborhoodHiddenNode,
                            hidden.empty() ? "?" : hidden.front().addr);
}

VerifyResult audit_neighborhood_spot(const PeersetOracle& oracle, const PeerId& root,
                                     std::size_t depth,
                                     const std::vector<PeerId>& claimed,
                                     std::size_t walks, Rng& rng) {
  std::set<PeerId> claimed_set(claimed.begin(), claimed.end());
  for (std::size_t w = 0; w < walks; ++w) {
    PeerId cursor = root;
    for (std::size_t step = 0; step < depth; ++step) {
      const auto ps = oracle.peerset_of(cursor);
      if (!ps || ps->empty()) break;
      cursor = ps->at(static_cast<std::size_t>(rng.uniform(ps->size())));
      if (cursor == root) continue;  // walked back home
      if (!claimed_set.contains(cursor)) {
        return VerifyResult::fail(VerifyError::kNeighborhoodUnderReported, cursor.addr);
      }
    }
  }
  return VerifyResult::pass();
}

}  // namespace accountnet::core
