#include "accountnet/core/checkpoint.hpp"

#include <algorithm>

#include "accountnet/crypto/sha256.hpp"

namespace accountnet::core {

namespace {

constexpr std::uint64_t kMaxSegmentEntriesWire = 100000;

void encode_peer_list(wire::Writer& w, const std::vector<PeerId>& peers) {
  w.varint(peers.size());
  for (const auto& p : peers) encode_peer(w, p);
}

std::vector<PeerId> decode_peer_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("peer list implausibly long");
  std::vector<PeerId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_peer(r));
  return out;
}

ChainDigest decode_chain(wire::Reader& r) {
  const Bytes b = r.raw(32);
  ChainDigest d;
  std::copy(b.begin(), b.end(), d.begin());
  return d;
}

void encode_checkpoint_core(wire::Writer& w, const Checkpoint& ck) {
  encode_peer(w, ck.owner);
  w.u64(ck.epoch);
  w.u64(ck.sealed_count);
  w.u64(ck.last_round);
  w.raw(BytesView(ck.chain.data(), ck.chain.size()));
  encode_peer_list(w, ck.peerset);
}

Bytes domain_digest_payload(std::string_view domain, const Bytes& core) {
  const auto digest = crypto::Sha256::hash(core);
  wire::Writer w;
  w.str(domain);
  w.raw(BytesView(digest.data(), digest.size()));
  return std::move(w).take();
}

}  // namespace

void encode_checkpoint(wire::Writer& w, const Checkpoint& ck) {
  encode_checkpoint_core(w, ck);
  w.bytes(ck.owner_sig);
}

Checkpoint decode_checkpoint(wire::Reader& r) {
  Checkpoint ck;
  ck.owner = decode_peer(r);
  ck.epoch = r.u64();
  ck.sealed_count = r.u64();
  ck.last_round = r.u64();
  ck.chain = decode_chain(r);
  ck.peerset = decode_peer_list(r);
  ck.owner_sig = r.bytes();
  return ck;
}

Bytes Checkpoint::encode() const {
  wire::Writer w;
  encode_checkpoint(w, *this);
  return std::move(w).take();
}

Bytes Checkpoint::encode_core() const {
  wire::Writer w;
  encode_checkpoint_core(w, *this);
  return std::move(w).take();
}

Checkpoint Checkpoint::decode(BytesView data) {
  wire::Reader r(data);
  Checkpoint ck = decode_checkpoint(r);
  r.expect_done();
  return ck;
}

Bytes Checkpoint::signing_payload() const {
  return domain_digest_payload("an.ckpt", encode_core());
}

ChainDigest fold_chain(ChainDigest base, const std::vector<HistoryEntry>& entries) {
  for (const auto& e : entries) base = chain_step(base, entry_digest(e));
  return base;
}

VerifyResult verify_checkpoint(const Checkpoint& ck, const PeerId& expected_owner,
                               const crypto::CryptoProvider& provider) {
  if (!(ck.owner == expected_owner)) {
    return VerifyResult::fail(VerifyError::kCheckpointOwnerMismatch);
  }
  if (ck.epoch == 0 || ck.sealed_count == 0) {
    return VerifyResult::fail(VerifyError::kCheckpointMalformed,
                              "epoch and sealed count must be positive");
  }
  // Strictly sorted == sorted and duplicate-free; the peerset doubles as the
  // replay base, so a malformed one would corrupt every anchored replay.
  for (std::size_t i = 0; i + 1 < ck.peerset.size(); ++i) {
    if (!(ck.peerset[i] < ck.peerset[i + 1])) {
      return VerifyResult::fail(VerifyError::kCheckpointMalformed,
                                "peerset not strictly sorted");
    }
  }
  for (const auto& p : ck.peerset) {
    if (p == ck.owner) {
      return VerifyResult::fail(VerifyError::kCheckpointMalformed,
                                "owner in own peerset");
    }
  }
  if (!provider.verify(ck.owner.key, ck.signing_payload(), ck.owner_sig)) {
    return VerifyResult::fail(VerifyError::kCheckpointBadSignature);
  }
  return VerifyResult::pass();
}

VerifyResult verify_history_suffix_anchored(const Checkpoint& ck,
                                            const std::vector<HistoryEntry>& suffix,
                                            const PeerId& owner, const Peerset& claimed,
                                            const crypto::CryptoProvider& provider) {
  if (const auto r = verify_checkpoint(ck, owner, provider); !r) return r;
  const HistoryCheckPlan plan = plan_history_checks(suffix, 0, ck.last_round, owner);
  for (const auto& c : plan.sig_checks) {
    if (plan.structural_failure && plan.structural_failure->first < c.seq) break;
    if (!provider.verify(c.pk, c.payload, *c.signature)) {
      return VerifyResult::fail(c.on_fail);
    }
  }
  if (plan.structural_failure) {
    return VerifyResult::fail(plan.structural_failure->second);
  }
  Peerset n(std::vector<PeerId>(ck.peerset));
  for (const auto& e : suffix) {
    for (const auto& p : e.out) n.erase(p);
    n.insert_all(e.in);
    n.insert_all(e.fill);
  }
  if (!(n == claimed)) {
    return VerifyResult::fail(VerifyError::kReconstructionMismatch);
  }
  return VerifyResult::pass();
}

Bytes CheckpointAnnounce::encode() const {
  wire::Writer w;
  encode_checkpoint(w, checkpoint);
  w.u8(want_reply ? 1 : 0);
  return std::move(w).take();
}

CheckpointAnnounce CheckpointAnnounce::decode(BytesView data) {
  wire::Reader r(data);
  CheckpointAnnounce a;
  a.checkpoint = decode_checkpoint(r);
  a.want_reply = r.u8() != 0;
  r.expect_done();
  return a;
}

Bytes SegmentRequest::encode() const {
  wire::Writer w;
  w.u64(request_id);
  w.u64(start);
  w.u64(end);
  return std::move(w).take();
}

SegmentRequest SegmentRequest::decode(BytesView data) {
  wire::Reader r(data);
  SegmentRequest req;
  req.request_id = r.u64();
  req.start = r.u64();
  req.end = r.u64();
  r.expect_done();
  return req;
}

Bytes SegmentData::encode() const {
  wire::Writer w;
  w.raw(encode_core());
  w.bytes(server_sig);
  return std::move(w).take();
}

Bytes SegmentData::encode_core() const {
  wire::Writer w;
  w.u64(request_id);
  encode_peer(w, server);
  w.u64(start);
  w.raw(BytesView(base_chain.data(), base_chain.size()));
  w.varint(entries.size());
  for (const auto& e : entries) encode_entry(w, e);
  return std::move(w).take();
}

SegmentData SegmentData::decode(BytesView data) {
  wire::Reader r(data);
  SegmentData seg;
  seg.request_id = r.u64();
  seg.server = decode_peer(r);
  seg.start = r.u64();
  seg.base_chain = decode_chain(r);
  const auto n = r.varint();
  if (n > kMaxSegmentEntriesWire) throw wire::DecodeError("segment implausibly long");
  seg.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) seg.entries.push_back(decode_entry(r));
  seg.server_sig = r.bytes();
  r.expect_done();
  return seg;
}

Bytes SegmentData::signing_payload() const {
  return domain_digest_payload("an.segment", encode_core());
}

bool segment_contradicts_checkpoint(const SegmentData& seg, const Checkpoint& ck) {
  if (!(seg.server == ck.owner)) return false;
  const std::uint64_t end = seg.start + seg.entries.size();
  // Tail slice reaching the sealed boundary: its total fold must hit ck.chain.
  if (seg.start < ck.sealed_count && end == ck.sealed_count) {
    return fold_chain(seg.base_chain, seg.entries) != ck.chain;
  }
  // Slice starting exactly at the boundary: its claimed base IS the sealed chain.
  if (seg.start == ck.sealed_count) return seg.base_chain != ck.chain;
  return false;
}

}  // namespace accountnet::core
