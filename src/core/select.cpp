#include "accountnet/core/select.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

std::optional<std::size_t> select_index(std::size_t list_size, BytesView vrf_output) {
  AN_ENSURE_MSG(list_size > 0, "select over empty list");
  AN_ENSURE_MSG(vrf_output.size() >= 8, "vrf output too short");
  // Q = ceil(log2 |X|): smallest Q with 2^Q >= |X|.
  std::size_t q = 0;
  while ((std::size_t{1} << q) < list_size) ++q;
  std::uint64_t h = 0;
  for (int i = 7; i >= 0; --i) h = (h << 8) | vrf_output[static_cast<std::size_t>(i)];
  const std::uint64_t mask = q >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << q) - 1);
  const std::uint64_t index = h & mask;
  if (index >= list_size) return std::nullopt;  // Null -> retry
  return static_cast<std::size_t>(index);
}

Bytes draw_alpha(std::string_view domain, BytesView nonce, std::uint64_t attempt) {
  wire::Writer w;
  w.str(domain);
  w.bytes(nonce);
  w.u64(attempt);
  return std::move(w).take();
}

Bytes round_nonce(Round r) {
  wire::Writer w;
  w.u64(r);
  return std::move(w).take();
}

Draw draw_sample(const crypto::Signer& signer, const Peerset& candidates,
                 std::size_t want, std::string_view domain, BytesView nonce) {
  Draw draw;
  const std::size_t target = std::min(want, candidates.size());
  if (target == 0) return draw;
  for (std::uint64_t attempt = 1; attempt <= kMaxDrawAttempts; ++attempt) {
    const Bytes alpha = draw_alpha(domain, nonce, attempt);
    const auto beta = signer.vrf_output(alpha);
    draw.proofs.push_back(signer.vrf_prove(alpha));
    const auto idx = select_index(candidates.size(), BytesView(beta.data(), beta.size()));
    if (!idx) continue;  // Null
    const PeerId& picked = candidates.at(*idx);
    if (std::find(draw.sample.begin(), draw.sample.end(), picked) != draw.sample.end()) {
      continue;  // duplicate
    }
    draw.sample.push_back(picked);
    if (draw.sample.size() == target) break;
  }
  return draw;
}

VerifyResult verify_sample_with(const VrfResolveFn& resolve, const Peerset& candidates,
                                std::size_t want, std::string_view domain,
                                BytesView nonce, const std::vector<Bytes>& proofs,
                                const std::vector<PeerId>& claimed) {
  const std::size_t target = std::min(want, candidates.size());
  if (target == 0) {
    if (!proofs.empty() || !claimed.empty()) {
      return VerifyResult::fail(VerifyError::kSampleFromEmptyCandidates);
    }
    return VerifyResult::pass();
  }
  if (proofs.size() > kMaxDrawAttempts) {
    return VerifyResult::fail(VerifyError::kTooManyDrawProofs);
  }
  std::vector<PeerId> derived;
  for (std::size_t i = 0; i < proofs.size(); ++i) {
    if (derived.size() == target) {
      return VerifyResult::fail(VerifyError::kExtraDrawProofs);
    }
    const Bytes alpha = draw_alpha(domain, nonce, static_cast<std::uint64_t>(i) + 1);
    const auto beta = resolve(i, BytesView(alpha.data(), alpha.size()));
    if (!beta) return VerifyResult::fail(VerifyError::kInvalidVrfProof);
    const auto idx = select_index(candidates.size(), BytesView(beta->data(), beta->size()));
    if (!idx) continue;
    const PeerId& picked = candidates.at(*idx);
    if (std::find(derived.begin(), derived.end(), picked) != derived.end()) continue;
    derived.push_back(picked);
  }
  if (derived.size() != target && proofs.size() != kMaxDrawAttempts) {
    return VerifyResult::fail(VerifyError::kSampleIncomplete);
  }
  if (derived != claimed) return VerifyResult::fail(VerifyError::kSampleMismatch);
  return VerifyResult::pass();
}

VerifyResult verify_sample(const crypto::CryptoProvider& provider,
                           const crypto::PublicKeyBytes& prover_key,
                           const Peerset& candidates, std::size_t want,
                           std::string_view domain, BytesView nonce,
                           const std::vector<Bytes>& proofs,
                           const std::vector<PeerId>& claimed) {
  return verify_sample_with(
      [&](std::size_t i, BytesView alpha) {
        return provider.vrf_verify(prover_key, alpha, proofs[i]);
      },
      candidates, want, domain, nonce, proofs, claimed);
}

std::optional<Draw> draw_one(const crypto::Signer& signer, const Peerset& candidates,
                             std::string_view domain, BytesView nonce) {
  Draw draw = draw_sample(signer, candidates, 1, domain, nonce);
  if (draw.sample.empty()) return std::nullopt;
  return draw;
}

VerifyResult verify_one(const crypto::CryptoProvider& provider,
                        const crypto::PublicKeyBytes& prover_key,
                        const Peerset& candidates, std::string_view domain,
                        BytesView nonce, const std::vector<Bytes>& proofs,
                        const PeerId& claimed) {
  return verify_sample(provider, prover_key, candidates, 1, domain, nonce, proofs,
                       {claimed});
}

}  // namespace accountnet::core
