#include "accountnet/core/neighborhood.hpp"

#include <algorithm>
#include <unordered_set>

namespace accountnet::core {

std::vector<PeerId> neighborhood(const PeersetOracle& oracle, const PeerId& root,
                                 std::size_t depth) {
  std::unordered_set<PeerId, PeerIdHash> visited;
  visited.insert(root);
  std::vector<PeerId> frontier = {root};
  std::vector<PeerId> result;

  for (std::size_t level = 0; level < depth && !frontier.empty(); ++level) {
    std::vector<PeerId> next;
    for (const auto& node : frontier) {
      const auto ps = oracle.peerset_of(node);
      if (!ps) continue;
      for (const auto& peer : ps->sorted()) {
        if (visited.insert(peer).second) {
          result.push_back(peer);
          next.push_back(peer);
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<PeerId> sorted_intersection(const std::vector<PeerId>& a,
                                        const std::vector<PeerId>& b) {
  std::vector<PeerId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

std::vector<PeerId> sorted_difference(const std::vector<PeerId>& a,
                                      const std::vector<PeerId>& b) {
  std::vector<PeerId> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return out;
}

}  // namespace accountnet::core
