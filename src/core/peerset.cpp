#include "accountnet/core/peerset.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"

namespace accountnet::core {

Peerset::Peerset(std::vector<PeerId> peers) : peers_(std::move(peers)) {
  std::sort(peers_.begin(), peers_.end());
  peers_.erase(std::unique(peers_.begin(), peers_.end()), peers_.end());
}

bool Peerset::insert(const PeerId& peer) {
  const auto it = std::lower_bound(peers_.begin(), peers_.end(), peer);
  if (it != peers_.end() && *it == peer) return false;
  peers_.insert(it, peer);
  return true;
}

bool Peerset::erase(const PeerId& peer) {
  const auto it = std::lower_bound(peers_.begin(), peers_.end(), peer);
  if (it == peers_.end() || !(*it == peer)) return false;
  peers_.erase(it);
  return true;
}

bool Peerset::contains(const PeerId& peer) const {
  return std::binary_search(peers_.begin(), peers_.end(), peer);
}

const PeerId& Peerset::at(std::size_t index) const {
  AN_ENSURE_MSG(index < peers_.size(), "Peerset::at out of range");
  return peers_[index];
}

Peerset Peerset::minus(const std::vector<PeerId>& other) const {
  Peerset out = *this;
  for (const auto& p : other) out.erase(p);
  return out;
}

void Peerset::insert_all(const std::vector<PeerId>& peers) {
  for (const auto& p : peers) insert(p);
}

}  // namespace accountnet::core
