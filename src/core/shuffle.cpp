#include "accountnet/core/shuffle.hpp"

#include <algorithm>

#include "accountnet/core/sampler.hpp"
#include "accountnet/core/verification_engine.hpp"
#include "accountnet/crypto/sha256.hpp"
#include "accountnet/util/ensure.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

namespace {

void encode_peer_list(wire::Writer& w, const std::vector<PeerId>& peers) {
  w.varint(peers.size());
  for (const auto& p : peers) encode_peer(w, p);
}

std::vector<PeerId> decode_peer_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("peer list implausibly long");
  std::vector<PeerId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_peer(r));
  return out;
}

void encode_bytes_list(wire::Writer& w, const std::vector<Bytes>& list) {
  w.varint(list.size());
  for (const auto& b : list) w.bytes(b);
}

std::vector<Bytes> decode_bytes_list(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("bytes list implausibly long");
  std::vector<Bytes> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.bytes());
  return out;
}

void encode_entries(wire::Writer& w, const std::vector<HistoryEntry>& entries) {
  w.varint(entries.size());
  for (const auto& e : entries) encode_entry(w, e);
}

std::vector<HistoryEntry> decode_entries(wire::Reader& r) {
  const auto n = r.varint();
  if (n > 100000) throw wire::DecodeError("history suffix implausibly long");
  std::vector<HistoryEntry> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(decode_entry(r));
  return out;
}

// Optional checkpoint anchor, marked by a 0x01 byte so non-anchored messages
// keep their historical bytes exactly. The marker is unambiguous against the
// only other thing that can follow the suffix — the trailing body_sig, whose
// varint length prefix is 0x20/0x40 for the signature sizes honest encoders
// emit (a hostile 1-byte "signature" parses as a truncated anchor and fails
// closed, identically for every verifier).
constexpr std::uint8_t kAnchorMarker = 0x01;

void encode_anchor(wire::Writer& w, const std::optional<Checkpoint>& anchor) {
  if (!anchor) return;
  w.u8(kAnchorMarker);
  encode_checkpoint(w, *anchor);
}

std::optional<Checkpoint> decode_anchor(wire::Reader& r) {
  if (r.done() || r.peek_u8() != kAnchorMarker) return std::nullopt;
  r.u8();
  return decode_checkpoint(r);
}

/// Chooses the proof form for a prover's history: the plain minimal suffix
/// when the retained history still reconstructs the peerset from ∅ (the
/// historical bytes), or the checkpoint-anchored form — sealed checkpoint
/// plus only the unsealed tail — when trimming degraded the plain proof.
struct HistoryProof {
  std::vector<HistoryEntry> suffix;
  std::optional<Checkpoint> anchor;
};

HistoryProof make_history_proof(const NodeState& state) {
  HistoryProof proof;
  const auto& h = state.history();
  if (state.checkpoint() && state.history().minimal_suffix_length(state.peerset()) > h.size()) {
    proof.anchor = state.checkpoint();
    proof.suffix = h.entries_from(
        proof.anchor->sealed_count,
        static_cast<std::size_t>(h.total_appended() - proof.anchor->sealed_count));
  } else {
    proof.suffix = h.proof_suffix(state.peerset());
  }
  return proof;
}

}  // namespace

Bytes ShuffleOffer::encode_core() const {
  wire::Writer w;
  encode_peer(w, initiator);
  w.u64(initiator_round);
  w.bytes(initiator_round_sig);
  w.u64(responder_round);
  encode_peer_list(w, sample);
  encode_bytes_list(w, partner_proofs);
  encode_bytes_list(w, sample_proofs);
  encode_peer_list(w, claimed_peerset);
  encode_entries(w, history_suffix);
  encode_anchor(w, anchor);
  return std::move(w).take();
}

Bytes ShuffleOffer::encode() const {
  Bytes out = encode_core();
  if (!body_sig.empty()) {
    wire::Writer w;
    w.raw(out);
    w.bytes(body_sig);
    out = std::move(w).take();
  }
  return out;
}

ShuffleOffer ShuffleOffer::decode(BytesView data) {
  wire::Reader r(data);
  ShuffleOffer o;
  o.initiator = decode_peer(r);
  o.initiator_round = r.u64();
  o.initiator_round_sig = r.bytes();
  o.responder_round = r.u64();
  o.sample = decode_peer_list(r);
  o.partner_proofs = decode_bytes_list(r);
  o.sample_proofs = decode_bytes_list(r);
  o.claimed_peerset = decode_peer_list(r);
  o.history_suffix = decode_entries(r);
  o.anchor = decode_anchor(r);
  if (!r.done()) {
    // Optional trailing field; an encoder never emits an empty one, so a
    // zero-length signature here is padding, not a message — fail closed.
    o.body_sig = r.bytes();
    if (o.body_sig.empty()) throw wire::DecodeError("empty offer body_sig");
  }
  r.expect_done();
  return o;
}

Bytes ShuffleResponse::encode_core() const {
  wire::Writer w;
  encode_peer(w, responder);
  w.u64(responder_round);
  w.bytes(responder_round_sig);
  encode_peer_list(w, sample);
  encode_bytes_list(w, sample_proofs);
  encode_peer_list(w, claimed_peerset);
  encode_entries(w, history_suffix);
  encode_anchor(w, anchor);
  return std::move(w).take();
}

Bytes ShuffleResponse::encode() const {
  Bytes out = encode_core();
  if (!body_sig.empty()) {
    wire::Writer w;
    w.raw(out);
    w.bytes(body_sig);
    out = std::move(w).take();
  }
  return out;
}

ShuffleResponse ShuffleResponse::decode(BytesView data) {
  wire::Reader r(data);
  ShuffleResponse resp;
  resp.responder = decode_peer(r);
  resp.responder_round = r.u64();
  resp.responder_round_sig = r.bytes();
  resp.sample = decode_peer_list(r);
  resp.sample_proofs = decode_bytes_list(r);
  resp.claimed_peerset = decode_peer_list(r);
  resp.history_suffix = decode_entries(r);
  resp.anchor = decode_anchor(r);
  if (!r.done()) {
    resp.body_sig = r.bytes();
    if (resp.body_sig.empty()) throw wire::DecodeError("empty response body_sig");
  }
  r.expect_done();
  return resp;
}

std::optional<PartnerChoice> choose_partner(const NodeState& state) {
  if (state.peerset().empty()) return std::nullopt;
  const Bytes nonce = round_nonce(state.round());
  const auto& sb = sampler_backend(state.config().sampler);
  const auto draw = sb.draw_one(state.signer(), state.peerset(), kPartnerDomain, nonce);
  if (!draw) return std::nullopt;
  return PartnerChoice{draw->sample.front(), draw->proofs};
}

ShuffleOffer make_offer(const NodeState& state, const PartnerChoice& partner,
                        Round responder_round) {
  ShuffleOffer offer;
  offer.initiator = state.self();
  offer.initiator_round = state.round();
  offer.initiator_round_sig = state.sign_current_round();
  offer.responder_round = responder_round;

  const Peerset candidates = state.peerset().minus({partner.partner});
  const std::size_t want = state.config().shuffle_length - 1;  // L-1; v_i added implicitly
  const Draw draw = sampler_backend(state.config().sampler)
                        .draw(state.signer(), candidates, want, kSampleDomain,
                              round_nonce(responder_round));
  offer.sample = draw.sample;
  offer.sample_proofs = draw.proofs;
  offer.partner_proofs = partner.proofs;
  offer.claimed_peerset = state.peerset().sorted();
  HistoryProof proof = make_history_proof(state);
  offer.history_suffix = std::move(proof.suffix);
  offer.anchor = std::move(proof.anchor);
  return offer;
}

namespace {

// The two verification backends shared by the offer/response check templates
// below: plain provider calls, or the VerificationEngine's memoized/batched
// equivalents. Both resolve the same checks in the same order, so the
// verdicts are bit-identical by construction.

struct ProviderVerifier {
  const crypto::CryptoProvider& p;
  const SamplerBackend& sb;

  const crypto::CryptoProvider& provider() const { return p; }
  VerifyResult history(const std::vector<HistoryEntry>& suffix, const PeerId& owner,
                       const Peerset& claimed) const {
    return verify_history_suffix(suffix, owner, claimed, p);
  }
  VerifyResult anchored(const Checkpoint& ck, const std::vector<HistoryEntry>& suffix,
                        const PeerId& owner, const Peerset& claimed) const {
    return verify_history_suffix_anchored(ck, suffix, owner, claimed, p);
  }
  VerifyResult one(const crypto::PublicKeyBytes& pk, const Peerset& candidates,
                   std::string_view domain, BytesView nonce,
                   const std::vector<Bytes>& proofs, const PeerId& claimed) const {
    return sb.verify_one(p, pk, candidates, domain, nonce, proofs, claimed);
  }
  VerifyResult sample(const crypto::PublicKeyBytes& pk, const Peerset& candidates,
                      std::size_t want, std::string_view domain, BytesView nonce,
                      const std::vector<Bytes>& proofs,
                      const std::vector<PeerId>& claimed) const {
    return sb.verify(p, pk, candidates, want, domain, nonce, proofs, claimed);
  }
};

struct EngineVerifier {
  VerificationEngine& e;
  const SamplerBackend& sb;

  const crypto::CryptoProvider& provider() const { return e; }
  VerifyResult history(const std::vector<HistoryEntry>& suffix, const PeerId& owner,
                       const Peerset& claimed) const {
    return e.verify_history(suffix, owner, claimed);
  }
  VerifyResult anchored(const Checkpoint& ck, const std::vector<HistoryEntry>& suffix,
                        const PeerId& owner, const Peerset& claimed) const {
    return e.verify_history_anchored(ck, suffix, owner, claimed);
  }
  VerifyResult one(const crypto::PublicKeyBytes& pk, const Peerset& candidates,
                   std::string_view domain, BytesView nonce,
                   const std::vector<Bytes>& proofs, const PeerId& claimed) const {
    return e.verify_one(sb, pk, candidates, domain, nonce, proofs, claimed);
  }
  VerifyResult sample(const crypto::PublicKeyBytes& pk, const Peerset& candidates,
                      std::size_t want, std::string_view domain, BytesView nonce,
                      const std::vector<Bytes>& proofs,
                      const std::vector<PeerId>& claimed) const {
    return e.verify_sample(sb, pk, candidates, want, domain, nonce, proofs, claimed);
  }
};

template <typename Verifier>
VerifyResult verify_offer_static_impl(const ShuffleOffer& offer, const PeerId& responder,
                                      std::size_t shuffle_length, const Verifier& v) {
  if (offer.initiator == responder) {
    return VerifyResult::fail(VerifyError::kSelfShuffle);
  }
  // σ_i(r_i): the acknowledgement the responder will embed in its entry.
  if (!v.provider().verify(offer.initiator.key,
                           shuffle_nonce_payload(offer.initiator_round),
                           offer.initiator_round_sig)) {
    return VerifyResult::fail(VerifyError::kInvalidInitiatorRoundSignature);
  }
  // Reconstruct and check the initiator's claimed peerset.
  const Peerset claimed(offer.claimed_peerset);
  if (claimed.size() != offer.claimed_peerset.size()) {
    return VerifyResult::fail(VerifyError::kDuplicatePeersetClaim);
  }
  if (claimed.size() > 100000) return VerifyResult::fail(VerifyError::kPeersetTooLarge);
  if (const auto h = offer.anchor
                         ? v.anchored(*offer.anchor, offer.history_suffix,
                                      offer.initiator, claimed)
                         : v.history(offer.history_suffix, offer.initiator, claimed);
      !h) {
    return h;
  }
  // Rounds may be burned without entries (aborted shuffles), so the suffix
  // need not end exactly at r_i - 1, but it can never reach r_i. An anchor's
  // sealed tail round is bounded the same way (an anchored empty suffix would
  // otherwise claim a peerset from a round at or past the offered one).
  if (!offer.history_suffix.empty() &&
      offer.history_suffix.back().self_round >= offer.initiator_round) {
    return VerifyResult::fail(VerifyError::kHistoryBeyondOfferedRound);
  }
  if (offer.anchor && offer.anchor->last_round >= offer.initiator_round) {
    return VerifyResult::fail(VerifyError::kHistoryBeyondOfferedRound);
  }
  // The responder must be the VRF-dictated partner for the initiator's round.
  if (!claimed.contains(responder)) {
    return VerifyResult::fail(VerifyError::kResponderNotInPeerset);
  }
  if (const auto p = v.one(offer.initiator.key, claimed, kPartnerDomain,
                           round_nonce(offer.initiator_round), offer.partner_proofs,
                           responder);
      !p) {
    return VerifyResult::fail(VerifyError::kPartnerSelectionMismatch, p.reason);
  }
  // The sample A must be the VRF draw over N_i - {v_j} seeded by the
  // responder's round (echoed in the offer).
  const Peerset candidates = claimed.minus({responder});
  const std::size_t want = shuffle_length - 1;
  if (const auto s = v.sample(offer.initiator.key, candidates, want, kSampleDomain,
                              round_nonce(offer.responder_round), offer.sample_proofs,
                              offer.sample);
      !s) {
    return VerifyResult::fail(VerifyError::kOfferSampleMismatch, s.reason);
  }
  return VerifyResult::pass();
}

}  // namespace

VerifyResult verify_offer_static(const ShuffleOffer& offer, const PeerId& responder,
                                 const NodeConfig& protocol,
                                 const crypto::CryptoProvider& provider) {
  return verify_offer_static_impl(
      offer, responder, protocol.shuffle_length,
      ProviderVerifier{provider, sampler_backend(protocol.sampler)});
}

VerifyResult verify_offer_static(const ShuffleOffer& offer, const PeerId& responder,
                                 const NodeConfig& protocol, VerificationEngine& engine) {
  return verify_offer_static_impl(
      offer, responder, protocol.shuffle_length,
      EngineVerifier{engine, sampler_backend(protocol.sampler)});
}

VerifyResult verify_offer(const ShuffleOffer& offer, const NodeState& state,
                          Round expected_round, const crypto::CryptoProvider& provider) {
  if (offer.responder_round != expected_round) {
    return VerifyResult::fail(VerifyError::kStaleRoundNonce);
  }
  return verify_offer_static(offer, state.self(), state.config(), provider);
}

VerifyResult verify_offer(const ShuffleOffer& offer, const NodeState& state,
                          Round expected_round, VerificationEngine& engine) {
  if (offer.responder_round != expected_round) {
    return VerifyResult::fail(VerifyError::kStaleRoundNonce);
  }
  return verify_offer_static(offer, state.self(), state.config(), engine);
}

void gather_offer_checks(const ShuffleOffer& offer, const NodeState& state,
                         const VerificationEngine& engine, GatherSink& sink) {
  // Mirrors verify_offer_static_impl's crypto checks in order: round
  // signature, history proof, partner selection, sample A. Structural checks
  // (self-shuffle, duplicate claim, round bounds) are left to the replay —
  // except the duplicate-claim one, because the Peerset built here doubles
  // as the memo-probe/candidate set and must match the replay's.
  engine.gather_sig(sink, offer.initiator.key,
                    shuffle_nonce_payload(offer.initiator_round),
                    BytesView(offer.initiator_round_sig.data(),
                              offer.initiator_round_sig.size()));
  const Peerset claimed(offer.claimed_peerset);
  if (claimed.size() != offer.claimed_peerset.size()) return;
  if (offer.anchor) {
    engine.gather_history_anchored(sink, *offer.anchor, offer.history_suffix,
                                   offer.initiator);
  } else {
    engine.gather_history(sink, offer.history_suffix, offer.initiator, claimed);
  }
  // Draw checks are only plannable for the paper's VRF backend: other
  // backends derive their own alphas inside their verify() replay.
  const auto& caps = sampler_backend(state.config().sampler).capabilities();
  if (caps.kind != SamplerKind::kVrf) return;
  const Bytes partner_nonce = round_nonce(offer.initiator_round);
  engine.gather_sample(sink, offer.initiator.key, claimed, 1, kPartnerDomain,
                       BytesView(partner_nonce.data(), partner_nonce.size()),
                       offer.partner_proofs);
  const Peerset candidates = claimed.minus({state.self()});
  const Bytes sample_nonce = round_nonce(offer.responder_round);
  engine.gather_sample(sink, offer.initiator.key, candidates,
                       state.config().shuffle_length - 1, kSampleDomain,
                       BytesView(sample_nonce.data(), sample_nonce.size()),
                       offer.sample_proofs);
}

HistoryEntry apply_update(NodeState& state, const PeerId& counterpart,
                          Round counterpart_round, Bytes counterpart_sig,
                          bool initiated, const std::vector<PeerId>& removed,
                          const std::vector<PeerId>& received) {
  Peerset next = state.peerset().minus(removed);

  HistoryEntry e;
  e.kind = EntryKind::kShuffle;
  e.self_round = state.round();
  e.counterpart = counterpart;
  e.nonce = counterpart_round;
  e.signature = std::move(counterpart_sig);
  e.initiated = initiated;

  // `out` records what was actually removed (always = removed for honest
  // callers since samples are subsets of the peerset).
  for (const auto& p : removed) {
    if (state.peerset().contains(p)) e.out.push_back(p);
  }

  // Add received peers (in draw order) up to capacity, skipping self/dupes.
  for (const auto& p : received) {
    if (p == state.self()) continue;
    if (next.size() >= state.config().max_peerset) break;
    if (next.insert(p)) e.in.push_back(p);
  }

  // Refill from the outgoing set (sorted => deterministic and verifiable).
  if (next.size() < state.config().max_peerset) {
    std::vector<PeerId> refill_candidates = e.out;
    std::sort(refill_candidates.begin(), refill_candidates.end());
    for (const auto& p : refill_candidates) {
      if (next.size() >= state.config().max_peerset) break;
      if (next.insert(p)) e.fill.push_back(p);
    }
  }

  HistoryEntry committed = e;
  state.commit_shuffle(std::move(e), std::move(next));
  return committed;
}

ShuffleResponse make_response_and_commit(NodeState& state, const ShuffleOffer& offer) {
  ShuffleResponse resp;
  resp.responder = state.self();
  resp.responder_round = state.round();
  resp.responder_round_sig = state.sign_current_round();
  resp.claimed_peerset = state.peerset().sorted();
  HistoryProof proof = make_history_proof(state);
  resp.history_suffix = std::move(proof.suffix);
  resp.anchor = std::move(proof.anchor);

  // B: L peers drawn from N_j - {v_i}, seeded by the initiator's round.
  const Peerset candidates = state.peerset().minus({offer.initiator});
  const Draw draw = sampler_backend(state.config().sampler)
                        .draw(state.signer(), candidates, state.config().shuffle_length,
                              kSampleDomain, round_nonce(offer.initiator_round));
  resp.sample = draw.sample;
  resp.sample_proofs = draw.proofs;

  // Commit the responder-side update: remove B, add A ∪ {v_i}.
  std::vector<PeerId> received = offer.sample;
  received.push_back(offer.initiator);
  apply_update(state, offer.initiator, offer.initiator_round, offer.initiator_round_sig,
               /*initiated=*/false, resp.sample, received);
  return resp;
}

namespace {

template <typename Verifier>
VerifyResult verify_response_static_impl(const ShuffleResponse& response,
                                         const ShuffleOffer& sent_offer,
                                         const PeerId& initiator,
                                         std::size_t shuffle_length, const Verifier& v) {
  if (response.responder_round != sent_offer.responder_round) {
    return VerifyResult::fail(VerifyError::kResponderRoundChanged);
  }
  if (response.responder == initiator) {
    return VerifyResult::fail(VerifyError::kSelfShuffle);
  }
  if (!v.provider().verify(response.responder.key,
                           shuffle_nonce_payload(response.responder_round),
                           response.responder_round_sig)) {
    return VerifyResult::fail(VerifyError::kInvalidResponderRoundSignature);
  }
  const Peerset claimed(response.claimed_peerset);
  if (claimed.size() != response.claimed_peerset.size()) {
    return VerifyResult::fail(VerifyError::kDuplicatePeersetClaim);
  }
  if (const auto h = response.anchor
                         ? v.anchored(*response.anchor, response.history_suffix,
                                      response.responder, claimed)
                         : v.history(response.history_suffix, response.responder, claimed);
      !h) {
    return h;
  }
  if (!response.history_suffix.empty() &&
      response.history_suffix.back().self_round >= response.responder_round) {
    return VerifyResult::fail(VerifyError::kHistoryBeyondResponderRound);
  }
  if (response.anchor && response.anchor->last_round >= response.responder_round) {
    return VerifyResult::fail(VerifyError::kHistoryBeyondResponderRound);
  }
  const Peerset candidates = claimed.minus({initiator});
  if (const auto s = v.sample(response.responder.key, candidates, shuffle_length,
                              kSampleDomain, round_nonce(sent_offer.initiator_round),
                              response.sample_proofs, response.sample);
      !s) {
    return VerifyResult::fail(VerifyError::kResponseSampleMismatch, s.reason);
  }
  return VerifyResult::pass();
}

}  // namespace

VerifyResult verify_response_static(const ShuffleResponse& response,
                                    const ShuffleOffer& sent_offer,
                                    const PeerId& initiator, const NodeConfig& protocol,
                                    const crypto::CryptoProvider& provider) {
  return verify_response_static_impl(
      response, sent_offer, initiator, protocol.shuffle_length,
      ProviderVerifier{provider, sampler_backend(protocol.sampler)});
}

VerifyResult verify_response_static(const ShuffleResponse& response,
                                    const ShuffleOffer& sent_offer,
                                    const PeerId& initiator, const NodeConfig& protocol,
                                    VerificationEngine& engine) {
  return verify_response_static_impl(
      response, sent_offer, initiator, protocol.shuffle_length,
      EngineVerifier{engine, sampler_backend(protocol.sampler)});
}

VerifyResult verify_response(const ShuffleResponse& response, const NodeState& state,
                             const ShuffleOffer& sent_offer,
                             const crypto::CryptoProvider& provider) {
  return verify_response_static(response, sent_offer, state.self(), state.config(),
                                provider);
}

VerifyResult verify_response(const ShuffleResponse& response, const NodeState& state,
                             const ShuffleOffer& sent_offer, VerificationEngine& engine) {
  return verify_response_static(response, sent_offer, state.self(), state.config(),
                                engine);
}

Bytes offer_body_payload(BytesView offer_core, const PeerId& responder) {
  const auto digest = crypto::Sha256::hash(offer_core);
  wire::Writer w;
  w.str("an.offer");
  w.str(responder.addr);
  w.raw(BytesView(responder.key.data(), responder.key.size()));
  w.raw(BytesView(digest.data(), digest.size()));
  return std::move(w).take();
}

Bytes response_body_payload(BytesView offer_wire, BytesView response_core) {
  const auto offer_digest = crypto::Sha256::hash(offer_wire);
  const auto resp_digest = crypto::Sha256::hash(response_core);
  wire::Writer w;
  w.str("an.response");
  w.raw(BytesView(offer_digest.data(), offer_digest.size()));
  w.raw(BytesView(resp_digest.data(), resp_digest.size()));
  return std::move(w).take();
}

VerifyError check_offer_body_sig(const ShuffleOffer& offer, const PeerId& responder,
                                 const crypto::CryptoProvider& provider) {
  if (offer.body_sig.empty()) return VerifyError::kMissingBodySignature;
  if (!provider.verify(offer.initiator.key,
                       offer_body_payload(offer.encode_core(), responder),
                       offer.body_sig)) {
    return VerifyError::kInvalidBodySignature;
  }
  return VerifyError::kNone;
}

VerifyError check_response_body_sig(const ShuffleResponse& response,
                                    BytesView offer_wire,
                                    const crypto::CryptoProvider& provider) {
  if (response.body_sig.empty()) return VerifyError::kMissingBodySignature;
  if (!provider.verify(response.responder.key,
                       response_body_payload(offer_wire, response.encode_core()),
                       response.body_sig)) {
    return VerifyError::kInvalidBodySignature;
  }
  return VerifyError::kNone;
}

void apply_offer_outcome(NodeState& state, const ShuffleOffer& sent_offer,
                         const ShuffleResponse& response) {
  // Initiator removes A ∪ {v_j} and adds B.
  std::vector<PeerId> removed = sent_offer.sample;
  removed.push_back(response.responder);
  apply_update(state, response.responder, response.responder_round,
               response.responder_round_sig, /*initiated=*/true, removed,
               response.sample);
}

}  // namespace accountnet::core
