#include "accountnet/core/accusation.hpp"

#include <optional>

#include "accountnet/core/checkpoint.hpp"
#include "accountnet/core/history.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

namespace {

constexpr std::size_t kMaxItems = 4;

void encode_item(wire::Writer& w, const ExchangeItem& item) {
  w.u8(item.shape);
  w.bytes(item.offer);
  w.bytes(item.response);
  encode_peer(w, item.counterpart);
}

ExchangeItem decode_item(wire::Reader& r) {
  ExchangeItem item;
  item.shape = r.u8();
  if (item.shape < 1 || item.shape > 3) {
    throw wire::DecodeError("bad exchange item shape");
  }
  item.offer = r.bytes();
  item.response = r.bytes();
  item.counterpart = decode_peer(r);
  return item;
}

/// Bytes -> fixed digest; nullopt when the length is wrong (fail closed).
std::optional<DataDigest> as_digest(const Bytes& b) {
  DataDigest d{};
  if (b.size() != d.size()) return std::nullopt;
  std::copy(b.begin(), b.end(), d.begin());
  return d;
}

using VR = VerifyResult;
using VE = VerifyError;

/// Attributes one exchange item to `accused` and returns the history suffix
/// the accused presented in it. Fails with kAccusationEvidenceInvalid unless
/// the accused's body signature covers the item.
VR attribute_item(const ExchangeItem& item, const PeerId& accused,
                  const crypto::CryptoProvider& provider,
                  std::vector<HistoryEntry>& suffix_out) {
  try {
    if (item.shape == 1) {
      const ShuffleOffer offer = ShuffleOffer::decode(item.offer);
      if (offer.initiator != accused) {
        return VR::fail(VE::kAccusationEvidenceInvalid, "offer not from accused");
      }
      if (check_offer_body_sig(offer, item.counterpart, provider) != VE::kNone) {
        return VR::fail(VE::kAccusationEvidenceInvalid, "offer body signature");
      }
      suffix_out = offer.history_suffix;
      return VR::pass();
    }
    const ShuffleResponse response = ShuffleResponse::decode(item.response);
    if (response.responder != accused) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "response not from accused");
    }
    if (check_response_body_sig(response, item.offer, provider) != VE::kNone) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "response body signature");
    }
    suffix_out = response.history_suffix;
    return VR::pass();
  } catch (const wire::DecodeError&) {
    return VR::fail(VE::kAccusationMalformed, "exchange item undecodable");
  }
}

VR verify_invalid_offer(const Accusation& acc, const crypto::CryptoProvider& provider,
                        const NodeConfig& protocol) {
  if (acc.items.size() != 1 || acc.items[0].shape != 1) {
    return VR::fail(VE::kAccusationMalformed, "expects one offer item");
  }
  try {
    const ShuffleOffer offer = ShuffleOffer::decode(acc.items[0].offer);
    if (offer.initiator != acc.accused) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "offer not from accused");
    }
    if (check_offer_body_sig(offer, acc.items[0].counterpart, provider) != VE::kNone) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "offer body signature");
    }
    // An honest initiator's offer always passes the static checks; a signed
    // offer that fails them is transferable proof.
    if (verify_offer_static(offer, acc.items[0].counterpart, protocol, provider)) {
      return VR::fail(VE::kAccusationNotProven, "offer verifies");
    }
    return VR::pass();
  } catch (const wire::DecodeError&) {
    return VR::fail(VE::kAccusationMalformed, "offer undecodable");
  }
}

VR verify_invalid_response(const Accusation& acc, const crypto::CryptoProvider& provider,
                           const NodeConfig& protocol) {
  if (acc.items.size() != 1 || acc.items[0].shape != 2) {
    return VR::fail(VE::kAccusationMalformed, "expects one offer+response item");
  }
  try {
    const ShuffleOffer offer = ShuffleOffer::decode(acc.items[0].offer);
    const ShuffleResponse response = ShuffleResponse::decode(acc.items[0].response);
    if (response.responder != acc.accused) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "response not from accused");
    }
    // The response signature binds the offer bytes, so the offer contents
    // (initiator round, responder round echo) are fixed by the accused
    // itself — the reporter cannot doctor the context to fake a failure.
    if (check_response_body_sig(response, acc.items[0].offer, provider) != VE::kNone) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "response body signature");
    }
    if (verify_response_static(response, offer, offer.initiator, protocol, provider)) {
      return VR::fail(VE::kAccusationNotProven, "response verifies");
    }
    return VR::pass();
  } catch (const wire::DecodeError&) {
    return VR::fail(VE::kAccusationMalformed, "exchange undecodable");
  }
}

VR verify_history_equivocation(const Accusation& acc,
                               const crypto::CryptoProvider& provider) {
  if (acc.items.size() != 2) {
    return VR::fail(VE::kAccusationMalformed, "expects two exchange items");
  }
  Bytes encoded[2];
  for (int i = 0; i < 2; ++i) {
    std::vector<HistoryEntry> suffix;
    if (const auto a = attribute_item(acc.items[static_cast<std::size_t>(i)],
                                      acc.accused, provider, suffix);
        !a) {
      return a;
    }
    const HistoryEntry* at_round = nullptr;
    for (const auto& e : suffix) {
      if (e.self_round == acc.round) at_round = &e;
    }
    if (!at_round) {
      return VR::fail(VE::kAccusationNotProven, "no entry at the claimed round");
    }
    wire::Writer w;
    encode_entry(w, *at_round);
    encoded[i] = std::move(w).take();
  }
  // Honest histories are append-only with strictly ascending rounds, so a
  // node can only ever have ONE entry per round; two signed messages showing
  // different round-`round` entries prove a forked history.
  if (encoded[0] == encoded[1]) {
    return VR::fail(VE::kAccusationNotProven, "entries agree");
  }
  return VR::pass();
}

VR verify_testimony_equivocation(const Accusation& acc,
                                 const crypto::CryptoProvider& provider) {
  const auto da = as_digest(acc.digest_a);
  const auto db = as_digest(acc.digest_b);
  if (!da || !db) return VR::fail(VE::kAccusationMalformed, "bad digest length");
  if (*da == *db) return VR::fail(VE::kAccusationNotProven, "digests agree");
  Testimony a{acc.accused, acc.channel_id, acc.sequence, *da, acc.sig_a};
  Testimony b{acc.accused, acc.channel_id, acc.sequence, *db, acc.sig_b};
  if (!verify_testimony(a, provider) || !verify_testimony(b, provider)) {
    return VR::fail(VE::kAccusationEvidenceInvalid, "testimony signature");
  }
  return VR::pass();
}

VR check_duty(const Accusation& acc, const crypto::CryptoProvider& provider) {
  if (!provider.verify(acc.accused.key,
                       wduty_payload(acc.channel_id, acc.producer, acc.consumer_addr,
                                     acc.accused.addr),
                       acc.duty_sig)) {
    return VR::fail(VE::kAccusationEvidenceInvalid, "witness duty signature");
  }
  return VR::pass();
}

VR verify_relay_tamper(const Accusation& acc, const crypto::CryptoProvider& provider) {
  const auto da = as_digest(acc.digest_a);
  if (!da) return VR::fail(VE::kAccusationMalformed, "bad digest length");
  if (const auto d = check_duty(acc, provider); !d) return d;
  if (!provider.verify(acc.accused.key,
                       forward_payload(acc.channel_id, acc.sequence, *da,
                                       acc.header_sig),
                       acc.sig_a)) {
    return VR::fail(VE::kAccusationEvidenceInvalid, "forward signature");
  }
  // The witness endorsed (digest_a, header_sig) as a faithful relay; if the
  // producer never signed digest_a under that header, the witness invented
  // the payload. An honest witness checks this exact binding before
  // forwarding, so it can never sign a mismatched pair.
  if (provider.verify(acc.producer.key,
                      relay_header_payload(acc.channel_id, acc.sequence, *da),
                      acc.header_sig)) {
    return VR::fail(VE::kAccusationNotProven, "header matches the forward");
  }
  return VR::pass();
}

VR verify_testimony_mismatch(const Accusation& acc,
                             const crypto::CryptoProvider& provider) {
  const auto da = as_digest(acc.digest_a);
  const auto db = as_digest(acc.digest_b);
  if (!da || !db) return VR::fail(VE::kAccusationMalformed, "bad digest length");
  if (*da == *db) return VR::fail(VE::kAccusationNotProven, "digests agree");
  if (!provider.verify(acc.accused.key,
                       forward_payload(acc.channel_id, acc.sequence, *da,
                                       acc.header_sig),
                       acc.sig_a)) {
    return VR::fail(VE::kAccusationEvidenceInvalid, "forward signature");
  }
  Testimony t{acc.accused, acc.channel_id, acc.sequence, *db, acc.sig_b};
  if (!verify_testimony(t, provider)) {
    return VR::fail(VE::kAccusationEvidenceInvalid, "testimony signature");
  }
  // The witness swore to two different payloads for the same (channel, seq):
  // the forward it sent the consumer and the testimony it keeps for
  // resolution. Honest witnesses derive both from the same recorded payload
  // (and never re-record a sequence), so the pair is self-contradiction.
  return VR::pass();
}

VR verify_relay_omission(const Accusation& acc, const crypto::CryptoProvider& provider) {
  const auto da = as_digest(acc.digest_a);
  if (!da) return VR::fail(VE::kAccusationMalformed, "bad digest length");
  if (const auto d = check_duty(acc, provider); !d) return d;
  // The producer's header proves the message existed on the accused's duty;
  // whether the accused stayed silent about it is decided by the live
  // challenge, not here.
  if (!provider.verify(acc.producer.key,
                       relay_header_payload(acc.channel_id, acc.sequence, *da),
                       acc.header_sig)) {
    return VR::fail(VE::kAccusationEvidenceInvalid, "relay header signature");
  }
  return VR::pass();
}

VR verify_segment_mismatch(const Accusation& acc, const crypto::CryptoProvider& provider) {
  if (acc.items.size() != 1 || acc.items[0].shape != 3) {
    return VR::fail(VE::kAccusationMalformed, "expects one checkpoint+segment item");
  }
  try {
    const Checkpoint ck = Checkpoint::decode(acc.items[0].offer);
    const SegmentData seg = SegmentData::decode(acc.items[0].response);
    if (!(seg.server == acc.accused)) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "segment not from accused");
    }
    // verify_checkpoint also pins ck.owner to the accused, so both pieces of
    // evidence carry the accused's own signature over their exact bytes.
    if (!verify_checkpoint(ck, acc.accused, provider)) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "checkpoint signature");
    }
    if (!provider.verify(seg.server.key, seg.signing_payload(), seg.server_sig)) {
      return VR::fail(VE::kAccusationEvidenceInvalid, "segment signature");
    }
    // An honest server's slices always fold into its own sealed digest, so a
    // decidable contradiction between the two signed claims is transferable
    // proof; everything undecidable offline stays unproven.
    if (!segment_contradicts_checkpoint(seg, ck)) {
      return VR::fail(VE::kAccusationNotProven, "segment consistent with checkpoint");
    }
    return VR::pass();
  } catch (const wire::DecodeError&) {
    return VR::fail(VE::kAccusationMalformed, "checkpoint or segment undecodable");
  }
}

}  // namespace

const char* accusation_kind_tag(AccusationKind kind) {
  switch (kind) {
    case AccusationKind::kInvalidOffer: return "invalid_offer";
    case AccusationKind::kInvalidResponse: return "invalid_response";
    case AccusationKind::kHistoryEquivocation: return "history_equivocation";
    case AccusationKind::kTestimonyEquivocation: return "testimony_equivocation";
    case AccusationKind::kRelayTamper: return "relay_tamper";
    case AccusationKind::kTestimonyMismatch: return "testimony_mismatch";
    case AccusationKind::kRelayOmission: return "relay_omission";
    case AccusationKind::kSegmentMismatch: return "segment_mismatch";
  }
  return "unknown";
}

Bytes Accusation::encode_core() const {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  encode_peer(w, accused);
  encode_peer(w, accuser);
  w.u64(channel_id);
  w.u64(sequence);
  w.u64(round);
  w.varint(items.size());
  for (const auto& item : items) encode_item(w, item);
  encode_peer(w, producer);
  w.str(consumer_addr);
  w.bytes(duty_sig);
  w.bytes(header_sig);
  w.bytes(digest_a);
  w.bytes(digest_b);
  w.bytes(sig_a);
  w.bytes(sig_b);
  return std::move(w).take();
}

Bytes Accusation::encode() const {
  wire::Writer w;
  w.raw(encode_core());
  w.bytes(accuser_sig);
  return std::move(w).take();
}

Accusation Accusation::decode(BytesView data) {
  wire::Reader r(data);
  Accusation acc;
  const auto kind_raw = r.u8();
  if (kind_raw < 1 || kind_raw > 8) throw wire::DecodeError("bad accusation kind");
  acc.kind = static_cast<AccusationKind>(kind_raw);
  acc.accused = decode_peer(r);
  acc.accuser = decode_peer(r);
  acc.channel_id = r.u64();
  acc.sequence = r.u64();
  acc.round = r.u64();
  const auto n = r.varint();
  if (n > kMaxItems) throw wire::DecodeError("too many exchange items");
  for (std::uint64_t i = 0; i < n; ++i) acc.items.push_back(decode_item(r));
  acc.producer = decode_peer(r);
  acc.consumer_addr = r.str();
  acc.duty_sig = r.bytes();
  acc.header_sig = r.bytes();
  acc.digest_a = r.bytes();
  acc.digest_b = r.bytes();
  acc.sig_a = r.bytes();
  acc.sig_b = r.bytes();
  acc.accuser_sig = r.bytes();
  r.expect_done();
  return acc;
}

Bytes Accusation::signing_payload() const {
  const auto digest = crypto::Sha256::hash(encode_core());
  wire::Writer w;
  w.str("an.accuse");
  w.raw(BytesView(digest.data(), digest.size()));
  return std::move(w).take();
}

DataDigest Accusation::digest() const { return crypto::Sha256::hash(encode()); }

Bytes wduty_payload(std::uint64_t channel_id, const PeerId& producer,
                    const std::string& consumer_addr, const std::string& witness_addr) {
  wire::Writer w;
  w.str("an.wduty");
  w.u64(channel_id);
  encode_peer(w, producer);
  w.str(consumer_addr);
  w.str(witness_addr);
  return std::move(w).take();
}

Bytes relay_header_payload(std::uint64_t channel_id, std::uint64_t sequence,
                           const DataDigest& digest) {
  wire::Writer w;
  w.str("an.relay");
  w.u64(channel_id);
  w.u64(sequence);
  w.raw(BytesView(digest.data(), digest.size()));
  return std::move(w).take();
}

Bytes forward_payload(std::uint64_t channel_id, std::uint64_t sequence,
                      const DataDigest& digest, BytesView header_sig) {
  const auto header_digest = crypto::Sha256::hash(header_sig);
  wire::Writer w;
  w.str("an.forward");
  w.u64(channel_id);
  w.u64(sequence);
  w.raw(BytesView(digest.data(), digest.size()));
  w.raw(BytesView(header_digest.data(), header_digest.size()));
  return std::move(w).take();
}

VerifyResult verify_accusation(const Accusation& acc,
                               const crypto::CryptoProvider& provider,
                               const NodeConfig& protocol) {
  // Attribute the accusation itself first: any bit flip anywhere in the
  // wire form breaks this signature, so corrupted accusations fail closed.
  if (!provider.verify(acc.accuser.key, acc.signing_payload(), acc.accuser_sig)) {
    return VR::fail(VE::kAccusationBadSignature);
  }
  if (acc.accused == acc.accuser || acc.accused.addr == acc.accuser.addr) {
    return VR::fail(VE::kAccusationSelfAccusation);
  }
  switch (acc.kind) {
    case AccusationKind::kInvalidOffer:
      return verify_invalid_offer(acc, provider, protocol);
    case AccusationKind::kInvalidResponse:
      return verify_invalid_response(acc, provider, protocol);
    case AccusationKind::kHistoryEquivocation:
      return verify_history_equivocation(acc, provider);
    case AccusationKind::kTestimonyEquivocation:
      return verify_testimony_equivocation(acc, provider);
    case AccusationKind::kRelayTamper: return verify_relay_tamper(acc, provider);
    case AccusationKind::kTestimonyMismatch:
      return verify_testimony_mismatch(acc, provider);
    case AccusationKind::kRelayOmission: return verify_relay_omission(acc, provider);
    case AccusationKind::kSegmentMismatch:
      return verify_segment_mismatch(acc, provider);
  }
  return VR::fail(VE::kAccusationMalformed, "unknown kind");
}

}  // namespace accountnet::core
