#include "accountnet/core/verification_engine.hpp"

#include <algorithm>

#include "accountnet/core/sampler.hpp"
#include "accountnet/core/select.hpp"
#include "accountnet/crypto/sha256.hpp"
#include "accountnet/util/ensure.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

namespace {

void update_u64le(crypto::Sha256& h, std::uint64_t v) {
  std::array<std::uint8_t, 8> b;
  for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  h.update(BytesView(b.data(), b.size()));
}

std::string digest_to_key(const crypto::Sha256::Digest& d) {
  return std::string(reinterpret_cast<const char*>(d.data()), d.size());
}

crypto::VerifyVerdict run_job(const crypto::CryptoProvider& provider,
                              const crypto::VerifyJob& job) {
  crypto::VerifyVerdict v;
  if (job.kind == crypto::VerifyJob::Kind::kSignature) {
    v.ok = provider.verify(job.pk, job.msg, job.sig);
  } else {
    const auto beta = provider.vrf_verify(job.pk, job.msg, job.sig);
    v.ok = beta.has_value();
    if (beta) v.vrf_output = *beta;
  }
  return v;
}

std::string memo_key(const PeerId& node) {
  std::string key = node.addr;
  key.push_back('\0');
  key.append(reinterpret_cast<const char*>(node.key.data()), node.key.size());
  return key;
}

std::string pk_key(const crypto::PublicKeyBytes& pk) {
  return std::string(reinterpret_cast<const char*>(pk.data()), pk.size());
}

}  // namespace

VerificationEngine::VerificationEngine(const crypto::CryptoProvider& inner)
    : VerificationEngine(inner, Config(), nullptr) {}

VerificationEngine::VerificationEngine(const crypto::CryptoProvider& inner,
                                       Config config, obs::MetricsRegistry* registry)
    : inner_(inner),
      config_(config),
      registry_(registry),
      sig_cache_(config.sig_cache_capacity),
      vrf_cache_(config.vrf_cache_capacity),
      memos_(config.history_memo_capacity),
      generations_(config.sig_cache_capacity) {
  if (registry_ != nullptr) {
    ids_.hit = registry_->counter("verify.cache.hit");
    ids_.miss = registry_->counter("verify.cache.miss");
    ids_.evict = registry_->counter("verify.cache.evict");
    ids_.invalidations = registry_->counter("verify.cache.invalidations");
    ids_.history_exact = registry_->counter("verify.history.exact");
    ids_.history_extended = registry_->counter("verify.history.extended");
    ids_.history_full = registry_->counter("verify.history.full");
    ids_.batch_calls = registry_->counter("verify.batch.calls");
    ids_.batch_jobs = registry_->counter("verify.batch.jobs");
    ids_.batch_resolve = registry_->timer("verify.batch.resolve");
    ids_.occ_sig = registry_->gauge("verify.cache.sig.occupancy");
    ids_.occ_vrf = registry_->gauge("verify.cache.vrf.occupancy");
    ids_.occ_memo = registry_->gauge("verify.cache.history.occupancy");
  }
}

std::uint64_t VerificationEngine::generation(const crypto::PublicKeyBytes& pk) const {
  const std::uint64_t* g = generations_.find(pk_key(pk));
  return g == nullptr ? 0 : *g;
}

std::string VerificationEngine::sig_key(const crypto::PublicKeyBytes& pk, BytesView msg,
                                        BytesView sig) const {
  crypto::Sha256 h;
  const std::uint8_t tag = 0x01;
  h.update(BytesView(&tag, 1));
  update_u64le(h, generation(pk));
  h.update(BytesView(pk.data(), pk.size()));
  update_u64le(h, msg.size());
  h.update(msg);
  h.update(sig);
  return digest_to_key(h.finish());
}

std::string VerificationEngine::vrf_key(const crypto::PublicKeyBytes& pk, BytesView alpha,
                                        BytesView proof) const {
  crypto::Sha256 h;
  const std::uint8_t tag = 0x02;
  h.update(BytesView(&tag, 1));
  update_u64le(h, generation(pk));
  h.update(BytesView(pk.data(), pk.size()));
  update_u64le(h, alpha.size());
  h.update(alpha);
  h.update(proof);
  return digest_to_key(h.finish());
}

void VerificationEngine::sync_evictions() const {
  const std::uint64_t total =
      sig_cache_.evictions() + vrf_cache_.evictions() + memos_.evictions();
  if (total > reported_evictions_) {
    const std::uint64_t delta = total - reported_evictions_;
    stats_.evictions += delta;
    if (registry_ != nullptr) registry_->add(ids_.evict, delta);
    reported_evictions_ = total;
  }
}

void VerificationEngine::update_gauges() const {
  if (registry_ == nullptr) return;
  registry_->set(ids_.occ_sig, static_cast<double>(sig_cache_.size()));
  registry_->set(ids_.occ_vrf, static_cast<double>(vrf_cache_.size()));
  registry_->set(ids_.occ_memo, static_cast<double>(memos_.size()));
}

std::unique_ptr<crypto::Signer> VerificationEngine::make_signer(BytesView seed32) const {
  return inner_.make_signer(seed32);
}

const char* VerificationEngine::name() const { return inner_.name(); }

bool VerificationEngine::verify(const crypto::PublicKeyBytes& pk, BytesView msg,
                                BytesView sig) const {
  if (!config_.enable_cache) return inner_.verify(pk, msg, sig);
  const std::string key = sig_key(pk, msg, sig);
  if (const bool* hit = sig_cache_.find(key)) {
    ++stats_.sig_hits;
    if (registry_ != nullptr) registry_->add(ids_.hit);
    return *hit;
  }
  ++stats_.sig_misses;
  if (registry_ != nullptr) registry_->add(ids_.miss);
  const bool ok = inner_.verify(pk, msg, sig);
  sig_cache_.put(key, ok);
  sync_evictions();
  update_gauges();
  return ok;
}

std::optional<std::array<std::uint8_t, 64>> VerificationEngine::vrf_verify(
    const crypto::PublicKeyBytes& pk, BytesView alpha, BytesView proof) const {
  if (!config_.enable_cache) return inner_.vrf_verify(pk, alpha, proof);
  const std::string key = vrf_key(pk, alpha, proof);
  if (const VrfVerdict* hit = vrf_cache_.find(key)) {
    ++stats_.vrf_hits;
    if (registry_ != nullptr) registry_->add(ids_.hit);
    if (!hit->ok) return std::nullopt;
    return hit->beta;
  }
  ++stats_.vrf_misses;
  if (registry_ != nullptr) registry_->add(ids_.miss);
  const auto beta = inner_.vrf_verify(pk, alpha, proof);
  VrfVerdict v;
  v.ok = beta.has_value();
  if (beta) v.beta = *beta;
  vrf_cache_.put(key, v);
  sync_evictions();
  update_gauges();
  return beta;
}

void VerificationEngine::resolve_misses(std::span<const crypto::VerifyJob> jobs,
                                        const std::vector<std::size_t>& miss,
                                        std::span<crypto::VerifyVerdict> verdicts) const {
  if (miss.empty()) return;
  if (config_.enable_batch && miss.size() >= config_.batch_min) {
    std::vector<crypto::VerifyJob> pending;
    pending.reserve(miss.size());
    for (const std::size_t idx : miss) pending.push_back(jobs[idx]);
    std::vector<crypto::VerifyVerdict> resolved(pending.size());
    ++stats_.batch_calls;
    stats_.batch_jobs += pending.size();
    if (registry_ != nullptr) {
      registry_->add(ids_.batch_calls);
      registry_->add(ids_.batch_jobs, pending.size());
    }
    {
      obs::ScopedTimer t(registry_, ids_.batch_resolve);
      inner_.verify_batch(pending, resolved);
    }
    for (std::size_t i = 0; i < miss.size(); ++i) verdicts[miss[i]] = resolved[i];
  } else {
    for (const std::size_t idx : miss) verdicts[idx] = run_job(inner_, jobs[idx]);
  }
}

void VerificationEngine::verify_batch(std::span<const crypto::VerifyJob> jobs,
                                      std::span<crypto::VerifyVerdict> verdicts) const {
  AN_ENSURE_MSG(jobs.size() == verdicts.size(), "verify_batch verdict slot mismatch");
  std::vector<std::size_t> miss;
  std::vector<std::string> keys;
  if (!config_.enable_cache) {
    miss.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) miss[i] = i;
  } else {
    keys.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto& job = jobs[i];
      const bool is_sig = job.kind == crypto::VerifyJob::Kind::kSignature;
      keys[i] = is_sig ? sig_key(job.pk, job.msg, job.sig)
                       : vrf_key(job.pk, job.msg, job.sig);
      bool hit = false;
      if (is_sig) {
        if (const bool* cached = sig_cache_.find(keys[i])) {
          verdicts[i].ok = *cached;
          verdicts[i].vrf_output = {};
          hit = true;
        }
      } else if (const VrfVerdict* cached = vrf_cache_.find(keys[i])) {
        verdicts[i].ok = cached->ok;
        verdicts[i].vrf_output = cached->ok ? cached->beta
                                            : std::array<std::uint8_t, 64>{};
        hit = true;
      }
      if (hit) {
        if (is_sig) ++stats_.sig_hits; else ++stats_.vrf_hits;
        if (registry_ != nullptr) registry_->add(ids_.hit);
      } else {
        if (is_sig) ++stats_.sig_misses; else ++stats_.vrf_misses;
        if (registry_ != nullptr) registry_->add(ids_.miss);
        miss.push_back(i);
      }
    }
  }
  resolve_misses(jobs, miss, verdicts);
  if (config_.enable_cache) {
    for (const std::size_t idx : miss) {
      if (jobs[idx].kind == crypto::VerifyJob::Kind::kSignature) {
        sig_cache_.put(keys[idx], verdicts[idx].ok);
      } else {
        VrfVerdict v;
        v.ok = verdicts[idx].ok;
        v.beta = verdicts[idx].vrf_output;
        vrf_cache_.put(keys[idx], v);
      }
    }
    sync_evictions();
    update_gauges();
  }
}

VerifyResult VerificationEngine::verify_entries(const std::vector<HistoryEntry>& suffix,
                                                std::size_t begin,
                                                std::optional<Round> prev_round,
                                                const PeerId& owner, const Peerset& base,
                                                const Peerset& claimed) {
  const HistoryCheckPlan plan = plan_history_checks(suffix, begin, prev_round, owner);
  // Resolve every deferred signature through the cache/batch path, then
  // report the first failing check in sequential (seq) order — the same
  // verdict verify_history_suffix computes, at the cost of possibly
  // verifying a few signatures past the failure point.
  std::vector<crypto::VerifyJob> jobs;
  jobs.reserve(plan.sig_checks.size());
  for (const auto& c : plan.sig_checks) {
    crypto::VerifyJob j;
    j.kind = crypto::VerifyJob::Kind::kSignature;
    j.pk = c.pk;
    j.msg = BytesView(c.payload.data(), c.payload.size());
    j.sig = BytesView(c.signature->data(), c.signature->size());
    jobs.push_back(j);
  }
  std::vector<crypto::VerifyVerdict> verdicts(jobs.size());
  verify_batch(jobs, verdicts);
  for (std::size_t i = 0; i < plan.sig_checks.size(); ++i) {
    const auto& c = plan.sig_checks[i];
    if (plan.structural_failure && plan.structural_failure->first < c.seq) break;
    if (!verdicts[i].ok) return VerifyResult::fail(c.on_fail);
  }
  if (plan.structural_failure) {
    return VerifyResult::fail(plan.structural_failure->second);
  }
  Peerset reconstructed = base;
  for (std::size_t i = begin; i < suffix.size(); ++i) {
    const auto& e = suffix[i];
    for (const auto& p : e.out) reconstructed.erase(p);
    reconstructed.insert_all(e.in);
    reconstructed.insert_all(e.fill);
  }
  if (!(reconstructed == claimed)) {
    return VerifyResult::fail(VerifyError::kReconstructionMismatch);
  }
  return VerifyResult::pass();
}

VerifyResult VerificationEngine::verify_history(const std::vector<HistoryEntry>& suffix,
                                                const PeerId& owner,
                                                const Peerset& claimed) {
  if (!config_.enable_cache) {
    ++stats_.history_full;
    if (registry_ != nullptr) registry_->add(ids_.history_full);
    return verify_entries(suffix, 0, std::nullopt, owner, Peerset{}, claimed);
  }

  const std::size_t n = suffix.size();
  // Rolling chain digests: chain[k] commits to suffix[0..k). An exact or
  // prefix match against the memo proves the previously verified bytes are
  // unchanged, so their per-entry checks need not be repeated.
  std::vector<std::array<std::uint8_t, 32>> chain(n + 1);
  chain[0] = {};
  for (std::size_t i = 0; i < n; ++i) {
    chain[i + 1] = chain_step(chain[i], entry_digest(suffix[i]));
  }

  const std::string key = memo_key(owner);
  const PartnerMemo* memo = memos_.find(key);

  if (memo != nullptr && memo->entry_count == n && memo->chain == chain[n] &&
      memo->peerset == claimed) {
    ++stats_.history_exact;
    if (registry_ != nullptr) {
      registry_->add(ids_.history_exact);
      registry_->add(ids_.hit);
    }
    return VerifyResult::pass();
  }

  if (memo != nullptr && memo->entry_count > 0 && memo->entry_count < n &&
      memo->chain == chain[memo->entry_count]) {
    // The verified suffix is a byte-identical prefix: only the new entries
    // need checking, replaying deltas from the previously reconstructed
    // peerset. A failure here equals the full-verify verdict because the
    // prefix re-checks are deterministic repeats of checks that passed.
    ++stats_.history_extended;
    if (registry_ != nullptr) {
      registry_->add(ids_.history_extended);
      registry_->add(ids_.hit);
    }
    const std::size_t begin = memo->entry_count;
    const Round prev = memo->last_round;
    const Peerset base = memo->peerset;
    const VerifyResult r = verify_entries(suffix, begin, prev, owner, base, claimed);
    if (r) {
      memos_.put(key, PartnerMemo{n, chain[n], suffix.back().self_round, claimed});
      sync_evictions();
    }
    update_gauges();
    return r;
  }

  ++stats_.history_full;
  if (registry_ != nullptr) {
    registry_->add(ids_.history_full);
    registry_->add(ids_.miss);
  }
  const VerifyResult r = verify_entries(suffix, 0, std::nullopt, owner, Peerset{}, claimed);
  if (r) {
    memos_.put(key,
               PartnerMemo{n, chain[n], n == 0 ? Round{0} : suffix.back().self_round,
                           claimed});
    sync_evictions();
  }
  update_gauges();
  return r;
}

VerifyResult VerificationEngine::verify_history_anchored(
    const Checkpoint& ck, const std::vector<HistoryEntry>& suffix, const PeerId& owner,
    const Peerset& claimed) {
  // The engine is itself a CryptoProvider, so the checkpoint signature (and
  // every per-entry signature below) resolves through the verdict caches.
  if (const auto r = verify_checkpoint(ck, owner, *this); !r) return r;
  return verify_entries(suffix, 0, ck.last_round, owner,
                        Peerset{std::vector<PeerId>(ck.peerset)}, claimed);
}

VerifyResult VerificationEngine::verify_sample(const crypto::PublicKeyBytes& prover_key,
                                               const Peerset& candidates,
                                               std::size_t want, std::string_view domain,
                                               BytesView nonce,
                                               const std::vector<Bytes>& proofs,
                                               const std::vector<PeerId>& claimed) {
  const std::size_t target = std::min(want, candidates.size());
  // Prefetch every proof through the cache/batch path unless the replay
  // would reject before resolving any of them (empty draw, proof flood).
  std::vector<crypto::VerifyVerdict> table;
  std::vector<Bytes> alphas;
  bool prefetched = false;
  if (target > 0 && !proofs.empty() && proofs.size() <= kMaxDrawAttempts) {
    alphas.resize(proofs.size());
    std::vector<crypto::VerifyJob> jobs(proofs.size());
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      alphas[i] = draw_alpha(domain, nonce, static_cast<std::uint64_t>(i) + 1);
      jobs[i].kind = crypto::VerifyJob::Kind::kVrf;
      jobs[i].pk = prover_key;
      jobs[i].msg = BytesView(alphas[i].data(), alphas[i].size());
      jobs[i].sig = BytesView(proofs[i].data(), proofs[i].size());
    }
    table.resize(jobs.size());
    verify_batch(jobs, table);
    prefetched = true;
  }
  return verify_sample_with(
      [&](std::size_t i, BytesView alpha) -> std::optional<std::array<std::uint8_t, 64>> {
        if (prefetched) {
          if (!table[i].ok) return std::nullopt;
          return table[i].vrf_output;
        }
        return vrf_verify(prover_key, alpha, proofs[i]);
      },
      candidates, want, domain, nonce, proofs, claimed);
}

VerifyResult VerificationEngine::verify_one(const crypto::PublicKeyBytes& prover_key,
                                            const Peerset& candidates,
                                            std::string_view domain, BytesView nonce,
                                            const std::vector<Bytes>& proofs,
                                            const PeerId& claimed) {
  return verify_sample(prover_key, candidates, 1, domain, nonce, proofs, {claimed});
}

VerifyResult VerificationEngine::verify_sample(const SamplerBackend& backend,
                                               const crypto::PublicKeyBytes& prover_key,
                                               const Peerset& candidates,
                                               std::size_t want, std::string_view domain,
                                               BytesView nonce,
                                               const std::vector<Bytes>& proofs,
                                               const std::vector<PeerId>& claimed) {
  const auto& caps = backend.capabilities();
  if (caps.kind == SamplerKind::kVrf) {
    // The paper's backend keeps the dedicated prefetch/batch path so default
    // runs stay bit-identical to the pre-interface engine.
    return verify_sample(prover_key, candidates, want, domain, nonce, proofs, claimed);
  }
  // Other backends replay through their own verify(); `*this` (or the inner
  // provider, if the backend's verdicts are not per-signer and thus outside
  // invalidate()'s reach) resolves the primitive VRF checks.
  const crypto::CryptoProvider& resolver =
      caps.per_signer_verdicts ? static_cast<const crypto::CryptoProvider&>(*this)
                               : inner_;
  return backend.verify(resolver, prover_key, candidates, want, domain, nonce, proofs,
                        claimed);
}

VerifyResult VerificationEngine::verify_one(const SamplerBackend& backend,
                                            const crypto::PublicKeyBytes& prover_key,
                                            const Peerset& candidates,
                                            std::string_view domain, BytesView nonce,
                                            const std::vector<Bytes>& proofs,
                                            const PeerId& claimed) {
  return verify_sample(backend, prover_key, candidates, 1, domain, nonce, proofs,
                       {claimed});
}

void GatherSink::add_sig(const crypto::PublicKeyBytes& pk, Bytes msg, BytesView sig) {
  owned.push_back(std::move(msg));
  const Bytes& m = owned.back();
  crypto::VerifyJob j;
  j.kind = crypto::VerifyJob::Kind::kSignature;
  j.pk = pk;
  j.msg = BytesView(m.data(), m.size());
  j.sig = sig;
  jobs.push_back(j);
}

void GatherSink::add_vrf(const crypto::PublicKeyBytes& pk, Bytes alpha, BytesView proof) {
  owned.push_back(std::move(alpha));
  const Bytes& a = owned.back();
  crypto::VerifyJob j;
  j.kind = crypto::VerifyJob::Kind::kVrf;
  j.pk = pk;
  j.msg = BytesView(a.data(), a.size());
  j.sig = proof;
  jobs.push_back(j);
}

void VerificationEngine::gather_sig(GatherSink& sink, const crypto::PublicKeyBytes& pk,
                                    Bytes msg, BytesView sig) const {
  if (!config_.enable_cache) return;
  const std::string key = sig_key(pk, BytesView(msg.data(), msg.size()), sig);
  if (sig_cache_.find(key) != nullptr) return;
  sink.add_sig(pk, std::move(msg), sig);
}

void VerificationEngine::gather_vrf(GatherSink& sink, const crypto::PublicKeyBytes& pk,
                                    Bytes alpha, BytesView proof) const {
  if (!config_.enable_cache) return;
  const std::string key = vrf_key(pk, BytesView(alpha.data(), alpha.size()), proof);
  if (vrf_cache_.find(key) != nullptr) return;
  sink.add_vrf(pk, std::move(alpha), proof);
}

void VerificationEngine::gather_history(GatherSink& sink,
                                        const std::vector<HistoryEntry>& suffix,
                                        const PeerId& owner,
                                        const Peerset& claimed) const {
  if (!config_.enable_cache) return;
  const std::size_t n = suffix.size();
  std::vector<std::array<std::uint8_t, 32>> chain(n + 1);
  chain[0] = {};
  for (std::size_t i = 0; i < n; ++i) {
    chain[i + 1] = chain_step(chain[i], entry_digest(suffix[i]));
  }
  const PartnerMemo* memo = memos_.find(memo_key(owner));
  std::size_t begin = 0;
  std::optional<Round> prev;
  if (memo != nullptr && memo->entry_count == n && memo->chain == chain[n] &&
      memo->peerset == claimed) {
    return;  // exact memo hit: verify_history will pass without any crypto
  }
  if (memo != nullptr && memo->entry_count > 0 && memo->entry_count < n &&
      memo->chain == chain[memo->entry_count]) {
    begin = memo->entry_count;
    prev = memo->last_round;
  }
  sink.plans.push_back(plan_history_checks(suffix, begin, prev, owner));
  const HistoryCheckPlan& plan = sink.plans.back();
  for (const auto& c : plan.sig_checks) {
    const BytesView msg(c.payload.data(), c.payload.size());
    const BytesView sig(c.signature->data(), c.signature->size());
    if (sig_cache_.find(sig_key(c.pk, msg, sig)) != nullptr) continue;
    crypto::VerifyJob j;
    j.kind = crypto::VerifyJob::Kind::kSignature;
    j.pk = c.pk;
    j.msg = msg;  // aliases the plan, which the sink owns
    j.sig = sig;  // aliases the suffix, which outlives the sink
    sink.jobs.push_back(j);
  }
}

void VerificationEngine::gather_history_anchored(GatherSink& sink, const Checkpoint& ck,
                                                 const std::vector<HistoryEntry>& suffix,
                                                 const PeerId& owner) const {
  if (!config_.enable_cache) return;
  gather_sig(sink, ck.owner.key, ck.signing_payload(),
             BytesView(ck.owner_sig.data(), ck.owner_sig.size()));
  sink.plans.push_back(plan_history_checks(suffix, 0, ck.last_round, owner));
  const HistoryCheckPlan& plan = sink.plans.back();
  for (const auto& c : plan.sig_checks) {
    const BytesView msg(c.payload.data(), c.payload.size());
    const BytesView sig(c.signature->data(), c.signature->size());
    if (sig_cache_.find(sig_key(c.pk, msg, sig)) != nullptr) continue;
    crypto::VerifyJob j;
    j.kind = crypto::VerifyJob::Kind::kSignature;
    j.pk = c.pk;
    j.msg = msg;
    j.sig = sig;
    sink.jobs.push_back(j);
  }
}

void VerificationEngine::gather_sample(GatherSink& sink,
                                       const crypto::PublicKeyBytes& prover_key,
                                       const Peerset& candidates, std::size_t want,
                                       std::string_view domain, BytesView nonce,
                                       const std::vector<Bytes>& proofs) const {
  if (!config_.enable_cache) return;
  const std::size_t target = std::min(want, candidates.size());
  // Same guards as verify_sample's prefetch: an empty draw or a proof flood
  // is rejected structurally before any proof would be resolved.
  if (target == 0 || proofs.empty() || proofs.size() > kMaxDrawAttempts) return;
  for (std::size_t i = 0; i < proofs.size(); ++i) {
    gather_vrf(sink, prover_key,
               draw_alpha(domain, nonce, static_cast<std::uint64_t>(i) + 1),
               BytesView(proofs[i].data(), proofs[i].size()));
  }
}

std::size_t VerificationEngine::preload(
    std::span<const crypto::VerifyJob> jobs,
    std::span<const crypto::VerifyVerdict> verdicts) const {
  AN_ENSURE_MSG(jobs.size() == verdicts.size(), "preload verdict slot mismatch");
  if (!config_.enable_cache) return 0;
  std::size_t installed = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& job = jobs[i];
    if (job.kind == crypto::VerifyJob::Kind::kSignature) {
      const std::string key = sig_key(job.pk, job.msg, job.sig);
      if (sig_cache_.find(key) == nullptr) {
        sig_cache_.put(key, verdicts[i].ok);
        ++installed;
      }
    } else {
      const std::string key = vrf_key(job.pk, job.msg, job.sig);
      if (vrf_cache_.find(key) == nullptr) {
        VrfVerdict v;
        v.ok = verdicts[i].ok;
        v.beta = verdicts[i].vrf_output;
        vrf_cache_.put(key, v);
        ++installed;
      }
    }
  }
  sync_evictions();
  update_gauges();
  return installed;
}

void VerificationEngine::invalidate(const PeerId& node) {
  memos_.erase(memo_key(node));
  ++generations_.at_or_insert(pk_key(node.key));
  ++stats_.invalidations;
  if (registry_ != nullptr) registry_->add(ids_.invalidations);
  sync_evictions();
  update_gauges();
}

void VerificationEngine::clear() {
  sig_cache_ = BoundedMap<std::string, bool>(config_.sig_cache_capacity);
  vrf_cache_ = BoundedMap<std::string, VrfVerdict>(config_.vrf_cache_capacity);
  memos_ = BoundedMap<std::string, PartnerMemo>(config_.history_memo_capacity);
  generations_ = BoundedMap<std::string, std::uint64_t>(config_.sig_cache_capacity);
  reported_evictions_ = 0;
  update_gauges();
}

}  // namespace accountnet::core
