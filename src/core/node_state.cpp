#include "accountnet/core/node_state.hpp"

#include "accountnet/util/ensure.hpp"

namespace accountnet::core {

NodeState::NodeState(PeerId self, std::unique_ptr<crypto::Signer> signer,
                     NodeConfig config)
    : self_(std::move(self)), signer_(std::move(signer)), config_(config) {
  AN_ENSURE(signer_ != nullptr);
  AN_ENSURE_MSG(config_.shuffle_length >= 1, "L must be >= 1");
  AN_ENSURE_MSG(config_.max_peerset >= config_.shuffle_length,
                "f must be >= L (cannot exchange more peers than the set holds)");
  AN_ENSURE_MSG(self_.key == signer_->public_key(), "PeerId key must match signer");
}

Bytes NodeState::sign_current_round() const {
  return signer_->sign(shuffle_nonce_payload(round_));
}

void NodeState::init_as_seed() {
  AN_ENSURE_MSG(round_ == 0 && history_.empty(), "init_as_seed on a used node");
}

void NodeState::apply_join(const PeerId& bootstrap, Bytes entry_stamp,
                           std::vector<PeerId> initial_peers) {
  AN_ENSURE_MSG(round_ == 0 && history_.empty(), "join on a used node");
  HistoryEntry e;
  e.kind = EntryKind::kJoin;
  e.self_round = 0;
  e.counterpart = bootstrap;
  e.nonce = 0;
  e.signature = std::move(entry_stamp);
  Peerset initial;
  for (auto& p : initial_peers) {
    if (p == self_) continue;
    if (initial.size() >= config_.max_peerset) break;
    if (initial.insert(p)) e.in.push_back(p);
  }
  history_.append(std::move(e));
  peerset_ = std::move(initial);
  round_ = 1;
}

void NodeState::apply_leave_report(const PeerId& reporter, Round reporter_round,
                                   Bytes signature, const PeerId& leaver) {
  HistoryEntry e;
  e.kind = EntryKind::kLeave;
  e.self_round = round_;
  e.counterpart = reporter;
  e.nonce = reporter_round;
  e.signature = std::move(signature);
  e.out.push_back(leaver);
  history_.append(std::move(e));
  if (config_.history_limit > 0) history_.trim(config_.history_limit);
  peerset_.erase(leaver);
  ++round_;
}

std::pair<Round, Bytes> NodeState::make_leave_report(const PeerId& leaver) const {
  return {round_, signer_->sign(leave_payload(round_, leaver.addr))};
}

void NodeState::commit_shuffle(HistoryEntry entry, Peerset next_peerset) {
  AN_ENSURE_MSG(entry.self_round == round_, "shuffle entry round mismatch");
  AN_ENSURE_MSG(next_peerset.size() <= config_.max_peerset, "peerset overflow");
  history_.append(std::move(entry));
  if (config_.history_limit > 0) history_.trim(config_.history_limit);
  peerset_ = std::move(next_peerset);
  ++round_;
}

}  // namespace accountnet::core
