#include "accountnet/core/node_state.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"

namespace accountnet::core {

NodeState::NodeState(PeerId self, std::unique_ptr<crypto::Signer> signer,
                     NodeConfig config)
    : self_(std::move(self)), signer_(std::move(signer)), config_(config) {
  AN_ENSURE(signer_ != nullptr);
  AN_ENSURE_MSG(config_.shuffle_length >= 1, "L must be >= 1");
  AN_ENSURE_MSG(config_.max_peerset >= config_.shuffle_length,
                "f must be >= L (cannot exchange more peers than the set holds)");
  AN_ENSURE_MSG(self_.key == signer_->public_key(), "PeerId key must match signer");
}

Bytes NodeState::sign_current_round() const {
  return signer_->sign(shuffle_nonce_payload(round_));
}

void NodeState::init_as_seed() {
  AN_ENSURE_MSG(round_ == 0 && history_.empty(), "init_as_seed on a used node");
}

void NodeState::apply_join(const PeerId& bootstrap, Bytes entry_stamp,
                           std::vector<PeerId> initial_peers) {
  AN_ENSURE_MSG(round_ == 0 && history_.empty(), "join on a used node");
  HistoryEntry e;
  e.kind = EntryKind::kJoin;
  e.self_round = 0;
  e.counterpart = bootstrap;
  e.nonce = 0;
  e.signature = std::move(entry_stamp);
  Peerset initial;
  for (auto& p : initial_peers) {
    if (p == self_) continue;
    if (initial.size() >= config_.max_peerset) break;
    if (initial.insert(p)) e.in.push_back(p);
  }
  journal_entry(e);
  history_.append(std::move(e));
  peerset_ = std::move(initial);
  round_ = 1;
  journal_round();
  maybe_seal();
}

void NodeState::apply_leave_report(const PeerId& reporter, Round reporter_round,
                                   Bytes signature, const PeerId& leaver) {
  HistoryEntry e;
  e.kind = EntryKind::kLeave;
  e.self_round = round_;
  e.counterpart = reporter;
  e.nonce = reporter_round;
  e.signature = std::move(signature);
  e.out.push_back(leaver);
  journal_entry(e);
  history_.append(std::move(e));
  peerset_.erase(leaver);
  ++round_;
  journal_round();
  maybe_seal();
  trim_history();
}

std::pair<Round, Bytes> NodeState::make_leave_report(const PeerId& leaver) const {
  return {round_, signer_->sign(leave_payload(round_, leaver.addr))};
}

void NodeState::commit_shuffle(HistoryEntry entry, Peerset next_peerset) {
  AN_ENSURE_MSG(entry.self_round == round_, "shuffle entry round mismatch");
  AN_ENSURE_MSG(next_peerset.size() <= config_.max_peerset, "peerset overflow");
  journal_entry(entry);
  history_.append(std::move(entry));
  peerset_ = std::move(next_peerset);
  ++round_;
  journal_round();
  maybe_seal();
  trim_history();
}

void NodeState::skip_round() {
  ++round_;
  journal_round();
}

void NodeState::journal_entry(const HistoryEntry& e) {
  if (journal_ != nullptr) journal_->on_entry(history_.total_appended(), e);
}

void NodeState::journal_round() {
  if (journal_ != nullptr) journal_->on_round(round_);
}

void NodeState::maybe_seal() {
  if (config_.checkpoint_interval == 0 || history_.total_appended() == 0) return;
  const std::uint64_t sealed = checkpoint_ ? checkpoint_->sealed_count : 0;
  if (history_.total_appended() - sealed < config_.checkpoint_interval) return;
  Checkpoint ck;
  ck.owner = self_;
  ck.epoch = checkpoint_ ? checkpoint_->epoch + 1 : 1;
  ck.sealed_count = history_.total_appended();
  ck.last_round = history_.back().self_round;
  ck.chain = history_.chain();
  ck.peerset = peerset_.sorted();
  ck.owner_sig = signer_->sign(ck.signing_payload());
  checkpoint_ = std::move(ck);
  if (journal_ != nullptr) journal_->on_checkpoint(*checkpoint_);
}

void NodeState::trim_history() {
  if (config_.history_limit == 0) return;
  // With checkpointing on, unsealed entries are never trimmed — including
  // before the FIRST seal, when everything is unsealed. Anchored proofs
  // replay the unsealed tail from the checkpoint base (or, pre-seal, plain
  // proofs still have the whole history), so the retained window is
  // max(limit, unsealed count), bounded by max(limit, checkpoint_interval).
  // With checkpointing off this is exactly the historical behavior.
  std::size_t keep = config_.history_limit;
  if (config_.checkpoint_interval > 0) {
    const std::uint64_t sealed = checkpoint_ ? checkpoint_->sealed_count : 0;
    keep = std::max(keep, static_cast<std::size_t>(history_.total_appended() - sealed));
  }
  history_.trim(keep);
}

void NodeState::restore(const RecoveredNode& rec) {
  AN_ENSURE_MSG(round_ == 0 && history_.empty(), "restore on a used node");
  if (rec.checkpoint) {
    AN_ENSURE_MSG(rec.checkpoint->owner == self_, "recovered checkpoint owner mismatch");
    AN_ENSURE_MSG(rec.first_index <= rec.checkpoint->sealed_count,
                  "compacted past the sealed boundary");
  } else {
    AN_ENSURE_MSG(rec.first_index == 0, "compaction requires a checkpoint");
  }
  history_ = UpdateHistory::restore(rec.base_chain, rec.first_index, rec.entries);
  checkpoint_ = rec.checkpoint;
  if (checkpoint_) {
    AN_ENSURE_MSG(checkpoint_->sealed_count <= history_.total_appended(),
                  "recovered checkpoint seals entries the store does not hold");
    AN_ENSURE_MSG(history_.chain_at(checkpoint_->sealed_count) == checkpoint_->chain,
                  "recovered entries contradict the sealed checkpoint digest");
    // Peerset: sealed base, then the unsealed tail's deltas.
    Peerset n{std::vector<PeerId>(checkpoint_->peerset)};
    for (const auto& e :
         history_.entries_from(checkpoint_->sealed_count,
                               static_cast<std::size_t>(history_.total_appended() -
                                                        checkpoint_->sealed_count))) {
      for (const auto& p : e.out) n.erase(p);
      n.insert_all(e.in);
      n.insert_all(e.fill);
    }
    peerset_ = std::move(n);
  } else {
    peerset_ = UpdateHistory::reconstruct(rec.entries);
  }
  Round next = rec.next_round;
  if (!history_.empty()) next = std::max(next, history_.back().self_round + 1);
  round_ = next;
}

}  // namespace accountnet::core
