#include "accountnet/core/sampler.hpp"

#include <algorithm>
#include <string>

#include "accountnet/util/ensure.hpp"

namespace accountnet::core {

std::optional<Draw> SamplerBackend::draw_one(const crypto::Signer& signer,
                                             const Peerset& candidates,
                                             std::string_view domain,
                                             BytesView nonce) const {
  Draw d = draw(signer, candidates, 1, domain, nonce);
  if (d.sample.empty()) return std::nullopt;
  return d;
}

VerifyResult SamplerBackend::verify_one(const crypto::CryptoProvider& provider,
                                        const crypto::PublicKeyBytes& prover_key,
                                        const Peerset& candidates,
                                        std::string_view domain, BytesView nonce,
                                        const std::vector<Bytes>& proofs,
                                        const PeerId& claimed) const {
  return verify(provider, prover_key, candidates, 1, domain, nonce, proofs, {claimed});
}

namespace {

/// Same byte fold select_index uses: little-endian read of the first eight
/// VRF output bytes. Shared so all backends agree on the scalar a beta maps
/// to.
std::uint64_t fold64(BytesView beta) {
  AN_ENSURE_MSG(beta.size() >= 8, "vrf output too short");
  std::uint64_t h = 0;
  for (int i = 7; i >= 0; --i) h = (h << 8) | beta[static_cast<std::size_t>(i)];
  return h;
}

// ---------------------------------------------------------------------------
// kVrf — Algorithms 1/2 verbatim (core/select.hpp). This backend delegates
// to the exact pre-interface functions with the exact domain strings, so
// every default-configured run is byte-identical to the seed code.
// ---------------------------------------------------------------------------

class VrfSampler final : public SamplerBackend {
 public:
  const SamplerCapabilities& capabilities() const override {
    // E[proofs per pick] < 2: Null probability is < 1/2 per attempt.
    static constexpr SamplerCapabilities caps{SamplerKind::kVrf,
                                              "vrf",
                                              kMaxDrawAttempts,
                                              2.0,
                                              80,
                                              64,
                                              0,
                                              /*rejection_sampling=*/true,
                                              /*per_signer_verdicts=*/true};
    return caps;
  }

  Draw draw(const crypto::Signer& signer, const Peerset& candidates, std::size_t want,
            std::string_view domain, BytesView nonce) const override {
    return draw_sample(signer, candidates, want, domain, nonce);
  }

  VerifyResult verify(const crypto::CryptoProvider& provider,
                      const crypto::PublicKeyBytes& prover_key,
                      const Peerset& candidates, std::size_t want,
                      std::string_view domain, BytesView nonce,
                      const std::vector<Bytes>& proofs,
                      const std::vector<PeerId>& claimed) const override {
    return verify_sample(provider, prover_key, candidates, want, domain, nonce, proofs,
                         claimed);
  }
};

// ---------------------------------------------------------------------------
// kPeerSwap — swap-based sampling. Pick i applies a verifiable Fisher-Yates
// swap to the sorted candidate list: the i-th VRF output selects a swap
// index j in [i, n) and list[i] after the swap is the pick. Exactly
// min(want, n) proofs, no Null retries, no duplicate suppression (a
// Fisher-Yates prefix cannot repeat). The alpha domain is prefixed "ps."
// so the proof stream can never be replayed against the VRF backend.
//
// Deviation from Algorithm 2: the VRF output is reduced mod (n - i) rather
// than masked to Q bits, trading the paper's exact-uniformity-via-rejection
// for a fixed proof count (the modulo bias is ~(n-i)/2^64 — negligible, but
// not zero, which is why kVrf stays the default).
// ---------------------------------------------------------------------------

class PeerSwapSampler final : public SamplerBackend {
 public:
  const SamplerCapabilities& capabilities() const override {
    static constexpr SamplerCapabilities caps{SamplerKind::kPeerSwap,
                                              "peerswap",
                                              kMaxDrawAttempts,
                                              1.0,
                                              80,
                                              64,
                                              0,
                                              /*rejection_sampling=*/false,
                                              /*per_signer_verdicts=*/true};
    return caps;
  }

  Draw draw(const crypto::Signer& signer, const Peerset& candidates, std::size_t want,
            std::string_view domain, BytesView nonce) const override {
    Draw d;
    std::vector<PeerId> list = candidates.sorted();
    const std::size_t n = list.size();
    const std::size_t target = std::min({want, n, capabilities().max_proofs});
    const std::string dom = prefixed(domain);
    for (std::size_t i = 0; i < target; ++i) {
      const Bytes alpha = draw_alpha(dom, nonce, static_cast<std::uint64_t>(i) + 1);
      const auto beta = signer.vrf_output(alpha);
      d.proofs.push_back(signer.vrf_prove(alpha));
      const std::size_t j =
          i + static_cast<std::size_t>(fold64(BytesView(beta.data(), beta.size())) %
                                       static_cast<std::uint64_t>(n - i));
      std::swap(list[i], list[j]);
      d.sample.push_back(list[i]);
    }
    return d;
  }

  VerifyResult verify(const crypto::CryptoProvider& provider,
                      const crypto::PublicKeyBytes& prover_key,
                      const Peerset& candidates, std::size_t want,
                      std::string_view domain, BytesView nonce,
                      const std::vector<Bytes>& proofs,
                      const std::vector<PeerId>& claimed) const override {
    std::vector<PeerId> list = candidates.sorted();
    const std::size_t n = list.size();
    const std::size_t target = std::min({want, n, capabilities().max_proofs});
    if (target == 0) {
      if (!proofs.empty() || !claimed.empty()) {
        return VerifyResult::fail(VerifyError::kSampleFromEmptyCandidates);
      }
      return VerifyResult::pass();
    }
    if (proofs.size() > capabilities().max_proofs) {
      return VerifyResult::fail(VerifyError::kTooManyDrawProofs);
    }
    if (proofs.size() > target) {
      return VerifyResult::fail(VerifyError::kExtraDrawProofs);
    }
    if (proofs.size() < target) {
      return VerifyResult::fail(VerifyError::kSampleIncomplete);
    }
    const std::string dom = prefixed(domain);
    std::vector<PeerId> derived;
    derived.reserve(target);
    for (std::size_t i = 0; i < target; ++i) {
      const Bytes alpha = draw_alpha(dom, nonce, static_cast<std::uint64_t>(i) + 1);
      const auto beta =
          provider.vrf_verify(prover_key, BytesView(alpha.data(), alpha.size()),
                              proofs[i]);
      if (!beta) return VerifyResult::fail(VerifyError::kInvalidVrfProof);
      const std::size_t j =
          i + static_cast<std::size_t>(fold64(BytesView(beta->data(), beta->size())) %
                                       static_cast<std::uint64_t>(n - i));
      std::swap(list[i], list[j]);
      derived.push_back(list[i]);
    }
    if (derived != claimed) return VerifyResult::fail(VerifyError::kSampleMismatch);
    return VerifyResult::pass();
  }

 private:
  static std::string prefixed(std::string_view domain) {
    return std::string("ps.") += domain;
  }
};

// ---------------------------------------------------------------------------
// kHoneybee — verifiable random walk. The sorted candidate list is the
// vertex set of an implicit degree-8 circulant graph (offsets 1 2 3 5 8 13
// 21 34, a decent expander at peerset scale); each VRF output is one step.
// After kMixSteps mixing steps every subsequent step may pick the vertex
// under the cursor (duplicates keep walking), and a pick resets the mixing
// counter. Total steps are capped exactly like Algorithm 1's attempt
// counter, so a malicious prover cannot demand unbounded replay work.
// The alpha domain is prefixed "hb.".
// ---------------------------------------------------------------------------

class HoneybeeSampler final : public SamplerBackend {
 public:
  static constexpr std::size_t kMixSteps = 4;

  const SamplerCapabilities& capabilities() const override {
    // ~kMixSteps proofs per pick plus occasional duplicate-resolution steps.
    static constexpr SamplerCapabilities caps{SamplerKind::kHoneybee,
                                              "honeybee",
                                              kMaxDrawAttempts,
                                              5.0,
                                              80,
                                              64,
                                              0,
                                              /*rejection_sampling=*/true,
                                              /*per_signer_verdicts=*/true};
    return caps;
  }

  Draw draw(const crypto::Signer& signer, const Peerset& candidates, std::size_t want,
            std::string_view domain, BytesView nonce) const override {
    Draw d;
    const std::vector<PeerId> list = candidates.sorted();
    const std::size_t n = list.size();
    const std::size_t target = std::min(want, n);
    if (target == 0) return d;
    const std::string dom = prefixed(domain);
    std::size_t pos = 0;
    std::size_t since_pick = 0;
    for (std::uint64_t step = 1;
         d.sample.size() < target && step <= capabilities().max_proofs; ++step) {
      const Bytes alpha = draw_alpha(dom, nonce, step);
      const auto beta = signer.vrf_output(alpha);
      d.proofs.push_back(signer.vrf_prove(alpha));
      pos = advance(pos, n, fold64(BytesView(beta.data(), beta.size())));
      ++since_pick;
      if (since_pick >= kMixSteps) {
        const PeerId& cand = list[pos];
        if (std::find(d.sample.begin(), d.sample.end(), cand) == d.sample.end()) {
          d.sample.push_back(cand);
          since_pick = 0;
        }
      }
    }
    return d;
  }

  VerifyResult verify(const crypto::CryptoProvider& provider,
                      const crypto::PublicKeyBytes& prover_key,
                      const Peerset& candidates, std::size_t want,
                      std::string_view domain, BytesView nonce,
                      const std::vector<Bytes>& proofs,
                      const std::vector<PeerId>& claimed) const override {
    const std::vector<PeerId> list = candidates.sorted();
    const std::size_t n = list.size();
    const std::size_t target = std::min(want, n);
    if (target == 0) {
      if (!proofs.empty() || !claimed.empty()) {
        return VerifyResult::fail(VerifyError::kSampleFromEmptyCandidates);
      }
      return VerifyResult::pass();
    }
    if (proofs.size() > capabilities().max_proofs) {
      return VerifyResult::fail(VerifyError::kTooManyDrawProofs);
    }
    const std::string dom = prefixed(domain);
    std::vector<PeerId> derived;
    std::size_t pos = 0;
    std::size_t since_pick = 0;
    for (std::size_t i = 0; i < proofs.size(); ++i) {
      if (derived.size() == target) {
        return VerifyResult::fail(VerifyError::kExtraDrawProofs);
      }
      const Bytes alpha = draw_alpha(dom, nonce, static_cast<std::uint64_t>(i) + 1);
      const auto beta =
          provider.vrf_verify(prover_key, BytesView(alpha.data(), alpha.size()),
                              proofs[i]);
      if (!beta) return VerifyResult::fail(VerifyError::kInvalidVrfProof);
      pos = advance(pos, n, fold64(BytesView(beta->data(), beta->size())));
      ++since_pick;
      if (since_pick >= kMixSteps) {
        const PeerId& cand = list[pos];
        if (std::find(derived.begin(), derived.end(), cand) == derived.end()) {
          derived.push_back(cand);
          since_pick = 0;
        }
      }
    }
    if (derived.size() != target && proofs.size() != capabilities().max_proofs) {
      return VerifyResult::fail(VerifyError::kSampleIncomplete);
    }
    if (derived != claimed) return VerifyResult::fail(VerifyError::kSampleMismatch);
    return VerifyResult::pass();
  }

 private:
  static std::size_t advance(std::size_t pos, std::size_t n, std::uint64_t beta64) {
    static constexpr std::size_t kOffsets[8] = {1, 2, 3, 5, 8, 13, 21, 34};
    return (pos + kOffsets[beta64 % 8]) % n;
  }

  static std::string prefixed(std::string_view domain) {
    return std::string("hb.") += domain;
  }
};

}  // namespace

const char* sampler_kind_name(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kVrf: return "vrf";
    case SamplerKind::kPeerSwap: return "peerswap";
    case SamplerKind::kHoneybee: return "honeybee";
  }
  AN_ENSURE_MSG(false, "unknown SamplerKind");
  return "?";
}

std::optional<SamplerKind> sampler_kind_from(std::string_view name) {
  if (name == "vrf") return SamplerKind::kVrf;
  if (name == "peerswap") return SamplerKind::kPeerSwap;
  if (name == "honeybee") return SamplerKind::kHoneybee;
  return std::nullopt;
}

const SamplerBackend& sampler_backend(SamplerKind kind) {
  static const VrfSampler vrf;
  static const PeerSwapSampler peerswap;
  static const HoneybeeSampler honeybee;
  switch (kind) {
    case SamplerKind::kVrf: return vrf;
    case SamplerKind::kPeerSwap: return peerswap;
    case SamplerKind::kHoneybee: return honeybee;
  }
  AN_ENSURE_MSG(false, "unknown SamplerKind");
  return vrf;
}

}  // namespace accountnet::core
