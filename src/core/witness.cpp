#include "accountnet/core/witness.hpp"

#include <algorithm>
#include <cmath>

#include "accountnet/core/neighborhood.hpp"
#include "accountnet/core/verification_engine.hpp"
#include "accountnet/util/ensure.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::core {

Bytes channel_nonce(const PeerId& producer, Round producer_round,
                    const PeerId& consumer, Round consumer_round) {
  wire::Writer w;
  w.str("an.channel");
  w.str(producer.addr);
  w.u64(producer_round);
  w.str(consumer.addr);
  w.u64(consumer_round);
  return std::move(w).take();
}

WitnessPlan plan_witness_group(const std::vector<PeerId>& neighborhood_producer,
                               const std::vector<PeerId>& neighborhood_consumer,
                               const PeerId& producer, const PeerId& consumer,
                               std::size_t total) {
  WitnessPlan plan;
  plan.common = sorted_intersection(neighborhood_producer, neighborhood_consumer);

  const std::vector<PeerId> endpoints = [&] {
    std::vector<PeerId> e = {producer, consumer};
    std::sort(e.begin(), e.end());
    return e;
  }();

  plan.candidates_producer =
      sorted_difference(sorted_difference(neighborhood_producer, plan.common), endpoints);
  plan.candidates_consumer =
      sorted_difference(sorted_difference(neighborhood_consumer, plan.common), endpoints);

  // α ratios use the FULL neighborhood sizes (before exclusion), per Sec. V.
  const double ni = static_cast<double>(neighborhood_producer.size());
  const double nj = static_cast<double>(neighborhood_consumer.size());
  if (ni + nj > 0) {
    plan.alpha_producer = ni / (ni + nj);
    plan.alpha_consumer = nj / (ni + nj);
  }

  std::size_t quota_p = static_cast<std::size_t>(
      std::llround(plan.alpha_producer * static_cast<double>(total)));
  quota_p = std::min(quota_p, total);
  std::size_t quota_c = total - quota_p;

  // Cap by availability; hand spare quota to the other side when possible.
  if (quota_p > plan.candidates_producer.size()) {
    quota_c += quota_p - plan.candidates_producer.size();
    quota_p = plan.candidates_producer.size();
  }
  if (quota_c > plan.candidates_consumer.size()) {
    const std::size_t spill = quota_c - plan.candidates_consumer.size();
    quota_c = plan.candidates_consumer.size();
    quota_p = std::min(quota_p + spill, plan.candidates_producer.size());
  }
  plan.quota_producer = quota_p;
  plan.quota_consumer = quota_c;
  return plan;
}

Draw draw_witnesses(const SamplerBackend& sampler, const crypto::Signer& signer,
                    const std::vector<PeerId>& candidates, std::size_t quota,
                    BytesView nonce) {
  return sampler.draw(signer, Peerset(candidates), quota, kWitnessDomain, nonce);
}

VerifyResult verify_witnesses(const SamplerBackend& sampler,
                              const crypto::CryptoProvider& provider,
                              const crypto::PublicKeyBytes& drawer_key,
                              const std::vector<PeerId>& candidates, std::size_t quota,
                              BytesView nonce, const std::vector<Bytes>& proofs,
                              const std::vector<PeerId>& claimed) {
  return sampler.verify(provider, drawer_key, Peerset(candidates), quota, kWitnessDomain,
                        nonce, proofs, claimed);
}

VerifyResult verify_witnesses(const SamplerBackend& sampler, VerificationEngine& engine,
                              const crypto::PublicKeyBytes& drawer_key,
                              const std::vector<PeerId>& candidates, std::size_t quota,
                              BytesView nonce, const std::vector<Bytes>& proofs,
                              const std::vector<PeerId>& claimed) {
  return engine.verify_sample(sampler, drawer_key, Peerset(candidates), quota,
                              kWitnessDomain, nonce, proofs, claimed);
}

std::vector<PeerId> merge_witnesses(const std::vector<PeerId>& from_producer,
                                    const std::vector<PeerId>& from_consumer) {
  std::vector<PeerId> all = from_producer;
  all.insert(all.end(), from_consumer.begin(), from_consumer.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

}  // namespace accountnet::core
