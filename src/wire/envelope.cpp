#include "accountnet/wire/envelope.hpp"

namespace accountnet::wire {

Bytes encode_envelope(const Envelope& e) {
  Writer w;
  w.u8(kEnvelopeV2);
  w.str(e.from);
  w.str(e.to);
  w.u32(e.type);
  w.u64(e.trace_id);
  w.u64(e.parent_span);
  w.bytes(e.payload);
  return std::move(w).take();
}

Bytes encode_envelope_v1(const Envelope& e) {
  Writer w;
  w.u8(kEnvelopeV1);
  w.str(e.from);
  w.str(e.to);
  w.u32(e.type);
  w.bytes(e.payload);
  return std::move(w).take();
}

Envelope decode_envelope(BytesView data) {
  Reader r(data);
  const std::uint8_t version = r.u8();
  if (version != kEnvelopeV1 && version != kEnvelopeV2) {
    throw DecodeError("envelope: unknown version " + std::to_string(version));
  }
  Envelope e;
  e.from = r.str();
  e.to = r.str();
  e.type = r.u32();
  if (version >= kEnvelopeV2) {
    e.trace_id = r.u64();
    e.parent_span = r.u64();
  }
  e.payload = r.bytes();
  r.expect_done();
  return e;
}

}  // namespace accountnet::wire
