#include "accountnet/wire/codec.hpp"

namespace accountnet::wire {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(BytesView data) {
  varint(data.size());
  raw(data);
}

void Writer::str(std::string_view s) {
  varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Writer::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("wire: truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t b = data_[pos_++];
    if (shift == 63 && (b & 0x7e) != 0) throw DecodeError("wire: varint overflow");
    if (shift > 63) throw DecodeError("wire: varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

Bytes Reader::bytes() {
  const std::uint64_t n = varint();
  if (n > remaining()) throw DecodeError("wire: byte-string length exceeds input");
  return raw(static_cast<std::size_t>(n));
}

std::string Reader::str() {
  const Bytes b = bytes();
  return std::string(b.begin(), b.end());
}

Bytes Reader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::uint8_t Reader::peek_u8() const {
  need(1);
  return data_[pos_];
}

void Reader::expect_done() const {
  if (!done()) throw DecodeError("wire: trailing bytes after message");
}

}  // namespace accountnet::wire
