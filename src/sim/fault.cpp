#include "accountnet/sim/fault.hpp"

#include <algorithm>

namespace accountnet::sim {

namespace {

bool addr_matches(const std::string& pattern, const std::string& addr) {
  return pattern.empty() || pattern == addr;
}

bool in_side(const std::vector<std::string>& side, const std::string& addr) {
  return std::find(side.begin(), side.end(), addr) != side.end();
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLoss: return "loss";
    case FaultKind::kDup: return "dup";
    case FaultKind::kReorder: return "reorder";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kCrash: return "crash";
  }
  return "unknown";
}

FaultPlan FaultPlan::uniform_loss(double p, std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  LinkFault all;
  all.loss = p;
  plan.links.push_back(all);
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed ^ 0xfa017f1a57ULL) {}

bool FaultInjector::partitioned(const std::string& from, const std::string& to,
                                TimePoint now) const {
  for (const auto& p : plan_.partitions) {
    if (now < p.start || now >= p.heal) continue;
    // An empty side matches everything outside the other side.
    const bool from_a = p.side_a.empty() ? !in_side(p.side_b, from)
                                         : in_side(p.side_a, from);
    const bool from_b = p.side_b.empty() ? !in_side(p.side_a, from)
                                         : in_side(p.side_b, from);
    const bool to_a = p.side_a.empty() ? !in_side(p.side_b, to)
                                       : in_side(p.side_a, to);
    const bool to_b = p.side_b.empty() ? !in_side(p.side_a, to)
                                       : in_side(p.side_b, to);
    if ((from_a && to_b) || (from_b && to_a)) return true;
  }
  return false;
}

bool FaultInjector::crashed(const std::string& addr, TimePoint now) const {
  for (const auto& c : plan_.crashes) {
    if (c.addr == addr && now >= c.crash && now < c.restart) return true;
  }
  return false;
}

FaultDecision FaultInjector::decide(const std::string& from, const std::string& to,
                                    std::uint32_t type, TimePoint now) {
  FaultDecision d;
  // Deterministic (rng-free) checks first, so crash/partition drops never
  // consume randomness and probabilistic streams stay aligned across runs
  // that differ only in partition membership.
  if (crashed(from, now) || crashed(to, now)) {
    d.drop = true;
    d.drop_kind = FaultKind::kCrash;
    return d;
  }
  if (partitioned(from, to, now)) {
    d.drop = true;
    d.drop_kind = FaultKind::kPartition;
    return d;
  }
  for (const auto& rule : plan_.links) {
    if (!addr_matches(rule.from, from) || !addr_matches(rule.to, to)) continue;
    if (rule.type.has_value() && *rule.type != type) continue;
    if (rule.loss > 0.0 && rng_.chance(rule.loss)) {
      d.drop = true;
      d.drop_kind = FaultKind::kLoss;
      return d;
    }
    if (rule.duplicate > 0.0 && !d.duplicate && rng_.chance(rule.duplicate)) {
      d.duplicate = true;
    }
    if (rule.reorder > 0.0 && d.extra_delay == 0 && rng_.chance(rule.reorder)) {
      d.extra_delay = rng_.uniform_range(rule.reorder_min, rule.reorder_max);
      if (d.duplicate) {
        d.dup_extra_delay = rng_.uniform_range(rule.reorder_min, rule.reorder_max);
      }
    }
  }
  return d;
}

}  // namespace accountnet::sim
