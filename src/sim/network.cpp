#include "accountnet/sim/network.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"

namespace accountnet::sim {

namespace {

class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(Duration d) : d_(d) {}
  Duration sample(Rng&) override { return d_; }

 private:
  Duration d_;
};

class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
    AN_ENSURE(lo >= 0 && hi >= lo);
  }
  Duration sample(Rng& rng) override { return rng.uniform_range(lo_, hi_); }

 private:
  Duration lo_;
  Duration hi_;
};

class NormalLatency final : public LatencyModel {
 public:
  NormalLatency(Duration mean, Duration stddev, Duration min)
      : mean_(mean), stddev_(stddev), min_(min) {}
  Duration sample(Rng& rng) override {
    const double v = rng.normal(static_cast<double>(mean_), static_cast<double>(stddev_));
    return std::max(min_, static_cast<Duration>(v));
  }

 private:
  Duration mean_;
  Duration stddev_;
  Duration min_;
};

}  // namespace

std::unique_ptr<LatencyModel> fixed_latency(Duration d) {
  return std::make_unique<FixedLatency>(d);
}

std::unique_ptr<LatencyModel> uniform_latency(Duration lo, Duration hi) {
  return std::make_unique<UniformLatency>(lo, hi);
}

std::unique_ptr<LatencyModel> normal_latency(Duration mean, Duration stddev, Duration min) {
  return std::make_unique<NormalLatency>(mean, stddev, min);
}

std::unique_ptr<LatencyModel> netem_latency() {
  // 20 ms one-way delay with +-2 ms jitter, per the paper's NetEM setup.
  return std::make_unique<UniformLatency>(milliseconds(18), milliseconds(22));
}

SimNetwork::SimNetwork(Simulator& simulator, std::unique_ptr<LatencyModel> latency,
                       std::uint64_t rng_seed)
    : sim_(simulator), latency_(std::move(latency)), rng_(rng_seed) {
  AN_ENSURE(latency_ != nullptr);
}

void SimNetwork::attach(const std::string& address, Handler handler) {
  AN_ENSURE_MSG(handler != nullptr, "endpoint handler must be callable");
  endpoints_[address] = std::move(handler);
}

void SimNetwork::detach(const std::string& address) {
  endpoints_.erase(address);
}

bool SimNetwork::is_attached(const std::string& address) const {
  return endpoints_.contains(address);
}

void SimNetwork::set_metrics(obs::MetricsRegistry* registry, TypeNamer namer) {
  metrics_ = registry;
  namer_ = std::move(namer);
  per_type_.clear();  // ids belong to the previous registry
  ring_gauges_ready_ = false;
}

const SimNetwork::TypeMetrics& SimNetwork::type_metrics(std::uint32_t type) {
  const auto it = per_type_.find(type);
  if (it != per_type_.end()) return it->second;
  const std::string name = namer_ ? namer_(type) : "type_" + std::to_string(type);
  TypeMetrics m;
  m.sent = metrics_->counter("net.sent." + name);
  m.received = metrics_->counter("net.recv." + name);
  m.dropped = metrics_->counter("net.drop." + name);
  m.bytes = metrics_->counter("net.bytes." + name);
  return per_type_.emplace(type, m).first->second;
}

void SimNetwork::set_fault_plan(FaultPlan plan) {
  faults_.emplace(std::move(plan));
}

void SimNetwork::count_fault(FaultKind kind, std::uint32_t type) {
  if (metrics_ == nullptr) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(kind) << 32) | static_cast<std::uint64_t>(type);
  auto it = fault_metrics_.find(key);
  if (it == fault_metrics_.end()) {
    const std::string name = namer_ ? namer_(type) : "type_" + std::to_string(type);
    const obs::MetricId id = metrics_->counter(
        std::string("net.fault.") + fault_kind_name(kind) + "." + name);
    it = fault_metrics_.emplace(key, id).first;
  }
  metrics_->add(it->second);
}

std::uint64_t SimNetwork::begin_hop_span(const NetMessage& msg) {
  if (tracer_ == nullptr || !msg.trace.valid()) return 0;
  const std::string name = namer_ ? namer_(msg.type) : "type_" + std::to_string(msg.type);
  const std::uint64_t span = tracer_->begin_span("net." + name, "net", sim_.now(), msg.trace);
  tracer_->attr(span, "from", msg.from);
  tracer_->attr(span, "to", msg.to);
  tracer_->attr_u64(span, "bytes", msg.payload.size());
  return span;
}

void SimNetwork::end_hop_span(std::uint64_t hop_span, const char* outcome) {
  if (tracer_ == nullptr || hop_span == 0) return;
  if (outcome != nullptr) tracer_->attr(hop_span, "outcome", outcome);
  tracer_->end_span(hop_span, sim_.now());
}

void SimNetwork::deliver_after(Duration delay, NetMessage msg, std::uint64_t hop_span) {
  sim_.schedule(delay, [this, m = std::move(msg), hop_span]() {
    // A crash window that opened while the message was in flight still
    // swallows it: delivery requires the destination to be up *now*.
    if (faults_ && faults_->crashed(m.to, sim_.now())) {
      ++stats_.faults_dropped;
      count_fault(FaultKind::kCrash, m.type);
      end_hop_span(hop_span, "crash");
      return;
    }
    const auto it = endpoints_.find(m.to);
    if (it == endpoints_.end()) {
      ++stats_.messages_dropped;
      if (metrics_ != nullptr) metrics_->add(type_metrics(m.type).dropped);
      end_hop_span(hop_span, "unreachable");
      return;
    }
    ++stats_.messages_delivered;
    if (metrics_ != nullptr) metrics_->add(type_metrics(m.type).received);
    end_hop_span(hop_span, nullptr);
    it->second(m);
  });
}

void SimNetwork::send(NetMessage msg) {
  ++stats_.messages_sent;
  stats_.bytes_sent += msg.payload.size();
  if (metrics_ != nullptr) {
    const TypeMetrics& tm = type_metrics(msg.type);
    metrics_->add(tm.sent);
    metrics_->add(tm.bytes, msg.payload.size());
  }
  if (gateway_ != nullptr && !endpoints_.contains(msg.to)) {
    // Off-fabric destination with a gateway attached (real-transport host):
    // hand over synchronously. No latency sample is drawn, so attaching a
    // gateway never perturbs the rng stream seen by in-fabric traffic.
    gateway_(msg);
    return;
  }
  if (trace_ != nullptr) {
    trace_->push({sim_.now(), msg.type, msg.payload.size(), 0,
                  msg.from + "->" + msg.to});
    if (metrics_ != nullptr) {
      if (!ring_gauges_ready_) {
        ring_size_id_ = metrics_->gauge("obs.trace.size");
        ring_dropped_id_ = metrics_->gauge("obs.trace.dropped");
        ring_gauges_ready_ = true;
      }
      metrics_->set(ring_size_id_, static_cast<double>(trace_->size()));
      metrics_->set(ring_dropped_id_, static_cast<double>(trace_->dropped()));
    }
  }
  const std::uint64_t hop_span = begin_hop_span(msg);
  FaultDecision fault;
  if (faults_) fault = faults_->decide(msg.from, msg.to, msg.type, sim_.now());
  if (fault.drop) {
    ++stats_.faults_dropped;
    count_fault(fault.drop_kind, msg.type);
    end_hop_span(hop_span, "fault_drop");
    return;
  }
  if (fault.extra_delay > 0) {
    ++stats_.faults_delayed;
    count_fault(FaultKind::kReorder, msg.type);
  }
  if (fault.duplicate) {
    ++stats_.faults_duplicated;
    count_fault(FaultKind::kDup, msg.type);
    // The copy samples its own latency, so it races the original; only the
    // original closes the hop span.
    deliver_after(latency_->sample(rng_) + fault.dup_extra_delay, msg, 0);
  }
  deliver_after(latency_->sample(rng_) + fault.extra_delay, std::move(msg), hop_span);
}

Duration SimNetwork::sample_delay() {
  return latency_->sample(rng_);
}

}  // namespace accountnet::sim
