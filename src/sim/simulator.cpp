#include "accountnet/sim/simulator.hpp"

#include "accountnet/util/ensure.hpp"

namespace accountnet::sim {

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  AN_ENSURE_MSG(delay >= 0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  AN_ENSURE_MSG(when >= now_, "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-adjacent,
  // so copy the function handle (cheap: shared state inside std::function).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

}  // namespace accountnet::sim
