#include "accountnet/sim/simulator.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"
#include "accountnet/util/worker_pool.hpp"

namespace accountnet::sim {

void Simulator::schedule(Duration delay, std::function<void()> fn) {
  AN_ENSURE_MSG(delay >= 0, "cannot schedule into the past");
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_at(TimePoint when, std::function<void()> fn) {
  AN_ENSURE_MSG(when >= now_, "cannot schedule into the past");
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-adjacent,
  // so copy the function handle (cheap: shared state inside std::function).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ++events_processed_;
  ev.fn();
  return true;
}

void Simulator::run_until(TimePoint deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Simulator::run() {
  while (step()) {
  }
}

std::size_t Simulator::pending() const {
  std::size_t n = queue_.size();
  for (const auto& s : shards_) n += s.queue.size();
  return n;
}

std::optional<TimePoint> Simulator::next_event_time() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.top().when;
}

// --- Sharded parallel mode ---------------------------------------------------

void Simulator::enable_sharding(std::size_t shards) {
  AN_ENSURE_MSG(shards >= 1, "need at least one shard");
  AN_ENSURE_MSG(shards_.empty(), "sharding already enabled");
  shards_.resize(shards);
  for (auto& s : shards_) s.now = now_;
}

void Simulator::schedule_shard(std::size_t shard, Duration delay,
                               std::function<void()> fn) {
  AN_ENSURE_MSG(shard < shards_.size(), "shard out of range");
  AN_ENSURE_MSG(delay >= 0, "cannot schedule into the past");
  Shard& s = shards_[shard];
  s.queue.push(Event{s.now + delay, s.next_seq++, std::move(fn)});
}

TimePoint Simulator::shard_now(std::size_t shard) const {
  AN_ENSURE_MSG(shard < shards_.size(), "shard out of range");
  return shards_[shard].now;
}

void Simulator::post_cross(std::size_t from, std::size_t to, Duration delay,
                           std::function<void()> fn) {
  AN_ENSURE_MSG(from < shards_.size() && to < shards_.size(), "shard out of range");
  AN_ENSURE_MSG(delay >= 0, "cannot schedule into the past");
  Shard& s = shards_[from];
  // Source-shard seq numbers the message; the barrier flush sorts by
  // (source shard, seq), so delivery order is a pure function of the
  // simulation, never of worker interleaving.
  s.outbox.push_back(
      Shard::CrossMsg{to, s.now + delay, s.next_seq++, std::move(fn)});
}

void Simulator::drain_shard_until(Shard& s, TimePoint limit) {
  while (!s.queue.empty() && s.queue.top().when <= limit) {
    Event ev = s.queue.top();
    s.queue.pop();
    s.now = ev.when;
    ++s.events_processed;
    ev.fn();
  }
  if (s.now < limit) s.now = limit;
}

void Simulator::attach_metrics(obs::MetricsRegistry* registry) {
  registry_ = registry;
  if (registry_ != nullptr) {
    id_epochs_ = registry_->counter("sim.shard.epochs");
    id_events_ = registry_->counter("sim.shard.events");
    id_cross_ = registry_->counter("sim.shard.cross_posts");
  }
}

void Simulator::run_epochs(TimePoint deadline, Duration epoch_us,
                           util::WorkerPool* pool) {
  AN_ENSURE_MSG(!shards_.empty(), "enable_sharding first");
  AN_ENSURE_MSG(epoch_us >= 1, "epoch width must be positive");
  while (now_ < deadline) {
    const TimePoint epoch_end = std::min<TimePoint>(now_ + epoch_us, deadline);
    const std::uint64_t events_before = events_processed();
    const std::uint64_t cross_before = cross_posts_;
    // Parallel region: each shard drains its own queue up to the epoch end.
    // Events may only touch their shard's state, so item i's effects are
    // confined to shards_[i] — the WorkerPool determinism contract.
    const auto drain = [this, epoch_end](std::size_t i) {
      drain_shard_until(shards_[i], epoch_end);
    };
    if (pool != nullptr) {
      pool->run(shards_.size(), drain);
    } else {
      for (std::size_t i = 0; i < shards_.size(); ++i) drain(i);
    }
    // Barrier: flush cross-shard mailboxes in (source shard, seq) order.
    // Messages land no earlier than the next epoch, so the receiving shard
    // has already passed the timestamp and ordering stays deterministic.
    for (std::size_t from = 0; from < shards_.size(); ++from) {
      Shard& src = shards_[from];
      std::stable_sort(src.outbox.begin(), src.outbox.end(),
                       [](const Shard::CrossMsg& a, const Shard::CrossMsg& b) {
                         return a.seq < b.seq;
                       });
      for (auto& msg : src.outbox) {
        Shard& dst = shards_[msg.to];
        const TimePoint when = std::max(msg.when, epoch_end);
        dst.queue.push(Event{when, dst.next_seq++, std::move(msg.fn)});
        ++cross_posts_;
      }
      src.outbox.clear();
    }
    now_ = epoch_end;
    ++epochs_run_;
    if (registry_ != nullptr) {
      registry_->add(id_epochs_);
      registry_->add(id_events_, events_processed() - events_before);
      registry_->add(id_cross_, cross_posts_ - cross_before);
    }
  }
}

}  // namespace accountnet::sim
