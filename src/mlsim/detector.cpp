#include "accountnet/mlsim/detector.hpp"

#include <algorithm>

#include "accountnet/crypto/sha256.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::mlsim {

namespace {

const char* kLabels[] = {"car",        "pedestrian", "bicycle", "truck",
                         "traffic_sign", "bus",      "dog",     "cone"};
constexpr std::size_t kLabelCount = sizeof(kLabels) / sizeof(kLabels[0]);

}  // namespace

Bytes DetectionResult::encode() const {
  wire::Writer w;
  w.varint(objects.size());
  for (const auto& o : objects) {
    w.str(o.label);
    // Fixed-point (1e-4) keeps the encoding byte-exact across platforms.
    w.u32(static_cast<std::uint32_t>(o.confidence * 10000.0 + 0.5));
    w.u32(static_cast<std::uint32_t>(o.x * 10000.0 + 0.5));
    w.u32(static_cast<std::uint32_t>(o.y * 10000.0 + 0.5));
    w.u32(static_cast<std::uint32_t>(o.w * 10000.0 + 0.5));
    w.u32(static_cast<std::uint32_t>(o.h * 10000.0 + 0.5));
  }
  return std::move(w).take();
}

DetectionResult DetectionResult::decode(BytesView bytes) {
  wire::Reader r(bytes);
  DetectionResult out;
  const auto n = r.varint();
  if (n > 1000) throw wire::DecodeError("implausible detection count");
  for (std::uint64_t i = 0; i < n; ++i) {
    Detection d;
    d.label = r.str();
    d.confidence = static_cast<double>(r.u32()) / 10000.0;
    d.x = static_cast<double>(r.u32()) / 10000.0;
    d.y = static_cast<double>(r.u32()) / 10000.0;
    d.w = static_cast<double>(r.u32()) / 10000.0;
    d.h = static_cast<double>(r.u32()) / 10000.0;
    out.objects.push_back(std::move(d));
  }
  r.expect_done();
  return out;
}

ObjectDetectionService::ObjectDetectionService(Config config, std::uint64_t seed)
    : config_(config), latency_rng_(seed) {}

DetectionResult ObjectDetectionService::detect(BytesView image) const {
  // Derive everything from the image digest: same image -> same result.
  const auto digest = crypto::Sha256::hash(image);
  std::uint64_t state = 0;
  for (int i = 0; i < 8; ++i) state = (state << 8) | digest[static_cast<std::size_t>(i)];
  Rng rng(state);

  DetectionResult result;
  const std::size_t count = 1 + static_cast<std::size_t>(rng.uniform(config_.max_objects));
  for (std::size_t i = 0; i < count; ++i) {
    Detection d;
    d.label = kLabels[rng.uniform(kLabelCount)];
    d.confidence = 0.5 + rng.uniform01() * 0.5;
    d.w = 0.02 + rng.uniform01() * 0.3;
    d.h = 0.02 + rng.uniform01() * 0.3;
    d.x = rng.uniform01() * (1.0 - d.w);
    d.y = rng.uniform01() * (1.0 - d.h);
    result.objects.push_back(std::move(d));
  }
  return result;
}

sim::Duration ObjectDetectionService::sample_latency() {
  const double v = latency_rng_.normal(static_cast<double>(config_.latency_mean),
                                       static_cast<double>(config_.latency_stddev));
  return std::max(config_.latency_min, static_cast<sim::Duration>(v));
}

Bytes synthetic_scene_image(std::size_t width, std::size_t height, std::uint64_t seed) {
  // ~0.15 byte/pixel approximates JPEG compression of a road scene.
  const std::size_t size = std::max<std::size_t>(64, width * height * 3 / 20);
  Bytes image(size);
  Rng rng(seed ^ (width * 2654435761ULL) ^ height);
  for (auto& b : image) b = static_cast<std::uint8_t>(rng.next_u64());
  return image;
}

}  // namespace accountnet::mlsim
