#include "accountnet/analysis/bounds.hpp"

#include <cmath>

#include "accountnet/util/ensure.hpp"

namespace accountnet::analysis {

namespace {

/// Generalized binomial C(x, k) for real x >= 0 and small integer k:
/// x (x-1) ... (x-k+1) / k!. Negative intermediate factors (x < k-1) mean
/// "not enough items to choose from"; the paper's algorithm treats these
/// probabilities as zero, which clamping achieves.
double gen_binomial(double x, std::size_t k) {
  double num = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    const double factor = x - static_cast<double>(i);
    if (factor <= 0.0) return 0.0;
    num *= factor;
  }
  double denom = 1.0;
  for (std::size_t i = 2; i <= k; ++i) denom *= static_cast<double>(i);
  return num / denom;
}

}  // namespace

double max_neighborhood_size(std::size_t f, std::size_t d) {
  AN_ENSURE_MSG(f >= 2, "f must be >= 2 for the f-ary bound");
  const double fd = std::pow(static_cast<double>(f), static_cast<double>(d) + 1.0);
  return (fd - static_cast<double>(f)) / (static_cast<double>(f) - 1.0);
}

double expected_neighborhood_size(std::size_t network_size, std::size_t f,
                                  std::size_t d) {
  AN_ENSURE_MSG(network_size >= 2, "need at least two nodes");
  AN_ENSURE_MSG(f >= 1 && d >= 1, "need f >= 1 and d >= 1");
  const double v = static_cast<double>(network_size);
  const double fd = static_cast<double>(f);

  // #iter = (f^d - 1)/(f - 1): internal nodes of a perfect f-ary tree.
  const std::size_t iters =
      f == 1 ? d
             : static_cast<std::size_t>(
                   std::llround((std::pow(fd, static_cast<double>(d)) - 1.0) / (fd - 1.0)));

  double n = 1.0;
  const double denom = gen_binomial(v - 1.0, f);
  for (std::size_t it = 0; it < iters; ++it) {
    if (n >= v) break;  // neighborhood saturated the network
    double delta = 0.0;
    for (std::size_t k = 0; k <= f; ++k) {
      const double p =
          gen_binomial(n - 1.0, k) * gen_binomial(v - n, f - k) / denom;
      delta += static_cast<double>(f - k) * p;
    }
    n += delta;
  }
  return std::min(n, v) - 1.0;
}

double expected_common_nodes(std::size_t network_size, double lambda_i,
                             double lambda_j) {
  AN_ENSURE_MSG(network_size >= 2, "need at least two nodes");
  return lambda_i * lambda_j / (static_cast<double>(network_size) - 1.0);
}

double pm_bound_pair(double lambda_i, double lambda_j, double common_y) {
  AN_ENSURE_MSG(lambda_i > common_y && lambda_j > common_y,
                "common nodes cannot exhaust a neighborhood");
  const double denom = 2.0 * (lambda_i * lambda_i / (lambda_i - common_y) +
                              lambda_j * lambda_j / (lambda_j - common_y));
  return (lambda_i + lambda_j) / denom;
}

double pm_bound_average(std::size_t network_size, double expected_nbh) {
  const double v1 = static_cast<double>(network_size) - 1.0;
  return (v1 - expected_nbh) / (2.0 * v1);
}

double max_neighborhood_for_pm(std::size_t network_size, double pm) {
  return (static_cast<double>(network_size) - 1.0) * (1.0 - 2.0 * pm);
}

std::vector<ParameterChoice> evaluate_parameters(std::size_t network_size, double pm,
                                                 const std::vector<std::size_t>& fs,
                                                 const std::vector<std::size_t>& ds,
                                                 double churn_margin) {
  std::vector<ParameterChoice> out;
  for (const auto f : fs) {
    for (const auto d : ds) {
      ParameterChoice c;
      c.f = f;
      c.d = d;
      c.expected_nbh = expected_neighborhood_size(network_size, f, d);
      c.expected_common = expected_common_nodes(network_size, c.expected_nbh, c.expected_nbh);
      c.pm_threshold = pm_bound_average(network_size, c.expected_nbh);
      c.tolerates_following = pm < c.pm_threshold;
      // Case (ii): the benign side's neighborhood (shrunk by a churn margin)
      // must outnumber the separated coalition of p_m |V| nodes.
      const double shrunk = c.expected_nbh * (1.0 - churn_margin);
      c.tolerates_separate = shrunk > pm * static_cast<double>(network_size);
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace accountnet::analysis
