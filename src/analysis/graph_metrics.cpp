#include "accountnet/analysis/graph_metrics.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>

#include "accountnet/util/rng.hpp"

namespace accountnet::analysis {

std::vector<std::size_t> bfs_distances(const Adjacency& adjacency, std::size_t source) {
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> dist(adjacency.size(), kInf);
  std::queue<std::size_t> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (const std::size_t v : adjacency[u]) {
      if (dist[v] == kInf) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

GraphMetrics compute_graph_metrics(const Adjacency& adjacency,
                                   std::size_t exact_threshold,
                                   std::size_t sample_sources, std::uint64_t seed) {
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  GraphMetrics m;
  const std::size_t n = adjacency.size();
  if (n == 0) return m;

  // Degree + clustering.
  double clustering_sum = 0.0;
  std::size_t clustering_nodes = 0;
  std::uint64_t degree_sum = 0;
  auto has_edge = [&](std::size_t u, std::size_t v) {
    return std::binary_search(adjacency[u].begin(), adjacency[u].end(), v);
  };
  for (std::size_t i = 0; i < n; ++i) {
    degree_sum += adjacency[i].size();
    const auto& peers = adjacency[i];
    const std::size_t k = peers.size();
    if (k < 2) continue;
    std::size_t links = 0;
    for (const std::size_t u : peers) {
      for (const std::size_t v : peers) {
        if (u != v && has_edge(u, v)) ++links;
      }
    }
    clustering_sum += static_cast<double>(links) / static_cast<double>(k * (k - 1));
    ++clustering_nodes;
  }
  m.avg_out_degree = static_cast<double>(degree_sum) / static_cast<double>(n);
  m.avg_clustering = clustering_nodes ? clustering_sum / static_cast<double>(clustering_nodes) : 0.0;

  // Diameter: exact for small graphs, sampled sources otherwise.
  std::vector<std::size_t> sources;
  if (n <= exact_threshold) {
    sources.resize(n);
    for (std::size_t i = 0; i < n; ++i) sources[i] = i;
  } else {
    Rng rng(seed);
    sources = rng.sample_indices(n, std::min(sample_sources, n));
  }
  std::size_t diameter = 0;
  for (const std::size_t s : sources) {
    const auto dist = bfs_distances(adjacency, s);
    for (const std::size_t d : dist) {
      if (d == kInf) {
        ++m.unreachable_pairs;
      } else {
        diameter = std::max(diameter, d);
      }
    }
  }
  m.diameter = static_cast<double>(diameter);
  return m;
}

}  // namespace accountnet::analysis
