#include "accountnet/crypto/ed25519.hpp"

#include <cstring>

#include "accountnet/crypto/ge25519.hpp"
#include "accountnet/crypto/sc25519.hpp"
#include "accountnet/crypto/sha512.hpp"
#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

namespace {

struct ExpandedSecret {
  Scalar s;                              // clamped scalar
  std::array<std::uint8_t, 32> prefix;   // second half of SHA-512(seed)
};

ExpandedSecret expand_seed(BytesView seed32) {
  AN_ENSURE_MSG(seed32.size() == 32, "ed25519 seed must be 32 bytes");
  const auto h = Sha512::hash(seed32);
  std::array<std::uint8_t, 32> scalar_bytes;
  std::memcpy(scalar_bytes.data(), h.data(), 32);
  scalar_bytes[0] &= 0xf8;
  scalar_bytes[31] &= 0x7f;
  scalar_bytes[31] |= 0x40;
  ExpandedSecret out;
  // The clamped value can exceed L; reduce so group math sees a canonical
  // scalar (s*B is unchanged because reduction is mod the group order).
  out.s = Scalar::reduce(scalar_bytes);
  std::memcpy(out.prefix.data(), h.data() + 32, 32);
  return out;
}

}  // namespace

Ed25519KeyPair ed25519_keypair_from_seed(BytesView seed32) {
  const auto expanded = expand_seed(seed32);
  Ed25519KeyPair kp;
  std::memcpy(kp.seed.data(), seed32.data(), 32);
  kp.public_key = ge_scalar_mul_base(expanded.s.bytes()).to_bytes();
  return kp;
}

std::array<std::uint8_t, 64> ed25519_sign(const Ed25519KeyPair& kp, BytesView msg) {
  const auto expanded = expand_seed(kp.seed);

  Sha512 h_r;
  h_r.update(expanded.prefix);
  h_r.update(msg);
  const Scalar r = Scalar::reduce(h_r.finish());

  const auto r_enc = ge_scalar_mul_base(r.bytes()).to_bytes();

  Sha512 h_k;
  h_k.update(r_enc);
  h_k.update(kp.public_key);
  h_k.update(msg);
  const Scalar k = Scalar::reduce(h_k.finish());

  const Scalar s = Scalar::muladd(k, expanded.s, r);

  std::array<std::uint8_t, 64> sig;
  std::memcpy(sig.data(), r_enc.data(), 32);
  std::memcpy(sig.data() + 32, s.bytes().data(), 32);
  return sig;
}

bool ed25519_verify(BytesView public_key32, BytesView msg, BytesView signature64) {
  if (public_key32.size() != 32 || signature64.size() != 64) return false;

  const auto a = Ge25519::from_bytes(public_key32);
  if (!a) return false;
  const auto r = Ge25519::from_bytes(signature64.first(32));
  if (!r) return false;
  Scalar s;
  if (!Scalar::from_canonical(signature64.subspan(32), s)) return false;

  Sha512 h_k;
  h_k.update(signature64.first(32));
  h_k.update(public_key32);
  h_k.update(msg);
  const Scalar k = Scalar::reduce(h_k.finish());

  // Check S*B == R + k*A (equivalent to the cofactorless RFC equation).
  const Ge25519 lhs = ge_scalar_mul_base(s.bytes());
  const Ge25519 rhs = r->add(a->scalar_mul(k.bytes()));
  return lhs == rhs;
}

}  // namespace accountnet::crypto
