#include "accountnet/crypto/vrf.hpp"

#include <cstring>

#include "accountnet/crypto/ge25519.hpp"
#include "accountnet/crypto/sc25519.hpp"
#include "accountnet/crypto/sha512.hpp"
#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

namespace {

constexpr std::uint8_t kSuite = 0x03;  // ECVRF-EDWARDS25519-SHA512-TAI
constexpr std::size_t kChallengeLen = 16;

struct ExpandedSecret {
  Scalar x;
  std::array<std::uint8_t, 32> nonce_key;  // SHA-512(seed)[32..63]
};

ExpandedSecret expand(const Ed25519KeyPair& kp) {
  const auto h = Sha512::hash(kp.seed);
  std::array<std::uint8_t, 32> xb;
  std::memcpy(xb.data(), h.data(), 32);
  xb[0] &= 0xf8;
  xb[31] &= 0x7f;
  xb[31] |= 0x40;
  ExpandedSecret out;
  out.x = Scalar::reduce(xb);
  std::memcpy(out.nonce_key.data(), h.data() + 32, 32);
  return out;
}

/// RFC 9381 §5.4.1.1 ECVRF_encode_to_curve_try_and_increment.
std::optional<Ge25519> hash_to_curve_tai(BytesView pk, BytesView alpha) {
  for (unsigned ctr = 0; ctr < 256; ++ctr) {
    Sha512 h;
    const std::uint8_t front[2] = {kSuite, 0x01};
    h.update(BytesView(front, 2));
    h.update(pk);
    h.update(alpha);
    const std::uint8_t back[2] = {static_cast<std::uint8_t>(ctr), 0x00};
    h.update(BytesView(back, 2));
    const auto digest = h.finish();
    auto candidate = Ge25519::from_bytes(BytesView(digest.data(), 32));
    if (candidate) {
      const Ge25519 point = candidate->mul_by_cofactor();
      if (!point.is_identity()) return point;
    }
  }
  return std::nullopt;  // cryptographically unreachable
}

/// RFC 9381 §5.4.2.2 nonce = SHA-512(hashed_sk[32..63] || H) mod L.
Scalar make_nonce(const ExpandedSecret& sk, const std::array<std::uint8_t, 32>& h_enc) {
  Sha512 h;
  h.update(sk.nonce_key);
  h.update(h_enc);
  return Scalar::reduce(h.finish());
}

/// RFC 9381 §5.4.3 challenge over the five points (PK, H, Gamma, U, V).
std::array<std::uint8_t, kChallengeLen> make_challenge(
    BytesView pk, const std::array<std::uint8_t, 32>& h_enc,
    const std::array<std::uint8_t, 32>& gamma_enc,
    const std::array<std::uint8_t, 32>& u_enc,
    const std::array<std::uint8_t, 32>& v_enc) {
  Sha512 h;
  const std::uint8_t front[2] = {kSuite, 0x02};
  h.update(BytesView(front, 2));
  h.update(pk);
  h.update(h_enc);
  h.update(gamma_enc);
  h.update(u_enc);
  h.update(v_enc);
  const std::uint8_t back[1] = {0x00};
  h.update(BytesView(back, 1));
  const auto digest = h.finish();
  std::array<std::uint8_t, kChallengeLen> c{};
  std::memcpy(c.data(), digest.data(), kChallengeLen);
  return c;
}

Scalar challenge_scalar(const std::array<std::uint8_t, kChallengeLen>& c) {
  return Scalar::reduce(BytesView(c.data(), c.size()));
}

}  // namespace

VrfProof vrf_prove(const Ed25519KeyPair& kp, BytesView alpha) {
  const auto sk = expand(kp);
  const auto h_point = hash_to_curve_tai(kp.public_key, alpha);
  AN_ENSURE_MSG(h_point.has_value(), "hash_to_curve failed");
  const auto h_enc = h_point->to_bytes();

  const Ge25519 gamma = h_point->scalar_mul(sk.x.bytes());
  const auto gamma_enc = gamma.to_bytes();

  const Scalar k = make_nonce(sk, h_enc);
  const auto u_enc = ge_scalar_mul_base(k.bytes()).to_bytes();
  const auto v_enc = h_point->scalar_mul(k.bytes()).to_bytes();

  const auto c = make_challenge(kp.public_key, h_enc, gamma_enc, u_enc, v_enc);
  const Scalar s = Scalar::muladd(challenge_scalar(c), sk.x, k);

  VrfProof proof{};
  std::memcpy(proof.data(), gamma_enc.data(), 32);
  std::memcpy(proof.data() + 32, c.data(), kChallengeLen);
  std::memcpy(proof.data() + 48, s.bytes().data(), 32);
  return proof;
}

VrfOutput vrf_proof_to_hash(const VrfProof& proof) {
  const auto gamma = Ge25519::from_bytes(BytesView(proof.data(), 32));
  AN_ENSURE_MSG(gamma.has_value(), "vrf_proof_to_hash: bad Gamma encoding");
  const auto cofactor_gamma = gamma->mul_by_cofactor().to_bytes();
  Sha512 h;
  const std::uint8_t front[2] = {kSuite, 0x03};
  h.update(BytesView(front, 2));
  h.update(cofactor_gamma);
  const std::uint8_t back[1] = {0x00};
  h.update(BytesView(back, 1));
  return h.finish();
}

std::optional<VrfOutput> vrf_verify(BytesView public_key32, BytesView alpha,
                                    BytesView proof80) {
  if (public_key32.size() != 32 || proof80.size() != kVrfProofSize) return std::nullopt;

  const auto y = Ge25519::from_bytes(public_key32);
  if (!y) return std::nullopt;
  const auto gamma = Ge25519::from_bytes(proof80.first(32));
  if (!gamma) return std::nullopt;

  std::array<std::uint8_t, kChallengeLen> c{};
  std::memcpy(c.data(), proof80.data() + 32, kChallengeLen);
  Scalar s;
  if (!Scalar::from_canonical(proof80.subspan(48), s)) return std::nullopt;

  const auto h_point = hash_to_curve_tai(public_key32, alpha);
  if (!h_point) return std::nullopt;
  const auto h_enc = h_point->to_bytes();

  const Scalar c_scalar = challenge_scalar(c);

  // U = s*B - c*Y ;  V = s*H - c*Gamma.
  const Ge25519 u = ge_scalar_mul_base(s.bytes()).sub(y->scalar_mul(c_scalar.bytes()));
  const Ge25519 v = h_point->scalar_mul(s.bytes()).sub(gamma->scalar_mul(c_scalar.bytes()));

  const auto expected =
      make_challenge(public_key32, h_enc, gamma->to_bytes(), u.to_bytes(), v.to_bytes());
  if (!ct_equal(BytesView(expected.data(), expected.size()), BytesView(c.data(), c.size()))) {
    return std::nullopt;
  }

  VrfProof proof{};
  std::memcpy(proof.data(), proof80.data(), kVrfProofSize);
  return vrf_proof_to_hash(proof);
}

}  // namespace accountnet::crypto
