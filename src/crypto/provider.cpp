#include "accountnet/crypto/provider.hpp"

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "accountnet/crypto/ed25519.hpp"
#include "accountnet/crypto/sha256.hpp"
#include "accountnet/crypto/sha512.hpp"
#include "accountnet/crypto/vrf.hpp"
#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

namespace {

VerifyVerdict run_verify_job(const CryptoProvider& provider, const VerifyJob& job) {
  VerifyVerdict v;
  if (job.kind == VerifyJob::Kind::kSignature) {
    v.ok = provider.verify(job.pk, job.msg, job.sig);
  } else {
    const auto beta = provider.vrf_verify(job.pk, job.msg, job.sig);
    v.ok = beta.has_value();
    if (beta) v.vrf_output = *beta;
  }
  return v;
}

}  // namespace

void CryptoProvider::verify_batch(std::span<const VerifyJob> jobs,
                                  std::span<VerifyVerdict> verdicts) const {
  AN_ENSURE_MSG(jobs.size() == verdicts.size(), "verify_batch verdict slot mismatch");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    verdicts[i] = run_verify_job(*this, jobs[i]);
  }
}

namespace {

// ---------------------------------------------------------------------------
// Real backend: Ed25519 + ECVRF.
// ---------------------------------------------------------------------------

class RealSigner final : public Signer {
 public:
  explicit RealSigner(BytesView seed32) : kp_(ed25519_keypair_from_seed(seed32)) {}

  const PublicKeyBytes& public_key() const override { return kp_.public_key; }

  Bytes sign(BytesView msg) const override {
    const auto sig = ed25519_sign(kp_, msg);
    return Bytes(sig.begin(), sig.end());
  }

  Bytes vrf_prove(BytesView alpha) const override {
    const auto proof = crypto::vrf_prove(kp_, alpha);
    return Bytes(proof.begin(), proof.end());
  }

  std::array<std::uint8_t, 64> vrf_output(BytesView alpha) const override {
    const auto proof = crypto::vrf_prove(kp_, alpha);
    return vrf_proof_to_hash(proof);
  }

 private:
  Ed25519KeyPair kp_;
};

class RealCryptoProvider final : public CryptoProvider {
 public:
  std::unique_ptr<Signer> make_signer(BytesView seed32) const override {
    return std::make_unique<RealSigner>(seed32);
  }

  bool verify(const PublicKeyBytes& pk, BytesView msg, BytesView sig) const override {
    return ed25519_verify(pk, msg, sig);
  }

  std::optional<std::array<std::uint8_t, 64>> vrf_verify(const PublicKeyBytes& pk,
                                                         BytesView alpha,
                                                         BytesView proof) const override {
    return crypto::vrf_verify(pk, alpha, proof);
  }

  // Fans jobs across a worker pool in fixed contiguous chunks; each worker
  // writes only its own disjoint verdict slots, so the result is independent
  // of thread scheduling (the determinism contract in provider.hpp). Small
  // batches and single-core hosts stay sequential.
  void verify_batch(std::span<const VerifyJob> jobs,
                    std::span<VerifyVerdict> verdicts) const override {
    AN_ENSURE_MSG(jobs.size() == verdicts.size(), "verify_batch verdict slot mismatch");
    constexpr std::size_t kMinJobsPerWorker = 4;
    constexpr std::size_t kMaxWorkers = 8;
    static const std::size_t hw =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    const std::size_t n = jobs.size();
    const std::size_t workers = std::min({hw, n / kMinJobsPerWorker, kMaxWorkers});
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) verdicts[i] = run_verify_job(*this, jobs[i]);
      return;
    }
    const std::size_t chunk = (n + workers - 1) / workers;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t begin = w * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      if (begin >= end) break;
      pool.emplace_back([this, jobs, verdicts, begin, end] {
        for (std::size_t i = begin; i < end; ++i) {
          verdicts[i] = run_verify_job(*this, jobs[i]);
        }
      });
    }
    for (auto& t : pool) t.join();
  }

  const char* name() const override { return "real(ed25519+ecvrf)"; }
};

// ---------------------------------------------------------------------------
// Fast backend: publicly-computable keyed hashes. Anyone can recompute both
// the "signature" and the "VRF" from the public key, so verification always
// succeeds for honestly-formed values and fails for tampered ones — the shape
// the protocol logic needs — while forgery resistance is explicitly absent.
// ---------------------------------------------------------------------------

PublicKeyBytes fast_public_key(BytesView seed32) {
  const Bytes material = concat(bytes_of("fastpk"), seed32);
  const auto digest = Sha256::hash(material);
  PublicKeyBytes pk;
  std::memcpy(pk.data(), digest.data(), 32);
  return pk;
}

Bytes fast_sign(const PublicKeyBytes& pk, BytesView msg) {
  const Bytes material = concat(bytes_of("fastsig"), pk, msg);
  const auto digest = Sha256::hash(material);
  return Bytes(digest.begin(), digest.end());
}

std::array<std::uint8_t, 64> fast_vrf_output(const PublicKeyBytes& pk, BytesView alpha) {
  const Bytes material = concat(bytes_of("fastvrf"), pk, alpha);
  return Sha512::hash(material);
}

class FastSigner final : public Signer {
 public:
  explicit FastSigner(BytesView seed32) : pk_(fast_public_key(seed32)) {}

  const PublicKeyBytes& public_key() const override { return pk_; }

  Bytes sign(BytesView msg) const override { return fast_sign(pk_, msg); }

  Bytes vrf_prove(BytesView alpha) const override {
    // The "proof" is the output itself; verification recomputes it.
    const auto out = fast_vrf_output(pk_, alpha);
    return Bytes(out.begin(), out.end());
  }

  std::array<std::uint8_t, 64> vrf_output(BytesView alpha) const override {
    return fast_vrf_output(pk_, alpha);
  }

 private:
  PublicKeyBytes pk_;
};

class FastCryptoProvider final : public CryptoProvider {
 public:
  std::unique_ptr<Signer> make_signer(BytesView seed32) const override {
    return std::make_unique<FastSigner>(seed32);
  }

  bool verify(const PublicKeyBytes& pk, BytesView msg, BytesView sig) const override {
    const Bytes expected = fast_sign(pk, msg);
    return ct_equal(expected, sig);
  }

  std::optional<std::array<std::uint8_t, 64>> vrf_verify(const PublicKeyBytes& pk,
                                                         BytesView alpha,
                                                         BytesView proof) const override {
    const auto expected = fast_vrf_output(pk, alpha);
    if (!ct_equal(BytesView(expected.data(), expected.size()), proof)) return std::nullopt;
    return expected;
  }

  const char* name() const override { return "fast(keyed-sha2)"; }
};

}  // namespace

std::unique_ptr<CryptoProvider> make_real_crypto() {
  return std::make_unique<RealCryptoProvider>();
}

std::unique_ptr<CryptoProvider> make_fast_crypto() {
  return std::make_unique<FastCryptoProvider>();
}

}  // namespace accountnet::crypto
