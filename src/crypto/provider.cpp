#include "accountnet/crypto/provider.hpp"

#include <cstring>

#include "accountnet/crypto/ed25519.hpp"
#include "accountnet/crypto/sha256.hpp"
#include "accountnet/crypto/sha512.hpp"
#include "accountnet/crypto/vrf.hpp"
#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

namespace {

// ---------------------------------------------------------------------------
// Real backend: Ed25519 + ECVRF.
// ---------------------------------------------------------------------------

class RealSigner final : public Signer {
 public:
  explicit RealSigner(BytesView seed32) : kp_(ed25519_keypair_from_seed(seed32)) {}

  const PublicKeyBytes& public_key() const override { return kp_.public_key; }

  Bytes sign(BytesView msg) const override {
    const auto sig = ed25519_sign(kp_, msg);
    return Bytes(sig.begin(), sig.end());
  }

  Bytes vrf_prove(BytesView alpha) const override {
    const auto proof = crypto::vrf_prove(kp_, alpha);
    return Bytes(proof.begin(), proof.end());
  }

  std::array<std::uint8_t, 64> vrf_output(BytesView alpha) const override {
    const auto proof = crypto::vrf_prove(kp_, alpha);
    return vrf_proof_to_hash(proof);
  }

 private:
  Ed25519KeyPair kp_;
};

class RealCryptoProvider final : public CryptoProvider {
 public:
  std::unique_ptr<Signer> make_signer(BytesView seed32) const override {
    return std::make_unique<RealSigner>(seed32);
  }

  bool verify(const PublicKeyBytes& pk, BytesView msg, BytesView sig) const override {
    return ed25519_verify(pk, msg, sig);
  }

  std::optional<std::array<std::uint8_t, 64>> vrf_verify(const PublicKeyBytes& pk,
                                                         BytesView alpha,
                                                         BytesView proof) const override {
    return crypto::vrf_verify(pk, alpha, proof);
  }

  const char* name() const override { return "real(ed25519+ecvrf)"; }
};

// ---------------------------------------------------------------------------
// Fast backend: publicly-computable keyed hashes. Anyone can recompute both
// the "signature" and the "VRF" from the public key, so verification always
// succeeds for honestly-formed values and fails for tampered ones — the shape
// the protocol logic needs — while forgery resistance is explicitly absent.
// ---------------------------------------------------------------------------

PublicKeyBytes fast_public_key(BytesView seed32) {
  const Bytes material = concat(bytes_of("fastpk"), seed32);
  const auto digest = Sha256::hash(material);
  PublicKeyBytes pk;
  std::memcpy(pk.data(), digest.data(), 32);
  return pk;
}

Bytes fast_sign(const PublicKeyBytes& pk, BytesView msg) {
  const Bytes material = concat(bytes_of("fastsig"), pk, msg);
  const auto digest = Sha256::hash(material);
  return Bytes(digest.begin(), digest.end());
}

std::array<std::uint8_t, 64> fast_vrf_output(const PublicKeyBytes& pk, BytesView alpha) {
  const Bytes material = concat(bytes_of("fastvrf"), pk, alpha);
  return Sha512::hash(material);
}

class FastSigner final : public Signer {
 public:
  explicit FastSigner(BytesView seed32) : pk_(fast_public_key(seed32)) {}

  const PublicKeyBytes& public_key() const override { return pk_; }

  Bytes sign(BytesView msg) const override { return fast_sign(pk_, msg); }

  Bytes vrf_prove(BytesView alpha) const override {
    // The "proof" is the output itself; verification recomputes it.
    const auto out = fast_vrf_output(pk_, alpha);
    return Bytes(out.begin(), out.end());
  }

  std::array<std::uint8_t, 64> vrf_output(BytesView alpha) const override {
    return fast_vrf_output(pk_, alpha);
  }

 private:
  PublicKeyBytes pk_;
};

class FastCryptoProvider final : public CryptoProvider {
 public:
  std::unique_ptr<Signer> make_signer(BytesView seed32) const override {
    return std::make_unique<FastSigner>(seed32);
  }

  bool verify(const PublicKeyBytes& pk, BytesView msg, BytesView sig) const override {
    const Bytes expected = fast_sign(pk, msg);
    return ct_equal(expected, sig);
  }

  std::optional<std::array<std::uint8_t, 64>> vrf_verify(const PublicKeyBytes& pk,
                                                         BytesView alpha,
                                                         BytesView proof) const override {
    const auto expected = fast_vrf_output(pk, alpha);
    if (!ct_equal(BytesView(expected.data(), expected.size()), proof)) return std::nullopt;
    return expected;
  }

  const char* name() const override { return "fast(keyed-sha2)"; }
};

}  // namespace

std::unique_ptr<CryptoProvider> make_real_crypto() {
  return std::make_unique<RealCryptoProvider>();
}

std::unique_ptr<CryptoProvider> make_fast_crypto() {
  return std::make_unique<FastCryptoProvider>();
}

}  // namespace accountnet::crypto
