#include "accountnet/crypto/timed.hpp"

#include <utility>

#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

namespace {

/// Timer + call-count ids for the six primitives.
struct CryptoMetricIds {
  explicit CryptoMetricIds(obs::MetricsRegistry& r)
      : keygen(r.timer("crypto.keygen")),
        keygen_calls(r.counter("crypto.keygen.calls")),
        sign(r.timer("crypto.sign")),
        sign_calls(r.counter("crypto.sign.calls")),
        vrf_prove(r.timer("crypto.vrf_prove")),
        vrf_prove_calls(r.counter("crypto.vrf_prove.calls")),
        vrf_output(r.timer("crypto.vrf_output")),
        vrf_output_calls(r.counter("crypto.vrf_output.calls")),
        verify(r.timer("crypto.verify")),
        verify_calls(r.counter("crypto.verify.calls")),
        vrf_verify(r.timer("crypto.vrf_verify")),
        vrf_verify_calls(r.counter("crypto.vrf_verify.calls")),
        verify_batch(r.timer("crypto.verify_batch")),
        verify_batch_calls(r.counter("crypto.verify_batch.calls")),
        verify_batch_jobs(r.counter("crypto.verify_batch.jobs")) {}

  obs::MetricId keygen, keygen_calls;
  obs::MetricId sign, sign_calls;
  obs::MetricId vrf_prove, vrf_prove_calls;
  obs::MetricId vrf_output, vrf_output_calls;
  obs::MetricId verify, verify_calls;
  obs::MetricId vrf_verify, vrf_verify_calls;
  obs::MetricId verify_batch, verify_batch_calls, verify_batch_jobs;
};

class TimedSigner final : public Signer {
 public:
  TimedSigner(std::unique_ptr<Signer> inner, obs::MetricsRegistry& registry,
              const CryptoMetricIds& ids)
      : inner_(std::move(inner)), registry_(registry), ids_(ids) {}

  const PublicKeyBytes& public_key() const override { return inner_->public_key(); }

  Bytes sign(BytesView msg) const override {
    registry_.add(ids_.sign_calls);
    obs::ScopedTimer t(&registry_, ids_.sign);
    return inner_->sign(msg);
  }

  Bytes vrf_prove(BytesView alpha) const override {
    registry_.add(ids_.vrf_prove_calls);
    obs::ScopedTimer t(&registry_, ids_.vrf_prove);
    return inner_->vrf_prove(alpha);
  }

  std::array<std::uint8_t, 64> vrf_output(BytesView alpha) const override {
    registry_.add(ids_.vrf_output_calls);
    obs::ScopedTimer t(&registry_, ids_.vrf_output);
    return inner_->vrf_output(alpha);
  }

 private:
  std::unique_ptr<Signer> inner_;
  obs::MetricsRegistry& registry_;
  const CryptoMetricIds& ids_;  ///< owned by the TimedProvider
};

class TimedProvider final : public CryptoProvider {
 public:
  TimedProvider(std::unique_ptr<CryptoProvider> inner, obs::MetricsRegistry& registry)
      : inner_(std::move(inner)), registry_(registry), ids_(registry) {}

  std::unique_ptr<Signer> make_signer(BytesView seed32) const override {
    registry_.add(ids_.keygen_calls);
    std::unique_ptr<Signer> signer;
    {
      obs::ScopedTimer t(&registry_, ids_.keygen);
      signer = inner_->make_signer(seed32);
    }
    return std::make_unique<TimedSigner>(std::move(signer), registry_, ids_);
  }

  bool verify(const PublicKeyBytes& pk, BytesView msg, BytesView sig) const override {
    registry_.add(ids_.verify_calls);
    obs::ScopedTimer t(&registry_, ids_.verify);
    return inner_->verify(pk, msg, sig);
  }

  std::optional<std::array<std::uint8_t, 64>> vrf_verify(
      const PublicKeyBytes& pk, BytesView alpha, BytesView proof) const override {
    registry_.add(ids_.vrf_verify_calls);
    obs::ScopedTimer t(&registry_, ids_.vrf_verify);
    return inner_->vrf_verify(pk, alpha, proof);
  }

  // Forwarded explicitly so the inner backend's parallel fan-out is reached;
  // the base-class default would resolve jobs through this wrapper's
  // per-primitive calls instead.
  void verify_batch(std::span<const VerifyJob> jobs,
                    std::span<VerifyVerdict> verdicts) const override {
    registry_.add(ids_.verify_batch_calls);
    registry_.add(ids_.verify_batch_jobs, jobs.size());
    obs::ScopedTimer t(&registry_, ids_.verify_batch);
    inner_->verify_batch(jobs, verdicts);
  }

  const char* name() const override { return inner_->name(); }

 private:
  std::unique_ptr<CryptoProvider> inner_;
  obs::MetricsRegistry& registry_;
  CryptoMetricIds ids_;
};

}  // namespace

std::unique_ptr<CryptoProvider> make_timed_crypto(std::unique_ptr<CryptoProvider> inner,
                                                  obs::MetricsRegistry& registry) {
  AN_ENSURE(inner != nullptr);
  return std::make_unique<TimedProvider>(std::move(inner), registry);
}

}  // namespace accountnet::crypto
