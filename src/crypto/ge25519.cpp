#include "accountnet/crypto/ge25519.hpp"

#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

Ge25519 Ge25519::identity() {
  return Ge25519(Fe25519::zero(), Fe25519::one(), Fe25519::one(), Fe25519::zero());
}

const Ge25519& Ge25519::base_point() {
  // RFC 8032: B has y = 4/5 (mod p) and positive x.
  static const Ge25519 b = [] {
    auto pt = Ge25519::from_bytes(
        from_hex("5866666666666666666666666666666666666666666666666666666666666666"));
    AN_ENSURE_MSG(pt.has_value(), "base point decompression failed");
    return *pt;
  }();
  return b;
}

std::optional<Ge25519> Ge25519::from_bytes(BytesView b32) {
  if (b32.size() != 32) return std::nullopt;
  const bool sign = (b32[31] & 0x80) != 0;
  const Fe25519 y = Fe25519::from_bytes(b32);  // masks the sign bit

  // Recover x from x^2 = (y^2 - 1) / (d y^2 + 1).
  const Fe25519 y2 = y.square();
  const Fe25519 u = y2 - Fe25519::one();
  const Fe25519 v = fe_edwards_d() * y2 + Fe25519::one();

  // Candidate root: x = u v^3 (u v^7)^((p-5)/8).
  const Fe25519 v3 = v.square() * v;
  const Fe25519 v7 = v3.square() * v;
  Fe25519 x = u * v3 * (u * v7).pow22523();

  const Fe25519 vxx = v * x.square();
  if (!(vxx == u)) {
    if (vxx == u.negate()) {
      x = x * fe_sqrt_m1();
    } else {
      return std::nullopt;  // not a square: not on the curve
    }
  }
  if (x.is_zero() && sign) return std::nullopt;  // -0 is not canonical
  if (x.is_negative() != sign) x = x.negate();

  return Ge25519(x, y, Fe25519::one(), x * y);
}

std::array<std::uint8_t, 32> Ge25519::to_bytes() const {
  const Fe25519 zinv = z_.invert();
  const Fe25519 x = x_ * zinv;
  const Fe25519 y = y_ * zinv;
  auto out = y.to_bytes();
  if (x.is_negative()) out[31] |= 0x80;
  return out;
}

Ge25519 Ge25519::add(const Ge25519& rhs) const {
  // EFD "add-2008-hwcd-3" for a = -1.
  const Fe25519 a = (y_ - x_) * (rhs.y_ - rhs.x_);
  const Fe25519 b = (y_ + x_) * (rhs.y_ + rhs.x_);
  const Fe25519 c = t_ * fe_edwards_2d() * rhs.t_;
  const Fe25519 d = (z_ + z_) * rhs.z_;
  const Fe25519 e = b - a;
  const Fe25519 f = d - c;
  const Fe25519 g = d + c;
  const Fe25519 h = b + a;
  return Ge25519(e * f, g * h, f * g, e * h);
}

Ge25519 Ge25519::dbl() const {
  // EFD "dbl-2008-hwcd" for a = -1.
  const Fe25519 a = x_.square();
  const Fe25519 b = y_.square();
  const Fe25519 c = z_.square() + z_.square();
  const Fe25519 d = a.negate();
  const Fe25519 e = (x_ + y_).square() - a - b;
  const Fe25519 g = d + b;
  const Fe25519 f = g - c;
  const Fe25519 h = d - b;
  return Ge25519(e * f, g * h, f * g, e * h);
}

Ge25519 Ge25519::negate() const {
  return Ge25519(x_.negate(), y_, z_, t_.negate());
}

Ge25519 Ge25519::scalar_mul(const std::array<std::uint8_t, 32>& scalar_le) const {
  // 4-bit fixed window, MSB-first. Not constant-time (research artifact).
  std::array<Ge25519, 16> table{
      identity(), identity(), identity(), identity(), identity(), identity(),
      identity(), identity(), identity(), identity(), identity(), identity(),
      identity(), identity(), identity(), identity()};
  table[1] = *this;
  for (int i = 2; i < 16; ++i) table[static_cast<std::size_t>(i)] = table[static_cast<std::size_t>(i - 1)].add(*this);

  Ge25519 acc = identity();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int half = 1; half >= 0; --half) {
      const std::uint8_t nibble =
          half ? (scalar_le[static_cast<std::size_t>(byte)] >> 4) : (scalar_le[static_cast<std::size_t>(byte)] & 0x0f);
      if (started) {
        acc = acc.dbl().dbl().dbl().dbl();
      }
      if (nibble != 0) {
        acc = started ? acc.add(table[nibble]) : table[nibble];
        started = true;
      } else if (!started) {
        continue;  // skip leading zeros entirely
      }
    }
  }
  return started ? acc : identity();
}

Ge25519 Ge25519::mul_by_cofactor() const {
  return dbl().dbl().dbl();
}

bool Ge25519::is_identity() const {
  // (0 : Z : Z) encodes the identity.
  return x_.is_zero() && y_ == z_;
}

bool Ge25519::operator==(const Ge25519& rhs) const {
  // Projective equality: X1 Z2 == X2 Z1 and Y1 Z2 == Y2 Z1.
  return (x_ * rhs.z_ == rhs.x_ * z_) && (y_ * rhs.z_ == rhs.y_ * z_);
}

Ge25519 ge_scalar_mul_base(const std::array<std::uint8_t, 32>& scalar_le) {
  return Ge25519::base_point().scalar_mul(scalar_le);
}

}  // namespace accountnet::crypto
