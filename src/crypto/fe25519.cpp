#include "accountnet/crypto/fe25519.hpp"

#include <cstring>

#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

}  // namespace

Fe25519 Fe25519::one() {
  return from_u64(1);
}

Fe25519 Fe25519::from_u64(std::uint64_t v) {
  Fe25519 r;
  r.limbs_[0] = v & kMask51;
  r.limbs_[1] = v >> 51;
  return r;
}

Fe25519 Fe25519::from_bytes(BytesView b32) {
  AN_ENSURE_MSG(b32.size() == 32, "Fe25519::from_bytes needs 32 bytes");
  auto load64 = [&](std::size_t off) {
    u64 v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | b32[off + static_cast<std::size_t>(i)];
    return v;
  };
  const u64 q0 = load64(0);
  const u64 q1 = load64(8);
  const u64 q2 = load64(16);
  const u64 q3 = load64(24);
  Fe25519 r;
  r.limbs_[0] = q0 & kMask51;
  r.limbs_[1] = ((q0 >> 51) | (q1 << 13)) & kMask51;
  r.limbs_[2] = ((q1 >> 38) | (q2 << 26)) & kMask51;
  r.limbs_[3] = ((q2 >> 25) | (q3 << 39)) & kMask51;
  r.limbs_[4] = (q3 >> 12) & kMask51;  // drops the sign/top bit
  return r;
}

void Fe25519::carry() {
  u64 c;
  c = limbs_[0] >> 51; limbs_[0] &= kMask51; limbs_[1] += c;
  c = limbs_[1] >> 51; limbs_[1] &= kMask51; limbs_[2] += c;
  c = limbs_[2] >> 51; limbs_[2] &= kMask51; limbs_[3] += c;
  c = limbs_[3] >> 51; limbs_[3] &= kMask51; limbs_[4] += c;
  c = limbs_[4] >> 51; limbs_[4] &= kMask51; limbs_[0] += 19 * c;
  c = limbs_[0] >> 51; limbs_[0] &= kMask51; limbs_[1] += c;
}

std::array<std::uint8_t, 32> Fe25519::to_bytes() const {
  Fe25519 t = *this;
  t.carry();
  t.carry();
  // Freeze to the canonical representative: compute q = floor((v + 19) / p)
  // (0 or 1) by propagating (t + 19) through the limbs, then add 19*q and mask.
  u64 q = (t.limbs_[0] + 19) >> 51;
  q = (t.limbs_[1] + q) >> 51;
  q = (t.limbs_[2] + q) >> 51;
  q = (t.limbs_[3] + q) >> 51;
  q = (t.limbs_[4] + q) >> 51;
  t.limbs_[0] += 19 * q;
  u64 c;
  c = t.limbs_[0] >> 51; t.limbs_[0] &= kMask51; t.limbs_[1] += c;
  c = t.limbs_[1] >> 51; t.limbs_[1] &= kMask51; t.limbs_[2] += c;
  c = t.limbs_[2] >> 51; t.limbs_[2] &= kMask51; t.limbs_[3] += c;
  c = t.limbs_[3] >> 51; t.limbs_[3] &= kMask51; t.limbs_[4] += c;
  t.limbs_[4] &= kMask51;

  std::array<std::uint8_t, 32> out{};
  const u64 q0 = t.limbs_[0] | (t.limbs_[1] << 51);
  const u64 q1 = (t.limbs_[1] >> 13) | (t.limbs_[2] << 38);
  const u64 q2 = (t.limbs_[2] >> 26) | (t.limbs_[3] << 25);
  const u64 q3 = (t.limbs_[3] >> 39) | (t.limbs_[4] << 12);
  auto store64 = [&](std::size_t off, u64 v) {
    for (int i = 0; i < 8; ++i) out[off + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  store64(0, q0);
  store64(8, q1);
  store64(16, q2);
  store64(24, q3);
  return out;
}

Fe25519 Fe25519::operator+(const Fe25519& rhs) const {
  Fe25519 r;
  for (int i = 0; i < 5; ++i) r.limbs_[i] = limbs_[i] + rhs.limbs_[i];
  r.carry();
  return r;
}

Fe25519 Fe25519::operator-(const Fe25519& rhs) const {
  // Add 2p (limb-wise) before subtracting so limbs never underflow.
  static constexpr u64 kTwoP0 = 0xfffffffffffdaULL;   // 2*(2^51 - 19)
  static constexpr u64 kTwoPi = 0xffffffffffffeULL;   // 2*(2^51 - 1)
  Fe25519 r;
  r.limbs_[0] = limbs_[0] + kTwoP0 - rhs.limbs_[0];
  for (int i = 1; i < 5; ++i) r.limbs_[i] = limbs_[i] + kTwoPi - rhs.limbs_[i];
  r.carry();
  return r;
}

Fe25519 Fe25519::negate() const {
  return zero() - *this;
}

Fe25519 Fe25519::operator*(const Fe25519& rhs) const {
  const u64 f0 = limbs_[0], f1 = limbs_[1], f2 = limbs_[2], f3 = limbs_[3], f4 = limbs_[4];
  const u64 g0 = rhs.limbs_[0], g1 = rhs.limbs_[1], g2 = rhs.limbs_[2], g3 = rhs.limbs_[3],
            g4 = rhs.limbs_[4];
  const u64 g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3, g4_19 = 19 * g4;

  u128 r0 = (u128)f0 * g0 + (u128)f1 * g4_19 + (u128)f2 * g3_19 + (u128)f3 * g2_19 + (u128)f4 * g1_19;
  u128 r1 = (u128)f0 * g1 + (u128)f1 * g0 + (u128)f2 * g4_19 + (u128)f3 * g3_19 + (u128)f4 * g2_19;
  u128 r2 = (u128)f0 * g2 + (u128)f1 * g1 + (u128)f2 * g0 + (u128)f3 * g4_19 + (u128)f4 * g3_19;
  u128 r3 = (u128)f0 * g3 + (u128)f1 * g2 + (u128)f2 * g1 + (u128)f3 * g0 + (u128)f4 * g4_19;
  u128 r4 = (u128)f0 * g4 + (u128)f1 * g3 + (u128)f2 * g2 + (u128)f3 * g1 + (u128)f4 * g0;

  Fe25519 out;
  u128 c;
  c = r0 >> 51; r0 &= kMask51; r1 += c;
  c = r1 >> 51; r1 &= kMask51; r2 += c;
  c = r2 >> 51; r2 &= kMask51; r3 += c;
  c = r3 >> 51; r3 &= kMask51; r4 += c;
  c = r4 >> 51; r4 &= kMask51; r0 += 19 * c;
  c = r0 >> 51; r0 &= kMask51; r1 += c;
  out.limbs_[0] = static_cast<u64>(r0);
  out.limbs_[1] = static_cast<u64>(r1);
  out.limbs_[2] = static_cast<u64>(r2);
  out.limbs_[3] = static_cast<u64>(r3);
  out.limbs_[4] = static_cast<u64>(r4);
  return out;
}

Fe25519 Fe25519::square() const {
  return *this * *this;
}

Fe25519 Fe25519::pow(const std::uint8_t exponent_le[32]) const {
  // Square-and-multiply, MSB first. Not constant-time; this library is a
  // research artifact, not a hardened crypto implementation.
  Fe25519 acc = one();
  bool started = false;
  for (int byte = 31; byte >= 0; --byte) {
    for (int bit = 7; bit >= 0; --bit) {
      if (started) acc = acc.square();
      if ((exponent_le[byte] >> bit) & 1) {
        if (started) {
          acc = acc * *this;
        } else {
          acc = *this;
          started = true;
        }
      }
    }
  }
  return started ? acc : one();
}

Fe25519 Fe25519::invert() const {
  // p - 2 = 2^255 - 21, little-endian bytes.
  static constexpr std::uint8_t kPm2[32] = {
      0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
  return pow(kPm2);
}

Fe25519 Fe25519::pow22523() const {
  // (p - 5) / 8 = 2^252 - 3, little-endian bytes.
  static constexpr std::uint8_t kP58[32] = {
      0xfd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
      0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f};
  return pow(kP58);
}

bool Fe25519::is_zero() const {
  const auto b = to_bytes();
  std::uint8_t acc = 0;
  for (auto x : b) acc |= x;
  return acc == 0;
}

bool Fe25519::is_negative() const {
  return (to_bytes()[0] & 1) != 0;
}

bool Fe25519::operator==(const Fe25519& rhs) const {
  return to_bytes() == rhs.to_bytes();
}

const Fe25519& fe_sqrt_m1() {
  static const Fe25519 v = Fe25519::from_bytes(
      from_hex("b0a00e4a271beec478e42fad0618432fa7d7fb3d99004d2b0bdfc14f8024832b"));
  return v;
}

const Fe25519& fe_edwards_d() {
  static const Fe25519 v = Fe25519::from_bytes(
      from_hex("a3785913ca4deb75abd841414d0a700098e879777940c78c73fe6f2bee6c0352"));
  return v;
}

const Fe25519& fe_edwards_2d() {
  static const Fe25519 v = fe_edwards_d() + fe_edwards_d();
  return v;
}

}  // namespace accountnet::crypto
