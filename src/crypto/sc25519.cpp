#include "accountnet/crypto/sc25519.hpp"

#include <cstring>

#include "accountnet/util/ensure.hpp"

namespace accountnet::crypto {

namespace {

// 512-bit little-endian integer as 16 x 32-bit limbs; wide enough for a
// 256x256-bit product plus headroom.
struct U512 {
  std::array<std::uint32_t, 16> w{};
};

// L in 32-bit limbs (little-endian).
// L = 0x1000000000000000000000000000000014def9dea2f79cd65812631a5cf5d3ed
constexpr std::array<std::uint32_t, 16> kOrder = {
    0x5cf5d3edu, 0x5812631au, 0xa2f79cd6u, 0x14def9deu,
    0x00000000u, 0x00000000u, 0x00000000u, 0x10000000u,
    0, 0, 0, 0, 0, 0, 0, 0};

int compare(const U512& a, const U512& b) {
  for (int i = 15; i >= 0; --i) {
    if (a.w[static_cast<std::size_t>(i)] != b.w[static_cast<std::size_t>(i)]) {
      return a.w[static_cast<std::size_t>(i)] < b.w[static_cast<std::size_t>(i)] ? -1 : 1;
    }
  }
  return 0;
}

void sub_in_place(U512& a, const U512& b) {
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint64_t lhs = a.w[i];
    const std::uint64_t rhs = static_cast<std::uint64_t>(b.w[i]) + borrow;
    a.w[i] = static_cast<std::uint32_t>(lhs - rhs);
    borrow = lhs < rhs ? 1 : 0;
  }
}

void shl1(U512& a) {
  std::uint32_t carry = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint32_t next = a.w[i] >> 31;
    a.w[i] = (a.w[i] << 1) | carry;
    carry = next;
  }
}

int bit_length(const U512& a) {
  for (int i = 15; i >= 0; --i) {
    const std::uint32_t v = a.w[static_cast<std::size_t>(i)];
    if (v != 0) {
      int bits = 0;
      std::uint32_t t = v;
      while (t != 0) {
        ++bits;
        t >>= 1;
      }
      return i * 32 + bits;
    }
  }
  return 0;
}

// a mod L via shift-subtract long division.
U512 mod_order(const U512& a) {
  U512 order512;
  order512.w = kOrder;
  const int len = bit_length(a);
  const int order_len = 253;
  if (len < order_len) return a;

  // Align L with the top bit of a, then walk down subtracting.
  int shift = len - order_len;
  U512 m = order512;
  for (int i = 0; i < shift; ++i) shl1(m);
  U512 r = a;
  for (int i = shift; i >= 0; --i) {
    if (compare(r, m) >= 0) sub_in_place(r, m);
    if (i > 0) {
      // m >>= 1
      std::uint32_t carry = 0;
      for (int j = 15; j >= 0; --j) {
        const std::uint32_t next = m.w[static_cast<std::size_t>(j)] & 1;
        m.w[static_cast<std::size_t>(j)] = (m.w[static_cast<std::size_t>(j)] >> 1) | (carry << 31);
        carry = next;
      }
    }
  }
  return r;
}

U512 load_le(BytesView bytes) {
  AN_ENSURE_MSG(bytes.size() <= 64, "Scalar::reduce input too long");
  U512 out;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out.w[i / 4] |= static_cast<std::uint32_t>(bytes[i]) << (8 * (i % 4));
  }
  return out;
}

U512 mul_wide(const U512& a, const U512& b) {
  // Schoolbook multiply of the low 8 limbs of each (256 x 256 -> 512).
  U512 out;
  std::uint64_t acc_carry[17] = {0};
  for (std::size_t i = 0; i < 8; ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      const std::uint64_t cur = static_cast<std::uint64_t>(a.w[i]) * b.w[j] +
                                acc_carry[i + j] + carry;
      acc_carry[i + j] = cur & 0xffffffffULL;
      carry = cur >> 32;
    }
    acc_carry[i + 8] += carry;
  }
  // Normalize the accumulator (entries can exceed 32 bits via the += above).
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint64_t cur = acc_carry[i] + carry;
    out.w[i] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
    carry = cur >> 32;
  }
  return out;
}

U512 add_wide(const U512& a, const U512& b) {
  U512 out;
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::uint64_t cur = static_cast<std::uint64_t>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<std::uint32_t>(cur & 0xffffffffULL);
    carry = cur >> 32;
  }
  return out;
}

std::array<std::uint8_t, 32> store_le32(const U512& a) {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(a.w[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

}  // namespace

Scalar Scalar::reduce(BytesView le_bytes) {
  Scalar s;
  s.bytes_ = store_le32(mod_order(load_le(le_bytes)));
  return s;
}

bool Scalar::from_canonical(BytesView b32, Scalar& out) {
  if (b32.size() != 32) return false;
  U512 v = load_le(b32);
  U512 order;
  order.w = kOrder;
  if (compare(v, order) >= 0) return false;
  out.bytes_ = store_le32(v);
  return true;
}

Scalar Scalar::from_u64(std::uint64_t v) {
  Scalar s;
  for (int i = 0; i < 8; ++i) s.bytes_[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  return s;
}

Scalar Scalar::add(const Scalar& rhs) const {
  const U512 sum = add_wide(load_le(bytes_), load_le(rhs.bytes_));
  Scalar s;
  s.bytes_ = store_le32(mod_order(sum));
  return s;
}

Scalar Scalar::mul(const Scalar& rhs) const {
  const U512 prod = mul_wide(load_le(bytes_), load_le(rhs.bytes_));
  Scalar s;
  s.bytes_ = store_le32(mod_order(prod));
  return s;
}

Scalar Scalar::muladd(const Scalar& a, const Scalar& b, const Scalar& c) {
  const U512 prod = mul_wide(load_le(a.bytes_), load_le(b.bytes_));
  const U512 sum = add_wide(prod, load_le(c.bytes_));
  Scalar s;
  s.bytes_ = store_le32(mod_order(sum));
  return s;
}

bool Scalar::is_zero() const {
  std::uint8_t acc = 0;
  for (auto b : bytes_) acc |= b;
  return acc == 0;
}

}  // namespace accountnet::crypto
