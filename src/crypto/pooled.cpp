#include "accountnet/crypto/pooled.hpp"

#include <algorithm>

#include "accountnet/util/ensure.hpp"
#include "accountnet/util/worker_pool.hpp"

namespace accountnet::crypto {

void PooledProvider::verify_batch(std::span<const VerifyJob> jobs,
                                  std::span<VerifyVerdict> verdicts) const {
  AN_ENSURE_MSG(jobs.size() == verdicts.size(), "verify_batch verdict slot mismatch");
  if (pool_ == nullptr || pool_->threads() <= 1 || jobs.size() < 2) {
    inner_.verify_batch(jobs, verdicts);
    return;
  }
  // Contiguous chunks, one per pool thread: chunk i covers
  // [i*chunk, min((i+1)*chunk, n)). Each worker resolves its own slice with
  // per-job verify/vrf_verify (never the inner provider's own batch path,
  // which for the real backend would spawn nested threads), so slot i's
  // verdict is written exactly once by exactly one worker.
  const std::size_t n = jobs.size();
  const std::size_t parts = std::min(pool_->threads(), n);
  const std::size_t chunk = (n + parts - 1) / parts;
  pool_->run(parts, [&](std::size_t p) {
    const std::size_t lo = p * chunk;
    const std::size_t hi = std::min(lo + chunk, n);
    for (std::size_t i = lo; i < hi; ++i) {
      const VerifyJob& job = jobs[i];
      VerifyVerdict v;
      if (job.kind == VerifyJob::Kind::kSignature) {
        v.ok = inner_.verify(job.pk, job.msg, job.sig);
      } else {
        const auto beta = inner_.vrf_verify(job.pk, job.msg, job.sig);
        v.ok = beta.has_value();
        if (beta) v.vrf_output = *beta;
      }
      verdicts[i] = v;
    }
  });
}

}  // namespace accountnet::crypto
