// Regression guard for NetworkSim::run()'s incremental-continuation contract
// (see the run() doc in harness/network_sim.hpp): the first call fires
// on_analysis(0) at t = 0, later calls continue where the previous stopped,
// the callback receives ABSOLUTE round numbers, and `run(a); run(b);` is
// indistinguishable from `run(a + b)` — in both drive modes.
#include <gtest/gtest.h>

#include <vector>

#include "accountnet/crypto/sha256.hpp"
#include "accountnet/harness/network_sim.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::harness {
namespace {

ExperimentConfig small_config(std::size_t threads) {
  ExperimentConfig c;
  c.network_size = 64;
  c.f = 5;
  c.l = 3;
  c.lane_size = 16;
  c.verify_fraction = 1.0;
  c.seed = 21;
  c.threads = threads;
  return c;
}

std::string fold_state(const NetworkSim& net) {
  wire::Writer w;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& st = net.node_state(i);
    w.u64(st.round());
    for (const auto& p : st.peerset().sorted()) w.str(p.addr);
  }
  w.u64(net.stats().shuffles_attempted);
  w.u64(net.stats().shuffles_completed);
  w.u64(net.stats().verification_failures);
  w.u64(static_cast<std::uint64_t>(net.now()));
  const Bytes bytes = std::move(w).take();
  const auto d = crypto::Sha256::hash(bytes);
  return std::string(reinterpret_cast<const char*>(d.data()), d.size());
}

class RunContinuation : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RunContinuation, SplitRunsMatchOneRun) {
  const std::size_t threads = GetParam();
  NetworkSim split(small_config(threads));
  NetworkSim whole(small_config(threads));
  split.run(2, {});
  split.run(3, {});
  whole.run(5, {});
  EXPECT_EQ(split.rounds_completed(), 5u);
  EXPECT_EQ(whole.rounds_completed(), 5u);
  EXPECT_EQ(fold_state(split), fold_state(whole));
}

TEST_P(RunContinuation, CallbackSeesAbsoluteRounds) {
  NetworkSim net(small_config(GetParam()));
  EXPECT_FALSE(net.run_started());
  std::vector<std::size_t> seen;
  net.run(2, [&](std::size_t r) { seen.push_back(r); });
  EXPECT_TRUE(net.run_started());
  // First call: the t = 0 snapshot plus one entry per round.
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(net.now(), static_cast<sim::TimePoint>(2) * sim::seconds(10));
  seen.clear();
  // Continuation: no second t = 0 callback, absolute numbering resumes.
  net.run(2, [&](std::size_t r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(net.rounds_completed(), 4u);
}

TEST_P(RunContinuation, ZeroRoundFirstCallStillFiresInitialSnapshot) {
  NetworkSim net(small_config(GetParam()));
  std::vector<std::size_t> seen;
  net.run(0, [&](std::size_t r) { seen.push_back(r); });
  EXPECT_EQ(seen, (std::vector<std::size_t>{0}));
  EXPECT_EQ(net.now(), 0);
  EXPECT_TRUE(net.run_started());
}

INSTANTIATE_TEST_SUITE_P(Drives, RunContinuation,
                         ::testing::Values(std::size_t{0}, std::size_t{2}));

}  // namespace
}  // namespace accountnet::harness
