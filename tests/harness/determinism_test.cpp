// Whole-experiment determinism: identical configs + seeds produce identical
// networks, metrics, and stats — the property every bench relies on.
#include <gtest/gtest.h>

#include "accountnet/harness/network_sim.hpp"

namespace accountnet::harness {
namespace {

ExperimentConfig config_for(std::uint64_t seed) {
  ExperimentConfig c;
  c.network_size = 150;
  c.f = 5;
  c.l = 3;
  c.d = 2;
  c.pm = 0.15;
  c.lane_size = 50;
  c.verify_fraction = 0.2;
  c.seed = seed;
  return c;
}

struct Fingerprint {
  std::uint64_t shuffles;
  std::uint64_t leave_reports;
  analysis::Adjacency adjacency;
  std::vector<bool> malicious;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint run(std::uint64_t seed, bool with_churn) {
  NetworkSim sim(config_for(seed));
  if (with_churn) sim.schedule_churn(15, sim::seconds(150), sim::seconds(60));
  sim.run(40, nullptr);
  Fingerprint fp;
  fp.shuffles = sim.stats().shuffles_completed;
  fp.leave_reports = sim.stats().leave_reports;
  fp.adjacency = sim.snapshot_adjacency();
  for (std::size_t i = 0; i < sim.size(); ++i) fp.malicious.push_back(sim.is_malicious(i));
  return fp;
}

TEST(Determinism, IdenticalSeedsIdenticalNetworks) {
  EXPECT_EQ(run(7, false), run(7, false));
}

TEST(Determinism, IdenticalSeedsIdenticalChurn) {
  EXPECT_EQ(run(7, true), run(7, true));
}

TEST(Determinism, DifferentSeedsDiverge) {
  const auto a = run(7, false);
  const auto b = run(8, false);
  EXPECT_NE(a.adjacency, b.adjacency);
}

TEST(Determinism, ChurnChangesTheRun) {
  EXPECT_NE(run(7, false), run(7, true));
}

}  // namespace
}  // namespace accountnet::harness
