// Experiment-harness behaviour: launch dynamics, shuffling convergence,
// neighborhood statistics matching the analysis, churn, malicious modes.
#include <gtest/gtest.h>

#include "accountnet/analysis/bounds.hpp"
#include "accountnet/harness/network_sim.hpp"

namespace accountnet::harness {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig c;
  c.network_size = 120;
  c.f = 5;
  c.l = 3;
  c.d = 2;
  c.lane_size = 30;
  c.verify_fraction = 1.0;  // tests verify every exchange
  c.seed = 11;
  return c;
}

TEST(NetworkSim, LaunchesReachFullSize) {
  NetworkSim sim(small_config());
  std::size_t final_alive = 0;
  sim.run(40, [&](std::size_t) { final_alive = sim.alive_count(); });
  EXPECT_EQ(final_alive, 120u);
  EXPECT_EQ(sim.joined_count(), 120u);
}

TEST(NetworkSim, GrowthIsStaggered) {
  NetworkSim sim(small_config());
  std::vector<std::size_t> sizes;
  sim.run(40, [&](std::size_t) { sizes.push_back(sim.alive_count()); });
  EXPECT_LT(sizes[1], 120u);  // not everyone is up immediately
  EXPECT_EQ(sizes.back(), 120u);
  for (std::size_t i = 1; i < sizes.size(); ++i) EXPECT_GE(sizes[i], sizes[i - 1]);
}

TEST(NetworkSim, FullyVerifiedShufflingHasNoFailures) {
  NetworkSim sim(small_config());
  sim.run(30, nullptr);
  EXPECT_GT(sim.stats().shuffles_completed, 100u);
  EXPECT_GT(sim.stats().shuffles_verified, 100u);
  EXPECT_EQ(sim.stats().verification_failures, 0u);
}

TEST(NetworkSim, NeighborhoodSizeMatchesAlgorithm4) {
  auto config = small_config();
  config.network_size = 400;
  config.lane_size = 100;
  NetworkSim sim(config);
  sim.run(60, nullptr);
  Rng rng(5);
  const double measured = sim.sample_avg_neighborhood(2, 200, rng);
  const double analytic = analysis::expected_neighborhood_size(400, 5, 2);
  EXPECT_NEAR(measured, analytic, analytic * 0.06);
}

TEST(NetworkSim, CommonNodesMatchLemma1) {
  auto config = small_config();
  config.network_size = 400;
  config.lane_size = 100;
  NetworkSim sim(config);
  sim.run(60, nullptr);
  Rng rng(6);
  const double nbh = sim.sample_avg_neighborhood(2, 200, rng);
  const double measured = sim.sample_avg_common(2, 300, rng);
  const double analytic = analysis::expected_common_nodes(400, nbh, nbh);
  EXPECT_NEAR(measured, analytic, std::max(0.5, analytic * 0.25));
}

TEST(NetworkSim, MaliciousFlaggingMatchesPm) {
  auto config = small_config();
  config.network_size = 1000;
  config.pm = 0.10;
  NetworkSim sim(config);
  sim.run(1, nullptr);
  std::size_t m = 0;
  for (std::size_t i = 0; i < sim.size(); ++i) {
    if (sim.is_malicious(i)) ++m;
  }
  // Binomial(1000, 0.1): within +-4 sigma.
  EXPECT_GT(m, 100u - 40u);
  EXPECT_LT(m, 100u + 40u);
}

TEST(NetworkSim, NeighborMaliciousFractionCentersOnPm) {
  auto config = small_config();
  config.network_size = 600;
  config.lane_size = 150;
  config.pm = 0.10;
  config.verify_fraction = 0.1;
  NetworkSim sim(config);
  sim.run(50, nullptr);
  Rng rng(7);
  const auto samples = sim.sample_neighbor_malicious_fraction(2, 300, rng);
  ASSERT_GT(samples.count(), 100u);
  EXPECT_NEAR(samples.mean(), 0.10, 0.02);
}

TEST(NetworkSim, ChurnShrinksNetworkAndHeals) {
  auto config = small_config();
  config.network_size = 200;
  config.lane_size = 50;
  config.verify_fraction = 0.2;
  NetworkSim sim(config);
  std::vector<std::size_t> alive;
  sim.schedule_churn(20, sim::seconds(200), sim::seconds(100));
  sim.run(60, [&](std::size_t) { alive.push_back(sim.alive_count()); });
  EXPECT_EQ(alive.back(), 180u);
  EXPECT_GT(sim.stats().dead_partner_hits, 0u);
  EXPECT_GT(sim.stats().leave_reports, 0u);
  // Dead nodes should be purged from most live peersets by the end.
  const auto adj = sim.snapshot_adjacency();
  std::size_t dead_refs = 0, total_refs = 0;
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (const auto j : adj[i]) {
      ++total_refs;
      if (!sim.is_alive(j)) ++dead_refs;
    }
  }
  EXPECT_LT(static_cast<double>(dead_refs), 0.05 * static_cast<double>(total_refs));
}

TEST(NetworkSim, SeparateOverlayModeSplitsGraph) {
  auto config = small_config();
  config.network_size = 300;
  config.lane_size = 75;
  config.pm = 0.2;
  config.malicious_mode = MaliciousMode::kSeparateOverlay;
  config.verify_fraction = 0.1;
  NetworkSim sim(config);
  sim.run(60, nullptr);
  // No edge crosses the coalition boundary.
  const auto adj = sim.snapshot_adjacency();
  for (std::size_t i = 0; i < adj.size(); ++i) {
    for (const auto j : adj[i]) {
      EXPECT_EQ(sim.is_malicious(i), sim.is_malicious(j))
          << i << " -> " << j << " crosses the coalition boundary";
    }
  }
  // Both coalitions form working overlays of their own.
  std::size_t benign_edges = 0, malicious_edges = 0;
  for (std::size_t i = 0; i < adj.size(); ++i) {
    (sim.is_malicious(i) ? malicious_edges : benign_edges) += adj[i].size();
  }
  EXPECT_GT(benign_edges, 0u);
  EXPECT_GT(malicious_edges, 0u);
}

TEST(NetworkSim, HistoryLengthsStayShort) {
  NetworkSim sim(small_config());
  sim.run(40, nullptr);
  const auto samples = sim.take_history_length_samples();
  ASSERT_GT(samples.count(), 100u);
  // f=5, L=3: a peer survives a round with prob 2/5 -> suffixes are short.
  EXPECT_LT(samples.mean(), 12.0);
  EXPECT_LT(samples.percentile(99), 30.0);
}

TEST(NetworkSim, CoverageGrowsTowardFullNetwork) {
  auto config = small_config();
  config.track_coverage = true;
  NetworkSim sim(config);
  std::vector<double> coverage;
  sim.run(60, [&](std::size_t round) {
    if (round % 10 == 0 && sim.joined_count() > 0) {
      coverage.push_back(sim.coverage_counts().mean());
    }
  });
  ASSERT_GE(coverage.size(), 3u);
  EXPECT_GT(coverage.back(), coverage.front());
  EXPECT_GT(coverage.back(), 40.0);  // saw at least a third of a 120-node net
}

TEST(NetworkSim, ShufflePairTrackingForHeatmap) {
  auto config = small_config();
  config.network_size = 60;
  config.lane_size = 15;
  config.track_shuffle_pairs = true;
  NetworkSim sim(config);
  sim.run(40, nullptr);
  std::size_t pairs = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = i + 1; j < 60; ++j) {
      if (sim.ever_shuffled(i, j)) ++pairs;
    }
  }
  EXPECT_GT(pairs, 100u);
}

TEST(NetworkSim, DeterministicAcrossRuns) {
  auto run_once = [] {
    NetworkSim sim(small_config());
    sim.run(20, nullptr);
    return sim.stats().shuffles_completed;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(NetworkSim, ShuffleRateScalesWithNetworkSize) {
  // Paper: shuffle rate ~ 0.1 |V| shuffles/sec at steady state.
  auto config = small_config();
  config.network_size = 300;
  config.lane_size = 300;  // all in one lane would take forever; keep 300
  config.lane_size = 75;
  config.verify_fraction = 0.05;
  NetworkSim sim(config);
  std::vector<std::uint64_t> deltas;
  sim.run(60, [&](std::size_t round) {
    const auto d = sim.take_shuffle_delta();
    if (round > 45) deltas.push_back(d);
  });
  double mean = 0;
  for (auto d : deltas) mean += static_cast<double>(d);
  mean /= static_cast<double>(deltas.size());
  // Per 10 s analysis period each of the 300 nodes initiates ~1 shuffle.
  EXPECT_NEAR(mean, 300.0, 60.0);
}

TEST(NetworkSim, TracerBuildsCrossNodeShuffleTrees) {
  obs::Tracer tracer(7);
  NetworkSim sim(small_config());
  sim.set_tracer(&tracer);
  sim.run(10, nullptr);
  ASSERT_GT(tracer.size(), 0u);

  const auto traces = obs::build_traces(tracer.spans());
  bool found = false;
  for (const auto& t : traces) {
    if (t.root == nullptr || t.root->name != "shuffle") continue;
    const std::string* outcome = t.root->find_attr("outcome");
    if (outcome == nullptr || *outcome != "completed") continue;
    for (const obs::Span* s : t.spans) {
      if (s->name == "shuffle.respond" && s->node != t.root->node &&
          s->parent_span == t.root->span_id) {
        found = true;
      }
    }
    if (found) break;
  }
  EXPECT_TRUE(found) << "no completed shuffle trace with a cross-node respond leg";
}

TEST(NetworkSim, AdversaryDetectionLandsQuarantineSpanInShuffleTrace) {
  auto config = small_config();
  config.pm = 0.2;
  config.adversary.bias_sample = true;
  obs::Tracer tracer(9);
  NetworkSim sim(config);
  sim.set_tracer(&tracer);
  sim.run(20, nullptr);
  ASSERT_GT(sim.stats().byz_detections, 0u);

  const auto traces = obs::build_traces(tracer.spans());
  bool found = false;
  for (const auto& t : traces) {
    if (t.root == nullptr || t.root->name != "shuffle") continue;
    for (const obs::Span* s : t.spans) {
      // The responder (a different node than the cheating initiator)
      // quarantines inside the shuffle's own trace.
      if (s->name == "accuse.quarantine" && s->node != t.root->node) found = true;
    }
    if (found) break;
  }
  EXPECT_TRUE(found) << "no accuse.quarantine span linked to a shuffle trace";
}

TEST(NetworkSim, TracerDoesNotPerturbHarnessOutcomes) {
  NetworkSim plain(small_config());
  plain.run(20, nullptr);
  obs::Tracer tracer(3);
  NetworkSim traced(small_config());
  traced.set_tracer(&tracer);
  traced.run(20, nullptr);
  EXPECT_GT(tracer.size(), 0u);
  EXPECT_EQ(plain.stats().shuffles_completed, traced.stats().shuffles_completed);
  EXPECT_EQ(plain.stats().shuffles_verified, traced.stats().shuffles_verified);
  EXPECT_EQ(plain.stats().verification_failures,
            traced.stats().verification_failures);
  EXPECT_EQ(plain.joined_count(), traced.joined_count());
}

}  // namespace
}  // namespace accountnet::harness
