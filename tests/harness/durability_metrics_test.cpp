// Durability lazy-interning contract (CLAUDE.md): durability metric series
// (node.recovery.*, harness.recovery.*, *.journal.*) must never be interned
// in non-durable runs, so scrapes — and the new time-series dumps — of a
// default-configured network are byte-identical to pre-durability output.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "accountnet/core/node.hpp"
#include "accountnet/crypto/provider.hpp"
#include "accountnet/harness/network_sim.hpp"
#include "accountnet/obs/sink.hpp"
#include "accountnet/obs/timeseries.hpp"

namespace accountnet {
namespace {

bool is_durability_series(const std::string& name) {
  return name.find("recovery") != std::string::npos ||
         name.find("journal") != std::string::npos;
}

harness::ExperimentConfig small_config() {
  harness::ExperimentConfig c;
  c.network_size = 48;
  c.f = 5;
  c.l = 3;
  c.d = 2;
  c.lane_size = 12;
  c.verify_fraction = 1.0;
  c.seed = 17;
  return c;
}

/// Scrape a registry into the exact JSONL text a BENCH artifact would hold.
std::string scrape_text(harness::NetworkSim& sim) {
  obs::MemorySink mem;
  sim.scrape_metrics(mem);
  std::string out;
  for (const auto& row : mem.rows()) {
    out += obs::to_json_line(row.sample, row.t_us);
    out += '\n';
  }
  return out;
}

// Event-driven Node stack, no journal configured: nothing recovery- or
// journal-flavoured may ever be interned, even after real shuffle traffic.
TEST(DurabilityLazyInterning, NonDurableNodeRegistryHasNoDurabilitySeries) {
  sim::Simulator sim;
  sim::SimNetwork net(sim, sim::netem_latency(), /*rng_seed=*/7);
  const auto provider = crypto::make_fast_crypto();
  std::vector<std::unique_ptr<core::Node>> nodes;
  for (int i = 0; i < 4; ++i) {
    core::Node::Config config;
    config.protocol.max_peerset = 3;
    config.protocol.shuffle_length = 2;
    config.shuffle_period = sim::seconds(2);
    Bytes seed(32, static_cast<std::uint8_t>(0x40 + i));
    nodes.push_back(std::make_unique<core::Node>(
        net, "n" + std::to_string(i), *provider, seed, config, 1000 + i));
  }
  nodes[0]->start_as_seed();
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    nodes[i]->start_join(nodes[i - 1]->id().addr);
  }
  sim.run_until(sim::seconds(30));

  std::uint64_t completed = 0;
  for (const auto& n : nodes) {
    completed += n->stats().shuffles_completed;
    EXPECT_FALSE(n->metrics().find("node.recovery.restarts").has_value());
    EXPECT_FALSE(n->metrics().find("node.recovery.entries_replayed").has_value());
    for (const auto& sample : n->metrics().snapshot()) {
      EXPECT_FALSE(is_durability_series(sample.name)) << sample.name;
    }
  }
  EXPECT_GT(completed, 0u) << "overlay never shuffled; fixture broken";
}

// Harness scrape with durability off: no harness.recovery.* / journal rows,
// and the JSONL text is byte-identical across identically-seeded runs.
TEST(DurabilityLazyInterning, NonDurableHarnessScrapeIsCleanAndDeterministic) {
  harness::NetworkSim a(small_config());
  a.run(20, nullptr);
  const std::string text_a = scrape_text(a);
  EXPECT_FALSE(text_a.empty());
  EXPECT_EQ(text_a.find("recovery"), std::string::npos);
  EXPECT_EQ(text_a.find("journal"), std::string::npos);

  harness::NetworkSim b(small_config());
  b.run(20, nullptr);
  EXPECT_EQ(text_a, scrape_text(b));
}

// Inverse sanity: the same network with durable_nodes on DOES materialize the
// series (value may be zero — lazily interned means present-when-enabled).
TEST(DurabilityLazyInterning, DurableHarnessScrapeExposesRecoverySeries) {
  auto config = small_config();
  config.durable_nodes = true;
  config.history_limit = 32;
  harness::NetworkSim sim(config);
  sim.run(20, nullptr);
  const std::string text = scrape_text(sim);
  EXPECT_NE(text.find("harness.recovery.crashes"), std::string::npos);
  EXPECT_NE(text.find("harness.journal.entries"), std::string::npos);
}

// The new time-series plane obeys the same contract: a scraper sampling a
// non-durable harness never carries a durability cell, and its JSON dump is
// free of the series names.
TEST(DurabilityLazyInterning, NonDurableTimeseriesDumpHasNoDurabilitySeries) {
  harness::NetworkSim sim(small_config());
  obs::TimeSeriesScraper scraper;
  scraper.add_source(&sim.metrics());
  obs::NullSink null;
  for (int i = 0; i < 3; ++i) {
    sim.run(5, nullptr);
    sim.scrape_metrics(null);  // force the lazy registry sync
    scraper.sample(sim.now());
  }
  ASSERT_EQ(scraper.points().size(), 3u);
  for (const auto& point : scraper.points()) {
    EXPECT_FALSE(point.cells.empty());
    for (const auto& [name, cell] : point.cells) {
      EXPECT_FALSE(is_durability_series(name)) << name;
    }
  }
  const std::string dump = scraper.to_json_array();
  EXPECT_EQ(dump.find("recovery"), std::string::npos);
  EXPECT_EQ(dump.find("journal"), std::string::npos);
}

}  // namespace
}  // namespace accountnet
