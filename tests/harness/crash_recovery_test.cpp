// Harness durability: write-ahead journals under the synchronous driver,
// crash → restart recovery with standing intact, and the bounded-memory
// guarantee — the in-memory window stays at the retention floor over many
// multiples of history_limit while the journal still serves a fully
// verifiable prefix.
#include <gtest/gtest.h>

#include <algorithm>

#include "accountnet/core/checkpoint.hpp"
#include "accountnet/harness/network_sim.hpp"

namespace accountnet::harness {
namespace {

ExperimentConfig durable_config(std::size_t n, std::uint64_t seed) {
  ExperimentConfig config;
  config.network_size = n;
  config.f = 5;
  config.l = 3;
  config.history_limit = 16;
  config.checkpoint_interval = 8;
  config.durable_nodes = true;
  config.verify_fraction = 1.0;
  config.lane_size = n;
  config.launch_spacing_max = sim::seconds(2);
  config.seed = seed;
  return config;
}

TEST(CrashRecovery, RestartRestoresStateOfRecord) {
  NetworkSim sim(durable_config(24, 5));
  sim.run(12, nullptr);

  std::size_t victim = 0;
  for (std::size_t i = 0; i < sim.size(); ++i) {
    if (sim.is_alive(i) && sim.is_joined(i) &&
        sim.node_state(i).history().total_appended() > 0) {
      victim = i;
      break;
    }
  }
  const auto& pre = sim.node_state(victim);
  const std::uint64_t pre_appended = pre.history().total_appended();
  const core::ChainDigest pre_chain = pre.history().chain();
  const auto pre_peers = pre.peerset().sorted();
  const core::Round pre_round = pre.round();

  const sim::TimePoint t0 = sim.now();
  sim.schedule_crash_restart(victim, t0 + sim::seconds(3), t0 + sim::seconds(31));
  sim.run(6, nullptr);

  EXPECT_EQ(sim.recovery_crashes(), 1u);
  EXPECT_EQ(sim.recovery_restarts(), 1u);
  EXPECT_GE(sim.recovery_entries_replayed(), pre_appended);
  ASSERT_TRUE(sim.is_alive(victim));
  EXPECT_TRUE(sim.is_joined(victim));

  // The journaled prefix up to the crash folds to the pre-crash chain and
  // reconstructs the pre-crash peerset — disk and late RAM agree bit-for-bit.
  const auto prefix = sim.journal_entries(victim, 0,
                                          static_cast<std::size_t>(pre_appended));
  ASSERT_EQ(prefix.size(), pre_appended);
  EXPECT_EQ(core::fold_chain(core::ChainDigest{}, prefix), pre_chain);
  EXPECT_EQ(core::UpdateHistory::reconstruct(prefix).sorted(), pre_peers);

  // The recovered node resumed shuffling past its pre-crash round, still
  // journaling: the full prefix folds to the live chain.
  const auto& post = sim.node_state(victim);
  EXPECT_GT(post.round(), pre_round);
  const auto full = sim.journal_entries(
      victim, 0, static_cast<std::size_t>(post.history().total_appended()));
  ASSERT_EQ(full.size(), post.history().total_appended());
  EXPECT_EQ(core::fold_chain(core::ChainDigest{}, full), post.history().chain());
  EXPECT_EQ(sim.stats().verification_failures, 0u);
}

TEST(CrashRecovery, MemoryBoundedWhileJournalKeepsFullPrefix) {
  // ≥10× history_limit appends: the RAM window must stay at the retention
  // floor (max(history_limit, checkpoint_interval)) while the journal keeps
  // everything, fully verifiable.
  auto config = durable_config(16, 9);
  NetworkSim sim(config);
  std::size_t window_max = 0;
  std::uint64_t appended_max = 0;
  sim.run(120, [&](std::size_t) {
    for (std::size_t i = 0; i < sim.size(); ++i) {
      if (!sim.is_alive(i) || !sim.is_joined(i)) continue;
      window_max = std::max(window_max, sim.node_state(i).history().size());
      appended_max =
          std::max(appended_max, sim.node_state(i).history().total_appended());
    }
  });
  EXPECT_GE(appended_max, 10 * config.history_limit) << "soak too short";
  EXPECT_LE(window_max,
            std::max<std::size_t>(config.history_limit,
                                  static_cast<std::size_t>(config.checkpoint_interval)));

  for (std::size_t i = 0; i < sim.size(); ++i) {
    if (!sim.is_alive(i) || !sim.is_joined(i)) continue;
    const auto& st = sim.node_state(i);
    const auto full = sim.journal_entries(
        i, 0, static_cast<std::size_t>(st.history().total_appended()));
    ASSERT_EQ(full.size(), st.history().total_appended()) << i;
    EXPECT_EQ(core::fold_chain(core::ChainDigest{}, full), st.history().chain()) << i;
    EXPECT_EQ(core::UpdateHistory::reconstruct(full), st.peerset()) << i;
  }
  EXPECT_EQ(sim.stats().verification_failures, 0u);
}

TEST(CrashRecovery, DurabilityMetricsMaterializeOnlyWhenOn) {
  // The lazy-interning discipline behind byte-identical default bench
  // output: a non-durable run must not even REGISTER the recovery series.
  {
    ExperimentConfig config;
    config.network_size = 12;
    config.lane_size = 12;
    NetworkSim sim(config);
    sim.run(4, nullptr);
    obs::MemorySink sink;
    sim.scrape_metrics(sink);
    for (const auto& row : sink.rows()) {
      const std::string& name = row.sample.name;
      EXPECT_NE(name.rfind("harness.recovery.", 0), 0u) << name;
      EXPECT_NE(name, "harness.history.trimmed");
      EXPECT_NE(name, "harness.journal.entries");
    }
  }
  {
    NetworkSim sim(durable_config(12, 3));
    sim.run(20, nullptr);
    obs::MemorySink sink;
    sim.scrape_metrics(sink);
    bool trimmed = false, journal = false;
    for (const auto& row : sink.rows()) {
      trimmed |= row.sample.name == "harness.history.trimmed";
      journal |= row.sample.name == "harness.journal.entries";
    }
    EXPECT_TRUE(trimmed);
    EXPECT_TRUE(journal);
  }
}

TEST(CrashRecovery, CrashWithoutDurableNodesIsRejected) {
  ExperimentConfig config;
  config.network_size = 8;
  config.lane_size = 8;
  NetworkSim sim(config);
  sim.run(1, nullptr);
  EXPECT_THROW(sim.schedule_crash_restart(0, sim.now() + sim::seconds(1),
                                          sim.now() + sim::seconds(2)),
               std::exception);
}

}  // namespace
}  // namespace accountnet::harness
