// Harness-level fault injection: an attached FaultPlan fails shuffles at the
// synchronous message legs, an empty plan is behaviorally invisible, and
// the fault counter surfaces through stats and metrics.
#include <gtest/gtest.h>

#include "accountnet/harness/network_sim.hpp"
#include "accountnet/sim/fault.hpp"

namespace accountnet::harness {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig c;
  c.network_size = 120;
  c.f = 5;
  c.l = 3;
  c.d = 2;
  c.lane_size = 30;
  c.verify_fraction = 1.0;
  c.seed = 11;
  return c;
}

TEST(HarnessFaults, EmptyPlanIsBehaviorallyInvisible) {
  NetworkSim clean(base_config());
  auto with_plan = base_config();
  with_plan.fault_plan = sim::FaultPlan{};  // attached but injects nothing
  NetworkSim faulty(with_plan);

  clean.run(30, nullptr);
  faulty.run(30, nullptr);

  EXPECT_EQ(clean.stats().shuffles_attempted, faulty.stats().shuffles_attempted);
  EXPECT_EQ(clean.stats().shuffles_completed, faulty.stats().shuffles_completed);
  EXPECT_EQ(faulty.stats().fault_failures, 0u);
}

TEST(HarnessFaults, UniformLossFailsShufflesProportionally) {
  auto config = base_config();
  config.fault_plan = sim::FaultPlan::uniform_loss(0.10, 5);
  NetworkSim sim(config);
  sim.run(30, nullptr);

  const auto& s = sim.stats();
  EXPECT_GT(s.fault_failures, 0u);
  EXPECT_EQ(s.verification_failures, 0u) << "faults are not protocol violations";
  // Four legs, each surviving with P = 0.9: expect roughly 1 - 0.9^4 = 34%
  // of shuffles to fail; allow generous slack for the finite sample.
  const double fail_rate =
      static_cast<double>(s.fault_failures) / static_cast<double>(s.shuffles_attempted);
  EXPECT_NEAR(fail_rate, 0.344, 0.08);

  // The counter is scraped as "harness.fault_failures".
  obs::NullSink sink;
  sim.scrape_metrics(sink);
  obs::MetricsRegistry& m = sim.metrics();
  const auto id = m.find("harness.fault_failures");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(m.counter_value(*id), s.fault_failures);
}

TEST(HarnessFaults, PartitionHealsAndOverlayRecovers) {
  auto config = base_config();
  sim::FaultPlan plan;
  plan.seed = 9;
  sim::Partition part;
  part.side_a = {"n000000", "n000001", "n000002", "n000003", "n000004"};
  part.start = sim::seconds(100);
  part.heal = sim::seconds(200);
  plan.partitions.push_back(part);
  config.fault_plan = plan;

  NetworkSim sim(config);
  std::uint64_t faults_at_heal = 0;
  sim.run(40, [&](std::size_t round) {
    if (round == 20) faults_at_heal = sim.stats().fault_failures;
  });
  const auto& s = sim.stats();
  EXPECT_GT(faults_at_heal, 0u) << "partition must fail cross-side shuffles";
  EXPECT_EQ(s.fault_failures, faults_at_heal)
      << "no new fault failures after the partition heals";
  EXPECT_EQ(s.verification_failures, 0u);
}

}  // namespace
}  // namespace accountnet::harness
