// Wave-parallel drive determinism (docs/PARALLELISM.md): every pinned
// scenario must produce a bit-identical digest at threads ∈ {1, 2, 4, 8} and
// with the classic sequential loop (threads = 0), under both crypto
// backends. The harness digest is additionally pinned to the seed-build
// constant, so "parallel == sequential == the pre-refactor library" is one
// transitive assertion.
#include <gtest/gtest.h>

#include "accountnet/crypto/pooled.hpp"
#include "accountnet/util/worker_pool.hpp"
#include "../core/sampler_baseline_scenarios.hpp"

namespace accountnet::testing {
namespace {

constexpr std::size_t kThreadGrid[] = {1, 2, 4, 8};

// Same constant as sampler_baseline_test.cpp (captured from the seed build).
constexpr const char* kHarnessDigest =
    "6ba00388ec5516306dc1eb49d01e1e7960c9b1c7bce8c9872f74e8b7ebb6c1b6";

TEST(ParallelDeterminism, HarnessScenarioBitIdenticalAtEveryThreadCount) {
  ASSERT_EQ(guard_harness_digest(0), kHarnessDigest);
  for (const std::size_t t : kThreadGrid) {
    EXPECT_EQ(guard_harness_digest(t), kHarnessDigest) << "threads " << t;
  }
}

// Event-driven scenarios have no thread knob; their parallel surface is the
// crypto batch fan-out. Wrapping the backend in a PooledProvider must leave
// the digests untouched at every pool size (provider determinism contract).
TEST(ParallelDeterminism, ByzSoakScenarioUnperturbedByPooledCrypto) {
  const std::string baseline = guard_byz_digest();
  for (const std::size_t t : kThreadGrid) {
    util::WorkerPool pool(t);
    const auto inner = crypto::make_fast_crypto();
    const crypto::PooledProvider pooled(*inner, &pool);
    EXPECT_EQ(guard_byz_digest(&pooled), baseline) << "threads " << t;
  }
}

TEST(ParallelDeterminism, Fig20ScenarioUnperturbedByPooledCrypto) {
  const std::string baseline = guard_fig20_digest();
  for (const std::size_t t : kThreadGrid) {
    util::WorkerPool pool(t);
    const auto inner = crypto::make_fast_crypto();
    const crypto::PooledProvider pooled(*inner, &pool);
    EXPECT_EQ(guard_fig20_digest(&pooled), baseline) << "threads " << t;
  }
}

/// Stress scenario for the wave machinery's flush triggers: churn events
/// (prologue flush), dead partners (inline flush + leave fan-out), injected
/// faults, coverage tracking and the separate-overlay refusal leg, folded
/// into one digest.
std::string churny_digest(std::size_t threads, bool real_crypto) {
  harness::ExperimentConfig c;
  c.network_size = real_crypto ? 48 : 160;
  c.f = 5;
  c.l = 3;
  c.pm = 0.2;
  c.malicious_mode = harness::MaliciousMode::kSeparateOverlay;
  c.lane_size = 24;
  c.history_limit = 32;
  c.verify_fraction = real_crypto ? 0.5 : 1.0;
  c.track_coverage = true;
  c.use_real_crypto = real_crypto;
  c.seed = 13;
  c.threads = threads;
  sim::FaultPlan plan;
  plan.seed = 5;
  sim::LinkFault lf;
  lf.loss = 0.05;  // wildcard rule: every leg of every shuffle may drop
  plan.links.push_back(lf);
  c.fault_plan = plan;

  harness::NetworkSim net(c);
  net.schedule_churn(c.network_size / 8, sim::seconds(25), sim::seconds(40));
  net.run(10, [](std::size_t) {});

  wire::Writer w;
  for (std::size_t i = 0; i < net.size(); ++i) {
    w.u64(net.is_alive(i) ? 1 : 0);
    if (!net.is_alive(i)) continue;
    const auto& st = net.node_state(i);
    w.u64(st.round());
    guard_fold_peers(w, st.peerset().sorted());
  }
  const auto& s = net.stats();
  w.u64(s.shuffles_attempted);
  w.u64(s.shuffles_completed);
  w.u64(s.shuffles_verified);
  w.u64(s.verification_failures);
  w.u64(s.dead_partner_hits);
  w.u64(s.refused_cross_group);
  w.u64(s.leave_reports);
  w.u64(s.fault_failures);
  const auto coverage = net.coverage_counts();
  w.u64(coverage.count());
  for (const double v : coverage.data()) {
    w.u64(static_cast<std::uint64_t>(v));
  }
  const Bytes bytes = std::move(w).take();
  return guard_hex(crypto::Sha256::hash(bytes));
}

TEST(ParallelDeterminism, ChurnFaultScenarioBitIdenticalFastCrypto) {
  const std::string baseline = churny_digest(0, false);
  for (const std::size_t t : kThreadGrid) {
    EXPECT_EQ(churny_digest(t, false), baseline) << "threads " << t;
  }
}

TEST(ParallelDeterminism, ChurnFaultScenarioBitIdenticalRealCrypto) {
  const std::string baseline = churny_digest(0, true);
  for (const std::size_t t : kThreadGrid) {
    EXPECT_EQ(churny_digest(t, true), baseline) << "threads " << t;
  }
}

/// Crash/restart recovery under the wave drive: the restart prologue must
/// settle pending waves before rebuilding the node from its journal.
std::string recovery_digest(std::size_t threads) {
  harness::ExperimentConfig c;
  c.network_size = 64;
  c.f = 5;
  c.l = 3;
  c.lane_size = 16;
  c.verify_fraction = 1.0;
  c.durable_nodes = true;
  c.checkpoint_interval = 16;
  c.seed = 17;
  c.threads = threads;
  harness::NetworkSim net(c);
  net.schedule_crash_restart(5, sim::seconds(35), sim::seconds(60));
  net.schedule_crash_restart(9, sim::seconds(45), sim::seconds(80));
  net.run(12, [](std::size_t) {});

  wire::Writer w;
  for (std::size_t i = 0; i < net.size(); ++i) {
    const auto& st = net.node_state(i);
    w.u64(st.round());
    guard_fold_peers(w, st.peerset().sorted());
  }
  w.u64(net.stats().shuffles_completed);
  w.u64(net.stats().verification_failures);
  w.u64(net.recovery_crashes());
  w.u64(net.recovery_restarts());
  w.u64(net.recovery_entries_replayed());
  const Bytes bytes = std::move(w).take();
  return guard_hex(crypto::Sha256::hash(bytes));
}

TEST(ParallelDeterminism, CrashRestartScenarioBitIdentical) {
  const std::string baseline = recovery_digest(0);
  for (const std::size_t t : kThreadGrid) {
    EXPECT_EQ(recovery_digest(t), baseline) << "threads " << t;
  }
}

}  // namespace
}  // namespace accountnet::testing
