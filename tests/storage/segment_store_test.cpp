// SegmentStore contract tests: CRC framing, rotation, metadata replacement,
// and — for the file-backed store — crash realism in a real tmpdir: a torn
// or corrupt tail frame in the last segment is truncated away (mid-append
// crash), while corruption in a sealed earlier segment is unrecoverable and
// throws StoreError.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "accountnet/storage/segment_store.hpp"

namespace accountnet::storage {
namespace {

Bytes rec(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Crc32, KnownVectors) {
  // IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32(rec("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(BytesView{}), 0x00000000u);
}

template <typename Store>
void exercise_contract(Store& store) {
  EXPECT_TRUE(store.load_all().empty());
  EXPECT_EQ(store.segment_count(), 1u);

  store.append(rec("alpha"));
  store.append(rec("beta"));
  store.rotate();
  store.append(rec("gamma"));
  store.sync();

  const auto all = store.load_all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], rec("alpha"));
  EXPECT_EQ(all[1], rec("beta"));
  EXPECT_EQ(all[2], rec("gamma"));
  EXPECT_EQ(store.segment_count(), 2u);

  EXPECT_FALSE(store.get_meta().has_value());
  store.put_meta(rec("meta-v1"));
  EXPECT_EQ(store.get_meta(), rec("meta-v1"));
  store.put_meta(rec("meta-v2"));
  EXPECT_EQ(store.get_meta(), rec("meta-v2"));
}

TEST(MemorySegmentStore, Contract) {
  MemorySegmentStore store;
  exercise_contract(store);
}

TEST(MemorySegmentStore, SharedStoreSurvivesOwner) {
  // The crash model: the store outlives the journal object holding it.
  auto store = std::make_shared<MemorySegmentStore>();
  store->append(rec("pre-crash"));
  {
    const std::shared_ptr<SegmentStore> owner = store;
    owner->append(rec("more"));
  }  // "process" dies
  EXPECT_EQ(store->load_all().size(), 2u);
}

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "an_segstore_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);  // stale state from a previous run
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(FileStoreTest, Contract) {
  FileSegmentStore store(dir_);
  exercise_contract(store);
}

TEST_F(FileStoreTest, ReopenPreservesEverything) {
  {
    FileSegmentStore store(dir_);
    store.append(rec("one"));
    store.rotate();
    store.append(rec("two"));
    store.put_meta(rec("m"));
    store.sync();
  }
  FileSegmentStore reopened(dir_);
  const auto all = reopened.load_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], rec("one"));
  EXPECT_EQ(all[1], rec("two"));
  EXPECT_EQ(reopened.get_meta(), rec("m"));
  // Appends continue in order after reopen.
  reopened.append(rec("three"));
  EXPECT_EQ(reopened.load_all().back(), rec("three"));
}

TEST_F(FileStoreTest, TornTailFrameIsTruncatedAway) {
  std::string last_path;
  {
    FileSegmentStore store(dir_);
    store.append(rec("keep-me"));
    store.sync();
    last_path = dir_ + "/segment-000000.log";
  }
  // Simulate a crash mid-append: a partial frame at the tail.
  {
    std::ofstream f(last_path, std::ios::binary | std::ios::app);
    const char partial[] = {0x40, 0x00, 0x00, 0x00, 0x12};  // length, then cut
    f.write(partial, sizeof(partial));
  }
  FileSegmentStore reopened(dir_);
  const auto all = reopened.load_all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], rec("keep-me"));
  // The truncated store accepts appends and the new record is durable.
  reopened.append(rec("after-repair"));
  EXPECT_EQ(reopened.load_all().size(), 2u);
}

TEST_F(FileStoreTest, CorruptTailCrcIsTruncatedAway) {
  std::string path;
  {
    FileSegmentStore store(dir_);
    store.append(rec("solid"));
    store.append(rec("doomed"));
    store.sync();
    path = dir_ + "/segment-000000.log";
  }
  // Flip one payload byte of the LAST record: its CRC no longer matches, so
  // reopen treats it as a torn tail.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  FileSegmentStore reopened(dir_);
  const auto all = reopened.load_all();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], rec("solid"));
}

TEST_F(FileStoreTest, SealedSegmentCorruptionThrows) {
  std::string sealed_path;
  {
    FileSegmentStore store(dir_);
    store.append(rec("sealed-record"));
    store.rotate();  // segment 0 is now sealed
    store.append(rec("active-record"));
    store.sync();
    sealed_path = dir_ + "/segment-000000.log";
  }
  {
    std::fstream f(sealed_path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('X');
  }
  // Tail repair only applies to the last segment; silent loss in the middle
  // of the journal would forge history, so it must be fatal.
  FileSegmentStore reopened(dir_);
  EXPECT_THROW(reopened.load_all(), StoreError);
}

TEST_F(FileStoreTest, MetaReplaceIsAtomicOnDisk) {
  FileSegmentStore store(dir_);
  store.put_meta(rec("v1"));
  store.put_meta(rec("v2"));
  // The temp file from write-temp-then-rename never lingers.
  EXPECT_EQ(std::ifstream(dir_ + "/meta.tmp").good(), false);
  FileSegmentStore reopened(dir_);
  EXPECT_EQ(reopened.get_meta(), rec("v2"));
}

}  // namespace
}  // namespace accountnet::storage
