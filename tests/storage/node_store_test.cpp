// NodeStore journal schema: journal → load() round trip over both backends,
// the strict index-gap check, standing accumulation/dedup, read-back for
// catch-up serving, and checkpoint pinning through the metadata blob.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "accountnet/crypto/provider.hpp"
#include "accountnet/storage/node_store.hpp"

namespace accountnet::storage {
namespace {

using core::Checkpoint;
using core::HistoryEntry;

class NodeStoreTest : public ::testing::Test {
 protected:
  NodeStoreTest() {
    signer_ = provider_->make_signer(Bytes(32, 0x5a));
    self_ = core::PeerId{"owner", signer_->public_key()};
    auto peer = provider_->make_signer(Bytes(32, 0xa5));
    peer_ = core::PeerId{"peer", peer->public_key()};
  }

  HistoryEntry entry(core::Round round) const {
    HistoryEntry e;
    e.kind = core::EntryKind::kShuffle;
    e.self_round = round;
    e.counterpart = peer_;
    e.nonce = round + 1;
    e.signature = Bytes{1, 2, 3};
    e.in.push_back(peer_);
    return e;
  }

  Checkpoint checkpoint(std::uint64_t sealed, const std::vector<HistoryEntry>& all) const {
    Checkpoint ck;
    ck.owner = self_;
    ck.epoch = 1;
    ck.sealed_count = sealed;
    ck.last_round = all[sealed - 1].self_round;
    ck.chain = core::fold_chain(core::ChainDigest{},
                                {all.begin(), all.begin() + static_cast<long>(sealed)});
    ck.peerset.push_back(peer_);
    ck.owner_sig = signer_->sign(ck.signing_payload());
    return ck;
  }

  std::unique_ptr<crypto::CryptoProvider> provider_ = crypto::make_fast_crypto();
  std::unique_ptr<crypto::Signer> signer_;
  core::PeerId self_;
  core::PeerId peer_;
};

TEST_F(NodeStoreTest, JournalLoadRoundTrip) {
  auto disk = std::make_shared<MemorySegmentStore>();
  std::vector<HistoryEntry> all;
  for (core::Round r = 1; r <= 5; ++r) all.push_back(entry(r));
  const Checkpoint ck = checkpoint(3, all);
  {
    NodeStore journal(disk);
    for (std::size_t i = 0; i < all.size(); ++i) {
      journal.on_entry(i, all[i]);
      journal.on_round(all[i].self_round + 1);
      if (i == 2) journal.on_checkpoint(ck);
    }
    EXPECT_EQ(journal.entry_count(), all.size());
  }  // journal object dies; the disk survives

  NodeStore reopened(disk);
  EXPECT_EQ(reopened.entry_count(), all.size());
  const core::RecoveredNode rec = reopened.load();
  EXPECT_EQ(rec.entries, all);
  EXPECT_EQ(rec.first_index, 0u);
  ASSERT_TRUE(rec.checkpoint.has_value());
  EXPECT_EQ(*rec.checkpoint, ck);
  EXPECT_EQ(rec.next_round, all.back().self_round + 1);
  EXPECT_TRUE(rec.standing.empty());
}

TEST_F(NodeStoreTest, EntryIndexGapThrows) {
  auto disk = std::make_shared<MemorySegmentStore>();
  NodeStore journal(disk);
  journal.on_entry(0, entry(1));
  journal.on_entry(2, entry(3));  // skipped index 1
  EXPECT_THROW(journal.load(), StoreError);
}

TEST_F(NodeStoreTest, StandingAccumulatesAndDedups) {
  auto disk = std::make_shared<MemorySegmentStore>();
  NodeStore journal(disk);
  journal.on_standing("cheater", false, "a");
  journal.on_standing("cheater", false, "a");  // duplicate accuser
  journal.on_standing("cheater", true, "b");
  journal.on_standing("other", false, "");

  const core::RecoveredNode rec = journal.load();
  ASSERT_EQ(rec.standing.size(), 2u);
  const auto& cheater = rec.standing[0].addr == "cheater" ? rec.standing[0]
                                                          : rec.standing[1];
  const auto& other = rec.standing[0].addr == "cheater" ? rec.standing[1]
                                                        : rec.standing[0];
  EXPECT_EQ(cheater.addr, "cheater");
  EXPECT_TRUE(cheater.evicted);
  EXPECT_EQ(cheater.accusers, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(other.addr, "other");
  EXPECT_FALSE(other.evicted);
  EXPECT_TRUE(other.accusers.empty());
}

TEST_F(NodeStoreTest, ReadEntriesServesCatchupRanges) {
  auto disk = std::make_shared<MemorySegmentStore>();
  NodeStore journal(disk);
  std::vector<HistoryEntry> all;
  for (core::Round r = 1; r <= 7; ++r) {
    all.push_back(entry(r));
    journal.on_entry(all.size() - 1, all.back());
    journal.on_round(r + 1);  // interleaved non-entry records are skipped
  }
  EXPECT_EQ(journal.read_entries(0, 7), all);
  EXPECT_EQ(journal.read_entries(2, 3),
            (std::vector<HistoryEntry>{all[2], all[3], all[4]}));
  EXPECT_EQ(journal.read_entries(5, 100),
            (std::vector<HistoryEntry>{all[5], all[6]}));  // stops at the end
  EXPECT_TRUE(journal.read_entries(7, 3).empty());
  EXPECT_TRUE(journal.read_entries(0, 0).empty());
}

TEST_F(NodeStoreTest, MetaCheckpointWinsWhenAhead) {
  // Pathological partial-crash order: the meta blob pins a seal covering
  // more entries than the record scan found. load() prefers the meta seal.
  auto disk = std::make_shared<MemorySegmentStore>();
  std::vector<HistoryEntry> all;
  for (core::Round r = 1; r <= 4; ++r) all.push_back(entry(r));
  NodeStore journal(disk);
  for (std::size_t i = 0; i < all.size(); ++i) journal.on_entry(i, all[i]);
  journal.on_checkpoint(checkpoint(2, all));
  disk->put_meta(checkpoint(4, all).encode());

  const core::RecoveredNode rec = journal.load();
  ASSERT_TRUE(rec.checkpoint.has_value());
  EXPECT_EQ(rec.checkpoint->sealed_count, 4u);
}

TEST_F(NodeStoreTest, FileBackedRoundTripSurvivesReopen) {
  const std::string dir = ::testing::TempDir() + "an_nodestore_roundtrip";
  std::filesystem::remove_all(dir);
  std::vector<HistoryEntry> all;
  for (core::Round r = 1; r <= 6; ++r) all.push_back(entry(r));
  const Checkpoint ck = checkpoint(4, all);
  {
    NodeStore journal(std::make_shared<FileSegmentStore>(dir));
    for (std::size_t i = 0; i < all.size(); ++i) {
      journal.on_entry(i, all[i]);
      if (i == 3) journal.on_checkpoint(ck);
    }
    journal.on_standing("cheater", true, "a");
  }  // process dies

  NodeStore reopened(std::make_shared<FileSegmentStore>(dir));
  EXPECT_EQ(reopened.entry_count(), all.size());
  const core::RecoveredNode rec = reopened.load();
  EXPECT_EQ(rec.entries, all);
  ASSERT_TRUE(rec.checkpoint.has_value());
  EXPECT_EQ(*rec.checkpoint, ck);
  ASSERT_EQ(rec.standing.size(), 1u);
  EXPECT_TRUE(rec.standing[0].evicted);
  EXPECT_EQ(reopened.read_entries(2, 2),
            (std::vector<HistoryEntry>{all[2], all[3]}));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace accountnet::storage
