// Validates the analysis module against the paper's own worked numbers
// (Example 2, Example 3, Table II analysis column, Sec. VI-B) and against
// Monte-Carlo simulation of random overlays.
#include <gtest/gtest.h>

#include <set>

#include "accountnet/analysis/bounds.hpp"
#include "accountnet/util/ensure.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::analysis {
namespace {

TEST(Bounds, MaxNeighborhoodFormula) {
  // |N^d|* = sum_{k=1..d} f^k.
  EXPECT_DOUBLE_EQ(max_neighborhood_size(2, 2), 6.0);    // 2 + 4
  EXPECT_DOUBLE_EQ(max_neighborhood_size(5, 2), 30.0);   // 5 + 25
  EXPECT_DOUBLE_EQ(max_neighborhood_size(5, 3), 155.0);  // 5 + 25 + 125
  EXPECT_DOUBLE_EQ(max_neighborhood_size(10, 3), 1110.0);
  EXPECT_DOUBLE_EQ(max_neighborhood_size(3, 3), 39.0);
}

TEST(Bounds, PaperExample2Exact) {
  // |V|=10, f=2, d=2 -> expected neighborhood size 4.76 (Fig. 8 walkthrough).
  EXPECT_NEAR(expected_neighborhood_size(10, 2, 2), 4.76, 0.01);
}

TEST(Bounds, PaperTable2AnalysisColumn) {
  // Table II "Analysis" values.
  EXPECT_NEAR(expected_neighborhood_size(500, 10, 3), 446.25, 1.0);
  EXPECT_NEAR(expected_neighborhood_size(1000, 10, 3), 671.97, 1.0);
  EXPECT_NEAR(expected_neighborhood_size(5000, 10, 3), 996.29, 1.5);
  EXPECT_NEAR(expected_neighborhood_size(10000, 10, 3), 1051.10, 1.5);
  EXPECT_NEAR(expected_neighborhood_size(500, 5, 2), 29.26, 0.05);
  EXPECT_NEAR(expected_neighborhood_size(1000, 5, 2), 29.63, 0.05);
  EXPECT_NEAR(expected_neighborhood_size(5000, 5, 2), 29.93, 0.05);
  EXPECT_NEAR(expected_neighborhood_size(10000, 5, 2), 29.96, 0.05);
}

TEST(Bounds, PaperSection5BNumbers) {
  // "for (|V|, f, d) = (1000, 5, 2) the expected neighborhood size is about
  //  30, ... expected to share about 0.9 nodes".
  const double nbh = expected_neighborhood_size(1000, 5, 2);
  EXPECT_NEAR(nbh, 29.63, 0.05);
  EXPECT_NEAR(expected_common_nodes(1000, nbh, nbh), 0.88, 0.03);
  // Example 3: |V|=100, (f,d)=(5,2) -> 26.46; (5,3) -> 79.13.
  EXPECT_NEAR(expected_neighborhood_size(100, 5, 2), 26.46, 0.05);
  EXPECT_NEAR(expected_neighborhood_size(100, 5, 3), 79.13, 0.25);
}

TEST(Bounds, Table3AnalysisColumn) {
  // Table III's "Analysis" column is Lemma 1 evaluated with the measured
  // neighborhood sizes of Table II (the paper's analysis/measurement pairs
  // line up only under that reading); tolerances cover the paper's own
  // snapshot noise.
  auto common = [](std::size_t v, double measured_nbh) {
    return expected_common_nodes(v, measured_nbh, measured_nbh);
  };
  EXPECT_NEAR(common(500, 439.19), 387.98, 2.0);
  EXPECT_NEAR(common(1000, 663.42), 440.01, 1.5);
  EXPECT_NEAR(common(5000, 991.79), 196.85, 0.5);
  EXPECT_NEAR(common(10000, 1048.37), 109.84, 0.5);
  EXPECT_NEAR(common(500, 29.35), 1.80, 0.1);
  EXPECT_NEAR(common(1000, 29.67), 0.90, 0.05);
  EXPECT_NEAR(common(5000, 29.91), 0.18, 0.01);
  EXPECT_NEAR(common(10000, 29.95), 0.09, 0.01);
}

TEST(Bounds, ConvergesToMaxForLargeNetworks) {
  for (std::size_t f : {3u, 5u}) {
    for (std::size_t d : {2u, 3u}) {
      const double expected = expected_neighborhood_size(1000000, f, d);
      EXPECT_NEAR(expected, max_neighborhood_size(f, d), 0.05) << f << "," << d;
    }
  }
}

TEST(Bounds, MonotoneInNetworkSize) {
  double prev = 0.0;
  for (std::size_t v : {100u, 200u, 500u, 1000u, 5000u}) {
    const double cur = expected_neighborhood_size(v, 10, 3);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(Bounds, MonteCarloValidatesAlgorithm4) {
  // Build random f-regular-out overlays and measure depth-d neighborhoods.
  const std::size_t v = 200, f = 4, d = 2;
  Rng rng(99);
  double total = 0.0;
  int samples = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::vector<std::size_t>> adj(v);
    for (std::size_t i = 0; i < v; ++i) {
      std::set<std::size_t> peers;
      while (peers.size() < f) {
        const auto p = static_cast<std::size_t>(rng.uniform(v));
        if (p != i) peers.insert(p);
      }
      adj[i].assign(peers.begin(), peers.end());
    }
    for (std::size_t start = 0; start < v; start += 17) {
      // BFS to depth d.
      std::set<std::size_t> seen = {start};
      std::vector<std::size_t> frontier = {start};
      for (std::size_t level = 0; level < d; ++level) {
        std::vector<std::size_t> next;
        for (auto u : frontier) {
          for (auto w : adj[u]) {
            if (seen.insert(w).second) next.push_back(w);
          }
        }
        frontier = std::move(next);
      }
      total += static_cast<double>(seen.size() - 1);
      ++samples;
    }
  }
  const double measured = total / samples;
  const double analytic = expected_neighborhood_size(v, f, d);
  EXPECT_NEAR(measured, analytic, analytic * 0.03);
}

TEST(Bounds, MonteCarloValidatesLemma1) {
  // Draw pairs of random λ-subsets of |V|-1 nodes and count overlaps.
  const std::size_t v = 500;
  const std::size_t lambda = 40;
  Rng rng(123);
  double total = 0.0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    const auto a = rng.sample_indices(v - 1, lambda);
    const auto b = rng.sample_indices(v - 1, lambda);
    const std::set<std::size_t> sa(a.begin(), a.end());
    std::size_t y = 0;
    for (auto x : b) {
      if (sa.contains(x)) ++y;
    }
    total += static_cast<double>(y);
  }
  const double measured = total / trials;
  const double analytic = expected_common_nodes(v, lambda, lambda);
  EXPECT_NEAR(measured, analytic, 0.1);
}

TEST(Bounds, Lemma2SymmetricCase) {
  // With λ_i = λ_j = λ and y = 0: p_m < 1/2.
  EXPECT_NEAR(pm_bound_pair(30, 30, 0), 0.5, 1e-12);
  // Larger overlap lowers the threshold.
  EXPECT_LT(pm_bound_pair(30, 30, 20), pm_bound_pair(30, 30, 5));
  EXPECT_LT(pm_bound_pair(30, 30, 5), 0.5);
}

TEST(Bounds, Lemma2RejectsExhaustedNeighborhood) {
  EXPECT_THROW(pm_bound_pair(10, 30, 10), EnsureError);
}

TEST(Bounds, Theorem1MatchesLemma2OnAverageNetwork) {
  // Theorem 1 = Lemma 2 with λ_i = λ_j = E[N] and y = E[N]^2/(|V|-1).
  const std::size_t v = 1000;
  const double nbh = expected_neighborhood_size(v, 5, 2);
  const double y = expected_common_nodes(v, nbh, nbh);
  EXPECT_NEAR(pm_bound_pair(nbh, nbh, y), pm_bound_average(v, nbh), 1e-9);
}

TEST(Bounds, Theorem1LimitIsHalf) {
  // For |V| -> inf with fixed neighborhood, the threshold approaches 1/2.
  EXPECT_NEAR(pm_bound_average(100000000, 30.0), 0.5, 1e-4);
}

TEST(Bounds, PaperExample3Threshold) {
  // |V|=100, p_m=25% -> admissible E[|N^d|] < 49.5.
  EXPECT_DOUBLE_EQ(max_neighborhood_for_pm(100, 0.25), 49.5);
  // (5,2) feasible: 26.46 < 49.5; (5,3) infeasible: 79.13 > 49.5.
  EXPECT_LT(expected_neighborhood_size(100, 5, 2), 49.5);
  EXPECT_GT(expected_neighborhood_size(100, 5, 3), 49.5);
}

TEST(Bounds, Section6BParameterRecipe) {
  // |V|=1000, p_m=10%: the paper concludes (10,3) and (5,3) work against a
  // separate overlay while (5,2) and (10,2) do not (too small or marginal).
  const auto choices = evaluate_parameters(1000, 0.10, {5, 10}, {2, 3});
  auto find = [&](std::size_t f, std::size_t d) -> const ParameterChoice& {
    for (const auto& c : choices) {
      if (c.f == f && c.d == d) return c;
    }
    throw std::logic_error("missing");
  };
  // Case (i): neighborhoods must stay below 799.2 — all four qualify
  // (the paper lists (5,2),(5,3),(10,2),(10,3) as satisfying Eq. 5).
  EXPECT_TRUE(find(5, 2).tolerates_following);
  EXPECT_TRUE(find(5, 3).tolerates_following);
  EXPECT_TRUE(find(10, 2).tolerates_following);
  EXPECT_TRUE(find(10, 3).tolerates_following);
  // Case (ii): need E[|N^d|] comfortably above 100.
  EXPECT_FALSE(find(5, 2).tolerates_separate);   // ~29.6
  EXPECT_TRUE(find(5, 3).tolerates_separate);    // ~143
  EXPECT_TRUE(find(10, 3).tolerates_separate);   // ~672
  // (10,2): ~105, inside the 5% churn margin -> rejected as the paper warns.
  EXPECT_FALSE(find(10, 2).tolerates_separate);
}

TEST(Bounds, Section6BFollowingCaseBound) {
  // "any (f, d) pairs that make the average neighborhood size not larger
  //  than 799.2 can be used" (|V|=1000, p_m=10%).
  EXPECT_NEAR(max_neighborhood_for_pm(1000, 0.10), 799.2, 0.001);
}

}  // namespace
}  // namespace accountnet::analysis
