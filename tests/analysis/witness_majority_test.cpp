// Monte-Carlo validation of Lemma 2 / Theorem 1: sampling witness groups
// from synthetic neighborhoods with controlled overlap and malicious rates,
// the benign-majority probability crosses 1/2 near the analytic threshold.
#include <gtest/gtest.h>

#include <set>

#include "accountnet/analysis/bounds.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::analysis {
namespace {

/// One synthetic trial: two neighborhoods of size lambda sharing `overlap`
/// nodes, nodes malicious i.i.d. with pm EXCEPT the common nodes, which are
/// forced benign (the Lemma-2 worst case). Returns true if a witness group
/// of size w (α-split, common excluded) has a strict benign majority.
bool trial_benign_majority(Rng& rng, std::size_t lambda, std::size_t overlap,
                           double pm, std::size_t w) {
  // Candidate pools after exclusion.
  const std::size_t avail = lambda - overlap;
  auto draw_side = [&](std::size_t quota) {
    std::size_t malicious = 0;
    for (std::size_t i = 0; i < quota; ++i) {
      // Without-replacement effects are negligible for avail >> quota; the
      // worst case inflates the malicious rate to lambda/(lambda-y) * pm.
      const double effective = pm * static_cast<double>(lambda) / static_cast<double>(avail);
      if (rng.chance(effective)) ++malicious;
    }
    return malicious;
  };
  const std::size_t quota_each = w / 2;  // symmetric λs -> even split
  const std::size_t malicious =
      draw_side(quota_each) + draw_side(w - quota_each);
  return malicious * 2 < w;
}

double majority_rate(std::size_t lambda, std::size_t overlap, double pm,
                     std::size_t w, int trials, std::uint64_t seed) {
  Rng rng(seed);
  int good = 0;
  for (int t = 0; t < trials; ++t) {
    if (trial_benign_majority(rng, lambda, overlap, pm, w)) ++good;
  }
  return static_cast<double>(good) / trials;
}

TEST(WitnessMajority, BelowThresholdBenignMajorityDominates) {
  const std::size_t lambda = 30, overlap = 3;
  const double threshold = pm_bound_pair(lambda, lambda, overlap);
  const double pm = threshold * 0.6;  // comfortably below
  const double rate = majority_rate(lambda, overlap, pm, 9, 20000, 1);
  EXPECT_GT(rate, 0.85);
}

TEST(WitnessMajority, AboveThresholdMajorityErodes) {
  const std::size_t lambda = 30, overlap = 3;
  const double threshold = pm_bound_pair(lambda, lambda, overlap);
  const double pm = std::min(0.95, threshold * 1.6);
  const double rate = majority_rate(lambda, overlap, pm, 9, 20000, 2);
  EXPECT_LT(rate, 0.5);
}

TEST(WitnessMajority, AtThresholdRateIsNearHalfInExpectation) {
  // At p_m == threshold the EXPECTED malicious count equals w/2; for odd w
  // the strict-majority rate sits in a band around 0.5.
  const std::size_t lambda = 40, overlap = 4;
  const double threshold = pm_bound_pair(lambda, lambda, overlap);
  const double rate = majority_rate(lambda, overlap, threshold, 9, 40000, 3);
  EXPECT_GT(rate, 0.35);
  EXPECT_LT(rate, 0.75);
}

TEST(WitnessMajority, LargerGroupsConcentrate) {
  // Same pm below threshold: bigger witness groups amplify the majority
  // probability (law of large numbers) — the reason to pay for more relays.
  const std::size_t lambda = 50, overlap = 5;
  const double threshold = pm_bound_pair(lambda, lambda, overlap);
  const double pm = threshold * 0.7;
  const double small = majority_rate(lambda, overlap, pm, 3, 30000, 4);
  const double large = majority_rate(lambda, overlap, pm, 15, 30000, 5);
  EXPECT_GT(large, small);
}

TEST(WitnessMajority, OverlapErodesTolerance) {
  // Fixed pm: increasing the (benign-forced) overlap consumes benign
  // candidates and lowers the benign-majority rate — Lemma 2's mechanism.
  const std::size_t lambda = 30;
  const double pm = 0.30;
  const double little = majority_rate(lambda, 1, pm, 9, 30000, 6);
  const double lots = majority_rate(lambda, 20, pm, 9, 30000, 7);
  EXPECT_GT(little, lots + 0.05);
}

TEST(WitnessMajority, SeparateOverlayCaseNeedsBiggerNeighborhood) {
  // Case (ii): all of the coalition's candidates are malicious. Benign
  // majority needs α_benign > 1/2, i.e. λ_benign > λ_coalition.
  Rng rng(8);
  auto rate_with = [&](std::size_t benign_lambda, std::size_t coalition) {
    int good = 0;
    const int trials = 20000;
    const std::size_t w = 9;
    for (int t = 0; t < trials; ++t) {
      const double alpha_b = static_cast<double>(benign_lambda) /
                             static_cast<double>(benign_lambda + coalition);
      // α-proportional integer split with probabilistic rounding.
      std::size_t benign_quota = static_cast<std::size_t>(alpha_b * w);
      if (rng.uniform01() < alpha_b * w - static_cast<double>(benign_quota)) {
        ++benign_quota;
      }
      if (benign_quota * 2 > w) ++good;  // every coalition witness is malicious
    }
    return static_cast<double>(good) / trials;
  };
  EXPECT_GT(rate_with(300, 100), 0.95);  // benign side 3x bigger: safe
  EXPECT_LT(rate_with(80, 100), 0.5);    // coalition outnumbers: unsafe
}

}  // namespace
}  // namespace accountnet::analysis
