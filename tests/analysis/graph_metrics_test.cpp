#include "accountnet/analysis/graph_metrics.hpp"

#include <gtest/gtest.h>

#include <set>

#include "accountnet/util/rng.hpp"

namespace accountnet::analysis {
namespace {

TEST(GraphMetrics, EmptyGraph) {
  const auto m = compute_graph_metrics({});
  EXPECT_EQ(m.diameter, 0.0);
  EXPECT_EQ(m.avg_clustering, 0.0);
}

TEST(GraphMetrics, BfsDistancesOnPath) {
  // 0 -> 1 -> 2 -> 3
  const Adjacency adj = {{1}, {2}, {3}, {}};
  const auto dist = bfs_distances(adj, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 3u);
  const auto from3 = bfs_distances(adj, 3);
  EXPECT_EQ(from3[0], std::numeric_limits<std::size_t>::max());
}

TEST(GraphMetrics, DiameterOfRing) {
  // Directed ring of 6: diameter 5.
  Adjacency adj(6);
  for (std::size_t i = 0; i < 6; ++i) adj[i] = {(i + 1) % 6};
  const auto m = compute_graph_metrics(adj);
  EXPECT_EQ(m.diameter, 5.0);
  EXPECT_EQ(m.unreachable_pairs, 0u);
  EXPECT_EQ(m.avg_clustering, 0.0);  // out-degree 1 -> no triangles counted
}

TEST(GraphMetrics, CliqueClusteringIsOne) {
  // Complete directed graph on 4 nodes.
  Adjacency adj(4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i != j) adj[i].push_back(j);
    }
  }
  const auto m = compute_graph_metrics(adj);
  EXPECT_DOUBLE_EQ(m.avg_clustering, 1.0);
  EXPECT_EQ(m.diameter, 1.0);
  EXPECT_DOUBLE_EQ(m.avg_out_degree, 3.0);
}

TEST(GraphMetrics, StarHasZeroClustering) {
  // Hub 0 points to leaves, leaves point back to hub.
  Adjacency adj(5);
  for (std::size_t i = 1; i < 5; ++i) {
    adj[0].push_back(i);
    adj[i] = {0};
  }
  const auto m = compute_graph_metrics(adj);
  EXPECT_DOUBLE_EQ(m.avg_clustering, 0.0);
  EXPECT_EQ(m.diameter, 2.0);  // leaf -> hub -> leaf
}

TEST(GraphMetrics, UnreachablePairsCounted) {
  const Adjacency adj = {{1}, {0}, {}};  // node 2 isolated from 0/1
  const auto m = compute_graph_metrics(adj);
  EXPECT_GT(m.unreachable_pairs, 0u);
}

TEST(GraphMetrics, SampledDiameterUnderestimatesAtMost) {
  // A random overlay large enough to trigger sampling (threshold forced low).
  Rng rng(7);
  const std::size_t n = 300;
  Adjacency adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> peers;
    while (peers.size() < 5) {
      const auto p = static_cast<std::size_t>(rng.uniform(n));
      if (p != i) peers.insert(p);
    }
    adj[i].assign(peers.begin(), peers.end());
  }
  const auto exact = compute_graph_metrics(adj, /*exact_threshold=*/1000);
  const auto sampled = compute_graph_metrics(adj, /*exact_threshold=*/10,
                                             /*sample_sources=*/32);
  EXPECT_LE(sampled.diameter, exact.diameter);
  EXPECT_GE(sampled.diameter, exact.diameter - 1.0);
}

TEST(GraphMetrics, RandomOverlayHasSmallDiameterAndLowClustering) {
  // The Appendix-A expectation for a well-shuffled network.
  Rng rng(11);
  const std::size_t n = 500;
  Adjacency adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::set<std::size_t> peers;
    while (peers.size() < 5) {
      const auto p = static_cast<std::size_t>(rng.uniform(n));
      if (p != i) peers.insert(p);
    }
    adj[i].assign(peers.begin(), peers.end());
  }
  const auto m = compute_graph_metrics(adj);
  EXPECT_LE(m.diameter, 7.0);
  EXPECT_LT(m.avg_clustering, 0.05);
}

}  // namespace
}  // namespace accountnet::analysis
