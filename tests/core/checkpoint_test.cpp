// Signed history checkpoints (core/checkpoint.hpp): seal cadence, wire
// hostility (round-trip / truncation / bit-flip / oversized-length all fail
// closed, mirroring accusation_test), forged-signature rejection over BOTH
// crypto backends, and the retention regression the anchor exists for: a
// trimmed history that degraded proofs pre-checkpoint now verifies through
// its anchor with a verdict bit-identical to an untrimmed run.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "accountnet/core/checkpoint.hpp"
#include "accountnet/core/shuffle.hpp"
#include "accountnet/util/rng.hpp"
#include "accountnet/wire/codec.hpp"
#include "test_util.hpp"

namespace accountnet::core {
namespace {

using testing::make_node;

// A deterministic little overlay: every node joins off the first, then
// `rounds` iterations of unverified commits (verification is what's under
// test, so it must not gate the evolution — all three retention configs in
// the regression test evolve bit-identically).
std::map<std::string, std::unique_ptr<NodeState>> make_overlay(
    const crypto::CryptoProvider& provider, NodeConfig config, std::size_t n,
    std::size_t rounds) {
  std::map<std::string, std::unique_ptr<NodeState>> nodes;
  std::vector<PeerId> ids;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string addr = "ckpt" + std::to_string(100 + i);
    auto node = make_node(addr, provider, config);
    ids.push_back(node->self());
    nodes[addr] = std::move(node);
  }
  auto& bootstrap = *nodes.begin()->second;
  for (auto& [addr, node] : nodes) {
    if (node.get() == &bootstrap) {
      bootstrap.init_as_seed();
      continue;
    }
    std::vector<PeerId> others;
    for (const auto& id : ids) {
      if (!(id == node->self())) others.push_back(id);
    }
    const Bytes stamp = bootstrap.signer().sign(join_stamp_payload(addr));
    node->apply_join(bootstrap.self(), stamp, others);
  }
  for (std::size_t r = 0; r < rounds; ++r) {
    for (auto& [addr, node] : nodes) {
      if (node->peerset().empty()) continue;
      const auto choice = choose_partner(*node);
      if (!choice || !nodes.count(choice->partner.addr)) {
        node->skip_round();
        continue;
      }
      auto& partner = *nodes.at(choice->partner.addr);
      const auto offer = make_offer(*node, *choice, partner.round());
      const auto response = make_response_and_commit(partner, offer);
      apply_offer_outcome(*node, offer, response);
    }
  }
  return nodes;
}

TEST(CheckpointSeal, CadenceAndSelfVerification) {
  const auto provider = crypto::make_fast_crypto();
  NodeConfig config;
  config.max_peerset = 5;
  config.shuffle_length = 3;
  config.checkpoint_interval = 3;
  config.history_limit = 4;
  const auto nodes = make_overlay(*provider, config, 6, 12);
  std::size_t sealed_nodes = 0;
  for (const auto& [addr, node] : nodes) {
    const auto& ck = node->checkpoint();
    if (!ck) continue;
    ++sealed_nodes;
    EXPECT_GE(ck->epoch, 1u);
    EXPECT_GE(ck->sealed_count, config.checkpoint_interval);
    EXPECT_LE(ck->sealed_count, node->history().total_appended());
    // The seal commits the rolling chain over its prefix, bit-for-bit.
    EXPECT_EQ(ck->chain, node->history().chain_at(ck->sealed_count));
    EXPECT_TRUE(verify_checkpoint(*ck, node->self(), *provider))
        << "self-sealed checkpoint must verify";
    // The unsealed tail is always retained (trim floor = max(limit,
    // unsealed)), so anchored proofs never lack their suffix.
    EXPECT_LE(node->history().first_index(), ck->sealed_count);
    EXPECT_GE(node->history().first_index() + node->history().size(),
              node->history().total_appended());
  }
  EXPECT_GT(sealed_nodes, 0u) << "overlay never sealed; fixture broken";
}

class CheckpointWire : public ::testing::Test {
 protected:
  std::unique_ptr<crypto::CryptoProvider> provider_ = crypto::make_fast_crypto();
  Checkpoint ck_;

  void SetUp() override {
    auto signer = provider_->make_signer(testing::seed_from_name("ckpt-owner"));
    ck_.owner = PeerId{"ckpt-owner", signer->public_key()};
    ck_.epoch = 3;
    ck_.sealed_count = 17;
    ck_.last_round = 21;
    Rng rng(7);
    for (auto& b : ck_.chain) b = static_cast<std::uint8_t>(rng.next_u64());
    for (std::size_t i = 0; i < 4; ++i) {
      auto peer = provider_->make_signer(testing::seed_from_name("p" + std::to_string(i)));
      ck_.peerset.push_back(PeerId{"p" + std::to_string(i), peer->public_key()});
    }
    std::sort(ck_.peerset.begin(), ck_.peerset.end());
    ck_.owner_sig = signer->sign(ck_.signing_payload());
    ASSERT_TRUE(verify_checkpoint(ck_, ck_.owner, *provider_));
  }
};

TEST_F(CheckpointWire, RoundTrip) {
  const Bytes wire = ck_.encode();
  const Checkpoint back = Checkpoint::decode(wire);
  EXPECT_EQ(back, ck_);
  EXPECT_TRUE(verify_checkpoint(back, ck_.owner, *provider_));

  CheckpointAnnounce ann;
  ann.checkpoint = ck_;
  ann.want_reply = true;
  const CheckpointAnnounce ann_back = CheckpointAnnounce::decode(ann.encode());
  EXPECT_EQ(ann_back.checkpoint, ck_);
  EXPECT_TRUE(ann_back.want_reply);

  SegmentRequest req{/*request_id=*/9, /*start=*/5, /*end=*/21};
  const SegmentRequest req_back = SegmentRequest::decode(req.encode());
  EXPECT_EQ(req_back.request_id, 9u);
  EXPECT_EQ(req_back.start, 5u);
  EXPECT_EQ(req_back.end, 21u);
}

TEST_F(CheckpointWire, TruncationFailsClosed) {
  const Bytes wire = ck_.encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const Bytes cut(wire.begin(), wire.begin() + static_cast<std::ptrdiff_t>(len));
    bool rejected = false;
    try {
      const Checkpoint decoded = Checkpoint::decode(cut);
      rejected = !verify_checkpoint(decoded, ck_.owner, *provider_);
    } catch (const wire::DecodeError&) {
      rejected = true;
    }
    EXPECT_TRUE(rejected) << "truncation at " << len << " accepted";
  }
}

TEST_F(CheckpointWire, BitFlipFailsClosed) {
  const Bytes wire = ck_.encode();
  Rng rng(42);
  for (int iter = 0; iter < 300; ++iter) {
    Bytes corrupt = wire;
    const std::size_t pos = rng.uniform(corrupt.size());
    corrupt[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    bool rejected = false;
    try {
      const Checkpoint decoded = Checkpoint::decode(corrupt);
      rejected = !verify_checkpoint(decoded, ck_.owner, *provider_);
    } catch (const wire::DecodeError&) {
      rejected = true;
    }
    EXPECT_TRUE(rejected) << "corrupted byte " << pos << " accepted";
  }
}

TEST_F(CheckpointWire, OversizedLengthFailsClosed) {
  // Hand-build the owner-signature length varint up to an absurd value: the
  // reader must reject, not allocate.
  wire::Writer w;
  w.raw(ck_.encode_core());
  w.varint(std::uint64_t{1} << 40);  // claimed sig length
  w.raw(Bytes{1, 2, 3});
  EXPECT_THROW(Checkpoint::decode(std::move(w).take()), wire::DecodeError);

  // A peer-list count beyond the guard rail fails before any per-peer read.
  wire::Writer w2;
  encode_peer(w2, ck_.owner);
  w2.u64(ck_.epoch);
  w2.u64(ck_.sealed_count);
  w2.u64(ck_.last_round);
  w2.raw(BytesView(ck_.chain.data(), ck_.chain.size()));
  w2.varint(std::uint64_t{200000});  // implausible peerset count
  EXPECT_THROW(Checkpoint::decode(std::move(w2).take()), wire::DecodeError);
}

TEST(CheckpointForgery, RejectedOverBothProviders) {
  for (const bool real : {false, true}) {
    const auto provider = real ? crypto::make_real_crypto() : crypto::make_fast_crypto();
    auto signer = provider->make_signer(testing::seed_from_name("owner"));
    auto other = provider->make_signer(testing::seed_from_name("other"));
    Checkpoint ck;
    ck.owner = PeerId{"owner", signer->public_key()};
    ck.epoch = 1;
    ck.sealed_count = 5;
    ck.last_round = 6;
    auto peer = provider->make_signer(testing::seed_from_name("peer"));
    ck.peerset.push_back(PeerId{"peer", peer->public_key()});
    ck.owner_sig = signer->sign(ck.signing_payload());
    ASSERT_TRUE(verify_checkpoint(ck, ck.owner, *provider)) << "real=" << real;

    // Tampered field under the original signature.
    Checkpoint tampered = ck;
    tampered.sealed_count = 6;
    const auto t = verify_checkpoint(tampered, ck.owner, *provider);
    EXPECT_FALSE(t) << "real=" << real;
    EXPECT_EQ(t.code, VerifyError::kCheckpointBadSignature) << "real=" << real;

    // Signature minted by a different key.
    Checkpoint forged = ck;
    forged.owner_sig = other->sign(forged.signing_payload());
    const auto f = verify_checkpoint(forged, ck.owner, *provider);
    EXPECT_FALSE(f) << "real=" << real;
    EXPECT_EQ(f.code, VerifyError::kCheckpointBadSignature) << "real=" << real;

    // Claimed by somebody else entirely.
    const auto o =
        verify_checkpoint(ck, PeerId{"other", other->public_key()}, *provider);
    EXPECT_FALSE(o) << "real=" << real;
    EXPECT_EQ(o.code, VerifyError::kCheckpointOwnerMismatch) << "real=" << real;

    // Structural: owner inside its own peerset.
    Checkpoint selfy = ck;
    selfy.peerset.push_back(ck.owner);
    std::sort(selfy.peerset.begin(), selfy.peerset.end());
    selfy.owner_sig = signer->sign(selfy.signing_payload());
    EXPECT_EQ(verify_checkpoint(selfy, ck.owner, *provider).code,
              VerifyError::kCheckpointMalformed)
        << "real=" << real;
  }
}

// The regression this PR exists for. Pre-checkpoint, a node whose minimal
// proof suffix outgrew its retained window could not prove its own peerset
// (bench/abl_history_limit's "proof failures" column). The same scenario with
// checkpointing on ships an anchored proof instead — and its verdict must be
// bit-identical (ok, code, reason) to the verdict an untrimmed node gets.
TEST(CheckpointRegression, TrimmedHistoryVerifiesThroughAnchor) {
  const auto provider = crypto::make_fast_crypto();
  NodeConfig trimmed, anchored, unlimited;
  for (NodeConfig* c : {&trimmed, &anchored, &unlimited}) {
    c->max_peerset = 5;
    c->shuffle_length = 3;
  }
  trimmed.history_limit = 4;    // pre-PR behavior: degradation
  anchored.history_limit = 4;   // same window, but sealed every 4 entries
  anchored.checkpoint_interval = 4;
  unlimited.history_limit = 0;  // ground truth: nothing ever trimmed

  // The three overlays evolve bit-identically: retention is invisible to the
  // commit path, so round r leaves every node with the same peerset and the
  // same appended entries in all three configs.
  constexpr std::size_t kNodes = 6;
  std::string degraded_addr;
  std::size_t rounds = 0;
  for (std::size_t r = 10; r <= 60 && degraded_addr.empty(); r += 10) {
    const auto probe = make_overlay(*provider, trimmed, kNodes, r);
    for (const auto& [addr, node] : probe) {
      if (node->peerset().empty()) continue;
      if (node->history().minimal_suffix_length(node->peerset()) >
          node->history().size()) {
        degraded_addr = addr;
        rounds = r;
        break;
      }
    }
  }
  ASSERT_FALSE(degraded_addr.empty())
      << "no node ever outgrew its window; tighten the fixture";

  auto overlay_t = make_overlay(*provider, trimmed, kNodes, rounds);
  auto overlay_a = make_overlay(*provider, anchored, kNodes, rounds);
  auto overlay_u = make_overlay(*provider, unlimited, kNodes, rounds);
  NodeState& nt = *overlay_t.at(degraded_addr);
  NodeState& na = *overlay_a.at(degraded_addr);
  NodeState& nu = *overlay_u.at(degraded_addr);
  ASSERT_EQ(nt.peerset().sorted(), na.peerset().sorted());
  ASSERT_EQ(nt.peerset().sorted(), nu.peerset().sorted());
  ASSERT_EQ(nt.history().total_appended(), na.history().total_appended());

  const auto offer_verdict = [&](NodeState& initiator,
                                 std::map<std::string, std::unique_ptr<NodeState>>& all)
      -> std::pair<ShuffleOffer, VerifyResult> {
    const auto choice = choose_partner(initiator);
    EXPECT_TRUE(choice.has_value());
    NodeState& responder = *all.at(choice->partner.addr);
    const ShuffleOffer offer = make_offer(initiator, *choice, responder.round());
    return {offer, verify_offer(offer, responder, responder.round(), *provider)};
  };

  // Pre-PR behavior, still reachable with checkpointing off: degradation.
  const auto [offer_t, verdict_t] = offer_verdict(nt, overlay_t);
  EXPECT_FALSE(offer_t.anchor.has_value());
  EXPECT_FALSE(verdict_t) << "trimmed un-anchored proof should degrade";

  // Post-PR: the same node, same round, ships an anchored proof...
  const auto [offer_a, verdict_a] = offer_verdict(na, overlay_a);
  EXPECT_TRUE(offer_a.anchor.has_value());
  EXPECT_TRUE(verdict_a) << verdict_a.reason;

  // ...whose verdict is bit-identical to the untrimmed ground truth.
  const auto [offer_u, verdict_u] = offer_verdict(nu, overlay_u);
  EXPECT_FALSE(offer_u.anchor.has_value());
  EXPECT_TRUE(verdict_u) << verdict_u.reason;
  EXPECT_EQ(verdict_a.ok, verdict_u.ok);
  EXPECT_EQ(verdict_a.code, verdict_u.code);
  EXPECT_EQ(verdict_a.reason, verdict_u.reason);
  // And both claim the exact same peerset from the exact same entries.
  EXPECT_EQ(offer_a.claimed_peerset, offer_u.claimed_peerset);
}

}  // namespace
}  // namespace accountnet::core
