// Reduced byz_soak- and fig20-style scenarios whose end-to-end state is
// folded into a SHA-256 digest. The digests were captured from the
// pre-SamplerBackend seed build; sampler_baseline_test asserts the default
// VRF backend still reproduces them byte-for-byte, so any refactor of the
// draw/verify plumbing that perturbs the default path fails loudly.
//
// Everything here is seeded and uses simulated time only, so the digests are
// stable across machines for a fixed build of the library.
#pragma once

#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "accountnet/core/adversary.hpp"
#include "accountnet/core/node.hpp"
#include "accountnet/crypto/sha256.hpp"
#include "accountnet/harness/network_sim.hpp"
#include "accountnet/pubsub/pubsub.hpp"
#include "accountnet/sim/network.hpp"
#include "accountnet/wire/codec.hpp"

namespace accountnet::testing {

inline std::string guard_hex(const std::array<std::uint8_t, 32>& d) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const auto b : d) {
    out.push_back(kHex[b >> 4]);
    out.push_back(kHex[b & 0xF]);
  }
  return out;
}

inline void guard_fold_peers(wire::Writer& w, const std::vector<core::PeerId>& peers) {
  w.u64(peers.size());
  for (const auto& p : peers) w.str(p.addr);
}

inline void guard_fold_node(wire::Writer& w, const core::Node& node) {
  w.str(node.id().addr);
  w.u64(node.state().round());
  guard_fold_peers(w, node.state().peerset().sorted());
  w.u64(node.quarantined_count());
  const auto s = node.stats();
  w.u64(s.shuffles_initiated);
  w.u64(s.shuffles_completed);
  w.u64(s.shuffles_responded);
  w.u64(s.shuffles_rejected);
  w.u64(s.shuffle_failures);
  w.u64(s.verification_failures);
  w.u64(s.relays_forwarded);
  w.u64(s.leaves_reported);
}

/// Miniature bench/byz_soak: 24 nodes on the event-driven stack, witnessed
/// channels between honest endpoints, a 3-node contingent armed with
/// bias_sample (the attack every sampler backend must make detectable).
/// `custom_provider` substitutes the crypto backend (e.g. a PooledProvider
/// wrapping FastCrypto) — the digest must not change, per the provider
/// determinism contract.
inline std::string guard_byz_digest(
    const crypto::CryptoProvider* custom_provider = nullptr) {
  sim::Simulator simu;
  const auto fallback = custom_provider ? nullptr : crypto::make_fast_crypto();
  const crypto::CryptoProvider& provider =
      custom_provider ? *custom_provider : *fallback;
  sim::SimNetwork net(simu, sim::netem_latency(), 7);

  core::Node::Config config;
  config.protocol.max_peerset = 5;
  config.protocol.shuffle_length = 3;
  config.shuffle_period = sim::seconds(10);
  config.depth = 3;
  config.witness_count = 4;
  config.majority_opt = true;
  config.accountability.enabled = true;

  const std::size_t n = 24;
  const std::vector<std::size_t> adversaries = {4, 12, 20};
  std::vector<std::unique_ptr<core::Node>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    Bytes node_seed(32);
    Rng rng(7 * 1000 + i);
    for (auto& b : node_seed) b = static_cast<std::uint8_t>(rng.next_u64());
    char buf[8];
    std::snprintf(buf, sizeof(buf), "g%03zu", i);
    nodes.push_back(std::make_unique<core::Node>(net, buf, provider, node_seed, config,
                                                 rng.next_u64()));
  }
  nodes[0]->start_as_seed();
  for (std::size_t i = 1; i < n; ++i) {
    simu.schedule(sim::milliseconds(static_cast<std::int64_t>(20 * i)),
                  [&nodes, i] { nodes[i]->start_join(nodes[i - 1]->id().addr); });
  }
  simu.run_until(simu.now() + sim::seconds(120));  // settle honestly

  // Honest-endpoint channels; adversaries can only appear as witnesses.
  std::vector<std::pair<std::size_t, std::uint64_t>> ready;
  const std::pair<std::size_t, std::size_t> pairs[] = {{1, 19}, {2, 18}, {3, 17}};
  for (const auto& [prod, cons] : pairs) {
    nodes[prod]->open_channel(nodes[cons]->id().addr,
                              [&ready, prod = prod](std::uint64_t ch, bool ok) {
                                if (ok) ready.push_back({prod, ch});
                              });
  }
  simu.run_until(simu.now() + sim::seconds(30));

  core::AdversaryPolicy policy;
  policy.bias_sample = true;
  for (const std::size_t a : adversaries) {
    policy.colluders.push_back(nodes[a]->id().addr);
  }
  for (const std::size_t a : adversaries) nodes[a]->adversary() = policy;

  std::uint64_t seq = 0;
  for (std::size_t period = 0; period < 8; ++period) {
    const sim::TimePoint stop = simu.now() + sim::seconds(10);
    while (simu.now() < stop) {
      for (const auto& [prod, ch] : ready) {
        Bytes payload{0xB2, static_cast<std::uint8_t>(seq++)};
        nodes[prod]->send_data(ch, std::move(payload));
      }
      simu.run_until(simu.now() + sim::seconds(2));
    }
  }

  wire::Writer w;
  w.u64(ready.size());
  for (const auto& nd : nodes) guard_fold_node(w, *nd);
  for (const std::size_t a : adversaries) {
    std::uint64_t quarantined_by = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (nodes[i]->is_quarantined(nodes[a]->id().addr)) ++quarantined_by;
    }
    w.u64(quarantined_by);
  }
  const Bytes bytes = std::move(w).take();
  return guard_hex(crypto::Sha256::hash(bytes));
}

/// Miniature harness run with active bias_sample adversaries and full
/// verification (the NetworkSim detection path). `threads` selects the
/// wave-parallel drive (0 = classic sequential loop); the digest must be
/// identical for every value — that IS the parallel-determinism contract.
inline std::string guard_harness_digest(std::size_t threads = 0) {
  harness::ExperimentConfig c;
  c.network_size = 128;
  c.f = 5;
  c.l = 3;
  c.d = 2;
  c.pm = 0.15;
  c.lane_size = 32;
  c.history_limit = 48;
  c.verify_fraction = 1.0;
  c.seed = 7;
  c.adversary.bias_sample = true;
  c.threads = threads;
  harness::NetworkSim net(c);
  net.run(12, [](std::size_t) {});

  wire::Writer w;
  for (std::size_t i = 0; i < net.size(); ++i) {
    w.u64(net.is_alive(i) ? 1 : 0);
    w.u64(net.is_joined(i) ? 1 : 0);
    w.u64(net.is_malicious(i) ? 1 : 0);
    const auto& st = net.node_state(i);
    w.u64(st.round());
    guard_fold_peers(w, st.peerset().sorted());
  }
  const auto& s = net.stats();
  w.u64(s.shuffles_attempted);
  w.u64(s.shuffles_completed);
  w.u64(s.shuffles_verified);
  w.u64(s.verification_failures);
  w.u64(s.byz_attacks);
  w.u64(s.byz_detections);
  w.u64(s.byz_quarantines);
  w.u64(net.quarantine_edges());
  const Bytes bytes = std::move(w).take();
  return guard_hex(crypto::Sha256::hash(bytes));
}

/// Miniature bench/fig20_ml_latency: the pubsub case study over the
/// event-driven stack, witness policy reconfigured via update_config, four
/// publish round-trips timed in virtual time.
inline std::string guard_fig20_digest(
    const crypto::CryptoProvider* custom_provider = nullptr) {
  sim::Simulator simu;
  const auto fallback = custom_provider ? nullptr : crypto::make_fast_crypto();
  const crypto::CryptoProvider& provider =
      custom_provider ? *custom_provider : *fallback;
  sim::SimNetwork net(simu, sim::netem_latency(), 11);

  core::Node::Config config;
  config.protocol.max_peerset = 5;
  config.protocol.shuffle_length = 3;
  config.shuffle_period = sim::seconds(10);
  config.depth = 3;
  config.witness_count = 4;

  const std::size_t n = 20;
  std::vector<std::unique_ptr<core::Node>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    Bytes node_seed(32);
    Rng rng(11 * 1000 + i);
    for (auto& b : node_seed) b = static_cast<std::uint8_t>(rng.next_u64());
    nodes.push_back(std::make_unique<core::Node>(net, "v" + std::to_string(1000 + i),
                                                 provider, node_seed, config,
                                                 rng.next_u64()));
  }
  nodes[0]->start_as_seed();
  for (std::size_t i = 1; i < n; ++i) {
    simu.schedule(sim::milliseconds(static_cast<std::int64_t>(20 * i)),
                  [&nodes, i] { nodes[i]->start_join(nodes[i - 1]->id().addr); });
  }
  simu.run_until(simu.now() + sim::seconds(120));

  core::Node& vehicle = *nodes[2];
  core::Node& service = *nodes[n / 2];
  core::Node::ConfigDelta policy;
  policy.witness_count = std::size_t{2};
  policy.majority_opt = true;
  vehicle.update_config(policy);
  service.update_config(policy);

  pubsub::TopicDirectory directory;
  pubsub::PubSubNode veh(vehicle, directory);
  pubsub::PubSubNode svc(service, directory);

  svc.subscribe("scene", [&svc](const std::string&, const Bytes& img,
                                const core::PeerId&) {
    Bytes reply = img;
    reply.push_back(0xD7);
    svc.publish("detected", std::move(reply));
  });

  std::vector<sim::TimePoint> latencies;
  sim::TimePoint sent_at = 0;
  bool outstanding = false;
  veh.subscribe("detected", [&](const std::string&, const Bytes&, const core::PeerId&) {
    if (!outstanding) return;
    outstanding = false;
    latencies.push_back(simu.now() - sent_at);
  });

  const Bytes frame{0xF1, 0x90, 0x20};
  veh.publish("scene", frame);  // warm-up: establish both channels
  simu.run_until(simu.now() + sim::seconds(20));
  latencies.clear();

  for (int t = 0; t < 4; ++t) {
    sent_at = simu.now();
    outstanding = true;
    veh.publish("scene", frame);
    simu.run_until(simu.now() + sim::seconds(4));
  }

  wire::Writer w;
  w.u64(latencies.size());
  for (const auto l : latencies) w.u64(static_cast<std::uint64_t>(l));
  for (const auto& nd : nodes) guard_fold_node(w, *nd);
  const Bytes bytes = std::move(w).take();
  return guard_hex(crypto::Sha256::hash(bytes));
}

}  // namespace accountnet::testing
