// End-to-end Byzantine pipeline over the event-driven stack: armed
// adversaries attack, detectors package accusations, gossip spreads them,
// honest nodes quarantine and (past the accuser threshold) evict — while a
// clean network stays silent and injected forged accusations bounce.
#include <gtest/gtest.h>

#include <algorithm>

#include "accountnet/core/accusation.hpp"
#include "accountnet/core/node.hpp"
#include "accountnet/util/bytes.hpp"
#include "accountnet/util/rng.hpp"
#include "test_util.hpp"

namespace accountnet::core {
namespace {

struct ByzNet {
  explicit ByzNet(std::vector<std::size_t> adversary_idx = {})
      : net(sim, sim::netem_latency(), 77), adversaries(std::move(adversary_idx)) {
    config.protocol.max_peerset = 4;
    config.protocol.shuffle_length = 2;
    config.shuffle_period = sim::seconds(2);
    config.witness_count = 4;
    config.majority_opt = true;
    config.depth = 2;
    config.accountability.enabled = true;
    for (std::size_t i = 0; i < 24; ++i) {
      Bytes seed(32);
      Rng rng(7000 + i);
      for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
      nodes.push_back(std::make_unique<Node>(net, "z" + std::to_string(100 + i),
                                             *provider, seed, config, rng.next_u64()));
    }
    nodes[0]->start_as_seed();
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      sim.schedule(sim::milliseconds(static_cast<std::int64_t>(40 * i)),
                   [this, i] { nodes[i]->start_join(nodes[i - 1]->id().addr); });
    }
    sim.run_until(sim::seconds(40));  // settle honestly before any arming
  }

  void arm(const AdversaryPolicy& policy) {
    for (const std::size_t i : adversaries) nodes[i]->adversary() = policy;
  }

  /// Rebuilds node i's signer from its construction seed (fast backend keys
  /// are seed-deterministic), letting tests craft genuinely-signed evidence.
  std::unique_ptr<crypto::Signer> signer_for(std::size_t i) const {
    Bytes seed(32);
    Rng rng(7000 + i);
    for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
    return provider->make_signer(seed);
  }

  bool is_adversary(std::size_t i) const {
    return std::find(adversaries.begin(), adversaries.end(), i) != adversaries.end();
  }

  /// Fraction of honest nodes that quarantine node `idx`.
  double coverage(std::size_t idx) const {
    std::size_t honest = 0, quarantining = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (i == idx || is_adversary(i)) continue;
      ++honest;
      if (nodes[i]->is_quarantined(nodes[idx]->id().addr)) ++quarantining;
    }
    return honest ? static_cast<double>(quarantining) / static_cast<double>(honest)
                  : 0.0;
  }

  std::size_t honest_honest_quarantines() const {
    std::size_t fp = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (is_adversary(i)) continue;
      for (std::size_t j = 0; j < nodes.size(); ++j) {
        if (i == j || is_adversary(j)) continue;
        if (nodes[i]->is_quarantined(nodes[j]->id().addr)) ++fp;
      }
    }
    return fp;
  }

  std::uint64_t total_counter(const std::string& name) const {
    std::uint64_t c = 0;
    for (const auto& nd : nodes) {
      const auto& m = nd->metrics();
      if (const auto id = m.find(name)) c += m.counter_value(*id);
    }
    return c;
  }

  std::uint64_t accusations_created() const {
    static const char* kTags[] = {"invalid_offer",        "invalid_response",
                                  "history_equivocation", "relay_tamper",
                                  "testimony_mismatch",   "testimony_equivocation",
                                  "relay_omission"};
    std::uint64_t c = 0;
    for (const char* tag : kTags) {
      c += total_counter(std::string("acc.accuse.created.") + tag);
    }
    return c;
  }

  sim::Simulator sim;
  std::unique_ptr<crypto::CryptoProvider> provider = crypto::make_fast_crypto();
  sim::SimNetwork net;
  Node::Config config;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<std::size_t> adversaries;
};

TEST(ByzantineTest, CleanNetworkStaysSilent) {
  ByzNet bn;
  bn.sim.run_until(bn.sim.now() + sim::seconds(40));
  EXPECT_EQ(bn.accusations_created(), 0u);
  EXPECT_EQ(bn.total_counter("acc.quarantine.peers"), 0u);
  for (const auto& n : bn.nodes) EXPECT_EQ(n->quarantined_count(), 0u);
}

TEST(ByzantineTest, ShuffleCheatersAccusedQuarantinedEvicted) {
  ByzNet bn({7, 16});
  AdversaryPolicy p;
  p.bias_sample = true;
  bn.arm(p);

  // Run until gossip has carried both cheaters to full honest coverage (or
  // the bounded window expires).
  for (int t = 0; t < 60; ++t) {
    bn.sim.run_until(bn.sim.now() + sim::seconds(2));
    if (bn.coverage(7) >= 1.0 && bn.coverage(16) >= 1.0) break;
  }
  EXPECT_GE(bn.coverage(7), 1.0);
  EXPECT_GE(bn.coverage(16), 1.0);
  EXPECT_GT(bn.accusations_created(), 0u);
  EXPECT_EQ(bn.honest_honest_quarantines(), 0u);
}

TEST(ByzantineTest, ThresholdEvictionNeedsDistinctAccusers) {
  // Eviction is threshold-gated on DISTINCT accusers (default 2). Gossip is
  // much faster than the attack cadence, so in a live run the first accuser
  // usually quarantines a cheater network-wide before a second detection can
  // occur; here two valid accusations from different accusers are crafted
  // directly (the fast backend's signers are reproducible from node seeds)
  // and injected, driving accuse -> quarantine -> evict deterministically.
  ByzNet bn;
  Node& cheater = *bn.nodes[7];
  Node& observer = *bn.nodes[12];

  auto crafted = [&](std::size_t accuser_idx, std::uint64_t round) {
    Node& accuser = *bn.nodes[accuser_idx];
    auto cheater_signer = bn.signer_for(7);
    ShuffleOffer fake;
    fake.initiator = cheater.id();
    fake.initiator_round = round;
    fake.initiator_round_sig = bytes_of("bogus");  // fails static verification
    fake.body_sig = cheater_signer->sign(
        offer_body_payload(fake.encode_core(), accuser.id()));

    Accusation acc;
    acc.kind = AccusationKind::kInvalidOffer;
    acc.accused = cheater.id();
    acc.accuser = accuser.id();
    acc.items.push_back({1, fake.encode(), {}, accuser.id()});
    acc.accuser_sig = bn.signer_for(accuser_idx)->sign(acc.signing_payload());
    EXPECT_TRUE(verify_accusation(acc, *bn.provider, bn.config.protocol));
    return acc;
  };

  const Accusation first = crafted(3, 41);
  bn.net.send({bn.nodes[3]->id().addr, observer.id().addr,
               static_cast<std::uint32_t>(MsgType::kAccusation), first.encode()});
  bn.sim.run_until(bn.sim.now() + sim::seconds(2));
  EXPECT_TRUE(observer.is_quarantined(cheater.id().addr));
  EXPECT_FALSE(observer.is_evicted(cheater.id().addr));  // one accuser only

  const Accusation second = crafted(9, 43);
  bn.net.send({bn.nodes[9]->id().addr, observer.id().addr,
               static_cast<std::uint32_t>(MsgType::kAccusation), second.encode()});
  bn.sim.run_until(bn.sim.now() + sim::seconds(2));
  EXPECT_TRUE(observer.is_evicted(cheater.id().addr));

  const auto& m = observer.metrics();
  const auto id = m.find("acc.evict.peers");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(m.counter_value(*id), 1u);
}

TEST(ByzantineTest, ForgedAccusationIsRejectedNetworkWide) {
  ByzNet bn;
  Node& target = *bn.nodes[5];

  // A rogue identity (valid keypair, not part of the overlay) fabricates an
  // offer "from" the honest target, body-signs it with its own key, and
  // packages a properly accuser-signed kInvalidOffer accusation. Attribution
  // must fail at every recipient: the body signature does not verify under
  // the target's real key.
  auto rogue_signer = bn.provider->make_signer(testing::seed_from_name("rogue"));
  const PeerId rogue{"zz-rogue", rogue_signer->public_key()};

  ShuffleOffer fake;
  fake.initiator = target.id();
  fake.initiator_round = 1;
  fake.initiator_round_sig = rogue_signer->sign(bytes_of("not-a-round-sig"));
  fake.body_sig = rogue_signer->sign(
      offer_body_payload(fake.encode_core(), bn.nodes[6]->id()));

  Accusation acc;
  acc.kind = AccusationKind::kInvalidOffer;
  acc.accused = target.id();
  acc.accuser = rogue;
  acc.items.push_back({1, fake.encode(), {}, bn.nodes[6]->id()});
  acc.accuser_sig = rogue_signer->sign(acc.signing_payload());
  ASSERT_FALSE(verify_accusation(acc, *bn.provider, bn.config.protocol));

  const std::uint64_t rejected_before = bn.total_counter("acc.accuse.rejected");
  for (std::size_t i = 0; i < bn.nodes.size(); ++i) {
    if (i == 5) continue;
    bn.net.send({rogue.addr, bn.nodes[i]->id().addr,
                 static_cast<std::uint32_t>(MsgType::kAccusation), acc.encode()});
  }
  bn.sim.run_until(bn.sim.now() + sim::seconds(10));

  EXPECT_GT(bn.total_counter("acc.accuse.rejected"), rejected_before);
  for (const auto& n : bn.nodes) {
    EXPECT_FALSE(n->is_quarantined(target.id().addr));
    EXPECT_FALSE(n->is_evicted(target.id().addr));
  }
  EXPECT_EQ(bn.total_counter("acc.quarantine.peers"), 0u);
}

TEST(ByzantineTest, TamperingWitnessCaughtByConsumer) {
  ByzNet bn;
  Node& producer = *bn.nodes[1];
  Node& consumer = *bn.nodes[20];
  std::optional<std::uint64_t> channel;
  producer.open_channel(consumer.id().addr, [&](std::uint64_t id, bool ok) {
    if (ok) channel = id;
  });
  bn.sim.run_until(bn.sim.now() + sim::seconds(10));
  ASSERT_TRUE(channel.has_value());
  const auto* witnesses = producer.channel_witnesses(*channel);
  ASSERT_NE(witnesses, nullptr);
  ASSERT_FALSE(witnesses->empty());

  // Arm exactly one of the selected witnesses as a relay tamperer.
  Node* cheat = nullptr;
  for (auto& n : bn.nodes) {
    if (n->id().addr == witnesses->front().addr) {
      cheat = n.get();
      break;
    }
  }
  ASSERT_NE(cheat, nullptr);
  AdversaryPolicy p;
  p.tamper_relays = true;
  cheat->adversary() = p;

  for (int t = 0; t < 20 && !consumer.is_quarantined(cheat->id().addr); ++t) {
    producer.send_data(*channel, bytes_of("payload-" + std::to_string(t)));
    bn.sim.run_until(bn.sim.now() + sim::seconds(2));
  }
  EXPECT_TRUE(consumer.is_quarantined(cheat->id().addr));
  EXPECT_GT(bn.total_counter("acc.accuse.created.relay_tamper"), 0u);
  // Nobody quarantines the honest producer or consumer.
  for (const auto& n : bn.nodes) {
    EXPECT_FALSE(n->is_quarantined(producer.id().addr));
    EXPECT_FALSE(n->is_quarantined(consumer.id().addr));
  }
}

}  // namespace
}  // namespace accountnet::core
