#include "accountnet/core/peerset.hpp"

#include <gtest/gtest.h>

#include "accountnet/util/ensure.hpp"

namespace accountnet::core {
namespace {

PeerId pid(const std::string& addr) {
  PeerId p;
  p.addr = addr;
  return p;
}

TEST(Peerset, InsertKeepsSortedUnique) {
  Peerset s;
  EXPECT_TRUE(s.insert(pid("c")));
  EXPECT_TRUE(s.insert(pid("a")));
  EXPECT_TRUE(s.insert(pid("b")));
  EXPECT_FALSE(s.insert(pid("b")));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s.at(0).addr, "a");
  EXPECT_EQ(s.at(1).addr, "b");
  EXPECT_EQ(s.at(2).addr, "c");
}

TEST(Peerset, ConstructorDeduplicates) {
  Peerset s({pid("b"), pid("a"), pid("b"), pid("a")});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.at(0).addr, "a");
}

TEST(Peerset, EraseAndContains) {
  Peerset s({pid("a"), pid("b")});
  EXPECT_TRUE(s.contains(pid("a")));
  EXPECT_TRUE(s.erase(pid("a")));
  EXPECT_FALSE(s.contains(pid("a")));
  EXPECT_FALSE(s.erase(pid("a")));
  EXPECT_EQ(s.size(), 1u);
}

TEST(Peerset, MinusDifference) {
  Peerset s({pid("a"), pid("b"), pid("c")});
  const Peerset d = s.minus({pid("b"), pid("z")});
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.contains(pid("a")));
  EXPECT_TRUE(d.contains(pid("c")));
  EXPECT_EQ(s.size(), 3u);  // original untouched
}

TEST(Peerset, InsertAll) {
  Peerset s({pid("a")});
  s.insert_all({pid("b"), pid("a"), pid("c")});
  EXPECT_EQ(s.size(), 3u);
}

TEST(Peerset, AtOutOfRangeThrows) {
  Peerset s;
  EXPECT_THROW(s.at(0), EnsureError);
}

TEST(Peerset, KeyDistinguishesSameAddr) {
  PeerId a1 = pid("a");
  PeerId a2 = pid("a");
  a2.key[0] = 1;
  Peerset s;
  EXPECT_TRUE(s.insert(a1));
  EXPECT_TRUE(s.insert(a2));  // different key -> different identity
  EXPECT_EQ(s.size(), 2u);
}

TEST(Peerset, EqualityIsValueBased) {
  Peerset a({pid("x"), pid("y")});
  Peerset b({pid("y"), pid("x")});
  EXPECT_EQ(a, b);
  b.insert(pid("z"));
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace accountnet::core
