// Shared helpers for core-protocol tests: node construction and a
// synchronous execution of the full shuffle exchange.
#pragma once

#include <memory>
#include <string>

#include "accountnet/core/shuffle.hpp"
#include "accountnet/util/rng.hpp"

namespace accountnet::core::testing {

inline Bytes seed_from_name(const std::string& name) {
  Bytes seed(32, 0);
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  Rng rng(h);
  for (auto& b : seed) b = static_cast<std::uint8_t>(rng.next_u64());
  return seed;
}

inline std::unique_ptr<NodeState> make_node(const std::string& addr,
                                            const crypto::CryptoProvider& provider,
                                            NodeConfig config = {}) {
  auto signer = provider.make_signer(seed_from_name(addr));
  PeerId id{addr, signer->public_key()};
  return std::make_unique<NodeState>(id, std::move(signer), config);
}

/// Runs one complete verified shuffle initiated by `a` toward the partner its
/// VRF dictates (which must be `b`); commits on both sides.
/// Returns the failure reason ("" on success).
inline std::string run_shuffle(NodeState& a, NodeState& b,
                               const crypto::CryptoProvider& provider) {
  const auto choice = choose_partner(a);
  if (!choice) return "initiator has empty peerset";
  if (!(choice->partner == b.self())) return "VRF chose a different partner";
  const auto offer = make_offer(a, *choice, b.round());
  if (const auto v = verify_offer(offer, b, b.round(), provider); !v) return v.reason;
  const auto response = make_response_and_commit(b, offer);
  if (const auto v = verify_response(response, a, offer, provider); !v) return v.reason;
  apply_offer_outcome(a, offer, response);
  return "";
}

/// Runs a shuffle from `a` to whichever partner the VRF selects among
/// `nodes`; returns the failure reason ("" on success).
template <typename NodeMap>
inline std::string run_shuffle_any(NodeState& a, NodeMap& nodes,
                                   const crypto::CryptoProvider& provider) {
  const auto choice = choose_partner(a);
  if (!choice) return "initiator has empty peerset";
  const auto it = nodes.find(choice->partner.addr);
  if (it == nodes.end()) return "partner not running";
  return run_shuffle(a, *it->second, provider);
}

}  // namespace accountnet::core::testing
